file(REMOVE_RECURSE
  "CMakeFiles/lbsim_cli.dir/lbsim_cli.cpp.o"
  "CMakeFiles/lbsim_cli.dir/lbsim_cli.cpp.o.d"
  "lbsim_cli"
  "lbsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
