# Empty compiler generated dependencies file for lbsim_cli.
# This may be replaced when dependencies are built.
