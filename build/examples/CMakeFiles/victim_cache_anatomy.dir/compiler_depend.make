# Empty compiler generated dependencies file for victim_cache_anatomy.
# This may be replaced when dependencies are built.
