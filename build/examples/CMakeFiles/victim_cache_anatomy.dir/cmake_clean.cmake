file(REMOVE_RECURSE
  "CMakeFiles/victim_cache_anatomy.dir/victim_cache_anatomy.cpp.o"
  "CMakeFiles/victim_cache_anatomy.dir/victim_cache_anatomy.cpp.o.d"
  "victim_cache_anatomy"
  "victim_cache_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/victim_cache_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
