# Empty dependencies file for bench_fig09_idle_rf.
# This may be replaced when dependencies are built.
