file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vtt_assoc.dir/bench_fig10_vtt_assoc.cpp.o"
  "CMakeFiles/bench_fig10_vtt_assoc.dir/bench_fig10_vtt_assoc.cpp.o.d"
  "bench_fig10_vtt_assoc"
  "bench_fig10_vtt_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vtt_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
