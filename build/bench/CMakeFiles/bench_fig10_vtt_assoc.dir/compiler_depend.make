# Empty compiler generated dependencies file for bench_fig10_vtt_assoc.
# This may be replaced when dependencies are built.
