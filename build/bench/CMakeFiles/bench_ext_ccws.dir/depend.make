# Empty dependencies file for bench_ext_ccws.
# This may be replaced when dependencies are built.
