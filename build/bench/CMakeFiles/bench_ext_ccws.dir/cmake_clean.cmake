file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ccws.dir/bench_ext_ccws.cpp.o"
  "CMakeFiles/bench_ext_ccws.dir/bench_ext_ccws.cpp.o.d"
  "bench_ext_ccws"
  "bench_ext_ccws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ccws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
