# Empty dependencies file for bench_fig04_unused_rf.
# This may be replaced when dependencies are built.
