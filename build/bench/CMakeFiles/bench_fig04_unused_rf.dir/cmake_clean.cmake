file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_unused_rf.dir/bench_fig04_unused_rf.cpp.o"
  "CMakeFiles/bench_fig04_unused_rf.dir/bench_fig04_unused_rf.cpp.o.d"
  "bench_fig04_unused_rf"
  "bench_fig04_unused_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_unused_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
