# Empty dependencies file for bench_fig17_traffic.
# This may be replaced when dependencies are built.
