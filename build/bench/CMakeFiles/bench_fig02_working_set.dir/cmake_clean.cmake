file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_working_set.dir/bench_fig02_working_set.cpp.o"
  "CMakeFiles/bench_fig02_working_set.dir/bench_fig02_working_set.cpp.o.d"
  "bench_fig02_working_set"
  "bench_fig02_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
