file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_streaming.dir/bench_fig03_streaming.cpp.o"
  "CMakeFiles/bench_fig03_streaming.dir/bench_fig03_streaming.cpp.o.d"
  "bench_fig03_streaming"
  "bench_fig03_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
