file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_combinations.dir/bench_fig15_combinations.cpp.o"
  "CMakeFiles/bench_fig15_combinations.dir/bench_fig15_combinations.cpp.o.d"
  "bench_fig15_combinations"
  "bench_fig15_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
