# Empty dependencies file for bench_ablation_lbparams.
# This may be replaced when dependencies are built.
