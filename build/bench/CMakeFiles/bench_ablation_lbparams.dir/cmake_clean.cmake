file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lbparams.dir/bench_ablation_lbparams.cpp.o"
  "CMakeFiles/bench_ablation_lbparams.dir/bench_ablation_lbparams.cpp.o.d"
  "bench_ablation_lbparams"
  "bench_ablation_lbparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lbparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
