# Empty dependencies file for bench_fig16_bank_conflicts.
# This may be replaced when dependencies are built.
