file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_bank_conflicts.dir/bench_fig16_bank_conflicts.cpp.o"
  "CMakeFiles/bench_fig16_bank_conflicts.dir/bench_fig16_bank_conflicts.cpp.o.d"
  "bench_fig16_bank_conflicts"
  "bench_fig16_bank_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_bank_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
