file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lbconfig.dir/bench_table3_lbconfig.cpp.o"
  "CMakeFiles/bench_table3_lbconfig.dir/bench_table3_lbconfig.cpp.o.d"
  "bench_table3_lbconfig"
  "bench_table3_lbconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lbconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
