# Empty dependencies file for bench_table3_lbconfig.
# This may be replaced when dependencies are built.
