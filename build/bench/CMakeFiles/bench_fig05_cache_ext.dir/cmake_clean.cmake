file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_cache_ext.dir/bench_fig05_cache_ext.cpp.o"
  "CMakeFiles/bench_fig05_cache_ext.dir/bench_fig05_cache_ext.cpp.o.d"
  "bench_fig05_cache_ext"
  "bench_fig05_cache_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_cache_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
