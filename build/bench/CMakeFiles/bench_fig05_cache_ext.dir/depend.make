# Empty dependencies file for bench_fig05_cache_ext.
# This may be replaced when dependencies are built.
