# Empty dependencies file for lbsim_tests.
# This may be replaced when dependencies are built.
