
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backup_engine.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_backup_engine.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_backup_engine.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_ccws.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_ccws.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_ccws.cpp.o.d"
  "/root/repo/tests/test_characterize.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_characterize.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_gpu_integration.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_gpu_integration.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_gpu_integration.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_interconnect.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_interconnect.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_l1_cache.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_l1_cache.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_l1_cache.cpp.o.d"
  "/root/repo/tests/test_l2_partition.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_l2_partition.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_l2_partition.cpp.o.d"
  "/root/repo/tests/test_ldst_unit.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_ldst_unit.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_ldst_unit.cpp.o.d"
  "/root/repo/tests/test_linebacker.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_linebacker.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_linebacker.cpp.o.d"
  "/root/repo/tests/test_load_monitor.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_load_monitor.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_load_monitor.cpp.o.d"
  "/root/repo/tests/test_mshr.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_mshr.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_mshr.cpp.o.d"
  "/root/repo/tests/test_patterns.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_patterns.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_patterns.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_register_file.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_register_file.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_register_file.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sm_integration.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_sm_integration.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_sm_integration.cpp.o.d"
  "/root/repo/tests/test_suite_apps.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_suite_apps.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_suite_apps.cpp.o.d"
  "/root/repo/tests/test_tag_array.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_tag_array.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_tag_array.cpp.o.d"
  "/root/repo/tests/test_throttle_logic.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_throttle_logic.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_throttle_logic.cpp.o.d"
  "/root/repo/tests/test_vtt.cpp" "tests/CMakeFiles/lbsim_tests.dir/test_vtt.cpp.o" "gcc" "tests/CMakeFiles/lbsim_tests.dir/test_vtt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
