# Empty compiler generated dependencies file for lbsim_mem.
# This may be replaced when dependencies are built.
