file(REMOVE_RECURSE
  "liblbsim_mem.a"
)
