file(REMOVE_RECURSE
  "CMakeFiles/lbsim_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/dram.cpp.o.d"
  "CMakeFiles/lbsim_mem.dir/mem/interconnect.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/interconnect.cpp.o.d"
  "CMakeFiles/lbsim_mem.dir/mem/l1_cache.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/l1_cache.cpp.o.d"
  "CMakeFiles/lbsim_mem.dir/mem/l2_cache.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/l2_cache.cpp.o.d"
  "CMakeFiles/lbsim_mem.dir/mem/memory_partition.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/memory_partition.cpp.o.d"
  "CMakeFiles/lbsim_mem.dir/mem/mshr.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/mshr.cpp.o.d"
  "CMakeFiles/lbsim_mem.dir/mem/tag_array.cpp.o"
  "CMakeFiles/lbsim_mem.dir/mem/tag_array.cpp.o.d"
  "liblbsim_mem.a"
  "liblbsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
