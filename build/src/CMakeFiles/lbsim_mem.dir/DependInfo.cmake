
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/interconnect.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/interconnect.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/interconnect.cpp.o.d"
  "/root/repo/src/mem/l1_cache.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/l1_cache.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/l1_cache.cpp.o.d"
  "/root/repo/src/mem/l2_cache.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/l2_cache.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/l2_cache.cpp.o.d"
  "/root/repo/src/mem/memory_partition.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/memory_partition.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/memory_partition.cpp.o.d"
  "/root/repo/src/mem/mshr.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/mshr.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/mshr.cpp.o.d"
  "/root/repo/src/mem/tag_array.cpp" "src/CMakeFiles/lbsim_mem.dir/mem/tag_array.cpp.o" "gcc" "src/CMakeFiles/lbsim_mem.dir/mem/tag_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
