file(REMOVE_RECURSE
  "CMakeFiles/lbsim_power.dir/power/energy_model.cpp.o"
  "CMakeFiles/lbsim_power.dir/power/energy_model.cpp.o.d"
  "liblbsim_power.a"
  "liblbsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
