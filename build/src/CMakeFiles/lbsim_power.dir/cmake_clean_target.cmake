file(REMOVE_RECURSE
  "liblbsim_power.a"
)
