# Empty compiler generated dependencies file for lbsim_power.
# This may be replaced when dependencies are built.
