# Empty compiler generated dependencies file for lbsim_harness.
# This may be replaced when dependencies are built.
