
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/characterize.cpp" "src/CMakeFiles/lbsim_harness.dir/harness/characterize.cpp.o" "gcc" "src/CMakeFiles/lbsim_harness.dir/harness/characterize.cpp.o.d"
  "/root/repo/src/harness/memo_cache.cpp" "src/CMakeFiles/lbsim_harness.dir/harness/memo_cache.cpp.o" "gcc" "src/CMakeFiles/lbsim_harness.dir/harness/memo_cache.cpp.o.d"
  "/root/repo/src/harness/oracle.cpp" "src/CMakeFiles/lbsim_harness.dir/harness/oracle.cpp.o" "gcc" "src/CMakeFiles/lbsim_harness.dir/harness/oracle.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/lbsim_harness.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/lbsim_harness.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/sim_runner.cpp" "src/CMakeFiles/lbsim_harness.dir/harness/sim_runner.cpp.o" "gcc" "src/CMakeFiles/lbsim_harness.dir/harness/sim_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
