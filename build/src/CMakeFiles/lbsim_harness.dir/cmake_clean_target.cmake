file(REMOVE_RECURSE
  "liblbsim_harness.a"
)
