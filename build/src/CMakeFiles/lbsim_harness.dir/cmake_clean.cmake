file(REMOVE_RECURSE
  "CMakeFiles/lbsim_harness.dir/harness/characterize.cpp.o"
  "CMakeFiles/lbsim_harness.dir/harness/characterize.cpp.o.d"
  "CMakeFiles/lbsim_harness.dir/harness/memo_cache.cpp.o"
  "CMakeFiles/lbsim_harness.dir/harness/memo_cache.cpp.o.d"
  "CMakeFiles/lbsim_harness.dir/harness/oracle.cpp.o"
  "CMakeFiles/lbsim_harness.dir/harness/oracle.cpp.o.d"
  "CMakeFiles/lbsim_harness.dir/harness/report.cpp.o"
  "CMakeFiles/lbsim_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/lbsim_harness.dir/harness/sim_runner.cpp.o"
  "CMakeFiles/lbsim_harness.dir/harness/sim_runner.cpp.o.d"
  "liblbsim_harness.a"
  "liblbsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
