
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cta_dispatcher.cpp" "src/CMakeFiles/lbsim_core.dir/core/cta_dispatcher.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/cta_dispatcher.cpp.o.d"
  "/root/repo/src/core/gpu.cpp" "src/CMakeFiles/lbsim_core.dir/core/gpu.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/gpu.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/CMakeFiles/lbsim_core.dir/core/kernel.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/kernel.cpp.o.d"
  "/root/repo/src/core/ldst_unit.cpp" "src/CMakeFiles/lbsim_core.dir/core/ldst_unit.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/ldst_unit.cpp.o.d"
  "/root/repo/src/core/register_file.cpp" "src/CMakeFiles/lbsim_core.dir/core/register_file.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/register_file.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/lbsim_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/sm.cpp" "src/CMakeFiles/lbsim_core.dir/core/sm.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/sm.cpp.o.d"
  "/root/repo/src/core/warp.cpp" "src/CMakeFiles/lbsim_core.dir/core/warp.cpp.o" "gcc" "src/CMakeFiles/lbsim_core.dir/core/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
