file(REMOVE_RECURSE
  "liblbsim_core.a"
)
