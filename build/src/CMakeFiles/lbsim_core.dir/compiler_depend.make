# Empty compiler generated dependencies file for lbsim_core.
# This may be replaced when dependencies are built.
