file(REMOVE_RECURSE
  "CMakeFiles/lbsim_core.dir/core/cta_dispatcher.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/cta_dispatcher.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/gpu.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/gpu.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/kernel.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/kernel.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/ldst_unit.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/ldst_unit.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/register_file.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/register_file.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/sm.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/sm.cpp.o.d"
  "CMakeFiles/lbsim_core.dir/core/warp.cpp.o"
  "CMakeFiles/lbsim_core.dir/core/warp.cpp.o.d"
  "liblbsim_core.a"
  "liblbsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
