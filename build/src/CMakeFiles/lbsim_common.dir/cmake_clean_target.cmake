file(REMOVE_RECURSE
  "liblbsim_common.a"
)
