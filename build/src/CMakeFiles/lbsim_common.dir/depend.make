# Empty dependencies file for lbsim_common.
# This may be replaced when dependencies are built.
