file(REMOVE_RECURSE
  "CMakeFiles/lbsim_common.dir/common/config.cpp.o"
  "CMakeFiles/lbsim_common.dir/common/config.cpp.o.d"
  "CMakeFiles/lbsim_common.dir/common/log.cpp.o"
  "CMakeFiles/lbsim_common.dir/common/log.cpp.o.d"
  "CMakeFiles/lbsim_common.dir/common/stats.cpp.o"
  "CMakeFiles/lbsim_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/lbsim_common.dir/common/table.cpp.o"
  "CMakeFiles/lbsim_common.dir/common/table.cpp.o.d"
  "liblbsim_common.a"
  "liblbsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
