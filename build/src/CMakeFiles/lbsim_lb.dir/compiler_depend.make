# Empty compiler generated dependencies file for lbsim_lb.
# This may be replaced when dependencies are built.
