file(REMOVE_RECURSE
  "liblbsim_lb.a"
)
