
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/backup_engine.cpp" "src/CMakeFiles/lbsim_lb.dir/lb/backup_engine.cpp.o" "gcc" "src/CMakeFiles/lbsim_lb.dir/lb/backup_engine.cpp.o.d"
  "/root/repo/src/lb/linebacker.cpp" "src/CMakeFiles/lbsim_lb.dir/lb/linebacker.cpp.o" "gcc" "src/CMakeFiles/lbsim_lb.dir/lb/linebacker.cpp.o.d"
  "/root/repo/src/lb/load_monitor.cpp" "src/CMakeFiles/lbsim_lb.dir/lb/load_monitor.cpp.o" "gcc" "src/CMakeFiles/lbsim_lb.dir/lb/load_monitor.cpp.o.d"
  "/root/repo/src/lb/throttle_logic.cpp" "src/CMakeFiles/lbsim_lb.dir/lb/throttle_logic.cpp.o" "gcc" "src/CMakeFiles/lbsim_lb.dir/lb/throttle_logic.cpp.o.d"
  "/root/repo/src/lb/victim_tag_table.cpp" "src/CMakeFiles/lbsim_lb.dir/lb/victim_tag_table.cpp.o" "gcc" "src/CMakeFiles/lbsim_lb.dir/lb/victim_tag_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
