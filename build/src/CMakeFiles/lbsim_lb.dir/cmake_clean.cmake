file(REMOVE_RECURSE
  "CMakeFiles/lbsim_lb.dir/lb/backup_engine.cpp.o"
  "CMakeFiles/lbsim_lb.dir/lb/backup_engine.cpp.o.d"
  "CMakeFiles/lbsim_lb.dir/lb/linebacker.cpp.o"
  "CMakeFiles/lbsim_lb.dir/lb/linebacker.cpp.o.d"
  "CMakeFiles/lbsim_lb.dir/lb/load_monitor.cpp.o"
  "CMakeFiles/lbsim_lb.dir/lb/load_monitor.cpp.o.d"
  "CMakeFiles/lbsim_lb.dir/lb/throttle_logic.cpp.o"
  "CMakeFiles/lbsim_lb.dir/lb/throttle_logic.cpp.o.d"
  "CMakeFiles/lbsim_lb.dir/lb/victim_tag_table.cpp.o"
  "CMakeFiles/lbsim_lb.dir/lb/victim_tag_table.cpp.o.d"
  "liblbsim_lb.a"
  "liblbsim_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
