file(REMOVE_RECURSE
  "liblbsim_workload.a"
)
