file(REMOVE_RECURSE
  "CMakeFiles/lbsim_workload.dir/workload/app_profile.cpp.o"
  "CMakeFiles/lbsim_workload.dir/workload/app_profile.cpp.o.d"
  "CMakeFiles/lbsim_workload.dir/workload/pattern.cpp.o"
  "CMakeFiles/lbsim_workload.dir/workload/pattern.cpp.o.d"
  "CMakeFiles/lbsim_workload.dir/workload/suite.cpp.o"
  "CMakeFiles/lbsim_workload.dir/workload/suite.cpp.o.d"
  "liblbsim_workload.a"
  "liblbsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
