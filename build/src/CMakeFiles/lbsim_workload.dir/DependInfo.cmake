
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profile.cpp" "src/CMakeFiles/lbsim_workload.dir/workload/app_profile.cpp.o" "gcc" "src/CMakeFiles/lbsim_workload.dir/workload/app_profile.cpp.o.d"
  "/root/repo/src/workload/pattern.cpp" "src/CMakeFiles/lbsim_workload.dir/workload/pattern.cpp.o" "gcc" "src/CMakeFiles/lbsim_workload.dir/workload/pattern.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "src/CMakeFiles/lbsim_workload.dir/workload/suite.cpp.o" "gcc" "src/CMakeFiles/lbsim_workload.dir/workload/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
