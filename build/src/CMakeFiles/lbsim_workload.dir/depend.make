# Empty dependencies file for lbsim_workload.
# This may be replaced when dependencies are built.
