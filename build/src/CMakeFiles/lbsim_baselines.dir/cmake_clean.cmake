file(REMOVE_RECURSE
  "CMakeFiles/lbsim_baselines.dir/baselines/ccws.cpp.o"
  "CMakeFiles/lbsim_baselines.dir/baselines/ccws.cpp.o.d"
  "CMakeFiles/lbsim_baselines.dir/baselines/cerf.cpp.o"
  "CMakeFiles/lbsim_baselines.dir/baselines/cerf.cpp.o.d"
  "CMakeFiles/lbsim_baselines.dir/baselines/pcal.cpp.o"
  "CMakeFiles/lbsim_baselines.dir/baselines/pcal.cpp.o.d"
  "CMakeFiles/lbsim_baselines.dir/baselines/static_warp_limiter.cpp.o"
  "CMakeFiles/lbsim_baselines.dir/baselines/static_warp_limiter.cpp.o.d"
  "liblbsim_baselines.a"
  "liblbsim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
