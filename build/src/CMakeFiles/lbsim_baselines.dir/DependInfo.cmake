
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ccws.cpp" "src/CMakeFiles/lbsim_baselines.dir/baselines/ccws.cpp.o" "gcc" "src/CMakeFiles/lbsim_baselines.dir/baselines/ccws.cpp.o.d"
  "/root/repo/src/baselines/cerf.cpp" "src/CMakeFiles/lbsim_baselines.dir/baselines/cerf.cpp.o" "gcc" "src/CMakeFiles/lbsim_baselines.dir/baselines/cerf.cpp.o.d"
  "/root/repo/src/baselines/pcal.cpp" "src/CMakeFiles/lbsim_baselines.dir/baselines/pcal.cpp.o" "gcc" "src/CMakeFiles/lbsim_baselines.dir/baselines/pcal.cpp.o.d"
  "/root/repo/src/baselines/static_warp_limiter.cpp" "src/CMakeFiles/lbsim_baselines.dir/baselines/static_warp_limiter.cpp.o" "gcc" "src/CMakeFiles/lbsim_baselines.dir/baselines/static_warp_limiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
