# Empty compiler generated dependencies file for lbsim_baselines.
# This may be replaced when dependencies are built.
