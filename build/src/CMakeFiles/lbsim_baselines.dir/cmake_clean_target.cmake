file(REMOVE_RECURSE
  "liblbsim_baselines.a"
)
