/**
 * @file
 * Quickstart: simulate one application under the baseline GPU and under
 * Linebacker, and print the speedup.
 *
 * Demonstrates the three public-API layers most users need:
 *   1. workload:   pick an AppProfile (or build your own);
 *   2. harness:    SimRunner executes (app, scheme) pairs;
 *   3. schemes:    SchemeConfig factories compose architectures.
 */

#include <cstdio>

#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

int
main()
{
    using namespace lbsim;

    // A 4-SM scaled chip keeps the example fast; relative results match
    // the full 16-SM configuration (workloads are SM-homogeneous).
    RunnerOptions options;
    options.simSms = 4;
    options.maxCycles = 150000;
    SimRunner runner(GpuConfig{}, LbConfig{}, options);

    const AppProfile &app = appById("S1");
    std::printf("Simulating %s (%s)\n", app.id.c_str(),
                app.description.c_str());

    const RunMetrics base = runner.run(app, SchemeConfig::baseline());
    const RunMetrics lb = runner.run(app, SchemeConfig::linebacker());

    std::printf("  baseline   IPC: %6.2f\n", base.ipc);
    std::printf("  linebacker IPC: %6.2f  (%.2fx speedup)\n", lb.ipc,
                lb.ipc / base.ipc);
    std::printf("  L1+victim hit ratio: baseline %.1f%% -> LB %.1f%%\n",
                100.0 * (base.stats.l1.l1Hits + base.stats.l1.regHits) /
                    base.stats.l1.total(),
                100.0 * (lb.stats.l1.l1Hits + lb.stats.l1.regHits) /
                    lb.stats.l1.total());
    std::printf("  victim lines stored: %llu, reg hits: %llu\n",
                static_cast<unsigned long long>(
                    lb.stats.victimLinesStored),
                static_cast<unsigned long long>(lb.stats.l1.regHits));
    return 0;
}
