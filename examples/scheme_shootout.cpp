/**
 * @file
 * Example: compare every architecture on the cache-sensitive half of
 * the suite — the experiment a user would run first to decide whether
 * Linebacker helps their workloads.
 *
 * Exercises the harness API: SimRunner, the Best-SWL oracle, and the
 * ComparisonReport formatting used by the paper-figure benches.
 */

#include <cstdio>

#include "harness/oracle.hpp"
#include "harness/report.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

int
main()
{
    using namespace lbsim;

    GpuConfig cfg;
    cfg.warmupCycles = 200000;
    RunnerOptions options;
    options.simSms = 2;
    options.maxCycles = 500000;
    SimRunner runner(cfg, LbConfig{}, options);

    std::printf("Scheme shootout on the cache-sensitive apps "
                "(normalized to baseline):\n\n");

    ComparisonReport report;
    for (const AppProfile &app : cacheSensitiveApps()) {
        std::printf("  simulating %s...\n", app.id.c_str());
        report.add(app.id, "baseline",
                   runner.run(app, SchemeConfig::baseline()).ipc);
        const SwlOracleResult oracle = findBestSwl(runner, app);
        report.add(app.id, "best-SWL", oracle.bestMetrics.ipc);
        report.add(app.id, "PCAL",
                   runner.run(app, SchemeConfig::pcal()).ipc);
        report.add(app.id, "CERF",
                   runner.run(app, SchemeConfig::cerf()).ipc);
        report.add(app.id, "linebacker",
                   runner.run(app, SchemeConfig::linebacker()).ipc);
    }

    std::printf("\n%s\n", report.renderNormalized("baseline").c_str());
    std::printf("Linebacker over best-SWL (GM): %.2fx\n",
                report.geomeanVs("linebacker", "best-SWL"));
    return 0;
}
