/**
 * @file
 * Example: define a custom application profile and study how Linebacker
 * responds to it.
 *
 * Shows the workload API: loads are described by locality class
 * (bounded reuse tiles, streams, irregular footprints), and the profile
 * compiles into a kernel the simulator executes. The example builds a
 * stencil-like kernel with a per-CTA halo tile and a periodic stream,
 * then reports whether Linebacker classified its loads correctly.
 */

#include <cstdio>

#include "core/gpu.hpp"
#include "lb/linebacker.hpp"
#include "workload/app_profile.hpp"

int
main()
{
    using namespace lbsim;

    // --- 1. Describe the application behaviourally. ---------------------
    AppProfile app;
    app.id = "DEMO";
    app.description = "Custom stencil: per-CTA halo tile + input stream";
    app.cacheSensitive = true;

    LoadSpec halo;                      // Reused halo region per CTA.
    halo.cls = LoadClass::Reuse;
    halo.lines = 220;                   // ~27 KB per CTA.
    halo.scope = TileScope::PerCta;
    LoadSpec input;                     // Streaming input, every 3rd iter.
    input.cls = LoadClass::Streaming;
    input.lines = 1;
    input.everyN = 3;
    app.loads = {halo, input};
    app.aluPerLoad = 4;
    app.hasStore = true;
    app.warpsPerCta = 16;
    app.regsPerWarp = 32;               // Full register file: DUR matters.
    app.seed = 0xDE30;

    // --- 2. Build the chip and attach Linebacker. ------------------------
    GpuConfig cfg = GpuConfig{}.scaleTo(2);
    cfg.maxCycles = 500000;
    const KernelInfo kernel = app.buildKernel(cfg);

    Gpu gpu(cfg);
    LbConfig lb;
    std::vector<std::unique_ptr<Linebacker>> units;
    std::vector<SmControllerIf *> controllers;
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        units.push_back(std::make_unique<Linebacker>(
            cfg, lb, SchemeConfig::linebacker(), &gpu.sm(i),
            &gpu.smStats(i)));
        controllers.push_back(units.back().get());
    }
    gpu.setControllers(controllers);

    // --- 3. Run and inspect what the mechanism decided. ------------------
    const SimStats &stats = gpu.runKernel(kernel);
    const Linebacker &lb0 = *units[0];

    std::printf("Custom app '%s' under Linebacker\n", app.id.c_str());
    std::printf("  IPC: %.2f over %llu cycles\n", stats.ipc(),
                static_cast<unsigned long long>(stats.cycles));
    std::printf("  monitoring windows used: %u\n",
                lb0.monitoringWindows());
    std::printf("  halo load selected:   %s (expected: yes)\n",
                lb0.loadMonitor().isSelected(hashedPc(0)) ? "yes" : "no");
    std::printf("  stream load selected: %s (expected: no)\n",
                lb0.loadMonitor().isSelected(hashedPc(4)) ? "yes" : "no");
    std::printf("  CTAs throttled: %llu, victim partitions now: %u\n",
                static_cast<unsigned long long>(
                    stats.ctaThrottleEvents),
                lb0.vtt().activePartitions());
    std::printf("  victim lines stored: %llu, victim hits: %llu\n",
                static_cast<unsigned long long>(
                    stats.victimLinesStored),
                static_cast<unsigned long long>(stats.l1.regHits));
    return 0;
}
