/**
 * @file
 * Example: dissect Linebacker's mechanism on one workload — watch the
 * monitoring phase classify loads, the throttling controller trade CTAs
 * for victim space, and the Victim Tag Table fill up.
 *
 * Uses the fine-grained tick API (Gpu::tick) instead of runKernel, the
 * route for users building their own instrumentation.
 */

#include <cstdio>

#include "core/gpu.hpp"
#include "lb/linebacker.hpp"
#include "workload/suite.hpp"

int
main()
{
    using namespace lbsim;

    const AppProfile &app = appById("S2");
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 1; // Unused: this example drives tick() itself.
    const KernelInfo kernel = app.buildKernel(cfg);

    Gpu gpu(cfg);
    LbConfig lb;
    Linebacker unit(cfg, lb, SchemeConfig::linebacker(), &gpu.sm(0),
                    &gpu.smStats(0));
    gpu.setControllers({&unit});

    std::printf("Anatomy of Linebacker on %s (%s)\n", app.id.c_str(),
                app.description.c_str());
    std::printf("%10s %10s %8s %6s %10s %10s %10s\n", "cycle", "phase",
                "actCTAs", "VPs", "victims", "regHits", "IPC");

    // Launch and drive manually, sampling once per monitoring window.
    gpu.runKernel(kernel); // maxCycles=1: launches CTAs, ticks once.
    std::uint64_t last_instr = 0;
    for (int window = 0; window < 12; ++window) {
        for (Cycle c = 0; c < lb.monitorPeriod; ++c)
            gpu.tick();
        // Re-fetch each window: stats() folds the per-SM shards of the
        // parallel tick engine (DESIGN.md §13) into the aggregate.
        const SimStats &stats = gpu.stats();
        const double window_ipc =
            static_cast<double>(stats.instructionsIssued - last_instr) /
            lb.monitorPeriod;
        last_instr = stats.instructionsIssued;
        const char *phase = unit.victimActive()
            ? "active"
            : (unit.loadMonitor().state() == MonitorState::Disabled
                   ? "disabled"
                   : "monitor");
        std::printf("%10llu %10s %8u %6u %10llu %10llu %10.2f\n",
                    static_cast<unsigned long long>(gpu.now()), phase,
                    gpu.sm(0).activeCtaCount(),
                    unit.vtt().activePartitions(),
                    static_cast<unsigned long long>(
                        stats.victimLinesStored),
                    static_cast<unsigned long long>(stats.l1.regHits),
                    window_ipc);
    }

    const SimStats &stats = gpu.stats();
    std::printf("\nSelected loads: %u of %zu static loads\n",
                unit.loadMonitor().selectedCount(), app.loads.size());
    std::printf("Registers backed up to DRAM: %llu lines, restored: "
                "%llu lines\n",
                static_cast<unsigned long long>(
                    stats.dramBackupWrites),
                static_cast<unsigned long long>(
                    stats.dramRestoreReads));
    return 0;
}
