/**
 * @file
 * Extension: CCWS-lite (the dynamic warp-throttling scheme that
 * Best-SWL idealizes) against Best-SWL and Linebacker.
 *
 * The paper cites CCWS as the representative prior warp-throttling
 * technique and notes Best-SWL outperforms it; this bench verifies the
 * same ordering holds here: CCWS between baseline and the Best-SWL
 * oracle, Linebacker above both.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "ext_ccws");
    printFigureBanner("Extension",
                      "CCWS-lite vs Best-SWL vs Linebacker "
                      "(normalized to baseline)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .crossApps(apps, {SchemeConfig::ccws()})
        .withBestSwl(apps)
        .crossApps(apps, {SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);
    const ComparisonReport report = reportFromCells(plan, results);

    std::fputs(report.renderNormalized("Baseline").c_str(), stdout);

    const double ccws = report.geomeanVs("CCWS", "Baseline");
    const double swl = report.geomeanVs("Best-SWL", "Baseline");
    const double lb = report.geomeanVs("Linebacker", "Baseline");
    std::printf("\n  ordering check (paper: baseline <= CCWS <= "
                "Best-SWL < Linebacker):\n");
    std::printf("  measured: CCWS %.3fx, Best-SWL %.3fx, Linebacker "
                "%.3fx\n",
                ccws, swl, lb);
    return 0;
}
