/**
 * @file
 * Extension: CCWS-lite (the dynamic warp-throttling scheme that
 * Best-SWL idealizes) against Best-SWL and Linebacker.
 *
 * The paper cites CCWS as the representative prior warp-throttling
 * technique and notes Best-SWL outperforms it; this bench verifies the
 * same ordering holds here: CCWS between baseline and the Best-SWL
 * oracle, Linebacker above both.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Extension",
                      "CCWS-lite vs Best-SWL vs Linebacker "
                      "(normalized to baseline)");

    SimRunner runner = benchRunner();
    ComparisonReport report;
    report.setAppOrder(appOrder());

    for (const AppProfile &app : benchmarkSuite()) {
        report.add(app.id, "Baseline",
                   runner.run(app, SchemeConfig::baseline()).ipc);
        report.add(app.id, "CCWS",
                   runner.run(app, SchemeConfig::ccws()).ipc);
        report.add(app.id, "Best-SWL", bestSwlMetrics(runner, app).ipc);
        report.add(app.id, "Linebacker",
                   runner.run(app, SchemeConfig::linebacker()).ipc);
    }

    std::fputs(report.renderNormalized("Baseline").c_str(), stdout);

    const double ccws = report.geomeanVs("CCWS", "Baseline");
    const double swl = report.geomeanVs("Best-SWL", "Baseline");
    const double lb = report.geomeanVs("Linebacker", "Baseline");
    std::printf("\n  ordering check (paper: baseline <= CCWS <= "
                "Best-SWL < Linebacker):\n");
    std::printf("  measured: CCWS %.3fx, Best-SWL %.3fx, Linebacker "
                "%.3fx\n",
                ccws, swl, lb);
    return 0;
}
