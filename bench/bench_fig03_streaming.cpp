/**
 * @file
 * Figure 3: per-SM streaming data size within a 50 000-cycle window.
 *
 * Paper observation: 9 of 20 applications stream more than 16 KB (a
 * third of the L1) per window; in BI, LI, SR2, 2D and HS the streaming
 * data exceeds the whole cache.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/characterize.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 3",
                      "Per-SM streaming data size (50k-cycle window)");

    TextTable table;
    table.setHeader({"app", "streaming data", "> 16KB?", "> 48KB L1?"});
    int over16 = 0;
    int over48 = 0;
    for (const AppProfile &app : benchmarkSuite()) {
        const AppCharacter character = characterizeApp(app);
        const double bytes = character.streamingBytes();
        over16 += bytes > 16.0 * 1024 ? 1 : 0;
        over48 += bytes > 48.0 * 1024 ? 1 : 0;
        table.addRow({app.id, fmtKb(bytes),
                      bytes > 16.0 * 1024 ? "yes" : "no",
                      bytes > 48.0 * 1024 ? "yes" : "no"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  apps streaming > 16KB per window: paper 9/20, "
                "measured %d/20\n",
                over16);
    std::printf("  apps whose streams exceed the 48KB L1: paper 5/20, "
                "measured %d/20\n",
                over48);
    return 0;
}
