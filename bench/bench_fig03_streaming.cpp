/**
 * @file
 * Figure 3: per-SM streaming data size within a 50 000-cycle window.
 *
 * Paper observation: 9 of 20 applications stream more than 16 KB (a
 * third of the L1) per window; in BI, LI, SR2, 2D and HS the streaming
 * data exceeds the whole cache.
 */

#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "harness/characterize.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig03_streaming");
    printFigureBanner("Figure 3",
                      "Per-SM streaming data size (50k-cycle window)");

    const std::vector<AppProfile> apps = benchApps(opts);
    const std::vector<AppCharacter> characters = parallelMap(
        apps.size(), opts.threads,
        [&apps](std::size_t i) { return characterizeApp(apps[i]); });

    TextTable table;
    table.setHeader({"app", "streaming data", "> 16KB?", "> 48KB L1?"});
    int over16 = 0;
    int over48 = 0;
    std::vector<double> streaming;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double bytes = characters[i].streamingBytes();
        streaming.push_back(bytes);
        over16 += bytes > 16.0 * 1024 ? 1 : 0;
        over48 += bytes > 48.0 * 1024 ? 1 : 0;
        table.addRow({apps[i].id, fmtKb(bytes),
                      bytes > 16.0 * 1024 ? "yes" : "no",
                      bytes > 48.0 * 1024 ? "yes" : "no"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  apps streaming > 16KB per window: paper 9/20, "
                "measured %d/%zu\n",
                over16, apps.size());
    std::printf("  apps whose streams exceed the 48KB L1: paper 5/20, "
                "measured %d/%zu\n",
                over48, apps.size());

    if (opts.writeJson) {
        std::ofstream out(opts.jsonPath);
        if (out) {
            JsonWriter json(out);
            json.beginObject();
            json.field("bench", opts.benchName);
            json.field("schemaVersion", std::uint64_t{1});
            json.field("smoke", opts.smoke);
            json.beginArrayField("cells");
            for (std::size_t i = 0; i < apps.size(); ++i) {
                json.beginObject();
                json.field("app", apps[i].id);
                json.field("ok", true);
                json.field("streamingBytes", streaming[i]);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
    }
    return 0;
}
