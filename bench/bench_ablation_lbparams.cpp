/**
 * @file
 * Ablation: sensitivity of Linebacker to its Table-3 parameter choices —
 * the load-classification hit threshold, the monitoring window length,
 * and the IPC variation bounds.
 *
 * The paper sets these empirically (20%, 50k cycles, +/-10%); this bench
 * shows the neighborhood is flat enough that the mechanism is not a
 * knife-edge tuning artifact. Geometric means are over the
 * cache-sensitive applications, normalized to the baseline.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "ablation_lbparams");
    printFigureBanner("Ablation",
                      "Linebacker sensitivity to Table-3 parameters "
                      "(GM over cache-sensitive apps, vs baseline)");

    // Cache-sensitive apps only; under --smoke, restrict further to the
    // smoke subset so the run stays short.
    std::vector<AppProfile> apps = cacheSensitiveApps();
    if (opts.smoke) {
        const std::vector<AppProfile> smoke_apps = benchApps(opts);
        apps.erase(std::remove_if(
                       apps.begin(), apps.end(),
                       [&smoke_apps](const AppProfile &app) {
                           return std::none_of(
                               smoke_apps.begin(), smoke_apps.end(),
                               [&app](const AppProfile &s) {
                                   return s.id == app.id;
                               });
                       }),
                   apps.end());
    }

    struct Point
    {
        std::string parameter;
        std::string value;
        SweepPoint sweep;
    };
    std::vector<Point> rows;
    for (double threshold : {0.10, 0.20, 0.40}) {
        rows.push_back(
            {"hit threshold", fmtPercent(threshold, 0),
             {"thr=" + fmtPercent(threshold, 0),
              [threshold](GpuConfig &, LbConfig &lb, RunnerOptions &) {
                  lb.hitRatioThreshold = threshold;
              }}});
    }
    for (Cycle period : {25000u, 50000u, 100000u}) {
        rows.push_back(
            {"monitor period", std::to_string(period),
             {"period=" + std::to_string(period),
              [period](GpuConfig &, LbConfig &lb, RunnerOptions &) {
                  lb.monitorPeriod = period;
              }}});
    }
    for (double bound : {0.05, 0.10, 0.20}) {
        rows.push_back(
            {"IPC variation bound", "+/-" + fmtPercent(bound, 0),
             {"ipcvar=" + fmtPercent(bound, 0),
              [bound](GpuConfig &, LbConfig &lb, RunnerOptions &) {
                  lb.ipcVarUpper = bound;
                  lb.ipcVarLower = -bound;
              }}});
    }

    ExperimentPlan plan = benchPlan(opts);
    std::vector<SweepPoint> points;
    for (const Point &row : rows)
        points.push_back(row.sweep);
    plan.sweepParam(points, apps,
                    {SchemeConfig::baseline(), SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    TextTable table;
    table.setHeader({"parameter", "value", "LB speedup"});
    for (const Point &row : rows) {
        std::vector<double> ratios;
        for (const AppProfile &app : apps) {
            const RunMetrics *base = findMetrics(results, app.id,
                                                 "Baseline",
                                                 row.sweep.label);
            const RunMetrics *lb = findMetrics(results, app.id,
                                               "Linebacker",
                                               row.sweep.label);
            if (!base || !lb || base->ipc <= 0)
                continue;
            ratios.push_back(lb->ipc / base->ipc);
        }
        table.addRow({row.parameter, row.value,
                      fmtSpeedup(geomean(ratios))});
    }

    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  paper default: threshold 20%%, period 50000, "
                "bounds +/-10%%\n");
    return 0;
}
