/**
 * @file
 * Ablation: sensitivity of Linebacker to its Table-3 parameter choices —
 * the load-classification hit threshold, the monitoring window length,
 * and the IPC variation bounds.
 *
 * The paper sets these empirically (20%, 50k cycles, +/-10%); this bench
 * shows the neighborhood is flat enough that the mechanism is not a
 * knife-edge tuning artifact. Geometric means are over the
 * cache-sensitive applications, normalized to the baseline.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace
{

double
lbGeomeanOverBaseline(lbsim::SimRunner &runner)
{
    using namespace lbsim;
    std::vector<double> ratios;
    for (const AppProfile &app : cacheSensitiveApps()) {
        const double base =
            runner.run(app, SchemeConfig::baseline()).ipc;
        if (base <= 0)
            continue;
        ratios.push_back(runner.run(app, SchemeConfig::linebacker()).ipc /
                         base);
    }
    return geomean(ratios);
}

} // namespace

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Ablation",
                      "Linebacker sensitivity to Table-3 parameters "
                      "(GM over cache-sensitive apps, vs baseline)");

    TextTable table;
    table.setHeader({"parameter", "value", "LB speedup"});

    for (double threshold : {0.10, 0.20, 0.40}) {
        LbConfig lb;
        lb.hitRatioThreshold = threshold;
        SimRunner runner(benchGpuConfig(), lb, benchRunnerOptions());
        table.addRow({"hit threshold", fmtPercent(threshold, 0),
                      fmtSpeedup(lbGeomeanOverBaseline(runner))});
    }
    for (Cycle period : {25000u, 50000u, 100000u}) {
        LbConfig lb;
        lb.monitorPeriod = period;
        SimRunner runner(benchGpuConfig(), lb, benchRunnerOptions());
        table.addRow({"monitor period", std::to_string(period),
                      fmtSpeedup(lbGeomeanOverBaseline(runner))});
    }
    for (double bound : {0.05, 0.10, 0.20}) {
        LbConfig lb;
        lb.ipcVarUpper = bound;
        lb.ipcVarLower = -bound;
        SimRunner runner(benchGpuConfig(), lb, benchRunnerOptions());
        table.addRow({"IPC variation bound",
                      "+/-" + fmtPercent(bound, 0),
                      fmtSpeedup(lbGeomeanOverBaseline(runner))});
    }

    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  paper default: threshold 20%%, period 50000, "
                "bounds +/-10%%\n");
    return 0;
}
