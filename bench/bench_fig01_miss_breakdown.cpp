/**
 * @file
 * Figure 1: breakdown of cold vs capacity/conflict (2C) miss ratio on
 * the baseline GPU.
 *
 * Paper averages: total L1 miss ratio 66.6%, capacity/conflict 44.6%
 * (67.0% of all misses); 11 of 20 applications show >70% of misses as
 * capacity/conflict.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig01_miss_breakdown");
    printFigureBanner("Figure 1",
                      "Cold vs capacity/conflict miss breakdown "
                      "(baseline)");

    // Cold-vs-capacity classification needs the cold prologue, so this
    // bench measures from cycle 0 (no warm-up reset).
    GpuConfig cfg;
    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan(cfg, LbConfig{}, benchRunnerOptions(opts));
    plan.crossApps(apps, {SchemeConfig::baseline()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    TextTable table;
    table.setHeader({"app", "cold miss", "2C miss", "total miss",
                     "2C share of misses"});
    double sum_total = 0;
    double sum_2c = 0;
    int high_2c_apps = 0;
    for (const CellResult &result : results) {
        if (!result.ok)
            continue;
        const RunMetrics &m = result.metrics;
        const double accesses = static_cast<double>(m.stats.l1.total());
        const double cold = m.stats.coldMisses / accesses;
        const double cap = m.stats.capacityMisses / accesses;
        const double total = cold + cap;
        const double share = total > 0 ? cap / total : 0.0;
        table.addRow({result.app, fmtPercent(cold), fmtPercent(cap),
                      fmtPercent(total), fmtPercent(share)});
        sum_total += total;
        sum_2c += cap;
        if (share > 0.70)
            ++high_2c_apps;
    }
    std::fputs(table.render().c_str(), stdout);

    const double n = static_cast<double>(apps.size());
    std::printf("\nPaper vs measured:\n");
    printPaperVsMeasured("avg total L1 miss ratio", 66.6,
                         100.0 * sum_total / n, "%");
    printPaperVsMeasured("avg capacity/conflict miss ratio", 44.6,
                         100.0 * sum_2c / n, "%");
    printPaperVsMeasured("2C share of all misses", 67.0,
                         100.0 * sum_2c / sum_total, "%");
    std::printf("  apps with 2C share > 70%%: paper 11/%d, measured "
                "%d/%d\n",
                static_cast<int>(n), high_2c_apps,
                static_cast<int>(n));
    return 0;
}
