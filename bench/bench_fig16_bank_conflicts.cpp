/**
 * @file
 * Figure 16: register-file bank conflicts of CERF and Linebacker,
 * normalized to the baseline.
 *
 * Paper: CERF increases bank conflicts by 52.4%, Linebacker by only
 * 29.1% — the streaming filter and higher L1 hit ratio keep victim
 * traffic off the banks.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig16_bank_conflicts");
    printFigureBanner("Figure 16",
                      "Register-file bank conflicts (normalized to "
                      "baseline)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .crossApps(apps,
                   {SchemeConfig::cerf(), SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    const auto conflicts = [](const RunMetrics &m) {
        // Normalize by instructions so run length cancels out.
        return m.stats.instructionsIssued
                   ? static_cast<double>(m.stats.rfBankConflicts) /
                         m.stats.instructionsIssued
                   : 0.0;
    };

    TextTable table;
    table.setHeader({"app", "CERF", "Linebacker"});
    std::vector<double> cerf_ratios;
    std::vector<double> lb_ratios;
    for (const AppProfile &app : apps) {
        const RunMetrics *base_m =
            findMetrics(results, app.id, "Baseline");
        const RunMetrics *cerf_m = findMetrics(results, app.id, "CERF");
        const RunMetrics *lb_m =
            findMetrics(results, app.id, "Linebacker");
        if (!base_m || !cerf_m || !lb_m)
            continue;
        const double base = conflicts(*base_m);
        if (base <= 0)
            continue;
        const double cerf = conflicts(*cerf_m) / base;
        const double lb = conflicts(*lb_m) / base;
        cerf_ratios.push_back(cerf);
        lb_ratios.push_back(lb);
        table.addRow({app.id, fmtDouble(cerf), fmtDouble(lb)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured (conflicts vs baseline):\n");
    printPaperVsMeasured("CERF", 1.524, geomean(cerf_ratios), "x");
    printPaperVsMeasured("Linebacker", 1.291, geomean(lb_ratios), "x");
    std::printf("  shape check: Linebacker < CERF\n");
    return 0;
}
