/**
 * @file
 * Figure 18: energy consumption of CERF and Linebacker normalized to
 * the baseline.
 *
 * Paper: Linebacker reduces energy by 22.1%, CERF by 21.2% — execution
 * time dominates (static energy), with DRAM traffic second.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "power/energy_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig18_energy");
    printFigureBanner("Figure 18",
                      "Energy consumption (normalized to baseline)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .crossApps(apps,
                   {SchemeConfig::cerf(), SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    // Energy per instruction: fixed-cycle runs do equal-time, not
    // equal-work, so per-work energy is the comparable quantity.
    const auto epi = [](const RunMetrics &m) {
        return m.stats.instructionsIssued
                   ? m.energyJ / m.stats.instructionsIssued
                   : 0.0;
    };

    TextTable table;
    table.setHeader({"app", "CERF", "Linebacker"});
    std::vector<double> cerf_ratios;
    std::vector<double> lb_ratios;
    for (const AppProfile &app : apps) {
        const RunMetrics *base_m =
            findMetrics(results, app.id, "Baseline");
        const RunMetrics *cerf_m = findMetrics(results, app.id, "CERF");
        const RunMetrics *lb_m =
            findMetrics(results, app.id, "Linebacker");
        if (!base_m || !cerf_m || !lb_m)
            continue;
        const double base = epi(*base_m);
        if (base <= 0)
            continue;
        cerf_ratios.push_back(epi(*cerf_m) / base);
        lb_ratios.push_back(epi(*lb_m) / base);
        table.addRow({app.id, fmtDouble(cerf_ratios.back()),
                      fmtDouble(lb_ratios.back())});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured (energy vs baseline):\n");
    printPaperVsMeasured("Linebacker", 0.779, geomean(lb_ratios), "x");
    printPaperVsMeasured("CERF", 0.788, geomean(cerf_ratios), "x");
    return 0;
}
