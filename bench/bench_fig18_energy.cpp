/**
 * @file
 * Figure 18: energy consumption of CERF and Linebacker normalized to
 * the baseline.
 *
 * Paper: Linebacker reduces energy by 22.1%, CERF by 21.2% — execution
 * time dominates (static energy), with DRAM traffic second.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "power/energy_model.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 18",
                      "Energy consumption (normalized to baseline)");

    SimRunner runner = benchRunner();
    TextTable table;
    table.setHeader({"app", "CERF", "Linebacker"});
    std::vector<double> cerf_ratios;
    std::vector<double> lb_ratios;
    for (const AppProfile &app : benchmarkSuite()) {
        // Energy per instruction: fixed-cycle runs do equal-time, not
        // equal-work, so per-work energy is the comparable quantity.
        const auto epi = [](const RunMetrics &m) {
            return m.stats.instructionsIssued
                ? m.energyJ / m.stats.instructionsIssued
                : 0.0;
        };
        const double base =
            epi(runner.run(app, SchemeConfig::baseline()));
        if (base <= 0)
            continue;
        const double cerf =
            epi(runner.run(app, SchemeConfig::cerf())) / base;
        const double lb =
            epi(runner.run(app, SchemeConfig::linebacker())) / base;
        cerf_ratios.push_back(cerf);
        lb_ratios.push_back(lb);
        table.addRow({app.id, fmtDouble(cerf), fmtDouble(lb)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured (energy vs baseline):\n");
    printPaperVsMeasured("Linebacker", 0.779, geomean(lb_ratios), "x");
    printPaperVsMeasured("CERF", 0.788, geomean(cerf_ratios), "x");
    return 0;
}
