/**
 * @file
 * Figure 17: off-chip memory traffic of CERF and Linebacker normalized
 * to the baseline, including Linebacker's register backup/restore
 * overhead.
 *
 * Paper: Linebacker reduces off-chip traffic by 24.0% vs baseline (4.6%
 * more than CERF); backup/restore overhead stays below 1% of traffic in
 * every application.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig17_traffic");
    printFigureBanner("Figure 17",
                      "Off-chip memory traffic (normalized to "
                      "baseline)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .crossApps(apps,
                   {SchemeConfig::cerf(), SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    // Traffic per instruction, so run length cancels out.
    const auto traffic = [](const RunMetrics &m) {
        return m.stats.instructionsIssued
                   ? m.stats.dramTrafficBytes() /
                         m.stats.instructionsIssued
                   : 0.0;
    };

    TextTable table;
    table.setHeader({"app", "CERF", "Linebacker", "LB overhead"});
    std::vector<double> cerf_ratios;
    std::vector<double> lb_ratios;
    double worst_overhead = 0.0;
    for (const AppProfile &app : apps) {
        const RunMetrics *base_m =
            findMetrics(results, app.id, "Baseline");
        const RunMetrics *cerf_m = findMetrics(results, app.id, "CERF");
        const RunMetrics *lb_m =
            findMetrics(results, app.id, "Linebacker");
        if (!base_m || !cerf_m || !lb_m)
            continue;
        const double base = traffic(*base_m);
        if (base <= 0)
            continue;
        const double cerf = traffic(*cerf_m) / base;
        const double lb = traffic(*lb_m) / base;
        const double overhead =
            static_cast<double>(lb_m->stats.dramBackupWrites +
                                lb_m->stats.dramRestoreReads) /
            std::max<std::uint64_t>(1, lb_m->stats.dramLineTransfers());
        worst_overhead = std::max(worst_overhead, overhead);
        cerf_ratios.push_back(cerf);
        lb_ratios.push_back(lb);
        table.addRow({app.id, fmtDouble(cerf), fmtDouble(lb),
                      fmtPercent(overhead, 2)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured (traffic vs baseline):\n");
    printPaperVsMeasured("Linebacker", 0.760, geomean(lb_ratios), "x");
    printPaperVsMeasured("CERF", 0.806, geomean(cerf_ratios), "x");
    std::printf("  worst backup/restore overhead: paper <1%%, measured "
                "%.2f%%\n",
                100.0 * worst_overhead);
    return 0;
}
