/**
 * @file
 * Figure 9: idle register-file space Linebacker uses as victim-cache
 * storage, and the number of locality-monitoring periods per app.
 *
 * Paper averages: 48.5 KB dynamic + 88.5 KB static unused space; most
 * applications find their high-locality loads within two periods.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 9",
                      "Idle register file used as victim space and "
                      "monitoring periods under Linebacker");

    SimRunner runner = benchRunner();
    TextTable table;
    table.setHeader({"app", "static unused", "dynamic unused",
                     "victim space", "monitor periods"});
    double stat_sum = 0;
    double dyn_sum = 0;
    int within_two = 0;
    for (const AppProfile &app : benchmarkSuite()) {
        const RunMetrics m = runner.run(app, SchemeConfig::linebacker());
        const double stat_b =
            m.stats.avgStaticallyUnusedRegisters * kLineBytes;
        const double dyn_b =
            m.stats.avgDynamicallyUnusedRegisters * kLineBytes;
        stat_sum += stat_b;
        dyn_sum += dyn_b;
        within_two += m.monitoringWindows <= 2 ? 1 : 0;
        table.addRow({app.id, fmtKb(stat_b), fmtKb(dyn_b),
                      fmtKb(m.avgVictimRegs * kLineBytes),
                      "(" + std::to_string(m.monitoringWindows) + ")"});
    }
    std::fputs(table.render().c_str(), stdout);

    const double n = static_cast<double>(benchmarkSuite().size());
    std::printf("\nPaper vs measured:\n");
    printPaperVsMeasured("avg static unused space (KB)", 88.5,
                         stat_sum / n / 1024.0, "");
    printPaperVsMeasured("avg dynamic unused space (KB)", 48.5,
                         dyn_sum / n / 1024.0, "");
    std::printf("  apps selecting loads within two periods: measured "
                "%d/20 (paper: most)\n",
                within_two);
    return 0;
}
