/**
 * @file
 * Figure 9: idle register-file space Linebacker uses as victim-cache
 * storage, and the number of locality-monitoring periods per app.
 *
 * Paper averages: 48.5 KB dynamic + 88.5 KB static unused space; most
 * applications find their high-locality loads within two periods.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig09_idle_rf");
    printFigureBanner("Figure 9",
                      "Idle register file used as victim space and "
                      "monitoring periods under Linebacker");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.crossApps(apps, {SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    TextTable table;
    table.setHeader({"app", "static unused", "dynamic unused",
                     "victim space", "monitor periods"});
    double stat_sum = 0;
    double dyn_sum = 0;
    int within_two = 0;
    for (const CellResult &result : results) {
        if (!result.ok)
            continue;
        const RunMetrics &m = result.metrics;
        const double stat_b =
            m.stats.avgStaticallyUnusedRegisters * kLineBytes;
        const double dyn_b =
            m.stats.avgDynamicallyUnusedRegisters * kLineBytes;
        stat_sum += stat_b;
        dyn_sum += dyn_b;
        within_two += m.monitoringWindows <= 2 ? 1 : 0;
        std::string windows = "(";
        windows += std::to_string(m.monitoringWindows);
        windows += ")";
        table.addRow({result.app, fmtKb(stat_b), fmtKb(dyn_b),
                      fmtKb(m.avgVictimRegs * kLineBytes),
                      std::move(windows)});
    }
    std::fputs(table.render().c_str(), stdout);

    const double n = static_cast<double>(apps.size());
    std::printf("\nPaper vs measured:\n");
    printPaperVsMeasured("avg static unused space (KB)", 88.5,
                         stat_sum / n / 1024.0, "");
    printPaperVsMeasured("avg dynamic unused space (KB)", 48.5,
                         dyn_sum / n / 1024.0, "");
    std::printf("  apps selecting loads within two periods: measured "
                "%d/%d (paper: most)\n",
                within_two, static_cast<int>(n));
    return 0;
}
