/**
 * @file
 * Figure 4: statically and dynamically unused register-file space per
 * SM, with the per-application Best-SWL configuration.
 *
 * Paper averages: 87.1 KB statically unused; Best-SWL leaves 27-173 KB
 * (avg 58.7 KB) dynamically unused in 13 of 20 applications.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "baselines/cerf.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig04_unused_rf");
    printFigureBanner("Figure 4",
                      "Statically (SUR) and dynamically (DUR) unused "
                      "register file per SM under Best-SWL");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBestSwl(apps);
    runPlan(opts, plan);

    // The parallel sweep above paid for every oracle point; re-deriving
    // the winner here is pure memo-cache lookups, and we need the
    // oracle's warp limit (not just its metrics) for the DUR column.
    SimRunner runner(benchGpuConfig(opts), LbConfig{},
                     benchRunnerOptions(opts));
    TextTable table;
    table.setHeader({"app", "SUR", "DUR", "SWL limit"});
    double sur_sum = 0;
    double dur_sum = 0;
    int dur_apps = 0;
    for (const AppProfile &app : apps) {
        const SwlOracleResult oracle = findBestSwl(runner, app);
        const RunMetrics m = oracle.bestMetrics;
        const double sur_bytes =
            m.stats.avgStaticallyUnusedRegisters * kLineBytes;
        // DUR under a static warp limit: registers of resident warps
        // that are never allowed to issue.
        const GpuConfig cfg;
        const KernelInfo kernel = app.buildKernel(cfg);
        const std::uint32_t resident_warps =
            maxResidentCtas(cfg, kernel) * kernel.warpsPerCta;
        const std::uint32_t gated =
            (oracle.bestLimit && oracle.bestLimit < resident_warps)
                ? resident_warps - oracle.bestLimit
                : 0;
        const double dur_bytes =
            static_cast<double>(gated) * kernel.regsPerWarp * kLineBytes;
        sur_sum += sur_bytes;
        dur_sum += dur_bytes;
        dur_apps += dur_bytes > 0 ? 1 : 0;
        table.addRow({app.id, fmtKb(sur_bytes), fmtKb(dur_bytes),
                      oracle.bestLimit ? std::to_string(oracle.bestLimit)
                                       : "unlimited"});
    }
    std::fputs(table.render().c_str(), stdout);

    const double n = static_cast<double>(apps.size());
    std::printf("\nPaper vs measured:\n");
    printPaperVsMeasured("avg SUR per SM (KB)", 87.1,
                         sur_sum / n / 1024.0, "");
    printPaperVsMeasured("avg DUR per SM under Best-SWL (KB)", 58.7,
                         dur_apps ? dur_sum / dur_apps / 1024.0 : 0.0,
                         "");
    std::printf("  apps with nonzero DUR: paper 13/20, measured "
                "%d/%zu\n",
                dur_apps, apps.size());
    return 0;
}
