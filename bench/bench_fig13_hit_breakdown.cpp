/**
 * @file
 * Figure 13: breakdown of memory-request outcomes — L1 hit, miss,
 * bypass, and victim-cache ("Reg") hit — for baseline (B), Best-SWL (S),
 * PCAL (P), CERF (C), and Linebacker (L).
 *
 * Paper: Linebacker's aggregate hit ratio (L1 + Reg) is 65.1%, with
 * 40.4% of accesses served as Reg hits; CERF reaches 57.9%.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace
{

struct Breakdown
{
    double hit = 0;
    double regHit = 0;
    double miss = 0;
    double bypass = 0;
};

Breakdown
breakdownOf(const lbsim::RunMetrics &m)
{
    const auto &l1 = m.stats.l1;
    const double total = static_cast<double>(l1.total());
    if (total == 0)
        return {};
    return {l1.l1Hits / total, l1.regHits / total, l1.misses / total,
            l1.bypasses / total};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig13_hit_breakdown");
    printFigureBanner("Figure 13",
                      "L1 hit / victim (Reg) hit / miss / bypass "
                      "breakdown (B: baseline, S: Best-SWL, P: PCAL, "
                      "C: CERF, L: Linebacker)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    for (const AppProfile &app : apps) {
        plan.add(app, SchemeConfig::baseline(), {}, "B");
        // The oracle's warp limit is app-specific; derive it inside the
        // cell (the sweep is memoized, so this costs lookups only).
        plan.addCustom(app.id, "S", {}, [app](SimRunner &runner) {
            const SwlOracleResult oracle = findBestSwl(runner, app);
            return runner.run(app,
                              SchemeConfig::bestSwl(oracle.bestLimit));
        });
        plan.add(app, SchemeConfig::pcal(), {}, "P");
        plan.add(app, SchemeConfig::cerf(), {}, "C");
        plan.add(app, SchemeConfig::linebacker(), {}, "L");
    }

    const std::vector<CellResult> results = runPlan(opts, plan);

    TextTable table;
    table.setHeader({"app", "scheme", "L1 hit", "Reg hit", "miss",
                     "bypass"});
    Breakdown lb_sum;
    Breakdown cerf_sum;
    const double n = static_cast<double>(apps.size());
    for (const CellResult &result : results) {
        if (!result.ok)
            continue;
        const Breakdown b = breakdownOf(result.metrics);
        table.addRow({result.app, result.scheme, fmtPercent(b.hit),
                      fmtPercent(b.regHit), fmtPercent(b.miss),
                      fmtPercent(b.bypass)});
        if (result.scheme == "L") {
            lb_sum.hit += b.hit;
            lb_sum.regHit += b.regHit;
        } else if (result.scheme == "C") {
            cerf_sum.hit += b.hit;
            cerf_sum.regHit += b.regHit;
        }
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured:\n");
    printPaperVsMeasured("Linebacker L1+Reg hit ratio", 65.1,
                         100.0 * (lb_sum.hit + lb_sum.regHit) / n, "%");
    printPaperVsMeasured("Linebacker Reg-hit share of accesses", 40.4,
                         100.0 * lb_sum.regHit / n, "%");
    printPaperVsMeasured("CERF hit ratio", 57.9,
                         100.0 * (cerf_sum.hit + cerf_sum.regHit) / n,
                         "%");
    return 0;
}
