/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * tag-array probes, VTT searches, register-file bank arbitration, DRAM
 * channel scheduling, Load Monitor updates, address-pattern generation,
 * and a whole simulated GPU cycle.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/gpu.hpp"
#include "lb/load_monitor.hpp"
#include "lb/victim_tag_table.hpp"
#include "mem/dram.hpp"
#include "mem/tag_array.hpp"
#include "workload/suite.hpp"

namespace
{

using namespace lbsim;

void
BM_TagArrayAccess(benchmark::State &state)
{
    TagArray tags(48, static_cast<std::uint32_t>(state.range(0)));
    Rng rng(42);
    // Pre-fill.
    for (int i = 0; i < 2000; ++i)
        tags.insert(rng.below(4096) * kLineBytes, 0, i);
    Cycle now = 2000;
    for (auto _ : state) {
        const Addr addr = rng.below(4096) * kLineBytes;
        if (!tags.access(addr, 0, now))
            tags.insert(addr, 0, now);
        ++now;
    }
}
BENCHMARK(BM_TagArrayAccess)->Arg(4)->Arg(8)->Arg(32);

void
BM_VttProbe(benchmark::State &state)
{
    GpuConfig gpu;
    LbConfig lb;
    SimStats stats;
    VictimTagTable vtt(gpu, lb, &stats);
    vtt.setActivePartitions(static_cast<std::uint32_t>(state.range(0)));
    Rng rng(7);
    RegNum reg = 0;
    for (int i = 0; i < 1000; ++i)
        vtt.insert(rng.below(8192) * kLineBytes, i, reg);
    Cycle now = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            vtt.probe(rng.below(8192) * kLineBytes, now));
        ++now;
    }
}
BENCHMARK(BM_VttProbe)->Arg(1)->Arg(4)->Arg(8);

void
BM_RegisterFileArbitration(benchmark::State &state)
{
    GpuConfig cfg;
    SimStats stats;
    RegisterFile rf(cfg, &stats);
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        rf.beginCycle(now);
        for (int i = 0; i < 8; ++i) {
            benchmark::DoNotOptimize(rf.accessOperands(
                static_cast<RegNum>(rng.below(2040)), 3, now));
        }
        ++now;
    }
}
BENCHMARK(BM_RegisterFileArbitration);

void
BM_DramChannelTick(benchmark::State &state)
{
    GpuConfig cfg;
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    Rng rng(9);
    Cycle now = 0;
    std::vector<DramCompletion> done;
    for (auto _ : state) {
        while (dram.canAccept()) {
            dram.enqueue({rng.below(1 << 20) * kLineBytes, false,
                          RequestKind::DataRead, 0, now},
                         now);
        }
        dram.tick(now);
        done.clear();
        dram.drainCompleted(now, done);
        benchmark::DoNotOptimize(done.size());
        ++now;
    }
}
BENCHMARK(BM_DramChannelTick);

void
BM_LoadMonitorRecord(benchmark::State &state)
{
    LbConfig lb;
    LoadMonitor lm(lb);
    Rng rng(11);
    for (auto _ : state) {
        lm.recordAccess(static_cast<Pc>(rng.below(32) * 4),
                        static_cast<std::uint8_t>(rng.below(32)),
                        rng.chance(0.4));
    }
}
BENCHMARK(BM_LoadMonitorRecord);

void
BM_PatternGeneration(benchmark::State &state)
{
    const AppProfile &app = appById("BC");
    GpuConfig cfg;
    const KernelInfo kernel = app.buildKernel(cfg);
    AccessContext ctx;
    std::vector<Addr> lines;
    std::uint32_t iter = 0;
    for (auto _ : state) {
        ctx.globalCtaId = iter % 64;
        ctx.warpInCta = iter % 8;
        ctx.iteration = iter;
        lines.clear();
        kernel.patterns[iter % kernel.patterns.size()]->generate(ctx,
                                                                 lines);
        benchmark::DoNotOptimize(lines.size());
        ++iter;
    }
}
BENCHMARK(BM_PatternGeneration);

void
BM_GpuCycle(benchmark::State &state)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 1; // Construction only; we tick manually.
    Gpu gpu(cfg);
    const AppProfile &app = appById("S2");
    static const KernelInfo kernel = app.buildKernel(cfg);
    gpu.runKernel(kernel); // Launch CTAs, then keep ticking below.
    for (auto _ : state)
        gpu.tick();
}
BENCHMARK(BM_GpuCycle);

} // namespace

BENCHMARK_MAIN();
