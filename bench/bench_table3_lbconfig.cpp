/**
 * @file
 * Table 3: Linebacker's microarchitectural configuration.
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/report.hpp"
#include "power/energy_model.hpp"

int
main()
{
    using namespace lbsim;

    printFigureBanner("Table 3",
                      "Microarchitectural configuration of Linebacker");

    const LbConfig lb;
    const EnergyParams energy;
    TextTable table;
    table.setHeader({"parameter", "value"});
    table.addRow({"IPC & per-load locality monitoring period",
                  std::to_string(lb.monitorPeriod) + " cycles"});
    table.addRow({"Cache hit threshold",
                  fmtPercent(lb.hitRatioThreshold, 0)});
    table.addRow({"IPC variation bounds",
                  "Upper: " + fmtDouble(lb.ipcVarUpper, 2) +
                      ", Lower: " + fmtDouble(lb.ipcVarLower, 2)});
    table.addRow({"VTT configuration",
                  std::to_string(lb.vttWays) +
                      "-way set-associative VP / " +
                      std::to_string(lb.vttMaxPartitions) + " VPs"});
    table.addRow({"VP access latency",
                  std::to_string(lb.vttAccessLatency) + " cycles"});
    table.addRow({"Load Monitor entries",
                  std::to_string(lb.loadMonitorEntries)});
    table.addRow({"Backup buffer entries",
                  std::to_string(lb.backupBufferEntries)});
    table.addRow({"CTA manager access energy",
                  fmtDouble(energy.ctaManagerAccessPj, 2) + " pJ"});
    table.addRow({"HPC access energy",
                  fmtDouble(energy.hpcAccessPj, 2) + " pJ"});
    table.addRow({"LM access energy",
                  fmtDouble(energy.loadMonitorAccessPj, 2) + " pJ"});
    table.addRow({"VTT access energy",
                  fmtDouble(energy.vttAccessPj, 2) + " pJ"});
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
