/**
 * @file
 * Table 3: Linebacker's microarchitectural configuration.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "harness/report.hpp"
#include "power/energy_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "table3_lbconfig");
    printFigureBanner("Table 3",
                      "Microarchitectural configuration of Linebacker");

    const LbConfig lb;
    const EnergyParams energy;
    const std::vector<std::pair<std::string, std::string>> rows = {
        {"IPC & per-load locality monitoring period",
         std::to_string(lb.monitorPeriod) + " cycles"},
        {"Cache hit threshold", fmtPercent(lb.hitRatioThreshold, 0)},
        {"IPC variation bounds",
         "Upper: " + fmtDouble(lb.ipcVarUpper, 2) +
             ", Lower: " + fmtDouble(lb.ipcVarLower, 2)},
        {"VTT configuration",
         std::to_string(lb.vttWays) + "-way set-associative VP / " +
             std::to_string(lb.vttMaxPartitions) + " VPs"},
        {"VP access latency",
         std::to_string(lb.vttAccessLatency) + " cycles"},
        {"Load Monitor entries", std::to_string(lb.loadMonitorEntries)},
        {"Backup buffer entries",
         std::to_string(lb.backupBufferEntries)},
        {"CTA manager access energy",
         fmtDouble(energy.ctaManagerAccessPj, 2) + " pJ"},
        {"HPC access energy", fmtDouble(energy.hpcAccessPj, 2) + " pJ"},
        {"LM access energy",
         fmtDouble(energy.loadMonitorAccessPj, 2) + " pJ"},
        {"VTT access energy", fmtDouble(energy.vttAccessPj, 2) + " pJ"},
    };

    TextTable table;
    table.setHeader({"parameter", "value"});
    for (const auto &[parameter, value] : rows)
        table.addRow({parameter, value});
    std::fputs(table.render().c_str(), stdout);

    if (opts.writeJson) {
        std::ofstream out(opts.jsonPath);
        if (out) {
            JsonWriter json(out);
            json.beginObject();
            json.field("bench", opts.benchName);
            json.field("schemaVersion", std::uint64_t{1});
            json.field("smoke", opts.smoke);
            json.beginObjectField("config");
            for (const auto &[parameter, value] : rows)
                json.field(parameter, value);
            json.endObject();
            json.endObject();
        }
    }
    return 0;
}
