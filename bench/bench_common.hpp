/**
 * @file
 * Shared setup for the figure-reproduction benches.
 *
 * Every bench simulates the same scaled chip (2 SMs, shared resources
 * scaled, 200k-cycle warm-up + 400k measured cycles) so results compose
 * across binaries, and shares the on-disk memo cache so the Best-SWL
 * oracle sweep is paid once.
 *
 * Benches are declarative: they build an ExperimentPlan and hand it to
 * runPlan(), which executes the cells on a worker pool and writes the
 * machine-readable BENCH_<name>.json beside the text tables. All
 * binaries accept the same arguments:
 *
 *   --threads <n>   worker threads (default: hardware concurrency)
 *   --smoke         reduced cycles and app subset, for CI smoke runs
 *   --json [path]   JSON output path (default BENCH_<name>.json)
 *   --no-json       skip the JSON artifact
 *   --no-cache      bypass the on-disk memo cache
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "harness/experiment.hpp"
#include "harness/oracle.hpp"
#include "harness/report.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim::bench
{

/** Options shared by every bench binary. */
struct BenchOptions
{
    std::string benchName;
    unsigned threads = 0;   ///< 0 = hardware concurrency.
    /** SMs to simulate; 0 keeps the standard 2-SM scaled slice. */
    std::uint32_t sms = 0;
    /** Worker threads for the parallel SM tick phase; 0 = serial. */
    std::uint32_t smThreads = 0;
    bool smoke = false;
    bool writeJson = true;
    std::string jsonPath;   ///< Default BENCH_<benchName>.json.
};

inline void
benchUsage(const std::string &bench_name)
{
    std::printf(
        "usage: bench_%s [options]\n"
        "  --threads <n>   worker threads (default: hardware)\n"
        "  --sms <n>       SMs to simulate (default 2, scaled chip)\n"
        "  --sm-threads <n> parallel SM tick-phase threads (default 1;\n"
        "                  results bit-identical at any value)\n"
        "  --smoke         reduced cycles and app subset (CI)\n"
        "  --json [path]   JSON output path (default BENCH_%s.json)\n"
        "  --no-json       skip the JSON artifact\n"
        "  --no-cache      bypass the on-disk memo cache\n",
        bench_name.c_str(), bench_name.c_str());
}

/** Parse the shared bench arguments; exits on --help or bad input. */
inline BenchOptions
parseBenchArgs(int argc, char **argv, const std::string &bench_name)
{
    BenchOptions opts;
    opts.benchName = bench_name;
    opts.jsonPath = "BENCH_" + bench_name + ".json";
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--threads" && i + 1 < argc) {
            opts.threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--sms" && i + 1 < argc) {
            opts.sms = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--sm-threads" && i + 1 < argc) {
            opts.smThreads = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--smoke") {
            opts.smoke = true;
        } else if (a == "--json") {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opts.jsonPath = argv[++i];
            opts.writeJson = true;
        } else if (a == "--no-json") {
            opts.writeJson = false;
        } else if (a == "--no-cache") {
            setenv("LBSIM_NO_CACHE", "1", 1);
        } else if (a == "--help" || a == "-h") {
            benchUsage(bench_name);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
            benchUsage(bench_name);
            std::exit(2);
        }
    }
    // CLI boundary: oversubscribing a small box only thrashes, so cap
    // user-supplied counts at the hardware (library callers may still
    // oversubscribe deliberately, e.g. the parallel-tick tests).
    opts.threads = clampThreadArg(opts.threads, "--threads");
    opts.smThreads = clampThreadArg(opts.smThreads, "--sm-threads");
    return opts;
}

/** Standard bench configuration (see DESIGN.md scaling note). */
inline GpuConfig
benchGpuConfig(const BenchOptions &opts = {})
{
    GpuConfig cfg;
    cfg.warmupCycles = opts.smoke ? 50000 : 200000;
    return cfg;
}

inline RunnerOptions
benchRunnerOptions(const BenchOptions &opts = {})
{
    RunnerOptions options;
    options.simSms = opts.sms ? opts.sms : 2;
    options.smThreads = opts.smThreads;
    options.maxCycles = opts.smoke ? 100000 : 400000;
    options.useMemoCache = true;
    return options;
}

/**
 * Applications a bench sweeps: the full Table-2 suite, or a six-app
 * subset (three sensitive, three insensitive) under --smoke.
 */
inline std::vector<AppProfile>
benchApps(const BenchOptions &opts)
{
    if (!opts.smoke)
        return benchmarkSuite();
    std::vector<AppProfile> subset;
    for (const char *id : {"S2", "KM", "CF", "LI", "GA", "HS"})
        subset.push_back(appById(id));
    return subset;
}

/** Plan preloaded with the standard bench configuration. */
inline ExperimentPlan
benchPlan(const BenchOptions &opts)
{
    return ExperimentPlan(benchGpuConfig(opts), LbConfig{},
                          benchRunnerOptions(opts));
}

/**
 * Execute @p plan on the worker pool, report failed cells on stderr,
 * and write the JSON artifact. Results come back in plan order, so
 * tables and JSON are identical for any --threads value.
 */
inline std::vector<CellResult>
runPlan(const BenchOptions &opts, const ExperimentPlan &plan)
{
    EngineOptions engine_opts;
    engine_opts.threads = opts.threads;
    engine_opts.printProgress = true;
    std::vector<CellResult> results =
        ExperimentEngine(engine_opts).run(plan);
    for (const CellResult &result : results) {
        if (!result.ok) {
            std::fprintf(stderr, "cell %s/%s failed: %s\n",
                         result.app.c_str(), result.scheme.c_str(),
                         result.error.c_str());
        }
    }
    if (opts.writeJson)
        writeExperimentJson(opts.jsonPath, opts.benchName, opts.smoke,
                            results);
    return results;
}

} // namespace lbsim::bench
