/**
 * @file
 * Shared setup for the figure-reproduction benches.
 *
 * Every bench simulates the same scaled chip (2 SMs, shared resources
 * scaled, 300k-cycle warm-up + 700k measured cycles) so results compose
 * across binaries, and shares the on-disk memo cache so the Best-SWL
 * oracle sweep is paid once.
 */

#pragma once

#include <string>
#include <vector>

#include "harness/oracle.hpp"
#include "harness/report.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim::bench
{

/** Standard bench configuration (see DESIGN.md scaling note). */
inline GpuConfig
benchGpuConfig()
{
    GpuConfig cfg;
    cfg.warmupCycles = 200000;
    return cfg;
}

inline RunnerOptions
benchRunnerOptions()
{
    RunnerOptions options;
    options.simSms = 2;
    options.maxCycles = 400000;
    options.useMemoCache = true;
    return options;
}

/** Standard runner for figure benches. */
inline SimRunner
benchRunner()
{
    return SimRunner(benchGpuConfig(), LbConfig{}, benchRunnerOptions());
}

/** Best-SWL metrics for @p app (oracle sweep, memoized). */
inline RunMetrics
bestSwlMetrics(SimRunner &runner, const AppProfile &app)
{
    return findBestSwl(runner, app).bestMetrics;
}

/** Table-2 app order: sensitive block then insensitive block. */
inline std::vector<std::string>
appOrder()
{
    std::vector<std::string> order;
    for (const AppProfile &app : benchmarkSuite())
        order.push_back(app.id);
    return order;
}

} // namespace lbsim::bench
