/**
 * @file
 * Figure 10: effect of Victim Tag Table partition set-associativity on
 * idle register-file utilization and performance.
 *
 * Paper: 4-way partitions perform best (+29.0% over Best-SWL) with
 * 88.5% of unused register file used; 1-way utilizes 92.8% but pays the
 * sequential search latency; 16-way wastes register space (71.1%).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 10",
                      "VTT partition associativity: idle-RF utilization "
                      "(left) and performance vs Best-SWL (right)");

    // Best-SWL reference with the default runner.
    SimRunner reference = benchRunner();
    ComparisonReport perf("speedup");
    TextTable table;
    table.setHeader({"ways", "partitions", "RF utilization",
                     "speedup vs Best-SWL (GM)"});

    double best_speedup = 0.0;
    std::uint32_t best_ways = 0;
    for (std::uint32_t ways : {1u, 2u, 4u, 8u, 16u, 32u}) {
        LbConfig lb;
        lb.vttWays = ways;
        lb.vttMaxPartitions = 1536 / (48 * ways);
        SimRunner runner(benchGpuConfig(), lb, benchRunnerOptions());

        std::vector<double> ratios;
        std::vector<double> utils;
        for (const AppProfile &app : benchmarkSuite()) {
            const RunMetrics swl = bestSwlMetrics(reference, app);
            const RunMetrics m =
                runner.run(app, SchemeConfig::linebacker());
            if (swl.ipc > 0)
                ratios.push_back(m.ipc / swl.ipc);
            if (m.victimSpaceUtilization > 0)
                utils.push_back(m.victimSpaceUtilization);
        }
        const double speedup = geomean(ratios);
        double util = 0;
        for (double u : utils)
            util += u;
        util = utils.empty() ? 0.0 : util / utils.size();
        if (speedup > best_speedup) {
            best_speedup = speedup;
            best_ways = ways;
        }
        table.addRow({std::to_string(ways) + "-way",
                      std::to_string(lb.vttMaxPartitions),
                      fmtPercent(util), fmtSpeedup(speedup)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  best configuration: paper 4-way (1.29x), measured "
                "%u-way (%.2fx)\n",
                best_ways, best_speedup);
    return 0;
}
