/**
 * @file
 * Figure 10: effect of Victim Tag Table partition set-associativity on
 * idle register-file utilization and performance.
 *
 * Paper: 4-way partitions perform best (+29.0% over Best-SWL) with
 * 88.5% of unused register file used; 1-way utilizes 92.8% but pays the
 * sequential search latency; 16-way wastes register space (71.1%).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig10_vtt_assoc");
    printFigureBanner("Figure 10",
                      "VTT partition associativity: idle-RF utilization "
                      "(left) and performance vs Best-SWL (right)");

    const std::vector<AppProfile> apps = benchApps(opts);
    const std::vector<std::uint32_t> way_points = {1, 2, 4, 8, 16, 32};

    ExperimentPlan plan = benchPlan(opts);
    plan.withBestSwl(apps);
    std::vector<SweepPoint> points;
    for (std::uint32_t ways : way_points) {
        points.push_back(
            {std::to_string(ways) + "-way",
             [ways](GpuConfig &, LbConfig &lb, RunnerOptions &) {
                 lb.vttWays = ways;
                 lb.vttMaxPartitions = 1536 / (48 * ways);
             }});
    }
    plan.sweepParam(points, apps, {SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    TextTable table;
    table.setHeader({"ways", "partitions", "RF utilization",
                     "speedup vs Best-SWL (GM)"});
    double best_speedup = 0.0;
    std::uint32_t best_ways = 0;
    for (std::size_t p = 0; p < way_points.size(); ++p) {
        const std::uint32_t ways = way_points[p];
        std::vector<double> ratios;
        std::vector<double> utils;
        for (const AppProfile &app : apps) {
            const RunMetrics *swl =
                findMetrics(results, app.id, "Best-SWL");
            const RunMetrics *m = findMetrics(
                results, app.id, "Linebacker", points[p].label);
            if (!swl || !m)
                continue;
            if (swl->ipc > 0)
                ratios.push_back(m->ipc / swl->ipc);
            if (m->victimSpaceUtilization > 0)
                utils.push_back(m->victimSpaceUtilization);
        }
        const double speedup = geomean(ratios);
        double util = 0;
        for (double u : utils)
            util += u;
        util = utils.empty() ? 0.0 : util / utils.size();
        if (speedup > best_speedup) {
            best_speedup = speedup;
            best_ways = ways;
        }
        table.addRow({points[p].label,
                      std::to_string(1536 / (48 * ways)),
                      fmtPercent(util), fmtSpeedup(speedup)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  best configuration: paper 4-way (1.29x), measured "
                "%u-way (%.2fx)\n",
                best_ways, best_speedup);
    return 0;
}
