/**
 * @file
 * Figure 5: the motivational experiment — performance of an idealized
 * L1 extension using idle register-file space.
 *
 * CacheExt augments L1 by the statically unused register space with
 * baseline scheduling; Best-SWL+CacheExt additionally converts the
 * dynamically unused space of the throttled warps. Paper: Best-SWL
 * +11.5%, CacheExt +54.3%, Best-SWL+CacheExt +77.0% over baseline.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig05_cache_ext");
    printFigureBanner("Figure 5",
                      "Effect of an enhanced (register-extended) L1 "
                      "cache, normalized to baseline");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .withBestSwl(apps)
        .crossApps(apps, {SchemeConfig::cacheExtension()});
    // Best-SWL+CacheExt needs the oracle's warp limit; the sweep itself
    // is memoized, so re-deriving it inside the cell costs one lookup.
    for (const AppProfile &app : apps) {
        plan.addCustom(app.id, "Best-SWL+CacheExt", {},
                       [app](SimRunner &runner) {
                           const SwlOracleResult oracle =
                               findBestSwl(runner, app);
                           return runner.run(
                               app, SchemeConfig::bestSwlCacheExt(
                                        oracle.bestLimit));
                       });
    }

    const std::vector<CellResult> results = runPlan(opts, plan);
    const ComparisonReport report = reportFromCells(plan, results);

    std::fputs(report.renderNormalized("Baseline").c_str(), stdout);

    std::printf("\nPaper vs measured (speedup over baseline):\n");
    printPaperVsMeasured("Best-SWL", 1.115,
                         report.geomeanVs("Best-SWL", "Baseline"), "x");
    printPaperVsMeasured("CacheExt", 1.543,
                         report.geomeanVs("CacheExt", "Baseline"), "x");
    printPaperVsMeasured(
        "Best-SWL+CacheExt", 1.770,
        report.geomeanVs("Best-SWL+CacheExt", "Baseline"), "x");
    return 0;
}
