/**
 * @file
 * Figure 5: the motivational experiment — performance of an idealized
 * L1 extension using idle register-file space.
 *
 * CacheExt augments L1 by the statically unused register space with
 * baseline scheduling; Best-SWL+CacheExt additionally converts the
 * dynamically unused space of the throttled warps. Paper: Best-SWL
 * +11.5%, CacheExt +54.3%, Best-SWL+CacheExt +77.0% over baseline.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 5",
                      "Effect of an enhanced (register-extended) L1 "
                      "cache, normalized to baseline");

    SimRunner runner = benchRunner();
    ComparisonReport report;
    report.setAppOrder(appOrder());

    for (const AppProfile &app : benchmarkSuite()) {
        report.add(app.id, "Baseline",
                   runner.run(app, SchemeConfig::baseline()).ipc);
        const SwlOracleResult oracle = findBestSwl(runner, app);
        report.add(app.id, "Best-SWL", oracle.bestMetrics.ipc);
        report.add(app.id, "CacheExt",
                   runner.run(app, SchemeConfig::cacheExtension()).ipc);
        report.add(app.id, "Best-SWL+CacheExt",
                   runner.run(app, SchemeConfig::bestSwlCacheExt(
                                       oracle.bestLimit))
                       .ipc);
    }

    std::fputs(report.renderNormalized("Baseline").c_str(), stdout);

    std::printf("\nPaper vs measured (speedup over baseline):\n");
    printPaperVsMeasured("Best-SWL", 1.115,
                         report.geomeanVs("Best-SWL", "Baseline"), "x");
    printPaperVsMeasured("CacheExt", 1.543,
                         report.geomeanVs("CacheExt", "Baseline"), "x");
    printPaperVsMeasured(
        "Best-SWL+CacheExt", 1.770,
        report.geomeanVs("Best-SWL+CacheExt", "Baseline"), "x");
    return 0;
}
