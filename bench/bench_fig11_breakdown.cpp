/**
 * @file
 * Figure 11: performance contribution of Linebacker's techniques —
 * plain Victim Caching, Selective Victim Caching (SVC), and CTA
 * Throttling + SVC (full Linebacker) — normalized to Best-SWL.
 *
 * Paper: SVC beats plain victim caching by >7% on the streaming-heavy
 * apps (BI, BC, BG, SR2, SP); adding CTA throttling contributes a
 * further +7.7% on average.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig11_breakdown");
    printFigureBanner("Figure 11",
                      "Linebacker technique breakdown (normalized to "
                      "Best-SWL)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBestSwl(apps)
        .crossApps(apps, {SchemeConfig::victimCachingAll(),
                          SchemeConfig::selectiveVictimCaching()});
    for (const AppProfile &app : apps)
        plan.add(app, SchemeConfig::linebacker(), {}, "Throttling+SVC");

    const std::vector<CellResult> results = runPlan(opts, plan);
    const ComparisonReport report = reportFromCells(plan, results);

    std::fputs(report.renderNormalized("Best-SWL").c_str(), stdout);

    const double vc = report.geomeanVs("Victim Caching", "Best-SWL");
    const double svc =
        report.geomeanVs("Selective Victim Caching", "Best-SWL");
    const double full = report.geomeanVs("Throttling+SVC", "Best-SWL");
    std::printf("\nPaper vs measured:\n");
    printPaperVsMeasured("SVC gain over plain VC (%)", 0.0,
                         100.0 * (svc / vc - 1.0), "");
    printPaperVsMeasured("Throttling gain over SVC (%)", 7.7,
                         100.0 * (full / svc - 1.0), "");
    return 0;
}
