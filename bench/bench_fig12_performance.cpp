/**
 * @file
 * Figure 12: performance of baseline, Best-SWL, PCAL, CERF, and
 * Linebacker across the 20-application suite, normalized to Best-SWL.
 *
 * Paper results: Linebacker +29.0% over Best-SWL (best of all); PCAL
 * +7.6%; CERF +19.6%; baseline at 1/1.115 of Best-SWL.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig12_performance");
    printFigureBanner("Figure 12",
                      "Performance comparison (normalized to Best-SWL)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .withBestSwl(apps)
        .crossApps(apps, {SchemeConfig::pcal(), SchemeConfig::cerf(),
                          SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);
    const ComparisonReport report = reportFromCells(plan, results);

    std::fputs(report.renderNormalized("Best-SWL").c_str(), stdout);

    std::printf("\nPaper vs measured (speedup over Best-SWL):\n");
    printPaperVsMeasured("Linebacker", 1.290,
                         report.geomeanVs("Linebacker", "Best-SWL"), "x");
    printPaperVsMeasured("CERF", 1.196,
                         report.geomeanVs("CERF", "Best-SWL"), "x");
    printPaperVsMeasured("PCAL", 1.076,
                         report.geomeanVs("PCAL", "Best-SWL"), "x");
    printPaperVsMeasured("Best-SWL over baseline", 1.115,
                         1.0 / report.geomeanVs("Baseline", "Best-SWL"),
                         "x");
    return 0;
}
