/**
 * @file
 * Figure 12: performance of baseline, Best-SWL, PCAL, CERF, and
 * Linebacker across the 20-application suite, normalized to Best-SWL.
 *
 * Paper results: Linebacker +29.0% over Best-SWL (best of all); PCAL
 * +7.6%; CERF +19.6%; baseline at 1/1.115 of Best-SWL.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 12",
                      "Performance comparison (normalized to Best-SWL)");

    SimRunner runner = benchRunner();
    ComparisonReport report;
    report.setAppOrder(appOrder());

    for (const AppProfile &app : benchmarkSuite()) {
        report.add(app.id, "Baseline",
                   runner.run(app, SchemeConfig::baseline()).ipc);
        report.add(app.id, "Best-SWL", bestSwlMetrics(runner, app).ipc);
        report.add(app.id, "PCAL",
                   runner.run(app, SchemeConfig::pcal()).ipc);
        report.add(app.id, "CERF",
                   runner.run(app, SchemeConfig::cerf()).ipc);
        report.add(app.id, "Linebacker",
                   runner.run(app, SchemeConfig::linebacker()).ipc);
    }

    std::fputs(report.renderNormalized("Best-SWL").c_str(), stdout);

    std::printf("\nPaper vs measured (speedup over Best-SWL):\n");
    printPaperVsMeasured("Linebacker", 1.290,
                         report.geomeanVs("Linebacker", "Best-SWL"), "x");
    printPaperVsMeasured("CERF", 1.196,
                         report.geomeanVs("CERF", "Best-SWL"), "x");
    printPaperVsMeasured("PCAL", 1.076,
                         report.geomeanVs("PCAL", "Best-SWL"), "x");
    printPaperVsMeasured("Best-SWL over baseline", 1.115,
                         1.0 / report.geomeanVs("Baseline", "Best-SWL"),
                         "x");
    return 0;
}
