/**
 * @file
 * Simulation-throughput harness: cycles/sec and peak RSS per scheme.
 *
 * Times the Fig-12 sweep (baseline, SWL, PCAL, CERF, Linebacker over
 * the bench suite) with the memo cache forced off, so every cell pays
 * the real cycle kernel. Reports simulated-cycles-per-wall-second and
 * the process peak RSS after each scheme, writes the BENCH_perf.json
 * artifact (a gitignored per-run output), and maintains the committed
 * trajectory file (bench/perf/BENCH_perf_trajectory.json, format
 * #lbsim-perf-point-v1 via harness/perf_point) so the repo carries its
 * own performance history:
 *
 *   --record <label>    append this run to the trajectory file
 *   --check             compare against the newest trajectory point;
 *                       exit 1 below 75%, warn below 90%
 *   --trajectory <path> trajectory file location
 *                       (default bench/perf/BENCH_perf_trajectory.json)
 *   --naive             naive-reference mode: run the plain per-cycle
 *                       loop (event-driven tick skipping disabled)
 *   --vs <artifact>     relative gate: require this run's total
 *                       cycles/sec to beat the point in another run's
 *                       BENCH_perf.json by --min-ratio (default 2.0).
 *                       CI runs the naive reference first, then gates
 *                       the optimized kernel against it — runner-speed
 *                       independent, unlike an absolute floor.
 *   --min-ratio <f>     ratio for --vs (default 2.0)
 *
 * The Best-SWL column runs a fixed warp limit ("SWL-8") instead of the
 * per-app oracle sweep: the oracle multiplies wall time by its sweep
 * width without exercising any new simulator path, which would drown
 * the signal this harness exists to track.
 *
 * Peak RSS is the process high-water mark sampled after each scheme
 * completes (ru_maxrss is monotone, so per-scheme values are a running
 * maximum; the final row is the figure that matters).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/perf_point.hpp"

namespace
{

using namespace lbsim;
using namespace lbsim::bench;

long
peakRssKb()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss; // KB on Linux.
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Whole-file slurp; empty optional when unreadable. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string record_label;
    bool check = false;
    bool naive = false;
    std::string vs_path;
    double min_ratio = 2.0;
    std::string trajectory = "bench/perf/BENCH_perf_trajectory.json";

    // Strip the perf-specific arguments, then hand the rest to the
    // shared parser.
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--record" && i + 1 < argc) {
            record_label = argv[++i];
        } else if (a == "--check") {
            check = true;
        } else if (a == "--naive") {
            naive = true;
        } else if (a == "--vs" && i + 1 < argc) {
            vs_path = argv[++i];
        } else if (a == "--min-ratio" && i + 1 < argc) {
            min_ratio = std::strtod(argv[++i], nullptr);
        } else if (a == "--trajectory" && i + 1 < argc) {
            trajectory = argv[++i];
        } else {
            rest.push_back(argv[i]);
        }
    }
    const BenchOptions opts = parseBenchArgs(
        static_cast<int>(rest.size()), rest.data(), "perf");

    // Throughput numbers are meaningless against the memo cache.
    setenv("LBSIM_NO_CACHE", "1", 1);

    printFigureBanner("Perf", naive
                          ? "Simulation throughput per scheme "
                            "(cycles/sec, uncached, NAIVE reference)"
                          : "Simulation throughput per scheme "
                            "(cycles/sec, uncached)");

    GpuConfig gpu = benchGpuConfig(opts);
    if (naive)
        gpu.tickSkip = false;
    RunnerOptions options = benchRunnerOptions(opts);
    options.useMemoCache = false;
    const std::vector<AppProfile> apps = benchApps(opts);

    const std::vector<SchemeConfig> schemes = {
        SchemeConfig::baseline(), SchemeConfig::bestSwl(8),
        SchemeConfig::pcal(), SchemeConfig::cerf(),
        SchemeConfig::linebacker()};

    PerfPoint point;
    point.label = record_label.empty() ? (naive ? "naive" : "run")
                                       : record_label;
    point.timestamp = static_cast<std::int64_t>(std::time(nullptr));
    point.smoke = opts.smoke;
    point.sms = opts.sms ? opts.sms : 2;
    point.smThreads = opts.smThreads;

    for (const SchemeConfig &scheme : schemes) {
        SchemePerfPoint perf;
        perf.scheme = scheme.name;
        std::uint64_t cycles = 0;
        const double start = nowSec();
        for (const AppProfile &app : apps) {
            SimRunner runner(gpu, LbConfig{}, options);
            const RunMetrics metrics = runner.run(app, scheme);
            cycles += gpu.warmupCycles + metrics.stats.cycles;
        }
        perf.wallSec = nowSec() - start;
        perf.peakRssKb = peakRssKb();
        perf.cyclesPerSec =
            perf.wallSec > 0 ? static_cast<double>(cycles) / perf.wallSec
                             : 0;
        point.wallSec += perf.wallSec;
        point.simCycles += cycles;
        std::fprintf(stderr, "[perf] %-12s %7.2fs  %8.0f kcyc/s\n",
                     perf.scheme.c_str(), perf.wallSec,
                     perf.cyclesPerSec / 1e3);
        point.schemes.push_back(perf);
    }

    point.totalCyclesPerSec =
        point.wallSec > 0
            ? static_cast<double>(point.simCycles) / point.wallSec
            : 0;
    point.peakRssKb = peakRssKb();

    std::printf("\n| scheme     | wall (s) | Mcycles | cycles/sec | "
                "peak RSS (MB) |\n");
    std::printf("|------------|----------|---------|------------|"
                "---------------|\n");
    for (const SchemePerfPoint &perf : point.schemes) {
        std::printf("| %-10s | %8.2f | %7.1f | %10.0f | %13.1f |\n",
                    perf.scheme.c_str(), perf.wallSec,
                    perf.cyclesPerSec * perf.wallSec / 1e6,
                    perf.cyclesPerSec,
                    static_cast<double>(perf.peakRssKb) / 1024.0);
    }
    std::printf("| %-10s | %8.2f | %7.1f | %10.0f | %13.1f |\n", "total",
                point.wallSec,
                static_cast<double>(point.simCycles) / 1e6,
                point.totalCyclesPerSec,
                static_cast<double>(point.peakRssKb) / 1024.0);

    if (opts.writeJson) {
        std::ofstream out(opts.jsonPath);
        out << "{\"bench\":\"perf\",\"point\":" << serializePerfPoint(point)
            << "}\n";
        std::printf("\nJSON artifact: %s\n", opts.jsonPath.c_str());
    }

    if (!record_label.empty()) {
        std::string error;
        if (!appendTrajectoryPoint(trajectory, point, &error)) {
            std::fprintf(stderr, "failed to update %s: %s\n",
                         trajectory.c_str(), error.c_str());
            return 2;
        }
        std::printf("Recorded trajectory point '%s' in %s\n",
                    record_label.c_str(), trajectory.c_str());
    }

    if (!vs_path.empty()) {
        std::string text, error;
        PerfPoint other;
        if (!readFile(vs_path, text) ||
            !parsePerfPointArtifact(text, other, &error)) {
            std::fprintf(stderr, "--vs: cannot read point from %s: %s\n",
                         vs_path.c_str(), error.c_str());
            return 2;
        }
        const double ratio = other.totalCyclesPerSec > 0
                                 ? point.totalCyclesPerSec /
                                       other.totalCyclesPerSec
                                 : 0;
        std::printf("\nRelative gate vs '%s' (%.0f cyc/s): %.2fx "
                    "(floor %.2fx)\n",
                    other.label.c_str(), other.totalCyclesPerSec, ratio,
                    min_ratio);
        if (ratio < min_ratio) {
            std::fprintf(stderr,
                         "FAIL: %.2fx vs %s, need >= %.2fx\n", ratio,
                         other.label.c_str(), min_ratio);
            return 1;
        }
    }

    if (check) {
        std::vector<PerfPoint> history;
        std::string error;
        if (!loadTrajectory(trajectory, history, &error)) {
            std::fprintf(stderr, "--check: %s\n", error.c_str());
            return 2;
        }
        if (history.empty()) {
            std::fprintf(stderr, "--check: no trajectory point in %s\n",
                         trajectory.c_str());
            return 2;
        }
        const PerfPoint &last = history.back();
        const double ratio = last.totalCyclesPerSec > 0
                                 ? point.totalCyclesPerSec /
                                       last.totalCyclesPerSec
                                 : 0;
        std::printf("\nPerf check vs '%s' (%.0f cyc/s): ratio %.2fx\n",
                    last.label.c_str(), last.totalCyclesPerSec, ratio);
        if (ratio < 0.75) {
            std::fprintf(stderr,
                         "FAIL: throughput %.2fx of trajectory "
                         "(floor 0.75x)\n",
                         ratio);
            return 1;
        }
        if (ratio < 0.90)
            std::fprintf(stderr,
                         "WARN: throughput %.2fx of trajectory "
                         "(below 0.90x)\n",
                         ratio);
    }
    return 0;
}
