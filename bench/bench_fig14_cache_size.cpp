/**
 * @file
 * Figure 14: Linebacker and CERF speedups across L1 cache sizes
 * (16/48/64/96/128 KB), each normalized to the baseline with the same
 * cache size.
 *
 * Paper: Linebacker gains shrink from +78.0% at 16 KB to +12.0% at
 * 128 KB; CERF from +58.1% to +6.1%; Linebacker wins at every size.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 14",
                      "Speedup vs same-cache-size baseline across L1 "
                      "sizes (geometric mean over the suite)");

    TextTable table;
    table.setHeader({"L1 size", "CERF", "Linebacker"});

    double lb16 = 0;
    double lb128 = 0;
    for (std::uint32_t kb : {16u, 48u, 64u, 96u, 128u}) {
        GpuConfig cfg = benchGpuConfig();
        cfg.l1.sizeBytes = kb * 1024;
        SimRunner runner(cfg, LbConfig{}, benchRunnerOptions());

        std::vector<double> cerf_ratios;
        std::vector<double> lb_ratios;
        for (const AppProfile &app : benchmarkSuite()) {
            const double base =
                runner.run(app, SchemeConfig::baseline()).ipc;
            if (base <= 0)
                continue;
            cerf_ratios.push_back(
                runner.run(app, SchemeConfig::cerf()).ipc / base);
            lb_ratios.push_back(
                runner.run(app, SchemeConfig::linebacker()).ipc / base);
        }
        const double cerf_gm = geomean(cerf_ratios);
        const double lb_gm = geomean(lb_ratios);
        if (kb == 16)
            lb16 = lb_gm;
        if (kb == 128)
            lb128 = lb_gm;
        table.addRow({std::to_string(kb) + "KB", fmtSpeedup(cerf_gm),
                      fmtSpeedup(lb_gm)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured (Linebacker over baseline):\n");
    printPaperVsMeasured("16KB L1", 1.780, lb16, "x");
    printPaperVsMeasured("128KB L1", 1.120, lb128, "x");
    std::printf("  shape check: gains should shrink as the L1 grows\n");
    return 0;
}
