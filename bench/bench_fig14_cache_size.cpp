/**
 * @file
 * Figure 14: Linebacker and CERF speedups across L1 cache sizes
 * (16/48/64/96/128 KB), each normalized to the baseline with the same
 * cache size.
 *
 * Paper: Linebacker gains shrink from +78.0% at 16 KB to +12.0% at
 * 128 KB; CERF from +58.1% to +6.1%; Linebacker wins at every size.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "fig14_cache_size");
    printFigureBanner("Figure 14",
                      "Speedup vs same-cache-size baseline across L1 "
                      "sizes (geometric mean over the suite)");

    const std::vector<AppProfile> apps = benchApps(opts);
    const std::vector<std::uint32_t> sizes_kb = {16, 48, 64, 96, 128};

    ExperimentPlan plan = benchPlan(opts);
    std::vector<SweepPoint> points;
    for (std::uint32_t kb : sizes_kb) {
        points.push_back(
            {std::to_string(kb) + "KB",
             [kb](GpuConfig &cfg, LbConfig &, RunnerOptions &) {
                 cfg.l1.sizeBytes = kb * 1024;
             }});
    }
    plan.sweepParam(points, apps,
                    {SchemeConfig::baseline(), SchemeConfig::cerf(),
                     SchemeConfig::linebacker()});

    const std::vector<CellResult> results = runPlan(opts, plan);

    TextTable table;
    table.setHeader({"L1 size", "CERF", "Linebacker"});
    double lb16 = 0;
    double lb128 = 0;
    for (std::size_t p = 0; p < sizes_kb.size(); ++p) {
        const std::string &variant = points[p].label;
        std::vector<double> cerf_ratios;
        std::vector<double> lb_ratios;
        for (const AppProfile &app : apps) {
            const RunMetrics *base =
                findMetrics(results, app.id, "Baseline", variant);
            if (!base || base->ipc <= 0)
                continue;
            const RunMetrics *cerf =
                findMetrics(results, app.id, "CERF", variant);
            const RunMetrics *lb =
                findMetrics(results, app.id, "Linebacker", variant);
            if (cerf)
                cerf_ratios.push_back(cerf->ipc / base->ipc);
            if (lb)
                lb_ratios.push_back(lb->ipc / base->ipc);
        }
        const double cerf_gm = geomean(cerf_ratios);
        const double lb_gm = geomean(lb_ratios);
        if (sizes_kb[p] == 16)
            lb16 = lb_gm;
        if (sizes_kb[p] == 128)
            lb128 = lb_gm;
        table.addRow({variant, fmtSpeedup(cerf_gm), fmtSpeedup(lb_gm)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper vs measured (Linebacker over baseline):\n");
    printPaperVsMeasured("16KB L1", 1.780, lb16, "x");
    printPaperVsMeasured("128KB L1", 1.120, lb128, "x");
    std::printf("  shape check: gains should shrink as the L1 grows\n");
    return 0;
}
