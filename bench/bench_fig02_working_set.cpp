/**
 * @file
 * Figure 2: per-SM reused working-set size of the top four frequently
 * executed non-streaming loads, within a 50 000-cycle window.
 *
 * Paper observation: the aggregate exceeds the 48 KB L1 in 13 of 20
 * applications.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "harness/characterize.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 2",
                      "Reused working set of the top-4 non-streaming "
                      "loads per SM (50k-cycle window)");

    TextTable table;
    table.setHeader({"app", "working set", "> 48KB L1?"});
    int exceeds = 0;
    for (const AppProfile &app : benchmarkSuite()) {
        const AppCharacter character = characterizeApp(app);
        const double bytes = character.topReusedWorkingSetBytes(4);
        const bool over = bytes > 48.0 * 1024;
        exceeds += over ? 1 : 0;
        table.addRow({app.id, fmtKb(bytes), over ? "yes" : "no"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  apps whose top-4 reused working set exceeds the "
                "48KB L1: paper 13/20, measured %d/20\n",
                exceeds);
    return 0;
}
