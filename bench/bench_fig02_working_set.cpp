/**
 * @file
 * Figure 2: per-SM reused working-set size of the top four frequently
 * executed non-streaming loads, within a 50 000-cycle window.
 *
 * Paper observation: the aggregate exceeds the 48 KB L1 in 13 of 20
 * applications.
 */

#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "harness/characterize.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig02_working_set");
    printFigureBanner("Figure 2",
                      "Reused working set of the top-4 non-streaming "
                      "loads per SM (50k-cycle window)");

    const std::vector<AppProfile> apps = benchApps(opts);
    const std::vector<AppCharacter> characters = parallelMap(
        apps.size(), opts.threads,
        [&apps](std::size_t i) { return characterizeApp(apps[i]); });

    TextTable table;
    table.setHeader({"app", "working set", "> 48KB L1?"});
    int exceeds = 0;
    std::vector<double> working_sets;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double bytes = characters[i].topReusedWorkingSetBytes(4);
        working_sets.push_back(bytes);
        const bool over = bytes > 48.0 * 1024;
        exceeds += over ? 1 : 0;
        table.addRow({apps[i].id, fmtKb(bytes), over ? "yes" : "no"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n  apps whose top-4 reused working set exceeds the "
                "48KB L1: paper 13/20, measured %d/%zu\n",
                exceeds, apps.size());

    if (opts.writeJson) {
        std::ofstream out(opts.jsonPath);
        if (out) {
            JsonWriter json(out);
            json.beginObject();
            json.field("bench", opts.benchName);
            json.field("schemaVersion", std::uint64_t{1});
            json.field("smoke", opts.smoke);
            json.beginArrayField("cells");
            for (std::size_t i = 0; i < apps.size(); ++i) {
                json.beginObject();
                json.field("app", apps[i].id);
                json.field("ok", true);
                json.field("workingSetBytes", working_sets[i]);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
    }
    return 0;
}
