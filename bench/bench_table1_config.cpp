/**
 * @file
 * Table 1: print the simulated baseline GPU configuration.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "harness/report.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv, "table1_config");
    printFigureBanner("Table 1", "Simulation configuration");

    const GpuConfig cfg;
    const std::vector<std::pair<std::string, std::string>> rows = {
        {"# of SMs", std::to_string(cfg.numSms)},
        {"Clock freq.", fmtDouble(cfg.clockGhz * 1000, 0) + " MHz"},
        {"SIMD width", std::to_string(cfg.simdWidth)},
        {"Max threads/warps/CTAs per SM",
         std::to_string(cfg.maxThreadsPerSm) + "/" +
             std::to_string(cfg.maxWarpsPerSm) + "/" +
             std::to_string(cfg.maxCtasPerSm)},
        {"Warp scheduling",
         "GTO, " + std::to_string(cfg.schedulersPerSm) +
             " schedulers per SM"},
        {"Register file/SM", fmtKb(cfg.registerFileBytesPerSm)},
        {"Shared memory/SM", fmtKb(cfg.sharedMemBytesPerSm)},
        {"L1 cache size/SM",
         fmtKb(cfg.l1.sizeBytes) + ", " + std::to_string(cfg.l1.ways) +
             "-way, " + std::to_string(cfg.l1.lineBytes) + "B line, " +
             std::to_string(cfg.l1MshrEntries) + " MSHRs"},
        {"L2 shared cache",
         std::to_string(cfg.l2.ways) + "-way, " + fmtKb(cfg.l2.sizeBytes)},
        {"Off-chip DRAM bandwidth",
         fmtDouble(cfg.dramBandwidthGBs, 1) + " GB/s"},
        {"DRAM timing",
         "RCD=" + std::to_string(cfg.dramTiming.rcd) +
             ",RP=" + std::to_string(cfg.dramTiming.rp) +
             ",RC=" + std::to_string(cfg.dramTiming.rc) +
             ",RRD=" + fmtDouble(cfg.dramTiming.rrd, 1) +
             ",CL=" + std::to_string(cfg.dramTiming.cl) +
             ",WR=" + std::to_string(cfg.dramTiming.wr) +
             ",RAS=" + std::to_string(cfg.dramTiming.ras)},
    };

    TextTable table;
    table.setHeader({"parameter", "value"});
    for (const auto &[parameter, value] : rows)
        table.addRow({parameter, value});
    std::fputs(table.render().c_str(), stdout);

    if (opts.writeJson) {
        std::ofstream out(opts.jsonPath);
        if (out) {
            JsonWriter json(out);
            json.beginObject();
            json.field("bench", opts.benchName);
            json.field("schemaVersion", std::uint64_t{1});
            json.field("smoke", opts.smoke);
            json.beginObjectField("config");
            for (const auto &[parameter, value] : rows)
                json.field(parameter, value);
            json.endObject();
            json.endObject();
        }
    }
    return 0;
}
