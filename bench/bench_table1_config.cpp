/**
 * @file
 * Table 1: print the simulated baseline GPU configuration.
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/report.hpp"

int
main()
{
    using namespace lbsim;

    printFigureBanner("Table 1", "Simulation configuration");

    const GpuConfig cfg;
    TextTable table;
    table.setHeader({"parameter", "value"});
    table.addRow({"# of SMs", std::to_string(cfg.numSms)});
    table.addRow({"Clock freq.", fmtDouble(cfg.clockGhz * 1000, 0) +
                                     " MHz"});
    table.addRow({"SIMD width", std::to_string(cfg.simdWidth)});
    table.addRow({"Max threads/warps/CTAs per SM",
                  std::to_string(cfg.maxThreadsPerSm) + "/" +
                      std::to_string(cfg.maxWarpsPerSm) + "/" +
                      std::to_string(cfg.maxCtasPerSm)});
    table.addRow({"Warp scheduling",
                  "GTO, " + std::to_string(cfg.schedulersPerSm) +
                      " schedulers per SM"});
    table.addRow({"Register file/SM",
                  fmtKb(cfg.registerFileBytesPerSm)});
    table.addRow({"Shared memory/SM", fmtKb(cfg.sharedMemBytesPerSm)});
    table.addRow({"L1 cache size/SM",
                  fmtKb(cfg.l1.sizeBytes) + ", " +
                      std::to_string(cfg.l1.ways) + "-way, " +
                      std::to_string(cfg.l1.lineBytes) + "B line, " +
                      std::to_string(cfg.l1MshrEntries) + " MSHRs"});
    table.addRow({"L2 shared cache",
                  std::to_string(cfg.l2.ways) + "-way, " +
                      fmtKb(cfg.l2.sizeBytes)});
    table.addRow({"Off-chip DRAM bandwidth",
                  fmtDouble(cfg.dramBandwidthGBs, 1) + " GB/s"});
    table.addRow({"DRAM timing",
                  "RCD=" + std::to_string(cfg.dramTiming.rcd) +
                      ",RP=" + std::to_string(cfg.dramTiming.rp) +
                      ",RC=" + std::to_string(cfg.dramTiming.rc) +
                      ",RRD=" + fmtDouble(cfg.dramTiming.rrd, 1) +
                      ",CL=" + std::to_string(cfg.dramTiming.cl) +
                      ",WR=" + std::to_string(cfg.dramTiming.wr) +
                      ",RAS=" + std::to_string(cfg.dramTiming.ras)});
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
