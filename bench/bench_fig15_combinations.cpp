/**
 * @file
 * Figure 15: combinations of prior warp scheduling and cache structures
 * — Baseline+SVC, PCAL+CERF, PCAL+SVC, Linebacker, and LB+CacheExt —
 * normalized to Best-SWL.
 *
 * Paper: PCAL+CERF +21.3%, PCAL+SVC +25.1%, Linebacker +29.0%,
 * LB+CacheExt +41.9% over Best-SWL.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace lbsim;
    using namespace lbsim::bench;

    const BenchOptions opts =
        parseBenchArgs(argc, argv, "fig15_combinations");
    printFigureBanner("Figure 15",
                      "Scheduling x cache-structure combinations "
                      "(normalized to Best-SWL)");

    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBestSwl(apps);
    for (const AppProfile &app : apps)
        plan.add(app, SchemeConfig::selectiveVictimCaching(), {},
                 "Baseline+SVC");
    plan.crossApps(apps, {SchemeConfig::pcalCerf(),
                          SchemeConfig::pcalSvc(),
                          SchemeConfig::linebacker(),
                          SchemeConfig::linebackerCacheExt()});

    const std::vector<CellResult> results = runPlan(opts, plan);
    const ComparisonReport report = reportFromCells(plan, results);

    std::fputs(report.renderNormalized("Best-SWL").c_str(), stdout);

    std::printf("\nPaper vs measured (speedup over Best-SWL):\n");
    printPaperVsMeasured("PCAL+CERF", 1.213,
                         report.geomeanVs("PCAL+CERF", "Best-SWL"), "x");
    printPaperVsMeasured("PCAL+SVC", 1.251,
                         report.geomeanVs("PCAL+SVC", "Best-SWL"), "x");
    printPaperVsMeasured("Linebacker", 1.290,
                         report.geomeanVs("Linebacker", "Best-SWL"),
                         "x");
    printPaperVsMeasured("LB+CacheExt", 1.419,
                         report.geomeanVs("LB+CacheExt", "Best-SWL"),
                         "x");
    return 0;
}
