/**
 * @file
 * Figure 15: combinations of prior warp scheduling and cache structures
 * — Baseline+SVC, PCAL+CERF, PCAL+SVC, Linebacker, and LB+CacheExt —
 * normalized to Best-SWL.
 *
 * Paper: PCAL+CERF +21.3%, PCAL+SVC +25.1%, Linebacker +29.0%,
 * LB+CacheExt +41.9% over Best-SWL.
 */

#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace lbsim;
    using namespace lbsim::bench;

    printFigureBanner("Figure 15",
                      "Scheduling x cache-structure combinations "
                      "(normalized to Best-SWL)");

    SimRunner runner = benchRunner();
    ComparisonReport report;
    report.setAppOrder(appOrder());

    for (const AppProfile &app : benchmarkSuite()) {
        report.add(app.id, "Best-SWL", bestSwlMetrics(runner, app).ipc);
        report.add(
            app.id, "Baseline+SVC",
            runner.run(app, SchemeConfig::selectiveVictimCaching()).ipc);
        report.add(app.id, "PCAL+CERF",
                   runner.run(app, SchemeConfig::pcalCerf()).ipc);
        report.add(app.id, "PCAL+SVC",
                   runner.run(app, SchemeConfig::pcalSvc()).ipc);
        report.add(app.id, "Linebacker",
                   runner.run(app, SchemeConfig::linebacker()).ipc);
        report.add(app.id, "LB+CacheExt",
                   runner.run(app, SchemeConfig::linebackerCacheExt())
                       .ipc);
    }

    std::fputs(report.renderNormalized("Best-SWL").c_str(), stdout);

    std::printf("\nPaper vs measured (speedup over Best-SWL):\n");
    printPaperVsMeasured("PCAL+CERF", 1.213,
                         report.geomeanVs("PCAL+CERF", "Best-SWL"), "x");
    printPaperVsMeasured("PCAL+SVC", 1.251,
                         report.geomeanVs("PCAL+SVC", "Best-SWL"), "x");
    printPaperVsMeasured("Linebacker", 1.290,
                         report.geomeanVs("Linebacker", "Best-SWL"),
                         "x");
    printPaperVsMeasured("LB+CacheExt", 1.419,
                         report.geomeanVs("LB+CacheExt", "Best-SWL"),
                         "x");
    return 0;
}
