/**
 * @file
 * lbsimd: the persistent lbsim sweep daemon.
 *
 * Accepts ExperimentPlan submissions from lbsim_submit over a Unix
 * domain socket, executes their cells on a worker pool with per-client
 * fair queuing, admission control, and crash-isolated retries, and
 * streams per-cell results back (see DESIGN.md §15 for the protocol
 * and durability story).
 *
 * Lifecycle: SIGTERM/SIGINT trigger a graceful drain — in-flight cells
 * finish, queued plans persist to the plans journal, both journals
 * compact — and the process exits 0. A SIGKILL loses nothing durable:
 * completed cells live in the memo journal, admitted plans in the
 * plans journal, and the next start resumes the difference.
 *
 * Example:
 *   lbsimd --socket /tmp/lbsimd.sock --workers 2 &
 *   lbsim_submit --socket /tmp/lbsimd.sock --schemes baseline,linebacker
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.hpp"
#include "service/server.hpp"

namespace
{

lbsim::SweepServer *g_server = nullptr;

void
onTermSignal(int)
{
    // requestStop is async-signal-safe (atomic store + pipe write).
    if (g_server)
        g_server->requestStop();
}

void
usage()
{
    std::puts(
        "usage: lbsimd [options]\n"
        "  --socket <path>        listen socket (default lbsimd.sock)\n"
        "  --workers <n>          cell worker threads (default 1)\n"
        "  --queue <n>            global queued-cell bound (default "
        "1024)\n"
        "  --client-quota <n>     per-client queued-cell bound "
        "(default 512)\n"
        "  --plans-journal <path> queued-plan persistence (default\n"
        "                         lbsimd_plans.journal; 'none' "
        "disables)\n"
        "  --isolate              fork-isolate every cell\n"
        "  --retry-backoff-ms <n> base crashed-cell backoff (default "
        "50)\n"
        "\n"
        "SIGTERM drains gracefully; results are durable across "
        "SIGKILL.");
}

const char *
arg(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

bool
flag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lbsim;

    if (flag(argc, argv, "--help") || flag(argc, argv, "-h")) {
        usage();
        return 0;
    }

    ServerOptions options;
    if (const char *v = arg(argc, argv, "--socket"))
        options.socketPath = v;
    if (const char *v = arg(argc, argv, "--workers"))
        options.workers = clampThreadArg(
            static_cast<unsigned>(std::strtoul(v, nullptr, 10)),
            "--workers");
    if (const char *v = arg(argc, argv, "--queue"))
        options.maxQueuedCells = std::strtoull(v, nullptr, 10);
    if (const char *v = arg(argc, argv, "--client-quota"))
        options.perClientQueuedCells = std::strtoull(v, nullptr, 10);
    if (const char *v = arg(argc, argv, "--plans-journal"))
        options.plansJournalPath =
            std::strcmp(v, "none") == 0 ? "" : v;
    if (flag(argc, argv, "--isolate"))
        options.isolateCells = true;
    if (const char *v = arg(argc, argv, "--retry-backoff-ms"))
        options.retryBackoffMs = static_cast<unsigned>(
            std::strtoul(v, nullptr, 10));

    SweepServer server(options);
    g_server = &server;
    std::signal(SIGTERM, onTermSignal);
    std::signal(SIGINT, onTermSignal);

    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "lbsimd: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "lbsimd: listening on %s (%u worker%s)\n",
                 options.socketPath.c_str(), server.options().workers,
                 server.options().workers == 1 ? "" : "s");
    const int rc = server.run();
    std::fprintf(stderr, "lbsimd: drained, exiting\n");
    g_server = nullptr;
    return rc;
}
