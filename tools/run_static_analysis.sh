#!/usr/bin/env bash
# Static-analysis and sanitizer driver for lbsim.
#
# Runs, in order, skipping tools that are not installed:
#   1. clang-tidy over the library/tool sources (profile: .clang-tidy)
#   2. cppcheck over src/
#   3. an ASan+UBSan build with LBSIM_CHECKS=full, followed by ctest
#
# Exit status is non-zero if any stage that actually ran failed.
#
# Usage:
#   tools/run_static_analysis.sh [--skip-tidy] [--skip-cppcheck]
#                                [--skip-sanitizers] [-j N]

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_tidy=1
run_cppcheck=1
run_sanitizers=1
failures=0

while [ $# -gt 0 ]; do
    case "$1" in
        --skip-tidy) run_tidy=0 ;;
        --skip-cppcheck) run_cppcheck=0 ;;
        --skip-sanitizers) run_sanitizers=0 ;;
        -j) shift; jobs="$1" ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

note() { printf '\n=== %s ===\n' "$*"; }

# --- 1. clang-tidy -----------------------------------------------------------
if [ "$run_tidy" -eq 1 ]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        note "clang-tidy"
        tidy_build="$repo_root/build-tidy"
        cmake -S "$repo_root" -B "$tidy_build" \
              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
              -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || failures=1
        if command -v run-clang-tidy >/dev/null 2>&1; then
            run-clang-tidy -p "$tidy_build" -j "$jobs" -quiet \
                "$repo_root/src/.*\.cpp" || failures=1
        else
            find "$repo_root/src" -name '*.cpp' -print0 |
                xargs -0 -n 1 -P "$jobs" clang-tidy -p "$tidy_build" \
                    --quiet || failures=1
        fi
    else
        note "clang-tidy not installed; skipping"
    fi
fi

# --- 2. cppcheck -------------------------------------------------------------
if [ "$run_cppcheck" -eq 1 ]; then
    if command -v cppcheck >/dev/null 2>&1; then
        note "cppcheck"
        cppcheck --enable=warning,performance,portability \
                 --inline-suppr --error-exitcode=1 \
                 --std=c++20 --language=c++ \
                 -I "$repo_root/src" \
                 --suppress=missingIncludeSystem \
                 "$repo_root/src" || failures=1
    else
        note "cppcheck not installed; skipping"
    fi
fi

# --- 3. ASan/UBSan + full checks + ctest -------------------------------------
if [ "$run_sanitizers" -eq 1 ]; then
    note "ASan+UBSan build (LBSIM_CHECKS=full)"
    san_build="$repo_root/build-asan"
    cmake -S "$repo_root" -B "$san_build" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DLBSIM_SANITIZE="address;undefined" \
          -DLBSIM_CHECKS=full -DLBSIM_WERROR=ON >/dev/null &&
        cmake --build "$san_build" -j "$jobs" || failures=1
    if [ "$failures" -eq 0 ]; then
        note "ctest under sanitizers"
        ASAN_OPTIONS=detect_leaks=0 \
            ctest --test-dir "$san_build" --output-on-failure -j "$jobs" ||
            failures=1
    fi
fi

if [ "$failures" -ne 0 ]; then
    note "static analysis FAILED"
    exit 1
fi
note "static analysis passed"
