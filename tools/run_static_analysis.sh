#!/usr/bin/env bash
# Static-analysis and sanitizer driver for lbsim.
#
# Runs, in order, skipping tools that are not installed:
#   1. the lbsim lint suite (tools/lint): the portable python backend
#      always, plus the clang-tidy plugin when a built
#      liblbsim-tidy.so is found (or LBSIM_TIDY_PLUGIN points at one)
#   2. clang-tidy over the library/tool sources (profile: .clang-tidy,
#      -warnings-as-errors=*: any finding fails the run)
#   3. cppcheck over src/
#   4. an ASan+UBSan build with LBSIM_CHECKS=full, followed by ctest
#
# Exit status is non-zero if any stage that actually ran failed. Any
# lbsim-lint finding fails the run — the tree is kept finding-clean;
# suppress intentional sites with // NOLINT(check) and a rationale.
#
# Usage:
#   tools/run_static_analysis.sh [--skip-lint] [--skip-tidy]
#                                [--skip-cppcheck] [--skip-sanitizers]
#                                [--fix] [-j N]
#
#   --fix is passed through to clang-tidy (applies fix-its from the
#   stock profile checks; the lbsim checks are diagnose-only).

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_lint=1
run_tidy=1
run_cppcheck=1
run_sanitizers=1
tidy_fix=0
failures=0

while [ $# -gt 0 ]; do
    case "$1" in
        --skip-lint) run_lint=0 ;;
        --skip-tidy) run_tidy=0 ;;
        --skip-cppcheck) run_cppcheck=0 ;;
        --skip-sanitizers) run_sanitizers=0 ;;
        --fix) tidy_fix=1 ;;
        -j) shift; jobs="$1" ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

note() { printf '\n=== %s ===\n' "$*"; }

# --- 1. lbsim lint suite -----------------------------------------------------
if [ "$run_lint" -eq 1 ]; then
    note "lbsim-lint (python backend)"
    python3 "$repo_root/tests/lint/check_lint.py" tree || failures=1

    # The plugin backend needs a built liblbsim-tidy.so (cmake
    # -DLBSIM_BUILD_LINT=ON) and clang-tidy >= 15 for --load.
    plugin="${LBSIM_TIDY_PLUGIN:-}"
    if [ -z "$plugin" ]; then
        for candidate in "$repo_root"/build*/tools/lint/liblbsim-tidy.so; do
            [ -f "$candidate" ] && plugin="$candidate" && break
        done
    fi
    if [ -n "$plugin" ] && command -v clang-tidy >/dev/null 2>&1; then
        note "lbsim-lint (clang-tidy plugin backend)"
        python3 "$repo_root/tests/lint/check_lint.py" fixtures \
            --backend tidy --plugin "$plugin" || failures=1
    fi
fi

# --- 2. clang-tidy -----------------------------------------------------------
if [ "$run_tidy" -eq 1 ]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        note "clang-tidy"
        tidy_build="$repo_root/build-tidy"
        tidy_args=(-warnings-as-errors='*')
        [ "$tidy_fix" -eq 1 ] && tidy_args+=(--fix)
        cmake -S "$repo_root" -B "$tidy_build" \
              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
              -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || failures=1
        if command -v run-clang-tidy >/dev/null 2>&1; then
            run-clang-tidy -p "$tidy_build" -j "$jobs" -quiet \
                "${tidy_args[@]}" "$repo_root/src/.*\.cpp" || failures=1
        else
            find "$repo_root/src" -name '*.cpp' -print0 |
                xargs -0 -n 1 -P "$jobs" clang-tidy -p "$tidy_build" \
                    --quiet "${tidy_args[@]}" || failures=1
        fi
    else
        note "clang-tidy not installed; skipping"
    fi
fi

# --- 3. cppcheck -------------------------------------------------------------
if [ "$run_cppcheck" -eq 1 ]; then
    if command -v cppcheck >/dev/null 2>&1; then
        note "cppcheck"
        cppcheck --enable=warning,performance,portability \
                 --inline-suppr --error-exitcode=1 \
                 --std=c++20 --language=c++ \
                 -I "$repo_root/src" \
                 --suppress=missingIncludeSystem \
                 "$repo_root/src" || failures=1
    else
        note "cppcheck not installed; skipping"
    fi
fi

# --- 4. ASan/UBSan + full checks + ctest -------------------------------------
if [ "$run_sanitizers" -eq 1 ]; then
    note "ASan+UBSan build (LBSIM_CHECKS=full)"
    san_build="$repo_root/build-asan"
    cmake -S "$repo_root" -B "$san_build" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DLBSIM_SANITIZE="address;undefined" \
          -DLBSIM_CHECKS=full -DLBSIM_WERROR=ON >/dev/null &&
        cmake --build "$san_build" -j "$jobs" || failures=1
    if [ "$failures" -eq 0 ]; then
        note "ctest under sanitizers"
        ASAN_OPTIONS=detect_leaks=0 \
            ctest --test-dir "$san_build" --output-on-failure -j "$jobs" ||
            failures=1
    fi
fi

if [ "$failures" -ne 0 ]; then
    note "static analysis FAILED"
    exit 1
fi
note "static analysis passed"
