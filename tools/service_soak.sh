#!/usr/bin/env bash
#
# Kill-restart soak for the lbsimd sweep daemon (CI: service-soak).
#
# Proves the service's durability story end to end:
#
#   1. Run a reference sweep in-process (lbsim_submit --direct).
#   2. Start lbsimd, submit four overlapping client sweeps, and
#      SIGKILL the daemon mid-sweep.
#   3. Restart it: the plans journal re-enqueues every admitted-but-
#      unfinished plan and the memo journal replays completed cells —
#      nothing is lost, nothing is computed twice (the memo journal
#      must contain zero duplicate keys).
#   4. Re-submit the reference sweep through the daemon and require
#      its JSON artifact to be BYTE-IDENTICAL to the --direct one.
#   5. SIGTERM must drain gracefully to exit 0, leaving no quarantine
#      files behind.
#
# Usage: tools/service_soak.sh [build-dir]
# Env:   SOAK_WORK  work directory (default: a fresh mktemp -d)

set -euo pipefail

BUILD=${1:-build}
LBSIMD=$(readlink -f "$BUILD/tools/lbsimd")
SUBMIT=$(readlink -f "$BUILD/tools/lbsim_submit")
WORK=${SOAK_WORK:-$(mktemp -d "${TMPDIR:-/tmp}/lbsim_soak_XXXXXX")}
mkdir -p "$WORK"
WORK=$(readlink -f "$WORK")
SOCK=$WORK/d.sock
DPID=

say()  { echo "soak: $*"; }
fail() { echo "soak: FAIL: $*" >&2; exit 1; }

cleanup() {
    if [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null; then
        kill -9 "$DPID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

start_daemon() {
    LBSIM_CACHE_PATH=$WORK/cache_daemon.journal \
        "$LBSIMD" --socket "$SOCK" --workers 1 \
        --plans-journal "$WORK/plans.journal" \
        >>"$WORK/daemon.log" 2>&1 &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    fail "daemon did not create $SOCK"
}

wait_idle() {
    for _ in $(seq 1 1200); do
        local s
        s=$("$SUBMIT" --socket "$SOCK" --stats 2>/dev/null) || s=
        if echo "$s" | grep -q '"queuedCells":0' &&
           echo "$s" | grep -q '"runningCells":0'; then
            return 0
        fi
        sleep 0.5
    done
    fail "daemon never went idle"
}

# The memo journal must hold at most one record per cell key:
# a duplicate key means a cell was computed twice across the kill.
check_no_duplicate_compute() {
    python3 - "$WORK/cache_daemon.journal" <<'EOF'
import struct, sys
data = open(sys.argv[1], "rb").read()
nl = data.find(b"\n")
assert data[:nl] == b"lbsim-journal-v1", "not a journal"
off, keys = nl + 1, []
while off + 8 <= len(data):
    (length, _crc) = struct.unpack_from("<II", data, off)
    payload = data[off + 8:off + 8 + length]
    if len(payload) < length:
        break  # torn tail: the next recover() truncates it
    if not payload.startswith(b"#"):
        keys.append(payload.split(b"|", 1)[0])
    off += 8 + length
dups = len(keys) - len(set(keys))
print(f"soak: memo journal holds {len(keys)} cells, {dups} duplicates")
sys.exit(1 if dups else 0)
EOF
}

REFERENCE_ARGS=(--name soak --apps S2,KM,GA --schemes baseline,linebacker
                --smoke)

# --- 1. In-process reference run -------------------------------------------
say "direct reference sweep"
LBSIM_CACHE_PATH=$WORK/cache_direct.journal \
    "$SUBMIT" --direct "${REFERENCE_ARGS[@]}" \
    --json "$WORK/direct.json" >/dev/null

# --- 2. Concurrent sweeps, then SIGKILL mid-flight -------------------------
say "starting daemon (pass 1)"
start_daemon

say "submitting 4 concurrent client sweeps"
CLIENT_PIDS=()
"$SUBMIT" --socket "$SOCK" --client alice "${REFERENCE_ARGS[@]}" \
    >/dev/null 2>&1 & CLIENT_PIDS+=($!)
"$SUBMIT" --socket "$SOCK" --client bob --name bob --apps BC,BI \
    --schemes baseline,linebacker --smoke >/dev/null 2>&1 &
CLIENT_PIDS+=($!)
"$SUBMIT" --socket "$SOCK" --client carol --name carol --apps HS,PF \
    --schemes baseline,vc --smoke >/dev/null 2>&1 & CLIENT_PIDS+=($!)
"$SUBMIT" --socket "$SOCK" --client dave --name dave --apps S2,KM \
    --schemes vc,svc --smoke >/dev/null 2>&1 & CLIENT_PIDS+=($!)

sleep 1
say "SIGKILL mid-sweep"
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true  # connection-lost exits are expected
done

[ -f "$WORK/cache_daemon.journal" ] || fail "memo journal vanished"
check_no_duplicate_compute

# --- 3. Restart: resume and finish what was admitted -----------------------
say "restarting daemon (pass 2, journal recovery)"
start_daemon
wait_idle

STATS=$("$SUBMIT" --socket "$SOCK" --stats)
say "post-resume stats: $STATS"
RESUMED=$(echo "$STATS" | grep -o '"plansResumed":[0-9]*' | cut -d: -f2)
[ "${RESUMED:-0}" -ge 1 ] ||
    fail "no plans were resumed (kill landed after the sweep finished?)"
check_no_duplicate_compute

# --- 4. Daemon artifact must match --direct byte-for-byte ------------------
say "verification sweep through the daemon"
"$SUBMIT" --socket "$SOCK" --client verify "${REFERENCE_ARGS[@]}" \
    --json "$WORK/daemon.json" >/dev/null
cmp "$WORK/direct.json" "$WORK/daemon.json" ||
    fail "daemon artifact differs from the --direct run"
say "daemon artifact is byte-identical to --direct"

# --- 5. Graceful drain, no quarantined records -----------------------------
kill -TERM "$DPID"
rc=0
wait "$DPID" || rc=$?
DPID=
[ "$rc" -eq 0 ] || fail "SIGTERM drain exited $rc (want 0)"
grep -q "drained, exiting" "$WORK/daemon.log" ||
    fail "daemon log lacks the drain line"
if ls "$WORK"/*.quarantine >/dev/null 2>&1; then
    fail "recovery quarantined records: $(ls "$WORK"/*.quarantine)"
fi
check_no_duplicate_compute

say "PASS (work dir: $WORK)"
