/**
 * @file
 * Property-based fuzzing driver (see src/testing/fuzz.hpp).
 *
 * Fuzz mode (default): generate N seeded cases, run each one's property
 * checks in a forked child (so crashes and check-handler aborts cannot
 * kill the campaign), minimize every failure, and write a replayable
 * repro file per failure. Exits nonzero if any case failed.
 *
 * Replay mode (--replay FILE): parse a repro file and run it in-process,
 * printing the property verdict.
 *
 * Dump mode (--dump SEED FILE): write the generated case for SEED as a
 * case file without running it — a starting point for hand-edited
 * repros and for exercising --replay.
 *
 * Fault mode (--faults): cases additionally carry a random FaultPlan
 * and a forward-progress watchdog; the property set asserts graceful
 * degradation (no deadlock, auditors clean, deterministic replay).
 *
 * Usage:
 *   lbsim_fuzz [--iters N] [--seed-base S] [--out DIR] [--no-fork]
 *              [--faults]
 *   lbsim_fuzz --replay FILE
 *   lbsim_fuzz --dump SEED FILE
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fs.hpp"
#include "resilience/isolation.hpp"
#include "testing/fuzz.hpp"
#include "testing/minimize.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace
{

using lbsim::FuzzCase;
using lbsim::FuzzCaseResult;
using lbsim::IsolationStatus;

/** Wall-clock guard per forked case; a hang is a failure too. */
constexpr unsigned kChildTimeoutSec = 120;

struct ToolOptions
{
    std::uint64_t iters = 200;
    std::uint64_t seedBase = 1;
    std::string outDir = "fuzz-out";
    std::string replayFile;
    bool useFork = true;
    /** Generate fault-injection cases (generateFaultFuzzCase). */
    bool faults = false;
};

/** Verdict of one (possibly isolated) case execution. */
struct CaseVerdict
{
    bool ok = true;
    bool crashed = false;
    std::string property;
    std::string detail;
    std::uint64_t lockstepChecks = 0;
};

CaseVerdict
fromResult(const FuzzCaseResult &result)
{
    CaseVerdict verdict;
    verdict.ok = result.ok;
    verdict.property = result.property;
    verdict.detail = result.detail;
    verdict.lockstepChecks = result.lockstepChecks;
    return verdict;
}

/** Run the case in a forked child; survives crashes and hangs. */
CaseVerdict
runIsolated(const FuzzCase &fuzz_case)
{
    // Payload order puts the (possibly multi-line) detail last so hang
    // reports survive the line-oriented framing.
    const lbsim::IsolationResult iso = lbsim::runIsolatedTask(
        [&fuzz_case]() -> std::pair<bool, std::string> {
            const FuzzCaseResult result = lbsim::runFuzzCase(fuzz_case);
            std::string payload = result.property;
            payload += '\n';
            payload += std::to_string(result.lockstepChecks);
            payload += '\n';
            payload += result.detail;
            return {result.ok, payload};
        },
        kChildTimeoutSec);

    CaseVerdict verdict;
    switch (iso.status) {
      case IsolationStatus::Ok:
      case IsolationStatus::TaskFailed: {
        std::istringstream in(iso.payload);
        std::getline(in, verdict.property);
        std::string checks;
        std::getline(in, checks);
        if (!checks.empty()) {
            verdict.lockstepChecks =
                std::strtoull(checks.c_str(), nullptr, 10);
        }
        std::ostringstream rest;
        rest << in.rdbuf();
        verdict.detail = rest.str();
        verdict.ok = iso.status == IsolationStatus::Ok;
        return verdict;
      }
      case IsolationStatus::Timeout:
        verdict.ok = false;
        verdict.crashed = true;
        verdict.property = "crash";
        verdict.detail = "child timed out after " +
                         std::to_string(kChildTimeoutSec) + "s";
        return verdict;
      case IsolationStatus::Crashed:
        verdict.ok = false;
        verdict.crashed = true;
        verdict.property = "crash";
        verdict.detail = iso.payload;
        return verdict;
      case IsolationStatus::Unsupported:
        break;
    }
    return fromResult(lbsim::runFuzzCase(fuzz_case));
}

CaseVerdict
runCase(const FuzzCase &fuzz_case, const ToolOptions &options)
{
    if (options.useFork && lbsim::isolationSupported())
        return runIsolated(fuzz_case);
    return fromResult(lbsim::runFuzzCase(fuzz_case));
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    // Atomic: a repro file must be replayable even if the fuzzer is
    // killed the instant after the failure is found.
    return lbsim::atomicWriteFile(path, contents);
}

int
replay(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "lbsim_fuzz: cannot open %s\n", path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    FuzzCase fuzz_case;
    std::string error;
    if (!lbsim::parseFuzzCase(text.str(), fuzz_case, error)) {
        std::fprintf(stderr, "lbsim_fuzz: parse error in %s: %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }

    std::printf("replaying %s (scheme=%s, seed=%llu)\n", path.c_str(),
                fuzz_case.scheme.c_str(),
                static_cast<unsigned long long>(fuzz_case.seed));
    const FuzzCaseResult result = lbsim::runFuzzCase(fuzz_case);
    std::printf("lockstep checks: %llu\n",
                static_cast<unsigned long long>(result.lockstepChecks));
    if (result.ok) {
        std::printf("PASS: all properties hold\n");
        return 0;
    }
    std::printf("FAIL: property '%s'\n%s\n", result.property.c_str(),
                result.detail.c_str());
    return 1;
}

int
fuzz(const ToolOptions &options)
{
#if defined(__unix__) || defined(__APPLE__)
    mkdir(options.outDir.c_str(), 0755);
#endif

    std::uint64_t failures = 0;
    std::uint64_t total_checks = 0;
    for (std::uint64_t i = 0; i < options.iters; ++i) {
        const std::uint64_t seed = options.seedBase + i;
        const FuzzCase fuzz_case =
            options.faults ? lbsim::generateFaultFuzzCase(seed)
                           : lbsim::generateFuzzCase(seed);

        // Serialization must round-trip exactly, or repro files would
        // not replay the campaign's cases.
        const std::string serialized = lbsim::serializeFuzzCase(fuzz_case);
        FuzzCase round_trip;
        std::string parse_error;
        if (!lbsim::parseFuzzCase(serialized, round_trip, parse_error) ||
            lbsim::serializeFuzzCase(round_trip) != serialized) {
            std::fprintf(stderr,
                         "seed %llu: serialization round-trip broke: %s\n",
                         static_cast<unsigned long long>(seed),
                         parse_error.c_str());
            ++failures;
            continue;
        }

        const CaseVerdict verdict = runCase(fuzz_case, options);
        total_checks += verdict.lockstepChecks;
        if (verdict.ok) {
            if ((i + 1) % 10 == 0 || i + 1 == options.iters) {
                std::printf("  %llu/%llu cases ok (%llu lockstep checks)\n",
                            static_cast<unsigned long long>(i + 1),
                            static_cast<unsigned long long>(options.iters),
                            static_cast<unsigned long long>(total_checks));
                std::fflush(stdout);
            }
            continue;
        }

        ++failures;
        std::fprintf(stderr, "seed %llu FAILED [%s]: %s\n",
                     static_cast<unsigned long long>(seed),
                     verdict.property.c_str(), verdict.detail.c_str());

        // Shrink while the same property keeps failing, then write the
        // smallest repro. Crashes shrink too: the predicate re-runs
        // isolated, so a crashing candidate just reports !ok.
        const lbsim::FuzzPredicate still_fails =
            [&options, &verdict](const FuzzCase &candidate) {
                const CaseVerdict v = runCase(candidate, options);
                return !v.ok && v.property == verdict.property;
            };
        const lbsim::MinimizeResult minimized =
            lbsim::minimizeFuzzCase(fuzz_case, still_fails, 120);
        std::fprintf(stderr,
                     "  minimized in %u evaluations (%u reductions)\n",
                     minimized.evaluations, minimized.accepted);

        const std::string repro_path = options.outDir + "/repro-seed" +
                                       std::to_string(seed) + ".fuzzcase";
        if (writeFile(repro_path,
                      lbsim::serializeFuzzCase(minimized.best))) {
            std::fprintf(stderr, "  repro written to %s\n",
                         repro_path.c_str());
        } else {
            std::fprintf(stderr, "  FAILED to write repro %s\n",
                         repro_path.c_str());
        }
    }

    std::printf("fuzz campaign: %llu/%llu cases passed, "
                "%llu lockstep checks total\n",
                static_cast<unsigned long long>(options.iters - failures),
                static_cast<unsigned long long>(options.iters),
                static_cast<unsigned long long>(total_checks));
    return failures == 0 ? 0 : 1;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--iters N] [--seed-base S] [--out DIR] "
                 "[--no-fork] [--faults]\n"
                 "       %s --replay FILE\n"
                 "       %s [--faults] --dump SEED FILE\n",
                 argv0, argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    ToolOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto nextValue = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--iters") {
            options.iters = std::strtoull(nextValue(), nullptr, 10);
        } else if (arg == "--seed-base") {
            options.seedBase = std::strtoull(nextValue(), nullptr, 10);
        } else if (arg == "--out") {
            options.outDir = nextValue();
        } else if (arg == "--replay") {
            options.replayFile = nextValue();
        } else if (arg == "--dump") {
            const std::uint64_t seed =
                std::strtoull(nextValue(), nullptr, 10);
            const std::string path = nextValue();
            const FuzzCase dumped =
                options.faults ? lbsim::generateFaultFuzzCase(seed)
                               : lbsim::generateFuzzCase(seed);
            if (!writeFile(path, lbsim::serializeFuzzCase(dumped))) {
                std::fprintf(stderr, "lbsim_fuzz: cannot write %s\n",
                             path.c_str());
                return 2;
            }
            std::printf("case for seed %llu written to %s\n",
                        static_cast<unsigned long long>(seed),
                        path.c_str());
            return 0;
        } else if (arg == "--no-fork") {
            options.useFork = false;
        } else if (arg == "--faults") {
            options.faults = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (!options.replayFile.empty())
        return replay(options.replayFile);
    if (options.iters == 0) {
        usage(argv[0]);
        return 2;
    }
    return fuzz(options);
}
