/**
 * @file
 * lbsim command-line driver: run one (application, scheme) pair — or the
 * whole suite with --app all — with overridable configuration and print
 * a full statistics report.
 *
 * Runs are expressed as a one-or-more-cell ExperimentPlan and executed
 * by the ExperimentEngine, so --app all parallelizes across --threads
 * workers and shares the memo cache with the figure benches.
 *
 * Examples:
 *   lbsim_cli --app KM --scheme linebacker
 *   lbsim_cli --app S2 --scheme best-swl --warp-limit 16 --l1-kb 96
 *   lbsim_cli --app all --scheme linebacker --threads 8 --csv
 *   lbsim_cli --list
 *   lbsim_cli --app BI --scheme svc --sms 4 --cycles 600000 --json out.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fs.hpp"
#include "common/parallel.hpp"
#include "harness/experiment.hpp"
#include "harness/oracle.hpp"
#include "harness/report.hpp"
#include "harness/sim_runner.hpp"
#include "power/energy_model.hpp"
#include "workload/suite.hpp"

namespace
{

using namespace lbsim;

void
usage()
{
    std::puts(
        "usage: lbsim_cli --app <id|all> --scheme <name> [options]\n"
        "\n"
        "schemes: baseline, best-swl (oracle unless --warp-limit),\n"
        "         ccws, pcal, cerf, linebacker, vc, svc, pcal-svc,\n"
        "         pcal-cerf, cache-ext, lb-cache-ext\n"
        "options:\n"
        "  --list               list the 20 Table-2 applications\n"
        "  --warp-limit <n>     static warp limit for best-swl\n"
        "  --sms <n>            SMs to simulate (default 2, scaled chip)\n"
        "  --sm-threads <n>     worker threads for the parallel SM tick\n"
        "                       phase (default 1; bit-identical results)\n"
        "  --cycles <n>         measured cycles (default 400000)\n"
        "  --warmup <n>         warm-up cycles (default 200000)\n"
        "  --l1-kb <n>          L1 size in KB (default 48)\n"
        "  --threads <n>        worker threads for --app all\n"
        "  --no-cache           bypass the on-disk memo cache\n"
        "  --csv                machine-readable one-line-per-run output\n"
        "  --json [path]        write an experiment JSON artifact\n"
        "  --timeout-cycles <n> forward-progress watchdog threshold;\n"
        "                       a tripped run exits 3 with a hang report\n"
        "  --fault-plan <file>  inject the fault schedule in <file>\n"
        "  --hang-report <path> write the JSON hang report on a trip");
}

const char *
arg(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

bool
flag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

void
printReport(const AppProfile &app, const std::string &scheme_name,
            const RunMetrics &m)
{
    const SimStats &s = m.stats;
    std::printf("%s under %s\n", app.id.c_str(), scheme_name.c_str());
    std::printf("  IPC                 %10.3f\n", m.ipc);
    std::printf("  cycles measured     %10llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  instructions        %10llu\n",
                static_cast<unsigned long long>(s.instructionsIssued));
    const double total = static_cast<double>(s.l1.total());
    std::printf("  L1 hit / Reg hit    %9.1f%% /%6.1f%%\n",
                100.0 * s.l1.l1Hits / total,
                100.0 * s.l1.regHits / total);
    std::printf("  miss / bypass       %9.1f%% /%6.1f%%\n",
                100.0 * s.l1.misses / total,
                100.0 * s.l1.bypasses / total);
    std::printf("  avg load latency    %10.0f cycles\n",
                s.avgLoadLatency());
    std::printf("  DRAM line transfers %10llu (backup %llu, restore "
                "%llu)\n",
                static_cast<unsigned long long>(s.dramLineTransfers()),
                static_cast<unsigned long long>(s.dramBackupWrites),
                static_cast<unsigned long long>(s.dramRestoreReads));
    std::printf("  RF bank conflicts   %10llu\n",
                static_cast<unsigned long long>(s.rfBankConflicts));
    std::printf("  CTA throttle/activ. %6llu / %llu\n",
                static_cast<unsigned long long>(s.ctaThrottleEvents),
                static_cast<unsigned long long>(s.ctaActivateEvents));
    std::printf("  victim stored/hits  %6llu / %llu\n",
                static_cast<unsigned long long>(s.victimLinesStored),
                static_cast<unsigned long long>(s.l1.regHits));
    std::printf("  energy              %10.4f J\n", m.energyJ);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lbsim;

    if (flag(argc, argv, "--help") || argc < 2) {
        usage();
        return argc < 2 ? 1 : 0;
    }
    if (flag(argc, argv, "--list")) {
        for (const AppProfile &app : benchmarkSuite()) {
            std::printf("%-4s %-11s %s\n", app.id.c_str(),
                        app.cacheSensitive ? "sensitive" : "insensitive",
                        app.description.c_str());
        }
        return 0;
    }

    const char *app_id = arg(argc, argv, "--app");
    const char *scheme_name = arg(argc, argv, "--scheme");
    if (!app_id || !scheme_name) {
        usage();
        return 1;
    }

    GpuConfig cfg;
    if (const char *v = arg(argc, argv, "--l1-kb"))
        cfg.l1.sizeBytes = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10) * 1024);
    cfg.warmupCycles = 200000;
    if (const char *v = arg(argc, argv, "--warmup"))
        cfg.warmupCycles = std::strtoull(v, nullptr, 10);
    if (const char *v = arg(argc, argv, "--timeout-cycles"))
        cfg.watchdogCycles = std::strtoull(v, nullptr, 10);

    RunnerOptions options;
    options.simSms = 2;
    options.maxCycles = 400000;
    if (const char *v = arg(argc, argv, "--sms"))
        options.simSms = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10));
    if (const char *v = arg(argc, argv, "--sm-threads"))
        options.smThreads = clampThreadArg(
            static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10)),
            "--sm-threads");
    if (const char *v = arg(argc, argv, "--cycles"))
        options.maxCycles = std::strtoull(v, nullptr, 10);
    options.useMemoCache = !flag(argc, argv, "--no-cache");

    if (const char *v = arg(argc, argv, "--fault-plan")) {
        std::ifstream in(v);
        if (!in) {
            std::fprintf(stderr, "cannot open fault plan '%s'\n", v);
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string error;
        if (!parseFaultPlan(text.str(), options.faultPlan, error)) {
            std::fprintf(stderr, "bad fault plan '%s': %s\n", v,
                         error.c_str());
            return 1;
        }
    }

    std::vector<AppProfile> apps;
    if (std::strcmp(app_id, "all") == 0)
        apps = benchmarkSuite();
    else
        apps.push_back(appById(app_id));

    const std::string name = scheme_name;
    std::uint32_t warp_limit = 0;
    if (const char *v = arg(argc, argv, "--warp-limit"))
        warp_limit = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10));
    SchemeConfig scheme;
    bool oracle_swl = false;
    if (!schemeByName(name, warp_limit, scheme, oracle_swl)) {
        std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name);
        usage();
        return 1;
    }

    ExperimentPlan plan(cfg, LbConfig{}, options);
    for (const AppProfile &app : apps) {
        if (oracle_swl) {
            plan.addCustom(app.id, name, {}, [app](SimRunner &runner) {
                const SwlOracleResult oracle = findBestSwl(runner, app);
                std::fprintf(stderr, "%s oracle warp limit: %u\n",
                             app.id.c_str(), oracle.bestLimit);
                return runner.run(
                    app, SchemeConfig::bestSwl(oracle.bestLimit));
            });
        } else {
            plan.add(app, scheme, {}, name);
        }
    }

    EngineOptions engine_opts;
    if (const char *v = arg(argc, argv, "--threads"))
        engine_opts.threads = clampThreadArg(
            static_cast<unsigned>(std::strtoul(v, nullptr, 10)),
            "--threads");
    engine_opts.printProgress = apps.size() > 1;
    const std::vector<CellResult> results =
        ExperimentEngine(engine_opts).run(plan);

    bool failed = false;
    const bool csv = flag(argc, argv, "--csv");
    if (csv) {
        std::printf("app,scheme,ipc,l1_hit,reg_hit,miss,bypass,"
                    "dram_lines,energy_j,throttles\n");
    }
    bool first = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult &result = results[i];
        if (!result.ok) {
            std::fprintf(stderr, "%s/%s failed: %s\n",
                         result.app.c_str(), result.scheme.c_str(),
                         result.error.c_str());
            failed = true;
            continue;
        }
        const RunMetrics &m = result.metrics;
        const SimStats &s = m.stats;
        if (csv) {
            const double total = static_cast<double>(s.l1.total());
            std::printf(
                "%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%.6e,%llu\n",
                result.app.c_str(), result.scheme.c_str(), m.ipc,
                s.l1.l1Hits / total, s.l1.regHits / total,
                s.l1.misses / total, s.l1.bypasses / total,
                static_cast<unsigned long long>(s.dramLineTransfers()),
                m.energyJ,
                static_cast<unsigned long long>(s.ctaThrottleEvents));
        } else {
            if (!first)
                std::printf("\n");
            printReport(apps[i], result.scheme, m);
            first = false;
        }
    }

    // A watchdog trip overrides normal failure reporting: dump the
    // structured diagnosis and exit with a distinct code so scripts can
    // tell "hung" from "failed".
    const CellResult *first_hang = nullptr;
    for (const CellResult &result : results) {
        if (result.outcome != RunOutcome::Hang)
            continue;
        if (!first_hang)
            first_hang = &result;
        std::fprintf(stderr, "%s/%s hung:\n%s", result.app.c_str(),
                     result.scheme.c_str(), result.hangReport.c_str());
    }
    if (first_hang) {
        if (const char *path = arg(argc, argv, "--hang-report")) {
            // Atomic write: a monitoring script watching for this file
            // must never read a half-written report.
            std::string why;
            if (!atomicWriteFile(
                    path, first_hang->metrics.hangReportJson + "\n",
                    &why))
                std::fprintf(stderr, "cannot write %s: %s\n", path,
                             why.c_str());
        }
    }

    if (flag(argc, argv, "--json")) {
        std::string path = "LBSIM_CLI.json";
        if (const char *v = arg(argc, argv, "--json")) {
            if (v[0] != '-')
                path = v;
        }
        writeExperimentJson(path, "lbsim_cli", false, results);
    }
    if (first_hang)
        return 3;
    return failed ? 1 : 0;
}
