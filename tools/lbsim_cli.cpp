/**
 * @file
 * lbsim command-line driver: run one (application, scheme) pair with
 * overridable configuration and print a full statistics report.
 *
 * Examples:
 *   lbsim_cli --app KM --scheme linebacker
 *   lbsim_cli --app S2 --scheme best-swl --warp-limit 16 --l1-kb 96
 *   lbsim_cli --list
 *   lbsim_cli --app BI --scheme svc --sms 4 --cycles 600000 --csv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/oracle.hpp"
#include "harness/sim_runner.hpp"
#include "power/energy_model.hpp"
#include "workload/suite.hpp"

namespace
{

using namespace lbsim;

void
usage()
{
    std::puts(
        "usage: lbsim_cli --app <id> --scheme <name> [options]\n"
        "\n"
        "schemes: baseline, best-swl (oracle unless --warp-limit),\n"
        "         ccws, pcal, cerf, linebacker, vc, svc, pcal-svc,\n"
        "         pcal-cerf, cache-ext, lb-cache-ext\n"
        "options:\n"
        "  --list               list the 20 Table-2 applications\n"
        "  --warp-limit <n>     static warp limit for best-swl\n"
        "  --sms <n>            SMs to simulate (default 2, scaled chip)\n"
        "  --cycles <n>         measured cycles (default 400000)\n"
        "  --warmup <n>         warm-up cycles (default 200000)\n"
        "  --l1-kb <n>          L1 size in KB (default 48)\n"
        "  --no-cache           bypass the on-disk memo cache\n"
        "  --csv                machine-readable one-line output");
}

const char *
arg(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

bool
flag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lbsim;

    if (flag(argc, argv, "--help") || argc < 2) {
        usage();
        return argc < 2 ? 1 : 0;
    }
    if (flag(argc, argv, "--list")) {
        for (const AppProfile &app : benchmarkSuite()) {
            std::printf("%-4s %-11s %s\n", app.id.c_str(),
                        app.cacheSensitive ? "sensitive" : "insensitive",
                        app.description.c_str());
        }
        return 0;
    }

    const char *app_id = arg(argc, argv, "--app");
    const char *scheme_name = arg(argc, argv, "--scheme");
    if (!app_id || !scheme_name) {
        usage();
        return 1;
    }

    GpuConfig cfg;
    if (const char *v = arg(argc, argv, "--l1-kb"))
        cfg.l1.sizeBytes = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10) * 1024);
    cfg.warmupCycles = 200000;
    if (const char *v = arg(argc, argv, "--warmup"))
        cfg.warmupCycles = std::strtoull(v, nullptr, 10);

    RunnerOptions options;
    options.simSms = 2;
    options.maxCycles = 400000;
    if (const char *v = arg(argc, argv, "--sms"))
        options.simSms = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10));
    if (const char *v = arg(argc, argv, "--cycles"))
        options.maxCycles = std::strtoull(v, nullptr, 10);
    options.useMemoCache = !flag(argc, argv, "--no-cache");

    SimRunner runner(cfg, LbConfig{}, options);
    const AppProfile &app = appById(app_id);

    SchemeConfig scheme;
    const std::string name = scheme_name;
    if (name == "baseline") {
        scheme = SchemeConfig::baseline();
    } else if (name == "best-swl") {
        if (const char *v = arg(argc, argv, "--warp-limit")) {
            scheme = SchemeConfig::bestSwl(static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10)));
        } else {
            const SwlOracleResult oracle = findBestSwl(runner, app);
            std::fprintf(stderr, "oracle warp limit: %u\n",
                         oracle.bestLimit);
            scheme = SchemeConfig::bestSwl(oracle.bestLimit);
        }
    } else if (name == "ccws") {
        scheme = SchemeConfig::ccws();
    } else if (name == "pcal") {
        scheme = SchemeConfig::pcal();
    } else if (name == "cerf") {
        scheme = SchemeConfig::cerf();
    } else if (name == "linebacker" || name == "lb") {
        scheme = SchemeConfig::linebacker();
    } else if (name == "vc") {
        scheme = SchemeConfig::victimCachingAll();
    } else if (name == "svc") {
        scheme = SchemeConfig::selectiveVictimCaching();
    } else if (name == "pcal-svc") {
        scheme = SchemeConfig::pcalSvc();
    } else if (name == "pcal-cerf") {
        scheme = SchemeConfig::pcalCerf();
    } else if (name == "cache-ext") {
        scheme = SchemeConfig::cacheExtension();
    } else if (name == "lb-cache-ext") {
        scheme = SchemeConfig::linebackerCacheExt();
    } else {
        std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name);
        usage();
        return 1;
    }

    const RunMetrics m = runner.run(app, scheme);
    const SimStats &s = m.stats;

    if (flag(argc, argv, "--csv")) {
        std::printf("app,scheme,ipc,l1_hit,reg_hit,miss,bypass,"
                    "dram_lines,energy_j,throttles\n");
        const double total = static_cast<double>(s.l1.total());
        std::printf("%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%.6e,%llu\n",
                    app.id.c_str(), scheme.name.c_str(), m.ipc,
                    s.l1.l1Hits / total, s.l1.regHits / total,
                    s.l1.misses / total, s.l1.bypasses / total,
                    static_cast<unsigned long long>(
                        s.dramLineTransfers()),
                    m.energyJ,
                    static_cast<unsigned long long>(
                        s.ctaThrottleEvents));
        return 0;
    }

    std::printf("%s under %s\n", app.id.c_str(), scheme.name.c_str());
    std::printf("  IPC                 %10.3f\n", m.ipc);
    std::printf("  cycles measured     %10llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  instructions        %10llu\n",
                static_cast<unsigned long long>(s.instructionsIssued));
    const double total = static_cast<double>(s.l1.total());
    std::printf("  L1 hit / Reg hit    %9.1f%% /%6.1f%%\n",
                100.0 * s.l1.l1Hits / total,
                100.0 * s.l1.regHits / total);
    std::printf("  miss / bypass       %9.1f%% /%6.1f%%\n",
                100.0 * s.l1.misses / total,
                100.0 * s.l1.bypasses / total);
    std::printf("  avg load latency    %10.0f cycles\n",
                s.avgLoadLatency());
    std::printf("  DRAM line transfers %10llu (backup %llu, restore "
                "%llu)\n",
                static_cast<unsigned long long>(s.dramLineTransfers()),
                static_cast<unsigned long long>(s.dramBackupWrites),
                static_cast<unsigned long long>(s.dramRestoreReads));
    std::printf("  RF bank conflicts   %10llu\n",
                static_cast<unsigned long long>(s.rfBankConflicts));
    std::printf("  CTA throttle/activ. %6llu / %llu\n",
                static_cast<unsigned long long>(s.ctaThrottleEvents),
                static_cast<unsigned long long>(s.ctaActivateEvents));
    std::printf("  victim stored/hits  %6llu / %llu\n",
                static_cast<unsigned long long>(s.victimLinesStored),
                static_cast<unsigned long long>(s.l1.regHits));
    std::printf("  energy              %10.4f J\n", m.energyJ);
    return 0;
}
