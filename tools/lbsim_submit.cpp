/**
 * @file
 * lbsim_submit: client for the lbsimd sweep daemon.
 *
 * Builds a PlanRequest from the command line, submits it over the
 * daemon's Unix socket, streams per-cell results as they complete, and
 * writes the same experiment JSON artifact a direct in-process run
 * would — byte for byte, which is what the service-soak CI job checks.
 *
 * Exit codes (documented contract, see DESIGN.md §15):
 *   0  every cell completed ok
 *   1  one or more cells failed (crash / fault-degraded)
 *   2  usage error, connection failure, or protocol error
 *   3  one or more cells hung (watchdog / deadline)
 *   4  the daemon shed the submission (queue-full / quota / bad-plan)
 *
 * --direct runs the identical plan in-process instead of connecting,
 * producing the reference artifact for daemon-vs-direct comparison.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "harness/report.hpp"
#include "service/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define LBSIM_HAVE_POSIX_SUBMIT 1
#endif

namespace
{

using namespace lbsim;

constexpr int kExitOk = 0;
constexpr int kExitFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitHang = 3;
constexpr int kExitShed = 4;

void
usage()
{
    std::puts(
        "usage: lbsim_submit [options]\n"
        "  --socket <path>      daemon socket (default lbsimd.sock)\n"
        "  --client <name>      client id for fair queuing (default\n"
        "                       'anon')\n"
        "  --priority <n>       scheduling priority (higher first)\n"
        "  --name <label>       plan label for artifacts\n"
        "  --apps <a,b|all>     Table-2 app ids (default: all)\n"
        "  --schemes <a,b,...>  scheme names (required)\n"
        "  --smoke              reduced cycles\n"
        "  --sms <n>            SMs to simulate (default 2)\n"
        "  --cycles <n>         measured cycles\n"
        "  --warmup <n>         warm-up cycles\n"
        "  --warp-limit <n>     static warp limit for best-swl\n"
        "  --timeout-cycles <n> forward-progress watchdog threshold\n"
        "  --deadline-sec <n>   per-cell wall-clock deadline\n"
        "  --retry-cap <n>      crashed-cell retries per plan\n"
        "  --threads <n>        workers for --direct (default: 1)\n"
        "  --json <path>        write the experiment JSON artifact\n"
        "  --direct             run in-process instead (reference "
        "mode)\n"
        "  --stats              query daemon counters and exit\n"
        "\n"
        "exit: 0 ok, 1 failed cells, 2 usage/connect, 3 hung cells,\n"
        "      4 submission shed");
}

const char *
arg(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

bool
flag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string item = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Map completed results onto the process exit code contract. */
int
exitCodeFor(const std::vector<CellResult> &results)
{
    bool failed = false;
    for (const CellResult &result : results) {
        if (result.outcome == RunOutcome::Hang)
            return kExitHang;
        if (!result.ok)
            failed = true;
    }
    return failed ? kExitFailed : kExitOk;
}

void
printCell(const CellResult &result)
{
    if (result.ok) {
        std::printf("  %-4s %-14s ipc %.3f\n", result.app.c_str(),
                    result.scheme.c_str(), result.metrics.ipc);
    } else {
        std::printf("  %-4s %-14s %s: %s\n", result.app.c_str(),
                    result.scheme.c_str(),
                    runOutcomeName(result.outcome),
                    result.error.c_str());
    }
}

int
runDirect(const PlanRequest &request, unsigned threads,
          const char *json_path)
{
    ExperimentPlan plan;
    std::string why;
    if (!buildExperimentPlan(request, plan, why)) {
        std::fprintf(stderr, "lbsim_submit: bad plan: %s\n",
                     why.c_str());
        return kExitUsage;
    }
    EngineOptions engine;
    engine.threads = threads ? threads : 1;
    const std::vector<CellResult> results =
        ExperimentEngine(engine).run(plan);
    for (const CellResult &result : results)
        printCell(result);
    if (json_path)
        writeExperimentJson(json_path, request.name, request.smoke,
                            results);
    return exitCodeFor(results);
}

#ifdef LBSIM_HAVE_POSIX_SUBMIT

int
connectTo(const std::string &socket_path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
submitRemote(const std::string &socket_path, const std::string &client,
             int priority, const PlanRequest &request,
             const char *json_path)
{
    const int fd = connectTo(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "lbsim_submit: cannot connect to %s\n",
                     socket_path.c_str());
        return kExitUsage;
    }
    std::string error;
    if (!writeFrame(fd, submitMessage(client, priority, request),
                    &error)) {
        std::fprintf(stderr, "lbsim_submit: submit failed: %s\n",
                     error.c_str());
        ::close(fd);
        return kExitUsage;
    }

    std::vector<CellResult> results;
    std::size_t expected = 0;
    bool done = false;
    while (!done) {
        std::string payload;
        bool eof = false;
        if (!readFrame(fd, payload, eof, &error)) {
            std::fprintf(stderr,
                         "lbsim_submit: connection lost before done "
                         "(%s)\n",
                         eof ? "daemon closed" : error.c_str());
            ::close(fd);
            return kExitUsage;
        }
        JsonValue message;
        if (!parseJson(payload, message, &error) ||
            !message.isObject()) {
            std::fprintf(stderr, "lbsim_submit: bad frame: %s\n",
                         error.c_str());
            ::close(fd);
            return kExitUsage;
        }
        const std::string type = message.stringOr("type", "");
        if (type == "shed") {
            std::fprintf(stderr, "lbsim_submit: shed (%s): %s\n",
                         message.stringOr("reason", "?").c_str(),
                         message.stringOr("detail", "").c_str());
            ::close(fd);
            return kExitShed;
        }
        if (type == "accepted") {
            expected =
                static_cast<std::size_t>(message.numberOr("cells", 0));
            results.resize(expected);
            std::fprintf(stderr,
                         "lbsim_submit: accepted as %s (%zu cells)\n",
                         message.stringOr("planId", "?").c_str(),
                         expected);
            continue;
        }
        if (type == "cell") {
            CellResult result;
            if (!parseCellMessage(message, result, error)) {
                std::fprintf(stderr, "lbsim_submit: bad cell: %s\n",
                             error.c_str());
                ::close(fd);
                return kExitUsage;
            }
            if (result.index >= results.size())
                results.resize(result.index + 1);
            printCell(result);
            results[result.index] = std::move(result);
            continue;
        }
        if (type == "done")
            done = true;
    }
    ::close(fd);

    if (json_path)
        writeExperimentJson(json_path, request.name, request.smoke,
                            results);
    return exitCodeFor(results);
}

int
queryStats(const std::string &socket_path)
{
    const int fd = connectTo(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "lbsim_submit: cannot connect to %s\n",
                     socket_path.c_str());
        return kExitUsage;
    }
    std::string payload, error;
    bool eof = false;
    if (!writeFrame(fd, statsRequestMessage(), &error) ||
        !readFrame(fd, payload, eof, &error)) {
        std::fprintf(stderr, "lbsim_submit: stats failed: %s\n",
                     error.c_str());
        ::close(fd);
        return kExitUsage;
    }
    std::printf("%s\n", payload.c_str());
    ::close(fd);
    return kExitOk;
}

#else // !LBSIM_HAVE_POSIX_SUBMIT

int
submitRemote(const std::string &, const std::string &, int,
             const PlanRequest &, const char *)
{
    std::fprintf(stderr,
                 "lbsim_submit requires Unix domain sockets\n");
    return kExitUsage;
}

int
queryStats(const std::string &)
{
    std::fprintf(stderr,
                 "lbsim_submit requires Unix domain sockets\n");
    return kExitUsage;
}

#endif

} // namespace

int
main(int argc, char **argv)
{
    if (flag(argc, argv, "--help") || flag(argc, argv, "-h")) {
        usage();
        return kExitOk;
    }
#ifdef LBSIM_HAVE_POSIX_SUBMIT
    // A daemon that dies mid-stream must surface as an exit code, not
    // as SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
#endif

    std::string socket_path = "lbsimd.sock";
    if (const char *v = arg(argc, argv, "--socket"))
        socket_path = v;
    if (flag(argc, argv, "--stats"))
        return queryStats(socket_path);

    PlanRequest request;
    if (const char *v = arg(argc, argv, "--name"))
        request.name = v;
    if (const char *v = arg(argc, argv, "--apps")) {
        if (std::strcmp(v, "all") != 0)
            request.apps = splitCommas(v);
    }
    if (const char *v = arg(argc, argv, "--schemes"))
        request.schemes = splitCommas(v);
    request.smoke = flag(argc, argv, "--smoke");
    if (const char *v = arg(argc, argv, "--sms"))
        request.sms = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10));
    if (const char *v = arg(argc, argv, "--cycles"))
        request.cycles = std::strtoull(v, nullptr, 10);
    if (const char *v = arg(argc, argv, "--warmup"))
        request.warmup = std::strtoull(v, nullptr, 10);
    if (const char *v = arg(argc, argv, "--warp-limit"))
        request.warpLimit = static_cast<std::uint32_t>(
            std::strtoul(v, nullptr, 10));
    if (const char *v = arg(argc, argv, "--timeout-cycles"))
        request.timeoutCycles = std::strtoull(v, nullptr, 10);
    if (const char *v = arg(argc, argv, "--deadline-sec"))
        request.deadlineSec = static_cast<unsigned>(
            std::strtoul(v, nullptr, 10));
    if (const char *v = arg(argc, argv, "--retry-cap"))
        request.retryCap = static_cast<unsigned>(
            std::strtoul(v, nullptr, 10));
    if (request.schemes.empty()) {
        std::fprintf(stderr, "lbsim_submit: --schemes is required\n");
        usage();
        return kExitUsage;
    }

    const char *json_path = arg(argc, argv, "--json");
    if (flag(argc, argv, "--direct")) {
        unsigned threads = 0;
        if (const char *v = arg(argc, argv, "--threads"))
            threads = lbsim::clampThreadArg(
                static_cast<unsigned>(std::strtoul(v, nullptr, 10)),
                "--threads");
        return runDirect(request, threads, json_path);
    }

    std::string client = "anon";
    if (const char *v = arg(argc, argv, "--client"))
        client = v;
    int priority = 0;
    if (const char *v = arg(argc, argv, "--priority"))
        priority = static_cast<int>(std::strtol(v, nullptr, 10));
    return submitRemote(socket_path, client, priority, request,
                       json_path);
}
