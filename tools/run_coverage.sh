#!/usr/bin/env bash
# Line-coverage driver for lbsim.
#
# Builds an instrumented tree (build-coverage/), runs the unit suite and
# a short lbsim_fuzz campaign, then reports line coverage over src/ and
# enforces a floor. Reporting prefers gcovr (HTML + XML artifacts);
# without it, falls back to aggregating raw `gcov` output so the floor
# is still enforced on machines with only the base toolchain.
#
# Usage:
#   tools/run_coverage.sh [--min PCT] [--skip-fuzz] [-j N]

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-coverage"
jobs="$(nproc 2>/dev/null || echo 4)"
min_line=70
run_fuzz=1

while [ $# -gt 0 ]; do
    case "$1" in
        --min) shift; min_line="$1" ;;
        --skip-fuzz) run_fuzz=0 ;;
        -j) shift; jobs="$1" ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

note() { printf '\n=== %s ===\n' "$*"; }

note "instrumented build"
cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Debug \
      -DLBSIM_CHECKS=full \
      -DCMAKE_CXX_FLAGS="--coverage -O1" \
      -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null || exit 1
cmake --build "$build_dir" -j "$jobs" || exit 1

# Stale .gcda files from earlier runs would skew the counters.
find "$build_dir" -name '*.gcda' -delete

note "unit suite"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" || exit 1

if [ "$run_fuzz" -eq 1 ]; then
    note "fuzz campaign (50 iterations)"
    "$build_dir/tools/lbsim_fuzz" --iters 50 \
        --out "$build_dir/fuzz-out" || exit 1
fi

note "line coverage (src/ only, floor ${min_line}%)"
mkdir -p "$build_dir/coverage"
if command -v gcovr >/dev/null 2>&1; then
    gcovr --root "$repo_root" \
          --filter "$repo_root/src/" \
          --object-directory "$build_dir" \
          --print-summary \
          --html-details "$build_dir/coverage/index.html" \
          --xml "$build_dir/coverage/coverage.xml" \
          --fail-under-line "$min_line"
    exit $?
fi

# Fallback: run gcov per object directory and sum "Lines executed"
# over src/ sources. Less pretty than gcovr, same floor.
echo "(gcovr not installed; using raw gcov aggregation)"
gcov_tool="${GCOV:-gcov}"
command -v "$gcov_tool" >/dev/null 2>&1 || {
    echo "neither gcovr nor $gcov_tool available" >&2
    exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
find "$build_dir/src" -name '*.gcda' -print0 |
    (cd "$tmp" && xargs -0 "$gcov_tool" -p >gcov.log 2>&1)

# gcov -p names outputs like #path#to#src#mem#l1_cache.cpp.gcov; keep
# only first-party sources and tally executable vs executed lines.
total=0
covered=0
for f in "$tmp"/*#src#*.gcov; do
    [ -e "$f" ] || continue
    case "$f" in
        *'#tests#'*|*'#_deps#'*) continue ;;
    esac
    counts="$(awk -F: '
        $1 !~ /-/ { exec_lines++ }
        $1 !~ /[-#=]/ { cov_lines++ }
        END { printf "%d %d", exec_lines + 0, cov_lines + 0 }' "$f")"
    total=$((total + ${counts% *}))
    covered=$((covered + ${counts#* }))
done

if [ "$total" -eq 0 ]; then
    echo "no coverage data found under $build_dir/src" >&2
    exit 1
fi
pct=$((covered * 100 / total))
echo "line coverage: ${covered}/${total} lines = ${pct}%"
if [ "$pct" -lt "$min_line" ]; then
    echo "FAIL: below the ${min_line}% floor" >&2
    exit 1
fi
echo "OK: floor ${min_line}% held"
