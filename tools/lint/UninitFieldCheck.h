/**
 * @file
 * lbsim-uninit-field: uninitialized scalar members of value structs.
 *
 * Config/stat structs are hashed into memo-cache keys, serialized for
 * fuzz replay, and diffed field-by-field by the lockstep checker; a
 * single indeterminate byte poisons all three. Every scalar (builtin,
 * enum or pointer) member of a struct whose name ends in Config, Stats,
 * Options, Timing, Geometry or Metrics must carry an in-class
 * initializer.
 *
 * Portable twin: the lbsim-uninit-field check in
 * tools/lint/lbsim_lint.py.
 */

#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace lbsim_tidy
{

class UninitFieldCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace lbsim_tidy
