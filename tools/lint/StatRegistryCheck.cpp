#include "StatRegistryCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/Basic/SourceManager.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace lbsim_tidy
{

void
StatRegistryCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        cxxRecordDecl(isDefinition(), matchesName("Stats$"))
            .bind("stats-record"),
        this);
    finder->addMatcher(
        cxxRecordDecl(isDefinition()).bind("any-record"), this);

    // The visitor is usually a function template (generic callback), so
    // member accesses inside it can be value-dependent; collect both
    // resolved and dependent member expressions.
    finder->addMatcher(
        memberExpr(hasAncestor(
                       functionDecl(hasName("forEachStatField"))
                           .bind("visitor")))
            .bind("visited-member"),
        this);
    finder->addMatcher(
        cxxDependentScopeMemberExpr(
            hasAncestor(functionDecl(hasName("forEachStatField"))
                            .bind("visitor")))
            .bind("visited-dependent"),
        this);
}

void
StatRegistryCheck::check(const MatchFinder::MatchResult &result)
{
    const SourceManager &sm = *result.SourceManager;

    if (const auto *record =
            result.Nodes.getNodeAs<CXXRecordDecl>("any-record")) {
        std::set<std::string> &members =
            record_members_[record->getNameAsString()];
        for (const FieldDecl *field : record->fields())
            members.insert(field->getNameAsString());
    }

    if (const auto *record =
            result.Nodes.getNodeAs<CXXRecordDecl>("stats-record")) {
        const std::string file =
            sm.getFilename(sm.getSpellingLoc(record->getBeginLoc()))
                .str();
        if (file.empty())
            return;
        auto &fields =
            stats_fields_[file][record->getNameAsString()];
        if (!fields.empty())
            return; // already collected this record
        for (const FieldDecl *field : record->fields()) {
            FieldInfo info;
            info.name = field->getNameAsString();
            info.loc = field->getLocation();
            if (const auto *rec =
                    field->getType()->getAsCXXRecordDecl())
                info.record_type = rec->getNameAsString();
            fields.push_back(std::move(info));
        }
    }

    const auto *visitor =
        result.Nodes.getNodeAs<FunctionDecl>("visitor");
    if (!visitor)
        return;
    const std::string file =
        sm.getFilename(sm.getSpellingLoc(visitor->getBeginLoc())).str();
    if (file.empty())
        return;
    if (const auto *member =
            result.Nodes.getNodeAs<MemberExpr>("visited-member"))
        visited_members_[file].insert(
            member->getMemberDecl()->getNameAsString());
    if (const auto *member = result.Nodes.getNodeAs<
            CXXDependentScopeMemberExpr>("visited-dependent"))
        visited_members_[file].insert(
            member->getMember().getAsString());
}

void
StatRegistryCheck::onEndOfTranslationUnit()
{
    for (const auto &[file, records] : stats_fields_) {
        const auto visited_it = visited_members_.find(file);
        if (visited_it == visited_members_.end())
            continue; // no visitor in this file: not a registry struct
        const std::set<std::string> &visited = visited_it->second;
        for (const auto &[record, fields] : records) {
            for (const FieldInfo &field : fields) {
                if (visited.count(field.name))
                    continue;
                // A nested struct field counts as covered when any of
                // its own members is referenced (the visitor recurses
                // as `s.l1.hits`, never naming `l1` alone in some
                // styles — and vice versa).
                if (!field.record_type.empty()) {
                    const auto rec_it =
                        record_members_.find(field.record_type);
                    bool nested_covered = false;
                    if (rec_it != record_members_.end()) {
                        for (const std::string &sub : rec_it->second) {
                            if (visited.count(sub)) {
                                nested_covered = true;
                                break;
                            }
                        }
                    }
                    if (nested_covered)
                        continue;
                }
                diag(field.loc,
                     "field '%0' of %1 is missing from the "
                     "forEachStatField visitor; it will be skipped by "
                     "serialization, memo-cache keys and stat diffs")
                    << field.name << record;
            }
        }
    }
    stats_fields_.clear();
    visited_members_.clear();
    record_members_.clear();
}

} // namespace lbsim_tidy
