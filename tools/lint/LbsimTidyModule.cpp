/**
 * @file
 * clang-tidy module registration for the lbsim check suite.
 *
 * Built as a shared library and loaded into stock clang-tidy:
 *
 *   clang-tidy --load build/tools/lint/liblbsim-tidy.so \
 *              --checks='-*,lbsim-*' -p build src/lb/linebacker.cpp
 *
 * Requires clang-tidy >= 15 (the first release with --load). The
 * clang-tidy development headers are not packaged by most distros;
 * point LBSIM_CLANG_TIDY_HEADER_DIR at a clang-tools-extra checkout
 * (see tools/lint/CMakeLists.txt).
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "CrossDomainCheck.h"
#include "NondeterminismCheck.h"
#include "StatRegistryCheck.h"
#include "UninitFieldCheck.h"

namespace lbsim_tidy
{

class LbsimTidyModule : public clang::tidy::ClangTidyModule
{
  public:
    void
    addCheckFactories(
        clang::tidy::ClangTidyCheckFactories &factories) override
    {
        factories.registerCheck<NondeterminismCheck>(
            "lbsim-nondeterminism");
        factories.registerCheck<UninitFieldCheck>("lbsim-uninit-field");
        factories.registerCheck<StatRegistryCheck>(
            "lbsim-stat-registry");
        factories.registerCheck<CrossDomainCheck>("lbsim-cross-domain");
    }
};

} // namespace lbsim_tidy

namespace clang::tidy
{

static ClangTidyModuleRegistry::Add<lbsim_tidy::LbsimTidyModule>
    lbsimTidyModuleInit("lbsim-module",
                        "lbsim determinism / registry checks");

/** Anchor the module so --load keeps the registration alive. */
volatile int lbsimTidyModuleAnchorSource = 0;

} // namespace clang::tidy
