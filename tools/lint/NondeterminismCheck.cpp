#include "NondeterminismCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace lbsim_tidy
{

namespace
{

/** Functions whose result depends on the environment or wall clock. */
constexpr const char *kNondetFunctions =
    "^(::)?(std::)?(rand|srand|random|rand_r|drand48|lrand48|mrand48|"
    "getenv|secure_getenv|setenv|putenv|time|clock|gettimeofday|"
    "clock_gettime)$";

constexpr const char *kOrderedAssociative =
    "^::std::(multi)?(map|set)$";

/** Methods that mutate a container or stream (used on loop bodies). */
constexpr const char *kMutatingMethods =
    "^(insert|erase|emplace.*|push_.*|pop_.*|append|assign|clear|"
    "resize)$";

/** Free functions that produce output / abort (order-visible effects). */
constexpr const char *kOutputFunctions =
    "^(::)?(std::)?(printf|fprintf|snprintf|sprintf|puts|fputs)$|"
    "^(::)?lbsim::(panic|fatal|logMessage)$";

} // namespace

NondeterminismCheck::NondeterminismCheck(
    llvm::StringRef name, clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      model_dirs_(Options.get(
          "ModelDirs", "src/core,src/mem,src/lb,src/baselines,src/power"))
{
    llvm::SmallVector<llvm::StringRef, 8> parts;
    llvm::StringRef(model_dirs_).split(parts, ',', -1,
                                       /*KeepEmpty=*/false);
    for (llvm::StringRef part : parts)
        model_dir_list_.push_back(part.trim().str());
}

void
NondeterminismCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "ModelDirs", model_dirs_);
}

bool
NondeterminismCheck::inModelDirs(SourceLocation loc,
                                 const SourceManager &sm) const
{
    if (model_dir_list_.empty())
        return true;
    const llvm::StringRef file = sm.getFilename(sm.getSpellingLoc(loc));
    for (const std::string &dir : model_dir_list_) {
        if (file.contains(dir))
            return true;
    }
    return false;
}

void
NondeterminismCheck::registerMatchers(MatchFinder *finder)
{
    // 1. Calls to wall-clock / PRNG / environment functions, and any
    //    *_clock::now().
    finder->addMatcher(
        callExpr(callee(functionDecl(matchesName(kNondetFunctions))))
            .bind("nondet-call"),
        this);
    finder->addMatcher(
        callExpr(callee(functionDecl(
                     hasName("now"),
                     hasAncestor(cxxRecordDecl(matchesName(
                         "(system_clock|steady_clock|"
                         "high_resolution_clock)$"))))))
            .bind("clock-now"),
        this);

    // 2. std::random_device construction.
    finder->addMatcher(
        varDecl(hasType(namedDecl(hasName("::std::random_device"))))
            .bind("random-device"),
        this);

    // 3. Range-for over an unordered container whose body has
    //    order-visible effects. The body heuristics mirror the python
    //    backend: increments/decrements, compound assignment, plain
    //    assignment through a member access, mutating container member
    //    calls, output calls.
    const auto unordered_type = hasType(hasUnqualifiedDesugaredType(
        recordType(hasDeclaration(classTemplateSpecializationDecl(
            matchesName("^::std::unordered_"
                        "(map|set|multimap|multiset)$"))))));

    const auto unordered_range = cxxForRangeStmt(
        hasRangeInit(ignoringParenImpCasts(anyOf(
            memberExpr(member(fieldDecl(unordered_type)))
                .bind("range-member"),
            declRefExpr(to(varDecl(unordered_type)))
                .bind("range-var")))));

    const auto mutation = anyOf(
        unaryOperator(hasAnyOperatorName("++", "--")),
        binaryOperator(isAssignmentOperator(),
                       unless(hasOperatorName("=")),
                       unless(hasLHS(ignoringParenImpCasts(declRefExpr(
                           to(varDecl(hasLocalStorage()))))))),
        binaryOperator(hasOperatorName("="),
                       hasLHS(ignoringParenImpCasts(memberExpr()))),
        cxxOperatorCallExpr(hasAnyOverloadedOperatorName(
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
            ">>=")),
        cxxMemberCallExpr(callee(cxxMethodDecl(
            matchesName(kMutatingMethods), unless(isConst())))),
        callExpr(callee(functionDecl(matchesName(kOutputFunctions)))));

    finder->addMatcher(
        cxxForRangeStmt(unordered_range,
                        hasBody(hasDescendant(stmt(mutation))))
            .bind("unordered-loop"),
        this);

    // 4. Ordered associative containers keyed on a pointer type.
    finder->addMatcher(
        fieldDecl(hasType(hasUnqualifiedDesugaredType(recordType(
                      hasDeclaration(classTemplateSpecializationDecl(
                          matchesName(kOrderedAssociative),
                          hasTemplateArgument(
                              0, refersToType(pointerType()))))))))
            .bind("pointer-keyed"),
        this);
}

void
NondeterminismCheck::check(const MatchFinder::MatchResult &result)
{
    const SourceManager &sm = *result.SourceManager;

    if (const auto *call = result.Nodes.getNodeAs<CallExpr>("nondet-call")) {
        if (!inModelDirs(call->getBeginLoc(), sm))
            return;
        diag(call->getBeginLoc(),
             "call to nondeterministic function in model code; thread "
             "explicit config/seed state instead");
        return;
    }
    if (const auto *call = result.Nodes.getNodeAs<CallExpr>("clock-now")) {
        if (!inModelDirs(call->getBeginLoc(), sm))
            return;
        diag(call->getBeginLoc(),
             "wall-clock read in model code; simulation time is the "
             "only clock the model may observe");
        return;
    }
    if (const auto *var =
            result.Nodes.getNodeAs<VarDecl>("random-device")) {
        if (!inModelDirs(var->getBeginLoc(), sm))
            return;
        diag(var->getBeginLoc(),
             "std::random_device in model code; use the seeded "
             "deterministic RNG from the config");
        return;
    }
    if (const auto *loop =
            result.Nodes.getNodeAs<CXXForRangeStmt>("unordered-loop")) {
        if (!inModelDirs(loop->getBeginLoc(), sm))
            return;
        diag(loop->getBeginLoc(),
             "iteration over unordered container with order-visible "
             "effects in the body; walk sortedKeys() from "
             "common/det.hpp instead");
        return;
    }
    if (const auto *field =
            result.Nodes.getNodeAs<FieldDecl>("pointer-keyed")) {
        if (!inModelDirs(field->getBeginLoc(), sm))
            return;
        diag(field->getBeginLoc(),
             "ordered container keyed on a pointer; iteration order "
             "depends on address-space layout — key on a stable id "
             "instead");
        return;
    }
}

} // namespace lbsim_tidy
