/**
 * @file
 * lbsim-nondeterminism: flag nondeterminism sources in model code.
 *
 * The simulator's core promise is bit-identical stats for identical
 * configs (the memo cache, golden tests and lockstep checker all rely
 * on it). This check rejects the constructs that break the promise:
 *
 *  - calls to wall-clock / PRNG / environment functions (rand, time,
 *    getenv, std::random_device, std::chrono::*_clock::now, ...)
 *  - range-for loops over std::unordered_{map,set} members whose body
 *    mutates state or produces output (iteration order is library- and
 *    history-dependent; walk sortedKeys() from common/det.hpp instead)
 *  - std::map / std::set keyed on pointer values (address-space layout
 *    leaks into iteration order)
 *
 * Scope: files under the ModelDirs option (default
 * "src/core,src/mem,src/lb,src/baselines,src/power"); an empty option
 * value means every file, which is what the fixture corpus uses.
 *
 * The portable twin of this check lives in tools/lint/lbsim_lint.py;
 * keep the two behaviourally aligned (the fixtures in tests/lint/ are
 * run against both backends).
 */

#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace lbsim_tidy
{

class NondeterminismCheck : public clang::tidy::ClangTidyCheck
{
  public:
    NondeterminismCheck(llvm::StringRef name,
                        clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &opts)
        override;

  private:
    bool inModelDirs(clang::SourceLocation loc,
                     const clang::SourceManager &sm) const;

    /** Comma-separated dir prefixes; empty = every file. */
    std::string model_dirs_;
    std::vector<std::string> model_dir_list_;
};

} // namespace lbsim_tidy
