#!/usr/bin/env python3
"""Portable backend of the lbsim lint suite.

Implements the same check families as the clang-tidy plugin
(tools/lint/*.cpp) with textual heuristics, so the suite runs on any
box with python3 — no LLVM dev toolchain required. The plugin is the
precise reference implementation; this backend exists so ctest and
tools/run_static_analysis.sh can enforce the rules everywhere. Both
backends are validated against the same fixture corpus in tests/lint/.

Check families
--------------
lbsim-nondeterminism (model dirs only, see --model-dirs):
  * calls to wall-clock / PRNG / environment sources (rand, time,
    getenv, std::random_device, std::chrono::*_clock::now, ...)
  * range-for loops over std::unordered_{map,set} whose body mutates
    state or stats or produces output (walk sortedKeys() instead)
  * std::map / std::set keyed on pointer values (address-space layout
    leaks into iteration order)
lbsim-uninit-field (everywhere):
  * uninitialized scalar members of *Config/*Stats/*Options/*Timing/
    *Geometry/*Metrics structs — the memo-cache-key and fuzz-replay
    poison of reading indeterminate bytes
lbsim-stat-registry (everywhere):
  * fields of *Stats structs missing from the forEachStatField
    visitor in the same file (the single enumeration that the memo
    cache, serializeStats and firstStatDifference all walk)
lbsim-cross-domain (model dirs only, see --model-dirs):
  * raw concurrency primitives (std::thread, std::mutex, std::atomic,
    std::condition_variable, std::async, ...) declared or used in
    model code. Model state is sharded into per-SM tick domains that
    synchronize only at the annotated interconnect barrier
    (SeqDomain/Mutex capabilities + the common/parallel.hpp pool);
    ad-hoc primitives bypass that proof and invite cross-domain
    access the -Wthread-safety analysis cannot see

Suppression: a `// NOLINT` or `// NOLINT(check-name)` comment on the
flagged line, or `// NOLINTNEXTLINE[(check-name)]` on the line before.

Exit status: 0 when clean, 1 when any finding was reported, 2 on usage
errors.
"""

import argparse
import os
import re
import sys

NONDET = "lbsim-nondeterminism"
UNINIT = "lbsim-uninit-field"
REGISTRY = "lbsim-stat-registry"
CROSSDOMAIN = "lbsim-cross-domain"
ALL_CHECKS = (NONDET, UNINIT, REGISTRY, CROSSDOMAIN)

DEFAULT_MODEL_DIRS = "src/core,src/mem,src/lb,src/baselines,src/power"

# --- nondeterministic calls -------------------------------------------------

NONDET_FUNCS = (
    "rand", "srand", "random", "rand_r", "drand48", "lrand48", "mrand48",
    "getenv", "secure_getenv", "setenv", "putenv",
    "time", "clock", "gettimeofday", "clock_gettime",
)
NONDET_CALL_RE = re.compile(
    r"(?<![\w.>])(?:std\s*::\s*)?(" + "|".join(NONDET_FUNCS) + r")\s*\("
)
RANDOM_DEVICE_RE = re.compile(r"\bstd\s*::\s*random_device\b")
CHRONO_NOW_RE = re.compile(
    r"\b(?:std\s*::\s*chrono\s*::\s*)?"
    r"(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
)
POINTER_KEYED_RE = re.compile(
    r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
)

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\s*\)"
)

# Signals that a loop body mutates state/stats or produces output.
MUTATION_RES = (
    re.compile(r"\+\+|--"),
    re.compile(r"(?<![<>=!+\-*/%&|^])(?:\+|-|\*|/|%|&|\||\^|<<|>>)="),
    # Plain assignment through a member access (obj.field = / p->field =).
    re.compile(r"(?:->|\.)\s*\w+(?:\s*\[[^\]]*\])?\s*=(?![=])"),
    re.compile(
        r"\.\s*(insert|erase|emplace\w*|push_\w+|pop_\w+|append|assign|"
        r"clear|resize)\s*\("),
    re.compile(
        r"\b(printf|fprintf|snprintf|sprintf|puts|fputs|logMessage|panic|"
        r"fatal|LB_AUDIT|LB_ASSERT|LB_INVARIANT|LBSIM_WARN|LBSIM_INFORM)"
        r"\s*\("),
)

# --- raw concurrency primitives in model code -------------------------------

CROSS_DOMAIN_TYPES = (
    "thread", "jthread", "mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
    "condition_variable", "condition_variable_any", "atomic",
    "atomic_flag", "future", "shared_future", "promise", "barrier",
    "latch", "counting_semaphore", "binary_semaphore",
)
CROSS_DOMAIN_TYPE_RE = re.compile(
    r"\bstd\s*::\s*(" + "|".join(CROSS_DOMAIN_TYPES) + r")\b"
)
CROSS_DOMAIN_CALL_RE = re.compile(
    r"\bstd\s*::\s*(async|atomic_thread_fence|atomic_signal_fence)\s*\("
)

SCALAR_TYPE_RE = re.compile(
    r"^(?:const\s+)?(?:"
    r"bool|char|short|int|long|unsigned|float|double|size_t|"
    r"std\s*::\s*u?int(?:8|16|32|64|max|ptr)_t|std\s*::\s*size_t|"
    r"u?int(?:8|16|32|64)_t|Cycle|Addr|RegNum|HashedPc"
    r")(?:\s+(?:int|long|char|short))*$"
)

STRUCT_SUFFIX_RE = re.compile(
    r"\b(?:struct|class)\s+(\w*(?:Config|Stats|Options|Timing|Geometry|"
    r"Metrics))\s*(?:final\s*)?(?::[^{;]*)?\{"
)

MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+)*"
    r"(?P<type>(?:const\s+)?[\w:]+(?:\s*::\s*\w+)*(?:\s*<[^;=]*>)?"
    r"(?:\s*\*+)?)"
    r"\s*(?P<name>\w+)\s*(?P<init>=[^;]*|\{[^;]*\})?\s*;"
)


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure so reported line numbers match the original file."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n", '"', "'") else " ")
        i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line_no, check, message, raw_lines):
        if self._suppressed(raw_lines, line_no, check):
            return
        self.items.append((path, line_no, check, message))

    @staticmethod
    def _suppressed(raw_lines, line_no, check):
        def matches(text, directive):
            m = re.search(directive + r"(?:\(([^)]*)\))?", text)
            return m is not None and (m.group(1) is None or
                                      check in m.group(1))

        here = raw_lines[line_no - 1] if line_no - 1 < len(raw_lines) else ""
        if matches(here, r"//\s*NOLINT"):
            return True
        prev = raw_lines[line_no - 2] if line_no >= 2 else ""
        return matches(prev, r"//\s*NOLINTNEXTLINE")


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def find_matching_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def loop_body_span(text, for_end):
    """Span of the statement controlled by a for() ending at for_end."""
    i = for_end
    while i < len(text) and text[i] in " \t\n":
        i += 1
    if i < len(text) and text[i] == "{":
        return i, find_matching_brace(text, i)
    # Single statement: up to the terminating semicolon.
    end = text.find(";", i)
    return i, end if end != -1 else len(text) - 1


def unordered_names_in(clean):
    """Identifiers declared with an unordered container type in one
    preprocessed file."""
    names = set()
    flat = clean.replace("\n", " ")
    for m in UNORDERED_DECL_RE.finditer(flat):
        # Skip the template argument list, then take the declarator.
        i, depth = m.end() - 1, 0
        while i < len(flat):
            if flat[i] == "<":
                depth += 1
            elif flat[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = flat[i + 1:i + 160]
        dm = re.match(r"\s*&?\s*(\w+)", tail)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    return names


def stem_of(path):
    base, _ = os.path.splitext(path.replace(os.sep, "/"))
    return base


def collect_unordered_names(clean_texts):
    """Per-stem unordered declarations: a .cpp shares one scope with its
    same-stem header (members are declared there), but names never leak
    across unrelated files — MshrFile's unordered entries_ must not
    taint a vector named entries_ elsewhere."""
    per_stem = {}
    for path, clean in clean_texts.items():
        per_stem.setdefault(stem_of(path), set()).update(
            unordered_names_in(clean))
    return per_stem


def check_nondet(path, clean, raw_lines, unordered_names, findings):
    for m in NONDET_CALL_RE.finditer(clean):
        findings.add(path, line_of(clean, m.start()), NONDET,
                     "call to nondeterministic source '%s' in model code; "
                     "route through a seeded Rng / envFlag() / sim cycles "
                     "instead" % m.group(1), raw_lines)
    for m in RANDOM_DEVICE_RE.finditer(clean):
        findings.add(path, line_of(clean, m.start()), NONDET,
                     "std::random_device is nondeterministic; use the "
                     "seeded lbsim::Rng", raw_lines)
    for m in CHRONO_NOW_RE.finditer(clean):
        findings.add(path, line_of(clean, m.start()), NONDET,
                     "wall-clock read (%s::now) in model code; model time "
                     "is the simulated cycle" % m.group(1), raw_lines)
    for m in POINTER_KEYED_RE.finditer(clean):
        findings.add(path, line_of(clean, m.start()), NONDET,
                     "ordered container keyed on pointer values; iteration "
                     "order leaks address-space layout into the run",
                     raw_lines)
    for m in RANGE_FOR_RE.finditer(clean):
        name = m.group(1)
        if name not in unordered_names:
            continue
        begin, end = loop_body_span(clean, m.end())
        body = clean[begin:end + 1]
        if any(r.search(body) for r in MUTATION_RES):
            findings.add(path, line_of(clean, m.start()), NONDET,
                         "iteration over unordered container '%s' mutates "
                         "state or produces output; iterate "
                         "sortedKeys(%s) for a deterministic order"
                         % (name, name), raw_lines)


def check_cross_domain(path, clean, raw_lines, findings):
    for m in CROSS_DOMAIN_TYPE_RE.finditer(clean):
        findings.add(path, line_of(clean, m.start()), CROSSDOMAIN,
                     "raw std::%s in model code; per-SM tick domains may "
                     "synchronize only at the annotated interconnect "
                     "barrier — use the SeqDomain/Mutex capabilities and "
                     "the common/parallel.hpp pool so -Wthread-safety "
                     "can prove the sharding" % m.group(1), raw_lines)
    for m in CROSS_DOMAIN_CALL_RE.finditer(clean):
        findings.add(path, line_of(clean, m.start()), CROSSDOMAIN,
                     "std::%s in model code bypasses the tick-domain "
                     "barrier discipline; cross-domain work belongs in "
                     "the serial phase or behind an annotated capability"
                     % m.group(1), raw_lines)


def struct_blocks(clean):
    """Yield (name, body_text, body_start_pos) for suffix-matched
    structs, with nested function bodies blanked out."""
    for m in STRUCT_SUFFIX_RE.finditer(clean):
        open_pos = clean.index("{", m.start())
        close = find_matching_brace(clean, open_pos)
        yield m.group(1), clean[open_pos + 1:close], open_pos + 1


def top_level_members(body):
    """Member declarations at depth 0 of a struct body, as
    (offset, type, name, has_init). Function bodies are skipped."""
    # Blank nested braces (methods, nested types, initializers keep "=").
    chars = list(body)
    depth = 0
    for i, c in enumerate(chars):
        if c == "{":
            depth += 1
            chars[i] = " "
        elif c == "}":
            depth -= 1
            chars[i] = " "
        elif depth > 0 and c != "\n":
            chars[i] = " " if c != ";" else " "
    flat = "".join(chars)
    members = []
    for stmt_m in re.finditer(r"[^;]*;", flat):
        stmt = stmt_m.group(0)
        if "(" in stmt or "using" in stmt or "typedef" in stmt:
            continue
        dm = MEMBER_DECL_RE.match(stmt.strip())
        if not dm:
            continue
        if "static" in stmt or "constexpr" in stmt:
            continue
        has_init = dm.group("init") is not None or "=" in stmt or \
            "{" in body[stmt_m.start():stmt_m.end()]
        # Anchor on the declaration itself, not the whitespace run
        # after the previous ';' — the line number must match the
        # declaration (and its NOLINT comment).
        decl_off = stmt_m.start() + (len(stmt) - len(stmt.lstrip()))
        members.append((decl_off, dm.group("type").strip(),
                        dm.group("name"), has_init))
    return members


def check_uninit(path, clean, raw_lines, findings):
    for sname, body, body_pos in struct_blocks(clean):
        for off, mtype, mname, has_init in top_level_members(body):
            if has_init:
                continue
            flat_type = re.sub(r"\s+", " ", mtype)
            if not SCALAR_TYPE_RE.match(flat_type) and \
                    not flat_type.endswith("*"):
                continue
            findings.add(path, line_of(clean, body_pos + off), UNINIT,
                         "scalar member '%s' of %s has no initializer; "
                         "indeterminate bytes break memo-cache keys and "
                         "fuzz replay" % (mname, sname), raw_lines)


def check_registry(path, clean, raw_lines, findings):
    visitor = re.search(r"\bforEachStatField\s*\(", clean)
    if not visitor:
        return
    # Visitor body: first brace after the matched signature.
    open_pos = clean.find("{", visitor.end())
    if open_pos == -1:
        return
    close = find_matching_brace(clean, open_pos)
    visited = set(re.findall(r"\.\s*(\w+)", clean[open_pos:close]))

    structs = {name: (body, pos) for name, body, pos in
               struct_blocks(clean)}
    # Non-suffixed structs (e.g. AccessBreakdown) referenced as fields.
    plain = {}
    for m in re.finditer(r"\b(?:struct|class)\s+(\w+)\s*\{", clean):
        name = m.group(1)
        if name in structs:
            continue
        open_b = clean.index("{", m.start())
        plain[name] = (clean[open_b + 1:find_matching_brace(clean, open_b)],
                       open_b + 1)

    for sname, (body, body_pos) in structs.items():
        if not sname.endswith("Stats"):
            continue
        for off, mtype, mname, _ in top_level_members(body):
            flat_type = re.sub(r"\s+", " ", mtype)
            nested = plain.get(flat_type) or structs.get(flat_type)
            if nested is not None:
                for _, _, leaf, _ in top_level_members(nested[0]):
                    if leaf not in visited:
                        findings.add(
                            path, line_of(clean, body_pos + off), REGISTRY,
                            "field '%s.%s' of %s is not visited by "
                            "forEachStatField; the memo cache, "
                            "serialization and golden diffs will silently "
                            "ignore it" % (mname, leaf, sname), raw_lines)
                continue
            if mname not in visited:
                findings.add(path, line_of(clean, body_pos + off), REGISTRY,
                             "field '%s' of %s is not visited by "
                             "forEachStatField; the memo cache, "
                             "serialization and golden diffs will silently "
                             "ignore it" % (mname, sname), raw_lines)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="C++ sources/headers to lint")
    ap.add_argument("--checks", default=",".join(ALL_CHECKS),
                    help="comma-separated subset of: %s" %
                    ",".join(ALL_CHECKS))
    ap.add_argument("--model-dirs", default=DEFAULT_MODEL_DIRS,
                    help="dirs (comma list) where lbsim-nondeterminism "
                    "applies; empty string = every scanned file")
    args = ap.parse_args(argv)

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in ALL_CHECKS]
    if unknown:
        print("unknown checks: %s" % ",".join(unknown), file=sys.stderr)
        return 2
    model_dirs = [d.strip() for d in args.model_dirs.split(",")
                  if d.strip()]

    raw_texts, clean_texts = {}, {}
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                raw_texts[path] = f.read()
        except OSError as err:
            print("cannot read %s: %s" % (path, err), file=sys.stderr)
            return 2
        clean_texts[path] = strip_comments_and_strings(raw_texts[path])

    per_stem = collect_unordered_names(clean_texts)
    findings = Findings()
    for path in args.files:
        clean = clean_texts[path]
        raw_lines = raw_texts[path].splitlines()
        unordered_names = set(per_stem.get(stem_of(path), set()))
        # Companion header outside the scanned set still declares the
        # members this .cpp iterates.
        base = stem_of(path)
        for ext in (".hpp", ".h"):
            sibling = base + ext
            if sibling not in clean_texts and os.path.exists(sibling):
                with open(sibling, "r", encoding="utf-8",
                          errors="replace") as f:
                    unordered_names.update(
                        unordered_names_in(
                            strip_comments_and_strings(f.read())))
        norm = path.replace(os.sep, "/")
        in_model = not model_dirs or any(
            ("/" + d + "/") in ("/" + norm) or norm.startswith(d + "/")
            for d in model_dirs)
        if NONDET in checks and in_model:
            check_nondet(path, clean, raw_lines, unordered_names, findings)
        if CROSSDOMAIN in checks and in_model:
            check_cross_domain(path, clean, raw_lines, findings)
        if UNINIT in checks:
            check_uninit(path, clean, raw_lines, findings)
        if REGISTRY in checks:
            check_registry(path, clean, raw_lines, findings)

    for path, line_no, check, message in sorted(findings.items):
        print("%s:%d:1: warning: %s [%s]" % (path, line_no, message, check))
    return 1 if findings.items else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
