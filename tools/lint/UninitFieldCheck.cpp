#include "UninitFieldCheck.h"

#include "clang/AST/ASTContext.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace lbsim_tidy
{

void
UninitFieldCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        fieldDecl(
            unless(hasInClassInitializer(anything())),
            hasType(hasUnqualifiedDesugaredType(
                anyOf(builtinType(), enumType(), pointerType()))),
            hasParent(cxxRecordDecl(
                isDefinition(),
                matchesName(
                    "(Config|Stats|Options|Timing|Geometry|Metrics)$"))))
            .bind("field"),
        this);
}

void
UninitFieldCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *field = result.Nodes.getNodeAs<FieldDecl>("field");
    if (!field || field->isImplicit())
        return;
    diag(field->getLocation(),
         "scalar member %0 of value struct has no initializer; "
         "indeterminate bytes poison memo-cache keys and replay")
        << field;
}

} // namespace lbsim_tidy
