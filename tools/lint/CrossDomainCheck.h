/**
 * @file
 * lbsim-cross-domain: flag raw concurrency primitives in model code.
 *
 * The parallel tick engine (DESIGN.md §13) shards the chip per SM:
 * each SM owns its state for the SM phase of a cycle, and the only
 * cross-SM channel is the interconnect's staged per-SM lane, drained
 * in SM-index order at the barrier. That discipline is what makes
 * results bit-identical for every --sm-threads value, and it is proved
 * by clang's -Wthread-safety over the SeqDomain/Mutex capability
 * annotations (common/thread_safety.hpp).
 *
 * Raw std:: concurrency primitives in model code bypass that proof:
 * an ad-hoc std::atomic or std::mutex synchronizes outside the
 * annotated barrier points and silently reintroduces thread-count
 * dependence. This check rejects:
 *
 *  - declarations (locals, members, params) of std::thread, mutexes,
 *    condition variables, atomics, futures/promises, barriers/latches/
 *    semaphores
 *  - calls to std::async and std::atomic_{thread,signal}_fence
 *
 * Engine code (common/parallel.hpp, the harness worker pools) lives
 * outside ModelDirs and may use these freely.
 *
 * Scope: files under the ModelDirs option (default
 * "src/core,src/mem,src/lb,src/baselines,src/power"); an empty option
 * value means every file, which is what the fixture corpus uses.
 *
 * The portable twin of this check lives in tools/lint/lbsim_lint.py;
 * keep the two behaviourally aligned (the fixtures in tests/lint/ are
 * run against both backends).
 */

#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace lbsim_tidy
{

class CrossDomainCheck : public clang::tidy::ClangTidyCheck
{
  public:
    CrossDomainCheck(llvm::StringRef name,
                     clang::tidy::ClangTidyContext *context);

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &opts)
        override;

  private:
    bool inModelDirs(clang::SourceLocation loc,
                     const clang::SourceManager &sm) const;

    /** Comma-separated dir prefixes; empty = every file. */
    std::string model_dirs_;
    std::vector<std::string> model_dir_list_;
};

} // namespace lbsim_tidy
