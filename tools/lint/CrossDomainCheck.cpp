#include "CrossDomainCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace lbsim_tidy
{

namespace
{

/**
 * Concurrency vocabulary types whose presence in model code means
 * synchronization is happening outside the annotated tick-domain
 * barriers. Mirrors CROSS_DOMAIN_TYPES in lbsim_lint.py.
 */
constexpr const char *kConcurrencyTypes =
    "^::std::(thread|jthread|mutex|recursive_mutex|timed_mutex|"
    "recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    "condition_variable|condition_variable_any|atomic|atomic_flag|"
    "future|shared_future|promise|barrier|latch|counting_semaphore|"
    "binary_semaphore)$";

/** Free functions that spawn work or fence memory across threads. */
constexpr const char *kConcurrencyCalls =
    "^::std::(async|atomic_thread_fence|atomic_signal_fence)$";

} // namespace

CrossDomainCheck::CrossDomainCheck(llvm::StringRef name,
                                   clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      model_dirs_(Options.get(
          "ModelDirs", "src/core,src/mem,src/lb,src/baselines,src/power"))
{
    llvm::SmallVector<llvm::StringRef, 8> parts;
    llvm::StringRef(model_dirs_).split(parts, ',', -1,
                                       /*KeepEmpty=*/false);
    for (llvm::StringRef part : parts)
        model_dir_list_.push_back(part.trim().str());
}

void
CrossDomainCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "ModelDirs", model_dirs_);
}

bool
CrossDomainCheck::inModelDirs(SourceLocation loc,
                              const SourceManager &sm) const
{
    if (model_dir_list_.empty())
        return true;
    const llvm::StringRef file = sm.getFilename(sm.getSpellingLoc(loc));
    for (const std::string &dir : model_dir_list_) {
        if (file.contains(dir))
            return true;
    }
    return false;
}

void
CrossDomainCheck::registerMatchers(MatchFinder *finder)
{
    // Covers both plain records (std::mutex, std::thread) and template
    // specializations (std::atomic<T>, std::future<T>); desugaring
    // resolves aliases and auto-deduced types.
    const auto concurrency_type = hasType(hasUnqualifiedDesugaredType(
        recordType(hasDeclaration(
            namedDecl(matchesName(kConcurrencyTypes))))));

    finder->addMatcher(varDecl(concurrency_type).bind("cross-var"), this);
    finder->addMatcher(fieldDecl(concurrency_type).bind("cross-field"),
                       this);
    finder->addMatcher(
        callExpr(callee(functionDecl(matchesName(kConcurrencyCalls))))
            .bind("cross-call"),
        this);
}

void
CrossDomainCheck::check(const MatchFinder::MatchResult &result)
{
    const SourceManager &sm = *result.SourceManager;

    const Decl *decl = result.Nodes.getNodeAs<VarDecl>("cross-var");
    if (!decl)
        decl = result.Nodes.getNodeAs<FieldDecl>("cross-field");
    if (decl) {
        if (!inModelDirs(decl->getBeginLoc(), sm))
            return;
        diag(decl->getBeginLoc(),
             "raw std:: concurrency primitive in model code; per-SM "
             "tick domains may synchronize only at the annotated "
             "interconnect barrier — use the SeqDomain/Mutex "
             "capabilities and the common/parallel.hpp pool so "
             "-Wthread-safety can prove the sharding");
        return;
    }
    if (const auto *call =
            result.Nodes.getNodeAs<CallExpr>("cross-call")) {
        if (!inModelDirs(call->getBeginLoc(), sm))
            return;
        diag(call->getBeginLoc(),
             "thread-spawning or fencing call in model code bypasses "
             "the tick-domain barrier discipline; cross-domain work "
             "belongs in the serial phase or behind an annotated "
             "capability");
        return;
    }
}

} // namespace lbsim_tidy
