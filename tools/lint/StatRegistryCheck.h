/**
 * @file
 * lbsim-stat-registry: stat structs vs. their field enumeration.
 *
 * SimStats (and any future *Stats struct) is walked by a single
 * forEachStatField visitor — the memo cache key, serializeStats and
 * firstStatDifference all derive from it. A field added to the struct
 * but not to the visitor silently vanishes from serialization and
 * golden comparisons. This check collects, per file, the fields of
 * every *Stats struct and the member names referenced inside a
 * forEachStatField function in the same file, and reports fields the
 * visitor never touches.
 *
 * The visitor is a template (it takes a generic callback), so member
 * accesses inside it appear as CXXDependentScopeMemberExpr; both
 * dependent and resolved member expressions are collected. Nested
 * struct members (e.g. SimStats::l1 of type AccessBreakdown) count as
 * covered when any of the nested struct's own fields is referenced.
 *
 * Structs with no forEachStatField in their file are skipped — only a
 * struct that opted into the registry pattern is held to it.
 *
 * Portable twin: the lbsim-stat-registry check in
 * tools/lint/lbsim_lint.py.
 */

#pragma once

#include <map>
#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace lbsim_tidy
{

class StatRegistryCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
    void onEndOfTranslationUnit() override;

  private:
    struct FieldInfo
    {
        std::string name;
        clang::SourceLocation loc;
        /** Record type name if the field is itself a struct. */
        std::string record_type;
    };

    /** file -> Stats record name -> fields. */
    std::map<std::string, std::map<std::string, std::vector<FieldInfo>>>
        stats_fields_;
    /** Record name -> that record's own field names (for nesting). */
    std::map<std::string, std::set<std::string>> record_members_;
    /** file -> member names referenced inside forEachStatField. */
    std::map<std::string, std::set<std::string>> visited_members_;
};

} // namespace lbsim_tidy
