/**
 * @file
 * Unit tests for the L1 data cache: hit/miss paths, MSHR integration,
 * write-evict/write-no-allocate policies, and victim-cache hooks.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "mem/interconnect.hpp"
#include "mem/l1_cache.hpp"
#include "mem/memory_partition.hpp"
#include "mem/tag_array.hpp"
#include "testing/lockstep.hpp"
#include "testing/ref_cache.hpp"

namespace lbsim
{
namespace
{

/** Records every victim-interface call for inspection. */
class RecordingVictim : public VictimCacheIf
{
  public:
    VictimProbeResult
    probeVictim(Addr line_addr, Cycle now) override
    {
        (void)now;
        ++probes;
        VictimProbeResult result;
        result.latency = 3;
        if (line_addr == hitLine) {
            result.hit = true;
            result.regNum = 777;
        } else if (line_addr == tagHitLine) {
            result.tagOnlyHit = true;
        }
        return result;
    }

    void
    notifyEviction(Addr line_addr, std::uint8_t hpc,
                   std::uint8_t owner_warp, Cycle now) override
    {
        (void)now;
        evictions.emplace_back(line_addr, hpc);
        evictionOwners.push_back(owner_warp);
    }

    void
    notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                 std::uint8_t warp_slot, bool hit, Cycle now) override
    {
        (void)line_addr;
        (void)pc;
        (void)hpc;
        (void)warp_slot;
        (void)now;
        if (hit)
            ++hits;
        else
            ++misses;
    }

    void
    notifyStore(Addr line_addr, Cycle now) override
    {
        (void)now;
        stores.push_back(line_addr);
    }

    Addr hitLine = kNoAddr;
    Addr tagHitLine = kNoAddr;
    int probes = 0;
    int hits = 0;
    int misses = 0;
    std::vector<std::pair<Addr, std::uint8_t>> evictions;
    std::vector<std::uint8_t> evictionOwners;
    std::vector<Addr> stores;
};

/** A small, fully wired memory system around one L1. */
class L1Fixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg.numSms = 1;
        cfg.numMemPartitions = 1;
        icnt = std::make_unique<Interconnect>(cfg, &stats);
        partition =
            std::make_unique<MemoryPartition>(cfg, 0, icnt.get(), &stats);
        icnt->attachPartition(0, partition.get());
        l1 = std::make_unique<L1Cache>(cfg, 0, icnt.get(), &stats);

        class Sink : public ResponseSinkIf
        {
          public:
            explicit Sink(L1Cache *l1) : l1_(l1) {}
            void
            onResponse(const MemResponse &response, Cycle now) override
            {
                l1_->fill(response.lineAddr, now);
            }

          private:
            L1Cache *l1_;
        };
        sink = std::make_unique<Sink>(l1.get());
        icnt->attachSm(0, sink.get());
    }

    /** Advance the whole mini-system one cycle. */
    void
    tick()
    {
        partition->tick(now);
        icnt->tick(now);
        ++now;
    }

    /** Run until the access completes or the limit hits. */
    bool
    completeAccess(std::uint64_t access_id, Cycle limit = 5000)
    {
        std::vector<std::uint64_t> done;
        for (Cycle c = 0; c < limit; ++c) {
            tick();
            done.clear();
            l1->drainCompleted(now, done);
            for (std::uint64_t id : done) {
                if (id == access_id)
                    return true;
            }
        }
        return false;
    }

    L1Access
    load(std::uint64_t id, Addr line, Pc pc = 0)
    {
        L1Access access;
        access.accessId = id;
        access.lineAddr = line;
        access.pc = pc;
        access.hpc = static_cast<std::uint8_t>(pc & 0x1f);
        return access;
    }

    GpuConfig cfg;
    SimStats stats;
    std::unique_ptr<Interconnect> icnt;
    std::unique_ptr<MemoryPartition> partition;
    std::unique_ptr<L1Cache> l1;
    std::unique_ptr<ResponseSinkIf> sink;
    Cycle now = 0;
};

TEST_F(L1Fixture, ColdMissFillsAndThenHits)
{
    EXPECT_EQ(l1->access(load(1, 0), now), L1Outcome::Miss);
    EXPECT_TRUE(completeAccess(1));
    EXPECT_EQ(stats.coldMisses, 1u);
    EXPECT_EQ(l1->access(load(2, 0), now), L1Outcome::Hit);
    EXPECT_TRUE(completeAccess(2));
    EXPECT_EQ(stats.l1.l1Hits, 1u);
}

TEST_F(L1Fixture, HitLatencyMatchesConfig)
{
    l1->access(load(1, 0), now);
    completeAccess(1);
    const Cycle start = now;
    l1->access(load(2, 0), now);
    ASSERT_TRUE(completeAccess(2));
    // drainCompleted pops at the first tick where ready <= now.
    EXPECT_NEAR(static_cast<double>(now - start),
                static_cast<double>(cfg.l1HitLatency), 2.0);
}

TEST_F(L1Fixture, ConcurrentMissesToSameLineMerge)
{
    EXPECT_EQ(l1->access(load(1, 0), now), L1Outcome::Miss);
    EXPECT_EQ(l1->access(load(2, 0), now), L1Outcome::MergedMiss);
    // Both complete on the same fill.
    std::vector<std::uint64_t> done;
    for (Cycle c = 0; c < 5000 && done.size() < 2; ++c) {
        tick();
        l1->drainCompleted(now, done);
    }
    ASSERT_EQ(done.size(), 2u);
    // One DRAM fetch served both.
    EXPECT_EQ(stats.dramReads, 1u);
}

TEST_F(L1Fixture, CapacityMissClassification)
{
    // Fill one set beyond its ways using same-set lines.
    const std::uint32_t sets = cfg.l1.sets();
    std::uint64_t id = 1;
    for (std::uint32_t w = 0; w <= cfg.l1.ways; ++w) {
        const Addr line = static_cast<Addr>(w) * sets * kLineBytes;
        ASSERT_EQ(l1->access(load(id, line), now), L1Outcome::Miss);
        ASSERT_TRUE(completeAccess(id));
        ++id;
    }
    // Line 0 was evicted; re-access is a capacity miss.
    EXPECT_EQ(l1->access(load(id, 0), now), L1Outcome::Miss);
    EXPECT_TRUE(completeAccess(id));
    EXPECT_EQ(stats.capacityMisses, 1u);
}

TEST_F(L1Fixture, StoreHitInvalidatesLine)
{
    l1->access(load(1, 0), now);
    completeAccess(1);
    L1Access store = load(2, 0);
    store.isWrite = true;
    EXPECT_EQ(l1->access(store, now), L1Outcome::StoreDone);
    EXPECT_EQ(stats.writeEvicts, 1u);
    // The line is gone: next load misses.
    EXPECT_EQ(l1->access(load(3, 0), now), L1Outcome::Miss);
}

TEST_F(L1Fixture, StoreMissDoesNotAllocate)
{
    L1Access store = load(1, 0);
    store.isWrite = true;
    EXPECT_EQ(l1->access(store, now), L1Outcome::StoreDone);
    EXPECT_EQ(stats.writeNoAllocates, 1u);
    EXPECT_EQ(l1->access(load(2, 0), now), L1Outcome::Miss);
}

TEST_F(L1Fixture, BypassAccessDoesNotAllocate)
{
    L1Access access = load(1, 0);
    access.bypassL1 = true;
    EXPECT_EQ(l1->access(access, now), L1Outcome::Bypassed);
    EXPECT_TRUE(completeAccess(1));
    EXPECT_EQ(stats.l1.bypasses, 1u);
    // The fill did not allocate: a regular load misses.
    EXPECT_EQ(l1->access(load(2, 0), now), L1Outcome::Miss);
}

TEST_F(L1Fixture, VictimDataHitServesWithoutDownstreamFetch)
{
    RecordingVictim victim;
    victim.hitLine = 4096;
    l1->setVictimCache(&victim);
    EXPECT_EQ(l1->access(load(1, 4096), now), L1Outcome::VictimHit);
    EXPECT_TRUE(completeAccess(1));
    EXPECT_EQ(stats.l1.regHits, 1u);
    EXPECT_EQ(stats.dramReads, 0u);
    EXPECT_EQ(victim.hits, 1);
}

TEST_F(L1Fixture, VictimTagOnlyHitStillFetches)
{
    RecordingVictim victim;
    victim.tagHitLine = 4096;
    l1->setVictimCache(&victim);
    EXPECT_EQ(l1->access(load(1, 4096), now), L1Outcome::Miss);
    EXPECT_TRUE(completeAccess(1));
    EXPECT_EQ(stats.l1.regHits, 0u);
    EXPECT_EQ(stats.dramReads, 1u);
    EXPECT_EQ(victim.hits, 1); // Counted for the Load Monitor.
}

TEST_F(L1Fixture, EvictionCarriesLastTouchingHpc)
{
    RecordingVictim victim;
    l1->setVictimCache(&victim);
    const std::uint32_t sets = cfg.l1.sets();
    std::uint64_t id = 1;
    // Fill one set completely with loads from pc 12.
    for (std::uint32_t w = 0; w < cfg.l1.ways; ++w) {
        ASSERT_TRUE(l1Accepted(l1->access(
            load(id, static_cast<Addr>(w) * sets * kLineBytes, 12),
            now)));
        ASSERT_TRUE(completeAccess(id));
        ++id;
    }
    // One more insertion evicts the LRU line.
    ASSERT_TRUE(l1Accepted(l1->access(
        load(id, static_cast<Addr>(cfg.l1.ways) * sets * kLineBytes, 12),
        now)));
    ASSERT_TRUE(completeAccess(id));
    ASSERT_EQ(victim.evictions.size(), 1u);
    EXPECT_EQ(victim.evictions[0].second,
              static_cast<std::uint8_t>(12 & 0x1f));
}

TEST_F(L1Fixture, StoreNotifiesVictimCache)
{
    RecordingVictim victim;
    l1->setVictimCache(&victim);
    L1Access store = load(1, 8192);
    store.isWrite = true;
    l1->access(store, now);
    ASSERT_EQ(victim.stores.size(), 1u);
    EXPECT_EQ(victim.stores[0], 8192u);
}

TEST_F(L1Fixture, StalledAccessHasNoObserverSideEffects)
{
    int observed = 0;
    l1->setAccessObserver([&observed](Addr, Pc, bool, Cycle) {
        ++observed;
    });
    // Exhaust the MSHRs with distinct lines.
    std::uint64_t id = 1;
    for (std::uint32_t i = 0; i < cfg.l1MshrEntries; ++i) {
        ASSERT_EQ(l1->access(load(id++, (static_cast<Addr>(i) + 100) *
                                            kLineBytes * 64),
                             now),
                  L1Outcome::Miss);
    }
    const int accepted = observed;
    // Next miss stalls and must not be observed.
    EXPECT_EQ(l1->access(load(id, 1 << 30), now), L1Outcome::StallNoMshr);
    EXPECT_EQ(observed, accepted);
}

TEST_F(L1Fixture, LockstepCheckerStaysSilentAcrossPolicyPaths)
{
    // The reference model must track hits, merged misses, write-evict
    // stores, and capacity evictions without a single disagreement.
    RecordingVictim victim;
    l1->setVictimCache(&victim);
    LockstepL1Checker checker(*l1, 0);

    std::uint64_t id = 1;
    const std::uint32_t sets = cfg.l1.sets();
    for (std::uint32_t round = 0; round < 3; ++round) {
        for (std::uint32_t i = 0; i < cfg.l1.ways + 2; ++i) {
            // Same-set lines force evictions once the set fills.
            l1->access(load(id, (static_cast<Addr>(i) * sets) *
                                    kLineBytes),
                       now);
            completeAccess(id++);
        }
    }
    L1Access store = load(id, 0);
    store.isWrite = true;
    l1->access(store, now);

    EXPECT_GT(checker.log().checks(), 0u);
    EXPECT_EQ(checker.log().mismatches(), 0u)
        << checker.log().reports().front();
}

TEST_F(L1Fixture, LockstepCheckerTripsOnFabricatedVictimHit)
{
    RecordingVictim victim;
    victim.hitLine = 4096; // Never evicted from this L1.
    l1->setVictimCache(&victim);
    LockstepL1Checker checker(*l1, 0);

    EXPECT_EQ(l1->access(load(1, 4096), now), L1Outcome::VictimHit);
    EXPECT_GT(checker.log().mismatches(), 0u);
}

TEST(FlatTagLockstep, TagArrayMatchesRefCacheUnderRandomTraffic)
{
    // Double-entry bookkeeping for the split tag/payload planes: the
    // timing TagArray and the independently written AoS RefCache consume
    // one random operation stream and must agree on every residency
    // answer, every eviction choice (address, HPC, and owner), and the
    // occupancy after each step. A mis-indexed slot in the flat layout
    // diverges within a few hundred operations.
    TagArray tags(16, 4);
    RefCache ref(16, 4);
    Rng rng(2024);
    for (Cycle now = 1; now <= 20000; ++now) {
        const Addr addr = static_cast<Addr>(rng.below(256)) * kLineBytes;
        const auto hpc = static_cast<std::uint8_t>(rng.below(32));
        const auto owner = static_cast<std::uint8_t>(rng.below(48));
        switch (rng.below(4)) {
        case 0: {
            const auto evicted = tags.insert(addr, hpc, now, owner);
            const auto refEvicted = ref.insert(addr, hpc, now, owner);
            ASSERT_EQ(evicted.has_value(), refEvicted.has_value())
                << "eviction disagreement at cycle " << now;
            if (evicted.has_value()) {
                ASSERT_EQ(evicted->lineAddr, refEvicted->lineAddr);
                ASSERT_EQ(evicted->hpc, refEvicted->hpc);
                ASSERT_EQ(evicted->owner, refEvicted->owner);
            }
            break;
        }
        case 1: {
            const bool hit = tags.access(addr, hpc, now, owner);
            ASSERT_EQ(hit, ref.resident(addr))
                << "hit disagreement at cycle " << now;
            if (hit)
                ref.touch(addr, hpc, now, owner);
            break;
        }
        case 2:
            ASSERT_EQ(tags.probe(addr), ref.resident(addr));
            break;
        default:
            ASSERT_EQ(tags.invalidate(addr), ref.invalidate(addr));
            break;
        }
        ASSERT_EQ(tags.validLines(), ref.validLines());
    }
    tags.audit(20001);
}

} // namespace
} // namespace lbsim
