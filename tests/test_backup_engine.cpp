/**
 * @file
 * Unit tests for the register backup/restore engine.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gpu.hpp"
#include "lb/backup_engine.hpp"

namespace lbsim
{
namespace
{

/** A 1-SM GPU provides a fully wired SM + memory system. */
struct BackupFixture : ::testing::Test
{
    BackupFixture()
    {
        cfg = GpuConfig{}.scaleTo(1);
        gpu = std::make_unique<Gpu>(cfg);
        engine = std::make_unique<BackupEngine>(cfg, lb, &gpu->sm(0),
                                                &gpu->stats());
        gpu->sm(0).setRestoreSink(engine.get());
    }

    void
    run(Cycle cycles)
    {
        for (Cycle c = 0; c < cycles; ++c) {
            engine->tick(gpu->now());
            gpu->tick();
        }
    }

    GpuConfig cfg;
    LbConfig lb;
    std::unique_ptr<Gpu> gpu;
    std::unique_ptr<BackupEngine> engine;
};

TEST_F(BackupFixture, BackupProducesOneWritePerRegister)
{
    engine->startBackup(0, 0, 64, 1 << 20, gpu->now());
    EXPECT_TRUE(engine->busy());
    run(2000);
    EXPECT_TRUE(engine->backupComplete(0));
    EXPECT_EQ(gpu->stats().dramBackupWrites, 64u);
}

TEST_F(BackupFixture, BackupThroughputBoundedByBuffer)
{
    // The 6-entry staging buffer moves at most one register per cycle,
    // so 128 registers need at least 128 cycles.
    engine->startBackup(0, 0, 128, 1 << 20, gpu->now());
    run(64);
    EXPECT_FALSE(engine->backupComplete(0));
    run(2000);
    EXPECT_TRUE(engine->backupComplete(0));
}

TEST_F(BackupFixture, RestoreCompletesWhenAllLinesReturn)
{
    engine->startRestore(3, 256, 32, 1 << 20, gpu->now());
    EXPECT_FALSE(engine->restoreComplete(3));
    run(4000);
    EXPECT_TRUE(engine->restoreComplete(3));
    EXPECT_EQ(gpu->stats().dramRestoreReads, 32u);
    EXPECT_FALSE(engine->busy());
}

TEST_F(BackupFixture, ClearJobForgetsBookkeeping)
{
    engine->startBackup(1, 0, 8, 1 << 20, gpu->now());
    run(1000);
    ASSERT_TRUE(engine->backupComplete(1));
    engine->clearJob(1);
    EXPECT_FALSE(engine->backupComplete(1));
}

TEST_F(BackupFixture, BackupAndRestoreOfDifferentCtasCoexist)
{
    engine->startBackup(0, 0, 16, 1 << 20, gpu->now());
    engine->startRestore(1, 128, 16, 2 << 20, gpu->now());
    run(4000);
    EXPECT_TRUE(engine->backupComplete(0));
    EXPECT_TRUE(engine->restoreComplete(1));
}

TEST_F(BackupFixture, TransfersChargeRegisterFileBanks)
{
    const std::uint64_t before = gpu->stats().rfAccesses;
    engine->startBackup(0, 0, 32, 1 << 20, gpu->now());
    run(2000);
    EXPECT_GE(gpu->stats().rfAccesses - before, 32u);
}

} // namespace
} // namespace lbsim
