/**
 * @file
 * Unit tests for the CTA Throttling Logic: IPC monitor (Eq. 1) and CTA
 * manager bookkeeping (BP/FRN/BA/C fields of Fig 8).
 */

#include <gtest/gtest.h>

#include "lb/throttle_logic.hpp"

namespace lbsim
{
namespace
{

TEST(IpcMonitor, ComputesWindowIpc)
{
    LbConfig cfg;
    IpcMonitor monitor(cfg);
    monitor.endWindow(5000, 50000);
    EXPECT_DOUBLE_EQ(monitor.currentIpc(), 0.1);
    monitor.endWindow(15000, 50000); // +10000 instructions.
    EXPECT_DOUBLE_EQ(monitor.currentIpc(), 0.2);
    EXPECT_DOUBLE_EQ(monitor.previousIpc(), 0.1);
}

TEST(IpcMonitor, Eq1Variation)
{
    LbConfig cfg;
    IpcMonitor monitor(cfg);
    monitor.endWindow(10000, 50000);
    monitor.endWindow(21000, 50000); // 0.2 -> 0.22.
    EXPECT_NEAR(monitor.ipcVariation(), 0.1, 1e-9);
}

TEST(IpcMonitor, DecisionFollowsBounds)
{
    LbConfig cfg;
    IpcMonitor monitor(cfg);
    monitor.endWindow(10000, 50000);
    monitor.endWindow(25000, 50000); // +50%.
    EXPECT_EQ(monitor.decide(), ThrottleDecision::ThrottleOne);
    monitor.endWindow(30000, 50000); // 0.3 -> 0.1: -66%.
    EXPECT_EQ(monitor.decide(), ThrottleDecision::ActivateOne);
    monitor.endWindow(35200, 50000); // ~+4%: inside bounds.
    EXPECT_EQ(monitor.decide(), ThrottleDecision::Hold);
}

TEST(IpcMonitor, NoVariationWithoutHistory)
{
    LbConfig cfg;
    IpcMonitor monitor(cfg);
    monitor.endWindow(10000, 50000);
    EXPECT_DOUBLE_EQ(monitor.ipcVariation(), 0.0);
    EXPECT_EQ(monitor.decide(), ThrottleDecision::Hold);
}

TEST(CtaManager, BackupPointerAdvancesByRegisterImage)
{
    CtaManager mgr(32);
    mgr.beginKernel(256, 0x1000);
    mgr.onLaunch(0, 0);
    mgr.onLaunch(1, 256);
    EXPECT_EQ(mgr.backupPointer(), 0x1000u);
    const Addr ba1 = mgr.markThrottled(1);
    EXPECT_EQ(ba1, 0x1000u);
    EXPECT_EQ(mgr.backupPointer(), 0x1000u + 256u * kLineBytes);
    const Addr ba0 = mgr.markThrottled(0);
    EXPECT_EQ(ba0, 0x1000u + 256u * kLineBytes);
}

TEST(CtaManager, ReactivationRewindsBackupPointer)
{
    CtaManager mgr(32);
    mgr.beginKernel(128, 0);
    mgr.onLaunch(0, 0);
    mgr.onLaunch(1, 128);
    mgr.markThrottled(1);
    mgr.markThrottled(0);
    // LIFO discipline: the last throttled CTA restores first.
    const Addr restore0 = mgr.markReactivated(0);
    EXPECT_EQ(restore0, 128u * kLineBytes);
    EXPECT_EQ(mgr.backupPointer(), 128u * kLineBytes);
    const Addr restore1 = mgr.markReactivated(1);
    EXPECT_EQ(restore1, 0u);
    EXPECT_EQ(mgr.backupPointer(), 0u);
}

TEST(CtaManager, PerCtaInfoLifecycle)
{
    CtaManager mgr(32);
    mgr.beginKernel(64, 0);
    mgr.onLaunch(5, 320);
    EXPECT_TRUE(mgr.info(5).act);
    EXPECT_EQ(mgr.info(5).frn, 320u);
    EXPECT_FALSE(mgr.info(5).c);

    mgr.markThrottled(5);
    EXPECT_FALSE(mgr.info(5).act);
    EXPECT_EQ(mgr.info(5).ba, 0u);
    mgr.markBackupComplete(5);
    EXPECT_TRUE(mgr.info(5).c);

    mgr.markReactivated(5);
    EXPECT_TRUE(mgr.info(5).act);
    EXPECT_FALSE(mgr.info(5).c);

    mgr.onComplete(5);
    EXPECT_TRUE(mgr.info(5).act); // Reset to defaults.
    EXPECT_EQ(mgr.info(5).ba, kNoAddr);
}

TEST(CtaManagerDeath, DoubleThrottlePanics)
{
    CtaManager mgr(32);
    mgr.beginKernel(64, 0);
    mgr.onLaunch(0, 0);
    mgr.markThrottled(0);
    EXPECT_DEATH(mgr.markThrottled(0), "already inactive");
}

TEST(CtaManagerDeath, ReactivateActivePanics)
{
    CtaManager mgr(32);
    mgr.beginKernel(64, 0);
    mgr.onLaunch(0, 0);
    EXPECT_DEATH(mgr.markReactivated(0), "already active");
}

} // namespace
} // namespace lbsim
