/**
 * @file
 * Unit tests for the per-subsystem structural auditors. Each test
 * fabricates a corrupted state through a *ForTest hook (or the public
 * interface where it suffices) and proves the corresponding auditor
 * fires; the healthy-state companions prove the auditors stay quiet on
 * states the simulator can legally reach.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/gpu.hpp"
#include "core/register_file.hpp"
#include "lb/backup_engine.hpp"
#include "lb/throttle_logic.hpp"
#include "lb/victim_tag_table.hpp"
#include "mem/interconnect.hpp"
#include "mem/l1_cache.hpp"
#include "mem/memory_partition.hpp"
#include "mem/mshr.hpp"
#include "mem/request_ledger.hpp"
#include "mem/tag_array.hpp"

namespace lbsim
{
namespace
{

/** Collects audit failures instead of aborting. */
struct AuditFixture : ::testing::Test
{
    AuditFixture()
    {
        previous = setCheckFailureHandler(
            [this](const CheckFailure &failure) {
                failures.push_back(failure);
            });
    }
    ~AuditFixture() override { setCheckFailureHandler(previous); }

    bool
    fired(const std::string &fragment) const
    {
        for (const CheckFailure &failure : failures) {
            if (failure.message.find(fragment) != std::string::npos)
                return true;
        }
        return false;
    }

    CheckFailureHandler previous;
    std::vector<CheckFailure> failures;
};

// --- MSHR leak/merge auditor -----------------------------------------------

TEST_F(AuditFixture, MshrHealthyStatePasses)
{
    MshrFile mshrs(8, 4);
    EXPECT_EQ(mshrs.registerMiss(0x1000, 1, true, 5),
              MshrOutcome::Allocated);
    EXPECT_EQ(mshrs.registerMiss(0x1000, 2, true, 6),
              MshrOutcome::Merged);
    EXPECT_EQ(mshrs.registerMiss(0x2000, 3, true, 7),
              MshrOutcome::Allocated);
    mshrs.audit(10, 100);
    EXPECT_TRUE(failures.empty());
}

TEST_F(AuditFixture, MshrDuplicateAccessIdTrips)
{
    MshrFile mshrs(8, 4);
    mshrs.registerMiss(0x1000, 7, true, 0);
    mshrs.registerMiss(0x2000, 7, true, 0);
    mshrs.audit(1);
    EXPECT_TRUE(fired("waits on"));
    EXPECT_FALSE(failures.empty());
}

TEST_F(AuditFixture, MshrLeakBoundTrips)
{
    MshrFile mshrs(8, 4);
    mshrs.registerMiss(0x1000, 1, true, 0);
    mshrs.audit(50, 100);
    EXPECT_TRUE(failures.empty());
    mshrs.audit(1000, 100);
    EXPECT_TRUE(fired("lost fill"));
}

// --- Tag-array consistency auditor -----------------------------------------

TEST_F(AuditFixture, TagArrayHealthyStatePasses)
{
    TagArray tags(48, 8);
    tags.insert(0x0, 0, 1);
    tags.insert(48 * kLineBytes, 0, 2);  // Same set, different tag.
    tags.insert(kLineBytes, 0, 3);       // Next set.
    tags.audit(10);
    EXPECT_TRUE(failures.empty());
}

TEST_F(AuditFixture, TagArrayDuplicateTagTrips)
{
    TagArray tags(48, 8);
    tags.insert(0x0, 0, 1);
    TagLine line;
    line.valid = true;
    line.lineAddr = 0x0;
    tags.setLineForTest(0, 1, line);
    tags.audit(10);
    EXPECT_FALSE(failures.empty());
}

TEST_F(AuditFixture, TagArrayWrongSetTrips)
{
    TagArray tags(48, 8);
    TagLine line;
    line.valid = true;
    line.lineAddr = 3 * kLineBytes;  // Maps to set 3, stored in set 0.
    tags.setLineForTest(0, 0, line);
    tags.audit(10);
    EXPECT_FALSE(failures.empty());
}

// --- Request-lifetime ledger ------------------------------------------------

TEST_F(AuditFixture, LedgerExactlyOnceLifecyclePasses)
{
    RequestLedger ledger(2);
    MemRequest req;
    req.lineAddr = 0x1000;
    req.kind = RequestKind::DataRead;
    req.smId = 1;
    ledger.onIssue(req, 1);
    EXPECT_EQ(ledger.outstanding(1, RequestKind::DataRead), 1u);
    ledger.onRetire(1, RequestKind::DataRead, 50);
    ledger.audit(51);
    ledger.auditDrained();
    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(ledger.totalOutstanding(), 0u);
}

TEST_F(AuditFixture, LedgerDuplicateRetirementTrips)
{
    RequestLedger ledger(1);
    MemRequest req;
    req.lineAddr = 0x1000;
    req.kind = RequestKind::DataRead;
    req.smId = 0;
    ledger.onIssue(req, 1);
    ledger.onRetire(0, RequestKind::DataRead, 2);
    EXPECT_TRUE(failures.empty());
    // The duplicated response must fire immediately, not at drain time.
    ledger.onRetire(0, RequestKind::DataRead, 3);
    EXPECT_FALSE(failures.empty());
}

TEST_F(AuditFixture, LedgerLostResponseTripsAtDrain)
{
    RequestLedger ledger(1);
    MemRequest req;
    req.lineAddr = 0x2000;
    req.kind = RequestKind::RegRestore;
    req.smId = 0;
    ledger.onIssue(req, 1);
    ledger.audit(2);
    EXPECT_TRUE(failures.empty());  // In flight is fine mid-run...
    ledger.auditDrained();          // ...but not once the grid drained.
    EXPECT_TRUE(fired("lost"));
}

// --- Register-file conservation auditor -------------------------------------

TEST_F(AuditFixture, RegisterFileHealthyStatePasses)
{
    GpuConfig cfg;
    SimStats stats;
    RegisterFile rf(cfg, &stats);
    const auto first = rf.allocate(64);
    ASSERT_TRUE(first.has_value());
    rf.audit();
    rf.release(*first, 64);
    rf.audit();
    EXPECT_TRUE(failures.empty());
}

TEST_F(AuditFixture, RegisterFileCounterCorruptionTrips)
{
    GpuConfig cfg;
    SimStats stats;
    RegisterFile rf(cfg, &stats);
    rf.allocate(64);
    rf.corruptAllocCounterForTest(1);
    rf.audit();
    EXPECT_TRUE(fired("disagrees with bitmap"));
}

// --- L1 cross-structure auditor ---------------------------------------------

struct L1AuditFixture : AuditFixture
{
    L1AuditFixture()
    {
        cfg = GpuConfig{}.scaleTo(1);
        icnt = std::make_unique<Interconnect>(cfg, &stats);
        for (std::uint32_t p = 0; p < cfg.numMemPartitions; ++p) {
            partitions.push_back(std::make_unique<MemoryPartition>(
                cfg, p, icnt.get(), &stats));
            icnt->attachPartition(p, partitions.back().get());
        }
        l1 = std::make_unique<L1Cache>(cfg, 0, icnt.get(), &stats);
    }

    GpuConfig cfg;
    SimStats stats;
    std::unique_ptr<Interconnect> icnt;
    std::vector<std::unique_ptr<MemoryPartition>> partitions;
    std::unique_ptr<L1Cache> l1;
};

TEST_F(L1AuditFixture, HealthyMissPathPasses)
{
    L1Access access;
    access.accessId = 1;
    access.lineAddr = 0x4000;
    EXPECT_EQ(l1->access(access, 1), L1Outcome::Miss);
    l1->audit(2);
    EXPECT_TRUE(failures.empty());
}

TEST_F(L1AuditFixture, OrphanPendingFillTrips)
{
    l1->injectPendingFillForTest(0x4000);
    l1->audit(2);
    EXPECT_TRUE(fired("fill will never arrive"));
}

// --- Backup-engine conservation auditor -------------------------------------

struct BackupAuditFixture : AuditFixture
{
    BackupAuditFixture()
    {
        cfg = GpuConfig{}.scaleTo(1);
        gpu = std::make_unique<Gpu>(cfg);
        engine = std::make_unique<BackupEngine>(cfg, lb, &gpu->sm(0),
                                                &gpu->stats());
        gpu->sm(0).setRestoreSink(engine.get());
    }

    GpuConfig cfg;
    LbConfig lb;
    std::unique_ptr<Gpu> gpu;
    std::unique_ptr<BackupEngine> engine;
};

TEST_F(BackupAuditFixture, HealthyBackupJobPasses)
{
    engine->startBackup(0, 0, 16, Addr{1} << 20, 0);
    engine->audit(0);
    for (Cycle c = 0; c < 8; ++c) {
        engine->tick(gpu->now());
        gpu->tick();
        engine->audit(gpu->now());
    }
    EXPECT_TRUE(failures.empty());
}

TEST_F(BackupAuditFixture, LostRegisterLineTrips)
{
    engine->startBackup(0, 0, 16, Addr{1} << 20, 0);
    // Claim the job covers more lines than were ever queued: the
    // conservation sum can no longer reach linesTotal.
    engine->tamperJobForTest(0, 4);
    engine->audit(0);
    EXPECT_TRUE(fired("lost a register line"));
}

// --- CTA-manager BP auditor --------------------------------------------------

TEST_F(AuditFixture, CtaManagerBpArithmeticPasses)
{
    CtaManager mgr(8);
    mgr.beginKernel(64, Addr{1} << 20);
    mgr.onLaunch(0, 0);
    mgr.onLaunch(1, 64);
    mgr.audit();
    mgr.markThrottled(1);
    mgr.markBackupComplete(1);
    mgr.audit();
    mgr.markReactivated(1);
    mgr.audit();
    EXPECT_TRUE(failures.empty());
}

TEST_F(AuditFixture, CtaManagerBpCorruptionTrips)
{
    CtaManager mgr(8);
    mgr.beginKernel(64, Addr{1} << 20);
    mgr.onLaunch(0, 0);
    mgr.markThrottled(0);
    mgr.corruptBackupPointerForTest(kLineBytes);
    mgr.audit();
    EXPECT_FALSE(failures.empty());
}

// --- VTT partition auditor ----------------------------------------------------

struct VttAuditFixture : AuditFixture
{
    VttAuditFixture() : vtt(gpu, lb, &stats) {}

    GpuConfig gpu;
    LbConfig lb;
    SimStats stats;
    VictimTagTable vtt;
};

TEST_F(VttAuditFixture, HealthyInsertionsPass)
{
    vtt.setActivePartitions(2);
    RegNum reg = 0;
    for (std::uint32_t k = 0; k < 12; ++k)
        ASSERT_TRUE(vtt.insert(k * kLineBytes, k, reg));
    vtt.audit(100);
    EXPECT_TRUE(failures.empty());
}

TEST_F(VttAuditFixture, LineTrackedByTwoPartitionsTrips)
{
    vtt.setActivePartitions(2);
    vtt.setEntryForTest(0, 5, 0, 5 * kLineBytes, true, 1);
    vtt.setEntryForTest(1, 5, 2, 5 * kLineBytes, true, 1);
    vtt.audit(10);
    EXPECT_TRUE(fired("tracked twice"));
}

TEST_F(VttAuditFixture, EntryInDeactivatedPartitionTrips)
{
    vtt.setActivePartitions(1);
    vtt.setEntryForTest(3, 0, 0, 0, true, 1);
    vtt.audit(10);
    EXPECT_TRUE(fired("deactivated partition"));
}

// --- Whole-chip audit entry point --------------------------------------------

TEST_F(AuditFixture, IdleGpuAuditPasses)
{
    const GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    for (int i = 0; i < 4; ++i)
        gpu.tick();
    gpu.audit();
    EXPECT_TRUE(failures.empty());
}

} // namespace
} // namespace lbsim
