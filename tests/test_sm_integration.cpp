/**
 * @file
 * SM-level integration tests: CTA launch/occupancy, issue, retirement,
 * throttling interface, and register accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gpu.hpp"
#include "workload/pattern.hpp"

namespace lbsim
{
namespace
{

KernelInfo
tinyKernel(std::uint32_t iterations, std::uint32_t warps_per_cta = 8,
           std::uint32_t regs_per_warp = 16, std::uint32_t num_ctas = 8)
{
    KernelInfo kernel;
    kernel.name = "tiny";
    kernel.warpsPerCta = warps_per_cta;
    kernel.regsPerWarp = regs_per_warp;
    kernel.iterations = iterations;
    kernel.numCtas = num_ctas;
    kernel.patterns.push_back(std::make_shared<TiledReusePattern>(
        0, 16, TileScope::PerCta, warps_per_cta));
    StaticInst load;
    load.op = Opcode::Load;
    load.pc = 0;
    kernel.body.push_back(load);
    StaticInst use;
    use.op = Opcode::Alu;
    use.pc = 4;
    use.dependsOnLoads = true;
    kernel.body.push_back(use);
    return kernel;
}

TEST(SmIntegration, LaunchRespectsWarpSlots)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(100, 16, 8, 100);
    gpu.sm(0).setKernel(&kernel);
    std::uint32_t launched = 0;
    while (gpu.sm(0).launchCta(launched, 0))
        ++launched;
    EXPECT_EQ(launched, 4u); // 64 warp slots / 16 warps per CTA.
}

TEST(SmIntegration, LaunchRespectsRegisterFile)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(100, 8, 64, 100); // 512 regs/CTA.
    gpu.sm(0).setKernel(&kernel);
    std::uint32_t launched = 0;
    while (gpu.sm(0).launchCta(launched, 0))
        ++launched;
    EXPECT_EQ(launched, 4u); // 2048 / 512.
}

TEST(SmIntegration, LaunchRespectsSharedMemory)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(100, 4, 8, 100);
    kernel.sharedMemPerCta = 32 * 1024; // 96 KB / 32 KB = 3 CTAs.
    gpu.sm(0).setKernel(&kernel);
    std::uint32_t launched = 0;
    while (gpu.sm(0).launchCta(launched, 0))
        ++launched;
    EXPECT_EQ(launched, 3u);
}

TEST(SmIntegration, KernelRunsToCompletion)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 2000000;
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(50, 8, 16, 12);
    const SimStats &stats = gpu.runKernel(kernel);
    EXPECT_TRUE(gpu.done());
    EXPECT_EQ(stats.ctasCompleted, 12u);
    // Every warp executed body.size() x iterations instructions.
    EXPECT_EQ(stats.instructionsIssued, 12u * 8u * 50u * 2u);
}

TEST(SmIntegration, RegistersFullyReleasedAfterCompletion)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 2000000;
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(20, 8, 32, 10);
    gpu.runKernel(kernel);
    ASSERT_TRUE(gpu.done());
    EXPECT_EQ(gpu.sm(0).regFile().allocatedRegs(), 0u);
}

TEST(SmIntegration, ThrottledCtaStopsIssuing)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(1000000, 8, 16, 4);
    gpu.sm(0).setKernel(&kernel);
    for (std::uint32_t c = 0; c < 4; ++c)
        ASSERT_TRUE(gpu.sm(0).launchCta(c, 0));

    gpu.sm(0).setCtaActive(3, false, 0);
    for (int i = 0; i < 1000; ++i)
        gpu.tick();
    // Warps of CTA 3 made no progress.
    for (const Warp &warp : gpu.sm(0).warps()) {
        if (warp.valid && warp.ctaHwId == 3) {
            EXPECT_EQ(warp.iteration, 0u);
            EXPECT_EQ(warp.pcIndex, 0u);
        }
    }
    EXPECT_EQ(gpu.sm(0).activeCtaCount(), 3u);
    EXPECT_EQ(gpu.sm(0).highestActiveCta(), 2);
    EXPECT_EQ(gpu.sm(0).lowestInactiveCta(), 3);
}

TEST(SmIntegration, ReactivatedCtaResumes)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(1000000, 8, 16, 4);
    gpu.sm(0).setKernel(&kernel);
    for (std::uint32_t c = 0; c < 4; ++c)
        ASSERT_TRUE(gpu.sm(0).launchCta(c, 0));
    gpu.sm(0).setCtaActive(3, false, 0);
    for (int i = 0; i < 500; ++i)
        gpu.tick();
    gpu.sm(0).setCtaActive(3, true, gpu.now());
    for (int i = 0; i < 3000; ++i)
        gpu.tick();
    bool progressed = false;
    for (const Warp &warp : gpu.sm(0).warps()) {
        if (warp.valid && warp.ctaHwId == 3 &&
            (warp.iteration > 0 || warp.pcIndex > 0)) {
            progressed = true;
        }
    }
    EXPECT_TRUE(progressed);
}

TEST(SmIntegration, OccupancyAccountingTracksDurAndSur)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 10000;
    Gpu gpu(cfg);
    KernelInfo kernel = tinyKernel(1000000, 8, 32, 4); // 1024 regs used.
    gpu.sm(0).setKernel(&kernel);
    for (std::uint32_t c = 0; c < 4; ++c)
        ASSERT_TRUE(gpu.sm(0).launchCta(c, 0));
    gpu.sm(0).setCtaActive(3, false, 0);
    for (int i = 0; i < 10000; ++i)
        gpu.tick();
    gpu.finalizeStats();
    const SimStats &stats = gpu.stats();
    EXPECT_NEAR(stats.avgDynamicallyUnusedRegisters, 256.0, 1.0);
    EXPECT_NEAR(stats.avgStaticallyUnusedRegisters, 1024.0, 1.0);
    EXPECT_NEAR(stats.avgActiveRegisters, 768.0, 1.0);
}

TEST(SmIntegration, GridDrainsAcrossMultipleWaves)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    cfg.maxCycles = 4000000;
    Gpu gpu(cfg);
    // 24 CTAs but only 8 resident at once: three waves.
    KernelInfo kernel = tinyKernel(30, 8, 32, 24);
    const SimStats &stats = gpu.runKernel(kernel);
    EXPECT_TRUE(gpu.done());
    EXPECT_EQ(stats.ctasCompleted, 24u);
}

} // namespace
} // namespace lbsim
