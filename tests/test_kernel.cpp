/**
 * @file
 * Unit tests for kernel descriptors and the hashed-PC helper.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/kernel.hpp"
#include "core/ldst_unit.hpp"

namespace lbsim
{
namespace
{

TEST(HashedPc, FitsInFiveBits)
{
    for (Pc pc = 0; pc < 4096; pc += 4)
        EXPECT_LT(hashedPc(pc), 32u);
}

TEST(HashedPc, DistinguishesTypicalLoadPcs)
{
    // Kernels have few global loads at small PC strides; the fold must
    // keep them distinct (the paper relies on <32 loads per kernel).
    std::set<std::uint8_t> seen;
    for (Pc pc = 0; pc < 32 * 4; pc += 4)
        seen.insert(hashedPc(pc));
    EXPECT_GE(seen.size(), 24u);
}

TEST(HashedPc, Deterministic)
{
    EXPECT_EQ(hashedPc(0x1234), hashedPc(0x1234));
}

TEST(KernelInfo, RegsPerCtaIsWarpsTimesRegs)
{
    KernelInfo kernel;
    kernel.warpsPerCta = 8;
    kernel.regsPerWarp = 32;
    EXPECT_EQ(kernel.regsPerCta(), 256u);
}

TEST(KernelInfoDeath, ValidateRejectsEmptyBody)
{
    KernelInfo kernel;
    kernel.name = "empty";
    EXPECT_DEATH(kernel.validate(), "empty body");
}

TEST(KernelInfoDeath, ValidateRejectsMissingPattern)
{
    KernelInfo kernel;
    kernel.name = "bad";
    StaticInst load;
    load.op = Opcode::Load;
    load.patternId = 3; // No patterns registered.
    kernel.body.push_back(load);
    EXPECT_DEATH(kernel.validate(), "missing pattern");
}

TEST(KernelInfoDeath, ValidateRejectsZeroStall)
{
    KernelInfo kernel;
    kernel.name = "bad";
    StaticInst alu;
    alu.stallCycles = 0;
    kernel.body.push_back(alu);
    EXPECT_DEATH(kernel.validate(), "zero stall");
}

} // namespace
} // namespace lbsim
