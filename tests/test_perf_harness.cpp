/**
 * @file
 * Perf-harness schema tests: the #lbsim-perf-point-v1 format behind
 * bench_perf and the committed trajectory file.
 *
 * The serializer/parser round-trip, the versioned trajectory append,
 * and the malformed-point rejections are pure data tests; the smoke
 * test at the end runs a miniature sweep through SimRunner — the same
 * measurement loop bench_perf times — and requires a positive
 * cycles/sec figure for every scheme, so a kernel that silently stops
 * simulating cannot report a healthy trajectory point.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/perf_point.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

PerfPoint
samplePoint(const std::string &label = "unit")
{
    PerfPoint point;
    point.label = label;
    point.timestamp = 1700000000;
    point.smoke = true;
    point.sms = 2;
    point.smThreads = 4;
    point.totalCyclesPerSec = 123456.7;
    point.wallSec = 36.5;
    point.simCycles = 4500000;
    point.peakRssKb = 5124;
    point.schemes.push_back({"Baseline", 100000.5, 10.0, 4800});
    point.schemes.push_back({"Linebacker", 90000.25, 12.5, 5124});
    return point;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "lbsim_perf_" + name + "_" +
           std::to_string(::getpid()) + ".json";
}

TEST(PerfPoint, SerializeParseRoundTrip)
{
    const PerfPoint point = samplePoint();
    const std::string line = serializePerfPoint(point);

    PerfPoint parsed;
    std::string error;
    ASSERT_TRUE(parsePerfPoint(line, parsed, &error)) << error;

    EXPECT_EQ(parsed.version, kPerfPointVersion);
    EXPECT_EQ(parsed.label, point.label);
    EXPECT_EQ(parsed.timestamp, point.timestamp);
    EXPECT_EQ(parsed.smoke, point.smoke);
    EXPECT_EQ(parsed.sms, point.sms);
    EXPECT_EQ(parsed.smThreads, point.smThreads);
    EXPECT_NEAR(parsed.totalCyclesPerSec, point.totalCyclesPerSec, 0.1);
    EXPECT_NEAR(parsed.wallSec, point.wallSec, 0.1);
    EXPECT_EQ(parsed.simCycles, point.simCycles);
    EXPECT_EQ(parsed.peakRssKb, point.peakRssKb);
    ASSERT_EQ(parsed.schemes.size(), point.schemes.size());
    for (std::size_t i = 0; i < parsed.schemes.size(); ++i) {
        EXPECT_EQ(parsed.schemes[i].scheme, point.schemes[i].scheme);
        EXPECT_NEAR(parsed.schemes[i].cyclesPerSec,
                    point.schemes[i].cyclesPerSec, 0.1);
        EXPECT_NEAR(parsed.schemes[i].wallSec, point.schemes[i].wallSec,
                    0.1);
        EXPECT_EQ(parsed.schemes[i].peakRssKb,
                  point.schemes[i].peakRssKb);
    }

    // A second trip through the serializer is byte-stable.
    EXPECT_EQ(serializePerfPoint(parsed), line);
}

TEST(PerfPoint, ArtifactWrapperParses)
{
    const std::string artifact = "{\"bench\":\"perf\",\"point\":" +
                                 serializePerfPoint(samplePoint()) + "}";
    PerfPoint parsed;
    std::string error;
    ASSERT_TRUE(parsePerfPointArtifact(artifact, parsed, &error)) << error;
    EXPECT_EQ(parsed.label, "unit");
    // A bare point is accepted too.
    ASSERT_TRUE(parsePerfPointArtifact(serializePerfPoint(samplePoint()),
                                       parsed, &error))
        << error;
}

TEST(PerfPoint, RejectsMalformedPoints)
{
    PerfPoint parsed;
    std::string error;

    // Not JSON at all.
    EXPECT_FALSE(parsePerfPoint("not json", parsed, &error));
    EXPECT_FALSE(error.empty());

    // Truncated object.
    const std::string good = serializePerfPoint(samplePoint());
    EXPECT_FALSE(
        parsePerfPoint(good.substr(0, good.size() / 2), parsed, &error));

    // Trailing garbage.
    EXPECT_FALSE(parsePerfPoint(good + "x", parsed, &error));

    // Wrong schema version.
    PerfPoint wrong = samplePoint();
    wrong.version = 99;
    EXPECT_FALSE(
        parsePerfPoint(serializePerfPoint(wrong), parsed, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    // Version field missing entirely (the pre-versioning format).
    std::string unversioned = good;
    const std::size_t pos = unversioned.find("\"version\":1,");
    ASSERT_NE(pos, std::string::npos);
    unversioned.erase(pos, std::string("\"version\":1,").size());
    EXPECT_FALSE(parsePerfPoint(unversioned, parsed, &error));

    // Empty label.
    PerfPoint unlabeled = samplePoint("");
    EXPECT_FALSE(
        parsePerfPoint(serializePerfPoint(unlabeled), parsed, &error));

    // No schemes.
    PerfPoint bare = samplePoint();
    bare.schemes.clear();
    EXPECT_FALSE(
        parsePerfPoint(serializePerfPoint(bare), parsed, &error));

    // Negative throughput.
    PerfPoint negative = samplePoint();
    negative.schemes[0].cyclesPerSec = -1.0;
    EXPECT_FALSE(
        parsePerfPoint(serializePerfPoint(negative), parsed, &error));
}

TEST(PerfPoint, ValidateMirrorsParseRules)
{
    EXPECT_TRUE(validatePerfPoint(samplePoint()).empty());

    PerfPoint bad = samplePoint();
    bad.version = 2;
    EXPECT_FALSE(validatePerfPoint(bad).empty());

    bad = samplePoint();
    bad.label.clear();
    EXPECT_FALSE(validatePerfPoint(bad).empty());

    bad = samplePoint();
    bad.schemes.clear();
    EXPECT_FALSE(validatePerfPoint(bad).empty());
}

TEST(PerfTrajectory, AppendCreatesLoadsAndExtends)
{
    const std::string path = tempPath("trajectory");
    std::remove(path.c_str());

    // Missing file = empty trajectory.
    std::vector<PerfPoint> points;
    std::string error;
    ASSERT_TRUE(loadTrajectory(path, points, &error)) << error;
    EXPECT_TRUE(points.empty());

    // First append creates the file.
    ASSERT_TRUE(appendTrajectoryPoint(path, samplePoint("pre-opt"),
                                      &error))
        << error;
    // Second extends it.
    ASSERT_TRUE(appendTrajectoryPoint(path, samplePoint("post-opt"),
                                      &error))
        << error;

    ASSERT_TRUE(loadTrajectory(path, points, &error)) << error;
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label, "pre-opt");
    EXPECT_EQ(points[1].label, "post-opt");

    // The file keeps the one-point-per-line array layout.
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines.front(), "[");
    EXPECT_EQ(lines.back(), "]");
    EXPECT_EQ(lines[1].back(), ',');

    std::remove(path.c_str());
}

TEST(PerfTrajectory, RejectsInvalidAppendAndMalformedFile)
{
    const std::string path = tempPath("reject");
    std::remove(path.c_str());

    // An invalid point never reaches the file.
    PerfPoint bad = samplePoint();
    bad.schemes.clear();
    std::string error;
    EXPECT_FALSE(appendTrajectoryPoint(path, bad, &error));
    std::ifstream probe(path);
    EXPECT_FALSE(probe.good());

    // A file with a malformed line fails to load with a located error.
    {
        std::ofstream out(path);
        out << "[\n" << serializePerfPoint(samplePoint()) << ",\n"
            << "{\"version\":1,\"label\":\"broken\"}\n" << "]\n";
    }
    std::vector<PerfPoint> points;
    EXPECT_FALSE(loadTrajectory(path, points, &error));
    EXPECT_NE(error.find(":3:"), std::string::npos) << error;

    // A bare JSON line without the array scaffolding is rejected.
    {
        std::ofstream out(path);
        out << serializePerfPoint(samplePoint()) << "\n";
    }
    EXPECT_FALSE(loadTrajectory(path, points, &error));

    std::remove(path.c_str());
}

/**
 * Miniature version of the bench_perf measurement loop: every scheme
 * must simulate forward and post a positive cycles/sec figure.
 */
TEST(PerfSmoke, EverySchemeReportsPositiveThroughput)
{
    GpuConfig gpu;
    gpu.warmupCycles = 1000;
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 20000;
    options.useMemoCache = false;

    const AppProfile &app = appById("S2");
    const std::vector<SchemeConfig> schemes = {
        SchemeConfig::baseline(), SchemeConfig::bestSwl(8),
        SchemeConfig::pcal(), SchemeConfig::cerf(),
        SchemeConfig::linebacker()};

    PerfPoint point;
    point.label = "smoke";
    point.smoke = true;
    point.sms = 1;
    for (const SchemeConfig &scheme : schemes) {
        const auto start = std::chrono::steady_clock::now();
        SimRunner runner(gpu, LbConfig{}, options);
        const RunMetrics metrics = runner.run(app, scheme);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const std::uint64_t cycles =
            gpu.warmupCycles + metrics.stats.cycles;

        SchemePerfPoint perf;
        perf.scheme = scheme.name;
        perf.wallSec = wall;
        perf.cyclesPerSec =
            wall > 0 ? static_cast<double>(cycles) / wall : 0;
        EXPECT_GT(cycles, 0u) << scheme.name << " simulated no cycles";
        EXPECT_GT(perf.cyclesPerSec, 0.0)
            << scheme.name << " reported no throughput";
        point.schemes.push_back(perf);
        point.simCycles += cycles;
        point.wallSec += wall;
    }
    point.totalCyclesPerSec =
        point.wallSec > 0
            ? static_cast<double>(point.simCycles) / point.wallSec
            : 0;
    EXPECT_GT(point.totalCyclesPerSec, 0.0);

    // The measured point is schema-clean end to end.
    EXPECT_TRUE(validatePerfPoint(point).empty());
    PerfPoint parsed;
    std::string error;
    EXPECT_TRUE(
        parsePerfPoint(serializePerfPoint(point), parsed, &error))
        << error;
}

} // namespace
} // namespace lbsim
