/**
 * @file
 * Tests for the experiment layer: plan combinators, engine determinism
 * across thread counts, per-cell error isolation, single-flight
 * memoization, and progress reporting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/memo_cache.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

/** Small configuration so each cell simulates quickly. */
RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 20000;
    options.useMemoCache = false;
    return options;
}

GpuConfig
fastGpu()
{
    GpuConfig cfg;
    cfg.warmupCycles = 5000;
    return cfg;
}

ExperimentPlan
smallPlan()
{
    ExperimentPlan plan(fastGpu(), LbConfig{}, fastOptions());
    plan.crossApps({appById("S2"), appById("GA")},
                   {SchemeConfig::baseline(), SchemeConfig::linebacker()});
    return plan;
}

void
expectIdenticalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.avgVictimRegs, b.avgVictimRegs);
    EXPECT_EQ(a.monitoringWindows, b.monitoringWindows);
    EXPECT_EQ(a.victimSpaceUtilization, b.victimSpaceUtilization);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.instructionsIssued, b.stats.instructionsIssued);
    EXPECT_EQ(a.stats.l1.l1Hits, b.stats.l1.l1Hits);
    EXPECT_EQ(a.stats.l1.regHits, b.stats.l1.regHits);
    EXPECT_EQ(a.stats.l1.misses, b.stats.l1.misses);
    EXPECT_EQ(a.stats.l1.bypasses, b.stats.l1.bypasses);
    EXPECT_EQ(a.stats.dramReads, b.stats.dramReads);
    EXPECT_EQ(a.stats.dramWrites, b.stats.dramWrites);
    EXPECT_EQ(a.stats.rfBankConflicts, b.stats.rfBankConflicts);
    EXPECT_EQ(a.stats.victimLinesStored, b.stats.victimLinesStored);
}

TEST(ExperimentPlan, CombinatorsEnumerateCellsInOrder)
{
    ExperimentPlan plan(fastGpu(), LbConfig{}, fastOptions());
    plan.withBaseline({appById("S2"), appById("GA")},
                      SchemeConfig::baseline());
    plan.crossApps({appById("S2"), appById("GA")},
                   {SchemeConfig::linebacker()});
    EXPECT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.referenceScheme(), "Baseline");
    EXPECT_EQ(plan.appOrder(),
              (std::vector<std::string>{"S2", "GA"}));
    EXPECT_EQ(plan.schemeOrder(),
              (std::vector<std::string>{"Baseline", "Linebacker"}));
    // Cross products are scheme-major: all apps under one scheme first.
    EXPECT_EQ(plan.cells()[0].app, "S2");
    EXPECT_EQ(plan.cells()[1].app, "GA");
    EXPECT_EQ(plan.cells()[2].scheme, "Linebacker");
}

TEST(ExperimentPlan, SweepParamClonesBaseConfigPerPoint)
{
    ExperimentPlan plan(fastGpu(), LbConfig{}, fastOptions());
    std::vector<SweepPoint> points = {
        {"16KB",
         [](GpuConfig &cfg, LbConfig &, RunnerOptions &) {
             cfg.l1.sizeBytes = 16 * 1024;
         }},
        {"96KB",
         [](GpuConfig &cfg, LbConfig &, RunnerOptions &) {
             cfg.l1.sizeBytes = 96 * 1024;
         }},
    };
    plan.sweepParam(points, {appById("S2")},
                    {SchemeConfig::baseline()});
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.cells()[0].variant, "16KB");
    EXPECT_EQ(plan.cells()[0].gpu.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(plan.cells()[1].variant, "96KB");
    EXPECT_EQ(plan.cells()[1].gpu.l1.sizeBytes, 96u * 1024);
    // The plan's own base config is untouched by the sweep.
    EXPECT_EQ(plan.gpu().l1.sizeBytes, GpuConfig{}.l1.sizeBytes);
}

TEST(ExperimentPlan, LabelRenamesColumnOnly)
{
    ExperimentPlan plan(fastGpu(), LbConfig{}, fastOptions());
    plan.add(appById("GA"), SchemeConfig::selectiveVictimCaching(), {},
             "Baseline+SVC");
    EXPECT_EQ(plan.cells()[0].scheme, "Baseline+SVC");
}

TEST(ExperimentEngine, ThreadCountDoesNotChangeResults)
{
    EngineOptions serial;
    serial.threads = 1;
    const std::vector<CellResult> one =
        ExperimentEngine(serial).run(smallPlan());

    EngineOptions pooled;
    pooled.threads = 8;
    const std::vector<CellResult> eight =
        ExperimentEngine(pooled).run(smallPlan());

    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].app, eight[i].app);
        EXPECT_EQ(one[i].scheme, eight[i].scheme);
        ASSERT_TRUE(one[i].ok);
        ASSERT_TRUE(eight[i].ok);
        expectIdenticalMetrics(one[i].metrics, eight[i].metrics);
    }
}

TEST(ExperimentEngine, ThrowingCellIsIsolated)
{
    ExperimentPlan plan(fastGpu(), LbConfig{}, fastOptions());
    plan.add(appById("GA"), SchemeConfig::baseline());
    plan.addCustom("GA", "Broken", {}, [](SimRunner &) -> RunMetrics {
        throw std::runtime_error("deliberate failure");
    });
    plan.add(appById("GA"), SchemeConfig::linebacker());

    EngineOptions opts;
    opts.threads = 4;
    const std::vector<CellResult> results =
        ExperimentEngine(opts).run(plan);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deliberate failure"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);
    EXPECT_NE(findMetrics(results, "GA", "Baseline"), nullptr);
    EXPECT_EQ(findMetrics(results, "GA", "Broken"), nullptr);
}

TEST(ExperimentEngine, ProgressCallbackFiresOncePerCell)
{
    std::atomic<int> calls{0};
    std::set<std::pair<std::string, std::string>> seen;
    std::set<std::size_t> done_counts;

    EngineOptions opts;
    opts.threads = 4;
    opts.onCellDone = [&](const CellResult &result, std::size_t done,
                          std::size_t total) {
        ++calls;
        seen.insert({result.app, result.scheme});
        done_counts.insert(done);
        EXPECT_EQ(total, 4u);
    };
    const ExperimentPlan plan = smallPlan();
    ExperimentEngine(opts).run(plan);

    EXPECT_EQ(calls.load(), 4);
    EXPECT_EQ(seen.size(), 4u);
    // Completed counts are 1..total, each seen exactly once.
    EXPECT_EQ(done_counts,
              (std::set<std::size_t>{1, 2, 3, 4}));
}

TEST(MemoCache, GetOrComputeSkipsRecomputation)
{
    const std::string path =
        testing::TempDir() + "lbsim_experiment_memo_test.txt";
    std::remove(path.c_str());

    MemoCache cache(path);
    int computed = 0;
    const auto compute = [&computed] {
        ++computed;
        return std::string("value");
    };
    EXPECT_EQ(cache.getOrCompute("key", compute), "value");
    EXPECT_EQ(cache.getOrCompute("key", compute), "value");
    EXPECT_EQ(computed, 1);

    // A fresh instance reads the persisted entry instead of computing.
    MemoCache reloaded(path);
    EXPECT_EQ(reloaded.getOrCompute("key", compute), "value");
    EXPECT_EQ(computed, 1);
    std::remove(path.c_str());
}

TEST(MemoCache, ConcurrentIdenticalKeysComputeOnce)
{
    const std::string path =
        testing::TempDir() + "lbsim_experiment_memo_flight.txt";
    std::remove(path.c_str());

    MemoCache cache(path);
    std::atomic<int> computed{0};
    std::vector<std::thread> pool;
    std::vector<std::string> values(8);
    for (std::size_t t = 0; t < values.size(); ++t) {
        pool.emplace_back([&, t] {
            values[t] = cache.getOrCompute("shared-key", [&computed] {
                ++computed;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return std::string("once");
            });
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(computed.load(), 1);
    for (const std::string &value : values)
        EXPECT_EQ(value, "once");
    std::remove(path.c_str());
}

TEST(MemoCache, SchemaMismatchDiscardsOldEntries)
{
    const std::string path =
        testing::TempDir() + "lbsim_experiment_memo_schema.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("#lbsim-memo-schema 0\nstale-key\tstale-value\n", f);
        std::fclose(f);
    }
    MemoCache cache(path);
    EXPECT_FALSE(cache.lookup("stale-key").has_value());
    cache.store("new-key", "new-value");

    MemoCache reloaded(path);
    EXPECT_FALSE(reloaded.lookup("stale-key").has_value());
    EXPECT_EQ(reloaded.lookup("new-key").value_or(""), "new-value");
    std::remove(path.c_str());
}

TEST(ParallelMap, PreservesIndexOrderAcrossThreads)
{
    const std::vector<int> squares =
        parallelMap(64, 8, [](std::size_t i) {
            return static_cast<int>(i * i);
        });
    ASSERT_EQ(squares.size(), 64u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], static_cast<int>(i * i));
}

} // namespace
} // namespace lbsim
