/**
 * @file
 * Golden-metrics regression test: re-runs the Figure 12 smoke plan
 * (the CI configuration of bench_fig12_performance) and requires the
 * machine-readable JSON artifact to match tests/golden/fig12_smoke.json
 * byte for byte.
 *
 * The simulator is deterministic and writeExperimentJson excludes
 * runtime facts, so any diff is a behaviour change — intended ones are
 * blessed by re-running with LBSIM_UPDATE_GOLDEN=1 and committing the
 * refreshed snapshot.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"

namespace lbsim
{
namespace
{

#ifndef LBSIM_GOLDEN_DIR
#error "LBSIM_GOLDEN_DIR must point at tests/golden"
#endif

std::string
goldenPath()
{
    return std::string(LBSIM_GOLDEN_DIR) + "/fig12_smoke.json";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** First line where @p a and @p b disagree, for readable failures. */
std::string
firstDiffLine(const std::string &a, const std::string &b)
{
    std::istringstream sa(a);
    std::istringstream sb(b);
    std::string la;
    std::string lb;
    for (std::size_t line = 1;; ++line) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "(no difference found line-wise)";
        if (la != lb || ga != gb) {
            return "line " + std::to_string(line) + ":\n  golden: " +
                (ga ? la : "<eof>") + "\n  actual: " + (gb ? lb : "<eof>");
        }
    }
}

TEST(GoldenFig12, SmokePlanMatchesSnapshot)
{
    using namespace lbsim::bench;

    // Identical cells to `bench_fig12_performance --smoke --no-cache`:
    // shared smoke config, six-app subset, baseline + Best-SWL oracle +
    // the three evaluated schemes.
    setenv("LBSIM_NO_CACHE", "1", 1);
    BenchOptions opts;
    opts.benchName = "fig12_performance";
    opts.smoke = true;
    const std::vector<AppProfile> apps = benchApps(opts);
    ExperimentPlan plan = benchPlan(opts);
    plan.withBaseline(apps, SchemeConfig::baseline())
        .withBestSwl(apps)
        .crossApps(apps, {SchemeConfig::pcal(), SchemeConfig::cerf(),
                          SchemeConfig::linebacker()});

    const std::vector<CellResult> results =
        ExperimentEngine(EngineOptions{}).run(plan);
    unsetenv("LBSIM_NO_CACHE");
    ASSERT_EQ(results.size(), plan.size());
    for (const CellResult &result : results) {
        ASSERT_TRUE(result.ok)
            << result.app << "/" << result.scheme << ": " << result.error;
    }

    const std::string actual_path = "golden_fig12_actual.json";
    writeExperimentJson(actual_path, opts.benchName, opts.smoke, results);
    std::string actual;
    ASSERT_TRUE(readFile(actual_path, actual));
    std::remove(actual_path.c_str());

    if (const char *update = std::getenv("LBSIM_UPDATE_GOLDEN");
        update && update[0] == '1') {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(static_cast<bool>(out))
            << "cannot write " << goldenPath();
        out << actual;
        GTEST_SKIP() << "golden snapshot refreshed: " << goldenPath();
    }

    std::string golden;
    ASSERT_TRUE(readFile(goldenPath(), golden))
        << "missing " << goldenPath()
        << " — generate it with LBSIM_UPDATE_GOLDEN=1";
    EXPECT_EQ(golden, actual)
        << "fig12 smoke metrics drifted from the golden snapshot.\n"
        << firstDiffLine(golden, actual)
        << "\nIf the change is intended, re-bless with "
           "LBSIM_UPDATE_GOLDEN=1 and commit the diff.";
}

} // namespace
} // namespace lbsim
