/**
 * @file
 * Unit and integration tests for the CCWS-lite baseline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/ccws.hpp"
#include "core/gpu.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

struct CcwsFixture : ::testing::Test
{
    CcwsFixture()
    {
        cfg = GpuConfig{}.scaleTo(1);
        gpu = std::make_unique<Gpu>(cfg);
        ccws = std::make_unique<Ccws>(cfg, &gpu->sm(0));
    }

    GpuConfig cfg;
    std::unique_ptr<Gpu> gpu;
    std::unique_ptr<Ccws> ccws;
};

TEST_F(CcwsFixture, StartsUnthrottled)
{
    EXPECT_EQ(ccws->activeLimit(), cfg.maxWarpsPerSm);
    Warp warp;
    warp.smWarpId = 63;
    warp.valid = true;
    EXPECT_TRUE(ccws->warpMayIssue(gpu->sm(0), warp));
}

TEST_F(CcwsFixture, LostLocalityRaisesScore)
{
    // Warp 5 loses line X from L1, then misses on it again.
    ccws->notifyEviction(4096, 0, 5, 10);
    ccws->notifyAccess(4096, 0, 0, 5, false, 20);
    EXPECT_GT(ccws->score(5), 0.0);
    // A different warp missing on the same line scores nothing.
    ccws->notifyEviction(8192, 0, 5, 30);
    ccws->notifyAccess(8192, 0, 0, 6, false, 40);
    EXPECT_DOUBLE_EQ(ccws->score(6), 0.0);
}

TEST_F(CcwsFixture, HitsDoNotScore)
{
    ccws->notifyEviction(4096, 0, 3, 10);
    ccws->notifyAccess(4096, 0, 0, 3, true, 20);
    EXPECT_DOUBLE_EQ(ccws->score(3), 0.0);
}

TEST_F(CcwsFixture, AggregateScoreThrottles)
{
    // Hammer lost locality on several warps.
    for (std::uint32_t warp = 0; warp < 8; ++warp) {
        for (int k = 0; k < 64; ++k) {
            const Addr line =
                (static_cast<Addr>(warp) * 1000 + k) * kLineBytes;
            ccws->notifyEviction(line, 0, static_cast<std::uint8_t>(warp),
                                 k);
            ccws->notifyAccess(line, 0, 0,
                               static_cast<std::uint8_t>(warp), false,
                               k + 1);
        }
    }
    ccws->onCycle(gpu->sm(0), 5000);
    EXPECT_LT(ccws->activeLimit(), cfg.maxWarpsPerSm);
    // The scoring warps keep issue priority.
    Warp scorer;
    scorer.smWarpId = 3;
    scorer.valid = true;
    EXPECT_TRUE(ccws->warpMayIssue(gpu->sm(0), scorer));
}

TEST_F(CcwsFixture, ScoresDecayAndLimitRecovers)
{
    for (int k = 0; k < 64; ++k) {
        const Addr line = static_cast<Addr>(k) * kLineBytes;
        ccws->notifyEviction(line, 0, 0, k);
        ccws->notifyAccess(line, 0, 0, 0, false, k + 1);
    }
    ccws->onCycle(gpu->sm(0), 5000);
    const double peak = ccws->score(0);
    // Many idle windows: scores decay, the limit recovers.
    for (Cycle now = 10000; now < 400000; now += 2000)
        ccws->onCycle(gpu->sm(0), now);
    EXPECT_LT(ccws->score(0), peak / 10);
    EXPECT_EQ(ccws->activeLimit(), cfg.maxWarpsPerSm);
}

TEST(CcwsScheme, RunsThroughTheHarness)
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 120000;
    options.useMemoCache = false;
    SimRunner runner({}, {}, options);
    const RunMetrics m = runner.run(appById("S2"), SchemeConfig::ccws());
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_GT(m.stats.l1.total(), 0u);
}

} // namespace
} // namespace lbsim
