/**
 * @file
 * Tests for the harness layer: scheme factories, runner wiring, oracle
 * sweep, memo cache, and reporting helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "harness/memo_cache.hpp"
#include "harness/oracle.hpp"
#include "harness/report.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

TEST(SchemeFactories, ComposeExpectedFlags)
{
    EXPECT_EQ(SchemeConfig::baseline().throttle, ThrottleMode::None);

    const SchemeConfig swl = SchemeConfig::bestSwl(24);
    EXPECT_EQ(swl.throttle, ThrottleMode::StaticWarp);
    EXPECT_EQ(swl.staticWarpLimit, 24u);

    const SchemeConfig lb = SchemeConfig::linebacker();
    EXPECT_EQ(lb.throttle, ThrottleMode::DynamicCta);
    EXPECT_EQ(lb.victim, VictimMode::Selective);
    EXPECT_TRUE(lb.useDynamicUnusedRegs);
    EXPECT_TRUE(lb.backupRegisters);

    const SchemeConfig svc = SchemeConfig::selectiveVictimCaching();
    EXPECT_EQ(svc.throttle, ThrottleMode::None);
    EXPECT_FALSE(svc.useDynamicUnusedRegs);

    const SchemeConfig vc = SchemeConfig::victimCachingAll();
    EXPECT_EQ(vc.victim, VictimMode::All);

    EXPECT_TRUE(SchemeConfig::cerf().cerfUnified);
    EXPECT_TRUE(SchemeConfig::cacheExtension().cacheExt);
    EXPECT_TRUE(SchemeConfig::pcalSvc().victim == VictimMode::Selective);
    EXPECT_EQ(SchemeConfig::pcalSvc().throttle,
              ThrottleMode::PcalTokens);
    EXPECT_TRUE(SchemeConfig::pcalCerf().cerfUnified);
    EXPECT_TRUE(SchemeConfig::linebackerCacheExt().cacheExt);
}

TEST(Geomean, MatchesHandComputedValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 8.0}), 2.8284271, 1e-6);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries are skipped, not fatal.
    EXPECT_DOUBLE_EQ(geomean({0.0, 2.0, 2.0}), 2.0);
}

TEST(MemoCache, RoundTrips)
{
    const std::string path =
        ::testing::TempDir() + "/lbsim_memo_test.csv";
    std::remove(path.c_str());
    MemoCache cache(path);
    EXPECT_FALSE(cache.lookup("k1").has_value());
    cache.store("k1", "1,2,3");
    ASSERT_TRUE(cache.lookup("k1").has_value());
    EXPECT_EQ(*cache.lookup("k1"), "1,2,3");
    // Last write wins.
    cache.store("k1", "4,5,6");
    EXPECT_EQ(*cache.lookup("k1"), "4,5,6");
    std::remove(path.c_str());
}

TEST(MemoCache, Fnv1aStable)
{
    EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
}

TEST(SimRunner, MemoCacheReproducesMetrics)
{
    const std::string path =
        ::testing::TempDir() + "/lbsim_runner_cache.csv";
    std::remove(path.c_str());
    setenv("LBSIM_CACHE_PATH", path.c_str(), 1);

    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 60000;
    options.useMemoCache = true;
    SimRunner runner({}, {}, options);
    const AppProfile &app = appById("GA");
    const RunMetrics fresh = runner.run(app, SchemeConfig::baseline());
    const RunMetrics cached = runner.run(app, SchemeConfig::baseline());
    EXPECT_DOUBLE_EQ(fresh.ipc, cached.ipc);
    EXPECT_EQ(fresh.stats.l1.l1Hits, cached.stats.l1.l1Hits);
    EXPECT_EQ(fresh.stats.dramReads, cached.stats.dramReads);

    unsetenv("LBSIM_CACHE_PATH");
    std::remove(path.c_str());
}

TEST(Oracle, PicksBestAndIncludesUnlimited)
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 60000;
    options.useMemoCache = false;
    SimRunner runner({}, {}, options);
    const SwlOracleResult result =
        findBestSwl(runner, appById("GA"));
    EXPECT_EQ(result.sweep.size(), swlCandidateLimits().size());
    // The chosen limit's IPC is the maximum of the sweep.
    double best = 0;
    for (const auto &[limit, ipc] : result.sweep)
        best = std::max(best, ipc);
    EXPECT_DOUBLE_EQ(result.bestMetrics.ipc, best);
    // Unlimited is part of the candidates, so Best-SWL >= baseline.
    const RunMetrics baseline =
        runner.run(appById("GA"), SchemeConfig::baseline());
    EXPECT_GE(result.bestMetrics.ipc, baseline.ipc * 0.999);
}

TEST(ComparisonReport, NormalizesAndAggregates)
{
    ComparisonReport report;
    report.add("A", "base", 1.0);
    report.add("A", "lb", 2.0);
    report.add("B", "base", 2.0);
    report.add("B", "lb", 2.0);
    EXPECT_NEAR(report.geomeanVs("lb", "base"), std::sqrt(2.0), 1e-9);
    const std::string table = report.renderNormalized("base");
    EXPECT_NE(table.find("2.000"), std::string::npos);
    EXPECT_NE(table.find("GM"), std::string::npos);
}

TEST(ComparisonReport, SubsetGeomean)
{
    ComparisonReport report;
    report.add("A", "base", 1.0);
    report.add("A", "x", 4.0);
    report.add("B", "base", 1.0);
    report.add("B", "x", 1.0);
    EXPECT_DOUBLE_EQ(report.geomeanVs("x", "base", {"A"}), 4.0);
    EXPECT_DOUBLE_EQ(report.geomeanVs("x", "base", {"B"}), 1.0);
}

} // namespace
} // namespace lbsim
