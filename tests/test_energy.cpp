/**
 * @file
 * Unit tests for the event-based energy model.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace lbsim
{
namespace
{

TEST(EnergyModel, ZeroStatsZeroDynamicEnergy)
{
    EnergyModel model;
    SimStats stats;
    GpuConfig cfg;
    const EnergyBreakdown e = model.compute(stats, cfg, false);
    EXPECT_DOUBLE_EQ(e.core, 0.0);
    EXPECT_DOUBLE_EQ(e.dram, 0.0);
    EXPECT_DOUBLE_EQ(e.staticEnergy, 0.0);
}

TEST(EnergyModel, StaticEnergyScalesWithCycles)
{
    EnergyModel model;
    SimStats stats;
    GpuConfig cfg;
    stats.cycles = 1000000;
    const double e1 = model.compute(stats, cfg, false).staticEnergy;
    stats.cycles = 2000000;
    const double e2 = model.compute(stats, cfg, false).staticEnergy;
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
    EXPECT_GT(e1, 0.0);
}

TEST(EnergyModel, DramEnergyPerLine)
{
    EnergyModel model;
    SimStats stats;
    GpuConfig cfg;
    stats.dramReads = 1000;
    const EnergyBreakdown e = model.compute(stats, cfg, false);
    EXPECT_NEAR(e.dram, 1000 * model.params().dramLinePj * 1e-12,
                1e-15);
}

TEST(EnergyModel, BackupTrafficChargedAsDram)
{
    EnergyModel model;
    SimStats stats;
    GpuConfig cfg;
    stats.dramBackupWrites = 500;
    stats.dramRestoreReads = 500;
    const EnergyBreakdown e = model.compute(stats, cfg, false);
    EXPECT_GT(e.dram, 0.0);
}

TEST(EnergyModel, LbStructuresOnlyWhenActive)
{
    EnergyModel model;
    SimStats stats;
    GpuConfig cfg;
    stats.l1.l1Hits = 1000;
    stats.vttProbes = 400;
    EXPECT_DOUBLE_EQ(model.compute(stats, cfg, false).lbStructures, 0.0);
    EXPECT_GT(model.compute(stats, cfg, true).lbStructures, 0.0);
}

TEST(EnergyModel, Table3ConstantsAreDefault)
{
    EnergyParams params;
    EXPECT_DOUBLE_EQ(params.ctaManagerAccessPj, 1.94);
    EXPECT_DOUBLE_EQ(params.hpcAccessPj, 0.09);
    EXPECT_DOUBLE_EQ(params.loadMonitorAccessPj, 0.32);
    EXPECT_DOUBLE_EQ(params.vttAccessPj, 2.05);
}

TEST(EnergyModel, TotalSumsComponents)
{
    EnergyModel model;
    SimStats stats;
    GpuConfig cfg;
    stats.cycles = 1000;
    stats.instructionsIssued = 5000;
    stats.rfAccesses = 9000;
    stats.l1.l1Hits = 700;
    stats.l2Accesses = 300;
    stats.dramReads = 100;
    const EnergyBreakdown e = model.compute(stats, cfg, true);
    EXPECT_NEAR(e.total(),
                e.core + e.registerFile + e.l1 + e.l2 + e.dram +
                    e.lbStructures + e.staticEnergy,
                1e-18);
    EXPECT_GT(e.total(), 0.0);
}

TEST(EnergyModel, FasterRunWithSameWorkUsesLessEnergy)
{
    // The Fig 18 effect: LB's speedup cuts static energy.
    EnergyModel model;
    GpuConfig cfg;
    SimStats slow;
    slow.cycles = 2000000;
    slow.instructionsIssued = 1000000;
    SimStats fast = slow;
    fast.cycles = 1500000;
    EXPECT_LT(model.compute(fast, cfg, true).total(),
              model.compute(slow, cfg, false).total());
}

} // namespace
} // namespace lbsim
