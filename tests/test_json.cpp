/**
 * @file
 * Unit tests for the streaming JSON writer: structural output, string
 * escaping, non-finite double handling, and the misuse checks behind
 * the nesting discipline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"

namespace lbsim
{
namespace
{

/** Captures check failures instead of aborting (see test_check.cpp). */
class CheckCapture
{
  public:
    CheckCapture()
    {
        previous_ = setCheckFailureHandler(
            [this](const CheckFailure &failure) {
                failures_.push_back(failure);
            });
    }

    ~CheckCapture() { setCheckFailureHandler(previous_); }

    const std::vector<CheckFailure> &failures() const { return failures_; }

  private:
    CheckFailureHandler previous_;
    std::vector<CheckFailure> failures_;
};

TEST(JsonWriter, EmitsValidNestedStructure)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("name", "bench");
    json.field("count", std::uint64_t{3});
    json.field("enabled", true);
    json.beginArrayField("values");
    json.value(1.5);
    json.value("two");
    json.endArray();
    json.beginObjectField("nested");
    json.field("ipc", 0.5);
    json.endObject();
    json.endObject();

    EXPECT_EQ(out.str(), "{\n"
                         "  \"name\": \"bench\",\n"
                         "  \"count\": 3,\n"
                         "  \"enabled\": true,\n"
                         "  \"values\": [\n"
                         "    1.5,\n"
                         "    \"two\"\n"
                         "  ],\n"
                         "  \"nested\": {\n"
                         "    \"ipc\": 0.5\n"
                         "  }\n"
                         "}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.beginArrayField("empty");
    json.endArray();
    json.beginObjectField("nothing");
    json.endObject();
    json.endObject();
    EXPECT_EQ(out.str(), "{\n"
                         "  \"empty\": [],\n"
                         "  \"nothing\": {}\n"
                         "}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape("cr\rhere"), "cr\\rhere");
    // Other control characters become \u escapes.
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
    // High-bit bytes (UTF-8 continuation) pass through untouched.
    EXPECT_EQ(JsonWriter::escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(JsonWriter, EscapingAppliesToKeysAndValues)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("ke\"y", "va\nlue");
    json.endObject();
    EXPECT_NE(out.str().find("\"ke\\\"y\": \"va\\nlue\""),
              std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("nan", std::nan(""));
    json.field("inf", std::numeric_limits<double>::infinity());
    json.field("ninf", -std::numeric_limits<double>::infinity());
    json.field("finite", 2.0);
    json.endObject();
    EXPECT_EQ(out.str(), "{\n"
                         "  \"nan\": null,\n"
                         "  \"inf\": null,\n"
                         "  \"ninf\": null,\n"
                         "  \"finite\": 2\n"
                         "}");
}

TEST(JsonWriter, DoublesRoundTripAtFullPrecision)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("third", 1.0 / 3.0);
    json.endObject();
    const std::string text = out.str();
    const std::size_t colon = text.find(": ");
    ASSERT_NE(colon, std::string::npos);
    const double parsed = std::strtod(text.c_str() + colon + 2, nullptr);
    EXPECT_EQ(parsed, 1.0 / 3.0);
}

// LB_ASSERT-backed misuse detection is only compiled at fast+ levels.
#if LBSIM_CHECKS_LEVEL >= 1

TEST(JsonWriterMisuse, KeyOutsideObjectFails)
{
    CheckCapture capture;
    std::ostringstream out;
    JsonWriter json(out);
    json.field("orphan", 1.0); // No object open.
    ASSERT_EQ(capture.failures().size(), 1u);
    EXPECT_NE(capture.failures()[0].message.find("orphan"),
              std::string::npos);
}

TEST(JsonWriterMisuse, KeyInsideArrayFails)
{
    CheckCapture capture;
    std::ostringstream out;
    JsonWriter json(out);
    json.beginArray();
    json.field("key", 1.0); // Arrays take values, not fields.
    EXPECT_EQ(capture.failures().size(), 1u);
}

TEST(JsonWriterMisuse, ScalarElementOutsideArrayFails)
{
    CheckCapture capture;
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.value(1.0); // Objects take fields, not bare values.
    EXPECT_EQ(capture.failures().size(), 1u);
}

TEST(JsonWriterMisuse, UnbalancedCloseFails)
{
    CheckCapture capture;
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.endArray(); // Mismatched close.
    EXPECT_GE(capture.failures().size(), 1u);
}

#endif // LBSIM_CHECKS_LEVEL >= 1

} // namespace
} // namespace lbsim
