/**
 * @file
 * Unit tests for the comparison baselines: Best-SWL gating, PCAL token
 * bypass, and CERF/CacheExt sizing helpers.
 */

#include <gtest/gtest.h>

#include "baselines/cerf.hpp"
#include "baselines/pcal.hpp"
#include "baselines/static_warp_limiter.hpp"
#include "core/gpu.hpp"

namespace lbsim
{
namespace
{

Warp
warpAtSlot(std::uint32_t slot)
{
    Warp warp;
    warp.smWarpId = slot;
    warp.valid = true;
    return warp;
}

TEST(StaticWarpLimiter, GatesSlotsAboveLimit)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    StaticWarpLimiter limiter(16);
    EXPECT_TRUE(limiter.warpMayIssue(gpu.sm(0), warpAtSlot(0)));
    EXPECT_TRUE(limiter.warpMayIssue(gpu.sm(0), warpAtSlot(15)));
    EXPECT_FALSE(limiter.warpMayIssue(gpu.sm(0), warpAtSlot(16)));
    EXPECT_FALSE(limiter.warpMayIssue(gpu.sm(0), warpAtSlot(63)));
}

TEST(StaticWarpLimiter, ZeroMeansUnlimited)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    StaticWarpLimiter limiter(0);
    EXPECT_TRUE(limiter.warpMayIssue(gpu.sm(0), warpAtSlot(63)));
}

TEST(Pcal, LowSlotsHoldTokens)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    Pcal pcal(cfg);
    const std::uint32_t tokens = pcal.tokenWarps();
    ASSERT_GT(tokens, 0u);
    EXPECT_FALSE(pcal.warpBypassesL1(gpu.sm(0), warpAtSlot(0)));
    EXPECT_TRUE(pcal.warpBypassesL1(gpu.sm(0), warpAtSlot(tokens)));
}

TEST(Pcal, TokenCountAdaptsOverWindows)
{
    GpuConfig cfg = GpuConfig{}.scaleTo(1);
    Gpu gpu(cfg);
    Pcal pcal(cfg, 1000);
    const std::uint32_t initial = pcal.tokenWarps();
    // Tick through several windows (IPC stays 0: hill climber moves).
    for (Cycle now = 0; now < 5000; now += 1000)
        pcal.onCycle(gpu.sm(0), now);
    EXPECT_NE(pcal.tokenWarps(), initial);
    EXPECT_GE(pcal.tokenWarps(), 2u);
    EXPECT_LE(pcal.tokenWarps(), cfg.maxWarpsPerSm);
}

TEST(CerfSizing, OccupancyLimits)
{
    GpuConfig cfg;
    KernelInfo kernel;
    kernel.warpsPerCta = 8;
    kernel.regsPerWarp = 32; // 256 regs per CTA.
    kernel.numCtas = 1000;
    // Warp-limited: 64/8 = 8 CTAs (registers would allow 8 too).
    EXPECT_EQ(maxResidentCtas(cfg, kernel), 8u);
    kernel.regsPerWarp = 64; // 512 regs per CTA: register-limited to 4.
    EXPECT_EQ(maxResidentCtas(cfg, kernel), 4u);
    kernel.sharedMemPerCta = 48 * 1024; // Shared-memory-limited to 2.
    EXPECT_EQ(maxResidentCtas(cfg, kernel), 2u);
}

TEST(CerfSizing, StaticallyUnusedRegBytes)
{
    GpuConfig cfg;
    KernelInfo kernel;
    kernel.warpsPerCta = 8;
    kernel.regsPerWarp = 16; // 8 CTAs x 128 regs = 1024 of 2048.
    kernel.numCtas = 1000;
    EXPECT_EQ(staticallyUnusedRegBytes(cfg, kernel),
              1024u * kLineBytes);
}

TEST(CerfSizing, ExtraWaysGrowWithIdleSpace)
{
    GpuConfig cfg;
    KernelInfo low;
    low.warpsPerCta = 8;
    low.regsPerWarp = 8;
    low.numCtas = 1000;
    KernelInfo high = low;
    high.regsPerWarp = 32;
    EXPECT_GT(cerfExtraWays(cfg, low), cerfExtraWays(cfg, high));
    // CERF always finds some repurposable space (rare registers).
    EXPECT_GT(cerfExtraWays(cfg, high), 0u);
}

TEST(CacheExtSizing, WholeWaysOnly)
{
    GpuConfig cfg;
    const std::uint32_t way_bytes = cfg.l1.sets() * cfg.l1.lineBytes;
    EXPECT_EQ(cacheExtExtraWays(cfg, 0), 0u);
    EXPECT_EQ(cacheExtExtraWays(cfg, way_bytes - 1), 0u);
    EXPECT_EQ(cacheExtExtraWays(cfg, way_bytes), 1u);
    EXPECT_EQ(cacheExtExtraWays(cfg, 10 * way_bytes + 17), 10u);
}

} // namespace
} // namespace lbsim
