/**
 * @file
 * Unit tests for the Greedy-Then-Oldest scheduler.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scheduler.hpp"

namespace lbsim
{
namespace
{

std::vector<Warp>
makeWarps(std::size_t count)
{
    std::vector<Warp> warps(count);
    for (std::size_t i = 0; i < count; ++i) {
        warps[i].smWarpId = static_cast<std::uint32_t>(i);
        warps[i].valid = true;
        warps[i].active = true;
        warps[i].launchOrder = i;
    }
    return warps;
}

/**
 * The stripe's slots in ascending launch order — what Sm::schedOrder_
 * maintains incrementally for each scheduler.
 */
std::vector<std::uint32_t>
orderOf(const std::vector<Warp> &warps, const GtoScheduler &sched)
{
    std::vector<std::uint32_t> order;
    for (const Warp &warp : warps) {
        if (sched.covers(warp.smWarpId))
            order.push_back(warp.smWarpId);
    }
    std::sort(order.begin(), order.end(),
              [&warps](std::uint32_t a, std::uint32_t b) {
                  return warps[a].launchOrder < warps[b].launchOrder;
              });
    return order;
}

const std::function<bool(const Warp &)> kAlwaysReady =
    [](const Warp &warp) { return warp.valid && warp.active &&
                                  !warp.finished; };

TEST(GtoScheduler, PicksOldestFirst)
{
    GtoScheduler sched(0, 1);
    auto warps = makeWarps(4);
    warps[0].launchOrder = 10;
    warps[1].launchOrder = 12;
    warps[2].launchOrder = 1; // Oldest.
    warps[3].launchOrder = 11;
    EXPECT_EQ(sched.pick(warps, orderOf(warps, sched), kAlwaysReady), 2);
}

TEST(GtoScheduler, GreedyStaysOnLastIssued)
{
    GtoScheduler sched(0, 1);
    auto warps = makeWarps(4);
    const std::int32_t first =
        sched.pick(warps, orderOf(warps, sched), kAlwaysReady);
    ASSERT_GE(first, 0);
    sched.issued(static_cast<std::uint32_t>(first));
    // Even if another warp is older by perturbation, greedy sticks.
    warps[3].launchOrder = 0;
    EXPECT_EQ(sched.pick(warps, orderOf(warps, sched), kAlwaysReady),
              first);
}

TEST(GtoScheduler, FallsBackToOldestWhenGreedyBlocked)
{
    GtoScheduler sched(0, 1);
    auto warps = makeWarps(4);
    sched.issued(1);
    const auto ready_except_1 = [](const Warp &warp) {
        return warp.smWarpId != 1;
    };
    EXPECT_EQ(sched.pick(warps, orderOf(warps, sched), ready_except_1),
              0);
}

TEST(GtoScheduler, HonorsStripeAssignment)
{
    // Scheduler 1 of 4 only sees slots 1, 5, 9, ...
    GtoScheduler sched(1, 4);
    auto warps = makeWarps(8);
    for (auto &warp : warps)
        warp.launchOrder += 100; // Slots outside the stripe are older...
    warps[1].launchOrder = 300;
    warps[5].launchOrder = 250; // ...but 5 is the stripe's oldest.
    const auto not_issued_yet = [](const Warp &warp) {
        return warp.valid;
    };
    EXPECT_EQ(sched.pick(warps, orderOf(warps, sched), not_issued_yet),
              5);
}

TEST(GtoScheduler, CoversMatchesStripe)
{
    GtoScheduler sched(2, 4);
    EXPECT_TRUE(sched.covers(2));
    EXPECT_TRUE(sched.covers(6));
    EXPECT_FALSE(sched.covers(0));
    EXPECT_FALSE(sched.covers(3));
}

TEST(GtoScheduler, ReturnsMinusOneWhenNothingReady)
{
    GtoScheduler sched(0, 1);
    auto warps = makeWarps(4);
    const auto nothing = [](const Warp &) { return false; };
    EXPECT_EQ(sched.pick(warps, orderOf(warps, sched), nothing), -1);
}

TEST(GtoScheduler, ResetForgetsGreedyPointer)
{
    GtoScheduler sched(0, 1);
    auto warps = makeWarps(4);
    for (auto &warp : warps)
        warp.launchOrder += 10;
    warps[3].launchOrder = 0; // Unambiguously oldest.
    sched.issued(1);
    sched.reset();
    EXPECT_EQ(sched.pick(warps, orderOf(warps, sched), kAlwaysReady), 3);
}

} // namespace
} // namespace lbsim
