/**
 * @file
 * Unit tests for the open-addressing FlatMap / FlatSet.
 *
 * The flat containers back the simulator's hottest lookup structures
 * (MSHR entries, pending L1 fills, partition pending reads, in-flight
 * LDST loads), so beyond the API basics the suite runs a randomized
 * insert/erase/lookup churn against a std::unordered_map oracle — the
 * workload shape that previously made the growth policy double the
 * table forever (tombstone accumulation) must stay at a bounded
 * capacity with identical contents.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/det.hpp"
#include "common/flat_map.hpp"

namespace lbsim
{
namespace
{

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), map.end());
    EXPECT_EQ(map.count(42), 0u);
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> map;
    map[7] = 70;
    EXPECT_EQ(map.size(), 1u);
    auto it = map.find(7);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->first, 7u);
    EXPECT_EQ(it->second, 70);
    EXPECT_EQ(map.erase(7), 1u);
    EXPECT_EQ(map.find(7), map.end());
    EXPECT_EQ(map.erase(7), 0u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map[5], 0);
    map[5] = 3;
    EXPECT_EQ(map.at(5), 3);
}

TEST(FlatMap, EmplaceReportsExisting)
{
    FlatMap<std::uint64_t, int> map;
    auto first = map.emplace(1, 10);
    EXPECT_TRUE(first.second);
    auto second = map.emplace(1, 20);
    EXPECT_FALSE(second.second);
    EXPECT_EQ(second.first->second, 10);
}

TEST(FlatMap, EraseByIteratorKeepsOthersReachable)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 64; ++k)
        map[k] = static_cast<int>(k);
    auto it = map.find(31);
    ASSERT_NE(it, map.end());
    map.erase(it);
    EXPECT_EQ(map.size(), 63u);
    for (std::uint64_t k = 0; k < 64; ++k) {
        if (k == 31)
            EXPECT_EQ(map.count(k), 0u);
        else
            EXPECT_EQ(map.at(k), static_cast<int>(k));
    }
}

TEST(FlatMap, IterationVisitsEveryLiveEntryOnce)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map[k * 3] = 1;
    for (std::uint64_t k = 0; k < 100; k += 2)
        map.erase(k * 3);
    std::unordered_set<std::uint64_t> seen;
    for (const auto &entry : map)
        EXPECT_TRUE(seen.insert(entry.first).second);
    EXPECT_EQ(seen.size(), map.size());
}

TEST(FlatMap, SortedKeysCompatible)
{
    FlatMap<std::uint64_t, int> map;
    map[9] = 1;
    map[4] = 1;
    map[7] = 1;
    const std::vector<std::uint64_t> keys = sortedKeys(map);
    const std::vector<std::uint64_t> expect = {4, 7, 9};
    EXPECT_EQ(keys, expect);
}

TEST(FlatMap, CollidingKeysProbeCorrectly)
{
    // Keys a power-of-two capacity apart land in the same bucket chain;
    // deletion in the middle must not hide the later key (tombstones).
    FlatMap<std::uint64_t, int> map;
    map.reserve(16);
    for (std::uint64_t k = 0; k < 8; ++k)
        map[k << 32] = static_cast<int>(k);
    map.erase(std::uint64_t{2} << 32);
    for (std::uint64_t k = 0; k < 8; ++k) {
        if (k == 2)
            continue;
        EXPECT_EQ(map.at(k << 32), static_cast<int>(k));
    }
}

TEST(FlatMap, ChurnDoesNotGrowCapacityUnbounded)
{
    // Steady-state churn at a small live size: the table must sweep its
    // tombstones instead of doubling forever.
    FlatMap<std::uint64_t, int> map;
    std::uint64_t next = 0;
    for (int i = 0; i < 8; ++i)
        map[next++] = 1;
    for (int round = 0; round < 100000; ++round) {
        map.erase(next - 8);
        map[next++] = 1;
    }
    EXPECT_EQ(map.size(), 8u);
    // 8 live entries fit comfortably in far less than 4 KB of slots.
    EXPECT_LT(map.capacity(), 256u);
}

TEST(FlatMap, ClearEmptiesAndStaysUsable)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 50; ++k)
        map[k] = 1;
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(10), map.end());
    map[10] = 2;
    EXPECT_EQ(map.at(10), 2);
}

TEST(FlatMap, RandomChurnMatchesUnorderedMapOracle)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    std::mt19937_64 rng(0xC0FFEEull); // Fixed seed: deterministic test.
    // Small key space forces constant hit/miss/overwrite mixing.
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 512);
    std::uniform_int_distribution<int> op_dist(0, 99);

    for (int step = 0; step < 200000; ++step) {
        const std::uint64_t key = key_dist(rng);
        const int op = op_dist(rng);
        if (op < 45) {
            const std::uint64_t value = rng();
            map[key] = value;
            oracle[key] = value;
        } else if (op < 65) {
            auto expected = oracle.emplace(key, step);
            auto actual = map.emplace(key, step);
            EXPECT_EQ(actual.second, expected.second);
            EXPECT_EQ(actual.first->second, expected.first->second);
        } else if (op < 90) {
            EXPECT_EQ(map.erase(key), oracle.erase(key));
        } else {
            const auto it = map.find(key);
            const auto oit = oracle.find(key);
            ASSERT_EQ(it == map.end(), oit == oracle.end());
            if (oit != oracle.end()) {
                EXPECT_EQ(it->second, oit->second);
            }
        }
        ASSERT_EQ(map.size(), oracle.size());
    }

    // Full-content audit at the end, both directions.
    for (const auto &entry : oracle)
        EXPECT_EQ(map.at(entry.first), entry.second);
    for (const auto &entry : map)
        EXPECT_EQ(oracle.at(entry.first), entry.second);
}

TEST(FlatSet, InsertCountErase)
{
    FlatSet<std::uint64_t> set;
    EXPECT_EQ(set.count(3), 0u);
    set.insert(3);
    set.insert(3);
    EXPECT_EQ(set.count(3), 1u);
    EXPECT_EQ(set.size(), 1u);
    EXPECT_EQ(set.erase(3), 1u);
    EXPECT_EQ(set.count(3), 0u);
}

TEST(FlatSet, SortedElementsCompatible)
{
    FlatSet<std::uint64_t> set;
    set.insert(30);
    set.insert(10);
    set.insert(20);
    const std::vector<std::uint64_t> elems = sortedElements(set);
    const std::vector<std::uint64_t> expect = {10, 20, 30};
    EXPECT_EQ(elems, expect);
}

TEST(FlatSet, RandomChurnMatchesUnorderedSetOracle)
{
    FlatSet<std::uint64_t> set;
    std::unordered_set<std::uint64_t> oracle;
    std::mt19937_64 rng(0xBADF00Dull);
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 256);

    for (int step = 0; step < 100000; ++step) {
        const std::uint64_t key = key_dist(rng);
        if (rng() % 2 == 0) {
            set.insert(key);
            oracle.insert(key);
        } else {
            EXPECT_EQ(set.erase(key), oracle.erase(key));
        }
        ASSERT_EQ(set.size(), oracle.size());
    }
    for (const std::uint64_t key : oracle)
        EXPECT_EQ(set.count(key), 1u);
    for (const std::uint64_t key : set)
        EXPECT_EQ(oracle.count(key), 1u);
}

} // namespace
} // namespace lbsim
