/**
 * @file
 * Tests for the 20-application benchmark suite (Table 2).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

TEST(Suite, HasTwentyAppsTenPerCategory)
{
    const auto &suite = benchmarkSuite();
    EXPECT_EQ(suite.size(), 20u);
    EXPECT_EQ(cacheSensitiveApps().size(), 10u);
    EXPECT_EQ(cacheInsensitiveApps().size(), 10u);
}

TEST(Suite, Table2AbbreviationsPresent)
{
    const std::set<std::string> expected = {
        "S2", "GE", "BI", "KM", "AT", "BC", "S1", "MV", "CF", "PF",
        "BG", "LI", "SR2", "SP", "BR", "FD", "GA", "SR1", "2D", "HS",
    };
    std::set<std::string> actual;
    for (const AppProfile &app : benchmarkSuite())
        actual.insert(app.id);
    EXPECT_EQ(actual, expected);
}

TEST(Suite, LookupByIdWorks)
{
    EXPECT_EQ(appById("KM").id, "KM");
    EXPECT_TRUE(appById("S2").cacheSensitive);
    EXPECT_FALSE(appById("HS").cacheSensitive);
}

TEST(SuiteDeath, LookupUnknownIdFails)
{
    EXPECT_DEATH(appById("XX"), "unknown application");
}

TEST(Suite, EveryProfileCompilesToValidKernel)
{
    GpuConfig cfg;
    for (const AppProfile &app : benchmarkSuite()) {
        const KernelInfo kernel = app.buildKernel(cfg);
        EXPECT_FALSE(kernel.body.empty()) << app.id;
        EXPECT_GT(kernel.numCtas, 0u) << app.id;
        // validate() would have fataled; reaching here means it passed.
        // Loads reference existing patterns.
        for (const StaticInst &inst : kernel.body) {
            if (inst.op == Opcode::Load || inst.op == Opcode::Store) {
                EXPECT_LT(inst.patternId, kernel.patterns.size())
                    << app.id;
            }
        }
    }
}

TEST(Suite, EveryProfileFitsOccupancyRules)
{
    GpuConfig cfg;
    for (const AppProfile &app : benchmarkSuite()) {
        const KernelInfo kernel = app.buildKernel(cfg);
        // At least one CTA must fit on an SM.
        EXPECT_LE(kernel.regsPerCta(), cfg.totalWarpRegisters())
            << app.id;
        EXPECT_LE(kernel.warpsPerCta, cfg.maxWarpsPerSm) << app.id;
        EXPECT_LE(kernel.sharedMemPerCta, cfg.sharedMemBytesPerSm)
            << app.id;
    }
}

TEST(Suite, DistinctPcsPerStaticInstruction)
{
    GpuConfig cfg;
    for (const AppProfile &app : benchmarkSuite()) {
        const KernelInfo kernel = app.buildKernel(cfg);
        std::set<Pc> pcs;
        for (const StaticInst &inst : kernel.body)
            EXPECT_TRUE(pcs.insert(inst.pc).second) << app.id;
    }
}

TEST(Suite, SensitiveAppsCarryReuseOrHotIrregularLoads)
{
    for (const AppProfile &app : cacheSensitiveApps()) {
        bool has_locality = false;
        for (const LoadSpec &load : app.loads) {
            if (load.cls == LoadClass::Reuse ||
                (load.cls == LoadClass::Irregular && load.hotLines > 0)) {
                has_locality = true;
            }
        }
        EXPECT_TRUE(has_locality) << app.id;
    }
}

TEST(Suite, KernelsAreDeterministic)
{
    GpuConfig cfg;
    const AppProfile &app = appById("BC");
    const KernelInfo a = app.buildKernel(cfg);
    const KernelInfo b = app.buildKernel(cfg);
    ASSERT_EQ(a.body.size(), b.body.size());
    // Same pattern objects produce the same addresses.
    AccessContext ctx;
    ctx.globalCtaId = 3;
    ctx.warpInCta = 2;
    ctx.iteration = 17;
    std::vector<Addr> la, lb_;
    a.patterns[0]->generate(ctx, la);
    b.patterns[0]->generate(ctx, lb_);
    EXPECT_EQ(la, lb_);
}

} // namespace
} // namespace lbsim
