/**
 * @file
 * Unit tests for the set-associative LRU tag array.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/tag_array.hpp"

namespace lbsim
{
namespace
{

Addr
lineAddr(std::uint64_t line)
{
    return line * kLineBytes;
}

TEST(TagArray, MissesWhenEmpty)
{
    TagArray tags(48, 8);
    EXPECT_FALSE(tags.access(lineAddr(3), 0, 1));
    EXPECT_FALSE(tags.probe(lineAddr(3)));
}

TEST(TagArray, HitAfterInsert)
{
    TagArray tags(48, 8);
    EXPECT_FALSE(tags.insert(lineAddr(3), 7, 1).has_value());
    EXPECT_TRUE(tags.probe(lineAddr(3)));
    EXPECT_TRUE(tags.access(lineAddr(3), 7, 2));
}

TEST(TagArray, HpcFieldTracksLastToucher)
{
    TagArray tags(48, 8);
    tags.insert(lineAddr(5), 3, 1);
    ASSERT_TRUE(tags.lineHpc(lineAddr(5)).has_value());
    EXPECT_EQ(*tags.lineHpc(lineAddr(5)), 3);
    tags.access(lineAddr(5), 9, 2);
    EXPECT_EQ(*tags.lineHpc(lineAddr(5)), 9);
}

TEST(TagArray, EvictsLruWithinSet)
{
    TagArray tags(4, 2); // Tiny geometry: set = line % 4.
    // Two lines mapping to set 0: lines 0 and 4.
    tags.insert(lineAddr(0), 1, 10);
    tags.insert(lineAddr(4), 2, 20);
    // Touch line 0 so line 4 becomes LRU.
    tags.access(lineAddr(0), 1, 30);
    const auto evicted = tags.insert(lineAddr(8), 3, 40);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->lineAddr, lineAddr(4));
    EXPECT_EQ(evicted->hpc, 2);
    EXPECT_TRUE(tags.probe(lineAddr(0)));
    EXPECT_FALSE(tags.probe(lineAddr(4)));
    EXPECT_TRUE(tags.probe(lineAddr(8)));
}

TEST(TagArray, EvictionOrderGolden)
{
    // Pinned ahead of the structure-of-arrays tag-plane relayout: the
    // exact eviction sequence for a scripted access pattern, including
    // the lowest-way tie-break on equal LRU timestamps and slot reuse
    // after invalidation. Any layout change must reproduce this
    // sequence field for field.
    TagArray tags(2, 2); // set = line % 2
    EXPECT_FALSE(tags.insert(lineAddr(0), 1, 10, 11).has_value());
    EXPECT_FALSE(tags.insert(lineAddr(2), 2, 11, 12).has_value());
    EXPECT_FALSE(tags.insert(lineAddr(1), 3, 12, 13).has_value());
    EXPECT_FALSE(tags.insert(lineAddr(3), 4, 13, 14).has_value());

    // Plain LRU: line 0 (lastUse 10) leaves set 0 first, carrying the
    // hpc/owner it was filled with.
    auto ev = tags.insert(lineAddr(4), 5, 20);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, lineAddr(0));
    EXPECT_EQ(ev->hpc, 1);
    EXPECT_EQ(ev->owner, 11);

    // access() refreshes LRU state: touching line 2 makes line 4 the
    // next victim.
    EXPECT_TRUE(tags.access(lineAddr(2), 6, 30));
    ev = tags.insert(lineAddr(6), 7, 40);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, lineAddr(4));
    EXPECT_EQ(ev->hpc, 5);

    // A resident refill refreshes in place without displacing anyone,
    // so line 6 (lastUse 40) is the victim after line 2's refill at 50.
    EXPECT_FALSE(tags.insert(lineAddr(2), 8, 50).has_value());
    ev = tags.insert(lineAddr(8), 9, 60);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, lineAddr(6));
    EXPECT_EQ(ev->hpc, 7);

    // Equal timestamps break toward the lowest way: set 1 still holds
    // line 1 (way 0) and line 3 (way 1); touch both at cycle 70.
    EXPECT_TRUE(tags.access(lineAddr(1), 3, 70));
    EXPECT_TRUE(tags.access(lineAddr(3), 4, 70));
    ev = tags.insert(lineAddr(5), 10, 80);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, lineAddr(1));

    // invalidate() reopens the slot: the next fill of set 1 takes the
    // freed way silently, and the one after evicts the older of the
    // survivors (line 5, lastUse 80, vs line 7, lastUse 90).
    EXPECT_TRUE(tags.invalidate(lineAddr(3)));
    EXPECT_FALSE(tags.insert(lineAddr(7), 11, 90).has_value());
    ev = tags.insert(lineAddr(9), 12, 100);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, lineAddr(5));
    EXPECT_EQ(ev->hpc, 10);

    tags.audit(100);
}

TEST(TagArray, ReinsertRefreshesInsteadOfDuplicating)
{
    TagArray tags(4, 2);
    tags.insert(lineAddr(0), 1, 1);
    tags.insert(lineAddr(0), 1, 2);
    EXPECT_EQ(tags.validLines(), 1u);
}

TEST(TagArray, InvalidateRemovesLine)
{
    TagArray tags(48, 8);
    tags.insert(lineAddr(17), 0, 1);
    EXPECT_TRUE(tags.invalidate(lineAddr(17)));
    EXPECT_FALSE(tags.probe(lineAddr(17)));
    EXPECT_FALSE(tags.invalidate(lineAddr(17)));
}

TEST(TagArray, InvalidateAllEmptiesArray)
{
    TagArray tags(8, 4);
    for (std::uint64_t i = 0; i < 32; ++i)
        tags.insert(lineAddr(i), 0, i);
    EXPECT_EQ(tags.validLines(), 32u);
    tags.invalidateAll();
    EXPECT_EQ(tags.validLines(), 0u);
}

TEST(TagArray, DistinctSetsDoNotInterfere)
{
    TagArray tags(4, 1);
    tags.insert(lineAddr(0), 0, 1); // set 0
    tags.insert(lineAddr(1), 0, 1); // set 1
    tags.insert(lineAddr(2), 0, 1); // set 2
    tags.insert(lineAddr(3), 0, 1); // set 3
    EXPECT_EQ(tags.validLines(), 4u);
    // Inserting into set 0 again evicts only set 0's line.
    const auto evicted = tags.insert(lineAddr(4), 0, 2);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->lineAddr, lineAddr(0));
    EXPECT_TRUE(tags.probe(lineAddr(1)));
}

TEST(TagArray, GeometryFromCacheConfig)
{
    CacheGeometry geom{48 * 1024, 8, 128};
    TagArray tags(geom);
    EXPECT_EQ(tags.sets(), 48u);
    EXPECT_EQ(tags.ways(), 8u);
}

/** Property: occupancy never exceeds sets x ways under random traffic. */
class TagArrayGeometry
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(TagArrayGeometry, OccupancyBoundedUnderRandomTraffic)
{
    const auto [sets, ways] = GetParam();
    TagArray tags(sets, ways);
    Rng rng(sets * 1000 + ways);
    for (Cycle now = 0; now < 5000; ++now) {
        const Addr addr = lineAddr(rng.below(4096));
        if (!tags.access(addr, 0, now))
            tags.insert(addr, 0, now);
        ASSERT_LE(tags.validLines(), sets * ways);
    }
    // Steady state: a working set much larger than capacity fills it.
    EXPECT_EQ(tags.validLines(), sets * ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagArrayGeometry,
    ::testing::Values(std::pair{4u, 1u}, std::pair{4u, 2u},
                      std::pair{16u, 4u}, std::pair{48u, 8u},
                      std::pair{48u, 32u}));

} // namespace
} // namespace lbsim
