// Fixture: raw concurrency primitives the lbsim-cross-domain check
// must flag. Model code may synchronize only at the annotated
// interconnect barrier (DESIGN.md §13); ad-hoc std:: primitives
// reintroduce thread-count dependence that -Wthread-safety cannot see.

#include <atomic>
#include <future>
#include <mutex>
#include <thread>

struct ShardScratch
{
    std::atomic<unsigned> retired{0}; // EXPECT(lbsim-cross-domain)
    std::mutex lock;                  // EXPECT(lbsim-cross-domain)
};

void
tickAllSms(ShardScratch &scratch)
{
    std::thread worker([&scratch] { // EXPECT(lbsim-cross-domain)
        scratch.retired.fetch_add(1);
    });
    std::atomic_thread_fence(std::memory_order_seq_cst); // EXPECT(lbsim-cross-domain)
    worker.join();
}

int
prefetchOffThread()
{
    auto pending = std::async([] { return 42; }); // EXPECT(lbsim-cross-domain)
    return pending.get();
}

struct DrainGate
{
    std::condition_variable readyCv; // EXPECT(lbsim-cross-domain)
    std::promise<void> drained;      // EXPECT(lbsim-cross-domain)
};
