// Fixture: counterpart of bad_stat_registry.cpp — the visitor walks
// every field, including the fields of a nested breakdown struct.
// Must be silent.

#include <cstdint>

struct LevelStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

struct TierStats
{
    std::uint64_t accesses = 0;
    LevelStats l1;
};

template <typename Fn>
void
forEachStatField(TierStats &s, Fn &&fn)
{
    fn("accesses", s.accesses);
    fn("l1.hits", s.l1.hits);
    fn("l1.misses", s.l1.misses);
}
