// Fixture: deterministic counterpart of bad_unordered_walk.cpp.
// Order-visible walks run over ordered containers; the only unordered
// walk left is an order-insensitive any-of read. Must be silent.

#include <cstdint>
#include <map>
#include <unordered_map>

struct GoodCounters
{
    std::unordered_map<std::uint64_t, std::uint64_t> perLine_;
    std::map<std::uint64_t, std::uint64_t> ordered_;
    std::uint64_t total_ = 0;

    // Order-insensitive any-of read: no state, stats or output derive
    // from the walk order, so the unordered iteration is fine.
    bool
    busy() const
    {
        for (const auto &entry : perLine_) {
            if (entry.second != 0)
                return true;
        }
        return false;
    }

    void
    drainOrdered()
    {
        for (const auto &entry : ordered_)
            total_ += entry.second;
    }
};
