// Fixture: uninitialized scalar members of value structs (the name
// suffix opts a struct into the rule). Reading the indeterminate
// bytes poisons memo-cache keys, serialized replays and stat diffs.

#include <cstdint>

struct VictimCacheGeometry
{
    std::uint32_t numSets; // EXPECT(lbsim-uninit-field)
    std::uint32_t numWays = 8;
    double hitLatency; // EXPECT(lbsim-uninit-field)
};

struct ReplayOptions
{
    bool enabled; // EXPECT(lbsim-uninit-field)
    const char* tracePath; // EXPECT(lbsim-uninit-field)
    int verbosity = 0;
};
