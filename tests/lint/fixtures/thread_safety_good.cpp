// Fixture: correct use of the thread-safety capability annotations.
// Compiled (syntax only) with clang -Wthread-safety -Werror by
// check_lint.py; the build must succeed with no diagnostics.

#include "common/thread_safety.hpp"

class GoodCounter
{
  public:
    void
    increment()
    {
        lbsim::MutexLock lock(mu_);
        bump();
    }

    int
    value() const
    {
        lbsim::MutexLock lock(mu_);
        return value_;
    }

  private:
    void bump() LB_REQUIRES(mu_) { ++value_; }

    mutable lbsim::Mutex mu_;
    int value_ LB_GUARDED_BY(mu_) = 0;
};

class GoodDomain
{
  public:
    void
    tick()
    {
        lbsim::SeqGuard guard(domain_);
        ++cycle_;
    }

  private:
    mutable lbsim::SeqDomain domain_;
    unsigned long long cycle_ LB_GUARDED_BY(domain_) = 0;
};

int
main()
{
    GoodCounter counter;
    counter.increment();
    GoodDomain domain;
    domain.tick();
    return counter.value();
}
