// Fixture: correct use of the thread-safety capability annotations.
// Compiled (syntax only) with clang -Wthread-safety -Werror by
// check_lint.py; the build must succeed with no diagnostics.

#include "common/thread_safety.hpp"

class GoodCounter
{
  public:
    void
    increment()
    {
        lbsim::MutexLock lock(mu_);
        bump();
    }

    int
    value() const
    {
        lbsim::MutexLock lock(mu_);
        return value_;
    }

  private:
    void bump() LB_REQUIRES(mu_) { ++value_; }

    mutable lbsim::Mutex mu_;
    int value_ LB_GUARDED_BY(mu_) = 0;
};

class GoodDomain
{
  public:
    void
    tick()
    {
        lbsim::SeqGuard guard(domain_);
        ++cycle_;
    }

  private:
    mutable lbsim::SeqDomain domain_;
    unsigned long long cycle_ LB_GUARDED_BY(domain_) = 0;
};

// Staging-lane pattern from the parallel tick engine (DESIGN.md §13):
// each SM stages into its own lane under the lane's domain during the
// SM phase; the serial phase drains every lane at the barrier.
class GoodStagingLane
{
  public:
    void
    stage(int request)
    {
        lbsim::SeqGuard guard(domain_);
        staged_[depth_++ % kDepth] = request;
    }

    int
    drainAtBarrier()
    {
        lbsim::SeqGuard guard(domain_);
        const int drained = static_cast<int>(depth_);
        depth_ = 0;
        return drained;
    }

  private:
    static constexpr unsigned kDepth = 4;
    mutable lbsim::SeqDomain domain_;
    int staged_[kDepth] LB_GUARDED_BY(domain_) = {};
    unsigned depth_ LB_GUARDED_BY(domain_) = 0;
};

int
main()
{
    GoodCounter counter;
    counter.increment();
    GoodDomain domain;
    domain.tick();
    GoodStagingLane lane;
    lane.stage(1);
    lane.drainAtBarrier();
    return counter.value();
}
