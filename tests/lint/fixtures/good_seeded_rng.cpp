// Fixture: deterministic counterpart of bad_nondet_calls.cpp — all
// randomness flows from an explicit seed carried in a config struct.
// Must be silent under every check.

#include <cstdint>
#include <random>

struct RngConfig
{
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

std::uint64_t
seededDraw(const RngConfig &cfg)
{
    std::mt19937_64 rng(cfg.seed);
    return rng();
}

std::uint64_t
simulatedClock(std::uint64_t cycle)
{
    return cycle + 1;
}
