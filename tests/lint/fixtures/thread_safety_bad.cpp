// Fixture: thread-safety capability violations. Compiled (syntax
// only) with clang -Wthread-safety -Werror by check_lint.py; the
// build MUST fail. Under gcc the annotations expand to nothing, so
// the runner skips this fixture when no clang is available.

#include "common/thread_safety.hpp"

class BadCounter
{
  public:
    void
    incrementUnlocked()
    {
        ++value_; // guarded member touched without holding mu_
    }

    void
    lockWithoutUnlock()
    {
        mu_.lock(); // never released on this path
        ++value_;
    }

  private:
    lbsim::Mutex mu_;
    int value_ LB_GUARDED_BY(mu_) = 0;
};

int
main()
{
    BadCounter counter;
    counter.incrementUnlocked();
    counter.lockWithoutUnlock();
    return 0;
}
