// Fixture: thread-safety capability violations. Compiled (syntax
// only) with clang -Wthread-safety -Werror by check_lint.py; the
// build MUST fail. Under gcc the annotations expand to nothing, so
// the runner skips this fixture when no clang is available.

#include "common/thread_safety.hpp"

class BadCounter
{
  public:
    void
    incrementUnlocked()
    {
        ++value_; // guarded member touched without holding mu_
    }

    void
    lockWithoutUnlock()
    {
        mu_.lock(); // never released on this path
        ++value_;
    }

  private:
    lbsim::Mutex mu_;
    int value_ LB_GUARDED_BY(mu_) = 0;
};

// Staging lane accessed outside its domain: the SM phase writing a
// lane without entering its SeqDomain is exactly the race the
// parallel tick engine's annotations exist to reject.
class BadStagingLane
{
  public:
    void
    stageUnguarded(int request)
    {
        staged_ = request; // lane written without SeqGuard(domain_)
    }

  private:
    mutable lbsim::SeqDomain domain_;
    int staged_ LB_GUARDED_BY(domain_) = 0;
};

int
main()
{
    BadCounter counter;
    counter.incrementUnlocked();
    counter.lockWithoutUnlock();
    BadStagingLane lane;
    lane.stageUnguarded(2);
    return 0;
}
