// Fixture: counterpart of bad_uninit_field.cpp — every scalar member
// of a suffix-matched value struct carries an in-class initializer,
// and non-suffixed working structs are exempt. Must be silent.

#include <cstdint>
#include <string>
#include <vector>

struct GoodCacheGeometry
{
    std::uint32_t numSets = 64;
    std::uint32_t numWays = 8;
    double hitLatency = 1.0;
    std::string name;
    std::vector<std::uint32_t> wayMask;
};

struct GoodReplayOptions
{
    bool enabled = false;
    const char* tracePath = nullptr;
    int verbosity = 0;
};

// Not a *Config/*Stats/... struct: transient working state is exempt.
struct ScratchEntry
{
    std::uint64_t line;
    std::uint32_t age;
};
