// Fixture: ordered associative containers keyed on pointer values.
// Iteration order follows the allocator, so address-space layout
// (ASLR, malloc history) leaks into anything derived from a walk.

#include <map>
#include <set>

class StreamingMultiprocessor;

struct WaiterTable
{
    std::map<StreamingMultiprocessor *, int> waiters_; // EXPECT(lbsim-nondeterminism)
    std::set<const StreamingMultiprocessor *> parked_; // EXPECT(lbsim-nondeterminism)
};
