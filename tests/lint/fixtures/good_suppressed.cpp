// Fixture: NOLINT suppression. Each would-be finding is silenced by a
// NOLINT / NOLINTNEXTLINE comment naming the check, so this file must
// come out clean under both backends.

#include <cstdlib>

int
suppressedSameLine()
{
    return std::rand(); // NOLINT(lbsim-nondeterminism) fixture: suppression demo
}

int
suppressedNextLine()
{
    // NOLINTNEXTLINE(lbsim-nondeterminism)
    return std::rand();
}

struct SuppressedOptions
{
    int verbosity; // NOLINT(lbsim-uninit-field)
};
