// Fixture: every nondeterminism *source* the lbsim-nondeterminism
// check must flag. Trailing EXPECT(check) comments are the oracle the
// check_lint.py runner compares both backends against.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int
unseededDraw()
{
    return std::rand(); // EXPECT(lbsim-nondeterminism)
}

long
wallClockSeconds()
{
    return std::time(nullptr); // EXPECT(lbsim-nondeterminism)
}

const char *
readEnvironment()
{
    return std::getenv("LBSIM_MODE"); // EXPECT(lbsim-nondeterminism)
}

unsigned
hardwareEntropy()
{
    std::random_device entropy; // EXPECT(lbsim-nondeterminism)
    return entropy();
}

long long
chronoNowTicks()
{
    const auto now = std::chrono::steady_clock::now(); // EXPECT(lbsim-nondeterminism)
    return now.time_since_epoch().count();
}
