// Fixture: deterministic counterpart of bad_pointer_key.cpp — the
// tables are keyed on stable integer ids instead of object addresses.
// Must be silent.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct GoodWaiterTable
{
    std::map<std::uint32_t, int> waitersBySm_;
    std::set<std::uint32_t> parkedSms_;
    std::vector<int> perSmCredit_;
};
