// Fixture: model-style code with no raw concurrency primitives; the
// lbsim-cross-domain check must stay silent. Cross-SM traffic goes
// through explicit per-SM staging lanes drained in SM-index order at
// the serial barrier, so the model never touches std::thread or
// std::atomic — the engine's worker pool lives outside model dirs.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

struct StagedRequest
{
    std::uint32_t smId = 0;
    std::uint64_t addr = 0;
};

class StagingLanes
{
  public:
    explicit StagingLanes(std::size_t sms) : lanes_(sms) {}

    /** SM phase: each SM appends only to its own lane. */
    void stage(const StagedRequest &req)
    {
        lanes_[req.smId].push_back(req);
    }

    /** Serial phase: drain lanes in SM-index order at the barrier. */
    std::vector<StagedRequest> drainInOrder()
    {
        std::vector<StagedRequest> drained;
        for (std::deque<StagedRequest> &lane : lanes_) {
            for (const StagedRequest &req : lane)
                drained.push_back(req);
            lane.clear();
        }
        return drained;
    }

  private:
    std::vector<std::deque<StagedRequest>> lanes_;
};
