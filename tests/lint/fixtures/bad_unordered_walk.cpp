// Fixture: range-for over unordered containers whose bodies have
// order-visible effects (state mutation, output). Both backends must
// flag each loop header line.

#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

struct Counters
{
    std::unordered_map<std::uint64_t, std::uint64_t> perLine_;
    std::unordered_set<std::uint64_t> dirty_;
    std::uint64_t total_ = 0;

    std::uint64_t
    drain()
    {
        std::uint64_t sum = 0;
        for (const auto &entry : perLine_) { // EXPECT(lbsim-nondeterminism)
            total_ += entry.second;
            sum = total_;
        }
        return sum;
    }

    void
    dump() const
    {
        for (const auto &entry : perLine_) { // EXPECT(lbsim-nondeterminism)
            std::printf("%llu\n",
                        static_cast<unsigned long long>(entry.second));
        }
    }

    void
    flush(std::unordered_map<std::uint64_t, std::uint64_t> &out)
    {
        for (const std::uint64_t line : dirty_) { // EXPECT(lbsim-nondeterminism)
            out.insert({line, perLine_[line]});
        }
    }
};
