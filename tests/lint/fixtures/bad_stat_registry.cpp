// Fixture: a *Stats struct whose forEachStatField visitor misses
// fields. A missed field silently drops out of serialization,
// memo-cache keys and golden/lockstep stat diffs.

#include <cstdint>

struct QueueStats
{
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t highWater = 0; // EXPECT(lbsim-stat-registry)
    std::uint64_t stallCycles = 0; // EXPECT(lbsim-stat-registry)
};

template <typename Fn>
void
forEachStatField(QueueStats &s, Fn &&fn)
{
    fn("enqueued", s.enqueued);
    fn("dequeued", s.dequeued);
}
