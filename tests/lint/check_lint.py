#!/usr/bin/env python3
"""Fixture-driven tests for the lbsim lint suite.

The oracle is embedded in the fixtures themselves: every line that a
check must flag carries a trailing `// EXPECT(check-name)` comment, and
a fixture with no EXPECT comments must come out silent. The same corpus
drives both backends, which is what keeps them behaviourally aligned:

  fixtures                 run tools/lint/lbsim_lint.py (the portable
                           python backend) over the corpus and compare
                           (file, line, check) triples against EXPECTs
  fixtures --backend tidy  same corpus through stock clang-tidy with
                           the lbsim plugin (--plugin liblbsim-tidy.so)
  tree                     run the python backend over the real source
                           tree with production settings; any finding
                           fails (the tree is kept finding-clean)
  thread-safety            compile the thread_safety_{good,bad}.cpp
                           fixtures with clang -Wthread-safety -Werror;
                           good must pass, bad must fail. Exits 77
                           (ctest SKIP_RETURN_CODE) when no clang is
                           on the PATH.

Exit status: 0 pass, 1 fail, 77 skipped, 2 usage/environment error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXTURE_DIR = os.path.join(HERE, "fixtures")
LINT_PY = os.path.join(REPO, "tools", "lint", "lbsim_lint.py")

EXPECT_RE = re.compile(r"//\s*EXPECT\(([\w-]+)\)")
FINDING_RE = re.compile(r"^(.+?):(\d+):\d+:\s+warning:.*\[([\w-]+)\]")

SKIP = 77


def lint_fixtures():
    """Fixture files for the lint checks (thread-safety fixtures are
    compile tests, not lint inputs)."""
    names = sorted(f for f in os.listdir(FIXTURE_DIR)
                   if f.endswith(".cpp")
                   and not f.startswith("thread_safety"))
    return [os.path.join(FIXTURE_DIR, f) for f in names]


def expectations(paths):
    expected = set()
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, start=1):
                for m in EXPECT_RE.finditer(line):
                    expected.add((os.path.basename(path), line_no,
                                  m.group(1)))
    return expected


def parse_findings(output):
    found = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line.strip())
        if m:
            found.add((os.path.basename(m.group(1)), int(m.group(2)),
                       m.group(3)))
    return found


def compare(expected, found, label):
    missing = sorted(expected - found)
    surplus = sorted(found - expected)
    for item in missing:
        print("MISSING  %s:%d [%s]  (%s backend did not report it)"
              % (item[0], item[1], item[2], label))
    for item in surplus:
        print("SURPLUS  %s:%d [%s]  (%s backend reported it, no EXPECT)"
              % (item[0], item[1], item[2], label))
    if missing or surplus:
        return 1
    print("PASS: %s backend matched all %d expectations"
          % (label, len(expected)))
    return 0


def run_python_backend(paths):
    cmd = [sys.executable, LINT_PY, "--model-dirs", ""] + paths
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stderr)
        print("python backend exited %d" % proc.returncode)
        return None
    return proc.stdout


def run_tidy_backend(paths, plugin, clang_tidy):
    if not os.path.exists(plugin):
        print("plugin %s not found" % plugin)
        return None
    config = ("{Checks: '-*,lbsim-*', CheckOptions: "
              "[{key: lbsim-nondeterminism.ModelDirs, value: ''}, "
              "{key: lbsim-cross-domain.ModelDirs, value: ''}]}")
    out = []
    for path in paths:
        cmd = [clang_tidy, "--load", plugin, "--config", config,
               path, "--", "-std=c++17"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        # clang-tidy exits nonzero on warnings-as-errors and on compile
        # errors; a compile error in a fixture is a test bug.
        if "error:" in proc.stdout or "error:" in proc.stderr:
            sys.stderr.write(proc.stdout + proc.stderr)
            print("clang-tidy failed to parse %s" % path)
            return None
        out.append(proc.stdout)
    return "\n".join(out)


def cmd_fixtures(args):
    paths = lint_fixtures()
    if not paths:
        print("no fixtures under %s" % FIXTURE_DIR)
        return 2
    expected = expectations(paths)
    if args.backend == "python":
        output = run_python_backend(paths)
    else:
        output = run_tidy_backend(paths, args.plugin, args.clang_tidy)
    if output is None:
        return 2
    return compare(expected, parse_findings(output), args.backend)


def cmd_tree(_args):
    files = []
    for root, dirs, names in os.walk(os.path.join(REPO, "src")):
        dirs.sort()
        for name in sorted(names):
            if name.endswith((".cpp", ".hpp", ".h")):
                files.append(os.path.relpath(
                    os.path.join(root, name), REPO))
    cmd = [sys.executable, LINT_PY] + files
    proc = subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)
    if proc.returncode == 0:
        print("PASS: source tree is finding-clean (%d files)"
              % len(files))
        return 0
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    print("FAIL: the tree must stay finding-clean; fix the findings "
          "above or suppress with // NOLINT(check) and a rationale")
    return 1


def cmd_thread_safety(args):
    compiler = args.compiler or shutil.which("clang++")
    if not compiler or not shutil.which(compiler):
        print("SKIP: no clang++ on PATH (thread-safety analysis is "
              "clang-only)")
        return SKIP
    base = [compiler, "-fsyntax-only", "-std=c++20", "-Wthread-safety",
            "-Werror", "-I", os.path.join(REPO, "src")]
    good = os.path.join(FIXTURE_DIR, "thread_safety_good.cpp")
    bad = os.path.join(FIXTURE_DIR, "thread_safety_bad.cpp")

    proc = subprocess.run(base + [good], capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print("FAIL: thread_safety_good.cpp must compile cleanly")
        return 1

    proc = subprocess.run(base + [bad], capture_output=True, text=True)
    if proc.returncode == 0:
        print("FAIL: thread_safety_bad.cpp compiled; -Wthread-safety "
              "did not fire")
        return 1
    if "thread-safety" not in proc.stderr:
        sys.stderr.write(proc.stderr)
        print("FAIL: thread_safety_bad.cpp failed for a reason other "
              "than -Wthread-safety")
        return 1
    print("PASS: -Wthread-safety accepts the good fixture and rejects "
          "the bad one")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="mode", required=True)

    fx = sub.add_parser("fixtures", help="fixture corpus vs. EXPECTs")
    fx.add_argument("--backend", choices=("python", "tidy"),
                    default="python")
    fx.add_argument("--plugin", default="",
                    help="path to liblbsim-tidy.so (tidy backend)")
    fx.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy binary (tidy backend)")
    fx.set_defaults(func=cmd_fixtures)

    tr = sub.add_parser("tree", help="whole-tree finding-clean check")
    tr.set_defaults(func=cmd_tree)

    ts = sub.add_parser("thread-safety",
                        help="clang -Wthread-safety fixture compile")
    ts.add_argument("--compiler", default="",
                    help="clang++ binary (default: first on PATH)")
    ts.set_defaults(func=cmd_thread_safety)

    args = ap.parse_args(argv)
    if args.mode == "fixtures" and args.backend == "tidy" \
            and not args.plugin:
        ap.error("--backend tidy requires --plugin")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
