/**
 * @file
 * Integration tests for the Linebacker mechanism on a live SM.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/gpu.hpp"
#include "lb/linebacker.hpp"
#include "testing/lockstep.hpp"
#include "testing/ref_cache.hpp"
#include "workload/pattern.hpp"

namespace lbsim
{
namespace
{

/** A kernel with one high-reuse load and one streaming load. */
KernelInfo
mixedKernel(std::uint32_t tile_lines, std::uint32_t warps_per_cta,
            std::uint32_t regs_per_warp, std::uint32_t num_ctas)
{
    KernelInfo kernel;
    kernel.name = "mixed";
    kernel.warpsPerCta = warps_per_cta;
    kernel.regsPerWarp = regs_per_warp;
    kernel.iterations = 1000000; // Effectively unbounded.
    kernel.numCtas = num_ctas;
    kernel.patterns.push_back(std::make_shared<TiledReusePattern>(
        Addr{1} << 38, tile_lines, TileScope::PerCta, warps_per_cta));
    kernel.patterns.push_back(
        std::make_shared<StreamingPattern>(Addr{2} << 38, warps_per_cta));

    StaticInst tile_load;
    tile_load.op = Opcode::Load;
    tile_load.pc = 0;
    tile_load.patternId = 0;
    kernel.body.push_back(tile_load);
    StaticInst stream_load;
    stream_load.op = Opcode::Load;
    stream_load.pc = 4;
    stream_load.patternId = 1;
    kernel.body.push_back(stream_load);
    StaticInst use;
    use.op = Opcode::Alu;
    use.pc = 8;
    use.dependsOnLoads = true;
    use.stallCycles = 4;
    kernel.body.push_back(use);
    return kernel;
}

struct LinebackerFixture : ::testing::Test
{
    void
    build(const SchemeConfig &scheme, std::uint32_t tile_lines = 512,
          std::uint32_t regs_per_warp = 32)
    {
        cfg = GpuConfig{}.scaleTo(1);
        cfg.maxCycles = 400000;
        gpu = std::make_unique<Gpu>(cfg);
        lbu = std::make_unique<Linebacker>(cfg, lb, scheme, &gpu->sm(0),
                                           &gpu->stats());
        gpu->setControllers({lbu.get()});
        kernel = mixedKernel(tile_lines, 16, regs_per_warp, 64);
    }

    GpuConfig cfg;
    LbConfig lb;
    std::unique_ptr<Gpu> gpu;
    std::unique_ptr<Linebacker> lbu;
    KernelInfo kernel;
};

TEST_F(LinebackerFixture, SelectsReuseLoadNotStream)
{
    build(SchemeConfig::linebacker());
    gpu->runKernel(kernel);
    ASSERT_EQ(lbu->loadMonitor().state(), MonitorState::Selected);
    EXPECT_TRUE(lbu->loadMonitor().isSelected(hashedPc(0)));
    EXPECT_FALSE(lbu->loadMonitor().isSelected(hashedPc(4)));
}

TEST_F(LinebackerFixture, ProducesVictimHits)
{
    build(SchemeConfig::linebacker());
    const SimStats &stats = gpu->runKernel(kernel);
    EXPECT_GT(stats.victimLinesStored, 0u);
    EXPECT_GT(stats.l1.regHits, 0u);
}

TEST_F(LinebackerFixture, ThrottlingBacksUpRegisters)
{
    build(SchemeConfig::linebacker());
    const SimStats &stats = gpu->runKernel(kernel);
    EXPECT_GT(stats.ctaThrottleEvents, 0u);
    EXPECT_GT(stats.dramBackupWrites, 0u);
    // Backup traffic is whole register images.
    EXPECT_EQ(stats.dramBackupWrites % kernel.regsPerCta(), 0u);
}

TEST_F(LinebackerFixture, VictimSpaceRespectsIdleRegisters)
{
    build(SchemeConfig::linebacker());
    gpu->runKernel(kernel);
    const std::uint32_t backing =
        lbu->vtt().activePartitions() * lbu->vtt().sets() *
        lbu->vtt().ways();
    // Every active partition must be backed by idle registers above the
    // victim offset.
    const RegisterFile &rf = gpu->sm(0).regFile();
    std::uint32_t idle = rf.freeRegsAbove(lb.victimRegOffset);
    for (const Cta &cta : gpu->sm(0).ctas()) {
        if (cta.valid && !cta.active)
            idle += cta.numRegs;
    }
    EXPECT_LE(backing, idle);
}

TEST_F(LinebackerFixture, SvcWithoutThrottlingUsesOnlyStaticSpace)
{
    // 8 regs/warp x 16 warps x 4 CTAs = 512 regs: 1536 statically free.
    build(SchemeConfig::selectiveVictimCaching(), 512, 8);
    const SimStats &stats = gpu->runKernel(kernel);
    EXPECT_EQ(stats.ctaThrottleEvents, 0u);
    EXPECT_EQ(stats.dramBackupWrites, 0u);
    EXPECT_GT(stats.l1.regHits, 0u);
}

TEST_F(LinebackerFixture, VictimCachingAllSkipsMonitoring)
{
    build(SchemeConfig::victimCachingAll(), 512, 8);
    const SimStats &stats = gpu->runKernel(kernel);
    // Victim space engages immediately (no 2-window delay) and also
    // stores streaming lines.
    EXPECT_GT(stats.victimLinesStored, 0u);
    EXPECT_TRUE(lbu->victimActive());
}

TEST_F(LinebackerFixture, CacheInsensitiveKernelDisables)
{
    // Pure streaming: no load qualifies.
    build(SchemeConfig::linebacker());
    KernelInfo streaming = kernel;
    streaming.patterns[0] =
        std::make_shared<StreamingPattern>(Addr{1} << 38, 16);
    const SimStats &stats = gpu->runKernel(streaming);
    EXPECT_EQ(lbu->loadMonitor().state(), MonitorState::Disabled);
    EXPECT_EQ(stats.ctaThrottleEvents, 0u);
    EXPECT_EQ(stats.l1.regHits, 0u);
}

TEST_F(LinebackerFixture, StoreInvalidatesVictimLine)
{
    build(SchemeConfig::linebacker());
    const SimStats &stats = gpu->runKernel(kernel);
    ASSERT_GT(stats.victimLinesStored, 0u);
    ASSERT_GT(lbu->vtt().validLines(), 0u);
    // Sweep stores over the tile region: every victim copy of a stored
    // line must be dropped (write-evict keeps victim lines clean).
    const std::uint64_t before = stats.victimInvalidations;
    const Addr tile_base = Addr{1} << 38;
    for (std::uint64_t l = 0; l < 64 * 512; ++l)
        lbu->notifyStore(tile_base + l * kLineBytes, gpu->now());
    EXPECT_GT(stats.victimInvalidations, before);
    EXPECT_EQ(lbu->vtt().validLines(), 0u);
}

TEST_F(LinebackerFixture, RestoreRereadsBackupImage)
{
    // Force aggressive throttling then recovery by using an IPC band
    // that always wants fewer CTAs first and strict lower bound later.
    build(SchemeConfig::linebacker());
    const SimStats &stats = gpu->runKernel(kernel);
    if (stats.ctaActivateEvents > 0) {
        EXPECT_GT(stats.dramRestoreReads, 0u);
        EXPECT_EQ(stats.dramRestoreReads % kernel.regsPerCta(), 0u);
    }
}

TEST_F(LinebackerFixture, MonitoringWindowsReported)
{
    build(SchemeConfig::linebacker());
    gpu->runKernel(kernel);
    EXPECT_GE(lbu->monitoringWindows(), 2u);
}

TEST_F(LinebackerFixture, LockstepRunIsClean)
{
    build(SchemeConfig::linebacker());
    // Attach after setControllers so the checker wraps Linebacker's
    // victim interface; the run must produce victim traffic and still
    // be mismatch-free.
    LockstepHarness lockstep;
    lockstep.attach(*gpu);
    const SimStats &stats = gpu->runKernel(kernel);
    EXPECT_GT(stats.l1.regHits, 0u);
    EXPECT_GT(lockstep.checkCount(), 0u);
    EXPECT_EQ(lockstep.mismatchCount(), 0u) << lockstep.reportString();
}

TEST_F(LinebackerFixture, LockstepCatchesFabricatedVttEntry)
{
    build(SchemeConfig::linebacker());
    LockstepHarness lockstep;
    lockstep.attach(*gpu);
    gpu->runKernel(kernel);
    ASSERT_EQ(lockstep.mismatchCount(), 0u) << lockstep.firstMismatch();
    ASSERT_GT(lbu->vtt().activePartitions(), 0u);
    ASSERT_FALSE(lbu->vtt().tagOnlyMode());

    // Fabricate a VTT entry for a line the kernel never touched — a
    // victim-cache hit on it is unsound, and the lockstep tap between
    // the L1 and Linebacker must say so.
    const Addr bogus = Addr{3} << 40;
    const auto set = static_cast<std::uint32_t>(
        lineIndex(bogus) % lbu->vtt().sets());
    lbu->vttForTest().setEntryForTest(0, set, 0, bogus, true, 0);

    L1Access access;
    access.accessId = 1;
    access.lineAddr = bogus;
    const L1Outcome outcome =
        gpu->sm(0).l1().access(access, gpu->now());
    EXPECT_EQ(outcome, L1Outcome::VictimHit);
    EXPECT_GT(lockstep.mismatchCount(), 0u);
}

TEST(FlatVttLockstep, VttMatchesRefCacheAcrossPartitions)
{
    // A P-partition x W-way VTT set is architecturally one P*W-way LRU
    // cache whose flattened way index is partition*W + way (the order
    // Eq. 2 exposes): invalid-first fill in partition order,
    // cross-partition LRU with ties toward the lower partition, refresh
    // on re-insert, and an LRU touch on probe hits. Drive the set-major
    // tag plane and the AoS RefCache with one random stream and require
    // agreement on every residency answer and on occupancy after each
    // step; a reference eviction must always have left the VTT too.
    GpuConfig gpu;
    LbConfig lb;
    SimStats stats;
    VictimTagTable vtt(gpu, lb, &stats);
    vtt.setActivePartitions(3);
    RefCache ref(vtt.sets(), 3 * vtt.ways());
    Rng rng(77);
    // 64 lines per set across four sets: far past the 12-entry
    // per-set capacity, so the LRU path runs constantly.
    const auto poolAddr = [&vtt](std::uint32_t k) {
        return static_cast<Addr>(k / 4 * vtt.sets() + k % 4) *
               kLineBytes;
    };
    for (Cycle now = 1; now <= 20000; ++now) {
        const Addr addr = poolAddr(rng.below(256));
        switch (rng.below(4)) {
        case 0: {
            RegNum reg = 0;
            ASSERT_TRUE(vtt.insert(addr, now, reg));
            const auto evicted = ref.insert(addr, 0, now, 0);
            if (evicted.has_value()) {
                ASSERT_FALSE(vtt.probe(evicted->lineAddr, now).hit)
                    << "VTT kept a line the reference evicted at cycle "
                    << now;
            }
            break;
        }
        case 1: {
            const bool hit = vtt.probe(addr, now).hit;
            ASSERT_EQ(hit, ref.resident(addr))
                << "probe disagreement at cycle " << now;
            if (hit)
                ref.touch(addr, 0, now, 0);
            break;
        }
        case 2:
            ASSERT_EQ(vtt.invalidate(addr), ref.invalidate(addr));
            break;
        default:
            ASSERT_EQ(vtt.validLines(), ref.validLines());
            break;
        }
    }
    vtt.audit(20001);
}

} // namespace
} // namespace lbsim
