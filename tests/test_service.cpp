/**
 * @file
 * Tests for the sweep-service stack: the lbsim-journal-v1 record log
 * (recovery over hand-built torn and corrupted files), the crash-safe
 * atomicWriteFile primitive, the length-prefixed wire framing, the
 * PlanRequest vocabulary, and the SweepServer's admission control
 * (shed-not-hang) and graceful drain.
 *
 * Suite names matter: the TSan CI job filters on
 * Experiment*:MemoCache*:ParallelMap*, so nothing here may fork — the
 * SweepServer tests run the daemon core in-process on its own threads,
 * which is exactly what TSan wants to watch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fs.hpp"
#include "common/json.hpp"
#include "harness/sim_runner.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LBSIM_HAVE_SOCKETS 1
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define LBSIM_HAVE_SOCKETS 0
#endif

namespace lbsim
{
namespace
{

// --- Helpers ---------------------------------------------------------------

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

void
writeRaw(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::string
readRaw(const std::string &path)
{
    std::string content;
    readFileToString(path, content);
    return content;
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return in.good();
}

/** magic line + the given pre-framed records. */
std::string
journalBytes(const std::vector<std::string> &payloads)
{
    std::string bytes = Journal::magicLine();
    bytes += '\n';
    for (const std::string &payload : payloads)
        bytes += Journal::frameRecord(payload);
    return bytes;
}

// --- Journal: append/recover round trip ------------------------------------

TEST(JournalTest, AppendThenRecoverRoundTrips)
{
    const std::string path = tempPath("journal_roundtrip.journal");
    std::remove(path.c_str());

    Journal journal(path);
    std::string error;
    ASSERT_TRUE(journal.append("alpha", &error)) << error;
    ASSERT_TRUE(journal.append("", &error)) << error;  // empty is legal
    ASSERT_TRUE(journal.append("gamma|with|pipes\nand newline", &error))
        << error;

    std::vector<std::string> records;
    JournalRecovery report;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0], "alpha");
    EXPECT_EQ(records[1], "");
    EXPECT_EQ(records[2], "gamma|with|pipes\nand newline");
    EXPECT_EQ(report.recordsLoaded, 3u);
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_EQ(report.truncatedBytes, 0u);
    EXPECT_FALSE(report.freshStart);
    std::remove(path.c_str());
}

TEST(JournalTest, MissingFileIsAFreshStart)
{
    const std::string path = tempPath("journal_missing.journal");
    std::remove(path.c_str());

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    EXPECT_TRUE(records.empty());
    EXPECT_TRUE(report.freshStart);
    // recover() must not create the file; only append() does.
    EXPECT_FALSE(fileExists(path));
}

TEST(JournalTest, ForeignFileIsLeftUntouched)
{
    const std::string path = tempPath("journal_foreign.journal");
    const std::string foreign = "just,a,csv\nwith,two,lines\n";
    writeRaw(path, foreign);

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    EXPECT_TRUE(records.empty());
    EXPECT_TRUE(report.freshStart);
    // Not a journal: recovery must not "repair" (i.e. destroy) it.
    EXPECT_EQ(readRaw(path), foreign);
    std::remove(path.c_str());
}

// --- Journal: the two corruption modes the format is built for -------------

TEST(JournalTest, TruncatedTailIsDroppedAndRepaired)
{
    const std::string path = tempPath("journal_torn.journal");
    const std::string intact = journalBytes({"one", "two"});
    const std::string torn = Journal::frameRecord("three");
    // A writer killed mid-append leaves part of the final frame.
    writeRaw(path, intact + torn.substr(0, torn.size() - 2));

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], "one");
    EXPECT_EQ(records[1], "two");
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_EQ(report.truncatedBytes, torn.size() - 2);

    // The repair is durable: the torn bytes are gone from disk and a
    // second recovery is clean.
    EXPECT_EQ(readRaw(path), intact);
    records.clear();
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    EXPECT_EQ(records.size(), 2u);
    EXPECT_EQ(report.truncatedBytes, 0u);
    std::remove(path.c_str());
}

TEST(JournalTest, TornLengthHeaderCountsAsTorn)
{
    const std::string path = tempPath("journal_torn_header.journal");
    // Only 3 bytes of the next length field made it to disk.
    writeRaw(path, journalBytes({"keep"}) + std::string(3, '\x7f'));

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], "keep");
    EXPECT_EQ(report.truncatedBytes, 3u);
    EXPECT_EQ(readRaw(path), journalBytes({"keep"}));
    std::remove(path.c_str());
}

TEST(JournalTest, AbsurdLengthFieldCountsAsTorn)
{
    const std::string path = tempPath("journal_bad_length.journal");
    // A length beyond kMaxRecordBytes means the length field itself is
    // garbage; framing cannot resync past it, so the file is cut there.
    std::string bogus(8, '\0');
    const std::uint32_t huge = Journal::kMaxRecordBytes + 1;
    bogus[0] = static_cast<char>(huge & 0xff);
    bogus[1] = static_cast<char>((huge >> 8) & 0xff);
    bogus[2] = static_cast<char>((huge >> 16) & 0xff);
    bogus[3] = static_cast<char>((huge >> 24) & 0xff);
    writeRaw(path, journalBytes({"keep"}) + bogus + "trailing junk");

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], "keep");
    EXPECT_GT(report.truncatedBytes, 0u);
    EXPECT_EQ(readRaw(path), journalBytes({"keep"}));
    std::remove(path.c_str());
}

TEST(JournalTest, CorruptMiddleRecordIsQuarantinedNotFatal)
{
    const std::string path = tempPath("journal_quarantine.journal");
    const std::string quarantine = path + ".quarantine";
    std::remove(quarantine.c_str());

    std::string bad = Journal::frameRecord("bbb-corrupted-victim");
    bad[8] ^= 0x01;  // flip one payload bit; CRC now mismatches
    writeRaw(path, journalBytes({"aaa"}) + bad +
                       Journal::frameRecord("ccc"));

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    // Only the bad record is dropped; the records AROUND it survive.
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], "aaa");
    EXPECT_EQ(records[1], "ccc");
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_FALSE(report.freshStart);
    EXPECT_NE(report.summary().find("quarantined"), std::string::npos);

    // The corrupt frame moved to the quarantine file and was compacted
    // out of the live journal, which now recovers clean.
    EXPECT_TRUE(fileExists(quarantine));
    EXPECT_FALSE(readRaw(quarantine).empty());
    EXPECT_EQ(readRaw(path), journalBytes({"aaa", "ccc"}));
    records.clear();
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    EXPECT_EQ(records.size(), 2u);
    EXPECT_EQ(report.quarantined, 0u);
    std::remove(path.c_str());
    std::remove(quarantine.c_str());
}

TEST(JournalTest, CorruptMiddlePlusTornTailRepairsBoth)
{
    const std::string path = tempPath("journal_both.journal");
    const std::string quarantine = path + ".quarantine";
    std::remove(quarantine.c_str());

    std::string bad = Journal::frameRecord("middle");
    bad[bad.size() - 1] ^= 0x40;
    const std::string torn = Journal::frameRecord("tail");
    writeRaw(path, journalBytes({"first"}) + bad +
                       Journal::frameRecord("third") +
                       torn.substr(0, torn.size() - 1));

    std::vector<std::string> records;
    JournalRecovery report;
    std::string error;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], "first");
    EXPECT_EQ(records[1], "third");
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.truncatedBytes, torn.size() - 1);
    EXPECT_EQ(readRaw(path), journalBytes({"first", "third"}));
    std::remove(path.c_str());
    std::remove(quarantine.c_str());
}

TEST(JournalTest, CheckpointRewritesExactly)
{
    const std::string path = tempPath("journal_checkpoint.journal");
    std::remove(path.c_str());

    Journal journal(path);
    std::string error;
    ASSERT_TRUE(journal.append("stale-1", &error)) << error;
    ASSERT_TRUE(journal.append("stale-2", &error)) << error;
    ASSERT_TRUE(journal.checkpoint({"fresh-a", "fresh-b"}, &error))
        << error;

    std::vector<std::string> records;
    JournalRecovery report;
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], "fresh-a");
    EXPECT_EQ(records[1], "fresh-b");
    // Appends keep working after a checkpoint.
    ASSERT_TRUE(journal.append("post", &error)) << error;
    records.clear();
    ASSERT_TRUE(Journal(path).recover(records, report, &error)) << error;
    EXPECT_EQ(records.size(), 3u);
    std::remove(path.c_str());
}

// --- atomicWriteFile -------------------------------------------------------

TEST(AtomicWriteFileTest, WritesAndReplacesContent)
{
    const std::string path = tempPath("atomic_write.txt");
    std::remove(path.c_str());

    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, "first version\n", &error)) << error;
    EXPECT_EQ(readRaw(path), "first version\n");
    // Binary-exact, embedded NUL included.
    const std::string binary("second\0version", 14);
    ASSERT_TRUE(atomicWriteFile(path, binary, &error)) << error;
    EXPECT_EQ(readRaw(path), binary);
}

TEST(AtomicWriteFileTest, FailureLeavesTargetUntouched)
{
    const std::string path =
        tempPath("no_such_dir_xyz/atomic_write.txt");
    std::string error;
    EXPECT_FALSE(atomicWriteFile(path, "content", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fileExists(path));
}

// --- Wire framing ----------------------------------------------------------

#if LBSIM_HAVE_SOCKETS

TEST(WireFramingTest, RoundTripsOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string error;
    ASSERT_TRUE(writeFrame(fds[0], "{\"hello\":1}", &error)) << error;
    ASSERT_TRUE(writeFrame(fds[0], "", &error)) << error;

    std::string payload;
    bool eof = false;
    ASSERT_TRUE(readFrame(fds[1], payload, eof, &error)) << error;
    EXPECT_EQ(payload, "{\"hello\":1}");
    ASSERT_TRUE(readFrame(fds[1], payload, eof, &error)) << error;
    EXPECT_EQ(payload, "");

    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(WireFramingTest, CleanEofIsNotAProtocolError)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[0]);

    std::string payload, error;
    bool eof = false;
    EXPECT_FALSE(readFrame(fds[1], payload, eof, &error));
    EXPECT_TRUE(eof);
    ::close(fds[1]);
}

TEST(WireFramingTest, OversizedLengthIsRejectedBeforeBuffering)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    const std::uint32_t huge = kMaxFrameBytes + 1;
    char header[4];
    header[0] = static_cast<char>(huge & 0xff);
    header[1] = static_cast<char>((huge >> 8) & 0xff);
    header[2] = static_cast<char>((huge >> 16) & 0xff);
    header[3] = static_cast<char>((huge >> 24) & 0xff);
    ASSERT_EQ(::write(fds[0], header, 4), 4);

    std::string payload, error;
    bool eof = false;
    EXPECT_FALSE(readFrame(fds[1], payload, eof, &error));
    EXPECT_FALSE(eof);
    EXPECT_FALSE(error.empty());
    ::close(fds[0]);
    ::close(fds[1]);
}

#endif  // LBSIM_HAVE_SOCKETS

// --- PlanRequest vocabulary ------------------------------------------------

TEST(PlanRequestTest, SerializeParseRoundTrips)
{
    PlanRequest request;
    request.name = "fig12-slice";
    request.apps = {"S2", "KM"};
    request.schemes = {"baseline", "linebacker", "best-swl"};
    request.smoke = true;
    request.sms = 4;
    request.cycles = 123456;
    request.warmup = 7890;
    request.warpLimit = 12;
    request.timeoutCycles = 99999;
    request.deadlineSec = 30;
    request.retryCap = 5;

    JsonValue plan;
    std::string error;
    ASSERT_TRUE(parseJson(serializePlanRequest(request), plan, &error))
        << error;
    PlanRequest parsed;
    ASSERT_TRUE(parsePlanRequest(plan, parsed, error)) << error;
    EXPECT_EQ(parsed.name, request.name);
    EXPECT_EQ(parsed.apps, request.apps);
    EXPECT_EQ(parsed.schemes, request.schemes);
    EXPECT_EQ(parsed.smoke, request.smoke);
    EXPECT_EQ(parsed.sms, request.sms);
    EXPECT_EQ(parsed.cycles, request.cycles);
    EXPECT_EQ(parsed.warmup, request.warmup);
    EXPECT_EQ(parsed.warpLimit, request.warpLimit);
    EXPECT_EQ(parsed.timeoutCycles, request.timeoutCycles);
    EXPECT_EQ(parsed.deadlineSec, request.deadlineSec);
    EXPECT_EQ(parsed.retryCap, request.retryCap);
}

TEST(PlanRequestTest, BuildRejectsUnknownAppsAndSchemes)
{
    PlanRequest request;
    request.schemes = {"baseline"};
    request.apps = {"NOPE"};
    ExperimentPlan plan;
    std::string error;
    EXPECT_FALSE(buildExperimentPlan(request, plan, error));
    EXPECT_NE(error.find("NOPE"), std::string::npos) << error;

    request.apps = {"S2"};
    request.schemes = {"bogus-scheme"};
    error.clear();
    EXPECT_FALSE(buildExperimentPlan(request, plan, error));
    EXPECT_NE(error.find("bogus-scheme"), std::string::npos) << error;

    request.schemes = {};
    error.clear();
    EXPECT_FALSE(buildExperimentPlan(request, plan, error));
    EXPECT_FALSE(error.empty());
}

TEST(PlanRequestTest, BuildIsDeterministic)
{
    PlanRequest request;
    request.apps = {"S2", "KM"};
    request.schemes = {"baseline", "linebacker"};
    request.smoke = true;

    ExperimentPlan first, second;
    std::string error;
    ASSERT_TRUE(buildExperimentPlan(request, first, error)) << error;
    ASSERT_TRUE(buildExperimentPlan(request, second, error)) << error;
    ASSERT_EQ(first.size(), 4u);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first.cells()[i].app, second.cells()[i].app);
        EXPECT_EQ(first.cells()[i].scheme, second.cells()[i].scheme);
        EXPECT_EQ(first.cells()[i].variant, second.cells()[i].variant);
    }
    // Smoke plans still execute through the memo cache (durability).
    EXPECT_TRUE(first.options().useMemoCache);
}

TEST(PlanRequestTest, CellMessageRoundTripsMetricsExactly)
{
    CellResult result;
    result.index = 7;
    result.app = "S2";
    result.scheme = "Linebacker";
    result.variant = "8kB";
    result.ok = true;
    result.outcome = RunOutcome::Ok;
    result.metrics.appId = "S2";
    result.metrics.schemeName = "Linebacker";
    result.metrics.ipc = 1.0 / 3.0;  // needs full-precision formatting
    result.metrics.energyJ = 0.0625;
    result.metrics.stats.cycles = 424242;
    result.metrics.stats.instructionsIssued = 141414;

    JsonValue message;
    std::string error;
    ASSERT_TRUE(parseJson(cellMessage(result), message, &error)) << error;
    CellResult parsed;
    ASSERT_TRUE(parseCellMessage(message, parsed, error)) << error;
    EXPECT_EQ(parsed.index, result.index);
    EXPECT_EQ(parsed.app, result.app);
    EXPECT_EQ(parsed.scheme, result.scheme);
    EXPECT_EQ(parsed.variant, result.variant);
    EXPECT_EQ(parsed.ok, result.ok);
    EXPECT_EQ(parsed.outcome, result.outcome);
    // serializeRunMetrics carries doubles at full precision: the IPC
    // must survive the wire bit-for-bit, which is what makes
    // daemon-produced artifacts byte-identical to --direct ones.
    EXPECT_EQ(parsed.metrics.ipc, result.metrics.ipc);
    EXPECT_EQ(parsed.metrics.energyJ, result.metrics.energyJ);
    EXPECT_EQ(parsed.metrics.stats.cycles, result.metrics.stats.cycles);
}

// --- SweepServer admission control and lifecycle ----------------------------

#if LBSIM_HAVE_SOCKETS

/** start() + run() on a private thread, drained on destruction. */
class RunningServer
{
  public:
    explicit RunningServer(ServerOptions options)
        : server_(std::move(options))
    {
        std::string error;
        started_ = server_.start(&error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            runner_ = std::thread([this] { rc_ = server_.run(); });
    }

    ~RunningServer() { drain(); }

    int drain()
    {
        if (runner_.joinable()) {
            server_.requestStop();
            runner_.join();
        }
        return rc_;
    }

    SweepServer &server() { return server_; }
    bool started() const { return started_; }

  private:
    SweepServer server_;
    bool started_ = false;
    std::thread runner_;
    int rc_ = -1;
};

int
connectTo(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Submit @p request and return the first reply frame as JSON. */
JsonValue
submitAndReadReply(const std::string &socket_path,
                   const PlanRequest &request, int fd_out[1] = nullptr)
{
    JsonValue reply;
    const int fd = connectTo(socket_path);
    EXPECT_GE(fd, 0) << socket_path;
    if (fd < 0)
        return reply;
    std::string error;
    EXPECT_TRUE(writeFrame(fd, submitMessage("test-client", 0, request),
                           &error))
        << error;
    std::string payload;
    bool eof = false;
    EXPECT_TRUE(readFrame(fd, payload, eof, &error)) << error;
    EXPECT_TRUE(parseJson(payload, reply, &error)) << error;
    if (fd_out)
        fd_out[0] = fd;
    else
        ::close(fd);
    return reply;
}

ServerOptions
testServerOptions(const std::string &tag)
{
    ServerOptions options;
    options.socketPath = tempPath("lbsimd_" + tag + ".sock");
    options.plansJournalPath = "";  // resume covered by the soak test
    options.workers = 1;
    return options;
}

PlanRequest
oneCellSmoke()
{
    PlanRequest request;
    request.apps = {"S2"};
    request.schemes = {"baseline"};
    request.smoke = true;
    return request;
}

TEST(SweepServerTest, ShedsBadPlanSynchronously)
{
    RunningServer running(testServerOptions("badplan"));
    ASSERT_TRUE(running.started());

    PlanRequest request = oneCellSmoke();
    request.schemes = {"no-such-scheme"};
    const JsonValue reply =
        submitAndReadReply(running.server().options().socketPath, request);
    EXPECT_EQ(reply.stringOr("type"), "shed");
    EXPECT_EQ(reply.stringOr("reason"), "bad-plan");
    EXPECT_NE(reply.stringOr("detail").find("no-such-scheme"),
              std::string::npos);

    // Nothing was queued or executed: the shed happened inside the
    // submit handler itself, not after a scheduling round.
    EXPECT_EQ(running.server().queuedCells(), 0u);
    const ServerStats stats = running.server().stats();
    EXPECT_EQ(stats.plansShed, 1u);
    EXPECT_EQ(stats.plansAccepted, 0u);
    EXPECT_EQ(stats.cellsCompleted, 0u);
    EXPECT_EQ(running.drain(), 0);
}

TEST(SweepServerTest, ShedsWhenGlobalQueueIsFull)
{
    ServerOptions options = testServerOptions("queuefull");
    options.maxQueuedCells = 0;  // every real plan overflows
    RunningServer running(options);
    ASSERT_TRUE(running.started());

    const JsonValue reply = submitAndReadReply(
        running.server().options().socketPath, oneCellSmoke());
    EXPECT_EQ(reply.stringOr("type"), "shed");
    EXPECT_EQ(reply.stringOr("reason"), "queue-full");
    EXPECT_EQ(running.server().queuedCells(), 0u);
    const ServerStats stats = running.server().stats();
    EXPECT_EQ(stats.plansShed, 1u);
    EXPECT_EQ(stats.cellsCompleted, 0u);
    EXPECT_EQ(running.drain(), 0);
}

TEST(SweepServerTest, ShedsOverPerClientQuota)
{
    ServerOptions options = testServerOptions("quota");
    options.perClientQueuedCells = 1;
    RunningServer running(options);
    ASSERT_TRUE(running.started());

    PlanRequest request = oneCellSmoke();
    request.apps = {"S2", "KM"};  // 2 cells > quota of 1
    const JsonValue reply = submitAndReadReply(
        running.server().options().socketPath, request);
    EXPECT_EQ(reply.stringOr("type"), "shed");
    EXPECT_EQ(reply.stringOr("reason"), "quota");
    EXPECT_EQ(running.server().stats().plansShed, 1u);
    EXPECT_EQ(running.drain(), 0);
}

TEST(SweepServerTest, AcceptsExecutesAndStreamsResults)
{
    RunningServer running(testServerOptions("accept"));
    ASSERT_TRUE(running.started());
    const std::string socket_path =
        running.server().options().socketPath;

    int fd = -1;
    const JsonValue accepted =
        submitAndReadReply(socket_path, oneCellSmoke(), &fd);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(accepted.stringOr("type"), "accepted");
    EXPECT_EQ(accepted.numberOr("cells"), 1.0);
    EXPECT_FALSE(accepted.stringOr("planId").empty());

    // One cell frame, then the done frame.
    std::string payload, error;
    bool eof = false;
    ASSERT_TRUE(readFrame(fd, payload, eof, &error)) << error;
    JsonValue cell_message;
    ASSERT_TRUE(parseJson(payload, cell_message, &error)) << error;
    ASSERT_EQ(cell_message.stringOr("type"), "cell");
    CellResult cell;
    ASSERT_TRUE(parseCellMessage(cell_message, cell, error)) << error;
    EXPECT_TRUE(cell.ok) << cell.error;
    EXPECT_EQ(cell.app, "S2");
    EXPECT_GT(cell.metrics.ipc, 0.0);

    ASSERT_TRUE(readFrame(fd, payload, eof, &error)) << error;
    JsonValue done;
    ASSERT_TRUE(parseJson(payload, done, &error)) << error;
    EXPECT_EQ(done.stringOr("type"), "done");
    EXPECT_EQ(done.numberOr("completed"), 1.0);
    EXPECT_EQ(done.numberOr("failed"), 0.0);
    ::close(fd);

    // The stats endpoint reflects the completed plan.
    const int stats_fd = connectTo(socket_path);
    ASSERT_GE(stats_fd, 0);
    ASSERT_TRUE(writeFrame(stats_fd, statsRequestMessage(), &error))
        << error;
    ASSERT_TRUE(readFrame(stats_fd, payload, eof, &error)) << error;
    JsonValue stats;
    ASSERT_TRUE(parseJson(payload, stats, &error)) << error;
    EXPECT_EQ(stats.stringOr("type"), "stats");
    EXPECT_EQ(stats.numberOr("plansAccepted"), 1.0);
    EXPECT_EQ(stats.numberOr("plansCompleted"), 1.0);
    EXPECT_EQ(stats.numberOr("cellsCompleted"), 1.0);
    EXPECT_EQ(stats.numberOr("cellsFailed"), 0.0);
    ::close(stats_fd);

    EXPECT_EQ(running.drain(), 0);
}

TEST(SweepServerTest, MalformedFrameIsShedAsBadRequest)
{
    RunningServer running(testServerOptions("badframe"));
    ASSERT_TRUE(running.started());

    const int fd =
        connectTo(running.server().options().socketPath);
    ASSERT_GE(fd, 0);
    std::string error;
    ASSERT_TRUE(writeFrame(fd, "this is not json", &error)) << error;
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(readFrame(fd, payload, eof, &error)) << error;
    JsonValue reply;
    ASSERT_TRUE(parseJson(payload, reply, &error)) << error;
    EXPECT_EQ(reply.stringOr("type"), "shed");
    EXPECT_EQ(reply.stringOr("reason"), "bad-request");
    ::close(fd);
    EXPECT_EQ(running.drain(), 0);
}

TEST(SweepServerTest, DrainReturnsZeroWithIdleClients)
{
    RunningServer running(testServerOptions("drain"));
    ASSERT_TRUE(running.started());
    // A connected-but-silent client must not block the drain.
    const int fd = connectTo(running.server().options().socketPath);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(running.drain(), 0);
    ::close(fd);
}

#endif  // LBSIM_HAVE_SOCKETS

} // namespace
} // namespace lbsim
