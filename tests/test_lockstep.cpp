/**
 * @file
 * Tests for the correctness-tooling subsystem: the RefCache functional
 * model (differential against TagArray), the lockstep checkers (both
 * that they stay silent on correct hardware and that they trip on
 * fabricated corruption), the fuzz-case generator/serializer, the
 * failing-case minimizer, and full property checks on fixed seeds.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "harness/sim_runner.hpp"
#include "mem/interconnect.hpp"
#include "mem/l1_cache.hpp"
#include "mem/memory_partition.hpp"
#include "mem/tag_array.hpp"
#include "testing/fuzz.hpp"
#include "testing/lockstep.hpp"
#include "testing/minimize.hpp"
#include "testing/ref_cache.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

// --- RefCache unit behaviour -----------------------------------------------

TEST(RefCache, InsertRefreshesResidentLineWithoutEviction)
{
    RefCache ref(1, 2);
    EXPECT_FALSE(ref.insert(0, 1, 10, 1).has_value());
    EXPECT_FALSE(ref.insert(128, 2, 11, 2).has_value());
    // Re-inserting a resident line refreshes it; nothing is displaced
    // even though the set is full.
    EXPECT_FALSE(ref.insert(0, 3, 12, 3).has_value());
    EXPECT_EQ(ref.validLines(), 2u);
}

TEST(RefCache, EvictsLeastRecentlyUsedWithLowWayTieBreak)
{
    RefCache ref(1, 2);
    ref.insert(0, 1, 10, 1);
    ref.insert(128, 2, 11, 2);
    ref.touch(0, 1, 20, 1);
    // Way 1 (line 128, lastUse 11) is LRU.
    const auto evicted = ref.insert(256, 3, 30, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->lineAddr, 128u);
    EXPECT_EQ(evicted->hpc, 2);
    EXPECT_EQ(evicted->owner, 2);

    // Equal timestamps: strict < scanning means the lowest way wins.
    RefCache tie(1, 2);
    tie.insert(0, 1, 5, 1);
    tie.insert(128, 2, 5, 2);
    const auto tied = tie.insert(256, 3, 6, 3);
    ASSERT_TRUE(tied.has_value());
    EXPECT_EQ(tied->lineAddr, 0u);
}

TEST(RefCache, InvalidWaysPreferredOverEviction)
{
    RefCache ref(1, 4);
    ref.insert(0, 0, 1, 0);
    ref.insert(128, 0, 2, 0);
    ref.invalidate(0);
    // The freed way absorbs the insert; the resident line survives.
    EXPECT_FALSE(ref.insert(256, 0, 3, 0).has_value());
    EXPECT_TRUE(ref.resident(128));
}

// --- RefCache vs TagArray differential -------------------------------------

/**
 * Drive both models with an identical random operation stream and demand
 * exact agreement on residency and every eviction decision. This is the
 * foundation the lockstep checkers stand on: if the two implementations
 * of the replacement contract ever disagree, lockstep mismatches would
 * be noise.
 */
TEST(RefCacheDifferential, MatchesTagArrayOnRandomStream)
{
    const std::uint32_t sets = 4;
    const std::uint32_t ways = 4;
    TagArray tags(sets, ways);
    RefCache ref(sets, ways);
    Rng rng(0xd1ffe7ull);

    const std::uint64_t kAddrSpace = sets * ways * 4;
    for (Cycle now = 1; now <= 20000; ++now) {
        const Addr line = rng.below(kAddrSpace) * kLineBytes;
        const auto hpc = static_cast<std::uint8_t>(rng.below(32));
        const auto owner = static_cast<std::uint8_t>(rng.below(64));
        switch (rng.below(10)) {
          case 0: { // Invalidate.
            EXPECT_EQ(tags.invalidate(line), ref.invalidate(line));
            break;
          }
          case 1: { // Access (hit refreshes, miss is a no-op).
            const bool hit = tags.access(line, hpc, now, owner);
            EXPECT_EQ(hit, ref.resident(line));
            if (hit)
                ref.touch(line, hpc, now, owner);
            break;
          }
          case 2: { // Rare full flush.
            if (rng.below(100) == 0) {
                tags.invalidateAll();
                ref.invalidateAll();
            }
            break;
          }
          default: { // Insert; eviction decisions must agree exactly.
            const auto timing = tags.insert(line, hpc, now, owner);
            const auto model = ref.insert(line, hpc, now, owner);
            ASSERT_EQ(timing.has_value(), model.has_value())
                << "eviction shape diverged at cycle " << now;
            if (timing) {
                EXPECT_EQ(timing->lineAddr, model->lineAddr);
                EXPECT_EQ(timing->hpc, model->hpc);
                EXPECT_EQ(timing->owner, model->owner);
            }
            break;
          }
        }
        EXPECT_EQ(tags.probe(line), ref.resident(line));
        EXPECT_EQ(tags.validLines(), ref.validLines());
    }
}

// --- Lockstep checker: silent on correct hardware, trips on corruption -----

/** The L1 mini-system from test_l1_cache.cpp, with a lockstep checker. */
class LockstepL1Fixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg.numSms = 1;
        cfg.numMemPartitions = 1;
        icnt = std::make_unique<Interconnect>(cfg, &stats);
        partition =
            std::make_unique<MemoryPartition>(cfg, 0, icnt.get(), &stats);
        icnt->attachPartition(0, partition.get());
        l1 = std::make_unique<L1Cache>(cfg, 0, icnt.get(), &stats);

        class Sink : public ResponseSinkIf
        {
          public:
            explicit Sink(L1Cache *l1) : l1_(l1) {}
            void
            onResponse(const MemResponse &response, Cycle now) override
            {
                l1_->fill(response.lineAddr, now);
            }

          private:
            L1Cache *l1_;
        };
        sink = std::make_unique<Sink>(l1.get());
        icnt->attachSm(0, sink.get());
        checker = std::make_unique<LockstepL1Checker>(*l1, 0);
    }

    void
    tick()
    {
        partition->tick(now);
        icnt->tick(now);
        ++now;
    }

    bool
    completeAccess(std::uint64_t access_id, Cycle limit = 5000)
    {
        std::vector<std::uint64_t> done;
        for (Cycle c = 0; c < limit; ++c) {
            tick();
            done.clear();
            l1->drainCompleted(now, done);
            for (std::uint64_t id : done) {
                if (id == access_id)
                    return true;
            }
        }
        return false;
    }

    L1Access
    load(std::uint64_t id, Addr line)
    {
        L1Access access;
        access.accessId = id;
        access.lineAddr = line;
        return access;
    }

    GpuConfig cfg;
    SimStats stats;
    std::unique_ptr<Interconnect> icnt;
    std::unique_ptr<MemoryPartition> partition;
    std::unique_ptr<L1Cache> l1;
    std::unique_ptr<ResponseSinkIf> sink;
    std::unique_ptr<LockstepL1Checker> checker;
    Cycle now = 0;
};

TEST_F(LockstepL1Fixture, CleanTrafficProducesChecksAndNoMismatches)
{
    const std::uint32_t sets = cfg.l1.sets();
    // Misses, fills, hits, and capacity evictions across two sets.
    for (std::uint64_t i = 0; i < 2 * cfg.l1.ways + 4; ++i) {
        const Addr line = (i * sets / 2) * kLineBytes;
        l1->access(load(100 + i, line), now);
        completeAccess(100 + i);
    }
    l1->access(load(1, 0), now);
    completeAccess(1);
    EXPECT_GT(checker->log().checks(), 0u);
    EXPECT_EQ(checker->log().mismatches(), 0u)
        << checker->log().reports().front();
}

TEST_F(LockstepL1Fixture, TripsWhenTagStateIsCorrupted)
{
    l1->access(load(1, 0), now);
    completeAccess(1);
    ASSERT_EQ(checker->log().mismatches(), 0u);

    // Drop the line behind the event sink's back; the next access hits
    // in the reference model but misses in the corrupted timing array.
    l1->tagsForTest().invalidate(0);
    l1->access(load(2, 0), now);
    completeAccess(2);
    EXPECT_GT(checker->log().mismatches(), 0u);
    EXPECT_FALSE(checker->log().reports().empty());
}

TEST_F(LockstepL1Fixture, SinkLevelOutcomeChecksCatchBogusEvents)
{
    // Drive the sink interface directly: a reported hit on a line the
    // reference model has never seen is definitionally wrong.
    checker->onAccessOutcome(load(1, 4096), L1Outcome::Hit, now);
    EXPECT_EQ(checker->log().mismatches(), 1u);

    // Stall outcomes must never reach the sink (access() filters them).
    checker->onAccessOutcome(load(2, 4096), L1Outcome::StallNoMshr, now);
    EXPECT_EQ(checker->log().mismatches(), 2u);
}

/** Victim mechanism that claims a hit on a configurable line. */
class FakeVictim : public VictimCacheIf
{
  public:
    VictimProbeResult
    probeVictim(Addr line_addr, Cycle now) override
    {
        (void)now;
        VictimProbeResult result;
        result.latency = 3;
        if (line_addr == hitLine) {
            result.hit = true;
            result.regNum = 700;
        }
        return result;
    }

    void
    notifyEviction(Addr, std::uint8_t, std::uint8_t, Cycle) override
    {
    }
    void
    notifyAccess(Addr, Pc, std::uint8_t, std::uint8_t, bool,
                 Cycle) override
    {
    }
    void
    notifyStore(Addr, Cycle) override
    {
    }

    Addr hitLine = kNoAddr;
};

TEST(LockstepVictimTap, TripsOnVictimHitForNeverEvictedLine)
{
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.numMemPartitions = 1;
    SimStats stats;
    Interconnect icnt(cfg, &stats);
    MemoryPartition partition(cfg, 0, &icnt, &stats);
    icnt.attachPartition(0, &partition);
    L1Cache l1(cfg, 0, &icnt, &stats);

    // Policy stack first (as Linebacker's ctor does), checker on top.
    FakeVictim victim;
    victim.hitLine = 0;
    l1.setVictimCache(&victim);
    LockstepL1Checker checker(l1, 0);

    // A load miss probes the victim mechanism, which (wrongly) claims a
    // hit: line 0 was never evicted from this L1.
    L1Access access;
    access.accessId = 1;
    access.lineAddr = 0;
    const L1Outcome outcome = l1.access(access, 0);
    EXPECT_EQ(outcome, L1Outcome::VictimHit);
    EXPECT_GT(checker.log().mismatches(), 0u);
    EXPECT_FALSE(checker.log().reports().empty());
}

// --- Lockstep on full simulations ------------------------------------------

RunnerOptions
lockstepOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 60000;
    options.useMemoCache = false;
    options.lockstep = true;
    return options;
}

TEST(LockstepIntegration, BaselineRunIsClean)
{
    SimRunner runner({}, {}, lockstepOptions());
    const RunMetrics m =
        runner.run(appById("S2"), SchemeConfig::baseline());
    EXPECT_GT(m.lockstepChecks, 0u);
    EXPECT_EQ(m.lockstepMismatches, 0u) << m.lockstepFirstMismatch;
}

TEST(LockstepIntegration, LinebackerRunIsClean)
{
    SimRunner runner({}, {}, lockstepOptions());
    const RunMetrics m =
        runner.run(appById("S2"), SchemeConfig::linebacker());
    EXPECT_GT(m.lockstepChecks, 0u);
    EXPECT_EQ(m.lockstepMismatches, 0u) << m.lockstepFirstMismatch;
}

TEST(LockstepIntegration, LockstepRunsBypassTheMemoCache)
{
    RunnerOptions options = lockstepOptions();
    options.useMemoCache = true; // Lockstep must still bypass it.
    SimRunner runner({}, {}, options);
    const RunMetrics a =
        runner.run(appById("GA"), SchemeConfig::baseline());
    const RunMetrics b =
        runner.run(appById("GA"), SchemeConfig::baseline());
    // A cache hit would return zero check counters for the second run.
    EXPECT_GT(a.lockstepChecks, 0u);
    EXPECT_EQ(a.lockstepChecks, b.lockstepChecks);
}

// --- Fuzz-case generation and serialization --------------------------------

TEST(FuzzCaseGen, DeterministicAndValid)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const FuzzCase a = generateFuzzCase(seed);
        const FuzzCase b = generateFuzzCase(seed);
        EXPECT_EQ(serializeFuzzCase(a), serializeFuzzCase(b));
        // Structural validity: geometry divides, loads exist, budget set.
        EXPECT_GT(a.gpu.l1.sets(), 0u);
        EXPECT_EQ(a.gpu.l1.sizeBytes %
                      (a.gpu.l1.ways * a.gpu.l1.lineBytes),
                  0u);
        EXPECT_FALSE(a.app.loads.empty());
        EXPECT_GT(a.app.iterations, 0u);
        EXPECT_GT(a.gpu.maxCycles, a.gpu.warmupCycles);
        EXPECT_NO_THROW(fuzzScheme(a.scheme));
    }
    // Different seeds explore different cases.
    EXPECT_NE(serializeFuzzCase(generateFuzzCase(1)),
              serializeFuzzCase(generateFuzzCase(2)));
}

TEST(FuzzCaseSerialization, RoundTripsExactly)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const FuzzCase original = generateFuzzCase(seed);
        const std::string text = serializeFuzzCase(original);
        FuzzCase parsed;
        std::string error;
        ASSERT_TRUE(parseFuzzCase(text, parsed, error)) << error;
        EXPECT_EQ(serializeFuzzCase(parsed), text);
    }
}

TEST(FuzzCaseSerialization, RejectsMalformedInput)
{
    FuzzCase parsed;
    std::string error;
    EXPECT_FALSE(parseFuzzCase("not-a-fuzzcase\n", parsed, error));
    EXPECT_FALSE(error.empty());

    const std::string valid = serializeFuzzCase(generateFuzzCase(7));
    EXPECT_FALSE(
        parseFuzzCase(valid + "bogusKey=1\n", parsed, error));
    EXPECT_NE(error.find("bogusKey"), std::string::npos);
    EXPECT_FALSE(
        parseFuzzCase(valid + "app.iterations=abc\n", parsed, error));
    EXPECT_FALSE(parseFuzzCase("lbsim-fuzzcase-v1\nscheme=baseline\n",
                               parsed, error))
        << "a case without loads must not parse";
}

// --- Minimizer --------------------------------------------------------------

TEST(Minimizer, ShrinksToTheFailureRelevantCore)
{
    FuzzCase failing = generateFuzzCase(42);
    failing.app.hasStore = true;
    failing.app.iterations = 300;
    failing.app.loads.resize(1);
    failing.app.loads.push_back(failing.app.loads.front());
    failing.app.loads.push_back(failing.app.loads.front());

    // Failure depends only on the store being present.
    std::uint32_t calls = 0;
    const FuzzPredicate still_fails = [&calls](const FuzzCase &c) {
        ++calls;
        return c.app.hasStore;
    };
    const MinimizeResult result =
        minimizeFuzzCase(failing, still_fails, 500);
    EXPECT_TRUE(result.best.app.hasStore);
    EXPECT_EQ(result.best.app.loads.size(), 1u);
    EXPECT_EQ(result.best.app.iterations, 1u);
    EXPECT_EQ(result.best.app.warpsPerCta, 1u);
    EXPECT_EQ(result.best.app.ctasPerSmOfGrid, 1u);
    EXPECT_EQ(result.evaluations, calls);
    EXPECT_GT(result.accepted, 0u);
}

TEST(Minimizer, RespectsEvaluationBudget)
{
    const FuzzCase failing = generateFuzzCase(43);
    const FuzzPredicate always = [](const FuzzCase &) { return true; };
    const MinimizeResult result = minimizeFuzzCase(failing, always, 5);
    EXPECT_LE(result.evaluations, 5u);
}

TEST(Minimizer, KeepsTheOriginalWhenNothingShrinks)
{
    const FuzzCase failing = generateFuzzCase(44);
    // Any change at all loses the failure.
    const std::string original = serializeFuzzCase(failing);
    const FuzzPredicate exact = [&original](const FuzzCase &c) {
        return serializeFuzzCase(c) == original;
    };
    const MinimizeResult result = minimizeFuzzCase(failing, exact, 100);
    EXPECT_EQ(serializeFuzzCase(result.best), original);
    EXPECT_EQ(result.accepted, 0u);
}

// --- End-to-end property checks on fixed seeds ------------------------------

TEST(FuzzProperties, FixedSeedsHoldEveryProperty)
{
    for (const std::uint64_t seed : {11ull, 23ull, 37ull}) {
        const FuzzCase fuzz_case = generateFuzzCase(seed);
        const FuzzCaseResult result = runFuzzCase(fuzz_case);
        EXPECT_TRUE(result.ok)
            << "seed " << seed << " failed property '" << result.property
            << "': " << result.detail;
        EXPECT_GT(result.lockstepChecks, 0u);
        EXPECT_EQ(result.invariantFailures, 0u);
    }
}

} // namespace
} // namespace lbsim
