/**
 * @file
 * Tests for the per-load characterization used by the Fig 2/3 benches.
 */

#include <gtest/gtest.h>

#include "harness/characterize.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

AppProfile
twoLoadApp()
{
    AppProfile app;
    app.id = "CHAR";
    app.description = "characterization probe";
    LoadSpec tile;
    tile.cls = LoadClass::Reuse;
    tile.lines = 64;
    tile.scope = TileScope::PerCta;
    LoadSpec str;
    str.cls = LoadClass::Streaming;
    str.lines = 1;
    app.loads = {tile, str};
    app.aluPerLoad = 2;
    app.warpsPerCta = 8;
    app.regsPerWarp = 16;
    return app;
}

TEST(Characterize, SeparatesReuseFromStreaming)
{
    const AppCharacter character = characterizeApp(twoLoadApp(), 30000);
    ASSERT_EQ(character.loads.size(), 2u);
    int streaming = 0;
    int reused = 0;
    for (const LoadCharacter &load : character.loads) {
        if (load.isStreaming())
            ++streaming;
        else
            ++reused;
    }
    EXPECT_EQ(streaming, 1);
    EXPECT_EQ(reused, 1);
}

TEST(Characterize, ReusedWorkingSetBoundedByTiles)
{
    const AppCharacter character = characterizeApp(twoLoadApp(), 30000);
    // Per-SM reused working set of the tile load: at most 8 resident
    // CTAs x 64 lines x 128 B = 64 KB.
    const double ws = character.topReusedWorkingSetBytes(4);
    EXPECT_GT(ws, 0.0);
    EXPECT_LE(ws, 64.0 * 1024);
}

TEST(Characterize, StreamingBytesGrowWithRate)
{
    AppProfile slow = twoLoadApp();
    slow.loads[1].everyN = 8;
    const double fast_bytes =
        characterizeApp(twoLoadApp(), 30000).streamingBytes();
    const double slow_bytes =
        characterizeApp(slow, 30000).streamingBytes();
    EXPECT_GT(fast_bytes, slow_bytes);
}

TEST(Characterize, LoadsSortedByAccessCount)
{
    const AppCharacter character = characterizeApp(twoLoadApp(), 30000);
    for (std::size_t i = 1; i < character.loads.size(); ++i) {
        EXPECT_GE(character.loads[i - 1].accesses,
                  character.loads[i].accesses);
    }
}

TEST(Characterize, SuiteAppsProduceSaneCharacters)
{
    // Spot-check two suite apps with opposite personalities.
    const AppCharacter bi = characterizeApp(appById("BI"), 30000);
    double bi_stream = bi.streamingBytes();
    EXPECT_GT(bi_stream, 8.0 * 1024); // BI streams heavily.

    const AppCharacter ga = characterizeApp(appById("GA"), 30000);
    // GA's tiny global tile reuses: nearly no streaming load data.
    EXPECT_LT(ga.streamingBytes(), bi_stream);
}

} // namespace
} // namespace lbsim
