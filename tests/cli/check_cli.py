#!/usr/bin/env python3
"""Exit-code contract tests for the lbsim command-line tools.

The exit codes are API: scripts and CI jobs branch on them, so they are
pinned here end-to-end against the real binaries.

  lbsim_cli:     0 ok, 3 watchdog trip (with a parseable JSON hang
                 report next to it)
  lbsim_submit:  0 ok, 2 usage/connect errors, 4 shed by the daemon

Usage: check_cli.py <lbsim_cli> <lbsimd> <lbsim_submit>
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}{': ' + detail if detail and not ok else ''}")
    if not ok:
        FAILURES.append(name)


def run(cmd, **kwargs):
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def test_cli_hang_exit_code(cli, tmp):
    """A wedged run exits 3 and writes a parseable JSON hang report."""
    plan = os.path.join(tmp, "wedge.fault")
    with open(plan, "w") as f:
        # An interconnect wedge from cycle 0: every response is delayed
        # past the cycle budget, so the watchdog must trip.
        f.write("fault=icnt-delay,0,1000000000,1000000000\n")
    report = os.path.join(tmp, "hang.json")
    proc = run([
        cli, "--app", "GA", "--scheme", "baseline", "--sms", "1",
        "--warmup", "0", "--cycles", "120000", "--timeout-cycles", "8000",
        "--no-cache", "--fault-plan", plan, "--hang-report", report,
    ])
    check("cli wedged run exits 3", proc.returncode == 3,
          f"rc={proc.returncode} stderr={proc.stderr[-400:]}")
    try:
        with open(report) as f:
            doc = json.load(f)
        check("hang report parses as JSON", True)
        check("hang report names the trip",
              "watchdog" in json.dumps(doc).lower(), json.dumps(doc)[:200])
    except (OSError, ValueError) as e:
        check("hang report parses as JSON", False, str(e))


def test_cli_ok_exit_code(cli, tmp):
    """A healthy smoke run exits 0."""
    proc = run([
        cli, "--app", "S2", "--scheme", "baseline", "--sms", "1",
        "--warmup", "20000", "--cycles", "30000", "--no-cache", "--csv",
    ])
    check("cli healthy run exits 0", proc.returncode == 0,
          f"rc={proc.returncode} stderr={proc.stderr[-400:]}")


def test_submit_usage_and_connect_errors(submit, tmp):
    proc = run([submit, "--socket", os.path.join(tmp, "x.sock")])
    check("submit without --schemes exits 2", proc.returncode == 2,
          f"rc={proc.returncode}")
    proc = run([
        submit, "--socket", os.path.join(tmp, "nonexistent.sock"),
        "--schemes", "baseline", "--apps", "S2", "--smoke",
    ])
    check("submit to a dead socket exits 2", proc.returncode == 2,
          f"rc={proc.returncode} stderr={proc.stderr[-200:]}")


def test_submit_shed_exit_code(daemon, submit, tmp):
    """A shed submission exits 4, distinct from failure and hang."""
    sock = os.path.join(tmp, "d.sock")
    log = open(os.path.join(tmp, "daemon.log"), "w")
    # --queue 0: the daemon sheds every submission as queue-full.
    proc = subprocess.Popen(
        [daemon, "--socket", sock, "--queue", "0",
         "--plans-journal", "none"],
        stdout=log, stderr=log, cwd=tmp)
    try:
        for _ in range(100):
            if os.path.exists(sock):
                break
            time.sleep(0.05)
        check("daemon came up", os.path.exists(sock))
        shed = run([
            submit, "--socket", sock, "--client", "exit-code-test",
            "--schemes", "baseline", "--apps", "S2", "--smoke",
        ])
        check("shed submission exits 4", shed.returncode == 4,
              f"rc={shed.returncode} stderr={shed.stderr[-200:]}")
        check("shed reason reaches the client",
              "queue-full" in shed.stderr + shed.stdout,
              (shed.stderr + shed.stdout)[-200:])
    finally:
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        log.close()
        check("daemon drains to exit 0 on SIGTERM", rc == 0, f"rc={rc}")


def main():
    if len(sys.argv) != 4:
        print(__doc__)
        return 2
    # The daemon runs with cwd inside the sandbox: absolutize first.
    cli, daemon, submit = (os.path.abspath(p) for p in sys.argv[1:4])
    with tempfile.TemporaryDirectory(prefix="lbsim_cli_test_") as tmp:
        # Keep every artifact (and the memo cache) inside the sandbox.
        os.environ["LBSIM_CACHE_PATH"] = os.path.join(tmp, "cache.journal")
        test_cli_ok_exit_code(cli, tmp)
        test_cli_hang_exit_code(cli, tmp)
        test_submit_usage_and_connect_errors(submit, tmp)
        test_submit_shed_exit_code(daemon, submit, tmp)
    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("all exit-code checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
