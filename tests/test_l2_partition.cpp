/**
 * @file
 * Unit tests for the L2 slice and memory partition.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mem/interconnect.hpp"
#include "mem/l2_cache.hpp"
#include "mem/memory_partition.hpp"

namespace lbsim
{
namespace
{

TEST(L2Slice, MissThenFillThenHit)
{
    GpuConfig cfg;
    SimStats stats;
    L2Slice slice(cfg, 0, &stats);
    EXPECT_EQ(slice.accessRead(0, 1, 10), L2Outcome::Miss);
    std::vector<std::uint64_t> waiters;
    slice.fill(0, 20, waiters);
    ASSERT_EQ(waiters.size(), 1u);
    EXPECT_EQ(waiters[0], 1u);
    EXPECT_EQ(slice.accessRead(0, 2, 30), L2Outcome::Hit);
    EXPECT_EQ(stats.l2Hits, 1u);
}

TEST(L2Slice, ConcurrentMissesMerge)
{
    GpuConfig cfg;
    SimStats stats;
    L2Slice slice(cfg, 0, &stats);
    EXPECT_EQ(slice.accessRead(0, 1, 10), L2Outcome::Miss);
    EXPECT_EQ(slice.accessRead(0, 2, 11), L2Outcome::Merged);
    std::vector<std::uint64_t> waiters;
    slice.fill(0, 20, waiters);
    EXPECT_EQ(waiters.size(), 2u);
}

TEST(L2Slice, WriteNoAllocate)
{
    GpuConfig cfg;
    SimStats stats;
    L2Slice slice(cfg, 0, &stats);
    slice.accessWrite(0, 10);
    EXPECT_EQ(slice.accessRead(0, 1, 20), L2Outcome::Miss);
}

TEST(L2Slice, SliceCapacityIsTotalOverPartitions)
{
    GpuConfig cfg; // 2 MB over 8 partitions = 256 KB per slice.
    SimStats stats;
    L2Slice slice(cfg, 0, &stats);
    EXPECT_EQ(slice.tags().sets() * slice.tags().ways() * kLineBytes,
              cfg.l2.sizeBytes / cfg.numMemPartitions);
}

/** Collects responses for a fake SM. */
class CollectingSink : public ResponseSinkIf
{
  public:
    void
    onResponse(const MemResponse &response, Cycle now) override
    {
        (void)now;
        responses.push_back(response);
    }
    std::vector<MemResponse> responses;
};

struct PartitionFixture : ::testing::Test
{
    PartitionFixture()
    {
        cfg.numSms = 1;
        cfg.numMemPartitions = 1;
        icnt = std::make_unique<Interconnect>(cfg, &stats);
        partition =
            std::make_unique<MemoryPartition>(cfg, 0, icnt.get(), &stats);
        icnt->attachPartition(0, partition.get());
        icnt->attachSm(0, &sink);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle c = 0; c < cycles; ++c) {
            partition->tick(now);
            icnt->tick(now);
            ++now;
        }
    }

    GpuConfig cfg;
    SimStats stats;
    CollectingSink sink;
    std::unique_ptr<Interconnect> icnt;
    std::unique_ptr<MemoryPartition> partition;
    Cycle now = 0;
};

TEST_F(PartitionFixture, ReadMissRoundTripsThroughDram)
{
    MemRequest req;
    req.lineAddr = 4096;
    req.kind = RequestKind::DataRead;
    req.smId = 0;
    icnt->sendRequest(req, now);
    run(3000);
    ASSERT_EQ(sink.responses.size(), 1u);
    EXPECT_EQ(sink.responses[0].lineAddr, 4096u);
    EXPECT_EQ(stats.dramReads, 1u);
}

TEST_F(PartitionFixture, SecondReadHitsInL2)
{
    MemRequest req;
    req.lineAddr = 4096;
    req.kind = RequestKind::DataRead;
    req.smId = 0;
    icnt->sendRequest(req, now);
    run(3000);
    icnt->sendRequest(req, now);
    run(1000);
    EXPECT_EQ(sink.responses.size(), 2u);
    EXPECT_EQ(stats.dramReads, 1u); // Served from L2 the second time.
    EXPECT_GT(stats.l2Hits, 0u);
}

TEST_F(PartitionFixture, L2HitFasterThanDramMiss)
{
    MemRequest req;
    req.lineAddr = 4096;
    req.kind = RequestKind::DataRead;
    req.smId = 0;
    const Cycle t0 = now;
    icnt->sendRequest(req, now);
    run(3000);
    const Cycle miss_latency = sink.responses.at(0).ready - t0;
    const Cycle t1 = now;
    icnt->sendRequest(req, now);
    run(3000);
    const Cycle hit_latency = sink.responses.at(1).ready - t1;
    EXPECT_LT(hit_latency, miss_latency);
}

TEST_F(PartitionFixture, WritesProduceNoResponse)
{
    MemRequest req;
    req.lineAddr = 4096;
    req.kind = RequestKind::DataWrite;
    req.smId = 0;
    icnt->sendRequest(req, now);
    run(3000);
    EXPECT_TRUE(sink.responses.empty());
    EXPECT_EQ(stats.dramWrites, 1u);
}

TEST_F(PartitionFixture, RegBackupBypassesL2)
{
    MemRequest req;
    req.lineAddr = 1 << 20;
    req.kind = RequestKind::RegBackup;
    req.smId = 0;
    req.bypassL2 = true;
    icnt->sendRequest(req, now);
    run(3000);
    EXPECT_EQ(stats.dramBackupWrites, 1u);
    // A later read of the same address misses L2 (backup not cached).
    MemRequest read = req;
    read.kind = RequestKind::DataRead;
    icnt->sendRequest(read, now);
    run(3000);
    EXPECT_EQ(stats.dramReads, 1u);
}

TEST_F(PartitionFixture, RegRestoreProducesTypedResponse)
{
    MemRequest req;
    req.lineAddr = 1 << 20;
    req.kind = RequestKind::RegRestore;
    req.smId = 0;
    icnt->sendRequest(req, now);
    run(3000);
    ASSERT_EQ(sink.responses.size(), 1u);
    EXPECT_EQ(sink.responses[0].kind, RequestKind::RegRestore);
}

} // namespace
} // namespace lbsim
