/**
 * @file
 * Seed-determinism regression tests.
 *
 * The memo cache, the fuzzer's replay files, and the paper's
 * methodology all assume a simulation is a pure function of
 * (config, workload, seed): the same seed must reproduce every counter
 * bit-for-bit, and the seed must actually matter for stochastic
 * workloads. serializeStats() is the byte-exact witness for both.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 60000;
    options.useMemoCache = false;
    return options;
}

/** A seed-sensitive workload: irregular accesses flow from app.seed. */
AppProfile
irregularApp(std::uint64_t seed)
{
    AppProfile app;
    app.id = "det-irr";
    app.description = "determinism probe";
    app.cacheSensitive = true;
    LoadSpec load;
    load.cls = LoadClass::Irregular;
    load.lines = 512;
    load.fanout = 2;
    app.loads.push_back(load);
    app.warpsPerCta = 4;
    app.regsPerWarp = 16;
    app.iterations = 2000;
    app.ctasPerSmOfGrid = 8;
    app.seed = seed;
    return app;
}

TEST(Determinism, SameSeedIsByteIdentical)
{
    SimRunner runner({}, {}, fastOptions());
    const AppProfile app = irregularApp(1234);
    const RunMetrics a = runner.run(app, SchemeConfig::baseline());
    const RunMetrics b = runner.run(app, SchemeConfig::baseline());
    EXPECT_EQ(serializeStats(a.stats), serializeStats(b.stats))
        << "first difference: "
        << firstStatDifference(a.stats, b.stats);
}

TEST(Determinism, SameSeedIsByteIdenticalUnderLinebacker)
{
    SimRunner runner({}, {}, fastOptions());
    const AppProfile app = irregularApp(99);
    const RunMetrics a = runner.run(app, SchemeConfig::linebacker());
    const RunMetrics b = runner.run(app, SchemeConfig::linebacker());
    EXPECT_EQ(serializeStats(a.stats), serializeStats(b.stats))
        << "first difference: "
        << firstStatDifference(a.stats, b.stats);
}

TEST(Determinism, SameSeedIsByteIdenticalOnSuiteApps)
{
    SimRunner runner({}, {}, fastOptions());
    for (const char *id : {"S2", "KM", "CF"}) {
        const AppProfile &app = appById(id);
        const RunMetrics a = runner.run(app, SchemeConfig::baseline());
        const RunMetrics b = runner.run(app, SchemeConfig::baseline());
        EXPECT_EQ(serializeStats(a.stats), serializeStats(b.stats))
            << id << ": " << firstStatDifference(a.stats, b.stats);
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    SimRunner runner({}, {}, fastOptions());
    const RunMetrics a =
        runner.run(irregularApp(1), SchemeConfig::baseline());
    const RunMetrics b =
        runner.run(irregularApp(2), SchemeConfig::baseline());
    // Different irregular address streams must leave some trace in the
    // counters; identical stats would mean the seed is ignored.
    EXPECT_NE(serializeStats(a.stats), serializeStats(b.stats));
}

TEST(Determinism, SerializeStatsCoversEveryCounter)
{
    // A change to any single counter must change the serialized form.
    SimStats stats;
    const std::string baseline_text = serializeStats(stats);
    std::size_t fields = 0;
    forEachStatField(stats, [&](const char *name, auto &field) {
        ++fields;
        const auto saved = field;
        field = saved + 1;
        EXPECT_NE(serializeStats(stats), baseline_text)
            << "counter " << name << " is not serialized";
        const std::string diff = firstStatDifference(stats, SimStats{});
        EXPECT_EQ(diff.rfind(std::string(name) + ":", 0), 0u)
            << "firstStatDifference reported '" << diff
            << "' instead of " << name;
        field = saved;
    });
    EXPECT_EQ(fields, 39u) << "counter enumeration changed; update tests";
    EXPECT_EQ(firstStatDifference(stats, SimStats{}), "");
}

} // namespace
} // namespace lbsim
