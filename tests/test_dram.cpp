/**
 * @file
 * Unit tests for the DRAM channel model.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "mem/dram.hpp"

namespace lbsim
{
namespace
{

GpuConfig
testConfig()
{
    GpuConfig cfg;
    cfg.numMemPartitions = 1; // Whole bandwidth on one channel.
    return cfg;
}

/** Drive the channel until all completions arrive or `limit` cycles. */
std::vector<DramCompletion>
runToCompletion(DramChannel &dram, std::size_t expected, Cycle limit)
{
    std::vector<DramCompletion> done;
    for (Cycle now = 0; now < limit && done.size() < expected; ++now) {
        dram.tick(now);
        dram.drainCompleted(now, done);
    }
    return done;
}

TEST(DramChannel, SingleReadCompletes)
{
    GpuConfig cfg = testConfig();
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    dram.enqueue({0, false, RequestKind::DataRead, 0, 0}, 0);
    const auto done = runToCompletion(dram, 1, 10000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_GT(done[0].done, 0u);
    EXPECT_EQ(stats.dramReads, 1u);
    EXPECT_EQ(stats.dramRowMisses, 1u); // Cold bank: first row open.
}

TEST(DramChannel, RowHitFasterThanRowMiss)
{
    GpuConfig cfg = testConfig();
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    // Same 2 KB row: second access is a row hit.
    dram.enqueue({0, false, RequestKind::DataRead, 0, 0}, 0);
    dram.enqueue({kLineBytes, false, RequestKind::DataRead, 0, 0}, 0);
    const auto done = runToCompletion(dram, 2, 10000);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(stats.dramRowHits, 1u);
    EXPECT_EQ(stats.dramRowMisses, 1u);
}

TEST(DramChannel, KindCountersRouteCorrectly)
{
    GpuConfig cfg = testConfig();
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    dram.enqueue({0, false, RequestKind::DataRead, 0, 0}, 0);
    dram.enqueue({1 << 20, true, RequestKind::DataWrite, 0, 0}, 0);
    dram.enqueue({2 << 20, true, RequestKind::RegBackup, 0, 0}, 0);
    dram.enqueue({3 << 20, false, RequestKind::RegRestore, 0, 0}, 0);
    runToCompletion(dram, 4, 20000);
    EXPECT_EQ(stats.dramReads, 1u);
    EXPECT_EQ(stats.dramWrites, 1u);
    EXPECT_EQ(stats.dramBackupWrites, 1u);
    EXPECT_EQ(stats.dramRestoreReads, 1u);
}

TEST(DramChannel, BackpressureAtQueueDepth)
{
    GpuConfig cfg = testConfig();
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    for (std::uint32_t i = 0; i < cfg.dramQueueDepth; ++i) {
        ASSERT_TRUE(dram.canAccept());
        dram.enqueue({static_cast<Addr>(i) << 20, false,
                      RequestKind::DataRead, 0, 0},
                     0);
    }
    EXPECT_FALSE(dram.canAccept());
}

/** Drive @p streams interleaved sequential streams; return lines/cycle. */
double
sustainedThroughput(std::uint32_t streams, Cycle horizon)
{
    GpuConfig cfg;
    cfg.numMemPartitions = 1;
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    std::vector<std::uint64_t> next(streams);
    for (std::uint32_t s = 0; s < streams; ++s)
        next[s] = static_cast<std::uint64_t>(s) << 24;
    std::uint64_t completed = 0;
    std::uint32_t rr = 0;
    std::uint32_t burst = 0;
    std::vector<DramCompletion> done;
    for (Cycle now = 0; now < horizon; ++now) {
        while (dram.canAccept()) {
            dram.enqueue({next[rr]++ * kLineBytes, false,
                          RequestKind::DataRead, 0, now},
                         now);
            // Streams interleave in row-sized bursts, like coalesced
            // per-warp traffic.
            if (++burst == 16) {
                burst = 0;
                rr = (rr + 1) % streams;
            }
        }
        dram.tick(now);
        done.clear();
        dram.drainCompleted(now, done);
        completed += done.size();
    }
    return static_cast<double>(completed) / horizon;
}

TEST(DramChannel, SustainedThroughputNearBandwidth)
{
    // Many interleaved row-hit streams (the shape real multi-warp
    // traffic has) should approach the configured bandwidth; a single
    // sequential stream is latency-bound by the in-flight window but
    // must still sustain a healthy fraction.
    GpuConfig cfg;
    cfg.numMemPartitions = 1;
    const double peak = cfg.dramBytesPerCycle() / kLineBytes;
    const double multi = sustainedThroughput(8, 50000);
    EXPECT_GT(multi, 0.5 * peak);
    EXPECT_LE(multi, 1.05 * peak);
    const double single = sustainedThroughput(1, 50000);
    EXPECT_GT(single, 0.5 * peak);
    EXPECT_LE(single, 1.05 * peak);
}

TEST(DramChannel, BankParallelismBeatsSingleBankSerialization)
{
    // Many banks' row misses should overlap; throughput with spread
    // addresses must exceed one activation per tRC.
    GpuConfig cfg = testConfig();
    SimStats stats;
    DramChannel dram(cfg, 0, &stats);
    std::uint64_t chunk = 0;
    std::uint64_t completed = 0;
    const Cycle horizon = 20000;
    std::vector<DramCompletion> done;
    for (Cycle now = 0; now < horizon; ++now) {
        while (dram.canAccept()) {
            // One access per 2 KB row chunk: all row misses.
            dram.enqueue({chunk * 16 * kLineBytes, false,
                          RequestKind::DataRead, 0, now},
                         now);
            ++chunk;
        }
        dram.tick(now);
        done.clear();
        dram.drainCompleted(now, done);
        completed += done.size();
    }
    const double per_trc = static_cast<double>(horizon) /
        cfg.dramTiming.rc;
    EXPECT_GT(static_cast<double>(completed), 2.0 * per_trc);
}

} // namespace
} // namespace lbsim
