/**
 * @file
 * Tests for the resilience subsystem: fault-plan serialization, the
 * FaultInjector's deterministic windows, the forward-progress watchdog
 * (unit and end-to-end), hang-report structure, memo-cache hygiene for
 * abnormal runs, and crash-isolated sweep execution.
 *
 * Suite names matter: the TSan CI job filters on
 * Experiment*:MemoCache*:ParallelMap*, so the fork-based sweep and
 * retry tests live under IsolatedSweep* / IsolatedRetry* (fork and
 * TSan do not mix) while the cache-hygiene tests — which never fork —
 * live under MemoCachePersist* to stay inside the TSan net.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/memo_cache.hpp"
#include "harness/report.hpp"
#include "harness/sim_runner.hpp"
#include "mem/request_ledger.hpp"
#include "resilience/faultinject.hpp"
#include "resilience/isolation.hpp"
#include "resilience/watchdog.hpp"
#include "testing/fuzz.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

// --- Fault-plan serialization ---------------------------------------------

FaultPlan
sampleFaultPlan()
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::IcntDelay, 100, 50, 2000});
    plan.events.push_back({FaultKind::IcntReorder, 400, 80, 0});
    plan.events.push_back({FaultKind::DramStorm, 500, 100, 40});
    plan.events.push_back({FaultKind::BackupStall, 600, 200, 0});
    plan.events.push_back({FaultKind::VttRevoke, 700, 300, 0});
    plan.events.push_back({FaultKind::LoadMonitorLie, 800, 400, 0});
    return plan;
}

TEST(FaultPlanTest, SerializationRoundTrips)
{
    const FaultPlan plan = sampleFaultPlan();
    const std::string text = serializeFaultPlan(plan);
    FaultPlan parsed;
    std::string error;
    ASSERT_TRUE(parseFaultPlan(text, parsed, error)) << error;
    ASSERT_EQ(parsed.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind);
        EXPECT_EQ(parsed.events[i].start, plan.events[i].start);
        EXPECT_EQ(parsed.events[i].duration, plan.events[i].duration);
        EXPECT_EQ(parsed.events[i].magnitude, plan.events[i].magnitude);
    }
    EXPECT_EQ(serializeFaultPlan(parsed), text);
}

TEST(FaultPlanTest, ParseAcceptsCommentsAndBareEvents)
{
    FaultPlan parsed;
    std::string error;
    ASSERT_TRUE(parseFaultPlan("# comment\n\nfault=dram-storm,10,20,30\n",
                               parsed, error))
        << error;
    ASSERT_EQ(parsed.events.size(), 1u);
    EXPECT_EQ(parsed.events[0].kind, FaultKind::DramStorm);
    EXPECT_EQ(parsed.events[0].start, 10u);
    EXPECT_EQ(parsed.events[0].duration, 20u);
    EXPECT_EQ(parsed.events[0].magnitude, 30u);
}

TEST(FaultPlanTest, ParseRejectsMalformedEvents)
{
    FaultPlan parsed;
    std::string error;
    EXPECT_FALSE(parseFaultPlan("fault=bogus-kind,1,2,3\n", parsed, error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(parseFaultPlan("fault=icnt-delay,1,2\n", parsed, error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(parseFaultPlan("not an event line\n", parsed, error));
    EXPECT_FALSE(error.empty());
}

TEST(FaultPlanTest, DescriptionIsCompactAndStable)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.description().empty());
    plan.events.push_back({FaultKind::IcntDelay, 100, 50, 2000});
    plan.events.push_back({FaultKind::DramStorm, 500, 100, 40});
    const std::string description = plan.description();
    EXPECT_NE(description.find("icnt-delay"), std::string::npos);
    EXPECT_NE(description.find("dram-storm"), std::string::npos);
    EXPECT_EQ(description, plan.description());
}

// --- FaultInjector windows -------------------------------------------------

TEST(FaultInjectorTest, WindowGatesQueriesAndCountsFirings)
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::IcntDelay, 100, 10, 50});
    FaultInjector injector(plan);
    EXPECT_TRUE(injector.armed());

    EXPECT_EQ(injector.icntResponseDelay(99), 0u);
    EXPECT_EQ(injector.icntResponseDelay(100), 50u);
    EXPECT_EQ(injector.icntResponseDelay(109), 50u);
    EXPECT_EQ(injector.icntResponseDelay(110), 0u);
    EXPECT_EQ(injector.firedCount(FaultKind::IcntDelay), 2u);
    EXPECT_EQ(injector.totalFired(), 2u);
    EXPECT_NE(injector.summary().find("icnt-delay"), std::string::npos);
}

TEST(FaultInjectorTest, OverlappingWindowsSumMagnitudes)
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::DramStorm, 0, 100, 30});
    plan.events.push_back({FaultKind::DramStorm, 50, 100, 70});
    FaultInjector injector(plan);
    EXPECT_EQ(injector.dramStormDelay(10), 30u);
    EXPECT_EQ(injector.dramStormDelay(60), 100u);
    EXPECT_EQ(injector.dramStormDelay(120), 70u);
    EXPECT_EQ(injector.dramStormDelay(200), 0u);
}

TEST(FaultInjectorTest, FlagKindsReportActiveWindows)
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::IcntReorder, 10, 5, 0});
    plan.events.push_back({FaultKind::BackupStall, 20, 5, 0});
    plan.events.push_back({FaultKind::LoadMonitorLie, 30, 5, 0});
    FaultInjector injector(plan);
    EXPECT_FALSE(injector.icntReorderActive(9));
    EXPECT_TRUE(injector.icntReorderActive(12));
    EXPECT_TRUE(injector.backupStallActive(24));
    EXPECT_FALSE(injector.backupStallActive(25));
    EXPECT_TRUE(injector.loadMonitorLieActive(30));
    EXPECT_FALSE(injector.loadMonitorLieActive(36));
}

TEST(FaultInjectorTest, VttRevokeIsConsumedOncePerEvent)
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::VttRevoke, 10, 20, 0});
    FaultInjector injector(plan);
    EXPECT_FALSE(injector.takeVttRevoke(9, 0));
    EXPECT_TRUE(injector.takeVttRevoke(15, 0));
    // Consumed: the same event never fires again inside its window.
    EXPECT_FALSE(injector.takeVttRevoke(16, 0));
    EXPECT_FALSE(injector.takeVttRevoke(29, 0));
    EXPECT_EQ(injector.firedCount(FaultKind::VttRevoke), 1u);
}

TEST(FaultInjectorTest, VttRevokeIsBoundToItsTargetSm)
{
    // magnitude names the target SM: only that SM's tick shard may
    // consume the event (the single-owner rule the parallel SM phase
    // depends on).
    FaultPlan plan;
    plan.events.push_back({FaultKind::VttRevoke, 10, 20, 3});
    FaultInjector injector(plan);
    EXPECT_FALSE(injector.takeVttRevoke(15, 0));
    EXPECT_FALSE(injector.takeVttRevoke(15, 2));
    EXPECT_TRUE(injector.takeVttRevoke(15, 3));
    EXPECT_FALSE(injector.takeVttRevoke(16, 3));
    EXPECT_EQ(injector.firedCount(FaultKind::VttRevoke), 1u);
}

TEST(FaultInjectorTest, UnarmedInjectorIsInert)
{
    FaultInjector injector{FaultPlan{}};
    EXPECT_FALSE(injector.armed());
    EXPECT_EQ(injector.icntResponseDelay(0), 0u);
    EXPECT_EQ(injector.dramStormDelay(0), 0u);
    EXPECT_FALSE(injector.backupStallActive(0));
    EXPECT_FALSE(injector.takeVttRevoke(0, 0));
    EXPECT_EQ(injector.totalFired(), 0u);
    EXPECT_TRUE(injector.summary().empty());
}

// --- Watchdog (unit) -------------------------------------------------------

TEST(WatchdogTest, ZeroThresholdNeverTrips)
{
    Watchdog dog(0, 1);
    for (Cycle now = 0; now < 100; ++now)
        dog.observe(now, 0, {0});
    EXPECT_FALSE(dog.tripped());
}

TEST(WatchdogTest, TripsAfterFlatProgress)
{
    Watchdog dog(10, 1);
    dog.observe(0, 5, {5});
    for (Cycle now = 1; now < 10; ++now) {
        dog.observe(now, 5, {5});
        EXPECT_FALSE(dog.tripped()) << "tripped early at " << now;
    }
    dog.observe(10, 5, {5});
    EXPECT_TRUE(dog.tripped());
    EXPECT_EQ(dog.lastProgressCycle(), 0u);
}

TEST(WatchdogTest, AnyCounterChangeIsProgress)
{
    Watchdog dog(10, 1);
    dog.observe(0, 100, {100});
    // A *decrease* (the warm-up stats reset) must also count as progress.
    dog.observe(5, 0, {100});
    for (Cycle now = 6; now < 15; ++now)
        dog.observe(now, 0, {100});
    EXPECT_FALSE(dog.tripped());
    EXPECT_EQ(dog.lastProgressCycle(), 5u);
    dog.observe(15, 0, {100});
    EXPECT_TRUE(dog.tripped());
}

TEST(WatchdogTest, TracksPerSmProgressIndependently)
{
    Watchdog dog(100, 2);
    dog.observe(0, 1, {10, 20});
    dog.observe(5, 2, {11, 20});
    dog.observe(9, 3, {11, 21});
    EXPECT_EQ(dog.lastSmProgressCycle(0), 5u);
    EXPECT_EQ(dog.lastSmProgressCycle(1), 9u);
    EXPECT_EQ(dog.lastProgressCycle(), 9u);
    EXPECT_FALSE(dog.tripped());
}

// --- RequestLedger hang-diagnosis hooks ------------------------------------

TEST(RequestLedgerTest, OldestOutstandingScansAllStreams)
{
    RequestLedger ledger(2);
    EXPECT_FALSE(ledger.oldestOutstanding().valid);

    MemRequest first;
    first.lineAddr = 0x100;
    first.kind = RequestKind::DataRead;
    first.smId = 0;
    ledger.onIssue(first, 50);

    MemRequest older;
    older.lineAddr = 0x200;
    older.kind = RequestKind::RegRestore;
    older.smId = 1;
    ledger.onIssue(older, 30);

    OldestRequest oldest = ledger.oldestOutstanding();
    ASSERT_TRUE(oldest.valid);
    EXPECT_EQ(oldest.smId, 1u);
    EXPECT_EQ(oldest.kind, RequestKind::RegRestore);
    EXPECT_EQ(oldest.lineAddr, 0x200u);
    EXPECT_EQ(oldest.issued, 30u);

    ledger.onRetire(1, RequestKind::RegRestore, 60);
    oldest = ledger.oldestOutstanding();
    ASSERT_TRUE(oldest.valid);
    EXPECT_EQ(oldest.smId, 0u);
    EXPECT_EQ(oldest.issued, 50u);
    EXPECT_EQ(ledger.totalRetired(), 1u);

    ledger.onRetire(0, RequestKind::DataRead, 70);
    EXPECT_FALSE(ledger.oldestOutstanding().valid);
    EXPECT_EQ(ledger.totalRetired(), 2u);
}

// --- RunMetrics serialization ----------------------------------------------

TEST(RunMetricsSerializationTest, RoundTripsOutcomeAndStats)
{
    RunMetrics m;
    m.outcome = RunOutcome::FaultDegraded;
    m.faultsInjected = 17;
    m.ipc = 1.25;
    m.energyJ = 0.0625;
    m.stats.cycles = 12345;
    m.stats.instructionsIssued = 6789;
    m.stats.l1.l1Hits = 42;

    RunMetrics parsed;
    ASSERT_TRUE(deserializeRunMetrics(serializeRunMetrics(m), parsed));
    EXPECT_EQ(parsed.outcome, RunOutcome::FaultDegraded);
    EXPECT_EQ(parsed.faultsInjected, 17u);
    EXPECT_EQ(parsed.ipc, m.ipc);
    EXPECT_EQ(parsed.energyJ, m.energyJ);
    EXPECT_EQ(parsed.stats.cycles, m.stats.cycles);
    EXPECT_EQ(parsed.stats.instructionsIssued,
              m.stats.instructionsIssued);
    EXPECT_EQ(parsed.stats.l1.l1Hits, m.stats.l1.l1Hits);
}

TEST(RunMetricsSerializationTest, RejectsMalformedText)
{
    RunMetrics parsed;
    EXPECT_FALSE(deserializeRunMetrics("", parsed));
    EXPECT_FALSE(deserializeRunMetrics("banana", parsed));
    EXPECT_FALSE(deserializeRunMetrics("99,0,1", parsed));
}

TEST(RunMetricsSerializationTest, OutcomeNamesRoundTrip)
{
    for (const RunOutcome outcome :
         {RunOutcome::Ok, RunOutcome::Hang, RunOutcome::FaultDegraded,
          RunOutcome::Crashed}) {
        RunOutcome parsed = RunOutcome::Ok;
        ASSERT_TRUE(parseRunOutcome(runOutcomeName(outcome), parsed));
        EXPECT_EQ(parsed, outcome);
    }
    RunOutcome parsed = RunOutcome::Ok;
    EXPECT_FALSE(parseRunOutcome("exploded", parsed));
}

// --- End-to-end fault injection and hang diagnosis -------------------------

/** Small, cache-bypassing options every sim test here uses. */
RunnerOptions
resilienceOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 30000;
    options.useMemoCache = false;
    return options;
}

/** The demo schedule: staging-buffer stall, then a DRAM burst. */
FaultPlan
demoPlan()
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::BackupStall, 8000, 6000, 0});
    plan.events.push_back({FaultKind::DramStorm, 12000, 8000, 300});
    return plan;
}

/**
 * An interconnect wedge the watchdog must catch. The window must open
 * at cycle 0: GA's read misses are all cold misses in the first few
 * thousand cycles (steady state is L1 hits plus response-less writes),
 * so a later window would never see a response to delay.
 */
FaultPlan
wedgePlan()
{
    FaultPlan plan;
    plan.events.push_back(
        {FaultKind::IcntDelay, 0, 1000000000, 1000000000});
    return plan;
}

TEST(ResilienceSimTest, DemoFaultPlanDegradesGracefully)
{
    GpuConfig cfg;
    cfg.warmupCycles = 5000;
    RunnerOptions options = resilienceOptions();
    options.faultPlan = demoPlan();

    SimRunner runner(cfg, LbConfig{}, options);
    const RunMetrics m =
        runner.run(appById("GA"), SchemeConfig::linebacker());
    EXPECT_EQ(m.outcome, RunOutcome::FaultDegraded);
    EXPECT_GT(m.faultsInjected, 0u);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_TRUE(m.hangReport.empty());

    // Fault schedules are part of the configuration: the same plan
    // perturbs exactly the same cycles on a re-run.
    SimRunner again(cfg, LbConfig{}, options);
    const RunMetrics second =
        again.run(appById("GA"), SchemeConfig::linebacker());
    EXPECT_EQ(second.faultsInjected, m.faultsInjected);
    EXPECT_EQ(second.ipc, m.ipc);
    EXPECT_EQ(second.stats.cycles, m.stats.cycles);
    EXPECT_EQ(second.stats.instructionsIssued,
              m.stats.instructionsIssued);
}

TEST(ResilienceSimTest, WedgeTripsWatchdogAndNamesStuckRequest)
{
    GpuConfig cfg;
    cfg.warmupCycles = 0;
    cfg.watchdogCycles = 8000;
    RunnerOptions options = resilienceOptions();
    options.maxCycles = 120000;
    options.faultPlan = wedgePlan();

    SimRunner runner(cfg, LbConfig{}, options);
    const RunMetrics m =
        runner.run(appById("GA"), SchemeConfig::baseline());
    ASSERT_EQ(m.outcome, RunOutcome::Hang);
    // Terminated by the watchdog, far short of the cycle budget.
    EXPECT_LT(m.stats.cycles, options.maxCycles);

    EXPECT_NE(m.hangReport.find("WATCHDOG"), std::string::npos)
        << m.hangReport;
    EXPECT_NE(m.hangReport.find("oldest in-flight request"),
              std::string::npos)
        << m.hangReport;
    EXPECT_NE(m.hangReport.find("DataRead"), std::string::npos)
        << m.hangReport;
    EXPECT_NE(m.hangReport.find("fault injection"), std::string::npos)
        << m.hangReport;

    EXPECT_NE(m.hangReportJson.find("watchdog-trip"), std::string::npos);
    EXPECT_NE(m.hangReportJson.find("oldestRequest"), std::string::npos);

    // Hang diagnosis is deterministic too.
    SimRunner again(cfg, LbConfig{}, options);
    const RunMetrics second =
        again.run(appById("GA"), SchemeConfig::baseline());
    EXPECT_EQ(second.outcome, RunOutcome::Hang);
    EXPECT_EQ(second.hangReport, m.hangReport);
}

TEST(ResilienceSimTest, WatchdogStaysQuietOnHealthyRun)
{
    GpuConfig cfg;
    cfg.warmupCycles = 5000;
    cfg.watchdogCycles = 8000;
    SimRunner runner(cfg, LbConfig{}, resilienceOptions());
    const RunMetrics m =
        runner.run(appById("GA"), SchemeConfig::linebacker());
    EXPECT_EQ(m.outcome, RunOutcome::Ok);
    EXPECT_EQ(m.faultsInjected, 0u);
    EXPECT_TRUE(m.hangReport.empty());
}

// --- Fault-mode fuzz cases -------------------------------------------------

TEST(FuzzFaultModeTest, FaultCasesSerializeDeterministically)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const FuzzCase a = generateFaultFuzzCase(seed);
        const FuzzCase b = generateFaultFuzzCase(seed);
        EXPECT_FALSE(a.faults.empty());
        EXPECT_GT(a.gpu.watchdogCycles, 0u);
        EXPECT_EQ(serializeFuzzCase(a), serializeFuzzCase(b));

        FuzzCase round_trip;
        std::string error;
        ASSERT_TRUE(
            parseFuzzCase(serializeFuzzCase(a), round_trip, error))
            << error;
        EXPECT_EQ(serializeFuzzCase(round_trip), serializeFuzzCase(a));
        EXPECT_EQ(round_trip.faults.events.size(),
                  a.faults.events.size());
    }
}

TEST(FuzzFaultModeTest, V1CasesStillParse)
{
    const std::string v1_text =
        "lbsim-fuzzcase-v1\n"
        "seed=7\n"
        "scheme=baseline\n"
        "load=reuse,16,0,0,0,0,1\n";
    FuzzCase parsed;
    std::string error;
    ASSERT_TRUE(parseFuzzCase(v1_text, parsed, error)) << error;
    EXPECT_EQ(parsed.seed, 7u);
    EXPECT_TRUE(parsed.faults.empty());
    EXPECT_EQ(parsed.gpu.watchdogCycles, 0u);
    // Re-serialization upgrades to the v2 header.
    EXPECT_EQ(serializeFuzzCase(parsed).find("lbsim-fuzzcase-v2"), 0u);
}

TEST(FuzzFaultModeTest, FaultCasePropertiesHold)
{
    const FuzzCaseResult result = runFuzzCase(generateFaultFuzzCase(1));
    EXPECT_TRUE(result.ok) << result.property << ": " << result.detail;
    EXPECT_GT(result.lockstepChecks, 0u);
    EXPECT_EQ(result.invariantFailures, 0u);
}

// --- Memo-cache hygiene for abnormal runs ----------------------------------

TEST(MemoCachePersistTest, NonPersistedResultsSkipDiskAndMemory)
{
    const std::string path =
        testing::TempDir() + "lbsim_persist_flag_cache.csv";
    std::remove(path.c_str());

    MemoCache cache(path);
    int computed = 0;
    const auto transient = [&computed] {
        ++computed;
        return MemoCache::ComputeResult{"transient-value", false};
    };
    EXPECT_EQ(cache.getOrComputeIf("key", transient), "transient-value");
    EXPECT_FALSE(cache.lookup("key").has_value());
    // Not memoized: the same key computes again.
    EXPECT_EQ(cache.getOrComputeIf("key", transient), "transient-value");
    EXPECT_EQ(computed, 2);

    // Nothing reached disk either.
    MemoCache reloaded(path);
    EXPECT_FALSE(reloaded.lookup("key").has_value());
    std::remove(path.c_str());
}

TEST(MemoCachePersistTest, PersistedResultsStillStore)
{
    const std::string path =
        testing::TempDir() + "lbsim_persist_ok_cache.csv";
    std::remove(path.c_str());
    {
        MemoCache cache(path);
        EXPECT_EQ(cache.getOrComputeIf(
                      "key",
                      [] {
                          return MemoCache::ComputeResult{"kept", true};
                      }),
                  "kept");
    }
    MemoCache reloaded(path);
    EXPECT_EQ(reloaded.lookup("key").value_or(""), "kept");
    std::remove(path.c_str());
}

TEST(MemoCachePersistTest, HangRunsNeverReachTheCache)
{
    const std::string path =
        testing::TempDir() + "lbsim_hang_cache.csv";
    std::remove(path.c_str());
    ASSERT_EQ(setenv("LBSIM_CACHE_PATH", path.c_str(), 1), 0);

    GpuConfig cfg;
    cfg.warmupCycles = 0;
    cfg.watchdogCycles = 8000;
    RunnerOptions options = resilienceOptions();
    options.maxCycles = 120000;
    options.useMemoCache = true;
    options.faultPlan = wedgePlan();

    SimRunner runner(cfg, LbConfig{}, options);
    const RunMetrics m =
        runner.run(appById("GA"), SchemeConfig::baseline());
    EXPECT_EQ(m.outcome, RunOutcome::Hang);
    unsetenv("LBSIM_CACHE_PATH");

    // The cache file must hold no entry for the hung run (typically it
    // was never created at all).
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        EXPECT_EQ(line.find('|'), std::string::npos) << line;
    std::remove(path.c_str());
}

// --- Crash-isolated sweep execution ----------------------------------------

RunnerOptions
sweepOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 20000;
    options.useMemoCache = false;
    return options;
}

TEST(IsolatedSweepTest, CrashingCellDoesNotPoisonSurvivors)
{
    if (!isolationSupported())
        GTEST_SKIP() << "fork() unavailable";

    GpuConfig cfg;
    cfg.warmupCycles = 5000;
    ExperimentPlan plan(cfg, LbConfig{}, sweepOptions());
    plan.add(appById("GA"), SchemeConfig::baseline());
    plan.addCustom("GA", "Crasher", {}, [](SimRunner &) -> RunMetrics {
        std::abort();
    });
    plan.add(appById("GA"), SchemeConfig::linebacker());

    EngineOptions opts;
    opts.threads = 2;
    opts.isolateCells = true;
    opts.maxRetries = 0;
    const std::vector<CellResult> results =
        ExperimentEngine(opts).run(plan);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_GT(results[0].metrics.ipc, 0.0);
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].outcome, RunOutcome::Crashed);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_TRUE(results[2].ok);
    EXPECT_GT(results[2].metrics.ipc, 0.0);

    // The partial-result JSON still records every cell, including the
    // crashed one's outcome.
    const std::string json_path =
        testing::TempDir() + "lbsim_isolated_sweep.json";
    writeExperimentJson(json_path, "resilience-test", false, results);
    std::ifstream in(json_path);
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("crashed"), std::string::npos);
    EXPECT_NE(content.str().find("Crasher"), std::string::npos);
    EXPECT_GE(static_cast<int>(content.str().find("Linebacker")), 0);
    std::remove(json_path.c_str());
}

TEST(IsolatedSweepTest, IsolatedCellsMatchInProcessResults)
{
    if (!isolationSupported())
        GTEST_SKIP() << "fork() unavailable";

    GpuConfig cfg;
    cfg.warmupCycles = 5000;
    ExperimentPlan plan(cfg, LbConfig{}, sweepOptions());
    plan.add(appById("GA"), SchemeConfig::baseline());
    plan.add(appById("GA"), SchemeConfig::linebacker());

    EngineOptions in_process;
    in_process.threads = 1;
    const std::vector<CellResult> direct =
        ExperimentEngine(in_process).run(plan);

    EngineOptions isolated = in_process;
    isolated.isolateCells = true;
    const std::vector<CellResult> forked =
        ExperimentEngine(isolated).run(plan);

    ASSERT_EQ(direct.size(), forked.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        ASSERT_TRUE(direct[i].ok);
        ASSERT_TRUE(forked[i].ok) << forked[i].error;
        EXPECT_EQ(forked[i].metrics.appId, direct[i].metrics.appId);
        EXPECT_EQ(forked[i].metrics.ipc, direct[i].metrics.ipc);
        EXPECT_EQ(forked[i].metrics.energyJ, direct[i].metrics.energyJ);
        EXPECT_EQ(forked[i].metrics.stats.cycles,
                  direct[i].metrics.stats.cycles);
        EXPECT_EQ(forked[i].metrics.stats.instructionsIssued,
                  direct[i].metrics.stats.instructionsIssued);
        EXPECT_EQ(forked[i].outcome, RunOutcome::Ok);
    }
}

// --- Crashed-cell retry policy ---------------------------------------------

/**
 * Cross-process attempt counter: the cell body runs in a forked child,
 * so only the filesystem survives between attempts. Reading then
 * rewriting is race-free here because the engine retries one attempt
 * at a time.
 */
int
bumpAttemptCounter(const std::string &path)
{
    int attempts = 0;
    {
        std::ifstream in(path);
        in >> attempts;
    }
    std::ofstream out(path, std::ios::trunc);
    out << attempts + 1;
    return attempts;
}

/**
 * A cell that crashes its first @p crashes attempts and then succeeds,
 * memoizing its result only on the successful attempt — the same
 * store-after-success discipline SimRunner uses.
 */
ExperimentCell
flakyCell(const std::string &counter_path, const std::string &cache_path,
          int crashes)
{
    ExperimentPlan plan(GpuConfig{}, LbConfig{}, sweepOptions());
    plan.addCustom(
        "GA", "Flaky", {},
        [counter_path, cache_path, crashes](SimRunner &) -> RunMetrics {
            if (bumpAttemptCounter(counter_path) < crashes)
                std::abort();
            RunMetrics m;
            m.outcome = RunOutcome::Ok;
            m.ipc = 1.25;
            m.stats.cycles = 1000;
            m.stats.instructionsIssued = 1250;
            MemoCache(cache_path).store("flaky-cell",
                                        serializeRunMetrics(m));
            return m;
        });
    return plan.cells()[0];
}

TEST(IsolatedRetryTest, BackoffScheduleIsExponentialAndRecovers)
{
    if (!isolationSupported())
        GTEST_SKIP() << "fork() unavailable";

    const std::string counter = testing::TempDir() + "lbsim_retry_n.txt";
    const std::string cache =
        testing::TempDir() + "lbsim_retry_cache.journal";
    std::remove(counter.c_str());
    std::remove(cache.c_str());

    EngineOptions opts;
    opts.isolateCells = true;
    opts.maxRetries = 3;
    opts.retryBackoffMs = 50;
    std::vector<std::uint64_t> delays;
    opts.retrySleep = [&delays](unsigned attempt,
                                std::uint64_t delay_ms) {
        EXPECT_EQ(attempt + 1, delays.size() + 1);
        delays.push_back(delay_ms);
    };

    // Two forced crashes, then success on the third attempt.
    const CellResult result =
        runExperimentCell(flakyCell(counter, cache, 2), opts);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.outcome, RunOutcome::Ok);
    EXPECT_EQ(result.metrics.ipc, 1.25);

    // The backoff doubled per attempt: 50ms, then 100ms.
    ASSERT_EQ(delays.size(), 2u);
    EXPECT_EQ(delays[0], 50u);
    EXPECT_EQ(delays[1], 100u);
    EXPECT_EQ(bumpAttemptCounter(counter), 3);  // 2 crashes + 1 success

    // Exactly the successful attempt reached the memo journal.
    MemoCache reloaded(cache);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.lookup("flaky-cell").value_or(""),
              serializeRunMetrics(result.metrics));
    std::remove(counter.c_str());
    std::remove(cache.c_str());
}

TEST(IsolatedRetryTest, RetryCapGivesUpAndPersistsNothing)
{
    if (!isolationSupported())
        GTEST_SKIP() << "fork() unavailable";

    const std::string counter =
        testing::TempDir() + "lbsim_retry_cap_n.txt";
    const std::string cache =
        testing::TempDir() + "lbsim_retry_cap_cache.journal";
    std::remove(counter.c_str());
    std::remove(cache.c_str());

    EngineOptions opts;
    opts.isolateCells = true;
    opts.maxRetries = 2;
    opts.retryBackoffMs = 50;
    std::vector<std::uint64_t> delays;
    opts.retrySleep = [&delays](unsigned, std::uint64_t delay_ms) {
        delays.push_back(delay_ms);
    };

    // Crashes forever: the cap must stop the retries.
    const CellResult result =
        runExperimentCell(flakyCell(counter, cache, 1000), opts);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.outcome, RunOutcome::Crashed);
    EXPECT_FALSE(result.error.empty());

    // 1 initial + 2 retries = 3 attempts, with backoffs 50ms and 100ms.
    EXPECT_EQ(bumpAttemptCounter(counter), 3);
    ASSERT_EQ(delays.size(), 2u);
    EXPECT_EQ(delays[0], 50u);
    EXPECT_EQ(delays[1], 100u);

    // No failed attempt ever reached the memo journal.
    EXPECT_EQ(MemoCache(cache).size(), 0u);
    std::remove(counter.c_str());
    std::remove(cache.c_str());
}

TEST(IsolatedSweepTest, TimedOutCellReportsHang)
{
    if (!isolationSupported())
        GTEST_SKIP() << "fork() unavailable";

    ExperimentPlan plan(GpuConfig{}, LbConfig{}, sweepOptions());
    plan.addCustom("GA", "Sleeper", {}, [](SimRunner &) -> RunMetrics {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return {};
    });

    EngineOptions opts;
    opts.threads = 1;
    opts.isolateCells = true;
    opts.cellTimeoutSec = 1;
    opts.maxRetries = 0;
    const std::vector<CellResult> results =
        ExperimentEngine(opts).run(plan);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].outcome, RunOutcome::Hang);
    EXPECT_NE(results[0].error.find("wall-clock"), std::string::npos);
}

} // namespace
} // namespace lbsim
