/**
 * @file
 * Unit and property tests for the address-pattern generators.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/pattern.hpp"

namespace lbsim
{
namespace
{

AccessContext
ctx(std::uint32_t cta, std::uint32_t warp, std::uint32_t iter,
    std::uint32_t sm = 0)
{
    AccessContext c;
    c.smId = sm;
    c.globalCtaId = cta;
    c.warpInCta = warp;
    c.iteration = iter;
    return c;
}

TEST(TiledReusePattern, StaysWithinTileFootprint)
{
    TiledReusePattern pattern(0, 64, TileScope::PerCta, 8);
    std::set<Addr> seen;
    std::vector<Addr> lines;
    for (std::uint32_t iter = 0; iter < 500; ++iter) {
        for (std::uint32_t warp = 0; warp < 8; ++warp) {
            lines.clear();
            pattern.generate(ctx(3, warp, iter), lines);
            ASSERT_EQ(lines.size(), 1u);
            seen.insert(lines[0]);
        }
    }
    // All accesses fall inside CTA 3's 64-line tile.
    EXPECT_LE(seen.size(), 64u);
    for (Addr addr : seen) {
        EXPECT_GE(lineIndex(addr), 3u * 64);
        EXPECT_LT(lineIndex(addr), 4u * 64);
    }
}

TEST(TiledReusePattern, RevisitsAfterFullSweep)
{
    TiledReusePattern pattern(0, 16, TileScope::PerWarp, 8);
    std::vector<Addr> first, again;
    pattern.generate(ctx(0, 0, 0), first);
    pattern.generate(ctx(0, 0, 16), again); // One full sweep later.
    EXPECT_EQ(first, again);
}

TEST(TiledReusePattern, ScopesSeparateInstances)
{
    TiledReusePattern per_cta(0, 32, TileScope::PerCta, 8);
    std::vector<Addr> a, b;
    per_cta.generate(ctx(0, 0, 0), a);
    per_cta.generate(ctx(9, 0, 0), b);
    // Different CTAs sweep disjoint tiles.
    EXPECT_NE(lineIndex(a[0]) / 32, lineIndex(b[0]) / 32);
}

TEST(TiledReusePattern, GlobalScopeSharesOneTile)
{
    TiledReusePattern global(0, 32, TileScope::Global, 8);
    std::set<Addr> seen;
    std::vector<Addr> lines;
    for (std::uint32_t cta = 0; cta < 16; ++cta) {
        for (std::uint32_t iter = 0; iter < 64; ++iter) {
            lines.clear();
            global.generate(ctx(cta, 0, iter), lines);
            seen.insert(lines[0]);
        }
    }
    EXPECT_LE(seen.size(), 32u);
}

TEST(TiledReusePattern, SharersAreDecorrelated)
{
    // Two sharers of one tile must not walk in lockstep (lockstep would
    // collapse reuse into MSHR merges).
    TiledReusePattern pattern(0, 64, TileScope::PerCta, 8);
    std::vector<Addr> a, b;
    pattern.generate(ctx(0, 0, 5), a);
    pattern.generate(ctx(0, 1, 5), b);
    EXPECT_NE(a[0], b[0]);
}

TEST(StreamingPattern, NeverRevisits)
{
    StreamingPattern pattern(0, 8, 1);
    std::unordered_set<Addr> seen;
    std::vector<Addr> lines;
    for (std::uint32_t iter = 0; iter < 1000; ++iter) {
        lines.clear();
        pattern.generate(ctx(2, 3, iter), lines);
        ASSERT_EQ(lines.size(), 1u);
        EXPECT_TRUE(seen.insert(lines[0]).second)
            << "stream revisited a line at iteration " << iter;
    }
}

TEST(StreamingPattern, DistinctWarpsDistinctStreams)
{
    StreamingPattern pattern(0, 8, 1);
    std::vector<Addr> a, b;
    pattern.generate(ctx(0, 0, 7), a);
    pattern.generate(ctx(0, 1, 7), b);
    EXPECT_NE(a[0], b[0]);
}

TEST(StreamingPattern, PeriodSkipsIterations)
{
    StreamingPattern pattern(0, 8, 1, 4);
    std::vector<Addr> lines;
    std::uint32_t touched = 0;
    for (std::uint32_t iter = 0; iter < 16; ++iter) {
        lines.clear();
        pattern.generate(ctx(0, 0, iter), lines);
        touched += static_cast<std::uint32_t>(lines.size());
    }
    EXPECT_EQ(touched, 4u);
}

TEST(StreamingPattern, MultipleLinesPerIteration)
{
    StreamingPattern pattern(0, 8, 3);
    std::vector<Addr> lines;
    pattern.generate(ctx(0, 0, 0), lines);
    EXPECT_EQ(lines.size(), 3u);
}

TEST(IrregularPattern, DeterministicForSameContext)
{
    IrregularPattern pattern(0, 1 << 16, 4, 128, 0.5, 42);
    std::vector<Addr> a, b;
    pattern.generate(ctx(1, 2, 3), a);
    pattern.generate(ctx(1, 2, 3), b);
    EXPECT_EQ(a, b);
}

TEST(IrregularPattern, FanoutProducesThatManyLines)
{
    IrregularPattern pattern(0, 1 << 16, 4, 0, 0.0, 42);
    std::vector<Addr> lines;
    pattern.generate(ctx(0, 0, 0), lines);
    EXPECT_EQ(lines.size(), 4u);
}

TEST(IrregularPattern, HotSubsetReceivesItsShare)
{
    const std::uint64_t hot = 64;
    IrregularPattern pattern(0, 1 << 20, 1, hot, 0.7, 42);
    std::vector<Addr> lines;
    std::uint32_t in_hot = 0;
    const std::uint32_t total = 4000;
    for (std::uint32_t i = 0; i < total; ++i) {
        lines.clear();
        pattern.generate(ctx(i % 61, i % 7, i), lines);
        if (lineIndex(lines[0]) < hot)
            ++in_hot;
    }
    const double share = static_cast<double>(in_hot) / total;
    EXPECT_NEAR(share, 0.7, 0.05);
}

TEST(IrregularPattern, StaysWithinFootprint)
{
    const std::uint64_t footprint = 1 << 10;
    IrregularPattern pattern(0, footprint, 2, 0, 0.0, 7);
    std::vector<Addr> lines;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        lines.clear();
        pattern.generate(ctx(i, i % 8, i * 3), lines);
        for (Addr addr : lines)
            EXPECT_LT(lineIndex(addr), footprint);
    }
}

/** Property: patterns are pure functions (scheme-independent streams). */
class PatternPurity : public ::testing::TestWithParam<int>
{
};

TEST_P(PatternPurity, InterleavingDoesNotChangeAddresses)
{
    const int variant = GetParam();
    auto make = [variant]() -> std::unique_ptr<AddressPatternIf> {
        switch (variant) {
          case 0:
            return std::make_unique<TiledReusePattern>(
                0, 96, TileScope::PerCta, 8);
          case 1:
            return std::make_unique<StreamingPattern>(0, 8, 2, 3);
          default:
            return std::make_unique<IrregularPattern>(0, 1 << 14, 3, 64,
                                                      0.4, 99);
        }
    };
    auto p1 = make();
    auto p2 = make();
    // p1 queried in-order; p2 queried in reverse order.
    std::vector<std::vector<Addr>> in_order(100), reversed(100);
    for (std::uint32_t i = 0; i < 100; ++i)
        p1->generate(ctx(i % 5, i % 8, i), in_order[i]);
    for (std::uint32_t i = 100; i-- > 0;)
        p2->generate(ctx(i % 5, i % 8, i), reversed[i]);
    EXPECT_EQ(in_order, reversed);
}

INSTANTIATE_TEST_SUITE_P(AllPatternKinds, PatternPurity,
                         ::testing::Values(0, 1, 2));

} // namespace
} // namespace lbsim
