/**
 * @file
 * Whole-GPU integration tests: cross-module invariants on real suite
 * workloads under every scheme.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 120000;
    options.useMemoCache = false;
    return options;
}

/** Invariants every run must satisfy regardless of scheme. */
void
checkInvariants(const RunMetrics &metrics)
{
    const SimStats &s = metrics.stats;
    SCOPED_TRACE(metrics.appId + "/" + metrics.schemeName);
    EXPECT_GT(s.instructionsIssued, 0u);
    EXPECT_GT(s.l1.total(), 0u);
    // Miss classification partitions misses.
    EXPECT_EQ(s.coldMisses + s.capacityMisses, s.l1.misses);
    // Victim hits require victim stores first.
    if (s.l1.regHits > 0) {
        EXPECT_GT(s.victimLinesStored, 0u);
    }
    // Backup and restore move whole register images; restores never
    // exceed backups.
    EXPECT_LE(s.dramRestoreReads, s.dramBackupWrites);
    // Activations cannot exceed throttles.
    EXPECT_LE(s.ctaActivateEvents, s.ctaThrottleEvents);
    // Energy is positive and finite.
    EXPECT_GT(metrics.energyJ, 0.0);
    EXPECT_TRUE(std::isfinite(metrics.energyJ));
}

class SchemeInvariants
    : public ::testing::TestWithParam<std::tuple<const char *,
                                                 const char *>>
{
};

TEST_P(SchemeInvariants, HoldOnRealWorkloads)
{
    const auto [app_id, scheme_name] = GetParam();
    SimRunner runner({}, {}, fastOptions());
    const AppProfile &app = appById(app_id);
    SchemeConfig scheme;
    const std::string name = scheme_name;
    if (name == "baseline")
        scheme = SchemeConfig::baseline();
    else if (name == "swl")
        scheme = SchemeConfig::bestSwl(16);
    else if (name == "pcal")
        scheme = SchemeConfig::pcal();
    else if (name == "cerf")
        scheme = SchemeConfig::cerf();
    else if (name == "lb")
        scheme = SchemeConfig::linebacker();
    else if (name == "svc")
        scheme = SchemeConfig::selectiveVictimCaching();
    else
        FAIL() << "unknown scheme " << name;
    checkInvariants(runner.run(app, scheme));
}

INSTANTIATE_TEST_SUITE_P(
    AppsTimesSchemes, SchemeInvariants,
    ::testing::Combine(::testing::Values("S2", "KM", "BI", "LI", "BG"),
                       ::testing::Values("baseline", "swl", "pcal",
                                         "cerf", "lb", "svc")));

TEST(GpuIntegration, SwlLimitsReduceIssueOpportunities)
{
    SimRunner runner({}, {}, fastOptions());
    const AppProfile &app = appById("LI"); // Compute bound.
    const RunMetrics full = runner.run(app, SchemeConfig::baseline());
    const RunMetrics limited = runner.run(app, SchemeConfig::bestSwl(4));
    // Severely limiting warps must hurt a compute-bound app.
    EXPECT_LT(limited.ipc, full.ipc);
}

TEST(GpuIntegration, CacheExtIncreasesHitRatio)
{
    SimRunner runner({}, {}, fastOptions());
    const AppProfile &app = appById("S2");
    const RunMetrics base = runner.run(app, SchemeConfig::baseline());
    const RunMetrics ext = runner.run(app, SchemeConfig::cacheExtension());
    const auto ratio = [](const RunMetrics &m) {
        return static_cast<double>(m.stats.l1.l1Hits) /
            m.stats.l1.total();
    };
    EXPECT_GE(ratio(ext), ratio(base));
}

TEST(GpuIntegration, PcalProducesBypassTraffic)
{
    SimRunner runner({}, {}, fastOptions());
    const RunMetrics pcal =
        runner.run(appById("S2"), SchemeConfig::pcal());
    EXPECT_GT(pcal.stats.l1.bypasses, 0u);
}

TEST(GpuIntegration, CerfChargesCacheAccessesToBanks)
{
    SimRunner runner({}, {}, fastOptions());
    const AppProfile &app = appById("S2");
    const RunMetrics base = runner.run(app, SchemeConfig::baseline());
    const RunMetrics cerf = runner.run(app, SchemeConfig::cerf());
    // Unified structure: strictly more register-file accesses.
    EXPECT_GT(cerf.stats.rfAccesses, base.stats.rfAccesses);
}

TEST(GpuIntegration, DeterministicAcrossRuns)
{
    SimRunner runner({}, {}, fastOptions());
    const AppProfile &app = appById("BC");
    const RunMetrics a = runner.run(app, SchemeConfig::linebacker());
    const RunMetrics b = runner.run(app, SchemeConfig::linebacker());
    EXPECT_EQ(a.stats.instructionsIssued, b.stats.instructionsIssued);
    EXPECT_EQ(a.stats.l1.l1Hits, b.stats.l1.l1Hits);
    EXPECT_EQ(a.stats.dramLineTransfers(), b.stats.dramLineTransfers());
}

TEST(GpuIntegration, LockstepCleanAcrossSchemes)
{
    // The differential reference model must agree with the timing
    // simulator on every access outcome and eviction across the full
    // policy space, not just the baseline.
    RunnerOptions options = fastOptions();
    options.maxCycles = 60000;
    options.lockstep = true;
    SimRunner runner({}, {}, options);
    const AppProfile &app = appById("S2");
    for (const SchemeConfig &scheme :
         {SchemeConfig::baseline(), SchemeConfig::pcal(),
          SchemeConfig::cerf(), SchemeConfig::linebacker(),
          SchemeConfig::selectiveVictimCaching()}) {
        const RunMetrics m = runner.run(app, scheme);
        SCOPED_TRACE(scheme.name);
        EXPECT_GT(m.lockstepChecks, 0u);
        EXPECT_EQ(m.lockstepMismatches, 0u) << m.lockstepFirstMismatch;
    }
}

TEST(GpuIntegration, LockstepMatchesUncheckedRunExactly)
{
    // The checkers are taps, not actors: enabling lockstep must not
    // perturb a single counter of the simulation it observes.
    RunnerOptions options = fastOptions();
    options.maxCycles = 60000;
    SimRunner plain({}, {}, options);
    options.lockstep = true;
    SimRunner checked({}, {}, options);
    const AppProfile &app = appById("KM");
    const RunMetrics a = plain.run(app, SchemeConfig::linebacker());
    const RunMetrics b = checked.run(app, SchemeConfig::linebacker());
    EXPECT_EQ(serializeStats(a.stats), serializeStats(b.stats))
        << "lockstep perturbed the run: "
        << firstStatDifference(a.stats, b.stats);
}

TEST(GpuIntegration, WarmupResetPreservesRates)
{
    // Warm-up must not change steady-state relative behaviour, only
    // drop the cold prologue from the counters.
    RunnerOptions options = fastOptions();
    SimRunner cold({}, {}, options);
    GpuConfig warm_cfg;
    warm_cfg.warmupCycles = 60000;
    SimRunner warm(warm_cfg, {}, options);
    const AppProfile &app = appById("GA"); // Small working set.
    const RunMetrics c = cold.run(app, SchemeConfig::baseline());
    const RunMetrics w = warm.run(app, SchemeConfig::baseline());
    EXPECT_EQ(w.stats.cycles, 120000u);
    // Warm measurement sees fewer cold misses per access.
    const auto cold_ratio = static_cast<double>(c.stats.coldMisses) /
        c.stats.l1.total();
    const auto warm_ratio = static_cast<double>(w.stats.coldMisses) /
        w.stats.l1.total();
    EXPECT_LE(warm_ratio, cold_ratio);
}

} // namespace
} // namespace lbsim
