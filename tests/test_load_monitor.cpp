/**
 * @file
 * Unit tests for the Load Monitor's per-load locality classification.
 */

#include <gtest/gtest.h>

#include "lb/load_monitor.hpp"

namespace lbsim
{
namespace
{

LbConfig
cfg()
{
    return LbConfig{};
}

/** Feed @p hits hits and @p misses misses to hashed-pc @p hpc. */
void
feed(LoadMonitor &lm, std::uint8_t hpc, std::uint32_t hits,
     std::uint32_t misses)
{
    for (std::uint32_t i = 0; i < hits; ++i)
        lm.recordAccess(hpc * 4, hpc, true);
    for (std::uint32_t i = 0; i < misses; ++i)
        lm.recordAccess(hpc * 4, hpc, false);
}

TEST(LoadMonitor, SelectsConsistentHighLocalityLoad)
{
    LbConfig c = cfg();
    LoadMonitor lm(c);
    feed(lm, 3, 30, 70); // 30% >= 20% threshold.
    EXPECT_EQ(lm.endWindow(), MonitorState::Monitoring);
    feed(lm, 3, 30, 70);
    EXPECT_EQ(lm.endWindow(), MonitorState::Selected);
    EXPECT_TRUE(lm.isSelected(3));
    EXPECT_EQ(lm.selectedCount(), 1u);
    EXPECT_EQ(lm.windowsUsed(), 2u);
}

TEST(LoadMonitor, DisablesWhenNothingQualifiesTwice)
{
    LoadMonitor lm(cfg());
    feed(lm, 3, 5, 95);
    EXPECT_EQ(lm.endWindow(), MonitorState::Monitoring);
    feed(lm, 3, 5, 95);
    EXPECT_EQ(lm.endWindow(), MonitorState::Disabled);
    EXPECT_EQ(lm.selectedCount(), 0u);
}

TEST(LoadMonitor, MismatchedSetsExtendMonitoring)
{
    // Paper: a subset matching is not enough; the whole high-locality
    // set must repeat.
    LoadMonitor lm(cfg());
    feed(lm, 1, 50, 50);
    feed(lm, 2, 50, 50);
    lm.endWindow(); // {1, 2}
    feed(lm, 1, 50, 50);
    feed(lm, 2, 5, 95);
    EXPECT_EQ(lm.endWindow(), MonitorState::Monitoring); // {1} != {1,2}
    feed(lm, 1, 50, 50);
    EXPECT_EQ(lm.endWindow(), MonitorState::Selected); // {1} == {1}
    EXPECT_TRUE(lm.isSelected(1));
    EXPECT_FALSE(lm.isSelected(2));
}

TEST(LoadMonitor, MultipleLoadsAllSelected)
{
    // No limit on the number of tagged loads.
    LoadMonitor lm(cfg());
    for (int w = 0; w < 2; ++w) {
        feed(lm, 4, 40, 60);
        feed(lm, 9, 90, 10);
        feed(lm, 17, 25, 75);
        lm.endWindow();
    }
    EXPECT_EQ(lm.selectedCount(), 3u);
}

TEST(LoadMonitor, StreamingLoadNeverSelected)
{
    LoadMonitor lm(cfg());
    for (int w = 0; w < 2; ++w) {
        feed(lm, 1, 60, 40);
        feed(lm, 2, 0, 100); // Pure stream.
        lm.endWindow();
    }
    EXPECT_EQ(lm.state(), MonitorState::Selected);
    EXPECT_FALSE(lm.isSelected(2));
}

TEST(LoadMonitor, ThresholdIsInclusive)
{
    LoadMonitor lm(cfg());
    for (int w = 0; w < 2; ++w) {
        feed(lm, 5, 20, 80); // Exactly 20%.
        lm.endWindow();
    }
    EXPECT_EQ(lm.state(), MonitorState::Selected);
}

TEST(LoadMonitor, IdleEntriesDoNotQualify)
{
    LoadMonitor lm(cfg());
    for (int w = 0; w < 2; ++w) {
        feed(lm, 0, 50, 50);
        lm.endWindow();
    }
    EXPECT_TRUE(lm.isSelected(0));
    EXPECT_FALSE(lm.isSelected(7)); // Never accessed.
}

TEST(LoadMonitor, NoUpdatesAfterSelection)
{
    LoadMonitor lm(cfg());
    for (int w = 0; w < 2; ++w) {
        feed(lm, 1, 50, 50);
        lm.endWindow();
    }
    ASSERT_EQ(lm.state(), MonitorState::Selected);
    // New traffic must not change the selection.
    feed(lm, 2, 100, 0);
    EXPECT_EQ(lm.endWindow(), MonitorState::Selected);
    EXPECT_FALSE(lm.isSelected(2));
}

TEST(LoadMonitor, GivesUpAfterUnstableWindows)
{
    LoadMonitor lm(cfg());
    // Alternate the qualifying set forever.
    for (int w = 0; w < 32 && lm.state() == MonitorState::Monitoring;
         ++w) {
        feed(lm, static_cast<std::uint8_t>(w % 2), 50, 50);
        lm.endWindow();
    }
    EXPECT_EQ(lm.state(), MonitorState::Disabled);
}

TEST(LoadMonitor, LastWindowSnapshotExposesCounts)
{
    LoadMonitor lm(cfg());
    feed(lm, 6, 10, 30);
    lm.endWindow();
    const auto &snap = lm.lastWindow();
    EXPECT_EQ(snap[6].hits, 10u);
    EXPECT_EQ(snap[6].misses, 30u);
    EXPECT_TRUE(snap[6].classifiedHigh); // 25% >= 20%.
}

/** Property sweep: the classification threshold behaves monotonically. */
class LoadMonitorThreshold : public ::testing::TestWithParam<int>
{
};

TEST_P(LoadMonitorThreshold, SelectionMatchesRatioVsThreshold)
{
    const int hit_percent = GetParam();
    LoadMonitor lm(cfg());
    for (int w = 0; w < 2; ++w) {
        feed(lm, 2, hit_percent, 100 - hit_percent);
        lm.endWindow();
    }
    const bool expect_selected = hit_percent >= 20;
    EXPECT_EQ(lm.state(), expect_selected ? MonitorState::Selected
                                          : MonitorState::Disabled);
}

INSTANTIATE_TEST_SUITE_P(Ratios, LoadMonitorThreshold,
                         ::testing::Values(0, 5, 10, 19, 20, 21, 50, 100));

} // namespace
} // namespace lbsim
