/**
 * @file
 * Unit tests for the register file: allocation and bank arbitration.
 */

#include <gtest/gtest.h>

#include "core/register_file.hpp"

namespace lbsim
{
namespace
{

GpuConfig
cfg()
{
    return GpuConfig{};
}

TEST(RegisterFile, GeometryMatchesTable1)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    EXPECT_EQ(rf.totalRegs(), 2048u); // 256 KB / 128 B.
    EXPECT_EQ(rf.freeRegs(), 2048u);
}

TEST(RegisterFile, FirstFitAllocatesBottomUp)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    const auto a = rf.allocate(256);
    const auto b = rf.allocate(256);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, 0u);
    EXPECT_EQ(*b, 256u);
    EXPECT_EQ(rf.allocatedRegs(), 512u);
}

TEST(RegisterFile, ReleaseMakesSpaceReusable)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    const auto a = rf.allocate(1024);
    const auto b = rf.allocate(1024);
    ASSERT_TRUE(a && b);
    EXPECT_FALSE(rf.allocate(1));
    rf.release(*a, 1024);
    const auto c = rf.allocate(512);
    ASSERT_TRUE(c);
    EXPECT_EQ(*c, 0u); // First fit reuses the freed low block.
}

TEST(RegisterFile, AllocationFailsWhenFragmented)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    const auto a = rf.allocate(1000);
    const auto b = rf.allocate(1000);
    ASSERT_TRUE(a && b);
    rf.release(*a, 1000);
    // 1048 total free but only 1000 contiguous.
    EXPECT_FALSE(rf.allocate(1024));
    EXPECT_TRUE(rf.allocate(1000));
}

TEST(RegisterFile, FreeRegsAboveCountsTail)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.allocate(1024);
    EXPECT_EQ(rf.freeRegsAbove(512), 1024u);
    EXPECT_EQ(rf.freeRegsAbove(1024), 1024u);
    EXPECT_EQ(rf.freeRegsAbove(2000), 48u);
}

TEST(RegisterFile, IsAllocatedChecksWholeRange)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.allocate(100);
    EXPECT_TRUE(rf.isAllocated(0, 100));
    EXPECT_FALSE(rf.isAllocated(50, 100));
    EXPECT_FALSE(rf.isAllocated(0, 0));
}

TEST(RegisterFile, SameBankAccessesConflict)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.beginCycle(0);
    EXPECT_EQ(rf.accessRegister(0, false, 0), 0u);
    // Same bank (reg 16 with 16 banks) conflicts.
    EXPECT_GT(rf.accessRegister(16, false, 0), 0u);
    EXPECT_EQ(stats.rfBankConflicts, 1u);
}

TEST(RegisterFile, DifferentBanksDoNotConflict)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.beginCycle(0);
    EXPECT_EQ(rf.accessRegister(0, false, 0), 0u);
    EXPECT_EQ(rf.accessRegister(1, false, 0), 0u);
    EXPECT_EQ(stats.rfBankConflicts, 0u);
}

TEST(RegisterFile, BeginCycleClearsBankState)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.beginCycle(0);
    rf.accessRegister(0, false, 0);
    rf.beginCycle(1);
    EXPECT_EQ(rf.accessRegister(16, false, 1), 0u);
}

TEST(RegisterFile, OperandBurstCountsEachAccess)
{
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.beginCycle(0);
    rf.accessOperands(0, 3, 0);
    EXPECT_EQ(stats.rfAccesses, 3u);
}

TEST(RegisterFile, ArbitrateLineSharesBanksWithOperands)
{
    // CERF's unified structure: cache lines contend with operands.
    SimStats stats;
    RegisterFile rf(cfg(), &stats);
    rf.beginCycle(0);
    rf.accessOperands(0, 1, 0); // Bank 0.
    const Addr line_in_bank0 = 16 * kLineBytes; // lineIndex 16 % 16 = 0.
    EXPECT_GT(rf.arbitrateLine(line_in_bank0, false, 0), 0u);
    EXPECT_EQ(stats.rfBankConflicts, 1u);
}

} // namespace
} // namespace lbsim
