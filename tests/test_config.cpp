/**
 * @file
 * Unit tests for configuration structures and chip scaling.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"

namespace lbsim
{
namespace
{

TEST(CacheGeometry, SetsFromSizeWaysLine)
{
    CacheGeometry geom{48 * 1024, 8, 128};
    EXPECT_EQ(geom.sets(), 48u);
    geom.sizeBytes = 16 * 1024;
    EXPECT_EQ(geom.sets(), 16u);
}

TEST(GpuConfig, Table1Defaults)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.numSms, 16u);
    EXPECT_EQ(cfg.maxWarpsPerSm, 64u);
    EXPECT_EQ(cfg.maxCtasPerSm, 32u);
    EXPECT_EQ(cfg.registerFileBytesPerSm, 256u * 1024);
    EXPECT_EQ(cfg.totalWarpRegisters(), 2048u);
    EXPECT_EQ(cfg.l1.sizeBytes, 48u * 1024);
    EXPECT_EQ(cfg.l2.sizeBytes, 2048u * 1024);
    EXPECT_DOUBLE_EQ(cfg.dramBandwidthGBs, 352.5);
    EXPECT_EQ(cfg.dramTiming.rcd, 12u);
    EXPECT_EQ(cfg.dramTiming.rc, 40u);
}

TEST(GpuConfig, DramBytesPerCycle)
{
    GpuConfig cfg;
    // 352.5 GB/s at 1.126 GHz ~= 313 bytes per core cycle.
    EXPECT_NEAR(cfg.dramBytesPerCycle(), 313.0, 1.0);
}

TEST(GpuConfig, ScaleToShrinksSharedResources)
{
    GpuConfig cfg;
    const GpuConfig half = cfg.scaleTo(8);
    EXPECT_EQ(half.numSms, 8u);
    EXPECT_EQ(half.l2.sizeBytes, cfg.l2.sizeBytes / 2);
    EXPECT_EQ(half.numMemPartitions, cfg.numMemPartitions / 2);
    EXPECT_NEAR(half.dramBandwidthGBs, cfg.dramBandwidthGBs / 2, 1e-9);
    // Per-SM resources untouched.
    EXPECT_EQ(half.registerFileBytesPerSm, cfg.registerFileBytesPerSm);
    EXPECT_EQ(half.l1.sizeBytes, cfg.l1.sizeBytes);
}

TEST(GpuConfig, ScaleToIdentityAndFloors)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.scaleTo(16).numSms, 16u);
    EXPECT_EQ(cfg.scaleTo(0).numSms, 16u); // 0 = keep.
    const GpuConfig one = cfg.scaleTo(1);
    EXPECT_GE(one.numMemPartitions, 1u);
    EXPECT_GE(one.l2.sizeBytes, one.l2.ways * one.l2.lineBytes);
}

TEST(LbConfig, Table3Defaults)
{
    LbConfig lb;
    EXPECT_EQ(lb.monitorPeriod, 50000u);
    EXPECT_DOUBLE_EQ(lb.hitRatioThreshold, 0.20);
    EXPECT_DOUBLE_EQ(lb.ipcVarUpper, 0.10);
    EXPECT_DOUBLE_EQ(lb.ipcVarLower, -0.10);
    EXPECT_EQ(lb.vttWays, 4u);
    EXPECT_EQ(lb.vttMaxPartitions, 8u);
    EXPECT_EQ(lb.vttAccessLatency, 3u);
    EXPECT_EQ(lb.loadMonitorEntries, 32u);
    EXPECT_EQ(lb.backupBufferEntries, 6u);
    // 48 sets x 4 ways = 192 victim lines (24 KB) per partition.
    EXPECT_EQ(lb.partitionEntries(48), 192u);
}

TEST(LineHelpers, AlignmentAndIndex)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(127), 0u);
    EXPECT_EQ(lineAlign(128), 128u);
    EXPECT_EQ(lineAlign(300), 256u);
    EXPECT_EQ(lineIndex(256), 2u);
}

} // namespace
} // namespace lbsim
