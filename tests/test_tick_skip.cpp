/**
 * @file
 * Tick-skip identity tests.
 *
 * GpuConfig::tickSkip is an execution-engine knob: the event-driven
 * fast-forward must be invisible in every counter, for every scheme,
 * with warm-up and the watchdog in play. These tests run the same
 * (config, workload, seed) with skipping off and on and require the
 * serialized statistics to be byte-identical — the same witness the
 * seed-determinism and parallel-tick suites use. A skip that jumped a
 * cycle any subsystem would have acted on shows up as a counter
 * mismatch here.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "harness/sim_runner.hpp"
#include "resilience/faultinject.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 60000;
    options.useMemoCache = false;
    return options;
}

/** Memory-heavy, seed-stochastic workload with idle-chip stretches. */
AppProfile
skipProbeApp(std::uint64_t seed)
{
    AppProfile app;
    app.id = "skip-probe";
    app.description = "tick-skip identity probe";
    app.cacheSensitive = true;
    LoadSpec load;
    load.cls = LoadClass::Irregular;
    load.lines = 512;
    load.fanout = 2;
    app.loads.push_back(load);
    app.warpsPerCta = 4;
    app.regsPerWarp = 16;
    app.iterations = 2000;
    app.ctasPerSmOfGrid = 8;
    app.seed = seed;
    return app;
}

/** Run @p app under @p scheme with tick skipping forced to @p skip. */
std::string
statsWithSkip(const AppProfile &app, const SchemeConfig &scheme,
              bool skip, const GpuConfig &base = {},
              const RunnerOptions &opts = fastOptions())
{
    GpuConfig cfg = base;
    cfg.tickSkip = skip;
    SimRunner runner(cfg, {}, opts);
    return serializeStats(runner.run(app, scheme).stats);
}

TEST(TickSkip, OffMatchesOnAcrossSchemes)
{
    const AppProfile app = skipProbeApp(1234);
    const SchemeConfig schemes[] = {
        SchemeConfig::baseline(),     SchemeConfig::bestSwl(8),
        SchemeConfig::ccws(),         SchemeConfig::pcal(),
        SchemeConfig::cerf(),         SchemeConfig::linebacker(),
    };
    for (const SchemeConfig &scheme : schemes) {
        EXPECT_EQ(statsWithSkip(app, scheme, false),
                  statsWithSkip(app, scheme, true))
            << "tick-skip changed results under " << scheme.name;
    }
}

TEST(TickSkip, OffMatchesOnForSuiteApps)
{
    for (const char *id : {"S2", "KM"}) {
        const AppProfile &app = appById(id);
        EXPECT_EQ(statsWithSkip(app, SchemeConfig::linebacker(), false),
                  statsWithSkip(app, SchemeConfig::linebacker(), true))
            << "tick-skip changed results on suite app " << id;
    }
}

TEST(TickSkip, OffMatchesOnAcrossWarmupBoundary)
{
    // Warm-up splits the run into two skip-limited loops with an
    // accumulator reset between them; the boundary cycle must land
    // exactly.
    GpuConfig base;
    base.warmupCycles = 20000;
    const AppProfile app = skipProbeApp(77);
    for (const SchemeConfig &scheme :
         {SchemeConfig::baseline(), SchemeConfig::linebacker()}) {
        EXPECT_EQ(statsWithSkip(app, scheme, false, base),
                  statsWithSkip(app, scheme, true, base))
            << "tick-skip changed warmed results under " << scheme.name;
    }
}

TEST(TickSkip, OffMatchesOnUnderFaultPlan)
{
    // An armed fault injector disables the fast-forward outright (fault
    // hooks must observe every real cycle), so both runs take the naive
    // loop — but the knob must stay bit-invisible in that regime too:
    // a tickSkip=true run under faults has to equal a tickSkip=false
    // run under the same plan, for every scheme the hooks touch.
    RunnerOptions opts = fastOptions();
    opts.faultPlan.events.push_back(
        {FaultKind::IcntDelay, 5000, 2000, 40});
    opts.faultPlan.events.push_back(
        {FaultKind::DramStorm, 12000, 3000, 25});
    opts.faultPlan.events.push_back(
        {FaultKind::VttRevoke, 20000, 5000, 0});
    const AppProfile app = skipProbeApp(99);
    for (const SchemeConfig &scheme :
         {SchemeConfig::baseline(), SchemeConfig::cerf(),
          SchemeConfig::linebacker()}) {
        EXPECT_EQ(statsWithSkip(app, scheme, false, {}, opts),
                  statsWithSkip(app, scheme, true, {}, opts))
            << "tick-skip changed faulted results under " << scheme.name;
    }
}

TEST(TickSkip, OffMatchesOnAtSmThreads)
{
    // Tick skipping and the sharded SM phase compose: the skip probe
    // runs between parallel phases, so (skip x threads) must be one
    // equivalence class. 2 SMs x {2, 4} worker threads, naive serial
    // loop as the witness.
    RunnerOptions opts = fastOptions();
    opts.simSms = 2;
    const AppProfile app = skipProbeApp(7);
    const std::string naive =
        statsWithSkip(app, SchemeConfig::linebacker(), false, {}, opts);
    for (std::uint32_t threads : {2u, 4u}) {
        RunnerOptions threaded = opts;
        threaded.smThreads = threads;
        EXPECT_EQ(naive, statsWithSkip(app, SchemeConfig::linebacker(),
                                       true, {}, threaded))
            << "tick-skip + --sm-threads " << threads
            << " diverged from the serial naive loop";
    }
}

TEST(TickSkip, OffMatchesOnWithWatchdogArmed)
{
    // A progressing run with the watchdog armed: skips must respect the
    // priming observe and never jump past a would-be trip cycle.
    GpuConfig base;
    base.watchdogCycles = 5000;
    const AppProfile app = skipProbeApp(42);
    for (const SchemeConfig &scheme :
         {SchemeConfig::baseline(), SchemeConfig::linebacker()}) {
        EXPECT_EQ(statsWithSkip(app, scheme, false, base),
                  statsWithSkip(app, scheme, true, base))
            << "tick-skip changed watchdogged results under "
            << scheme.name;
    }
}

} // namespace
} // namespace lbsim
