/**
 * @file
 * Parallel tick-engine tests (DESIGN.md §13).
 *
 * The headline property of the 16-SM scale-out is exact thread-count
 * invariance: because every SM shard writes only its own state plus a
 * single-producer interconnect staging lane drained in SM-index order at
 * the barrier, simulated results must be bit-identical for any
 * cfg.smThreads — not statistically close, byte-for-byte equal. These
 * tests pin that across SM counts, schemes, fault plans and watchdog
 * trips, and unit-test the worker-pool primitive itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "harness/sim_runner.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

RunnerOptions
fastOptions(std::uint32_t sms, std::uint32_t sm_threads)
{
    RunnerOptions options;
    options.simSms = sms;
    options.smThreads = sm_threads;
    options.maxCycles = 40000;
    options.useMemoCache = false;
    return options;
}

/** A seed-sensitive workload: irregular accesses flow from app.seed. */
AppProfile
irregularApp(std::uint64_t seed)
{
    AppProfile app;
    app.id = "ptick-irr";
    app.description = "parallel tick probe";
    app.cacheSensitive = true;
    LoadSpec load;
    load.cls = LoadClass::Irregular;
    load.lines = 512;
    load.fanout = 2;
    app.loads.push_back(load);
    app.warpsPerCta = 4;
    app.regsPerWarp = 16;
    app.iterations = 2000;
    app.ctasPerSmOfGrid = 8;
    app.seed = seed;
    return app;
}

/** Serialized stats of one run at the given (sms, threads) point. */
std::string
runAt(std::uint32_t sms, std::uint32_t sm_threads,
      const SchemeConfig &scheme, SimStats *stats_out = nullptr)
{
    SimRunner runner({}, {}, fastOptions(sms, sm_threads));
    const RunMetrics m = runner.run(irregularApp(7), scheme);
    if (stats_out)
        *stats_out = m.stats;
    return serializeStats(m.stats);
}

// --- Thread-count invariance ----------------------------------------------

class ParallelTickInvariance
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ParallelTickInvariance, BaselineStatsAreThreadCountInvariant)
{
    const std::uint32_t sms = GetParam();
    SimStats serial;
    const std::string golden =
        runAt(sms, 1, SchemeConfig::baseline(), &serial);
    for (std::uint32_t threads : {2u, 4u}) {
        SimStats parallel;
        EXPECT_EQ(runAt(sms, threads, SchemeConfig::baseline(), &parallel),
                  golden)
            << sms << " SMs, " << threads << " threads, first diff: "
            << firstStatDifference(serial, parallel);
    }
}

TEST_P(ParallelTickInvariance, LinebackerStatsAreThreadCountInvariant)
{
    const std::uint32_t sms = GetParam();
    SimStats serial;
    const std::string golden =
        runAt(sms, 1, SchemeConfig::linebacker(), &serial);
    for (std::uint32_t threads : {2u, 4u}) {
        SimStats parallel;
        EXPECT_EQ(
            runAt(sms, threads, SchemeConfig::linebacker(), &parallel),
            golden)
            << sms << " SMs, " << threads << " threads, first diff: "
            << firstStatDifference(serial, parallel);
    }
}

INSTANTIATE_TEST_SUITE_P(SmCounts, ParallelTickInvariance,
                         ::testing::Values(2u, 4u, 16u));

TEST(ParallelTick, FaultedRunsAreThreadCountInvariant)
{
    // Fault hooks are queried from inside the SM phase (BackupStall,
    // LoadMonitorLie, VttRevoke targets SM 1 via magnitude); the
    // injected run must stay as replayable as a clean one.
    FaultPlan plan;
    plan.events.push_back({FaultKind::BackupStall, 5000, 2000, 0});
    plan.events.push_back({FaultKind::LoadMonitorLie, 8000, 4000, 0});
    plan.events.push_back({FaultKind::VttRevoke, 12000, 20000, 1});

    std::vector<std::string> runs;
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        RunnerOptions options = fastOptions(4, threads);
        options.faultPlan = plan;
        SimRunner runner({}, {}, options);
        const RunMetrics m =
            runner.run(irregularApp(7), SchemeConfig::linebacker());
        runs.push_back(serializeStats(m.stats) + "#faults=" +
                       std::to_string(m.faultsInjected));
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

// --- Watchdog under parallel tick -----------------------------------------

TEST(ParallelTick, WedgeFiresWatchdogDeterministically)
{
    // Wedge the chip with a head-of-line-blocking response delay; the
    // watchdog must trip at the same cycle with the same diagnosis
    // whether the SMs tick serially or on 4 workers.
    FaultPlan wedge;
    wedge.events.push_back({FaultKind::IcntDelay, 2000, 400, 2000000});

    std::vector<std::string> reports;
    std::vector<std::string> stats;
    for (std::uint32_t threads : {1u, 4u}) {
        GpuConfig cfg;
        cfg.watchdogCycles = 3000;
        RunnerOptions options = fastOptions(4, threads);
        options.faultPlan = wedge;
        SimRunner runner(cfg, {}, options);
        const RunMetrics m =
            runner.run(irregularApp(7), SchemeConfig::baseline());
        EXPECT_EQ(m.outcome, RunOutcome::Hang)
            << threads << " threads: wedge did not trip the watchdog";
        reports.push_back(m.hangReportJson);
        stats.push_back(serializeStats(m.stats));
    }
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(stats[0], stats[1]);
}

// --- Shard fold ------------------------------------------------------------

TEST(ParallelTick, FoldShardStatsCoversEveryCounter)
{
    // foldShardStats must combine every enumerated counter: for each
    // field, a shard carrying only that field must change the aggregate
    // (sum and max folds both map 0 ⊕ 3 to 3, so one probe covers both
    // semantics).
    SimStats probe;
    forEachStatField(probe, [&](const char *name, auto & /*field*/) {
        SimStats into;
        SimStats shard;
        forEachStatField(shard, [&](const char *shard_name, auto &f) {
            if (std::string(shard_name) == name)
                f = static_cast<std::decay_t<decltype(f)>>(3);
        });
        foldShardStats(into, shard);
        const std::string diff = firstStatDifference(into, SimStats{});
        EXPECT_EQ(diff.rfind(std::string(name) + ":", 0), 0u)
            << "folding a shard with only " << name
            << " set produced aggregate diff '" << diff << "'";
    });
}

TEST(ParallelTick, FoldShardStatsSumsAndMaxes)
{
    SimStats into;
    into.instructionsIssued = 10;
    into.monitoringPeriods = 5;
    into.selectedLoads = 7;
    SimStats shard;
    shard.instructionsIssued = 4;
    shard.monitoringPeriods = 3;   // below current max: keep 5
    shard.selectedLoads = 9;       // above current max: take 9
    foldShardStats(into, shard);
    EXPECT_EQ(into.instructionsIssued, 14u);
    EXPECT_EQ(into.monitoringPeriods, 5u);
    EXPECT_EQ(into.selectedLoads, 9u);
}

// --- Worker pool (unit) ----------------------------------------------------

TEST(SmWorkerPool, RunsEveryShardExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        constexpr std::size_t kShards = 16;
        std::vector<std::atomic<int>> hits(kShards);
        SmWorkerPool pool(threads, kShards);
        for (int round = 0; round < 50; ++round) {
            pool.run([&](std::size_t s) {
                hits[s].fetch_add(1, std::memory_order_relaxed);
            });
        }
        for (std::size_t s = 0; s < kShards; ++s)
            EXPECT_EQ(hits[s].load(), 50) << threads << "t shard " << s;
    }
}

TEST(SmWorkerPool, ClampsThreadsToShardCount)
{
    SmWorkerPool pool(64, 2);
    EXPECT_EQ(pool.threads(), 2u);
    SmWorkerPool serial(0, 4);
    EXPECT_EQ(serial.threads(), 1u);
}

TEST(SmWorkerPool, PropagatesShardExceptionsAfterTheBarrier)
{
    // Check-failure handlers throw in tests; the pool must surface the
    // exception on the calling thread and stay usable afterwards.
    SmWorkerPool pool(4, 8);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.run([](std::size_t s) {
                         if (s == 5)
                             throw std::runtime_error("shard 5");
                     }),
                     std::runtime_error);
        std::atomic<int> ok{0};
        pool.run([&](std::size_t) {
            ok.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(ok.load(), 8);
    }
}

} // namespace
} // namespace lbsim
