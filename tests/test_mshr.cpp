/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hpp"

namespace lbsim
{
namespace
{

TEST(MshrFile, AllocatesFirstMiss)
{
    MshrFile mshrs(4, 2);
    EXPECT_EQ(mshrs.registerMiss(128, 1, true), MshrOutcome::Allocated);
    EXPECT_TRUE(mshrs.pending(128));
    EXPECT_EQ(mshrs.inUse(), 1u);
}

TEST(MshrFile, MergesSecondMissToSameLine)
{
    MshrFile mshrs(4, 2);
    mshrs.registerMiss(128, 1, true);
    EXPECT_EQ(mshrs.registerMiss(128, 2, true), MshrOutcome::Merged);
    EXPECT_EQ(mshrs.inUse(), 1u);
}

TEST(MshrFile, RejectsWhenMergeListFull)
{
    MshrFile mshrs(4, 2);
    mshrs.registerMiss(128, 1, true);
    mshrs.registerMiss(128, 2, true);
    EXPECT_EQ(mshrs.registerMiss(128, 3, true),
              MshrOutcome::NoMergeSlot);
}

TEST(MshrFile, RejectsWhenAllEntriesBusy)
{
    MshrFile mshrs(2, 4);
    mshrs.registerMiss(0, 1, true);
    mshrs.registerMiss(128, 2, true);
    EXPECT_EQ(mshrs.registerMiss(256, 3, true), MshrOutcome::NoEntry);
}

TEST(MshrFile, FillReturnsAllWaiters)
{
    MshrFile mshrs(4, 4);
    mshrs.registerMiss(128, 1, true);
    mshrs.registerMiss(128, 2, true);
    mshrs.registerMiss(128, 3, true);
    std::vector<std::uint64_t> waiters;
    EXPECT_TRUE(mshrs.completeFill(128, waiters));
    EXPECT_EQ(waiters.size(), 3u);
    EXPECT_FALSE(mshrs.pending(128));
    EXPECT_EQ(mshrs.inUse(), 0u);
}

TEST(MshrFile, BypassOnlyEntryDoesNotAllocateOnFill)
{
    MshrFile mshrs(4, 4);
    mshrs.registerMiss(128, 1, false);
    std::vector<std::uint64_t> waiters;
    EXPECT_FALSE(mshrs.completeFill(128, waiters));
}

TEST(MshrFile, AnyAllocatingWaiterForcesAllocateOnFill)
{
    MshrFile mshrs(4, 4);
    mshrs.registerMiss(128, 1, false);
    mshrs.registerMiss(128, 2, true); // Allocating waiter merges in.
    std::vector<std::uint64_t> waiters;
    EXPECT_TRUE(mshrs.completeFill(128, waiters));
    EXPECT_EQ(waiters.size(), 2u);
}

TEST(MshrFile, EntryReusableAfterFill)
{
    MshrFile mshrs(1, 1);
    mshrs.registerMiss(128, 1, true);
    std::vector<std::uint64_t> waiters;
    mshrs.completeFill(128, waiters);
    EXPECT_EQ(mshrs.registerMiss(256, 2, true), MshrOutcome::Allocated);
}

} // namespace
} // namespace lbsim
