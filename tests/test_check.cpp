/**
 * @file
 * Unit tests for the invariant-checking layer: macro gating, failure
 * reports, context scopes and lazy state dumps.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"

namespace lbsim
{
namespace
{

/** Records failures instead of aborting; restores the old handler. */
struct CheckFixture : ::testing::Test
{
    CheckFixture()
    {
        previous = setCheckFailureHandler(
            [this](const CheckFailure &failure) {
                failures.push_back(failure);
            });
    }
    ~CheckFixture() override { setCheckFailureHandler(previous); }

    CheckFailureHandler previous;
    std::vector<CheckFailure> failures;
};

TEST_F(CheckFixture, PassingChecksDoNotFire)
{
    LB_ASSERT(1 + 1 == 2, "arithmetic broke");
    LB_INVARIANT(true, "tautology broke");
    LB_AUDIT(true, "tautology broke");
    EXPECT_TRUE(failures.empty());
}

TEST_F(CheckFixture, FailingAssertCarriesExpressionAndMessage)
{
    if (!checksEnabled(CheckLevel::Fast))
        GTEST_SKIP() << "LB_ASSERT compiled out at this check level";
    const std::uint32_t index = 9;
    LB_ASSERT(index < 4, "index %u out of %u", index, 4u);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_STREQ(failures[0].kind, "assert");
    EXPECT_STREQ(failures[0].expr, "index < 4");
    EXPECT_EQ(failures[0].message, "index 9 out of 4");
    EXPECT_NE(std::string(failures[0].file).find("test_check.cpp"),
              std::string::npos);
    EXPECT_GT(failures[0].line, 0);
}

TEST_F(CheckFixture, FailingInvariantHasInvariantKind)
{
    if (!checksEnabled(CheckLevel::Full))
        GTEST_SKIP() << "LB_INVARIANT compiled out at this check level";
    LB_INVARIANT(false, "structural violation %d", 42);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_STREQ(failures[0].kind, "invariant");
    EXPECT_EQ(failures[0].message, "structural violation 42");
}

TEST_F(CheckFixture, UnreachableFiresAtEveryLevel)
{
    LB_UNREACHABLE("took the impossible branch %d", 3);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_STREQ(failures[0].kind, "unreachable");
    EXPECT_EQ(failures[0].message, "took the impossible branch 3");
}

TEST_F(CheckFixture, AuditMacroAlwaysCompiled)
{
    // LB_AUDIT backs the audit() methods, which unit tests must be able
    // to drive regardless of the build's check level.
    LB_AUDIT(false, "audit violation");
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].message, "audit violation");
}

TEST_F(CheckFixture, CheckScopeSetsAndRestoresContext)
{
    EXPECT_EQ(checkContext().cycle, kNoCycle);
    {
        CheckScope scope(123, 4, 17);
        EXPECT_EQ(checkContext().cycle, 123u);
        EXPECT_EQ(checkContext().smId, 4u);
        EXPECT_EQ(checkContext().warpId, 17u);
        LB_AUDIT(false, "inside scope");
    }
    EXPECT_EQ(checkContext().cycle, kNoCycle);
    EXPECT_EQ(checkContext().smId, kNoId);
    EXPECT_EQ(checkContext().warpId, kNoId);

    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].context.cycle, 123u);
    EXPECT_EQ(failures[0].context.smId, 4u);
    EXPECT_EQ(failures[0].context.warpId, 17u);
}

TEST_F(CheckFixture, NestedScopesKeepOuterFields)
{
    CheckScope outer(500, 2);
    {
        // Inner scope narrows to a warp without changing cycle/SM.
        CheckScope inner(kNoCycle, kNoId, 31);
        LB_AUDIT(false, "nested");
    }
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].context.cycle, 500u);
    EXPECT_EQ(failures[0].context.smId, 2u);
    EXPECT_EQ(failures[0].context.warpId, 31u);
    // The inner scope's warp id must not leak out.
    EXPECT_EQ(checkContext().warpId, kNoId);
}

TEST_F(CheckFixture, StateDumpIsLazyAndOnlyRenderedOnFailure)
{
    int renders = 0;
    {
        StateDumpScope dump([&renders] {
            ++renders;
            return std::string("structure state line");
        });
        LB_AUDIT(true, "fine");
        EXPECT_EQ(renders, 0);
        LB_AUDIT(false, "broken");
        EXPECT_EQ(renders, 1);
    }
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].stateDump, "structure state line");

    // Outside the scope, failures carry no dump.
    LB_AUDIT(false, "no dump registered");
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_TRUE(failures[1].stateDump.empty());
    EXPECT_EQ(renders, 1);
}

TEST_F(CheckFixture, ReportContainsAllSections)
{
    CheckFailure failure;
    failure.kind = "invariant";
    failure.expr = "a == b";
    failure.file = "mem/widget.cpp";
    failure.line = 77;
    failure.func = "audit";
    failure.message = "widget lost a line";
    failure.stateDump = "entry 0\nentry 1";
    failure.context.cycle = 4096;
    failure.context.smId = 3;
    failure.context.warpId = 12;

    const std::string report = formatCheckReport(failure);
    EXPECT_NE(report.find("invariant"), std::string::npos);
    EXPECT_NE(report.find("a == b"), std::string::npos);
    EXPECT_NE(report.find("mem/widget.cpp:77"), std::string::npos);
    EXPECT_NE(report.find("widget lost a line"), std::string::npos);
    EXPECT_NE(report.find("cycle=4096"), std::string::npos);
    EXPECT_NE(report.find("sm=3"), std::string::npos);
    EXPECT_NE(report.find("warp=12"), std::string::npos);
    EXPECT_NE(report.find("entry 0"), std::string::npos);
    EXPECT_NE(report.find("entry 1"), std::string::npos);
}

TEST_F(CheckFixture, ReportMarksUnknownContextAndOmitsEmptyDump)
{
    CheckFailure failure;
    failure.kind = "assert";
    failure.expr = "x";
    failure.file = "f.cpp";
    failure.line = 1;
    failure.func = "g";
    failure.message = "m";

    const std::string report = formatCheckReport(failure);
    EXPECT_NE(report.find("cycle=? sm=? warp=?"), std::string::npos);
    EXPECT_EQ(report.find("state:"), std::string::npos);
}

TEST_F(CheckFixture, HandlerInstallReturnsPrevious)
{
    bool alternate_called = false;
    CheckFailureHandler mine = setCheckFailureHandler(
        [&alternate_called](const CheckFailure &) {
            alternate_called = true;
        });
    LB_AUDIT(false, "routed to alternate");
    EXPECT_TRUE(alternate_called);
    EXPECT_TRUE(failures.empty());

    // Reinstall the fixture handler returned by the swap.
    setCheckFailureHandler(mine);
    LB_AUDIT(false, "routed to fixture");
    EXPECT_EQ(failures.size(), 1u);
}

TEST(CheckLevelTest, CompileTimeGatingIsMonotone)
{
    EXPECT_TRUE(checksEnabled(CheckLevel::Off));
    if (checksEnabled(CheckLevel::Full)) {
        EXPECT_TRUE(checksEnabled(CheckLevel::Fast));
    }
}

} // namespace
} // namespace lbsim
