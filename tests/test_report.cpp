/**
 * @file
 * Unit tests for table/CSV rendering and formatting helpers.
 */

#include <gtest/gtest.h>

#include "common/table.hpp"

namespace lbsim
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"a", "long-header"});
    table.addRow({"wide-cell", "x"});
    const std::string out = table.render();
    // Every line has the same length (aligned columns).
    std::size_t first_len = out.find('\n');
    std::size_t pos = first_len + 1;
    while (pos < out.size()) {
        const std::size_t next = out.find('\n', pos);
        ASSERT_NE(next, std::string::npos);
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(TextTable, CsvRoundTrip)
{
    TextTable table;
    table.setHeader({"app", "ipc"});
    table.addRow({"KM", "1.25"});
    table.addRow({"S2", "0.75"});
    EXPECT_EQ(table.renderCsv(), "app,ipc\nKM,1.25\nS2,0.75\n");
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, ShortRowsPadded)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"1"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Formatting, Doubles)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

TEST(Formatting, Percent)
{
    EXPECT_EQ(fmtPercent(0.5), "50.0%");
    EXPECT_EQ(fmtPercent(0.123, 2), "12.30%");
}

TEST(Formatting, Speedup)
{
    EXPECT_EQ(fmtSpeedup(1.29), "1.29x");
}

TEST(Formatting, Kilobytes)
{
    EXPECT_EQ(fmtKb(48 * 1024), "48.0KB");
    EXPECT_EQ(fmtKb(1536), "1.5KB");
}

} // namespace
} // namespace lbsim
