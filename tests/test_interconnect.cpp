/**
 * @file
 * Unit tests for the interconnect: routing, latency, backpressure.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mem/interconnect.hpp"
#include "mem/memory_partition.hpp"

namespace lbsim
{
namespace
{

class CountingSink : public ResponseSinkIf
{
  public:
    void
    onResponse(const MemResponse &response, Cycle now) override
    {
        responses.push_back({response, now});
    }
    std::vector<std::pair<MemResponse, Cycle>> responses;
};

struct IcntFixture : ::testing::Test
{
    IcntFixture()
    {
        cfg.numSms = 2;
        cfg.numMemPartitions = 2;
        icnt = std::make_unique<Interconnect>(cfg, &stats);
        for (std::uint32_t p = 0; p < cfg.numMemPartitions; ++p) {
            partitions.push_back(std::make_unique<MemoryPartition>(
                cfg, p, icnt.get(), &stats));
            icnt->attachPartition(p, partitions.back().get());
        }
        icnt->attachSm(0, &sink0);
        icnt->attachSm(1, &sink1);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle c = 0; c < cycles; ++c) {
            for (auto &p : partitions)
                p->tick(now);
            icnt->tick(now);
            ++now;
        }
    }

    GpuConfig cfg;
    SimStats stats;
    std::unique_ptr<Interconnect> icnt;
    std::vector<std::unique_ptr<MemoryPartition>> partitions;
    CountingSink sink0;
    CountingSink sink1;
    Cycle now = 0;
};

TEST_F(IcntFixture, PartitionRoutingByLineIndex)
{
    EXPECT_EQ(icnt->partitionOf(0), 0u);
    EXPECT_EQ(icnt->partitionOf(kLineBytes), 1u);
    EXPECT_EQ(icnt->partitionOf(2 * kLineBytes), 0u);
}

TEST_F(IcntFixture, ResponseReturnsToRequestingSm)
{
    MemRequest req;
    req.lineAddr = kLineBytes; // Partition 1.
    req.kind = RequestKind::DataRead;
    req.smId = 1;
    icnt->sendRequest(req, now);
    run(3000);
    EXPECT_TRUE(sink0.responses.empty());
    ASSERT_EQ(sink1.responses.size(), 1u);
    EXPECT_EQ(sink1.responses[0].first.lineAddr, kLineBytes);
}

TEST_F(IcntFixture, HopLatencyApplied)
{
    MemRequest req;
    req.lineAddr = 0;
    req.kind = RequestKind::DataRead;
    req.smId = 0;
    icnt->sendRequest(req, now);
    run(3000);
    ASSERT_EQ(sink0.responses.size(), 1u);
    // Round trip includes two interconnect hops plus memory service.
    EXPECT_GE(sink0.responses[0].second, 2 * cfg.icntLatency);
}

TEST_F(IcntFixture, BackpressureReflectsInFlightCap)
{
    // Saturate SM 0's in-flight budget with writes to one partition.
    MemRequest req;
    req.lineAddr = 0;
    req.kind = RequestKind::DataWrite;
    req.smId = 0;
    std::uint32_t sent = 0;
    while (icnt->canAcceptRequest(0) && sent < 100000) {
        icnt->sendRequest(req, now);
        ++sent;
    }
    EXPECT_FALSE(icnt->canAcceptRequest(0));
    EXPECT_GT(sent, 0u);
    // The other SM has its own budget.
    EXPECT_TRUE(icnt->canAcceptRequest(1));
    // Draining restores acceptance.
    run(5000);
    EXPECT_TRUE(icnt->canAcceptRequest(0));
}

TEST_F(IcntFixture, ManyRequestsAllAnswered)
{
    for (std::uint32_t i = 0; i < 64; ++i) {
        MemRequest req;
        req.lineAddr = static_cast<Addr>(i) * kLineBytes;
        req.kind = RequestKind::DataRead;
        req.smId = i % 2;
        while (!icnt->canAcceptRequest(req.smId))
            run(10);
        icnt->sendRequest(req, now);
    }
    run(20000);
    EXPECT_EQ(sink0.responses.size() + sink1.responses.size(), 64u);
}

} // namespace
} // namespace lbsim
