/**
 * @file
 * Unit tests for the LDST unit: queueing, divergent fan-out, load
 * completion crediting, and store fire-and-forget semantics.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/ldst_unit.hpp"
#include "mem/interconnect.hpp"
#include "mem/memory_partition.hpp"

namespace lbsim
{
namespace
{

struct LdstFixture : ::testing::Test
{
    LdstFixture()
    {
        cfg.numSms = 1;
        cfg.numMemPartitions = 1;
        icnt = std::make_unique<Interconnect>(cfg, &stats);
        partition =
            std::make_unique<MemoryPartition>(cfg, 0, icnt.get(), &stats);
        icnt->attachPartition(0, partition.get());
        l1 = std::make_unique<L1Cache>(cfg, 0, icnt.get(), &stats);

        class Sink : public ResponseSinkIf
        {
          public:
            explicit Sink(L1Cache *l1) : l1_(l1) {}
            void
            onResponse(const MemResponse &response, Cycle now) override
            {
                l1_->fill(response.lineAddr, now);
            }
            L1Cache *l1_;
        };
        sink = std::make_unique<Sink>(l1.get());
        icnt->attachSm(0, sink.get());
        ldst = std::make_unique<LdstUnit>(cfg, l1.get(), &stats);

        warps.resize(4);
        for (std::uint32_t i = 0; i < warps.size(); ++i) {
            warps[i].smWarpId = i;
            warps[i].valid = true;
        }
    }

    void
    run(Cycle cycles)
    {
        for (Cycle c = 0; c < cycles; ++c) {
            partition->tick(now);
            icnt->tick(now);
            ldst->tick(warps, now);
            ++now;
        }
    }

    StaticInst
    loadInst(Pc pc = 0)
    {
        StaticInst inst;
        inst.op = Opcode::Load;
        inst.pc = pc;
        return inst;
    }

    GpuConfig cfg;
    SimStats stats;
    std::unique_ptr<Interconnect> icnt;
    std::unique_ptr<MemoryPartition> partition;
    std::unique_ptr<L1Cache> l1;
    std::unique_ptr<ResponseSinkIf> sink;
    std::unique_ptr<LdstUnit> ldst;
    std::vector<Warp> warps;
    Cycle now = 0;
};

TEST_F(LdstFixture, LoadCreditsWarpOnCompletion)
{
    ldst->issue(warps[0], loadInst(), {0}, false, now);
    EXPECT_EQ(warps[0].outstandingLoads, 1u);
    run(3000);
    EXPECT_EQ(warps[0].outstandingLoads, 0u);
    EXPECT_EQ(stats.loadsCompleted, 1u);
}

TEST_F(LdstFixture, DivergentLoadCountsEachLine)
{
    ldst->issue(warps[1], loadInst(),
                {0, 4096, 8192, 12288}, false, now);
    EXPECT_EQ(warps[1].outstandingLoads, 4u);
    run(5000);
    EXPECT_EQ(warps[1].outstandingLoads, 0u);
}

TEST_F(LdstFixture, StoresDoNotBlockWarps)
{
    StaticInst store;
    store.op = Opcode::Store;
    ldst->issue(warps[2], store, {0, 128}, false, now);
    EXPECT_EQ(warps[2].outstandingLoads, 0u);
    run(2000);
    EXPECT_EQ(stats.writeNoAllocates, 2u);
}

TEST_F(LdstFixture, OneAccessPerCyclePort)
{
    // Queue 8 accesses; after 3 ticks at most 3 can have been presented.
    std::vector<Addr> lines;
    for (int i = 0; i < 8; ++i)
        lines.push_back(static_cast<Addr>(i) * 4096);
    ldst->issue(warps[0], loadInst(), lines, false, now);
    EXPECT_EQ(ldst->queued(), 8u);
    run(3);
    EXPECT_GE(ldst->queued(), 5u);
}

TEST_F(LdstFixture, EmptyLineListIsNoOp)
{
    // Periodic patterns produce no lines on off iterations.
    ldst->issue(warps[0], loadInst(), {}, false, now);
    EXPECT_EQ(warps[0].outstandingLoads, 0u);
    EXPECT_EQ(ldst->queued(), 0u);
}

TEST_F(LdstFixture, CanAcceptReflectsQueueBound)
{
    std::vector<Addr> lines;
    for (std::uint32_t i = 0; ldst->canAccept() && i < 100000; ++i)
        ldst->issue(warps[0], loadInst(),
                    {static_cast<Addr>(i) * kLineBytes}, false, now);
    EXPECT_FALSE(ldst->canAccept());
    run(10000);
    EXPECT_TRUE(ldst->canAccept());
}

TEST_F(LdstFixture, ResetDropsQueuedWork)
{
    ldst->issue(warps[0], loadInst(), {0, 4096}, false, now);
    ldst->reset();
    EXPECT_EQ(ldst->queued(), 0u);
    EXPECT_EQ(ldst->inFlight(), 0u);
}

} // namespace
} // namespace lbsim
