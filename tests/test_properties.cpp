/**
 * @file
 * Property-based sweeps: structural invariants that must hold across
 * configuration ranges, checked with parameterized gtest suites.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "harness/sim_runner.hpp"
#include "lb/victim_tag_table.hpp"
#include "mem/tag_array.hpp"
#include "workload/suite.hpp"

namespace lbsim
{
namespace
{

/** Property: L1 cache-size monotonicity — more capacity, fewer misses. */
class CacheSizeMonotonicity
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CacheSizeMonotonicity, BiggerL1NeverHurtsHitRatio)
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 80000;
    options.useMemoCache = false;

    double prev_hits = -1.0;
    for (std::uint32_t kb : {16u, 48u, 128u}) {
        GpuConfig cfg;
        cfg.l1.sizeBytes = kb * 1024;
        SimRunner runner(cfg, {}, options);
        const RunMetrics m =
            runner.run(appById(GetParam()), SchemeConfig::baseline());
        const double hits = static_cast<double>(m.stats.l1.l1Hits) /
            m.stats.l1.total();
        EXPECT_GE(hits, prev_hits - 0.02)
            << GetParam() << " at " << kb << "KB";
        prev_hits = hits;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, CacheSizeMonotonicity,
                         ::testing::Values("S2", "KM", "GA", "HS"));

/** Property: LRU tag arrays never exceed capacity and stay consistent. */
class TagArrayStress
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TagArrayStress, RandomTrafficKeepsInvariants)
{
    const std::uint32_t ways = GetParam();
    TagArray tags(16, ways);
    Rng rng(ways * 7919);
    std::uint32_t hits = 0;
    for (Cycle now = 0; now < 20000; ++now) {
        const Addr line = rng.below(1024) * kLineBytes;
        if (tags.access(line, 0, now)) {
            ++hits;
            // A hit must imply residency.
            ASSERT_TRUE(tags.probe(line));
        } else {
            tags.insert(line, 0, now);
            // After insertion the line is resident.
            ASSERT_TRUE(tags.probe(line));
        }
        ASSERT_LE(tags.validLines(), 16 * ways);
    }
    // Higher associativity on the same traffic yields at least some hits.
    EXPECT_GT(hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ways, TagArrayStress,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

/**
 * Property: VTT register mapping stays disjoint from active CTA
 * registers whenever partitions are sized from idle space.
 */
TEST(VictimSpaceProperty, PartitionRegistersNeverOverlapOffsetFloor)
{
    GpuConfig gpu;
    LbConfig lb;
    SimStats stats;
    VictimTagTable vtt(gpu, lb, &stats);
    for (std::uint32_t parts = 0; parts <= lb.vttMaxPartitions; ++parts) {
        vtt.setActivePartitions(parts);
        for (std::uint32_t p = 0; p < parts; ++p) {
            EXPECT_GE(vtt.regNumFor(p, 0, 0), lb.victimRegOffset);
            EXPECT_LT(vtt.regNumFor(p, vtt.sets() - 1, vtt.ways() - 1),
                      gpu.totalWarpRegisters());
        }
    }
}

/** Property: scheme runs conserve memory requests (no lost loads). */
class RequestConservation
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RequestConservation, LoadsAllComplete)
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 100000;
    options.useMemoCache = false;
    SimRunner runner({}, {}, options);
    const RunMetrics m =
        runner.run(appById(GetParam()), SchemeConfig::linebacker());
    const SimStats &s = m.stats;
    // Every accepted load access ends as exactly one of the outcome
    // classes; completions can lag the cycle cap only by the in-flight
    // window.
    const std::uint64_t outcomes = s.l1.total();
    EXPECT_GE(outcomes, s.loadsCompleted);
    EXPECT_LE(outcomes - s.loadsCompleted,
              static_cast<std::uint64_t>(
                  GpuConfig{}.l1MshrEntries * 4 + 512));
}

INSTANTIATE_TEST_SUITE_P(Apps, RequestConservation,
                         ::testing::Values("S2", "BC", "LI", "BI"));

/** Property: DRAM bandwidth accounting is conserved across schemes. */
TEST(TrafficProperty, VictimHitsReduceDownstreamReads)
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 200000;
    options.useMemoCache = false;
    SimRunner runner({}, {}, options);
    const AppProfile &app = appById("S2");
    const RunMetrics base = runner.run(app, SchemeConfig::baseline());
    const RunMetrics lb = runner.run(app, SchemeConfig::linebacker());
    if (lb.stats.l1.regHits > 1000) {
        // Reads per issued instruction must drop when victim hits serve
        // data on-chip.
        const double base_rpi = static_cast<double>(base.stats.dramReads) /
            base.stats.instructionsIssued;
        const double lb_rpi = static_cast<double>(lb.stats.dramReads) /
            lb.stats.instructionsIssued;
        EXPECT_LT(lb_rpi, base_rpi);
    }
}

/** Property: throttle depth never exceeds resident CTAs. */
class ThrottleDepth : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ThrottleDepth, ActivationsBalanceEventually)
{
    RunnerOptions options;
    options.simSms = 1;
    options.maxCycles = 250000;
    options.useMemoCache = false;
    SimRunner runner({}, {}, options);
    const RunMetrics m =
        runner.run(appById(GetParam()), SchemeConfig::linebacker());
    // Net throttles bounded by the CTA slots of one SM.
    EXPECT_LE(m.stats.ctaThrottleEvents - m.stats.ctaActivateEvents,
              static_cast<std::uint64_t>(GpuConfig{}.maxCtasPerSm));
}

INSTANTIATE_TEST_SUITE_P(Apps, ThrottleDepth,
                         ::testing::Values("S2", "CF", "KM", "BG"));

} // namespace
} // namespace lbsim
