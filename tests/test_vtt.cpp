/**
 * @file
 * Unit tests for the Victim Tag Table: partitioning, Eq. 2 register
 * mapping, sequential search latency, LRU replacement, and tag-only mode.
 */

#include <gtest/gtest.h>

#include "lb/victim_tag_table.hpp"

namespace lbsim
{
namespace
{

struct VttFixture : ::testing::Test
{
    VttFixture() : vtt(gpu, lb, &stats) {}

    Addr
    lineInSet(std::uint32_t set, std::uint32_t k) const
    {
        // Distinct lines mapping to the same set.
        return (static_cast<Addr>(k) * vtt.sets() + set) * kLineBytes;
    }

    GpuConfig gpu;
    LbConfig lb;
    SimStats stats;
    VictimTagTable vtt;
};

TEST_F(VttFixture, GeometryMatchesPaper)
{
    EXPECT_EQ(vtt.sets(), 48u);
    EXPECT_EQ(vtt.ways(), 4u);
    EXPECT_EQ(vtt.maxPartitions(), 8u);
    vtt.setActivePartitions(8);
    EXPECT_EQ(vtt.capacityLines(), 1536u); // 8 x 48 x 4.
}

TEST_F(VttFixture, Eq2RegisterMapping)
{
    // RN = Offset + N_VP * entries + set * ways + way.
    EXPECT_EQ(vtt.regNumFor(0, 0, 0), 512u);
    EXPECT_EQ(vtt.regNumFor(0, 0, 3), 515u);
    EXPECT_EQ(vtt.regNumFor(0, 1, 0), 516u);
    EXPECT_EQ(vtt.regNumFor(1, 0, 0), 512u + 192u);
    EXPECT_EQ(vtt.regNumFor(7, 47, 3), 512u + 7u * 192 + 47u * 4 + 3);
    // The last victim register stays within the 2048-register file.
    EXPECT_LT(vtt.regNumFor(7, 47, 3), 2048u);
}

TEST_F(VttFixture, InsertThenProbeHits)
{
    vtt.setActivePartitions(2);
    RegNum reg = 0;
    ASSERT_TRUE(vtt.insert(lineInSet(5, 0), 1, reg));
    const VttProbe probe = vtt.probe(lineInSet(5, 0), 2);
    EXPECT_TRUE(probe.hit);
    EXPECT_EQ(probe.regNum, reg);
}

TEST_F(VttFixture, ProbeLatencyGrowsPerPartitionSearched)
{
    vtt.setActivePartitions(4);
    // Fill partition 0's set 0 so later inserts spill to partition 1.
    RegNum reg = 0;
    for (std::uint32_t k = 0; k < 4; ++k)
        vtt.insert(lineInSet(0, k), k, reg);
    // A line in partition 0 answers after one probe step.
    const VttProbe first = vtt.probe(lineInSet(0, 0), 10);
    EXPECT_TRUE(first.hit);
    EXPECT_EQ(first.latency, lb.vttAccessLatency);
    // A miss searches all four partitions sequentially.
    const VttProbe miss = vtt.probe(lineInSet(0, 99), 11);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, 4 * lb.vttAccessLatency);
}

TEST_F(VttFixture, NoInsertWithoutActivePartitions)
{
    RegNum reg = 0;
    EXPECT_FALSE(vtt.insert(lineInSet(0, 0), 1, reg));
}

TEST_F(VttFixture, ReplacementOrderGolden)
{
    // Pinned ahead of the structure-of-arrays relayout: the exact
    // (partition, way) placement sequence for a scripted insert/probe
    // pattern across two partitions — invalid-slot preference in
    // partition order, cross-partition LRU, refresh-in-place, and
    // reuse of invalidated slots. The Eq. 2 register number witnesses
    // the chosen slot.
    vtt.setActivePartitions(2);
    const std::uint32_t set = 3;
    RegNum reg = 0;

    // Fills take partition 0's ways in order, then spill to partition 1.
    for (std::uint32_t k = 0; k < 4; ++k) {
        ASSERT_TRUE(vtt.insert(lineInSet(set, k), 10 + k, reg));
        EXPECT_EQ(reg, vtt.regNumFor(0, set, k)) << "fill " << k;
    }
    ASSERT_TRUE(vtt.insert(lineInSet(set, 4), 20, reg));
    EXPECT_EQ(reg, vtt.regNumFor(1, set, 0));

    // Re-inserting a resident line refreshes in place.
    ASSERT_TRUE(vtt.insert(lineInSet(set, 2), 30, reg));
    EXPECT_EQ(reg, vtt.regNumFor(0, set, 2));
    EXPECT_EQ(vtt.validLines(), 5u);

    // A probe hit also refreshes LRU state.
    EXPECT_TRUE(vtt.probe(lineInSet(set, 0), 40).hit);

    // Fill the rest of partition 1; the table is now full for this set.
    for (std::uint32_t k = 5; k < 8; ++k) {
        ASSERT_TRUE(vtt.insert(lineInSet(set, k), 40 + k, reg));
        EXPECT_EQ(reg, vtt.regNumFor(1, set, k - 4));
    }

    // Cross-partition LRU: the oldest entry is line 1 (lastUse 11) in
    // partition 0 way 1 — line 0 was refreshed at 40, line 2 at 30.
    ASSERT_TRUE(vtt.insert(lineInSet(set, 8), 60, reg));
    EXPECT_EQ(reg, vtt.regNumFor(0, set, 1));
    EXPECT_FALSE(vtt.probe(lineInSet(set, 1), 61).hit);

    // An invalidated slot is reused before any LRU victim, wherever the
    // LRU entry lives.
    EXPECT_TRUE(vtt.invalidate(lineInSet(set, 6)));
    ASSERT_TRUE(vtt.insert(lineInSet(set, 9), 70, reg));
    EXPECT_EQ(reg, vtt.regNumFor(1, set, 2));

    vtt.audit(70);
}

TEST_F(VttFixture, LruReplacementWithinSet)
{
    vtt.setActivePartitions(1);
    RegNum reg = 0;
    for (std::uint32_t k = 0; k < 4; ++k)
        vtt.insert(lineInSet(7, k), k + 1, reg);
    // Touch the oldest so k=1 becomes LRU.
    vtt.probe(lineInSet(7, 0), 10);
    vtt.insert(lineInSet(7, 9), 11, reg);
    EXPECT_TRUE(vtt.probe(lineInSet(7, 0), 12).hit);
    EXPECT_FALSE(vtt.probe(lineInSet(7, 1), 13).hit);
}

TEST_F(VttFixture, InvalidatedSlotReusedFirst)
{
    // Store-invalidated entries are replaced in priority (Section 4).
    vtt.setActivePartitions(2);
    RegNum reg = 0;
    for (std::uint32_t k = 0; k < 4; ++k)
        vtt.insert(lineInSet(3, k), k, reg);
    ASSERT_TRUE(vtt.invalidate(lineInSet(3, 2)));
    RegNum reused = 0;
    vtt.insert(lineInSet(3, 50), 60, reused);
    // The new line landed in the invalidated slot of partition 0, not in
    // partition 1.
    EXPECT_EQ(reused, vtt.regNumFor(0, 3, 2));
    // All other lines survived.
    for (std::uint32_t k = 0; k < 4; ++k) {
        if (k != 2) {
            EXPECT_TRUE(vtt.probe(lineInSet(3, k), 99).hit);
        }
    }
}

TEST_F(VttFixture, DuplicateInsertRefreshes)
{
    vtt.setActivePartitions(2);
    RegNum first = 0;
    RegNum second = 0;
    vtt.insert(lineInSet(1, 0), 1, first);
    vtt.insert(lineInSet(1, 0), 2, second);
    EXPECT_EQ(first, second);
    EXPECT_EQ(vtt.validLines(), 1u);
}

TEST_F(VttFixture, ShrinkingPartitionsDropsTheirEntries)
{
    vtt.setActivePartitions(2);
    RegNum reg = 0;
    // Fill set 0 of both partitions.
    for (std::uint32_t k = 0; k < 8; ++k)
        vtt.insert(lineInSet(0, k), k, reg);
    EXPECT_EQ(vtt.validLines(), 8u);
    vtt.setActivePartitions(1);
    EXPECT_EQ(vtt.validLines(), 4u);
    // Capacity reflects the shrink.
    EXPECT_EQ(vtt.capacityLines(), 192u);
}

TEST_F(VttFixture, TagOnlyModeUsesAllPartitions)
{
    vtt.setTagOnlyMode(true);
    EXPECT_EQ(vtt.activePartitions(), lb.vttMaxPartitions);
    RegNum reg = 0;
    EXPECT_TRUE(vtt.insert(lineInSet(2, 0), 1, reg));
    EXPECT_TRUE(vtt.probe(lineInSet(2, 0), 2).hit);
    // Leaving tag-only mode wipes the table.
    vtt.setTagOnlyMode(false);
    EXPECT_EQ(vtt.validLines(), 0u);
    EXPECT_EQ(vtt.activePartitions(), 0u);
}

/** Property sweep over associativity (Fig 10 configurations). */
class VttAssociativity : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(VttAssociativity, CapacityAndMappingConsistent)
{
    GpuConfig gpu;
    LbConfig lb;
    lb.vttWays = GetParam();
    lb.vttMaxPartitions = 1536 / (48 * lb.vttWays);
    SimStats stats;
    VictimTagTable vtt(gpu, lb, &stats);
    vtt.setActivePartitions(lb.vttMaxPartitions);
    EXPECT_EQ(vtt.capacityLines(), 1536u);
    // Every mapped register is unique and within the register file.
    std::set<RegNum> regs;
    for (std::uint32_t p = 0; p < lb.vttMaxPartitions; ++p) {
        for (std::uint32_t s = 0; s < 48; ++s) {
            for (std::uint32_t w = 0; w < lb.vttWays; ++w) {
                const RegNum rn = vtt.regNumFor(p, s, w);
                EXPECT_GE(rn, lb.victimRegOffset);
                EXPECT_LT(rn, 2048u);
                EXPECT_TRUE(regs.insert(rn).second);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, VttAssociativity,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

} // namespace
} // namespace lbsim
