#include "lb/load_monitor.hpp"

namespace lbsim
{

LoadMonitor::LoadMonitor(const LbConfig &cfg) : cfg_(cfg)
{
}

void
LoadMonitor::recordAccess(Pc pc, std::uint8_t hpc, bool hit)
{
    if (state_ != MonitorState::Monitoring)
        return;
    Entry &entry = entries_[hpc % kEntries];
    if (!entry.seen) {
        entry.seen = true;
        entry.pc = pc; // First toucher stores its full PC.
    }
    if (hit)
        ++entry.hits;
    else
        ++entry.misses;
}

MonitorState
LoadMonitor::endWindow()
{
    if (state_ != MonitorState::Monitoring)
        return state_;

    ++windows_;
    bool any_current = false;
    bool all_match = true;
    bool any_previous = false;

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &entry = entries_[i];
        const std::uint32_t total = entry.hits + entry.misses;
        lastWindow_[i] = {entry.pc, entry.hits, entry.misses,
                          total > 0 &&
                              static_cast<double>(entry.hits) / total >=
                                  cfg_.hitRatioThreshold};
    }

    for (Entry &entry : entries_) {
        const std::uint32_t total = entry.hits + entry.misses;
        const bool high = total > 0 &&
            static_cast<double>(entry.hits) / total >=
                cfg_.hitRatioThreshold;

        const bool prev = entry.valid & 0x1;
        any_previous |= prev;
        // Shift history: current classification becomes bit0, previous
        // moves to bit1 (Section 4.1 LM valid-field update).
        entry.valid = static_cast<std::uint8_t>(((entry.valid & 0x1) << 1) |
                                                (high ? 1 : 0));
        any_current |= high;
        if (high != prev)
            all_match = false;

        entry.hits = 0;
        entry.misses = 0;
    }

    if (windows_ >= 2) {
        if (any_current && all_match && any_previous) {
            state_ = MonitorState::Selected;
        } else if (!any_current && !any_previous) {
            // No high-locality load in two consecutive windows: the
            // application is not cache sensitive.
            state_ = MonitorState::Disabled;
        } else if (windows_ >= kMaxWindows) {
            state_ = MonitorState::Disabled;
        }
    }
    return state_;
}

bool
LoadMonitor::isSelected(std::uint8_t hpc) const
{
    if (state_ != MonitorState::Selected)
        return false;
    const Entry &entry = entries_[hpc % kEntries];
    return (entry.valid & 0x3) == 0x3;
}

std::uint32_t
LoadMonitor::selectedCount() const
{
    if (state_ != MonitorState::Selected)
        return 0;
    std::uint32_t count = 0;
    for (const Entry &entry : entries_)
        count += ((entry.valid & 0x3) == 0x3) ? 1 : 0;
    return count;
}

double
LoadMonitor::hitRatio(std::uint8_t hpc) const
{
    const Entry &entry = entries_[hpc % kEntries];
    const std::uint32_t total = entry.hits + entry.misses;
    return total ? static_cast<double>(entry.hits) / total : 0.0;
}

} // namespace lbsim
