/**
 * @file
 * Register backup/restore engine.
 *
 * When a CTA is throttled its architectural registers are copied to a
 * dedicated off-chip region through a 6-entry staging buffer (Section 4,
 * "Delay Considerations"); the freed space becomes victim-cache storage
 * only once the backup completes (the C bit). Reactivation streams the
 * registers back; the CTA resumes only when every restore line arrived.
 * Backup/restore lines travel as RegBackup / RegRestore requests and
 * consume real interconnect and DRAM bandwidth (Fig 17 overhead).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_safety.hpp"
#include "common/types.hpp"
#include "mem/interconnect.hpp"

namespace lbsim
{

class Sm;

/** Per-SM backup/restore engine (part of the CTA manager datapath). */
class BackupEngine : public ResponseSinkIf
{
  public:
    BackupEngine(const GpuConfig &gpu, const LbConfig &lb, Sm *sm,
                 SimStats *stats);

    /** True while any backup or restore job is in flight. */
    bool busy() const;

    /** Begin backing up @p num_regs registers of CTA @p cta_hw_id. */
    void startBackup(std::uint32_t cta_hw_id, RegNum first_reg,
                     std::uint32_t num_regs, Addr backup_addr, Cycle now);

    /** Begin restoring the same register image. */
    void startRestore(std::uint32_t cta_hw_id, RegNum first_reg,
                      std::uint32_t num_regs, Addr backup_addr, Cycle now);

    /** Backup of @p cta_hw_id finished (C bit). */
    bool backupComplete(std::uint32_t cta_hw_id) const;

    /** Restore of @p cta_hw_id finished (CTA may re-activate). */
    bool restoreComplete(std::uint32_t cta_hw_id) const;

    /** Forget a completed job's bookkeeping. */
    void clearJob(std::uint32_t cta_hw_id);

    /** Drain the staging buffer toward the interconnect. */
    void tick(Cycle now);

    /** RegRestore data arrived. */
    void onResponse(const MemResponse &response, Cycle now) override;

    /**
     * Conservation auditor: the staging buffer respects its configured
     * capacity, per job linesDone + queued lines + buffered lines +
     * outstanding restore responses equals linesTotal (no register line
     * is lost or duplicated in flight), and every outstanding restore
     * response belongs to a restore job.
     */
    void audit(Cycle now) const;

    /** Job/queue summary for failure reports. */
    std::string debugString() const;

    /** Staging-buffer occupancy (hang-report snapshot). */
    std::uint32_t
    stagingOccupancy() const
    {
        SeqGuard guard(domain_);
        return static_cast<std::uint32_t>(buffer_.size());
    }

    /** Lines still waiting for a staging-buffer slot. */
    std::uint32_t
    stagingBacklog() const
    {
        SeqGuard guard(domain_);
        return static_cast<std::uint32_t>(pendingLines_.size());
    }

    /**
     * Drop the accounting for one already-issued line of @p cta_hw_id's
     * job so tests can fabricate a conservation violation. Never call
     * from simulator code.
     */
    void tamperJobForTest(std::uint32_t cta_hw_id, std::uint32_t delta);

  private:
    struct Transfer
    {
        std::uint32_t ctaHwId;
        RegNum reg;
        Addr memAddr;
        bool isBackup;
    };

    struct Job
    {
        std::uint32_t linesTotal = 0;
        std::uint32_t linesDone = 0;
        bool isBackup = true;

        bool done() const { return linesDone == linesTotal; }
    };

    const GpuConfig &gpu_;
    LbConfig lb_;
    Sm *sm_;
    SimStats *stats_;
    /**
     * Tick domain of the engine's queues and job table. The backup
     * engine is per-SM state: under the parallel tick engine it lives
     * inside that SM's shard, and the capability marks every access the
     * shard boundary covers.
     */
    mutable SeqDomain domain_;
    /** Lines waiting for a staging-buffer slot. */
    std::deque<Transfer> pendingLines_ LB_GUARDED_BY(domain_);
    /** Staging buffer contents (bounded by lb_.backupBufferEntries). */
    std::deque<Transfer> buffer_ LB_GUARDED_BY(domain_);
    std::unordered_map<std::uint32_t, Job> jobs_ LB_GUARDED_BY(domain_);
    /** Restore responses outstanding: memAddr -> cta. */
    std::unordered_map<Addr, std::uint32_t> pendingRestores_
        LB_GUARDED_BY(domain_);
};

} // namespace lbsim
