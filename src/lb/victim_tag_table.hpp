/**
 * @file
 * Victim Tag Table (VTT).
 *
 * A set of partitioned tag arrays tracking victim lines preserved in idle
 * register-file space. Each partition mirrors the L1 set count (48 sets
 * by default) with 4 ways, backing 192 victim lines = 24 KB of register
 * space; up to 8 partitions can be active. A probe searches active
 * partitions sequentially at 3 cycles per partition (Table 3). On a hit,
 * Eq. 2 maps (partition, set, way) to the warp-register number holding
 * the line.
 *
 * During Linebacker's monitoring phase the same structure runs in
 * tag-only mode: every evicted line's tag is recorded (no data), letting
 * the Load Monitor observe would-be victim hits.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace lbsim
{

/** Result of a VTT probe. */
struct VttProbe
{
    bool hit = false;
    std::uint32_t latency = 0;  ///< Sequential partition search cycles.
    RegNum regNum = 0;          ///< Register holding the line (data mode).
};

/** Partitioned victim tag table. */
class VictimTagTable
{
  public:
    /**
     * @param gpu GPU configuration (L1 geometry fixes the set count).
     * @param lb Linebacker constants (ways, partitions, latency).
     * @param stats Run-wide counters.
     */
    VictimTagTable(const GpuConfig &gpu, const LbConfig &lb,
                   SimStats *stats);

    /** Switch between tag-only (monitoring) and data mode. */
    void setTagOnlyMode(bool tag_only);
    bool tagOnlyMode() const { return tagOnly_; }

    /**
     * Resize the active partition count (data mode). Entries in
     * deactivated partitions are invalidated.
     */
    void setActivePartitions(std::uint32_t count);
    std::uint32_t activePartitions() const { return activeParts_; }

    /** Victim lines the active partitions can hold. */
    std::uint32_t capacityLines() const;

    /** Currently valid victim entries. */
    std::uint32_t validLines() const;

    /**
     * Search for @p line_addr across active partitions in order.
     * Updates LRU on hit. In tag-only mode a hit reports hit=true but
     * regNum is meaningless (no data is stored).
     */
    VttProbe probe(Addr line_addr, Cycle now);

    /**
     * Insert the tag of an evicted line; LRU way of the set in the last
     * searched partition is replaced. Prefers invalidated entries
     * (Section 4 store-handling).
     *
     * @param reg_out Receives the backing register number (data mode).
     * @return false if no partition is active.
     */
    bool insert(Addr line_addr, Cycle now, RegNum &reg_out);

    /** Drop @p line_addr if present (store hit). @return true if dropped. */
    bool invalidate(Addr line_addr);

    /** Drop everything (mode changes, kernel boundaries). */
    void invalidateAll();

    /** Eq. 2: register number for (partition, set, way). */
    RegNum regNumFor(std::uint32_t partition, std::uint32_t set,
                     std::uint32_t way) const;

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return lb_.vttWays; }
    std::uint32_t maxPartitions() const { return lb_.vttMaxPartitions; }

    /**
     * Partition auditor: the active-partition count respects the
     * configured maximum, the backing store has the configured
     * sets x ways x maxPartitions shape, deactivated partitions hold no
     * valid entries, every valid entry sits in the set its address maps
     * to, no line is tracked by more than one (partition, way), and no
     * LRU timestamp lies in the future. (A valid entry with a sentinel
     * address is unrepresentable: the sentinel IS the invalid marker.)
     */
    void audit(Cycle now) const;

    /** Per-set entry dump for failure reports. */
    std::string debugSetString(std::uint32_t set) const;

    /**
     * Overwrite one entry so tests can fabricate corrupted states (e.g.
     * the same line tracked by two partitions). Never call from
     * simulator code.
     */
    void setEntryForTest(std::uint32_t partition, std::uint32_t set,
                         std::uint32_t way, Addr line_addr, bool valid,
                         Cycle last_use);

  private:
    /**
     * Structure-of-arrays index for (partition, set, way).
     *
     * Set-major layout: a probe searches every active partition's ways
     * of ONE set, so keeping a set's (partition x way) tags contiguous
     * turns the probe into a linear scan of one small block — the whole
     * 8-partition x 4-way tag run for a set is 256 bytes — instead of a
     * strided walk with a cache miss per partition.
     */
    std::size_t
    slot(std::uint32_t partition, std::uint32_t set,
         std::uint32_t way) const
    {
        return (static_cast<std::size_t>(set) * lb_.vttMaxPartitions +
                partition) *
                   lb_.vttWays +
               way;
    }

    std::uint32_t setIndex(Addr line_addr) const;

    LbConfig lb_;
    SimStats *stats_;
    std::uint32_t sets_;
    std::uint32_t activeParts_ = 0;
    bool tagOnly_ = false;
    /** Tag plane, sets x maxPartitions x ways; kNoAddr = invalid. */
    std::vector<Addr> tags_;
    /** LRU plane, parallel to the tag plane. */
    std::vector<Cycle> lastUse_;
};

} // namespace lbsim
