/**
 * @file
 * Linebacker: the paper's contribution, assembled per SM.
 *
 * Combines the Load Monitor (per-load locality classification), the
 * Victim Tag Table (victim lines preserved in idle warp registers), the
 * CTA Throttling Logic (IPC-driven CTA count tuning) and the Backup
 * Engine (register save/restore to off-chip memory). The class plugs into
 * the policy-free core model through two interfaces:
 *
 *  - SmControllerIf: window bookkeeping, throttling decisions, and CTA
 *    scheduling priority for throttled CTAs;
 *  - VictimCacheIf: L1 miss probes, eviction capture, per-load outcome
 *    notification, and store invalidation.
 *
 * SchemeConfig degrades the mechanism gracefully into the paper's
 * ablations: VictimMode::All (no monitoring), Selective without
 * throttling (SVC on statically unused registers only), or full
 * Linebacker (throttling + backup + SUR and DUR victim space).
 */

#pragma once

#include <cstdint>
#include <memory>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/sm.hpp"
#include "lb/backup_engine.hpp"
#include "lb/load_monitor.hpp"
#include "lb/throttle_logic.hpp"
#include "lb/victim_tag_table.hpp"
#include "mem/victim_if.hpp"

namespace lbsim
{

/** Per-SM Linebacker instance. */
class Linebacker : public SmControllerIf, public VictimCacheIf
{
  public:
    /**
     * @param gpu Chip configuration.
     * @param lb Linebacker constants (Table 3).
     * @param scheme Mechanism composition for this run.
     * @param sm The SM this instance controls.
     * @param stats Run-wide counters.
     * @param inner Optional chained controller (e.g.\ PCAL for the
     *        PCAL+SVC combination); issue gating and bypass delegate to
     *        it.
     */
    Linebacker(const GpuConfig &gpu, const LbConfig &lb,
               const SchemeConfig &scheme, Sm *sm, SimStats *stats,
               SmControllerIf *inner = nullptr);

    // --- SmControllerIf ---------------------------------------------------
    void onCycle(Sm &sm, Cycle now) override;
    bool warpMayIssue(const Sm &sm, const Warp &warp) const override;
    bool warpBypassesL1(const Sm &sm, const Warp &warp) const override;
    void onCtaLaunched(Sm &sm, Cta &cta, Cycle now) override;
    void onCtaCompleted(Sm &sm, Cta &cta, Cycle now) override;
    bool onSchedulingOpportunity(Sm &sm, Cycle now) override;
    void onMeasurementReset(Sm &sm, Cycle now) override;
    Cycle nextEventCycle(const Sm &sm, Cycle now) const override;
    void onCyclesSkipped(Sm &sm, Cycle cycles) override;
    bool wantsSchedulingOpportunity(const Sm &sm) const override;
    std::string statusString() const override;

    // --- VictimCacheIf ------------------------------------------------------
    VictimProbeResult probeVictim(Addr line_addr, Cycle now) override;
    void notifyEviction(Addr line_addr, std::uint8_t hpc,
                        std::uint8_t owner_warp, Cycle now) override;
    void notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                      std::uint8_t warp_slot, bool hit,
                      Cycle now) override;
    void notifyStore(Addr line_addr, Cycle now) override;

    // --- Introspection -----------------------------------------------------
    const LoadMonitor &loadMonitor() const { return lm_; }
    const VictimTagTable &vtt() const { return vtt_; }

    /**
     * Mutable VTT access for tests that fabricate corrupted entries
     * (setEntryForTest). Never call from simulator code.
     */
    VictimTagTable &vttForTest() { return vtt_; }
    const CtaManager &ctaManager() const { return ctaMgr_; }
    const BackupEngine &backupEngine() const { return *engine_; }

    /** Windows the Load Monitor consumed (Fig 9 annotation). */
    std::uint32_t monitoringWindows() const { return lm_.windowsUsed(); }

    /** Time-averaged registers used as victim lines. */
    double avgVictimRegs(Cycle cycles) const
    {
        return cycles ? victimRegAccum_ / cycles : 0.0;
    }

    /** Victim caching currently serving data (post-monitoring). */
    bool victimActive() const { return phase_ == Phase::Active; }

    /**
     * Mechanism-wide auditor: delegates to the VTT partition auditor,
     * the backup-engine conservation auditor and the CTA-manager BP
     * auditor, then cross-checks the Linebacker composition — victim
     * capacity never exceeds the idle register space backing it, and the
     * CTA manager's act bits mirror the SM's CTA table (CTAs mid
     * backup/restore transfer are exempt).
     */
    void audit(const Sm &sm, Cycle now) const;

  private:
    /** Lifecycle of the mechanism on this SM. */
    enum class Phase
    {
        Monitoring,  ///< LM counting; VTT tag-only.
        Active,      ///< Victim caching (and throttling) engaged.
        Disabled,    ///< Cache-insensitive kernel; mechanism off.
    };

    void endWindow(Sm &sm, Cycle now);
    void resizeVictimSpace(Sm &sm, Cycle now);
    void throttleOne(Sm &sm, Cycle now);
    bool reactivateOne(Sm &sm, Cycle now);
    bool lineBelongsToSelectedLoad(std::uint8_t hpc) const;

    /** Registers in [victimRegOffset, total) usable as victim space. */
    std::uint32_t availableVictimRegs(const Sm &sm) const;

    const GpuConfig &gpu_;
    LbConfig lb_;
    SchemeConfig scheme_;
    Sm *sm_;
    SimStats *stats_;
    SmControllerIf *inner_;

    LoadMonitor lm_;
    VictimTagTable vtt_;
    IpcMonitor ipc_;
    CtaManager ctaMgr_;
    std::unique_ptr<BackupEngine> engine_;

    /** Last throttling action, for oscillation hysteresis. */
    enum class LastAction
    {
        None,
        Throttled,
        Activated,
    };

    Phase phase_ = Phase::Monitoring;
    LastAction lastAction_ = LastAction::None;
    /** IPC of the last settled configuration (decision reference). */
    double refIpc_ = 0.0;
    /** Skip one window after a configuration change before deciding. */
    bool settle_ = false;
    /** Consecutive below-lower-bound windows (reverts need two). */
    std::uint32_t consecutiveBad_ = 0;
    /** Best settled window IPC seen (decayed) and its CTA count. */
    double bestIpc_ = 0.0;
    std::uint32_t bestActiveCtas_ = 0;
    Cycle nextWindowEnd_;
    /** CTA awaiting backup completion before its space joins the VTT. */
    std::int32_t backupWaitCta_ = -1;
    /** CTA awaiting restore completion before re-activation. */
    std::int32_t restoreWaitCta_ = -1;
    double victimRegAccum_ = 0.0;
    bool statsRecorded_ = false;
};

} // namespace lbsim
