/**
 * @file
 * Linebacker's per-load locality monitor.
 *
 * A 32-entry table indexed by the 5-bit hashed PC of each global load.
 * Each entry counts hits (L1 or victim-tag) and misses inside a
 * monitoring window and keeps a 2-bit valid history. A load is selected
 * for victim caching only when it is classified as high-locality in two
 * consecutive windows; if the high-locality set differs between windows,
 * monitoring continues, and if no load qualifies in the first two windows
 * Linebacker disables itself (the kernel is treated as cache-insensitive).
 */

#pragma once

#include <array>
#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lbsim
{

/** Monitoring outcome after a window boundary. */
enum class MonitorState
{
    Monitoring,  ///< Keep counting; selection not yet stable.
    Selected,    ///< High-locality load set locked in; monitoring over.
    Disabled,    ///< No high-locality loads; Linebacker stands down.
};

/** The 32-entry Load Monitor (Fig 7, "LM"). */
class LoadMonitor
{
  public:
    explicit LoadMonitor(const LbConfig &cfg);

    /** Record one load outcome (L1 hit or victim-tag hit counts as hit). */
    void recordAccess(Pc pc, std::uint8_t hpc, bool hit);

    /**
     * Close the current window, update valid-bit history and decide the
     * next state.
     */
    MonitorState endWindow();

    MonitorState state() const { return state_; }

    /** True if @p hpc belongs to a selected high-locality load. */
    bool isSelected(std::uint8_t hpc) const;

    /** Number of selected loads (0 before selection). */
    std::uint32_t selectedCount() const;

    /** Windows consumed until selection/disable (Fig 9 annotation). */
    std::uint32_t windowsUsed() const { return windows_; }

    /** Hit ratio of entry @p hpc in the current window. */
    double hitRatio(std::uint8_t hpc) const;

    /** Introspection snapshot of one entry's previous window. */
    struct WindowEntry
    {
        Pc pc = 0;
        std::uint32_t hits = 0;
        std::uint32_t misses = 0;
        bool classifiedHigh = false;
    };

    /** Per-entry stats of the most recently closed window. */
    const std::array<WindowEntry, 32> &lastWindow() const
    {
        return lastWindow_;
    }

  private:
    struct Entry
    {
        Pc pc = 0;
        std::uint32_t hits = 0;
        std::uint32_t misses = 0;
        bool seen = false;
        /** bit0: current-window classification, bit1: previous window. */
        std::uint8_t valid = 0;
    };

    static constexpr std::uint32_t kEntries = 32;

    LbConfig cfg_;
    std::array<Entry, kEntries> entries_{};
    std::array<WindowEntry, kEntries> lastWindow_{};
    MonitorState state_ = MonitorState::Monitoring;
    std::uint32_t windows_ = 0;
    /** Give up after this many unstable windows (app completes anyway). */
    static constexpr std::uint32_t kMaxWindows = 16;
};

} // namespace lbsim
