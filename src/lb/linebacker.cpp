#include <cstdio>
#include <cstdlib>
#include "lb/linebacker.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "resilience/faultinject.hpp"

namespace lbsim
{

namespace
{

/** Dedicated off-chip region for register images, far above data. */
Addr
backupRegionBase(std::uint32_t sm_id)
{
    return (Addr{1} << 40) + (static_cast<Addr>(sm_id) << 30);
}

} // namespace

Linebacker::Linebacker(const GpuConfig &gpu, const LbConfig &lb,
                       const SchemeConfig &scheme, Sm *sm,
                       SimStats *stats, SmControllerIf *inner)
    : gpu_(gpu), lb_(lb), scheme_(scheme), sm_(sm), stats_(stats),
      inner_(inner), lm_(lb_), vtt_(gpu, lb_, stats), ipc_(lb_),
      ctaMgr_(gpu.maxCtasPerSm),
      engine_(std::make_unique<BackupEngine>(gpu, lb_, sm, stats)),
      nextWindowEnd_(lb.monitorPeriod)
{
    sm->setRestoreSink(engine_.get());
    sm->l1().setVictimCache(this);

    if (scheme_.victim == VictimMode::All) {
        // Fig 11 "Victim Caching": no monitoring at all; every evicted
        // line is preserved in whatever idle register space exists.
        phase_ = Phase::Active;
        vtt_.setTagOnlyMode(false);
    } else {
        phase_ = Phase::Monitoring;
        vtt_.setTagOnlyMode(true);
    }
}

bool
Linebacker::lineBelongsToSelectedLoad(std::uint8_t hpc) const
{
    if (scheme_.victim == VictimMode::All)
        return true;
    return lm_.isSelected(hpc);
}

std::uint32_t
Linebacker::availableVictimRegs(const Sm &sm) const
{
    // Statically unused space: registers above the victim offset that no
    // CTA owns.
    std::uint32_t available =
        sm.regFile().freeRegsAbove(lb_.victimRegOffset);

    // Dynamically unused space: registers of throttled CTAs whose backup
    // completed (C bit), provided the scheme may use DUR.
    if (scheme_.useDynamicUnusedRegs) {
        for (const Cta &cta : sm.ctas()) {
            if (!cta.valid || cta.active)
                continue;
            if (!ctaMgr_.info(cta.hwId).c)
                continue;
            const RegNum lo = std::max<RegNum>(cta.firstRegNum,
                                               lb_.victimRegOffset);
            const RegNum hi = cta.firstRegNum + cta.numRegs;
            if (hi > lo)
                available += hi - lo;
        }
    }
    return available;
}

void
Linebacker::resizeVictimSpace(Sm &sm, Cycle now)
{
    (void)now;
    // Monitoring runs on the tag SRAM alone — register occupancy is
    // irrelevant and the partitions must stay fully active.
    if (vtt_.tagOnlyMode())
        return;
    if (phase_ != Phase::Active) {
        vtt_.setActivePartitions(0);
        return;
    }
    const std::uint32_t part_lines = vtt_.sets() * vtt_.ways();
    const std::uint32_t parts = availableVictimRegs(sm) / part_lines;
    if (parts != vtt_.activePartitions())
        vtt_.setActivePartitions(parts);
}

void
Linebacker::onCycle(Sm &sm, Cycle now)
{
    if (inner_)
        inner_->onCycle(sm, now);

    engine_->tick(now);

    // Backup completion gates victim-space activation (C bit).
    if (backupWaitCta_ >= 0 &&
        engine_->backupComplete(static_cast<std::uint32_t>(backupWaitCta_))) {
        ctaMgr_.markBackupComplete(
            static_cast<std::uint32_t>(backupWaitCta_));
        engine_->clearJob(static_cast<std::uint32_t>(backupWaitCta_));
        backupWaitCta_ = -1;
        resizeVictimSpace(sm, now);
    }

    // Restore completion re-activates the CTA.
    if (restoreWaitCta_ >= 0 &&
        engine_->restoreComplete(
            static_cast<std::uint32_t>(restoreWaitCta_))) {
        const auto cta_id = static_cast<std::uint32_t>(restoreWaitCta_);
        engine_->clearJob(cta_id);
        restoreWaitCta_ = -1;
        sm.setCtaActive(cta_id, true, now);
        ++stats_->ctaActivateEvents;
    }

    // Injected partition revocation: drop one active VTT partition
    // (invalidating its victim lines) as if its backing registers were
    // reclaimed out from under the mechanism. A later resizeVictimSpace
    // may legitimately re-expand — the fault exercises the shrink path,
    // not a permanent capacity loss.
    if (FaultInjector *fi = sm.faultInjector();
        fi && phase_ == Phase::Active && !vtt_.tagOnlyMode() &&
        vtt_.activePartitions() > 0 && fi->takeVttRevoke(now, sm.id())) {
        vtt_.setActivePartitions(vtt_.activePartitions() - 1);
    }

    if (now >= nextWindowEnd_) {
        endWindow(sm, now);
        nextWindowEnd_ = now + lb_.monitorPeriod;
    }

    // Only real victim storage counts toward the occupancy average (the
    // monitoring tag SRAM holds no data).
    if (!vtt_.tagOnlyMode())
        victimRegAccum_ += vtt_.capacityLines();

    if constexpr (checksEnabled(CheckLevel::Full)) {
        if (gpu_.auditStride != 0 && now % gpu_.auditStride == 0)
            audit(sm, now);
    }
}

void
Linebacker::audit(const Sm &sm, Cycle now) const
{
    CheckScope scope(now, sm.id());
    vtt_.audit(now);
    engine_->audit(now);
    ctaMgr_.audit();

    // Victim lines live in idle registers; the VTT must never claim more
    // space than the register file actually has idle. Transfers in
    // flight transiently blur the boundary, so only settled states are
    // checked.
    if (phase_ == Phase::Active && !vtt_.tagOnlyMode() &&
        backupWaitCta_ < 0 && restoreWaitCta_ < 0) {
        LB_AUDIT(vtt_.capacityLines() <= availableVictimRegs(sm),
                 "VTT claims %u victim lines but only %u idle registers "
                 "back them",
                 vtt_.capacityLines(), availableVictimRegs(sm));
    }

    // The CTA manager's act bit mirrors the SM's CTA table except for
    // the CTA whose restore is still streaming (the manager re-activates
    // it at restore start, the SM at restore completion).
    for (const Cta &cta : sm.ctas()) {
        if (!cta.valid)
            continue;
        if (static_cast<std::int32_t>(cta.hwId) == restoreWaitCta_)
            continue;
        LB_AUDIT(ctaMgr_.info(cta.hwId).act == cta.active,
                 "CTA %u is %s in the SM but %s in the CTA manager",
                 cta.hwId, cta.active ? "active" : "inactive",
                 ctaMgr_.info(cta.hwId).act ? "active" : "inactive");
    }
}

void
Linebacker::endWindow(Sm &sm, Cycle now)
{
    switch (phase_) {
      case Phase::Monitoring: {
        // Close the IPC window every period so the unthrottled reference
        // is a genuine per-window IPC, not an inflated cumulative value.
        ipc_.endWindow(sm.instructionsIssued(), lb_.monitorPeriod);
        const MonitorState state = lm_.endWindow();
        if (state == MonitorState::Selected) {
            phase_ = Phase::Active;
            vtt_.setTagOnlyMode(false);
            resizeVictimSpace(sm, now);
            if (!statsRecorded_ && sm.id() == 0) {
                stats_->monitoringPeriods = lm_.windowsUsed();
                stats_->selectedLoads = lm_.selectedCount();
                statsRecorded_ = true;
            }
            // The kernel is cache sensitive: proactively throttle one CTA
            // right after the monitoring period (Section 3.2). The last
            // monitoring window serves as the unthrottled reference.
            refIpc_ = ipc_.currentIpc();
            if (scheme_.throttle == ThrottleMode::DynamicCta)
                throttleOne(sm, now);
        } else if (state == MonitorState::Disabled) {
            phase_ = Phase::Disabled;
            vtt_.setTagOnlyMode(false);
            vtt_.setActivePartitions(0);
            if (!statsRecorded_ && sm.id() == 0) {
                stats_->monitoringPeriods = lm_.windowsUsed();
                stats_->selectedLoads = 0;
                statsRecorded_ = true;
            }
        }
        break;
      }
      case Phase::Active: {
        if (scheme_.throttle != ThrottleMode::DynamicCta)
            break;
        ipc_.endWindow(sm.instructionsIssued(), lb_.monitorPeriod);
        // Postpone decisions while a backup/restore is still in flight;
        // the IPC sample would mix two configurations.
        if (backupWaitCta_ >= 0 || restoreWaitCta_ >= 0)
            break;
        // The window right after a configuration change carries the
        // transition transient (backup traffic, cold victim lines);
        // decisions compare settled windows against the last settled
        // reference.
        if (settle_) {
            settle_ = false;
            break;
        }
        const double cur = ipc_.currentIpc();
        const double var =
            refIpc_ > 0.0 ? (cur - refIpc_) / refIpc_ : 0.0;

        // Remember the best settled configuration. The record decays
        // slowly so a stale transient peak cannot be chased forever.
        bestIpc_ *= 0.99;
        if (cur > bestIpc_) {
            bestIpc_ = cur;
            bestActiveCtas_ = sm.activeCtaCount();
        }
        // Opt-in controller trace (set LBTRACE=1): one line per decision
        // window on SM 0, for tuning and debugging throttle behaviour.
        if (envFlag("LBTRACE") && sm.id() == 0) {
            std::fprintf(stderr,
                         "lbtrace cyc=%llu ipc=%.3f ref=%.3f var=%+.2f "
                         "activeCtas=%u vttParts=%u lastAction=%d\n",
                         static_cast<unsigned long long>(now), cur,
                         refIpc_, var, sm.activeCtaCount(),
                         vtt_.activePartitions(),
                         static_cast<int>(lastAction_));
        }
        if (var > lb_.ipcVarUpper) {
            consecutiveBad_ = 0;
            // An IPC rise right after undoing a bad throttle is the
            // recovery itself, not evidence that throttling helps —
            // re-throttling here would oscillate forever.
            if (lastAction_ == LastAction::Activated) {
                lastAction_ = LastAction::None;
                refIpc_ = cur;
            } else if (sm.activeCtaCount() > 1) {
                refIpc_ = cur;
                throttleOne(sm, now);
            }
        } else if (var < lb_.ipcVarLower) {
            // A single bad window right after marching is often an
            // overshoot; persistent degradation (two windows) reverts.
            const bool fresh_overshoot =
                lastAction_ == LastAction::Throttled;
            ++consecutiveBad_;
            if ((fresh_overshoot || consecutiveBad_ >= 2) &&
                reactivateOne(sm, now)) {
                lastAction_ = LastAction::Activated;
                settle_ = true;
                consecutiveBad_ = 0;
                refIpc_ = cur;
            } else if (consecutiveBad_ >= 2) {
                // Nothing to re-activate; track the measured state so the
                // controller is not stuck against a stale high-water
                // mark.
                refIpc_ = cur;
                consecutiveBad_ = 0;
            }
        } else {
            consecutiveBad_ = 0;
            lastAction_ = LastAction::None;
            refIpc_ = cur;
            // Well below the best configuration on record (e.g.\ after
            // reverting on a CTA-rotation transient): step back toward
            // it rather than idling in an inferior state.
            if (cur < 0.85 * bestIpc_) {
                const std::uint32_t active = sm.activeCtaCount();
                if (active > bestActiveCtas_ && active > 1)
                    throttleOne(sm, now);
                else if (active < bestActiveCtas_)
                    reactivateOne(sm, now);
            }
        }
        break;
      }
      case Phase::Disabled:
        break;
    }
}

void
Linebacker::throttleOne(Sm &sm, Cycle now)
{
    const std::int32_t cta_id = sm.highestActiveCta();
    if (cta_id < 0)
        return;
    const Cta &cta = sm.cta(static_cast<std::uint32_t>(cta_id));
    sm.setCtaActive(static_cast<std::uint32_t>(cta_id), false, now);
    ++stats_->ctaThrottleEvents;

    lastAction_ = LastAction::Throttled;
    settle_ = true;
    const Addr ba = ctaMgr_.markThrottled(static_cast<std::uint32_t>(cta_id));
    if (scheme_.backupRegisters) {
        engine_->startBackup(static_cast<std::uint32_t>(cta_id),
                             cta.firstRegNum, cta.numRegs, ba, now);
        backupWaitCta_ = cta_id;
    } else {
        ctaMgr_.markBackupComplete(static_cast<std::uint32_t>(cta_id));
        resizeVictimSpace(sm, now);
    }
}

bool
Linebacker::reactivateOne(Sm &sm, Cycle now)
{
    // One transfer at a time, and never re-activate a CTA whose backup
    // has not finished draining (the restore would race the backup
    // writes for the same register image).
    if (restoreWaitCta_ >= 0 || backupWaitCta_ >= 0)
        return false;
    const std::int32_t cta_id = sm.lowestInactiveCta();
    if (cta_id < 0)
        return false;
    if (scheme_.backupRegisters &&
        !ctaMgr_.info(static_cast<std::uint32_t>(cta_id)).c) {
        return false;
    }
    const Cta &cta = sm.cta(static_cast<std::uint32_t>(cta_id));

    // The victim lines stored in this CTA's registers are clean, so the
    // space can be reclaimed immediately; shrink the VTT first.
    const Addr ba =
        ctaMgr_.markReactivated(static_cast<std::uint32_t>(cta_id));
    resizeVictimSpace(sm, now);

    if (scheme_.backupRegisters) {
        engine_->startRestore(static_cast<std::uint32_t>(cta_id),
                              cta.firstRegNum, cta.numRegs, ba, now);
        restoreWaitCta_ = cta_id;
    } else {
        sm.setCtaActive(static_cast<std::uint32_t>(cta_id), true, now);
        ++stats_->ctaActivateEvents;
    }
    return true;
}

bool
Linebacker::warpMayIssue(const Sm &sm, const Warp &warp) const
{
    // Throttled CTAs are gated by warp.active; delegate extra policy.
    return inner_ ? inner_->warpMayIssue(sm, warp) : true;
}

bool
Linebacker::warpBypassesL1(const Sm &sm, const Warp &warp) const
{
    return inner_ ? inner_->warpBypassesL1(sm, warp) : false;
}

void
Linebacker::onCtaLaunched(Sm &sm, Cta &cta, Cycle now)
{
    (void)now;
    if (ctaMgr_.regsPerCta() == 0 && sm.kernel()) {
        ctaMgr_.beginKernel(sm.kernel()->regsPerCta(),
                            backupRegionBase(sm.id()));
    }
    ctaMgr_.onLaunch(cta.hwId, cta.firstRegNum);
    // A launch shrinks the statically unused space; the VTT must release
    // partitions whose backing registers are no longer idle.
    resizeVictimSpace(sm, now);
    if (inner_)
        inner_->onCtaLaunched(sm, cta, now);
}

void
Linebacker::onCtaCompleted(Sm &sm, Cta &cta, Cycle now)
{
    ctaMgr_.onComplete(cta.hwId);
    resizeVictimSpace(sm, now);
    if (inner_)
        inner_->onCtaCompleted(sm, cta, now);
}

bool
Linebacker::onSchedulingOpportunity(Sm &sm, Cycle now)
{
    // A finished CTA frees resources: re-activate a throttled CTA before
    // the dispatcher launches a fresh one (Section 3.2, P5).
    if (sm.lowestInactiveCta() < 0 || restoreWaitCta_ >= 0)
        return false;
    return reactivateOne(sm, now);
}

Cycle
Linebacker::nextEventCycle(const Sm &sm, Cycle now) const
{
    // Transfers in flight (or their completion gates) need every cycle:
    // the backup engine's tick moves data, and the completion checks at
    // the top of onCycle() fire the moment a job finishes.
    if (backupWaitCta_ >= 0 || restoreWaitCta_ >= 0 || engine_->busy())
        return now;
    // Otherwise onCycle() only acts at the window boundary (the
    // victimRegAccum_ integration is replayed by onCyclesSkipped).
    Cycle bound = nextWindowEnd_;
    if (inner_) {
        const Cycle inner_bound = inner_->nextEventCycle(sm, now);
        if (inner_bound < bound)
            bound = inner_bound;
    }
    return bound;
}

void
Linebacker::onCyclesSkipped(Sm &sm, Cycle cycles)
{
    // Mirror of onCycle()'s per-cycle integration; capacityLines() is
    // frozen while the SM idles (it only changes on CTA events and
    // window boundaries, which end any skip).
    if (!vtt_.tagOnlyMode()) {
        victimRegAccum_ +=
            static_cast<double>(vtt_.capacityLines()) * cycles;
    }
    if (inner_)
        inner_->onCyclesSkipped(sm, cycles);
}

bool
Linebacker::wantsSchedulingOpportunity(const Sm &sm) const
{
    // Matches onSchedulingOpportunity()'s early-out: with no throttled
    // CTA to re-activate (or a restore already streaming) the callback
    // is a guaranteed no-op.
    return sm.lowestInactiveCta() >= 0 && restoreWaitCta_ < 0;
}

void
Linebacker::onMeasurementReset(Sm &sm, Cycle now)
{
    (void)now;
    victimRegAccum_ = 0.0;
    // The reset wiped the monitoring stats recorded at selection time;
    // restore them so Fig 9 reporting survives the warm-up boundary.
    if (sm.id() == 0 && statsRecorded_) {
        stats_->monitoringPeriods = lm_.windowsUsed();
        stats_->selectedLoads = lm_.selectedCount();
    }
    if (inner_)
        inner_->onMeasurementReset(sm, now);
}

VictimProbeResult
Linebacker::probeVictim(Addr line_addr, Cycle now)
{
    VictimProbeResult result;
    if (phase_ == Phase::Disabled || vtt_.activePartitions() == 0)
        return result;

    const VttProbe probe = vtt_.probe(line_addr, now);
    result.latency = probe.latency;
    if (!probe.hit)
        return result;

    if (vtt_.tagOnlyMode()) {
        result.tagOnlyHit = true;
        return result;
    }

    // Data hit: the register read and the register-register move go
    // through the RF banks.
    result.hit = true;
    result.regNum = probe.regNum;
    result.latency += sm_->regFile().accessRegister(probe.regNum, false,
                                                    now);
    return result;
}

void
Linebacker::notifyEviction(Addr line_addr, std::uint8_t hpc,
                           std::uint8_t owner_warp, Cycle now)
{
    (void)owner_warp;
    if (phase_ == Phase::Disabled)
        return;

    if (vtt_.tagOnlyMode()) {
        // Monitoring: record the tag of every evicted line so re-accesses
        // are observed even though L1 already dropped the line.
        RegNum unused = 0;
        vtt_.insert(line_addr, now, unused);
        return;
    }

    if (vtt_.activePartitions() == 0)
        return;
    if (!lineBelongsToSelectedLoad(hpc)) {
        ++stats_->victimStoreRejected;
        return;
    }

    RegNum reg = 0;
    if (vtt_.insert(line_addr, now, reg)) {
        // The register-register move writes the line into the idle
        // register.
        sm_->regFile().accessRegister(reg, true, now);
        ++stats_->rfVictimAccesses;
        ++stats_->victimLinesStored;
    } else {
        ++stats_->victimStoreRejected;
    }
}

void
Linebacker::notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                         std::uint8_t warp_slot, bool hit, Cycle now)
{
    (void)line_addr;
    (void)warp_slot;
    if (phase_ == Phase::Monitoring) {
        // An injected load-monitor lie inverts the hit/miss observation,
        // corrupting the locality classification the selection is built
        // on — the mechanism must still settle into a safe phase.
        if (FaultInjector *fi = sm_->faultInjector();
            fi && fi->loadMonitorLieActive(now)) {
            hit = !hit;
        }
        lm_.recordAccess(pc, hpc, hit);
    }
}

std::string
Linebacker::statusString() const
{
    const char *phase = "monitoring";
    if (phase_ == Phase::Active)
        phase = "active";
    else if (phase_ == Phase::Disabled)
        phase = "disabled";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "linebacker: phase=%s vttParts=%u staging=%u backlog=%u "
                  "backupWait=%d restoreWait=%d\n",
                  phase, vtt_.activePartitions(),
                  engine_->stagingOccupancy(), engine_->stagingBacklog(),
                  backupWaitCta_, restoreWaitCta_);
    return buf;
}

void
Linebacker::notifyStore(Addr line_addr, Cycle now)
{
    (void)now;
    if (vtt_.tagOnlyMode()) {
        vtt_.invalidate(line_addr);
        return;
    }
    if (vtt_.invalidate(line_addr))
        ++stats_->victimInvalidations;
}

} // namespace lbsim
