#include "lb/victim_tag_table.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

VictimTagTable::VictimTagTable(const GpuConfig &gpu, const LbConfig &lb,
                               SimStats *stats)
    : lb_(lb), stats_(stats), sets_(gpu.l1.sets()),
      tags_(static_cast<std::size_t>(lb.vttMaxPartitions) * sets_ *
                lb.vttWays,
            kNoAddr),
      lastUse_(tags_.size(), 0)
{
}

std::uint32_t
VictimTagTable::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(lineIndex(line_addr) % sets_);
}

void
VictimTagTable::setTagOnlyMode(bool tag_only)
{
    if (tagOnly_ == tag_only)
        return;
    tagOnly_ = tag_only;
    invalidateAll();
    if (tag_only) {
        // The tag SRAM physically exists regardless of register space, so
        // monitoring uses every partition.
        activeParts_ = lb_.vttMaxPartitions;
    } else {
        activeParts_ = 0;
    }
}

void
VictimTagTable::setActivePartitions(std::uint32_t count)
{
    if (count > lb_.vttMaxPartitions)
        count = lb_.vttMaxPartitions;
    if (count < activeParts_) {
        // Deactivated partitions lose their entries (the backing
        // registers are being returned to a reactivated CTA).
        for (std::uint32_t p = count; p < activeParts_; ++p) {
            for (std::uint32_t s = 0; s < sets_; ++s) {
                for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
                    tags_[slot(p, s, w)] = kNoAddr;
                    lastUse_[slot(p, s, w)] = 0;
                }
            }
        }
    }
    activeParts_ = count;
}

std::uint32_t
VictimTagTable::capacityLines() const
{
    return activeParts_ * sets_ * lb_.vttWays;
}

std::uint32_t
VictimTagTable::validLines() const
{
    std::uint32_t count = 0;
    for (const Addr tag : tags_)
        count += tag != kNoAddr ? 1 : 0;
    return count;
}

RegNum
VictimTagTable::regNumFor(std::uint32_t partition, std::uint32_t set,
                          std::uint32_t way) const
{
    // Eq. 2: RN = Offset + N_VP * #VP_entries + X * #ways + Y.
    return lb_.victimRegOffset + partition * (sets_ * lb_.vttWays) +
        set * lb_.vttWays + way;
}

VttProbe
VictimTagTable::probe(Addr line_addr, Cycle now)
{
    VttProbe result;
    ++stats_->vttProbes;
    const std::uint32_t set = setIndex(line_addr);
    // One pass over the set's contiguous tag block: active partitions
    // sit side by side, ways innermost, so the whole search is a linear
    // scan of activeParts_ x ways raw addresses. Invalid slots hold
    // kNoAddr and never match a real line address.
    const Addr *base = &tags_[slot(0, set, 0)];
    const std::uint32_t span = activeParts_ * lb_.vttWays;
    for (std::uint32_t i = 0; i < span; ++i) {
        if (base[i] == line_addr) {
            const std::uint32_t p = i / lb_.vttWays;
            const std::uint32_t w = i % lb_.vttWays;
            lastUse_[slot(p, set, w)] = now;
            result.hit = true;
            result.latency = (p + 1) * lb_.vttAccessLatency;
            result.regNum = regNumFor(p, set, w);
            stats_->vttProbeCycles += result.latency;
            return result;
        }
    }
    result.latency = activeParts_ * lb_.vttAccessLatency;
    stats_->vttProbeCycles += result.latency;
    return result;
}

bool
VictimTagTable::insert(Addr line_addr, Cycle now, RegNum &reg_out)
{
    if (activeParts_ == 0)
        return false;
    LB_INVARIANT(line_addr != kNoAddr,
                 "inserting the sentinel address into the VTT");

    const std::uint32_t set = setIndex(line_addr);
    Addr *base = &tags_[slot(0, set, 0)];
    const std::uint32_t span = activeParts_ * lb_.vttWays;

    // One scan of the set's tag block decides everything: a resident
    // line is refreshed in place, otherwise the first invalid slot (in
    // partition order — store-invalidated lines are reused first) or,
    // failing that, the LRU entry across active partitions is replaced.
    std::uint32_t victim = span;
    std::uint32_t oldestIdx = 0;
    Cycle oldest = kNoCycle;
    for (std::uint32_t i = 0; i < span; ++i) {
        if (base[i] == line_addr) {
            lastUse_[slot(0, set, 0) + i] = now;
            reg_out = regNumFor(i / lb_.vttWays, set, i % lb_.vttWays);
            return true;
        }
        if (victim == span) {
            if (base[i] == kNoAddr) {
                victim = i;
            } else if (lastUse_[slot(0, set, 0) + i] < oldest) {
                oldest = lastUse_[slot(0, set, 0) + i];
                oldestIdx = i;
            }
        }
    }
    if (victim == span)
        victim = oldestIdx;

    base[victim] = line_addr;
    lastUse_[slot(0, set, 0) + victim] = now;
    reg_out = regNumFor(victim / lb_.vttWays, set, victim % lb_.vttWays);
    return true;
}

bool
VictimTagTable::invalidate(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    Addr *base = &tags_[slot(0, set, 0)];
    const std::uint32_t span = activeParts_ * lb_.vttWays;
    for (std::uint32_t i = 0; i < span; ++i) {
        if (base[i] == line_addr) {
            base[i] = kNoAddr;
            return true;
        }
    }
    return false;
}

void
VictimTagTable::invalidateAll()
{
    tags_.assign(tags_.size(), kNoAddr);
    lastUse_.assign(lastUse_.size(), 0);
}

void
VictimTagTable::audit(Cycle now) const
{
    LB_AUDIT(activeParts_ <= lb_.vttMaxPartitions,
             "%u active VTT partitions exceed the maximum of %u",
             activeParts_, lb_.vttMaxPartitions);
    LB_AUDIT(tags_.size() ==
                 static_cast<std::size_t>(lb_.vttMaxPartitions) * sets_ *
                     lb_.vttWays,
             "VTT tag plane holds %zu entries, geometry needs %zu",
             tags_.size(),
             static_cast<std::size_t>(lb_.vttMaxPartitions) * sets_ *
                 lb_.vttWays);
    LB_AUDIT(lastUse_.size() == tags_.size(),
             "VTT LRU plane holds %zu entries, tag plane holds %zu",
             lastUse_.size(), tags_.size());

    for (std::uint32_t set = 0; set < sets_; ++set) {
        StateDumpScope dump([this, set] { return debugSetString(set); });
        for (std::uint32_t p = 0; p < lb_.vttMaxPartitions; ++p) {
            for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
                const Addr tag = tags_[slot(p, set, w)];
                if (tag == kNoAddr) {
                    continue;
                }
                LB_AUDIT(p < activeParts_,
                         "valid entry %llx in deactivated partition %u "
                         "(only %u active)",
                         static_cast<unsigned long long>(tag), p,
                         activeParts_);
                LB_AUDIT(setIndex(tag) == set,
                         "line %llx stored in set %u but maps to set %u",
                         static_cast<unsigned long long>(tag), set,
                         setIndex(tag));
                LB_AUDIT(lastUse_[slot(p, set, w)] <= now,
                         "line %llx has future LRU timestamp %llu "
                         "(now %llu)",
                         static_cast<unsigned long long>(tag),
                         static_cast<unsigned long long>(
                             lastUse_[slot(p, set, w)]),
                         static_cast<unsigned long long>(now));
                // A line must be tracked by at most one partition/way.
                for (std::uint32_t p2 = p; p2 < lb_.vttMaxPartitions;
                     ++p2) {
                    for (std::uint32_t w2 = p2 == p ? w + 1 : 0;
                         w2 < lb_.vttWays; ++w2) {
                        LB_AUDIT(tags_[slot(p2, set, w2)] != tag,
                                 "line %llx tracked twice: partition %u "
                                 "way %u and partition %u way %u",
                                 static_cast<unsigned long long>(tag), p,
                                 w, p2, w2);
                    }
                }
            }
        }
    }
}

std::string
VictimTagTable::debugSetString(std::uint32_t set) const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "VTT set %u (%u/%u partitions active, %u ways, "
                  "tagOnly=%d)\n",
                  set, activeParts_, lb_.vttMaxPartitions, lb_.vttWays,
                  tagOnly_ ? 1 : 0);
    std::string out = buf;
    for (std::uint32_t p = 0; p < lb_.vttMaxPartitions; ++p) {
        for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
            const Addr tag = tags_[slot(p, set, w)];
            if (tag == kNoAddr)
                continue;
            std::snprintf(buf, sizeof(buf),
                          "part=%u way=%u addr=%llx lastUse=%llu\n", p, w,
                          static_cast<unsigned long long>(tag),
                          static_cast<unsigned long long>(
                              lastUse_[slot(p, set, w)]));
            out += buf;
        }
    }
    return out;
}

void
VictimTagTable::setEntryForTest(std::uint32_t partition, std::uint32_t set,
                                std::uint32_t way, Addr line_addr,
                                bool valid, Cycle last_use)
{
    tags_[slot(partition, set, way)] = valid ? line_addr : kNoAddr;
    lastUse_[slot(partition, set, way)] = last_use;
}

} // namespace lbsim
