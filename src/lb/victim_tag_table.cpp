#include "lb/victim_tag_table.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

VictimTagTable::VictimTagTable(const GpuConfig &gpu, const LbConfig &lb,
                               SimStats *stats)
    : lb_(lb), stats_(stats), sets_(gpu.l1.sets()),
      entries_(static_cast<std::size_t>(lb.vttMaxPartitions) * sets_ *
               lb.vttWays)
{
}

VictimTagTable::Entry &
VictimTagTable::at(std::uint32_t partition, std::uint32_t set,
                   std::uint32_t way)
{
    const std::size_t index =
        (static_cast<std::size_t>(partition) * sets_ + set) * lb_.vttWays +
        way;
    return entries_[index];
}

const VictimTagTable::Entry &
VictimTagTable::at(std::uint32_t partition, std::uint32_t set,
                   std::uint32_t way) const
{
    return const_cast<VictimTagTable *>(this)->at(partition, set, way);
}

std::uint32_t
VictimTagTable::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(lineIndex(line_addr) % sets_);
}

void
VictimTagTable::setTagOnlyMode(bool tag_only)
{
    if (tagOnly_ == tag_only)
        return;
    tagOnly_ = tag_only;
    invalidateAll();
    if (tag_only) {
        // The tag SRAM physically exists regardless of register space, so
        // monitoring uses every partition.
        activeParts_ = lb_.vttMaxPartitions;
    } else {
        activeParts_ = 0;
    }
}

void
VictimTagTable::setActivePartitions(std::uint32_t count)
{
    if (count > lb_.vttMaxPartitions)
        count = lb_.vttMaxPartitions;
    if (count < activeParts_) {
        // Deactivated partitions lose their entries (the backing
        // registers are being returned to a reactivated CTA).
        for (std::uint32_t p = count; p < activeParts_; ++p) {
            for (std::uint32_t s = 0; s < sets_; ++s) {
                for (std::uint32_t w = 0; w < lb_.vttWays; ++w)
                    at(p, s, w) = Entry{};
            }
        }
    }
    activeParts_ = count;
}

std::uint32_t
VictimTagTable::capacityLines() const
{
    return activeParts_ * sets_ * lb_.vttWays;
}

std::uint32_t
VictimTagTable::validLines() const
{
    std::uint32_t count = 0;
    for (const Entry &entry : entries_)
        count += entry.valid ? 1 : 0;
    return count;
}

RegNum
VictimTagTable::regNumFor(std::uint32_t partition, std::uint32_t set,
                          std::uint32_t way) const
{
    // Eq. 2: RN = Offset + N_VP * #VP_entries + X * #ways + Y.
    return lb_.victimRegOffset + partition * (sets_ * lb_.vttWays) +
        set * lb_.vttWays + way;
}

VttProbe
VictimTagTable::probe(Addr line_addr, Cycle now)
{
    VttProbe result;
    ++stats_->vttProbes;
    const std::uint32_t set = setIndex(line_addr);
    for (std::uint32_t p = 0; p < activeParts_; ++p) {
        result.latency += lb_.vttAccessLatency;
        for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
            Entry &entry = at(p, set, w);
            if (entry.valid && entry.lineAddr == line_addr) {
                entry.lastUse = now;
                result.hit = true;
                result.regNum = regNumFor(p, set, w);
                stats_->vttProbeCycles += result.latency;
                return result;
            }
        }
    }
    stats_->vttProbeCycles += result.latency;
    return result;
}

bool
VictimTagTable::insert(Addr line_addr, Cycle now, RegNum &reg_out)
{
    if (activeParts_ == 0)
        return false;

    const std::uint32_t set = setIndex(line_addr);

    // A line must be unique across the table; refresh if present.
    for (std::uint32_t p = 0; p < activeParts_; ++p) {
        for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
            Entry &entry = at(p, set, w);
            if (entry.valid && entry.lineAddr == line_addr) {
                entry.lastUse = now;
                reg_out = regNumFor(p, set, w);
                return true;
            }
        }
    }

    // Prefer an invalid slot (store-invalidated lines are reused first),
    // otherwise replace the LRU entry across active partitions.
    std::uint32_t victim_p = 0;
    std::uint32_t victim_w = 0;
    bool found_invalid = false;
    Cycle oldest = kNoCycle;
    for (std::uint32_t p = 0; p < activeParts_ && !found_invalid; ++p) {
        for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
            Entry &entry = at(p, set, w);
            if (!entry.valid) {
                victim_p = p;
                victim_w = w;
                found_invalid = true;
                break;
            }
            if (entry.lastUse < oldest) {
                oldest = entry.lastUse;
                victim_p = p;
                victim_w = w;
            }
        }
    }

    Entry &slot = at(victim_p, set, victim_w);
    slot.valid = true;
    slot.lineAddr = line_addr;
    slot.lastUse = now;
    reg_out = regNumFor(victim_p, set, victim_w);
    return true;
}

bool
VictimTagTable::invalidate(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    for (std::uint32_t p = 0; p < activeParts_; ++p) {
        for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
            Entry &entry = at(p, set, w);
            if (entry.valid && entry.lineAddr == line_addr) {
                entry.valid = false;
                return true;
            }
        }
    }
    return false;
}

void
VictimTagTable::invalidateAll()
{
    for (Entry &entry : entries_)
        entry = Entry{};
}

void
VictimTagTable::audit(Cycle now) const
{
    LB_AUDIT(activeParts_ <= lb_.vttMaxPartitions,
             "%u active VTT partitions exceed the maximum of %u",
             activeParts_, lb_.vttMaxPartitions);
    LB_AUDIT(entries_.size() ==
                 static_cast<std::size_t>(lb_.vttMaxPartitions) * sets_ *
                     lb_.vttWays,
             "VTT backing store holds %zu entries, geometry needs %zu",
             entries_.size(),
             static_cast<std::size_t>(lb_.vttMaxPartitions) * sets_ *
                 lb_.vttWays);

    for (std::uint32_t set = 0; set < sets_; ++set) {
        StateDumpScope dump([this, set] { return debugSetString(set); });
        for (std::uint32_t p = 0; p < lb_.vttMaxPartitions; ++p) {
            for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
                const Entry &entry = at(p, set, w);
                if (!entry.valid) {
                    continue;
                }
                LB_AUDIT(p < activeParts_,
                         "valid entry %llx in deactivated partition %u "
                         "(only %u active)",
                         static_cast<unsigned long long>(entry.lineAddr),
                         p, activeParts_);
                LB_AUDIT(entry.lineAddr != kNoAddr,
                         "valid VTT entry with sentinel address in "
                         "partition %u set %u way %u",
                         p, set, w);
                LB_AUDIT(setIndex(entry.lineAddr) == set,
                         "line %llx stored in set %u but maps to set %u",
                         static_cast<unsigned long long>(entry.lineAddr),
                         set, setIndex(entry.lineAddr));
                LB_AUDIT(entry.lastUse <= now,
                         "line %llx has future LRU timestamp %llu "
                         "(now %llu)",
                         static_cast<unsigned long long>(entry.lineAddr),
                         static_cast<unsigned long long>(entry.lastUse),
                         static_cast<unsigned long long>(now));
                // A line must be tracked by at most one partition/way.
                for (std::uint32_t p2 = p; p2 < lb_.vttMaxPartitions;
                     ++p2) {
                    for (std::uint32_t w2 = p2 == p ? w + 1 : 0;
                         w2 < lb_.vttWays; ++w2) {
                        const Entry &other = at(p2, set, w2);
                        LB_AUDIT(!other.valid ||
                                     other.lineAddr != entry.lineAddr,
                                 "line %llx tracked twice: partition %u "
                                 "way %u and partition %u way %u",
                                 static_cast<unsigned long long>(
                                     entry.lineAddr),
                                 p, w, p2, w2);
                    }
                }
            }
        }
    }
}

std::string
VictimTagTable::debugSetString(std::uint32_t set) const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "VTT set %u (%u/%u partitions active, %u ways, "
                  "tagOnly=%d)\n",
                  set, activeParts_, lb_.vttMaxPartitions, lb_.vttWays,
                  tagOnly_ ? 1 : 0);
    std::string out = buf;
    for (std::uint32_t p = 0; p < lb_.vttMaxPartitions; ++p) {
        for (std::uint32_t w = 0; w < lb_.vttWays; ++w) {
            const Entry &entry = at(p, set, w);
            if (!entry.valid)
                continue;
            std::snprintf(buf, sizeof(buf),
                          "part=%u way=%u addr=%llx lastUse=%llu\n", p, w,
                          static_cast<unsigned long long>(entry.lineAddr),
                          static_cast<unsigned long long>(entry.lastUse));
            out += buf;
        }
    }
    return out;
}

void
VictimTagTable::setEntryForTest(std::uint32_t partition, std::uint32_t set,
                                std::uint32_t way, Addr line_addr,
                                bool valid, Cycle last_use)
{
    Entry &entry = at(partition, set, way);
    entry.valid = valid;
    entry.lineAddr = line_addr;
    entry.lastUse = last_use;
}

} // namespace lbsim
