/**
 * @file
 * CTA Throttling Logic (CTL): IPC monitor plus CTA manager bookkeeping.
 *
 * The IPC monitor measures per-window IPC and its fractional variation
 * (Eq. 1); the CTA manager tracks, per resident CTA, the active bit, the
 * first register number (FRN), the backup address (BA) and the backup-
 * completed bit (C), together with the common backup pointer (BP) and
 * largest register number (LRN) of Fig 8.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lbsim
{

/** Decision produced at a window boundary. */
enum class ThrottleDecision
{
    Hold,        ///< IPC variation inside the bounds; keep CTA count.
    ThrottleOne, ///< IPC improved enough; try throttling one more CTA.
    ActivateOne, ///< IPC dropped; re-activate a throttled CTA.
};

/** IPC monitor of Fig 8. */
class IpcMonitor
{
  public:
    explicit IpcMonitor(const LbConfig &cfg);

    /** Close the window: compute IPC over @p period from @p issued. */
    void endWindow(std::uint64_t instructions_issued, Cycle period);

    /** Fractional IPC variation (Eq. 1) between the last two windows. */
    double ipcVariation() const;

    /** Decision per the upper/lower variation bounds. */
    ThrottleDecision decide() const;

    double currentIpc() const { return currentIpc_; }
    double previousIpc() const { return previousIpc_; }
    std::uint32_t windows() const { return windows_; }

  private:
    LbConfig cfg_;
    double previousIpc_ = 0.0;
    double currentIpc_ = 0.0;
    std::uint64_t lastIssued_ = 0;
    std::uint32_t windows_ = 0;
};

/** Per-CTA info entry (Fig 8). */
struct PerCtaInfo
{
    bool act = true;       ///< Scheduling status.
    RegNum frn = 0;        ///< First register number.
    Addr ba = kNoAddr;     ///< Backup address.
    bool c = false;        ///< Backup completed.
};

/** CTA manager common info + per-CTA table (Fig 8). */
class CtaManager
{
  public:
    explicit CtaManager(std::uint32_t max_ctas);

    /** Reset common info at kernel launch. */
    void beginKernel(std::uint32_t regs_per_cta, Addr backup_base);

    /** Record a CTA launch. */
    void onLaunch(std::uint32_t cta_hw_id, RegNum frn);

    /** Record a CTA completion. */
    void onComplete(std::uint32_t cta_hw_id);

    /**
     * Mark @p cta_hw_id throttled: assigns the backup address from BP
     * and advances BP by #reg x 128 (Section 4.1).
     * @return the assigned backup address.
     */
    Addr markThrottled(std::uint32_t cta_hw_id);

    /** Backup finished; set the C bit. */
    void markBackupComplete(std::uint32_t cta_hw_id);

    /**
     * Mark @p cta_hw_id re-activated; rewinds BP by #reg x 128.
     * @return the address the registers are restored from.
     */
    Addr markReactivated(std::uint32_t cta_hw_id);

    const PerCtaInfo &info(std::uint32_t cta_hw_id) const;
    std::uint32_t regsPerCta() const { return regsPerCta_; }
    Addr backupPointer() const { return bp_; }

    /**
     * BP arithmetic auditor: BP never rewinds below the backup base,
     * BP - base accounts for exactly the CTAs holding a backup address,
     * every backup address lies inside [base, BP), the C bit implies an
     * inactive CTA, and inactive CTAs always hold a backup address.
     */
    void audit() const;

    /** Table summary for failure reports. */
    std::string debugString() const;

    /**
     * Skew the backup pointer so tests can fabricate BP-arithmetic
     * corruption. Never call from simulator code.
     */
    void corruptBackupPointerForTest(Addr delta) { bp_ += delta; }

  private:
    std::vector<PerCtaInfo> table_;
    std::uint32_t regsPerCta_ = 0;
    Addr bp_ = 0;         ///< Backup pointer.
    Addr backupBase_ = 0;
};

} // namespace lbsim
