#include "lb/throttle_logic.hpp"

#include "common/log.hpp"

namespace lbsim
{

IpcMonitor::IpcMonitor(const LbConfig &cfg) : cfg_(cfg)
{
}

void
IpcMonitor::endWindow(std::uint64_t instructions_issued, Cycle period)
{
    const std::uint64_t delta = instructions_issued - lastIssued_;
    lastIssued_ = instructions_issued;
    previousIpc_ = currentIpc_;
    currentIpc_ = period ? static_cast<double>(delta) / period : 0.0;
    ++windows_;
}

double
IpcMonitor::ipcVariation()
 const
{
    if (previousIpc_ <= 0.0)
        return 0.0;
    return (currentIpc_ - previousIpc_) / previousIpc_;
}

ThrottleDecision
IpcMonitor::decide() const
{
    const double var = ipcVariation();
    if (var > cfg_.ipcVarUpper)
        return ThrottleDecision::ThrottleOne;
    if (var < cfg_.ipcVarLower)
        return ThrottleDecision::ActivateOne;
    return ThrottleDecision::Hold;
}

CtaManager::CtaManager(std::uint32_t max_ctas) : table_(max_ctas)
{
}

void
CtaManager::beginKernel(std::uint32_t regs_per_cta, Addr backup_base)
{
    regsPerCta_ = regs_per_cta;
    backupBase_ = backup_base;
    bp_ = backup_base;
    for (PerCtaInfo &info : table_)
        info = PerCtaInfo{};
}

void
CtaManager::onLaunch(std::uint32_t cta_hw_id, RegNum frn)
{
    PerCtaInfo &info = table_.at(cta_hw_id);
    info.act = true;
    info.frn = frn;
    info.ba = kNoAddr;
    info.c = false;
}

void
CtaManager::onComplete(std::uint32_t cta_hw_id)
{
    table_.at(cta_hw_id) = PerCtaInfo{};
}

Addr
CtaManager::markThrottled(std::uint32_t cta_hw_id)
{
    PerCtaInfo &info = table_.at(cta_hw_id);
    if (!info.act)
        panic("throttling an already inactive CTA %u", cta_hw_id);
    info.act = false;
    info.c = false;
    info.ba = bp_;
    bp_ += static_cast<Addr>(regsPerCta_) * kLineBytes;
    return info.ba;
}

void
CtaManager::markBackupComplete(std::uint32_t cta_hw_id)
{
    table_.at(cta_hw_id).c = true;
}

Addr
CtaManager::markReactivated(std::uint32_t cta_hw_id)
{
    PerCtaInfo &info = table_.at(cta_hw_id);
    if (info.act)
        panic("re-activating an already active CTA %u", cta_hw_id);
    info.act = true;
    info.c = false;
    const Addr ba = info.ba;
    info.ba = kNoAddr;
    bp_ -= static_cast<Addr>(regsPerCta_) * kLineBytes;
    return ba;
}

const PerCtaInfo &
CtaManager::info(std::uint32_t cta_hw_id) const
{
    return table_.at(cta_hw_id);
}

} // namespace lbsim
