#include "lb/throttle_logic.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

IpcMonitor::IpcMonitor(const LbConfig &cfg) : cfg_(cfg)
{
}

void
IpcMonitor::endWindow(std::uint64_t instructions_issued, Cycle period)
{
    const std::uint64_t delta = instructions_issued - lastIssued_;
    lastIssued_ = instructions_issued;
    previousIpc_ = currentIpc_;
    currentIpc_ = period ? static_cast<double>(delta) / period : 0.0;
    ++windows_;
}

double
IpcMonitor::ipcVariation()
 const
{
    if (previousIpc_ <= 0.0)
        return 0.0;
    return (currentIpc_ - previousIpc_) / previousIpc_;
}

ThrottleDecision
IpcMonitor::decide() const
{
    const double var = ipcVariation();
    if (var > cfg_.ipcVarUpper)
        return ThrottleDecision::ThrottleOne;
    if (var < cfg_.ipcVarLower)
        return ThrottleDecision::ActivateOne;
    return ThrottleDecision::Hold;
}

CtaManager::CtaManager(std::uint32_t max_ctas) : table_(max_ctas)
{
}

void
CtaManager::beginKernel(std::uint32_t regs_per_cta, Addr backup_base)
{
    regsPerCta_ = regs_per_cta;
    backupBase_ = backup_base;
    bp_ = backup_base;
    for (PerCtaInfo &info : table_)
        info = PerCtaInfo{};
}

void
CtaManager::onLaunch(std::uint32_t cta_hw_id, RegNum frn)
{
    PerCtaInfo &info = table_.at(cta_hw_id);
    info.act = true;
    info.frn = frn;
    info.ba = kNoAddr;
    info.c = false;
}

void
CtaManager::onComplete(std::uint32_t cta_hw_id)
{
    table_.at(cta_hw_id) = PerCtaInfo{};
}

Addr
CtaManager::markThrottled(std::uint32_t cta_hw_id)
{
    PerCtaInfo &info = table_.at(cta_hw_id);
    if (!info.act)
        panic("throttling an already inactive CTA %u", cta_hw_id);
    info.act = false;
    info.c = false;
    info.ba = bp_;
    bp_ += static_cast<Addr>(regsPerCta_) * kLineBytes;
    return info.ba;
}

void
CtaManager::markBackupComplete(std::uint32_t cta_hw_id)
{
    table_.at(cta_hw_id).c = true;
}

Addr
CtaManager::markReactivated(std::uint32_t cta_hw_id)
{
    PerCtaInfo &info = table_.at(cta_hw_id);
    if (info.act)
        panic("re-activating an already active CTA %u", cta_hw_id);
    info.act = true;
    info.c = false;
    const Addr ba = info.ba;
    info.ba = kNoAddr;
    bp_ -= static_cast<Addr>(regsPerCta_) * kLineBytes;
    return ba;
}

const PerCtaInfo &
CtaManager::info(std::uint32_t cta_hw_id) const
{
    return table_.at(cta_hw_id);
}

void
CtaManager::audit() const
{
    StateDumpScope dump([this] { return debugString(); });

    LB_AUDIT(bp_ >= backupBase_,
             "backup pointer %llx rewound below the base %llx",
             static_cast<unsigned long long>(bp_),
             static_cast<unsigned long long>(backupBase_));

    const Addr stride = static_cast<Addr>(regsPerCta_) * kLineBytes;
    std::uint32_t with_ba = 0;
    for (std::uint32_t cta = 0; cta < table_.size(); ++cta) {
        const PerCtaInfo &info = table_[cta];
        LB_AUDIT(!info.c || !info.act,
                 "CTA %u has the backup-complete bit set while active",
                 cta);
        LB_AUDIT(info.act || info.ba != kNoAddr,
                 "throttled CTA %u holds no backup address", cta);
        if (info.ba == kNoAddr)
            continue;
        ++with_ba;
        LB_AUDIT(info.ba >= backupBase_ && info.ba < bp_,
                 "CTA %u backup address %llx outside [%llx, %llx)", cta,
                 static_cast<unsigned long long>(info.ba),
                 static_cast<unsigned long long>(backupBase_),
                 static_cast<unsigned long long>(bp_));
        LB_AUDIT(stride == 0 || (info.ba - backupBase_) % stride == 0,
                 "CTA %u backup address %llx misaligned to the %llu-byte "
                 "per-CTA stride",
                 cta, static_cast<unsigned long long>(info.ba),
                 static_cast<unsigned long long>(stride));
    }

    LB_AUDIT(bp_ - backupBase_ == static_cast<Addr>(with_ba) * stride,
             "backup pointer advanced %llu bytes but %u CTAs x %llu "
             "bytes are assigned",
             static_cast<unsigned long long>(bp_ - backupBase_), with_ba,
             static_cast<unsigned long long>(stride));
}

std::string
CtaManager::debugString() const
{
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  "CtaManager: regsPerCta=%u base=%llx bp=%llx\n",
                  regsPerCta_, static_cast<unsigned long long>(backupBase_),
                  static_cast<unsigned long long>(bp_));
    std::string out = buf;
    for (std::uint32_t cta = 0; cta < table_.size(); ++cta) {
        const PerCtaInfo &info = table_[cta];
        if (info.act && info.ba == kNoAddr && !info.c)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "cta=%u act=%d c=%d frn=%u ba=%llx\n", cta,
                      info.act ? 1 : 0, info.c ? 1 : 0, info.frn,
                      static_cast<unsigned long long>(info.ba));
        out += buf;
    }
    return out;
}

} // namespace lbsim
