#include "lb/backup_engine.hpp"

#include "common/log.hpp"
#include "core/sm.hpp"

namespace lbsim
{

BackupEngine::BackupEngine(const GpuConfig &gpu, const LbConfig &lb,
                           Sm *sm, SimStats *stats)
    : gpu_(gpu), lb_(lb), sm_(sm), stats_(stats)
{
}

bool
BackupEngine::busy() const
{
    if (!pendingLines_.empty() || !buffer_.empty() ||
        !pendingRestores_.empty()) {
        return true;
    }
    for (const auto &[cta, job] : jobs_) {
        if (!job.done())
            return true;
    }
    return false;
}

void
BackupEngine::startBackup(std::uint32_t cta_hw_id, RegNum first_reg,
                          std::uint32_t num_regs, Addr backup_addr,
                          Cycle now)
{
    (void)now;
    Job job;
    job.linesTotal = num_regs;
    job.isBackup = true;
    jobs_[cta_hw_id] = job;
    for (std::uint32_t i = 0; i < num_regs; ++i) {
        pendingLines_.push_back({cta_hw_id, first_reg + i,
                                 backup_addr + static_cast<Addr>(i) *
                                     kLineBytes,
                                 true});
    }
}

void
BackupEngine::startRestore(std::uint32_t cta_hw_id, RegNum first_reg,
                           std::uint32_t num_regs, Addr backup_addr,
                           Cycle now)
{
    (void)now;
    Job job;
    job.linesTotal = num_regs;
    job.isBackup = false;
    jobs_[cta_hw_id] = job;
    for (std::uint32_t i = 0; i < num_regs; ++i) {
        pendingLines_.push_back({cta_hw_id, first_reg + i,
                                 backup_addr + static_cast<Addr>(i) *
                                     kLineBytes,
                                 false});
    }
}

bool
BackupEngine::backupComplete(std::uint32_t cta_hw_id) const
{
    const auto it = jobs_.find(cta_hw_id);
    return it != jobs_.end() && it->second.isBackup && it->second.done();
}

bool
BackupEngine::restoreComplete(std::uint32_t cta_hw_id) const
{
    const auto it = jobs_.find(cta_hw_id);
    return it != jobs_.end() && !it->second.isBackup && it->second.done();
}

void
BackupEngine::clearJob(std::uint32_t cta_hw_id)
{
    jobs_.erase(cta_hw_id);
}

void
BackupEngine::tick(Cycle now)
{
    // Fill staging-buffer slots: one register per cycle moves between the
    // register file and the buffer (charging the RF bank).
    if (!pendingLines_.empty() &&
        buffer_.size() < lb_.backupBufferEntries) {
        Transfer transfer = pendingLines_.front();
        pendingLines_.pop_front();
        sm_->regFile().accessRegister(transfer.reg, !transfer.isBackup,
                                      now);
        buffer_.push_back(transfer);
    }

    // Drain one buffer entry per cycle toward the interconnect.
    if (!buffer_.empty() &&
        sm_->interconnect().canAcceptRequest(sm_->id())) {
        const Transfer transfer = buffer_.front();
        buffer_.pop_front();

        MemRequest req;
        req.lineAddr = transfer.memAddr;
        req.kind = transfer.isBackup ? RequestKind::RegBackup
                                     : RequestKind::RegRestore;
        req.smId = sm_->id();
        req.bypassL2 = true;
        req.issued = now;
        sm_->interconnect().sendRequest(req, now);

        if (transfer.isBackup) {
            // Writes complete silently; count the line as backed up when
            // it leaves the staging buffer.
            auto it = jobs_.find(transfer.ctaHwId);
            if (it != jobs_.end())
                ++it->second.linesDone;
        } else {
            pendingRestores_[transfer.memAddr] = transfer.ctaHwId;
        }
    }
}

void
BackupEngine::onResponse(const MemResponse &response, Cycle now)
{
    (void)now;
    auto it = pendingRestores_.find(response.lineAddr);
    if (it == pendingRestores_.end())
        panic("restore response for unknown address");
    auto job = jobs_.find(it->second);
    if (job == jobs_.end())
        panic("restore response for unknown job");
    ++job->second.linesDone;
    pendingRestores_.erase(it);
}

} // namespace lbsim
