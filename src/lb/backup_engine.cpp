#include "lb/backup_engine.hpp"

#include <cstdio>
#include <map>

#include "common/det.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "core/sm.hpp"
#include "resilience/faultinject.hpp"

namespace lbsim
{

BackupEngine::BackupEngine(const GpuConfig &gpu, const LbConfig &lb,
                           Sm *sm, SimStats *stats)
    : gpu_(gpu), lb_(lb), sm_(sm), stats_(stats)
{
}

bool
BackupEngine::busy() const
{
    SeqGuard guard(domain_);
    if (!pendingLines_.empty() || !buffer_.empty() ||
        !pendingRestores_.empty()) {
        return true;
    }
    // Order-insensitive any-of; no state, stats, or output derive from
    // the walk, so unordered iteration is deterministic here.
    for (const auto &[cta, job] : jobs_) {
        if (!job.done())
            return true;
    }
    return false;
}

void
BackupEngine::startBackup(std::uint32_t cta_hw_id, RegNum first_reg,
                          std::uint32_t num_regs, Addr backup_addr,
                          Cycle now)
{
    SeqGuard guard(domain_);
    (void)now;
    Job job;
    job.linesTotal = num_regs;
    job.isBackup = true;
    jobs_[cta_hw_id] = job;
    for (std::uint32_t i = 0; i < num_regs; ++i) {
        pendingLines_.push_back({cta_hw_id, first_reg + i,
                                 backup_addr + static_cast<Addr>(i) *
                                     kLineBytes,
                                 true});
    }
}

void
BackupEngine::startRestore(std::uint32_t cta_hw_id, RegNum first_reg,
                           std::uint32_t num_regs, Addr backup_addr,
                           Cycle now)
{
    SeqGuard guard(domain_);
    (void)now;
    Job job;
    job.linesTotal = num_regs;
    job.isBackup = false;
    jobs_[cta_hw_id] = job;
    for (std::uint32_t i = 0; i < num_regs; ++i) {
        pendingLines_.push_back({cta_hw_id, first_reg + i,
                                 backup_addr + static_cast<Addr>(i) *
                                     kLineBytes,
                                 false});
    }
}

bool
BackupEngine::backupComplete(std::uint32_t cta_hw_id) const
{
    SeqGuard guard(domain_);
    const auto it = jobs_.find(cta_hw_id);
    return it != jobs_.end() && it->second.isBackup && it->second.done();
}

bool
BackupEngine::restoreComplete(std::uint32_t cta_hw_id) const
{
    SeqGuard guard(domain_);
    const auto it = jobs_.find(cta_hw_id);
    return it != jobs_.end() && !it->second.isBackup && it->second.done();
}

void
BackupEngine::clearJob(std::uint32_t cta_hw_id)
{
    SeqGuard guard(domain_);
    jobs_.erase(cta_hw_id);
}

void
BackupEngine::tick(Cycle now)
{
    SeqGuard guard(domain_);
    // An injected staging-buffer stall freezes both the fill and drain
    // stages for the cycle; in-flight state is untouched, so the
    // transfer resumes exactly where it stopped once the window closes.
    if (FaultInjector *fi = sm_->faultInjector();
        fi && fi->backupStallActive(now)) {
        return;
    }

    // Fill staging-buffer slots: one register per cycle moves between the
    // register file and the buffer (charging the RF bank).
    if (!pendingLines_.empty() &&
        buffer_.size() < lb_.backupBufferEntries) {
        Transfer transfer = pendingLines_.front();
        pendingLines_.pop_front();
        sm_->regFile().accessRegister(transfer.reg, !transfer.isBackup,
                                      now);
        buffer_.push_back(transfer);
    }

    // Drain one buffer entry per cycle toward the interconnect.
    if (!buffer_.empty() &&
        sm_->interconnect().canAcceptRequest(sm_->id())) {
        const Transfer transfer = buffer_.front();
        buffer_.pop_front();

        MemRequest req;
        req.lineAddr = transfer.memAddr;
        req.kind = transfer.isBackup ? RequestKind::RegBackup
                                     : RequestKind::RegRestore;
        req.smId = sm_->id();
        req.bypassL2 = true;
        req.issued = now;
        sm_->interconnect().sendRequest(req, now);

        if (transfer.isBackup) {
            // Writes complete silently; count the line as backed up when
            // it leaves the staging buffer.
            auto it = jobs_.find(transfer.ctaHwId);
            if (it != jobs_.end())
                ++it->second.linesDone;
        } else {
            pendingRestores_[transfer.memAddr] = transfer.ctaHwId;
        }
    }
}

void
BackupEngine::onResponse(const MemResponse &response, Cycle now)
{
    SeqGuard guard(domain_);
    (void)now;
    auto it = pendingRestores_.find(response.lineAddr);
    if (it == pendingRestores_.end())
        panic("restore response for unknown address");
    auto job = jobs_.find(it->second);
    if (job == jobs_.end())
        panic("restore response for unknown job");
    ++job->second.linesDone;
    pendingRestores_.erase(it);
}

void
BackupEngine::audit(Cycle now) const
{
    SeqGuard guard(domain_);
    (void)now;
    StateDumpScope dump([this] { return debugString(); });

    LB_AUDIT(buffer_.size() <= lb_.backupBufferEntries,
             "staging buffer holds %zu entries, capacity is %u",
             buffer_.size(), lb_.backupBufferEntries);

    // Count where every job's lines currently sit. The accumulator is
    // an ordered map and the unordered tables are walked through
    // sortedKeys() so a failing audit always reports the same line.
    std::map<std::uint32_t, std::uint32_t> in_flight;
    for (const Transfer &transfer : pendingLines_)
        ++in_flight[transfer.ctaHwId];
    for (const Transfer &transfer : buffer_)
        ++in_flight[transfer.ctaHwId];
    for (const Addr addr : sortedKeys(pendingRestores_)) {
        const std::uint32_t cta = pendingRestores_.at(addr);
        ++in_flight[cta];
        const auto it = jobs_.find(cta);
        LB_AUDIT(it != jobs_.end() && !it->second.isBackup,
                 "outstanding restore for address %llx names CTA %u "
                 "which has no restore job",
                 static_cast<unsigned long long>(addr), cta);
    }

    for (const std::uint32_t cta : sortedKeys(jobs_)) {
        const Job &job = jobs_.at(cta);
        LB_AUDIT(job.linesDone <= job.linesTotal,
                 "CTA %u job finished %u of %u lines", cta, job.linesDone,
                 job.linesTotal);
        const std::uint32_t pending =
            in_flight.count(cta) ? in_flight.at(cta) : 0;
        LB_AUDIT(job.linesDone + pending == job.linesTotal,
                 "CTA %u %s job lost a register line: %u done + %u in "
                 "flight != %u total",
                 cta, job.isBackup ? "backup" : "restore", job.linesDone,
                 pending, job.linesTotal);
    }

    // Queued lines with no job would leak staging-buffer slots forever.
    for (const auto &[cta, count] : in_flight) {
        LB_AUDIT(jobs_.count(cta) != 0,
                 "%u in-flight register lines belong to CTA %u which has "
                 "no job",
                 count, cta);
    }
}

std::string
BackupEngine::debugString() const
{
    SeqGuard guard(domain_);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "BackupEngine: %zu queued, %zu/%u buffered, %zu "
                  "restores outstanding\n",
                  pendingLines_.size(), buffer_.size(),
                  lb_.backupBufferEntries, pendingRestores_.size());
    std::string out = buf;
    for (const std::uint32_t cta : sortedKeys(jobs_)) {
        const Job &job = jobs_.at(cta);
        std::snprintf(buf, sizeof(buf), "cta=%u %s %u/%u lines\n", cta,
                      job.isBackup ? "backup" : "restore", job.linesDone,
                      job.linesTotal);
        out += buf;
    }
    return out;
}

void
BackupEngine::tamperJobForTest(std::uint32_t cta_hw_id,
                               std::uint32_t delta)
{
    SeqGuard guard(domain_);
    jobs_[cta_hw_id].linesTotal += delta;
}

} // namespace lbsim
