#include "mem/memory_partition.hpp"

#include "common/det.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"
#include "mem/interconnect.hpp"
#include "resilience/faultinject.hpp"

namespace lbsim
{

MemoryPartition::MemoryPartition(const GpuConfig &cfg,
                                 std::uint32_t partition_id,
                                 Interconnect *icnt, SimStats *stats,
                                 FaultInjector *fi)
    : cfg_(cfg), id_(partition_id), icnt_(icnt), stats_(stats), fi_(fi),
      l2_(cfg, partition_id, stats), dram_(cfg, partition_id, stats)
{
}

void
MemoryPartition::respond(const PendingRead &read, Cycle ready)
{
    MemResponse resp;
    resp.lineAddr = read.lineAddr;
    resp.kind = read.kind;
    resp.smId = read.smId;
    resp.ready = ready;
    icnt_->sendResponse(resp, ready);
}

DeliverResult
MemoryPartition::deliver(const MemRequest &req, Cycle now)
{
    SeqGuard guard(domain_);
    LB_ASSERT(icnt_->partitionOf(req.lineAddr) == id_,
              "request for line %llx delivered to partition %u "
              "(owner is %u)",
              static_cast<unsigned long long>(req.lineAddr), id_,
              icnt_->partitionOf(req.lineAddr));

    // Conservative backpressure: any request may need the DRAM queue.
    if (!dram_.canAccept())
        return DeliverResult::BlockedDram;

    // A refresh storm pushes every command's service eligibility out by
    // the storm magnitude; the queue itself keeps accepting.
    const Cycle storm = fi_ ? fi_->dramStormDelay(now) : 0;

    switch (req.kind) {
      case RequestKind::DataRead: {
        const std::uint64_t id = nextReadId_++;
        // Only reads that stay pending (miss/merge, completed by the
        // eventual fill) enter the pending map; the hit and stall paths
        // would insert-then-erase within this call, invisible to every
        // audit point, so they bypass the map entirely.
        switch (l2_.accessRead(req.lineAddr, id, now)) {
          case L2Outcome::Hit:
            respond({req.lineAddr, req.smId, req.kind},
                    now + cfg_.l2Latency);
            return DeliverResult::Accepted;
          case L2Outcome::Miss:
            // The L2 lookup precedes the DRAM fetch.
            pendingReads_[id] = {req.lineAddr, req.smId, req.kind};
            dram_.enqueue({req.lineAddr, false, req.kind, req.smId, now},
                          now, now + cfg_.l2Latency + storm);
            return DeliverResult::Accepted;
          case L2Outcome::Merged:
            pendingReads_[id] = {req.lineAddr, req.smId, req.kind};
            return DeliverResult::Accepted;
          case L2Outcome::Stall:
            return DeliverResult::BlockedL2;
        }
        return DeliverResult::BlockedL2;
      }
      case RequestKind::DataWrite:
        l2_.accessWrite(req.lineAddr, now);
        dram_.enqueue({req.lineAddr, true, req.kind, req.smId, now}, now,
                      storm ? now + storm : 0);
        return DeliverResult::Accepted;
      case RequestKind::RegBackup:
        dram_.enqueue({req.lineAddr, true, req.kind, req.smId, now}, now,
                      storm ? now + storm : 0);
        return DeliverResult::Accepted;
      case RequestKind::RegRestore: {
        const std::uint64_t id = nextReadId_++;
        (void)id;
        dram_.enqueue({req.lineAddr, false, req.kind, req.smId, now}, now,
                      storm ? now + storm : 0);
        return DeliverResult::Accepted;
      }
    }
    return DeliverResult::BlockedDram;
}

void
MemoryPartition::chargeSkippedReadRetry()
{
    SeqGuard guard(domain_);
    // Mirrors the DataRead stall path above: one read id consumed, one
    // L2 access charged (L2Slice::accessReadImpl's counter), nothing
    // else — the transient pending-read entry nets out to zero.
    ++nextReadId_;
    ++stats_->l2Accesses;
}

void
MemoryPartition::chargeSkippedReadRetries(std::uint64_t count)
{
    SeqGuard guard(domain_);
    nextReadId_ += count;
    stats_->l2Accesses += count;
}

void
MemoryPartition::audit(Cycle now) const
{
    SeqGuard guard(domain_);
    l2_.tags().audit(now);
    StateDumpScope dump([this] { return debugString(); });
    for (const std::uint64_t id : sortedKeys(pendingReads_)) {
        const PendingRead &read = pendingReads_.at(id);
        LB_AUDIT(read.lineAddr != kNoAddr,
                 "pending read %llu has sentinel address",
                 static_cast<unsigned long long>(id));
        LB_AUDIT(icnt_->partitionOf(read.lineAddr) == id_,
                 "pending read %llu for line %llx does not belong to "
                 "partition %u",
                 static_cast<unsigned long long>(id),
                 static_cast<unsigned long long>(read.lineAddr), id_);
        LB_AUDIT(needsResponse(read.kind),
                 "pending read %llu has a write kind (%d)",
                 static_cast<unsigned long long>(id),
                 static_cast<int>(read.kind));
    }
}

std::string
MemoryPartition::debugString() const
{
    SeqGuard guard(domain_);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "MemoryPartition %u: %zu pending reads, nextId=%llu\n",
                  id_, pendingReads_.size(),
                  static_cast<unsigned long long>(nextReadId_));
    std::string out = buf;
    for (const std::uint64_t id : sortedKeys(pendingReads_)) {
        const PendingRead &read = pendingReads_.at(id);
        std::snprintf(buf, sizeof(buf),
                      "id=%llu line=%llx sm=%u kind=%d\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(read.lineAddr),
                      read.smId, static_cast<int>(read.kind));
        out += buf;
    }
    return out;
}

void
MemoryPartition::tick(Cycle now)
{
    SeqGuard guard(domain_);
    dram_.tick(now);

    doneScratch_.clear();
    dram_.drainCompleted(now, doneScratch_);
    for (const DramCompletion &completion : doneScratch_) {
        const DramCommand &cmd = completion.cmd;
        switch (cmd.kind) {
          case RequestKind::DataRead: {
            ++l2Epoch_;
            waiterScratch_.clear();
            std::vector<std::uint64_t> &waiters = waiterScratch_;
            l2_.fill(cmd.lineAddr, completion.done, waiters);
            for (std::uint64_t id : waiters) {
                auto it = pendingReads_.find(id);
                if (it == pendingReads_.end())
                    panic("L2 fill waiter %llu has no pending read",
                          static_cast<unsigned long long>(id));
                respond(it->second, completion.done);
                pendingReads_.erase(it);
            }
            break;
          }
          case RequestKind::RegRestore:
            respond({cmd.lineAddr, cmd.smId, cmd.kind}, completion.done);
            break;
          case RequestKind::DataWrite:
          case RequestKind::RegBackup:
            break; // Writes complete silently.
        }
    }
}

} // namespace lbsim
