/**
 * @file
 * Per-SM L1 data cache.
 *
 * Models the Table-1 L1 (default 48 KB, 8-way, 128 B lines, 64 MSHRs) with
 * the baseline GPU write policies the paper assumes: write-evict on store
 * hits and write-no-allocate on store misses. Optional hooks:
 *
 *  - a VictimCacheIf (Linebacker) probed on load misses and notified of
 *    evictions, per-load outcomes, and stores;
 *  - a BankArbiterIf (CERF) that charges every cache data access to the
 *    register-file banks of the unified structure;
 *  - extra ways (CERF / CacheExt) that extend the baseline capacity.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/mshr.hpp"
#include "mem/request.hpp"
#include "mem/tag_array.hpp"
#include "mem/victim_if.hpp"

namespace lbsim
{

class Interconnect;

/** Arbitration hook for structures that share register-file banks. */
class BankArbiterIf
{
  public:
    virtual ~BankArbiterIf() = default;

    /**
     * Request one line-wide access to the bank holding @p line_addr.
     * @return Extra cycles of delay caused by bank conflicts.
     */
    virtual std::uint32_t arbitrateLine(Addr line_addr, bool is_write,
                                        Cycle now) = 0;
};

/** Outcome of an L1 access attempt. */
enum class L1Outcome
{
    Hit,          ///< Tag hit; data after hit latency.
    VictimHit,    ///< Data served from the register-file victim cache.
    Miss,         ///< Sent downstream; completion via fill.
    MergedMiss,   ///< Merged into an in-flight MSHR entry.
    Bypassed,     ///< PCAL bypass; fetch downstream without allocation.
    StoreDone,    ///< Store forwarded downstream (fire-and-forget).
    StallNoMshr,  ///< All MSHRs busy; retry next cycle.
    StallQueue,   ///< Downstream queue full; retry next cycle.
};

/** True for outcomes that consumed the access (no retry needed). */
constexpr bool
l1Accepted(L1Outcome outcome)
{
    return outcome != L1Outcome::StallNoMshr &&
        outcome != L1Outcome::StallQueue;
}

/** One access presented by the LDST unit. */
struct L1Access
{
    std::uint64_t accessId = 0;
    Addr lineAddr = kNoAddr;
    bool isWrite = false;
    bool bypassL1 = false;      ///< PCAL: no allocation on fill.
    Pc pc = 0;
    std::uint8_t hpc = 0;
    std::uint8_t warpSlot = 0;  ///< Issuing warp (CCWS attribution).
};

/**
 * Event sink observing the L1's externally visible transitions.
 *
 * Implemented by the lockstep reference model (src/testing): every
 * accepted access outcome, every fill (with the eviction it caused) and
 * every flush is reported so an independent functional model can replay
 * the same operation stream and cross-check residency and replacement
 * decisions. Callbacks fire after the L1 updated its own state.
 */
class L1EventSinkIf
{
  public:
    virtual ~L1EventSinkIf() = default;

    /** @p outcome was accepted (never StallNoMshr / StallQueue). */
    virtual void onAccessOutcome(const L1Access &access, L1Outcome outcome,
                                 Cycle now) = 0;

    /**
     * A fill arrived. @p allocated reports whether the line was inserted
     * into the tag array; @p evicted the line it displaced, if any.
     */
    virtual void onFill(Addr line_addr, bool allocated,
                        const std::optional<Eviction> &evicted,
                        Cycle now) = 0;

    /** Every line was invalidated. */
    virtual void onFlush() = 0;
};

/** L1 data cache for one SM. */
class L1Cache
{
  public:
    /**
     * @param cfg GPU configuration (geometry, latencies).
     * @param sm_id Owning SM (used to route responses).
     * @param icnt Interconnect toward the memory partitions.
     * @param stats Run-wide counter bag.
     * @param extra_ways Additional ways (CERF / CacheExt extensions).
     */
    L1Cache(const GpuConfig &cfg, std::uint32_t sm_id, Interconnect *icnt,
            SimStats *stats, std::uint32_t extra_ways = 0);

    /** Attach the victim-cache mechanism (may be null). */
    void setVictimCache(VictimCacheIf *victim) { victim_ = victim; }

    /** Currently attached victim mechanism (null if none). */
    VictimCacheIf *victimCache() const { return victim_; }

    /** Attach the lockstep event sink (may be null). */
    void setEventSink(L1EventSinkIf *sink) { sink_ = sink; }

    /** Attach the unified-bank arbiter (CERF; may be null). */
    void setBankArbiter(BankArbiterIf *arbiter) { bankArbiter_ = arbiter; }

    /** Access-stream observer (working-set/streaming characterization). */
    using AccessObserver =
        std::function<void(Addr line_addr, Pc pc, bool is_write,
                           Cycle now)>;

    /** Attach an observer called for every presented access. */
    void setAccessObserver(AccessObserver observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Attempt @p access at cycle @p now. Accepted loads complete either
     * via drainCompleted() (hits, victim hits) or a later fill (misses).
     */
    L1Outcome access(const L1Access &access, Cycle now);

    /** Deliver a fill (response) for @p line_addr from the partitions. */
    void fill(Addr line_addr, Cycle now);

    /** Pop access ids whose data became available by @p now. */
    void drainCompleted(Cycle now, std::vector<std::uint64_t> &out);

    /**
     * Earliest ready cycle in the completion queue (kNoCycle if empty).
     * The queue is kept ordered by ready cycle, so this is the front.
     */
    Cycle
    nextCompletionCycle() const
    {
        return completed_.empty() ? kNoCycle : completed_.front().first;
    }

    /**
     * Const mirror of accessImpl()'s stall decision: would presenting
     * an access to @p line_addr stall this cycle? Follows the accepted/
     * stalled split exactly (hit -> accepted; pending line -> merge
     * unless the merge list is full; otherwise MSHR capacity, then
     * downstream credit). The tick-skip engine uses it to prove a
     * queued LDST head stays parked; stalled accesses have no side
     * effects, so the skipped retries are invisible.
     */
    bool wouldStall(Addr line_addr, bool is_write) const;

    /** Tag-array geometry actually in use (after extensions). */
    const TagArray &tags() const { return tags_; }

    /** MSHR file (occupancy snapshots for hang reports). */
    const MshrFile &mshrs() const { return mshrs_; }

    /** Invalidate all lines (kernel boundary). */
    void flush();

    /**
     * Cross-structure auditor: delegates to the tag-array and MSHR
     * auditors, then verifies that every pending fill is backed by an
     * in-flight MSHR entry (the reserved-line analog: a fill nobody is
     * waiting for will never arrive) and that the completion queue is
     * ordered by ready cycle.
     * @param mshr_leak_bound Cycles before an outstanding MSHR entry is
     *        reported as leaked (0 disables).
     */
    void audit(Cycle now, Cycle mshr_leak_bound = 0) const;

    /** Summary of pending fills / completions for failure reports. */
    std::string debugString() const;

    /**
     * Fabricate an orphaned pending fill (no MSHR backing) so tests can
     * prove the auditor trips. Never call from simulator code.
     */
    void injectPendingFillForTest(Addr line_addr);

    /**
     * Mutable tag-array access so tests can corrupt resident lines and
     * prove the lockstep checker trips. Never call from simulator code.
     */
    TagArray &tagsForTest() { return tags_; }

  private:
    /** Schedule completion of @p access_id at @p ready. */
    void scheduleCompletion(std::uint64_t access_id, Cycle ready);

    L1Outcome accessImpl(const L1Access &access, Cycle now);
    L1Outcome handleStore(const L1Access &access, Cycle now);
    L1Outcome handleLoadMiss(const L1Access &access, Cycle now);

    const GpuConfig &cfg_;
    std::uint32_t smId_;
    Interconnect *icnt_;
    SimStats *stats_;
    TagArray tags_;
    MshrFile mshrs_;
    VictimCacheIf *victim_ = nullptr;
    L1EventSinkIf *sink_ = nullptr;
    BankArbiterIf *bankArbiter_ = nullptr;
    AccessObserver observer_;

    struct PendingFill
    {
        std::uint8_t hpc = 0;
        std::uint8_t owner = 0;  ///< Warp slot of the allocating miss.
        bool wasCold = false;  ///< Classification of the allocating miss.
    };

    /** Pending fills: line -> info recorded at miss time. */
    FlatMap<Addr, PendingFill> pendingFills_;

    /** Lines ever fetched by this SM; classifies cold vs capacity miss. */
    FlatSet<Addr> everFetched_;

    /** (ready cycle, access id) min-ordered completion queue. */
    std::deque<std::pair<Cycle, std::uint64_t>> completed_;

    /** Reused fill-waiter buffer; fill() is hot and must not allocate. */
    std::vector<std::uint64_t> waiterScratch_;
};

} // namespace lbsim
