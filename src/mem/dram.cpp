#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace lbsim
{

DramChannel::DramChannel(const GpuConfig &cfg, std::uint32_t channel_id,
                         SimStats *stats)
    : cfg_(cfg), stats_(stats), openRow_(kBanks, 0),
      rowValid_(kBanks, false), bankBusy_(kBanks, 0),
      bankActivate_(kBanks, 0)
{
    (void)channel_id;
    const double per_channel_bytes_per_cycle =
        cfg.dramBytesPerCycle() / cfg.numMemPartitions;
    busCyclesPerLine_ = kLineBytes / per_channel_bytes_per_cycle;
}

std::uint32_t
DramChannel::bankOf(Addr line_addr) const
{
    // XOR-hashed bank index: consecutive rows spread pseudo-randomly
    // across banks (real controllers fold upper address bits into the
    // bank bits to avoid hot banks under strided streams).
    return static_cast<std::uint32_t>(
        hashMix(lineIndex(line_addr) / kRowLines) % kBanks);
}

std::uint64_t
DramChannel::rowOf(Addr line_addr) const
{
    // One 2 KB row chunk per row id; the bank's open row tracks it.
    return lineIndex(line_addr) / kRowLines;
}

void
DramChannel::enqueue(const DramCommand &cmd, Cycle now, Cycle available)
{
    SeqGuard guard(domain_);
    DramCommand queued = cmd;
    queued.enqueued = now;
    queued.available = std::max(now, available);
    queue_.push_back(queued);
    // A new command may beat the cached idle bound (even conservatively
    // when it lands beyond the lookahead window — that only costs a
    // scan).
    if (queued.available < issueReadyAt_)
        issueReadyAt_ = queued.available;
}

void
DramChannel::tick(Cycle now)
{
    SeqGuard guard(domain_);

    // Issue a burst of commands per core cycle so bank activations
    // overlap: while one bank precharges/activates, other banks' commands
    // can be scheduled. The last burst slot prefers a row miss so the
    // next row's activation overlaps the current row's data bursts
    // (bank-level parallelism across row boundaries). Scheduling depth is
    // bounded so FR-FCFS picks see reasonably current row state.
    if (now < issueReadyAt_)
        return; // Nothing in the window is serviceable yet.
    for (std::uint32_t burst = 0; burst < kIssuesPerCycle; ++burst) {
        if (queue_.empty() || scheduled_ >= kMaxScheduled)
            return;
        if (!issueOne(now, burst + 1 == kIssuesPerCycle))
            return; // Availability is time-driven: later bursts see
                    // the same window and would scan for nothing.
    }
}

bool
DramChannel::issueOne(Cycle now, bool prefer_miss)
{
    // FR-FCFS-lite among available commands: prefer a row-hit within the
    // lookahead window (or, in the activation slot, the oldest row
    // miss), else the oldest available command.
    std::size_t pick = queue_.size();
    const std::size_t window = std::min<std::size_t>(kLookahead,
                                                     queue_.size());
    Cycle window_ready = kNoCycle;
    for (std::size_t i = 0; i < window; ++i) {
        if (queue_[i].available > now) {
            if (queue_[i].available < window_ready)
                window_ready = queue_[i].available;
            continue;
        }
        if (pick == queue_.size())
            pick = i; // Oldest available fallback.
        const std::uint32_t bank = bankOf(queue_[i].lineAddr);
        const bool hit = rowValid_[bank] &&
            openRow_[bank] == rowOf(queue_[i].lineAddr);
        if (hit != prefer_miss) {
            pick = i;
            break;
        }
    }
    if (pick == queue_.size()) {
        // Nothing available yet; the window can only change through a
        // future availability (its exact min, computed above) or an
        // enqueue (which lowers the bound again).
        issueReadyAt_ = window_ready;
        return false;
    }

    const DramCommand cmd = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++freeEpoch_;
    issueReadyAt_ = 0; // The erase shifted the lookahead window.

    const std::uint32_t bank = bankOf(cmd.lineAddr);
    const bool row_hit = rowValid_[bank] && openRow_[bank] ==
        rowOf(cmd.lineAddr);

    const DramTiming &t = cfg_.dramTiming;
    // Row miss pays precharge + activate in its bank; banks overlap
    // activations, so only the data transfer occupies the channel bus.
    const Cycle array_latency = row_hit
        ? t.cl
        : t.rp + t.rcd + t.cl + (cmd.isWrite ? t.wr : 0);

    // Bank timing: a row hit waits only for the bank's column pipeline;
    // a row miss additionally waits for the activate-to-activate window
    // (tRC) of the previous activation in this bank.
    const double now_d = static_cast<double>(now);
    const double bank_start = row_hit
        ? std::max(now_d, bankBusy_[bank])
        : std::max({now_d, bankBusy_[bank],
                    static_cast<double>(bankActivate_[bank])});
    // Fractional bus accounting: occupancy per line can be well under a
    // cycle on fast channels, and rounding it up would silently shave
    // bandwidth.
    const double data_ready = bank_start + array_latency;
    const double bus_start = std::max(data_ready, busFree_);
    busFree_ = bus_start + busCyclesPerLine_;
    const Cycle done =
        static_cast<Cycle>(std::ceil(bus_start + busCyclesPerLine_));
    // Column accesses to an open row pipeline at the data-bus rate (the
    // CAS latency is pipeline depth, not occupancy). After an
    // activation the bank serves reads once the row is open (tRP+tRCD),
    // and the next activation waits out tRC.
    if (row_hit) {
        bankBusy_[bank] = bank_start + busCyclesPerLine_;
    } else {
        bankBusy_[bank] = bank_start + t.rp + t.rcd;
        bankActivate_[bank] =
            static_cast<Cycle>(bank_start) + t.rc;
    }

    rowValid_[bank] = true;
    openRow_[bank] = rowOf(cmd.lineAddr);

    if (row_hit)
        ++stats_->dramRowHits;
    else
        ++stats_->dramRowMisses;

    switch (cmd.kind) {
      case RequestKind::DataRead:
        ++stats_->dramReads;
        break;
      case RequestKind::DataWrite:
        ++stats_->dramWrites;
        break;
      case RequestKind::RegBackup:
        ++stats_->dramBackupWrites;
        break;
      case RequestKind::RegRestore:
        ++stats_->dramRestoreReads;
        break;
    }

    completed_.push_back({cmd, done});
    if (done < minDone_)
        minDone_ = done;
    ++scheduled_;
    return true;
}

void
DramChannel::drainCompleted(Cycle now, std::vector<DramCompletion> &out)
{
    SeqGuard guard(domain_);
    if (now < minDone_)
        return; // Exact min: nothing can have finished yet.
    // Completions were issued in service order but may finish out of
    // order only when latencies differ; the skew is small, so a stable
    // scan keeps things simple. The scan doubles as the minDone_
    // recomputation over the retained entries.
    Cycle min_done = kNoCycle;
    auto it = completed_.begin();
    while (it != completed_.end()) {
        if (it->done <= now) {
            out.push_back(*it);
            it = completed_.erase(it);
            --scheduled_;
        } else {
            if (it->done < min_done)
                min_done = it->done;
            ++it;
        }
    }
    minDone_ = min_done;
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    SeqGuard guard(domain_);
    Cycle bound = kNoCycle;
    // A queued command acts at max(issueReadyAt_, now) — provided a
    // scheduled_ slot is free. issueReadyAt_ is a conservative lower
    // bound on window availability (stale-low at worst), so the result
    // never overshoots the real event. When every slot is taken the
    // queue can only move after a completion drains, which the
    // completion bound below covers (the freed slot is visible to the
    // next tick).
    if (scheduled_ < kMaxScheduled && !queue_.empty())
        bound = issueReadyAt_ > now ? issueReadyAt_ : now;
    if (minDone_ < bound)
        bound = minDone_;
    return bound;
}

} // namespace lbsim
