/**
 * @file
 * SM <-> memory-partition interconnect.
 *
 * A latency/bandwidth-modelled crossbar: requests and responses cross in a
 * fixed number of cycles (Table 1 interconnect hop), with bounded per-
 * partition request queues providing backpressure toward the SMs.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_safety.hpp"
#include "mem/request.hpp"
#include "mem/request_ledger.hpp"

namespace lbsim
{

class MemoryPartition;
class L1Cache;
class FaultInjector;

/** Callback sink for responses delivered to an SM. */
class ResponseSinkIf
{
  public:
    virtual ~ResponseSinkIf() = default;

    /** A response arrived at the SM at cycle @p now. */
    virtual void onResponse(const MemResponse &response, Cycle now) = 0;
};

/** Crossbar between @c numSms SMs and @c numMemPartitions partitions. */
class Interconnect
{
  public:
    /**
     * @param fi Optional fault injector consulted on the response path
     *     (icnt-delay adds hop latency, icnt-reorder flips delivery
     *     order); null disables injection with zero overhead.
     */
    Interconnect(const GpuConfig &cfg, SimStats *stats,
                 FaultInjector *fi = nullptr);

    /** Register partition @p index (must be called for every partition). */
    void attachPartition(std::uint32_t index, MemoryPartition *partition);

    /** Register the response sink for @p sm_id. */
    void attachSm(std::uint32_t sm_id, ResponseSinkIf *sink);

    /** Backpressure check before sendRequest(). */
    bool canAcceptRequest(std::uint32_t sm_id) const;

    /** Send @p req toward its partition; arrives after the hop latency. */
    void sendRequest(const MemRequest &req, Cycle now);

    /** Send @p resp back to its SM; arrives after the hop latency. */
    void sendResponse(const MemResponse &resp, Cycle now);

    /** Deliver all traffic whose hop latency has elapsed by @p now. */
    void tick(Cycle now);

    /** Partition index serving @p line_addr. */
    std::uint32_t
    partitionOf(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(lineIndex(line_addr) %
                                          partitions_.size());
    }

    /**
     * True when no traffic is queued in either direction. Compute
     * draining does not imply this: posted writes carry no response and
     * may still be crossing the crossbar after the last warp retires.
     */
    bool
    quiescent() const
    {
        SeqGuard guard(domain_);
        return requests_.empty() && responses_.empty();
    }

    /** Request-lifetime ledger (fed at every check level). */
    RequestLedger &ledger() { return ledger_; }
    const RequestLedger &ledger() const { return ledger_; }

    /**
     * Structural auditor: per-SM in-flight counters match the queued
     * requests exactly, queued traffic is addressed to attached
     * endpoints, and the ledger counters are consistent.
     */
    void audit(Cycle now) const;

    /**
     * End-of-run auditor (call only once the grid drained): no queued
     * traffic remains and every request retired exactly once.
     */
    void auditDrained() const;

    /** Queue/counter summary for failure reports. */
    std::string debugString() const;

  private:
    struct InFlightRequest
    {
        Cycle arrival;
        MemRequest req;
    };
    struct InFlightResponse
    {
        Cycle arrival;
        MemResponse resp;
    };

    const GpuConfig &cfg_;
    SimStats *stats_;
    FaultInjector *fi_;
    std::vector<MemoryPartition *> partitions_;
    std::vector<ResponseSinkIf *> sinks_;
    /**
     * Tick domain of the crossbar queues. The parallel tick engine
     * synchronizes SM shards exactly here, so the queues are the first
     * state that will need a real lock (or per-shard staging queues);
     * the capability makes every access site explicit today.
     */
    mutable SeqDomain domain_;
    std::deque<InFlightRequest> requests_ LB_GUARDED_BY(domain_);
    std::deque<InFlightResponse> responses_ LB_GUARDED_BY(domain_);
    std::uint32_t maxInFlightPerSm_;
    std::vector<std::uint32_t> inFlightPerSm_ LB_GUARDED_BY(domain_);
    RequestLedger ledger_;
};

} // namespace lbsim
