/**
 * @file
 * SM <-> memory-partition interconnect.
 *
 * A latency/bandwidth-modelled crossbar: requests and responses cross in a
 * fixed number of cycles (Table 1 interconnect hop), with bounded per-
 * partition request queues providing backpressure toward the SMs.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_safety.hpp"
#include "mem/request.hpp"
#include "mem/request_ledger.hpp"

namespace lbsim
{

class MemoryPartition;
class L1Cache;
class FaultInjector;

/** Callback sink for responses delivered to an SM. */
class ResponseSinkIf
{
  public:
    virtual ~ResponseSinkIf() = default;

    /** A response arrived at the SM at cycle @p now. */
    virtual void onResponse(const MemResponse &response, Cycle now) = 0;
};

/** Crossbar between @c numSms SMs and @c numMemPartitions partitions. */
class Interconnect
{
  public:
    /**
     * @param fi Optional fault injector consulted on the response path
     *     (icnt-delay adds hop latency, icnt-reorder flips delivery
     *     order); null disables injection with zero overhead.
     */
    Interconnect(const GpuConfig &cfg, SimStats *stats,
                 FaultInjector *fi = nullptr);

    /** Register partition @p index (must be called for every partition). */
    void attachPartition(std::uint32_t index, MemoryPartition *partition);

    /** Register the response sink for @p sm_id. */
    void attachSm(std::uint32_t sm_id, ResponseSinkIf *sink);

    /** Backpressure check before sendRequest(). */
    bool canAcceptRequest(std::uint32_t sm_id) const;

    /**
     * Send @p req toward its partition; arrives after the hop latency.
     *
     * During the parallel SM phase (between beginSmPhase() and
     * drainStaged()) the request is staged into its SM's single-producer
     * lane instead of touching the shared queues; the barrier drain
     * re-enqueues the lanes in SM-index order, which reproduces the
     * serial engine's global FIFO order (cycle, SM id, program order)
     * exactly. Outside the SM phase the request takes the direct path.
     */
    void sendRequest(const MemRequest &req, Cycle now);

    /**
     * Enter the parallel SM phase: each SM shard may call
     * canAcceptRequest()/sendRequest() for its own SM id concurrently;
     * every other entry point stays serial-phase-only.
     */
    void beginSmPhase();

    /**
     * Barrier at the end of the SM phase: drain every staging lane into
     * the shared request queue in SM-index order (issuing ledger events
     * deferred from sendRequest) and return to direct mode. @p now must
     * be the cycle the SMs just ticked, so arrival times match the
     * direct path.
     */
    void drainStaged(Cycle now);

    /** Send @p resp back to its SM; arrives after the hop latency. */
    void sendResponse(const MemResponse &resp, Cycle now);

    /** Deliver all traffic whose hop latency has elapsed by @p now. */
    void tick(Cycle now);

    /** Partition index serving @p line_addr. */
    std::uint32_t
    partitionOf(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(lineIndex(line_addr) %
                                          partitions_.size());
    }

    /**
     * True when no traffic is queued in either direction. Compute
     * draining does not imply this: posted writes carry no response and
     * may still be crossing the crossbar after the last warp retires.
     */
    bool
    quiescent() const
    {
        SeqGuard guard(domain_);
        return requests_.empty() && responses_.empty();
    }

    /**
     * Earliest future cycle at which ticking the crossbar could have an
     * effect, or kNoCycle when nothing is in flight. Traffic still
     * crossing bounds at its arrival cycle; an already-arrived request
     * that has not been attempted (block == None) bounds at @p now; a
     * blocked retry has no intrinsic bound — it only moves when its
     * partition does, which the partition's own bound covers. Responses
     * bound at the front's arrival: only the front is ever popped, so
     * later (possibly earlier-stamped) entries cannot act before it.
     * Returns @p now (no skip) when retry-skip is disabled, because the
     * armed fault injector must observe every real delivery attempt.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Replay the per-cycle side effects of @p cycles skipped crossbar
     * ticks. The only per-cycle effect while every bound is in the
     * future is the L2-blocked read retry charge (one read id + one L2
     * access per cycle, per blocked entry whose DRAM queue has room —
     * exactly what a real retry loop would have charged; when the DRAM
     * queue is full the real engine flips the entry to BlockedDram at
     * the next attempt and charges nothing, and the two states converge
     * at the partition's wake cycle).
     */
    void applySkippedCycles(std::uint64_t cycles);

    /** Request-lifetime ledger (fed at every check level). */
    RequestLedger &ledger() { return ledger_; }
    const RequestLedger &ledger() const { return ledger_; }

    /**
     * Structural auditor: per-SM in-flight counters match the queued
     * requests exactly, queued traffic is addressed to attached
     * endpoints, and the ledger counters are consistent.
     */
    void audit(Cycle now) const;

    /**
     * End-of-run auditor (call only once the grid drained): no queued
     * traffic remains and every request retired exactly once.
     */
    void auditDrained() const;

    /** Queue/counter summary for failure reports. */
    std::string debugString() const;

  private:
    /** Why a queued request last bounced off its partition. */
    enum class RetryBlock : std::uint8_t
    {
        None, ///< Never attempted (or retry-skip disabled).
        Dram, ///< Bounced off a full DRAM queue (zero side effects).
        L2,   ///< Read stalled on L2 MSHRs (charged an access + id).
    };

    struct InFlightRequest
    {
        Cycle arrival;
        MemRequest req;
        /**
         * Retry-skip cache: the blocked flavor of the last delivery
         * attempt plus the partition epoch observed then. While the
         * epoch is unchanged a real retry would bounce identically, so
         * tick() skips the partition walk and just replays the
         * attempt's (possibly empty) counter effects. Never populated
         * when an armed fault injector is attached: the injector
         * observes every real delivery attempt (storm-delay probes),
         * and skipping would change what it sees.
         */
        RetryBlock block = RetryBlock::None;
        std::uint64_t blockEpoch = 0;
    };
    struct InFlightResponse
    {
        Cycle arrival;
        MemResponse resp;
    };

    /**
     * Single-producer staging lane for one SM's requests during the
     * parallel SM phase. The lane's domain is owned by that SM's tick
     * shard while the phase is open and by the crossbar's serial drain
     * at the barrier — never by both at once, which is what the phase
     * alternation guarantees and TSan verifies.
     */
    struct Lane
    {
        mutable SeqDomain domain;
        std::deque<MemRequest> staged LB_GUARDED_BY(domain);
    };

    /** Shared-queue enqueue (the classic direct path). */
    void enqueueRequest(const MemRequest &req, Cycle now)
        LB_REQUIRES(domain_);

    const GpuConfig &cfg_;
    SimStats *stats_;
    FaultInjector *fi_;
    std::vector<MemoryPartition *> partitions_;
    std::vector<ResponseSinkIf *> sinks_;
    /**
     * Tick domain of the shared crossbar queues. The parallel tick
     * engine synchronizes SM shards exactly here: during the SM phase
     * this domain is read-only (backpressure checks), and all mutation
     * happens in the serial phases between barriers.
     */
    mutable SeqDomain domain_;
    /**
     * FIFO of undelivered requests. A vector compacted in place per
     * tick (not a deque rotated entry by entry): tick() walks every
     * entry each cycle, and under memory-bound phases the queue holds
     * hundreds of stalled retries, so the walk is the hot loop.
     */
    std::vector<InFlightRequest> requests_ LB_GUARDED_BY(domain_);
    std::deque<InFlightResponse> responses_ LB_GUARDED_BY(domain_);
    std::uint32_t maxInFlightPerSm_;
    std::vector<std::uint32_t> inFlightPerSm_ LB_GUARDED_BY(domain_);
    /** One staging lane per SM (deque: Lane is non-movable). */
    std::deque<Lane> lanes_;
    /**
     * True between beginSmPhase() and drainStaged(). Written only in
     * the serial phases; the pool's fork/join barrier orders the writes
     * against every shard's reads.
     */
    bool smPhase_ = false;
    /** False when an armed fault injector is attached (see
     *  InFlightRequest): fault hooks must see every real attempt. */
    bool retrySkip_;
    /**
     * Fast-path state for tick()'s request sweep: true while any
     * retained request has arrived without being parked in the
     * retry-skip cache (block == None) — only possible when retry-skip
     * is disabled, where every arrived entry must re-present to the
     * armed fault injector each tick. When false, the sweep runs only
     * at reqNextArrival_ (the exact min arrival over the in-flight
     * set) or when a park summary says a partition moved. Recomputed
     * by every sweep; enqueues lower the arrival bound (and raise
     * attention on a same-cycle hop).
     */
    bool reqAttention_ LB_GUARDED_BY(domain_) = false;
    Cycle reqNextArrival_ LB_GUARDED_BY(domain_) = kNoCycle;
    /**
     * Per-partition summary of the parked (retry-skip cached) entries.
     * Sweep invariant: immediately after a sweep, every parked entry's
     * blockEpoch equals its partition's current epoch of the matching
     * flavor — an unchanged-epoch entry passed an equality check and a
     * freshly parked one recorded the current value — and epochs only
     * move inside MemoryPartition::tick, never during the sweep
     * itself. tick() therefore needs just this O(partitions) summary,
     * not an O(queue) walk, to decide whether any parked entry could
     * act: a flavor's count is nonzero and its partition's epoch
     * moved (or, for L2 parks, the DRAM queue filled, which a real
     * retry would observe by reclassifying). While no partition moved,
     * the only per-cycle effect is the L2-blocked retry charge,
     * replayed per partition straight from the counts.
     */
    struct PartitionPark
    {
        std::uint32_t dram = 0; ///< Entries blocked on a full DRAM queue.
        std::uint32_t l2 = 0;   ///< Reads stalled on L2 MSHRs.
        std::uint64_t dramEpoch = 0;
        std::uint64_t l2Epoch = 0;
    };
    std::vector<PartitionPark> parks_ LB_GUARDED_BY(domain_);
    /** Total parked entries across parks_ (0 short-circuits the scan). */
    std::uint32_t parkedTotal_ LB_GUARDED_BY(domain_) = 0;
    RequestLedger ledger_;
};

} // namespace lbsim
