#include "mem/interconnect.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"
#include "mem/memory_partition.hpp"
#include "resilience/faultinject.hpp"

namespace lbsim
{

Interconnect::Interconnect(const GpuConfig &cfg, SimStats *stats,
                           FaultInjector *fi)
    : cfg_(cfg), stats_(stats), fi_(fi),
      partitions_(cfg.numMemPartitions, nullptr),
      sinks_(cfg.numSms, nullptr),
      maxInFlightPerSm_(cfg.l1MshrEntries + cfg.dramQueueDepth),
      inFlightPerSm_(cfg.numSms, 0), lanes_(cfg.numSms), ledger_(cfg.numSms)
{
}

void
Interconnect::attachPartition(std::uint32_t index,
                              MemoryPartition *partition)
{
    if (index >= partitions_.size())
        panic("partition index %u out of range", index);
    partitions_[index] = partition;
}

void
Interconnect::attachSm(std::uint32_t sm_id, ResponseSinkIf *sink)
{
    if (sm_id >= sinks_.size())
        panic("SM id %u out of range", sm_id);
    sinks_[sm_id] = sink;
}

bool
Interconnect::canAcceptRequest(std::uint32_t sm_id) const
{
    std::size_t pending = 0;
    {
        // Read-only during the SM phase: inFlightPerSm_ only mutates in
        // the serial phases, so concurrent shard reads are safe.
        SeqGuard guard(domain_);
        pending = inFlightPerSm_[sm_id];
    }
    if (smPhase_) {
        // Staged-but-undrained requests consume crossbar credit exactly
        // like the direct path's immediate counter increment did, so
        // same-cycle backpressure is unchanged.
        const Lane &lane = lanes_[sm_id];
        SeqGuard guard(lane.domain);
        pending += lane.staged.size();
    }
    return pending < maxInFlightPerSm_;
}

void
Interconnect::sendRequest(const MemRequest &req, Cycle now)
{
    LB_ASSERT(req.smId < inFlightPerSm_.size(),
              "request from out-of-range SM %u", req.smId);
    LB_ASSERT(req.lineAddr != kNoAddr,
              "request with sentinel address from SM %u", req.smId);
    if (smPhase_) {
        // SM phase: stage into the sender's own lane; the ledger issue
        // event is deferred to the barrier drain (the ledger is shared
        // serial-phase state). @p now is the same cycle drainStaged()
        // will run with, so arrival timing is unaffected.
        Lane &lane = lanes_[req.smId];
        SeqGuard guard(lane.domain);
        lane.staged.push_back(req);
        return;
    }
    SeqGuard guard(domain_);
    enqueueRequest(req, now);
}

void
Interconnect::enqueueRequest(const MemRequest &req, Cycle now)
{
    ledger_.onIssue(req, now);
    ++inFlightPerSm_[req.smId];
    requests_.push_back({now + cfg_.icntLatency, req});
}

void
Interconnect::beginSmPhase()
{
    smPhase_ = true;
}

void
Interconnect::drainStaged(Cycle now)
{
    smPhase_ = false;
    SeqGuard guard(domain_);
    // SM-index order reproduces the serial engine's enqueue order: the
    // old loop ticked SMs 0..N-1 in turn, so within one cycle the shared
    // queue received SM 0's requests (in program order), then SM 1's,
    // and so on — exactly what draining lane 0, then lane 1, ... yields.
    for (Lane &lane : lanes_) {
        SeqGuard lane_guard(lane.domain);
        while (!lane.staged.empty()) {
            enqueueRequest(lane.staged.front(), now);
            lane.staged.pop_front();
        }
    }
}

void
Interconnect::sendResponse(const MemResponse &resp, Cycle now)
{
    SeqGuard guard(domain_);
    LB_ASSERT(resp.smId < sinks_.size(),
              "response for out-of-range SM %u", resp.smId);
    const Cycle extra = fi_ ? fi_->icntResponseDelay(now) : 0;
    if (fi_ && fi_->icntReorderActive(now))
        responses_.push_front({now + cfg_.icntLatency + extra, resp});
    else
        responses_.push_back({now + cfg_.icntLatency + extra, resp});
}

void
Interconnect::tick(Cycle now)
{
    SeqGuard guard(domain_);
    // Deliver requests whose hop latency elapsed; a full partition queue
    // stalls that request (and, FIFO, those behind it).
    std::size_t pending = requests_.size();
    while (pending-- > 0) {
        InFlightRequest entry = requests_.front();
        requests_.pop_front();
        if (entry.arrival > now) {
            requests_.push_back(entry);
            continue;
        }
        MemoryPartition *partition =
            partitions_[partitionOf(entry.req.lineAddr)];
        if (partition->deliver(entry.req, now)) {
            --inFlightPerSm_[entry.req.smId];
            // Writes have no response; hand-off to the partition is
            // their terminal event in the request-lifetime ledger.
            if (!needsResponse(entry.req.kind))
                ledger_.onRetire(entry.req.smId, entry.req.kind, now);
        } else {
            requests_.push_back(entry);
        }
    }

    while (!responses_.empty() && responses_.front().arrival <= now) {
        const MemResponse resp = responses_.front().resp;
        responses_.pop_front();
        ledger_.onRetire(resp.smId, resp.kind, now);
        if (ResponseSinkIf *sink = sinks_[resp.smId])
            sink->onResponse(resp, now);
    }
}

void
Interconnect::audit(Cycle now) const
{
    SeqGuard guard(domain_);
    StateDumpScope dump([this] { return debugString(); });

    // The per-SM in-flight counter tracks exactly the requests still
    // queued in the crossbar (delivery to a partition decrements it).
    std::vector<std::uint32_t> queued(inFlightPerSm_.size(), 0);
    for (const InFlightRequest &entry : requests_) {
        LB_AUDIT(entry.req.smId < queued.size(),
                 "queued request from out-of-range SM %u", entry.req.smId);
        ++queued[entry.req.smId];
        LB_AUDIT(entry.arrival <= now + cfg_.icntLatency,
                 "queued request arrival %llu too far in the future "
                 "(now %llu, hop %u)",
                 static_cast<unsigned long long>(entry.arrival),
                 static_cast<unsigned long long>(now), cfg_.icntLatency);
        LB_AUDIT(partitions_[partitionOf(entry.req.lineAddr)] != nullptr,
                 "queued request for line %llx targets an unattached "
                 "partition",
                 static_cast<unsigned long long>(entry.req.lineAddr));
    }
    for (std::size_t sm = 0; sm < inFlightPerSm_.size(); ++sm) {
        LB_AUDIT(inFlightPerSm_[sm] == queued[sm],
                 "SM %zu in-flight counter %u != %u queued requests",
                 sm, inFlightPerSm_[sm], queued[sm]);
        LB_AUDIT(inFlightPerSm_[sm] <= maxInFlightPerSm_,
                 "SM %zu in-flight counter %u exceeds cap %u", sm,
                 inFlightPerSm_[sm], maxInFlightPerSm_);
    }
    LB_AUDIT(!smPhase_, "audit must run in a serial phase");
    for (const Lane &lane : lanes_) {
        SeqGuard lane_guard(lane.domain);
        LB_AUDIT(lane.staged.empty(),
                 "%zu staged requests left in a lane outside the SM "
                 "phase (barrier drain missed)",
                 lane.staged.size());
    }
    for (const InFlightResponse &entry : responses_) {
        LB_AUDIT(entry.resp.smId < sinks_.size() &&
                     sinks_[entry.resp.smId] != nullptr,
                 "queued response for SM %u with no attached sink",
                 entry.resp.smId);
        LB_AUDIT(needsResponse(entry.resp.kind),
                 "queued response of a kind that never responds (%d)",
                 static_cast<int>(entry.resp.kind));
    }
    ledger_.audit(now);
}

void
Interconnect::auditDrained() const
{
    SeqGuard guard(domain_);
    StateDumpScope dump([this] { return debugString(); });
    LB_AUDIT(requests_.empty(),
             "%zu requests still queued after the grid drained",
             requests_.size());
    LB_AUDIT(responses_.empty(),
             "%zu responses still queued after the grid drained",
             responses_.size());
    for (const Lane &lane : lanes_) {
        SeqGuard lane_guard(lane.domain);
        LB_AUDIT(lane.staged.empty(),
                 "%zu staged requests left after the grid drained",
                 lane.staged.size());
    }
    ledger_.auditDrained();
}

std::string
Interconnect::debugString() const
{
    SeqGuard guard(domain_);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "Interconnect: %zu queued requests, %zu queued "
                  "responses, cap %u/SM\n",
                  requests_.size(), responses_.size(), maxInFlightPerSm_);
    std::string out = buf;
    for (std::size_t sm = 0; sm < inFlightPerSm_.size(); ++sm) {
        if (inFlightPerSm_[sm] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "sm=%zu inFlight=%u\n", sm,
                      inFlightPerSm_[sm]);
        out += buf;
    }
    out += ledger_.debugString();
    return out;
}

} // namespace lbsim
