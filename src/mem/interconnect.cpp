#include "mem/interconnect.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"
#include "mem/memory_partition.hpp"
#include "resilience/faultinject.hpp"

namespace lbsim
{

Interconnect::Interconnect(const GpuConfig &cfg, SimStats *stats,
                           FaultInjector *fi)
    : cfg_(cfg), stats_(stats), fi_(fi),
      partitions_(cfg.numMemPartitions, nullptr),
      sinks_(cfg.numSms, nullptr),
      maxInFlightPerSm_(cfg.l1MshrEntries + cfg.dramQueueDepth),
      inFlightPerSm_(cfg.numSms, 0), lanes_(cfg.numSms),
      retrySkip_(fi == nullptr || !fi->armed()),
      parks_(cfg.numMemPartitions), ledger_(cfg.numSms)
{
}

void
Interconnect::attachPartition(std::uint32_t index,
                              MemoryPartition *partition)
{
    if (index >= partitions_.size())
        panic("partition index %u out of range", index);
    partitions_[index] = partition;
}

void
Interconnect::attachSm(std::uint32_t sm_id, ResponseSinkIf *sink)
{
    if (sm_id >= sinks_.size())
        panic("SM id %u out of range", sm_id);
    sinks_[sm_id] = sink;
}

bool
Interconnect::canAcceptRequest(std::uint32_t sm_id) const
{
    std::size_t pending = 0;
    {
        // Read-only during the SM phase: inFlightPerSm_ only mutates in
        // the serial phases, so concurrent shard reads are safe.
        SeqGuard guard(domain_);
        pending = inFlightPerSm_[sm_id];
    }
    if (smPhase_) {
        // Staged-but-undrained requests consume crossbar credit exactly
        // like the direct path's immediate counter increment did, so
        // same-cycle backpressure is unchanged.
        const Lane &lane = lanes_[sm_id];
        SeqGuard guard(lane.domain);
        pending += lane.staged.size();
    }
    return pending < maxInFlightPerSm_;
}

void
Interconnect::sendRequest(const MemRequest &req, Cycle now)
{
    LB_ASSERT(req.smId < inFlightPerSm_.size(),
              "request from out-of-range SM %u", req.smId);
    LB_ASSERT(req.lineAddr != kNoAddr,
              "request with sentinel address from SM %u", req.smId);
    if (smPhase_) {
        // SM phase: stage into the sender's own lane; the ledger issue
        // event is deferred to the barrier drain (the ledger is shared
        // serial-phase state). @p now is the same cycle drainStaged()
        // will run with, so arrival timing is unaffected.
        Lane &lane = lanes_[req.smId];
        SeqGuard guard(lane.domain);
        lane.staged.push_back(req);
        return;
    }
    SeqGuard guard(domain_);
    enqueueRequest(req, now);
}

void
Interconnect::enqueueRequest(const MemRequest &req, Cycle now)
{
    ledger_.onIssue(req, now);
    ++inFlightPerSm_[req.smId];
    const Cycle arrival = now + cfg_.icntLatency;
    requests_.push_back({arrival, req});
    if (arrival < reqNextArrival_)
        reqNextArrival_ = arrival;
    if (arrival <= now)
        reqAttention_ = true; // Zero-latency hop: due this very tick.
}

void
Interconnect::beginSmPhase()
{
    smPhase_ = true;
}

void
Interconnect::drainStaged(Cycle now)
{
    smPhase_ = false;
    SeqGuard guard(domain_);
    // SM-index order reproduces the serial engine's enqueue order: the
    // old loop ticked SMs 0..N-1 in turn, so within one cycle the shared
    // queue received SM 0's requests (in program order), then SM 1's,
    // and so on — exactly what draining lane 0, then lane 1, ... yields.
    for (Lane &lane : lanes_) {
        SeqGuard lane_guard(lane.domain);
        while (!lane.staged.empty()) {
            enqueueRequest(lane.staged.front(), now);
            lane.staged.pop_front();
        }
    }
}

void
Interconnect::sendResponse(const MemResponse &resp, Cycle now)
{
    SeqGuard guard(domain_);
    LB_ASSERT(resp.smId < sinks_.size(),
              "response for out-of-range SM %u", resp.smId);
    const Cycle extra = fi_ ? fi_->icntResponseDelay(now) : 0;
    if (fi_ && fi_->icntReorderActive(now))
        responses_.push_front({now + cfg_.icntLatency + extra, resp});
    else
        responses_.push_back({now + cfg_.icntLatency + extra, resp});
}

void
Interconnect::tick(Cycle now)
{
    SeqGuard guard(domain_);
    // Deliver requests whose hop latency elapsed; a full partition queue
    // stalls that request (and, FIFO, those behind it). The loop
    // compacts retained entries in place, preserving FIFO order — the
    // same order the old pop-front/push-back rotation produced.
    //
    // The retry-skip cache makes the stalled-retry storm cheap: once a
    // request bounced, re-presenting it to the partition is pure
    // overhead until the partition's state actually moved (DRAM queue
    // drained a slot, or an L2 fill freed MSHR space). The partition
    // epochs tell us exactly that, and the charge hook replays the
    // counters a real bounce would have touched, so the skip is
    // invisible in every statistic and in the read-id sequence.
    // Fast path: the sweep runs only when an arrival is due, when an
    // unparked arrived entry exists (armed injector), or when a park
    // summary shows a partition's epoch moved (see parks_). Otherwise
    // the sweep would re-park every entry unchanged, and its only
    // per-cycle effect — the L2-blocked retry charge — is replayed per
    // partition straight from the park counts, in the same aggregate
    // the entry-by-entry walk would have produced (per-partition
    // counter increments commute across entries).
    bool sweep = reqAttention_ || now >= reqNextArrival_;
    if (!sweep && parkedTotal_ != 0) {
        for (std::size_t p = 0; p < parks_.size(); ++p) {
            const PartitionPark &park = parks_[p];
            if (park.dram != 0 &&
                partitions_[p]->dramFreeEpoch() != park.dramEpoch) {
                sweep = true;
                break;
            }
            if (park.l2 != 0 &&
                (partitions_[p]->l2Epoch() != park.l2Epoch ||
                 !partitions_[p]->dramCanAccept())) {
                sweep = true;
                break;
            }
        }
    }
    if (sweep) {
    bool attention = false;
    Cycle next_arrival = kNoCycle;
    for (PartitionPark &park : parks_)
        park = PartitionPark{};
    parkedTotal_ = 0;
    std::size_t kept = 0;
    const std::size_t n = requests_.size();
    for (std::size_t i = 0; i < n; ++i) {
        InFlightRequest entry = requests_[i];
        if (entry.arrival > now) {
            if (entry.arrival < next_arrival)
                next_arrival = entry.arrival;
            requests_[kept++] = entry;
            continue;
        }
        const std::uint32_t pidx = partitionOf(entry.req.lineAddr);
        MemoryPartition *partition = partitions_[pidx];
        if (entry.block == RetryBlock::Dram) {
            if (partition->dramFreeEpoch() == entry.blockEpoch) {
                // Queue only ever shrinks on issue; unchanged epoch
                // means still full. A real retry would have no effect.
                ++parks_[pidx].dram;
                parks_[pidx].dramEpoch = entry.blockEpoch;
                ++parkedTotal_;
                requests_[kept++] = entry;
                continue;
            }
        } else if (entry.block == RetryBlock::L2) {
            if (!partition->dramCanAccept()) {
                // The DRAM queue filled up since the L2 stall; a real
                // retry would now bounce at the front door with zero
                // effects. Reclassify without charging anything.
                entry.block = RetryBlock::Dram;
                entry.blockEpoch = partition->dramFreeEpoch();
                ++parks_[pidx].dram;
                parks_[pidx].dramEpoch = entry.blockEpoch;
                ++parkedTotal_;
                requests_[kept++] = entry;
                continue;
            }
            if (partition->l2Epoch() == entry.blockEpoch) {
                // No fill since the stall: the L2 MSHRs are still
                // exhausted for this read, and a real retry would
                // charge one access and consume one id before
                // bouncing. Replay exactly that.
                partition->chargeSkippedReadRetry();
                ++parks_[pidx].l2;
                parks_[pidx].l2Epoch = entry.blockEpoch;
                ++parkedTotal_;
                requests_[kept++] = entry;
                continue;
            }
        }
        switch (partition->deliver(entry.req, now)) {
          case DeliverResult::Accepted:
            --inFlightPerSm_[entry.req.smId];
            // Writes have no response; hand-off to the partition is
            // their terminal event in the request-lifetime ledger.
            if (!needsResponse(entry.req.kind))
                ledger_.onRetire(entry.req.smId, entry.req.kind, now);
            break;
          case DeliverResult::BlockedDram:
            if (retrySkip_) {
                entry.block = RetryBlock::Dram;
                entry.blockEpoch = partition->dramFreeEpoch();
                ++parks_[pidx].dram;
                parks_[pidx].dramEpoch = entry.blockEpoch;
                ++parkedTotal_;
            } else {
                attention = true;
            }
            requests_[kept++] = entry;
            break;
          case DeliverResult::BlockedL2:
            if (retrySkip_) {
                entry.block = RetryBlock::L2;
                entry.blockEpoch = partition->l2Epoch();
                ++parks_[pidx].l2;
                parks_[pidx].l2Epoch = entry.blockEpoch;
                ++parkedTotal_;
            } else {
                attention = true;
            }
            requests_[kept++] = entry;
            break;
        }
    }
    requests_.resize(kept);
    reqAttention_ = attention;
    reqNextArrival_ = next_arrival;
    } else if (parkedTotal_ != 0) {
        // No partition moved: replay this cycle's L2 retry charges in
        // bulk (the pre-check established dramCanAccept() for every
        // partition with L2 parks).
        for (std::size_t p = 0; p < parks_.size(); ++p) {
            if (parks_[p].l2 != 0)
                partitions_[p]->chargeSkippedReadRetries(parks_[p].l2);
        }
    }

    while (!responses_.empty() && responses_.front().arrival <= now) {
        const MemResponse resp = responses_.front().resp;
        responses_.pop_front();
        ledger_.onRetire(resp.smId, resp.kind, now);
        if (ResponseSinkIf *sink = sinks_[resp.smId])
            sink->onResponse(resp, now);
    }
}

Cycle
Interconnect::nextEventCycle(Cycle now) const
{
    SeqGuard guard(domain_);
    if (!retrySkip_)
        return now; // Armed injector: every attempt must really happen.
    // reqNextArrival_ bounds every entry that has not been attempted
    // yet: the last sweep parked everything arrived (retry-skip is on)
    // and recorded the min future arrival, and enqueues since only
    // lower it. Parked retries impose no bound of their own — they
    // only move when their partition does, which the partition's own
    // nextEventCycle() covers. The per-cycle L2 retry charge is
    // replayed by applySkippedCycles.
    Cycle bound = reqNextArrival_;
    if (!responses_.empty() && responses_.front().arrival < bound)
        bound = responses_.front().arrival;
    return bound <= now ? now : bound;
}

void
Interconnect::applySkippedCycles(std::uint64_t cycles)
{
    SeqGuard guard(domain_);
    for (InFlightRequest &entry : requests_) {
        if (entry.block != RetryBlock::L2)
            continue;
        MemoryPartition *partition =
            partitions_[partitionOf(entry.req.lineAddr)];
        // Mirror of tick()'s L2-blocked path: while the DRAM queue has
        // room a real retry charges one id + one L2 access per cycle.
        // When it is full the real engine would flip the entry to
        // BlockedDram (zero charge) on the next attempt; leaving it as
        // BlockedL2 here is equivalent because both states converge at
        // the partition's wake cycle, which ends the skip anyway.
        if (partition->dramCanAccept())
            partition->chargeSkippedReadRetries(cycles);
    }
}

void
Interconnect::audit(Cycle now) const
{
    SeqGuard guard(domain_);
    StateDumpScope dump([this] { return debugString(); });

    // The per-SM in-flight counter tracks exactly the requests still
    // queued in the crossbar (delivery to a partition decrements it).
    std::vector<std::uint32_t> queued(inFlightPerSm_.size(), 0);
    for (const InFlightRequest &entry : requests_) {
        LB_AUDIT(entry.req.smId < queued.size(),
                 "queued request from out-of-range SM %u", entry.req.smId);
        ++queued[entry.req.smId];
        LB_AUDIT(entry.arrival <= now + cfg_.icntLatency,
                 "queued request arrival %llu too far in the future "
                 "(now %llu, hop %u)",
                 static_cast<unsigned long long>(entry.arrival),
                 static_cast<unsigned long long>(now), cfg_.icntLatency);
        LB_AUDIT(partitions_[partitionOf(entry.req.lineAddr)] != nullptr,
                 "queued request for line %llx targets an unattached "
                 "partition",
                 static_cast<unsigned long long>(entry.req.lineAddr));
    }
    for (std::size_t sm = 0; sm < inFlightPerSm_.size(); ++sm) {
        LB_AUDIT(inFlightPerSm_[sm] == queued[sm],
                 "SM %zu in-flight counter %u != %u queued requests",
                 sm, inFlightPerSm_[sm], queued[sm]);
        LB_AUDIT(inFlightPerSm_[sm] <= maxInFlightPerSm_,
                 "SM %zu in-flight counter %u exceeds cap %u", sm,
                 inFlightPerSm_[sm], maxInFlightPerSm_);
    }
    // Park summaries must mirror the queue's retry-skip cache exactly:
    // tick()'s fast path trusts them to decide whether a sweep (and
    // the per-cycle L2 retry charge) can be elided.
    std::uint32_t parked = 0;
    std::vector<PartitionPark> expect(parks_.size());
    for (const InFlightRequest &entry : requests_) {
        if (entry.block == RetryBlock::None)
            continue;
        ++parked;
        PartitionPark &park = expect[partitionOf(entry.req.lineAddr)];
        if (entry.block == RetryBlock::Dram) {
            ++park.dram;
            park.dramEpoch = entry.blockEpoch;
        } else {
            ++park.l2;
            park.l2Epoch = entry.blockEpoch;
        }
    }
    LB_AUDIT(parked == parkedTotal_,
             "parked-entry total %u disagrees with %u cached entries",
             parkedTotal_, parked);
    for (std::size_t p = 0; p < parks_.size(); ++p) {
        LB_AUDIT(parks_[p].dram == expect[p].dram &&
                     parks_[p].l2 == expect[p].l2,
                 "partition %zu park summary (%u dram, %u l2) disagrees "
                 "with queue (%u dram, %u l2)",
                 p, parks_[p].dram, parks_[p].l2, expect[p].dram,
                 expect[p].l2);
        LB_AUDIT(parks_[p].dram == 0 ||
                     parks_[p].dramEpoch == expect[p].dramEpoch,
                 "partition %zu dram park epoch %llu disagrees with "
                 "queue epoch %llu",
                 p, static_cast<unsigned long long>(parks_[p].dramEpoch),
                 static_cast<unsigned long long>(expect[p].dramEpoch));
        LB_AUDIT(parks_[p].l2 == 0 ||
                     parks_[p].l2Epoch == expect[p].l2Epoch,
                 "partition %zu l2 park epoch %llu disagrees with "
                 "queue epoch %llu",
                 p, static_cast<unsigned long long>(parks_[p].l2Epoch),
                 static_cast<unsigned long long>(expect[p].l2Epoch));
    }
    LB_AUDIT(!smPhase_, "audit must run in a serial phase");
    for (const Lane &lane : lanes_) {
        SeqGuard lane_guard(lane.domain);
        LB_AUDIT(lane.staged.empty(),
                 "%zu staged requests left in a lane outside the SM "
                 "phase (barrier drain missed)",
                 lane.staged.size());
    }
    for (const InFlightResponse &entry : responses_) {
        LB_AUDIT(entry.resp.smId < sinks_.size() &&
                     sinks_[entry.resp.smId] != nullptr,
                 "queued response for SM %u with no attached sink",
                 entry.resp.smId);
        LB_AUDIT(needsResponse(entry.resp.kind),
                 "queued response of a kind that never responds (%d)",
                 static_cast<int>(entry.resp.kind));
    }
    ledger_.audit(now);
}

void
Interconnect::auditDrained() const
{
    SeqGuard guard(domain_);
    StateDumpScope dump([this] { return debugString(); });
    LB_AUDIT(requests_.empty(),
             "%zu requests still queued after the grid drained",
             requests_.size());
    LB_AUDIT(responses_.empty(),
             "%zu responses still queued after the grid drained",
             responses_.size());
    for (const Lane &lane : lanes_) {
        SeqGuard lane_guard(lane.domain);
        LB_AUDIT(lane.staged.empty(),
                 "%zu staged requests left after the grid drained",
                 lane.staged.size());
    }
    ledger_.auditDrained();
}

std::string
Interconnect::debugString() const
{
    SeqGuard guard(domain_);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "Interconnect: %zu queued requests, %zu queued "
                  "responses, cap %u/SM\n",
                  requests_.size(), responses_.size(), maxInFlightPerSm_);
    std::string out = buf;
    for (std::size_t sm = 0; sm < inFlightPerSm_.size(); ++sm) {
        if (inFlightPerSm_[sm] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "sm=%zu inFlight=%u\n", sm,
                      inFlightPerSm_[sm]);
        out += buf;
    }
    out += ledger_.debugString();
    return out;
}

} // namespace lbsim
