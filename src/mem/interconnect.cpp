#include "mem/interconnect.hpp"

#include "common/log.hpp"
#include "mem/memory_partition.hpp"

namespace lbsim
{

Interconnect::Interconnect(const GpuConfig &cfg, SimStats *stats)
    : cfg_(cfg), stats_(stats), partitions_(cfg.numMemPartitions, nullptr),
      sinks_(cfg.numSms, nullptr),
      maxInFlightPerSm_(cfg.l1MshrEntries + cfg.dramQueueDepth),
      inFlightPerSm_(cfg.numSms, 0)
{
}

void
Interconnect::attachPartition(std::uint32_t index,
                              MemoryPartition *partition)
{
    if (index >= partitions_.size())
        panic("partition index %u out of range", index);
    partitions_[index] = partition;
}

void
Interconnect::attachSm(std::uint32_t sm_id, ResponseSinkIf *sink)
{
    if (sm_id >= sinks_.size())
        panic("SM id %u out of range", sm_id);
    sinks_[sm_id] = sink;
}

bool
Interconnect::canAcceptRequest(std::uint32_t sm_id) const
{
    return inFlightPerSm_[sm_id] < maxInFlightPerSm_;
}

void
Interconnect::sendRequest(const MemRequest &req, Cycle now)
{
    ++inFlightPerSm_[req.smId];
    requests_.push_back({now + cfg_.icntLatency, req});
}

void
Interconnect::sendResponse(const MemResponse &resp, Cycle now)
{
    responses_.push_back({now + cfg_.icntLatency, resp});
}

void
Interconnect::tick(Cycle now)
{
    // Deliver requests whose hop latency elapsed; a full partition queue
    // stalls that request (and, FIFO, those behind it).
    std::size_t pending = requests_.size();
    while (pending-- > 0) {
        InFlightRequest entry = requests_.front();
        requests_.pop_front();
        if (entry.arrival > now) {
            requests_.push_back(entry);
            continue;
        }
        MemoryPartition *partition =
            partitions_[partitionOf(entry.req.lineAddr)];
        if (partition->deliver(entry.req, now)) {
            --inFlightPerSm_[entry.req.smId];
        } else {
            requests_.push_back(entry);
        }
    }

    while (!responses_.empty() && responses_.front().arrival <= now) {
        const MemResponse resp = responses_.front().resp;
        responses_.pop_front();
        if (ResponseSinkIf *sink = sinks_[resp.smId])
            sink->onResponse(resp, now);
    }
}

} // namespace lbsim
