/**
 * @file
 * Set-associative tag array with LRU replacement.
 *
 * Used by the L1 data cache, the L2 slices, and (with a different
 * geometry) the Victim Tag Table partitions. Each line carries the 5-bit
 * hashed PC of the load that last touched it, which Linebacker uses to
 * decide whether an evicted line belongs to a selected high-locality load
 * (Fig 7 "HPC" field).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lbsim
{

/** One tag-array line. */
struct TagLine
{
    bool valid = false;
    Addr lineAddr = kNoAddr;
    std::uint8_t hpc = 0;       ///< Hashed PC of the last touching load.
    std::uint8_t owner = 0;     ///< Warp slot that last touched the line.
    Cycle lastUse = 0;          ///< LRU timestamp.
    Cycle fillTime = 0;         ///< When the line was (last) filled.
};

/** Details of a line displaced by an insertion. */
struct Eviction
{
    Addr lineAddr = kNoAddr;
    std::uint8_t hpc = 0;
    std::uint8_t owner = 0;     ///< Warp slot that last touched the line.
};

/**
 * A set-associative, LRU tag array.
 *
 * The array supports a dynamic way count per set (CERF/CacheExt extend the
 * baseline L1 by whole ways) chosen at construction.
 */
class TagArray
{
  public:
    /**
     * @param sets Number of sets (power of two not required).
     * @param ways Associativity.
     */
    TagArray(std::uint32_t sets, std::uint32_t ways);

    /** Build from a cache geometry. */
    explicit TagArray(const CacheGeometry &geom)
        : TagArray(geom.sets(), geom.ways)
    {}

    /** Set index for @p line_addr. */
    std::uint32_t
    setIndex(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(lineIndex(line_addr) % sets_);
    }

    /**
     * Look up @p line_addr; on hit updates LRU state and the line HPC.
     * @return true on hit.
     */
    bool access(Addr line_addr, std::uint8_t hpc, Cycle now,
                std::uint8_t owner = 0);

    /** Look up without changing any state. */
    bool probe(Addr line_addr) const;

    /** HPC field of a resident line (probe-only). */
    std::optional<std::uint8_t> lineHpc(Addr line_addr) const;

    /**
     * Insert @p line_addr, evicting the set's LRU line if the set is
     * full.
     * @return The displaced valid line, if any.
     */
    std::optional<Eviction> insert(Addr line_addr, std::uint8_t hpc,
                                   Cycle now, std::uint8_t owner = 0);

    /**
     * Invalidate @p line_addr if resident.
     * @return true if a line was invalidated.
     */
    bool invalidate(Addr line_addr);

    /** Invalidate every line. */
    void invalidateAll();

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    /** Number of currently valid lines. */
    std::uint32_t validLines() const;

    /**
     * Consistency auditor: every valid line maps to its set, no tag is
     * duplicated within a set, no sentinel addresses are marked valid,
     * and no LRU/fill timestamp lies in the future of @p now.
     */
    void audit(Cycle now) const;

    /** State dump of one set for failure reports. */
    std::string debugSetString(std::uint32_t set) const;

    /**
     * Direct line access for tests that need to fabricate corrupted
     * states the public interface cannot produce. Never call this from
     * simulator code.
     */
    TagLine &lineForTest(std::uint32_t set, std::uint32_t way);

  private:
    TagLine *find(Addr line_addr);
    const TagLine *find(Addr line_addr) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<TagLine> lines_;    ///< sets_ x ways_, row-major.
};

} // namespace lbsim
