/**
 * @file
 * Set-associative tag array with LRU replacement.
 *
 * Used by the L1 data cache, the L2 slices, and (with a different
 * geometry) the Victim Tag Table partitions. Each line carries the 5-bit
 * hashed PC of the load that last touched it, which Linebacker uses to
 * decide whether an evicted line belongs to a selected high-locality load
 * (Fig 7 "HPC" field).
 *
 * Storage is structure-of-arrays: the tag plane is a dense sets x ways
 * array of raw line addresses (the kNoAddr sentinel marks an invalid
 * way), so the hit-path scan of a set touches one contiguous run of
 * 8-byte tags — a whole 8-way set fits in a single cache line — while
 * the replacement payload (HPC, owner, LRU/fill timestamps) lives in a
 * parallel plane only touched on hits and fills.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lbsim
{

/**
 * Value view of one tag-array line, assembled from the planes on demand
 * (tests and debug dumps); not the storage format.
 */
struct TagLine
{
    bool valid = false;
    Addr lineAddr = kNoAddr;
    std::uint8_t hpc = 0;       ///< Hashed PC of the last touching load.
    std::uint8_t owner = 0;     ///< Warp slot that last touched the line.
    Cycle lastUse = 0;          ///< LRU timestamp.
    Cycle fillTime = 0;         ///< When the line was (last) filled.
};

/** Details of a line displaced by an insertion. */
struct Eviction
{
    Addr lineAddr = kNoAddr;
    std::uint8_t hpc = 0;
    std::uint8_t owner = 0;     ///< Warp slot that last touched the line.
};

/**
 * A set-associative, LRU tag array.
 *
 * The array supports a dynamic way count per set (CERF/CacheExt extend the
 * baseline L1 by whole ways) chosen at construction.
 */
class TagArray
{
  public:
    /**
     * @param sets Number of sets (power of two not required).
     * @param ways Associativity.
     */
    TagArray(std::uint32_t sets, std::uint32_t ways);

    /** Build from a cache geometry. */
    explicit TagArray(const CacheGeometry &geom)
        : TagArray(geom.sets(), geom.ways)
    {}

    /** Set index for @p line_addr. */
    std::uint32_t
    setIndex(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(lineIndex(line_addr) % sets_);
    }

    /**
     * Look up @p line_addr; on hit updates LRU state and the line HPC.
     * @return true on hit.
     */
    bool access(Addr line_addr, std::uint8_t hpc, Cycle now,
                std::uint8_t owner = 0);

    /** Look up without changing any state. */
    bool probe(Addr line_addr) const;

    /** HPC field of a resident line (probe-only). */
    std::optional<std::uint8_t> lineHpc(Addr line_addr) const;

    /**
     * Insert @p line_addr, evicting the set's LRU line if the set is
     * full.
     * @return The displaced valid line, if any.
     */
    std::optional<Eviction> insert(Addr line_addr, std::uint8_t hpc,
                                   Cycle now, std::uint8_t owner = 0);

    /**
     * Invalidate @p line_addr if resident.
     * @return true if a line was invalidated.
     */
    bool invalidate(Addr line_addr);

    /** Invalidate every line. */
    void invalidateAll();

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    /** Number of currently valid lines. */
    std::uint32_t validLines() const;

    /**
     * Consistency auditor: every valid line maps to its set, no tag is
     * duplicated within a set, and no LRU/fill timestamp lies in the
     * future of @p now. (A valid line with a sentinel address is
     * unrepresentable in the split layout: the sentinel IS the invalid
     * marker.)
     */
    void audit(Cycle now) const;

    /** State dump of one set for failure reports. */
    std::string debugSetString(std::uint32_t set) const;

    /** Assembled view of one way (tests and debug tooling). */
    TagLine lineForTest(std::uint32_t set, std::uint32_t way) const;

    /**
     * Overwrite one way from a TagLine view so tests can fabricate
     * corrupted states (duplicate tags, wrong-set lines, future
     * timestamps) the public interface cannot produce. Never call this
     * from simulator code.
     */
    void setLineForTest(std::uint32_t set, std::uint32_t way,
                        const TagLine &line);

  private:
    /** Replacement payload for one way, parallel to the tag plane. */
    struct WayMeta
    {
        std::uint8_t hpc = 0;
        std::uint8_t owner = 0;
        Cycle lastUse = 0;
        Cycle fillTime = 0;
    };

    /** Way holding @p line_addr in @p set, or ways_ when absent. */
    std::uint32_t findWay(std::uint32_t set, Addr line_addr) const;

    std::size_t
    slot(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Addr> tags_;     ///< sets_ x ways_ tag plane; kNoAddr = invalid.
    std::vector<WayMeta> meta_;  ///< Payload plane, same indexing.
};

} // namespace lbsim
