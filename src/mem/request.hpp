/**
 * @file
 * Request/response types flowing between L1 caches and memory partitions.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace lbsim
{

/** What a downstream (post-L1) request carries. */
enum class RequestKind : std::uint8_t
{
    DataRead,     ///< L1 miss fill (or bypass read).
    DataWrite,    ///< Write-through store (write-evict / no-allocate).
    RegBackup,    ///< Linebacker register backup write.
    RegRestore,   ///< Linebacker register restore read.
};

/** A line-granular request sent from an SM toward the memory partitions. */
struct MemRequest
{
    Addr lineAddr = kNoAddr;
    RequestKind kind = RequestKind::DataRead;
    std::uint32_t smId = 0;
    /** True for requests that skip L2 allocation (register backup). */
    bool bypassL2 = false;
    Cycle issued = 0;
};

/** A response delivered back to the requesting SM. */
struct MemResponse
{
    Addr lineAddr = kNoAddr;
    RequestKind kind = RequestKind::DataRead;
    std::uint32_t smId = 0;
    Cycle ready = 0;
};

/** Human-readable name of a request kind (for reports and ledgers). */
constexpr const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::DataRead:
        return "DataRead";
      case RequestKind::DataWrite:
        return "DataWrite";
      case RequestKind::RegBackup:
        return "RegBackup";
      case RequestKind::RegRestore:
        return "RegRestore";
    }
    return "?";
}

/** Returns true for request kinds that produce a response. */
constexpr bool
needsResponse(RequestKind kind)
{
    return kind == RequestKind::DataRead || kind == RequestKind::RegRestore;
}

} // namespace lbsim
