/**
 * @file
 * Interface through which the L1 cache talks to an (optional) victim-cache
 * mechanism.
 *
 * Linebacker implements this interface in src/lb; keeping the interface in
 * src/mem lets the cache model stay ignorant of Linebacker internals. The
 * L1 calls probe() on every load miss, notifyEviction() whenever a valid
 * line leaves the tag array, notifyAccess() on every load (for per-load
 * locality monitoring), and notifyStore() so victim lines can be
 * invalidated under the write-evict policy.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace lbsim
{

/** Result of probing the victim structure on an L1 miss. */
struct VictimProbeResult
{
    bool hit = false;           ///< Data available from the register file.
    bool tagOnlyHit = false;    ///< Tag matched during monitoring (no data).
    std::uint32_t latency = 0;  ///< Sequential VTT partition search cycles.
    RegNum regNum = 0;          ///< Register holding the line when hit.
};

/** Victim-cache hook interface implemented by Linebacker. */
class VictimCacheIf
{
  public:
    virtual ~VictimCacheIf() = default;

    /**
     * Probe the victim tags for @p line_addr after an L1 load miss.
     * Called before the miss is sent downstream; a data hit cancels the
     * downstream fetch.
     */
    virtual VictimProbeResult probeVictim(Addr line_addr, Cycle now) = 0;

    /**
     * A valid L1 line was evicted. @p hpc is the hashed PC of the load
     * that last touched the line (the per-line HPC field of Fig 7);
     * @p owner_warp is the warp slot that last touched it (used by
     * warp-centric schemes such as CCWS).
     */
    virtual void notifyEviction(Addr line_addr, std::uint8_t hpc,
                                std::uint8_t owner_warp, Cycle now) = 0;

    /**
     * A load executed and its L1 outcome is known. @p hit covers both L1
     * hits and victim data hits so the Load Monitor counts them together.
     * @p warp_slot identifies the issuing warp.
     */
    virtual void notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                              std::uint8_t warp_slot, bool hit,
                              Cycle now) = 0;

    /** A store touched @p line_addr; any victim copy must be dropped. */
    virtual void notifyStore(Addr line_addr, Cycle now) = 0;
};

} // namespace lbsim
