#include "mem/mshr.hpp"

#include <cstdio>
#include <unordered_set>

#include "common/det.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t merges_per_entry)
    : maxEntries_(entries), maxMerges_(merges_per_entry)
{
    if (entries == 0 || merges_per_entry == 0)
        panic("MshrFile requires nonzero capacity");
}

MshrOutcome
MshrFile::registerMiss(Addr line_addr, std::uint64_t access_id,
                       bool allocate_on_fill, Cycle now)
{
    SeqGuard guard(domain_);
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
        Entry &entry = it->second;
        if (entry.waiters.size() >= maxMerges_)
            return MshrOutcome::NoMergeSlot;
        entry.waiters.push_back(access_id);
        entry.allocateOnFill |= allocate_on_fill;
        return MshrOutcome::Merged;
    }
    if (entries_.size() >= maxEntries_)
        return MshrOutcome::NoEntry;
    Entry entry;
    entry.waiters.push_back(access_id);
    entry.allocateOnFill = allocate_on_fill;
    entry.allocatedAt = now;
    entries_.emplace(line_addr, std::move(entry));
    LB_ASSERT(entries_.size() <= maxEntries_,
              "MSHR occupancy %zu exceeds capacity %u", entries_.size(),
              maxEntries_);
    return MshrOutcome::Allocated;
}

bool
MshrFile::pending(Addr line_addr) const
{
    SeqGuard guard(domain_);
    return entries_.count(line_addr) != 0;
}

bool
MshrFile::canMerge(Addr line_addr) const
{
    SeqGuard guard(domain_);
    const auto it = entries_.find(line_addr);
    return it != entries_.end() && it->second.waiters.size() < maxMerges_;
}

bool
MshrFile::completeFill(Addr line_addr,
                       std::vector<std::uint64_t> &waiters_out)
{
    SeqGuard guard(domain_);
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        panic("MSHR fill for line %llu with no pending entry",
              static_cast<unsigned long long>(line_addr));
    const bool allocate = it->second.allocateOnFill;
    waiters_out.insert(waiters_out.end(), it->second.waiters.begin(),
                       it->second.waiters.end());
    entries_.erase(it);
    return allocate;
}

void
MshrFile::audit(Cycle now, Cycle leak_bound) const
{
    SeqGuard guard(domain_);
    StateDumpScope dump([this] { return debugString(); });

    LB_AUDIT(entries_.size() <= maxEntries_,
             "%zu MSHR entries allocated but capacity is %u",
             entries_.size(), maxEntries_);

    std::unordered_set<std::uint64_t> seen_ids;
    for (const Addr line : sortedKeys(entries_)) {
        const Entry &entry = entries_.at(line);
        LB_AUDIT(!entry.waiters.empty(),
                 "MSHR entry for line %llx has no waiters",
                 static_cast<unsigned long long>(line));
        LB_AUDIT(entry.waiters.size() <= maxMerges_,
                 "MSHR entry for line %llx holds %zu waiters, max %u",
                 static_cast<unsigned long long>(line),
                 entry.waiters.size(), maxMerges_);
        LB_AUDIT(entry.allocatedAt <= now,
                 "MSHR entry for line %llx allocated in the future "
                 "(%llu > now %llu)",
                 static_cast<unsigned long long>(line),
                 static_cast<unsigned long long>(entry.allocatedAt),
                 static_cast<unsigned long long>(now));
        if (leak_bound > 0) {
            LB_AUDIT(now - entry.allocatedAt <= leak_bound,
                     "MSHR entry for line %llx outstanding for %llu "
                     "cycles (leak bound %llu) — lost fill?",
                     static_cast<unsigned long long>(line),
                     static_cast<unsigned long long>(
                         now - entry.allocatedAt),
                     static_cast<unsigned long long>(leak_bound));
        }
        for (std::uint64_t id : entry.waiters) {
            LB_AUDIT(seen_ids.insert(id).second,
                     "access id %llu waits on two MSHR lines "
                     "(second: %llx)",
                     static_cast<unsigned long long>(id),
                     static_cast<unsigned long long>(line));
        }
    }
}

std::string
MshrFile::debugString() const
{
    SeqGuard guard(domain_);
    std::string out = "MshrFile " + std::to_string(entries_.size()) + "/" +
        std::to_string(maxEntries_) + " entries\n";
    char buf[128];
    for (const Addr line : sortedKeys(entries_)) {
        const Entry &entry = entries_.at(line);
        std::snprintf(buf, sizeof(buf),
                      "line=%llx waiters=%zu alloc=%d at=%llu\n",
                      static_cast<unsigned long long>(line),
                      entry.waiters.size(),
                      entry.allocateOnFill ? 1 : 0,
                      static_cast<unsigned long long>(entry.allocatedAt));
        out += buf;
    }
    return out;
}

} // namespace lbsim
