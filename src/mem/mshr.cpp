#include "mem/mshr.hpp"

#include "common/log.hpp"

namespace lbsim
{

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t merges_per_entry)
    : maxEntries_(entries), maxMerges_(merges_per_entry)
{
    if (entries == 0 || merges_per_entry == 0)
        panic("MshrFile requires nonzero capacity");
}

MshrOutcome
MshrFile::registerMiss(Addr line_addr, std::uint64_t access_id,
                       bool allocate_on_fill)
{
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
        Entry &entry = it->second;
        if (entry.waiters.size() >= maxMerges_)
            return MshrOutcome::NoMergeSlot;
        entry.waiters.push_back(access_id);
        entry.allocateOnFill |= allocate_on_fill;
        return MshrOutcome::Merged;
    }
    if (entries_.size() >= maxEntries_)
        return MshrOutcome::NoEntry;
    Entry entry;
    entry.waiters.push_back(access_id);
    entry.allocateOnFill = allocate_on_fill;
    entries_.emplace(line_addr, std::move(entry));
    return MshrOutcome::Allocated;
}

bool
MshrFile::pending(Addr line_addr) const
{
    return entries_.count(line_addr) != 0;
}

bool
MshrFile::completeFill(Addr line_addr,
                       std::vector<std::uint64_t> &waiters_out)
{
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        panic("MSHR fill for line %llu with no pending entry",
              static_cast<unsigned long long>(line_addr));
    const bool allocate = it->second.allocateOnFill;
    waiters_out.insert(waiters_out.end(), it->second.waiters.begin(),
                       it->second.waiters.end());
    entries_.erase(it);
    return allocate;
}

} // namespace lbsim
