/**
 * @file
 * Request-lifetime ledger for the interconnect / memory-partition path.
 *
 * Every MemRequest an SM sends downstream must terminate exactly once:
 * reads (DataRead, RegRestore) with one response delivered back to the
 * SM, writes (DataWrite, RegBackup) with one successful hand-off to a
 * partition. The ledger counts issues and retirements per (SM, kind) and
 * fires an invariant on over-retirement (a duplicated response) the
 * moment it happens, and on under-retirement (a lost request or
 * response) when the drained state is audited at end of run.
 *
 * The Interconnect feeds the ledger at every check level: besides the
 * exactly-once counters it keeps a per-(SM, kind) FIFO of open requests
 * so the forward-progress watchdog can name the oldest in-flight request
 * in a hang report, and so the Gpu run loop can count retirements as a
 * progress signal.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace lbsim
{

/** The oldest request still outstanding, for hang diagnosis. */
struct OldestRequest
{
    bool valid = false;
    std::uint32_t smId = 0;
    RequestKind kind = RequestKind::DataRead;
    Addr lineAddr = kNoAddr;
    Cycle issued = 0;
};

/** Exactly-once retirement tracker for downstream memory requests. */
class RequestLedger
{
  public:
    explicit RequestLedger(std::uint32_t num_sms);

    /** A request left SM @p req.smId toward the partitions. */
    void onIssue(const MemRequest &req, Cycle now);

    /**
     * A request reached its terminal event: response delivered (reads)
     * or accepted by its partition (writes). Fires immediately if this
     * retires more requests than were ever issued.
     */
    void onRetire(std::uint32_t sm_id, RequestKind kind, Cycle now);

    /** Requests issued but not yet retired for (sm, kind). */
    std::uint64_t outstanding(std::uint32_t sm_id, RequestKind kind) const;

    /** Total outstanding across all SMs and kinds. */
    std::uint64_t totalOutstanding() const;

    /** Total retired across all SMs and kinds (a progress signal). */
    std::uint64_t totalRetired() const;

    /**
     * The request with the earliest issue cycle still outstanding, or
     * an invalid record when nothing is in flight. Requests of one
     * (SM, kind) retire in issue order, so the FIFO front of each
     * stream is its oldest member.
     */
    OldestRequest oldestOutstanding() const;

    /** Per-cycle consistency: counters monotone and non-crossing. */
    void audit(Cycle now) const;

    /**
     * End-of-run check: every issued request was retired exactly once.
     * Only meaningful once the simulated grid fully drained.
     */
    void auditDrained() const;

    /** Counter table for failure reports. */
    std::string debugString() const;

  private:
    static constexpr std::uint32_t kKinds = 4;

    static std::uint32_t
    kindIndex(RequestKind kind)
    {
        return static_cast<std::uint32_t>(kind);
    }

    struct OpenRequest
    {
        Cycle issued = 0;
        Addr lineAddr = kNoAddr;
    };

    struct Counters
    {
        std::uint64_t issued[kKinds] = {};
        std::uint64_t retired[kKinds] = {};
        std::deque<OpenRequest> open[kKinds];
    };

    std::vector<Counters> perSm_;
};

} // namespace lbsim
