/**
 * @file
 * Banked DRAM channel with row-buffer and bandwidth modelling.
 *
 * Timing follows Table 1: RCD/RP/RC/CL/WR/RAS parameters, with the data
 * bus sized so the aggregate of all channels matches the 352.5 GB/s
 * off-chip bandwidth. Scheduling is FR-FCFS-lite: a row-hit request within
 * a small lookahead window is serviced ahead of the queue head.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_safety.hpp"
#include "mem/request.hpp"

namespace lbsim
{

/** A command queued at a DRAM channel. */
struct DramCommand
{
    Addr lineAddr = kNoAddr;
    bool isWrite = false;
    RequestKind kind = RequestKind::DataRead;
    std::uint32_t smId = 0;
    Cycle enqueued = 0;
    /** Earliest cycle the command may be serviced (upstream latency). */
    Cycle available = 0;
};

/** A completed DRAM command (reads produce responses upstream). */
struct DramCompletion
{
    DramCommand cmd;
    Cycle done = 0;
};

/** One DRAM channel servicing one memory partition. */
class DramChannel
{
  public:
    DramChannel(const GpuConfig &cfg, std::uint32_t channel_id,
                SimStats *stats);

    /** Backpressure: queue has room. */
    bool
    canAccept() const
    {
        SeqGuard guard(domain_);
        return queue_.size() < cfg_.dramQueueDepth;
    }

    /**
     * Enqueue @p cmd (caller must have checked canAccept()).
     * @param now Enqueue timestamp.
     * @param available Earliest service cycle (defaults to immediately;
     *        the memory partition uses it to model the L2 lookup that
     *        precedes a DRAM fetch).
     */
    void enqueue(const DramCommand &cmd, Cycle now,
                 Cycle available = 0);

    /** Advance the channel; services at most one command per call window. */
    void tick(Cycle now);

    /** Pop completions that finished by @p now. */
    void drainCompleted(Cycle now, std::vector<DramCompletion> &out);

    std::uint32_t
    queueDepth() const
    {
        SeqGuard guard(domain_);
        return static_cast<std::uint32_t>(queue_.size());
    }

    /**
     * Earliest future cycle at which ticking this channel could have an
     * effect, or kNoCycle if it is fully idle. Two event sources exist:
     * a queued command becoming serviceable (issueOne() only considers
     * entries with available <= now and, once picked, always issues —
     * bank/bus timing shapes the completion time, not eligibility), and
     * a scheduled command completing (drainCompleted / the scheduled_
     * slot it frees). Used by the tick-skip engine; must stay in
     * lockstep with tick()'s actual behaviour.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Monotone counter bumped whenever the command queue shrinks (a
     * command was issued). While it is unchanged a full queue stays
     * full — the queue only ever shrinks in issueOne() — so a caller
     * whose request bounced off canAccept() may skip retrying until
     * the epoch moves.
     */
    std::uint64_t
    freeEpoch() const
    {
        SeqGuard guard(domain_);
        return freeEpoch_;
    }

  private:
    static constexpr std::uint32_t kBanks = 8;
    static constexpr std::uint32_t kRowLines = 16; ///< 2 KB rows.
    static constexpr std::uint32_t kLookahead = 24; ///< FR-FCFS window.
    static constexpr std::uint32_t kIssuesPerCycle = 8;
    static constexpr std::uint32_t kMaxScheduled = 16 * kBanks;

    std::uint32_t bankOf(Addr line_addr) const;
    std::uint64_t rowOf(Addr line_addr) const;
    /** @return false when nothing in the window was serviceable. */
    bool issueOne(Cycle now, bool prefer_miss) LB_REQUIRES(domain_);

    const GpuConfig &cfg_;
    SimStats *stats_;
    /**
     * Tick domain of the channel's queues and bank timing state. Each
     * DRAM channel stays a single shard under the parallel tick engine;
     * the capability marks exactly the state that shard owns.
     */
    mutable SeqDomain domain_;
    std::deque<DramCommand> queue_ LB_GUARDED_BY(domain_);
    std::deque<DramCompletion> completed_ LB_GUARDED_BY(domain_);
    std::vector<std::uint64_t> openRow_ LB_GUARDED_BY(domain_);
    std::vector<bool> rowValid_ LB_GUARDED_BY(domain_);
    /** Next read slot per bank. */
    std::vector<double> bankBusy_ LB_GUARDED_BY(domain_);
    /** Next activation slot (tRC). */
    std::vector<Cycle> bankActivate_ LB_GUARDED_BY(domain_);
    /** Issued but not yet completed. */
    std::uint32_t scheduled_ LB_GUARDED_BY(domain_) = 0;
    /** Bumped on every queue_ pop; see freeEpoch(). */
    std::uint64_t freeEpoch_ LB_GUARDED_BY(domain_) = 0;
    /** Next instant the data bus is idle. */
    double busFree_ LB_GUARDED_BY(domain_) = 0;
    double busCyclesPerLine_;    ///< Data-bus occupancy per 128 B line.

    /**
     * Earliest cycle a command in the FR-FCFS window could become
     * serviceable; tick() returns immediately while now is below it.
     * Set by a scan that found nothing available (exact min over the
     * window), lowered on enqueue, and cleared after any issue (the
     * erase shifts new entries into the window). Always conservative:
     * a stale-low value only costs a wasted scan, never a missed or
     * reordered issue, so every pick is bit-identical to the unskipped
     * scan sequence.
     */
    Cycle issueReadyAt_ LB_GUARDED_BY(domain_) = 0;
    /**
     * Exact minimum `done` cycle over completed_ (kNoCycle when
     * empty): drainCompleted() is a no-op before it, and
     * nextEventCycle() reads it instead of walking the deque. Kept
     * exact: min-updated on push, recomputed during every drain scan.
     */
    Cycle minDone_ LB_GUARDED_BY(domain_) = kNoCycle;
};

} // namespace lbsim
