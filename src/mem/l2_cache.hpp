/**
 * @file
 * One slice of the shared L2 cache.
 *
 * The 2048 KB, 8-way L2 (Table 1) is address-interleaved across the
 * memory partitions; each partition owns one slice with its own MSHR file.
 * The slice is modelled write-through/no-allocate for stores (GPU stores
 * already skipped L1), which keeps victim and backup data paths simple
 * while preserving read-traffic behaviour.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "mem/mshr.hpp"
#include "mem/tag_array.hpp"

namespace lbsim
{

/** Result of an L2 slice lookup. */
enum class L2Outcome
{
    Hit,        ///< Data after the L2 latency.
    Miss,       ///< Allocated an MSHR; fetch from DRAM.
    Merged,     ///< Joined an in-flight DRAM fetch.
    Stall,      ///< MSHRs exhausted; retry.
};

/**
 * Event sink observing one L2 slice's externally visible transitions.
 *
 * Implemented by the lockstep reference model (src/testing); callbacks
 * fire after the slice updated its own state. Stalled reads are not
 * reported — they leave no state behind and retry verbatim.
 */
class L2EventSinkIf
{
  public:
    virtual ~L2EventSinkIf() = default;

    /** A read completed lookup with @p outcome (never Stall). */
    virtual void onRead(Addr line_addr, L2Outcome outcome, Cycle now) = 0;

    /** A write-through touched the slice; @p hit if a copy was present. */
    virtual void onWrite(Addr line_addr, bool hit, Cycle now) = 0;

    /** A DRAM fill inserted @p line_addr, displacing @p evicted if any. */
    virtual void onFill(Addr line_addr,
                        const std::optional<Eviction> &evicted,
                        Cycle now) = 0;
};

/** L2 cache slice owned by one memory partition. */
class L2Slice
{
  public:
    L2Slice(const GpuConfig &cfg, std::uint32_t partition_id,
            SimStats *stats);

    /** Attach the lockstep event sink (may be null). */
    void setEventSink(L2EventSinkIf *sink) { sink_ = sink; }

    /**
     * Look up @p line_addr for a read with bookkeeping token
     * @p access_id (the partition's pending-read id).
     */
    L2Outcome accessRead(Addr line_addr, std::uint64_t access_id,
                         Cycle now);

    /** Store write-through: update recency on hit, never allocate. */
    void accessWrite(Addr line_addr, Cycle now);

    /**
     * Complete a DRAM fill; inserts the line and returns waiting ids.
     */
    void fill(Addr line_addr, Cycle now,
              std::vector<std::uint64_t> &waiters_out);

    const TagArray &tags() const { return tags_; }

  private:
    L2Outcome accessReadImpl(Addr line_addr, std::uint64_t access_id,
                             Cycle now);

    SimStats *stats_;
    TagArray tags_;
    MshrFile mshrs_;
    L2EventSinkIf *sink_ = nullptr;
};

} // namespace lbsim
