#include "mem/request_ledger.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace lbsim
{

namespace
{

const char *
kindName(std::uint32_t kind_index)
{
    return requestKindName(static_cast<RequestKind>(kind_index));
}

} // namespace

RequestLedger::RequestLedger(std::uint32_t num_sms) : perSm_(num_sms)
{
}

void
RequestLedger::onIssue(const MemRequest &req, Cycle now)
{
    LB_ASSERT(req.smId < perSm_.size(),
              "request from unknown SM %u (have %zu)", req.smId,
              perSm_.size());
    Counters &c = perSm_[req.smId];
    const std::uint32_t k = kindIndex(req.kind);
    ++c.issued[k];
    c.open[k].push_back({now, req.lineAddr});
}

void
RequestLedger::onRetire(std::uint32_t sm_id, RequestKind kind, Cycle now)
{
    (void)now;
    LB_ASSERT(sm_id < perSm_.size(),
              "retirement for unknown SM %u (have %zu)", sm_id,
              perSm_.size());
    StateDumpScope dump([this] { return debugString(); });
    Counters &c = perSm_[sm_id];
    const std::uint32_t k = kindIndex(kind);
    LB_AUDIT(c.retired[k] < c.issued[k],
             "SM %u %s retired more requests than issued "
             "(%llu retired, %llu issued) — duplicated response?",
             sm_id, kindName(k),
             static_cast<unsigned long long>(c.retired[k] + 1),
             static_cast<unsigned long long>(c.issued[k]));
    ++c.retired[k];
    if (!c.open[k].empty())
        c.open[k].pop_front();
}

std::uint64_t
RequestLedger::outstanding(std::uint32_t sm_id, RequestKind kind) const
{
    const Counters &c = perSm_[sm_id];
    const std::uint32_t k = kindIndex(kind);
    return c.issued[k] >= c.retired[k] ? c.issued[k] - c.retired[k] : 0;
}

std::uint64_t
RequestLedger::totalOutstanding() const
{
    std::uint64_t total = 0;
    for (const Counters &c : perSm_) {
        for (std::uint32_t k = 0; k < kKinds; ++k) {
            total += c.issued[k] >= c.retired[k]
                ? c.issued[k] - c.retired[k]
                : 0;
        }
    }
    return total;
}

std::uint64_t
RequestLedger::totalRetired() const
{
    std::uint64_t total = 0;
    for (const Counters &c : perSm_) {
        for (std::uint32_t k = 0; k < kKinds; ++k)
            total += c.retired[k];
    }
    return total;
}

OldestRequest
RequestLedger::oldestOutstanding() const
{
    OldestRequest oldest;
    for (std::size_t sm = 0; sm < perSm_.size(); ++sm) {
        const Counters &c = perSm_[sm];
        for (std::uint32_t k = 0; k < kKinds; ++k) {
            if (c.open[k].empty())
                continue;
            const OpenRequest &front = c.open[k].front();
            if (!oldest.valid || front.issued < oldest.issued) {
                oldest.valid = true;
                oldest.smId = static_cast<std::uint32_t>(sm);
                oldest.kind = static_cast<RequestKind>(k);
                oldest.lineAddr = front.lineAddr;
                oldest.issued = front.issued;
            }
        }
    }
    return oldest;
}

void
RequestLedger::audit(Cycle now) const
{
    (void)now;
    StateDumpScope dump([this] { return debugString(); });
    for (std::size_t sm = 0; sm < perSm_.size(); ++sm) {
        const Counters &c = perSm_[sm];
        for (std::uint32_t k = 0; k < kKinds; ++k) {
            LB_AUDIT(c.retired[k] <= c.issued[k],
                     "SM %zu %s counters crossed "
                     "(%llu retired > %llu issued)",
                     sm, kindName(k),
                     static_cast<unsigned long long>(c.retired[k]),
                     static_cast<unsigned long long>(c.issued[k]));
        }
    }
}

void
RequestLedger::auditDrained() const
{
    StateDumpScope dump([this] { return debugString(); });
    for (std::size_t sm = 0; sm < perSm_.size(); ++sm) {
        const Counters &c = perSm_[sm];
        for (std::uint32_t k = 0; k < kKinds; ++k) {
            LB_AUDIT(c.issued[k] == c.retired[k],
                     "SM %zu %s: %llu of %llu requests never retired — "
                     "lost request or response",
                     sm, kindName(k),
                     static_cast<unsigned long long>(c.issued[k] -
                                                     c.retired[k]),
                     static_cast<unsigned long long>(c.issued[k]));
        }
    }
}

std::string
RequestLedger::debugString() const
{
    std::string out = "RequestLedger (issued/retired per SM)\n";
    char buf[192];
    for (std::size_t sm = 0; sm < perSm_.size(); ++sm) {
        const Counters &c = perSm_[sm];
        bool any = false;
        for (std::uint32_t k = 0; k < kKinds; ++k)
            any = any || c.issued[k] != 0 || c.retired[k] != 0;
        if (!any)
            continue;
        std::snprintf(
            buf, sizeof(buf),
            "sm=%zu read=%llu/%llu write=%llu/%llu backup=%llu/%llu "
            "restore=%llu/%llu\n",
            sm,
            static_cast<unsigned long long>(
                c.issued[kindIndex(RequestKind::DataRead)]),
            static_cast<unsigned long long>(
                c.retired[kindIndex(RequestKind::DataRead)]),
            static_cast<unsigned long long>(
                c.issued[kindIndex(RequestKind::DataWrite)]),
            static_cast<unsigned long long>(
                c.retired[kindIndex(RequestKind::DataWrite)]),
            static_cast<unsigned long long>(
                c.issued[kindIndex(RequestKind::RegBackup)]),
            static_cast<unsigned long long>(
                c.retired[kindIndex(RequestKind::RegBackup)]),
            static_cast<unsigned long long>(
                c.issued[kindIndex(RequestKind::RegRestore)]),
            static_cast<unsigned long long>(
                c.retired[kindIndex(RequestKind::RegRestore)]));
        out += buf;
    }
    return out;
}

} // namespace lbsim
