#include "mem/l2_cache.hpp"

#include <algorithm>

namespace lbsim
{

namespace
{

/** Geometry of one slice: total L2 capacity split across partitions. */
CacheGeometry
sliceGeometry(const GpuConfig &cfg)
{
    CacheGeometry geom = cfg.l2;
    geom.sizeBytes = std::max<std::uint32_t>(
        cfg.l2.sizeBytes / cfg.numMemPartitions,
        geom.ways * geom.lineBytes);
    return geom;
}

} // namespace

L2Slice::L2Slice(const GpuConfig &cfg, std::uint32_t partition_id,
                 SimStats *stats)
    : stats_(stats), tags_(sliceGeometry(cfg)),
      mshrs_(cfg.l1MshrEntries, cfg.l1MshrMergesPerEntry)
{
    (void)partition_id;
}

L2Outcome
L2Slice::accessRead(Addr line_addr, std::uint64_t access_id, Cycle now)
{
    const L2Outcome outcome = accessReadImpl(line_addr, access_id, now);
    if (sink_ && outcome != L2Outcome::Stall)
        sink_->onRead(line_addr, outcome, now);
    return outcome;
}

L2Outcome
L2Slice::accessReadImpl(Addr line_addr, std::uint64_t access_id, Cycle now)
{
    ++stats_->l2Accesses;
    if (tags_.access(line_addr, 0, now)) {
        ++stats_->l2Hits;
        return L2Outcome::Hit;
    }
    switch (mshrs_.registerMiss(line_addr, access_id, true)) {
      case MshrOutcome::Allocated:
        return L2Outcome::Miss;
      case MshrOutcome::Merged:
        return L2Outcome::Merged;
      case MshrOutcome::NoEntry:
      case MshrOutcome::NoMergeSlot:
        return L2Outcome::Stall;
    }
    return L2Outcome::Stall;
}

void
L2Slice::accessWrite(Addr line_addr, Cycle now)
{
    ++stats_->l2Accesses;
    // Write-through, no-allocate: refresh an existing copy only.
    const bool hit = tags_.probe(line_addr);
    if (hit) {
        tags_.access(line_addr, 0, now);
        ++stats_->l2Hits;
    }
    if (sink_)
        sink_->onWrite(line_addr, hit, now);
}

void
L2Slice::fill(Addr line_addr, Cycle now,
              std::vector<std::uint64_t> &waiters_out)
{
    mshrs_.completeFill(line_addr, waiters_out);
    const std::optional<Eviction> evicted =
        tags_.insert(line_addr, 0, now);
    if (sink_)
        sink_->onFill(line_addr, evicted, now);
}

} // namespace lbsim
