#include "mem/l1_cache.hpp"

#include "common/det.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"
#include "mem/interconnect.hpp"

namespace lbsim
{

L1Cache::L1Cache(const GpuConfig &cfg, std::uint32_t sm_id,
                 Interconnect *icnt, SimStats *stats,
                 std::uint32_t extra_ways)
    : cfg_(cfg), smId_(sm_id), icnt_(icnt), stats_(stats),
      tags_(cfg.l1.sets(), cfg.l1.ways + extra_ways),
      mshrs_(cfg.l1MshrEntries, cfg.l1MshrMergesPerEntry)
{
}

void
L1Cache::scheduleCompletion(std::uint64_t access_id, Cycle ready)
{
    // Keep the queue ordered by ready cycle; latencies vary by outcome so
    // a plain push_back would break drain order. Queues are short (bounded
    // by in-flight accesses), so the linear scan is cheap.
    auto it = std::upper_bound(
        completed_.begin(), completed_.end(), ready,
        [](Cycle c, const auto &entry) { return c < entry.first; });
    completed_.insert(it, {ready, access_id});
}

L1Outcome
L1Cache::access(const L1Access &access, Cycle now)
{
    const L1Outcome outcome = accessImpl(access, now);
    // The sink sees accepted outcomes only: a stalled access is retried
    // verbatim next cycle, so reporting it would double-count the access
    // in the reference model.
    if (sink_ && l1Accepted(outcome))
        sink_->onAccessOutcome(access, outcome, now);
    return outcome;
}

bool
L1Cache::wouldStall(Addr line_addr, bool is_write) const
{
    // Keep in lockstep with accessImpl()/handleStore()/handleLoadMiss():
    // every early return below mirrors one of their accept/stall exits,
    // in the same order.
    if (is_write)
        return !icnt_->canAcceptRequest(smId_);
    if (tags_.probe(line_addr))
        return false; // Hit: accepted.
    if (mshrs_.pending(line_addr))
        return !mshrs_.canMerge(line_addr); // Merged or StallNoMshr.
    if (mshrs_.inUse() >= mshrs_.capacity())
        return true; // StallNoMshr.
    return !icnt_->canAcceptRequest(smId_); // StallQueue or accepted miss.
}

L1Outcome
L1Cache::accessImpl(const L1Access &access, Cycle now)
{
    // NOTE: a stalled access is retried by the LDST unit every cycle, so
    // observers, locality notifications, and statistics must only fire
    // on the accepted paths — never before a Stall* return.
    if (access.isWrite)
        return handleStore(access, now);

    if (tags_.access(access.lineAddr, access.hpc, now,
                     access.warpSlot)) {
        // CERF: the unified structure serves cache data out of register-
        // file banks, so the data read arbitrates for a bank.
        std::uint32_t bank_delay = 0;
        if (bankArbiter_)
            bank_delay = bankArbiter_->arbitrateLine(access.lineAddr,
                                                     false, now);
        ++stats_->l1.l1Hits;
        if (observer_)
            observer_(access.lineAddr, access.pc, false, now);
        if (victim_)
            victim_->notifyAccess(access.lineAddr, access.pc,
                                  access.hpc, access.warpSlot, true,
                                  now);
        scheduleCompletion(access.accessId,
                           now + cfg_.l1HitLatency + bank_delay);
        return L1Outcome::Hit;
    }
    return handleLoadMiss(access, now);
}

L1Outcome
L1Cache::handleLoadMiss(const L1Access &access, Cycle now)
{
    // An in-flight fetch for the same line: merge (or stall if the merge
    // list is full). No victim probe — the line just missed everywhere.
    if (mshrs_.pending(access.lineAddr)) {
        const bool allocate = !access.bypassL1;
        switch (mshrs_.registerMiss(access.lineAddr, access.accessId,
                                    allocate, now)) {
          case MshrOutcome::NoMergeSlot:
            return L1Outcome::StallNoMshr;
          case MshrOutcome::Merged:
            if (observer_)
                observer_(access.lineAddr, access.pc, false, now);
            if (victim_)
                victim_->notifyAccess(access.lineAddr, access.pc,
                                      access.hpc, access.warpSlot,
                                      false, now);
            if (access.bypassL1) {
                ++stats_->l1.bypasses;
            } else {
                ++stats_->l1.misses;
                // Merged misses share the classification of the miss
                // that allocated the in-flight fetch.
                const auto fill = pendingFills_.find(access.lineAddr);
                if (fill != pendingFills_.end() && fill->second.wasCold)
                    ++stats_->coldMisses;
                else
                    ++stats_->capacityMisses;
            }
            return L1Outcome::MergedMiss;
          default:
            panic("unexpected MSHR outcome for pending line");
        }
    }

    // Structural checks first so a stalled access has no side effects.
    if (mshrs_.inUse() >= mshrs_.capacity())
        return L1Outcome::StallNoMshr;
    if (!icnt_->canAcceptRequest(smId_))
        return L1Outcome::StallQueue;

    // Probe the victim structure before going downstream (Fig 7 flow).
    VictimProbeResult probe;
    if (victim_)
        probe = victim_->probeVictim(access.lineAddr, now);

    if (observer_)
        observer_(access.lineAddr, access.pc, false, now);

    if (probe.hit) {
        // Data lives in the register file; a register-register move
        // delivers it to the destination register. The line stays in the
        // victim cache (it is not re-fetched into L1).
        ++stats_->l1.regHits;
        ++stats_->rfVictimAccesses;
        victim_->notifyAccess(access.lineAddr, access.pc, access.hpc,
                              access.warpSlot, true, now);
        scheduleCompletion(access.accessId,
                           now + cfg_.l1HitLatency + probe.latency);
        return L1Outcome::VictimHit;
    }

    // A tag-only hit (monitoring mode) counts as a locality hit for the
    // Load Monitor but the data must still come from L2/DRAM.
    if (victim_)
        victim_->notifyAccess(access.lineAddr, access.pc, access.hpc,
                              access.warpSlot, probe.tagOnlyHit, now);

    const bool allocate = !access.bypassL1;
    if (mshrs_.registerMiss(access.lineAddr, access.accessId, allocate,
                            now) != MshrOutcome::Allocated) {
        panic("MSHR allocation failed after capacity check");
    }

    if (allocate) {
        const bool was_cold = everFetched_.count(access.lineAddr) == 0;
        pendingFills_[access.lineAddr] = {access.hpc, access.warpSlot,
                                          was_cold};
        ++stats_->l1.misses;
        if (was_cold)
            ++stats_->coldMisses;
        else
            ++stats_->capacityMisses;
        everFetched_.insert(access.lineAddr);
    } else {
        ++stats_->l1.bypasses;
    }

    // The downstream fetch starts in parallel with the VTT search (a
    // victim hit would have cancelled it); misses pay no probe latency.
    MemRequest req;
    req.lineAddr = access.lineAddr;
    req.kind = RequestKind::DataRead;
    req.smId = smId_;
    req.issued = now;
    icnt_->sendRequest(req, now);
    return access.bypassL1 ? L1Outcome::Bypassed : L1Outcome::Miss;
}

L1Outcome
L1Cache::handleStore(const L1Access &access, Cycle now)
{
    if (!icnt_->canAcceptRequest(smId_))
        return L1Outcome::StallQueue;

    if (observer_)
        observer_(access.lineAddr, access.pc, true, now);

    std::uint32_t bank_delay = 0;
    if (bankArbiter_)
        bank_delay = bankArbiter_->arbitrateLine(access.lineAddr, true,
                                                 now);
    (void)bank_delay; // Stores are fire-and-forget; delay is absorbed.

    // Write-evict: a store hit invalidates the L1 copy so the line is
    // never dirty; write-no-allocate: a store miss allocates nothing.
    if (tags_.invalidate(access.lineAddr))
        ++stats_->writeEvicts;
    else
        ++stats_->writeNoAllocates;

    // The victim copy (if any) must be dropped as well so victim lines
    // are never dirty (Section 4 store-handling policy).
    if (victim_)
        victim_->notifyStore(access.lineAddr, now);

    MemRequest req;
    req.lineAddr = access.lineAddr;
    req.kind = RequestKind::DataWrite;
    req.smId = smId_;
    req.issued = now;
    icnt_->sendRequest(req, now);
    return L1Outcome::StoreDone;
}

void
L1Cache::fill(Addr line_addr, Cycle now)
{
    waiterScratch_.clear();
    std::vector<std::uint64_t> &waiters = waiterScratch_;
    const bool allocate = mshrs_.completeFill(line_addr, waiters);

    std::optional<Eviction> displaced;
    if (allocate) {
        auto fill_it = pendingFills_.find(line_addr);
        const std::uint8_t hpc =
            fill_it != pendingFills_.end() ? fill_it->second.hpc : 0;
        const std::uint8_t owner =
            fill_it != pendingFills_.end() ? fill_it->second.owner : 0;
        if (fill_it != pendingFills_.end())
            pendingFills_.erase(fill_it);

        std::uint32_t bank_delay = 0;
        if (bankArbiter_)
            bank_delay = bankArbiter_->arbitrateLine(line_addr, true, now);
        (void)bank_delay;

        if (auto evicted = tags_.insert(line_addr, hpc, now, owner)) {
            ++stats_->evictions;
            if (victim_)
                victim_->notifyEviction(evicted->lineAddr, evicted->hpc,
                                        evicted->owner, now);
            displaced = evicted;
        }
    }
    if (sink_)
        sink_->onFill(line_addr, allocate, displaced, now);

    for (std::uint64_t access_id : waiters)
        scheduleCompletion(access_id, now);
}

void
L1Cache::drainCompleted(Cycle now, std::vector<std::uint64_t> &out)
{
    while (!completed_.empty() && completed_.front().first <= now) {
        out.push_back(completed_.front().second);
        completed_.pop_front();
    }
}

void
L1Cache::flush()
{
    tags_.invalidateAll();
    if (sink_)
        sink_->onFlush();
}

void
L1Cache::audit(Cycle now, Cycle mshr_leak_bound) const
{
    tags_.audit(now);
    mshrs_.audit(now, mshr_leak_bound);

    StateDumpScope dump([this] { return debugString(); });
    LB_AUDIT(pendingFills_.size() <= mshrs_.capacity(),
             "%zu pending fills recorded but only %u MSHRs exist",
             pendingFills_.size(), mshrs_.capacity());
    for (const Addr line : sortedKeys(pendingFills_)) {
        LB_AUDIT(mshrs_.pending(line),
                 "pending fill for line %llx has no MSHR entry — the "
                 "fill will never arrive",
                 static_cast<unsigned long long>(line));
        LB_AUDIT(!tags_.probe(line),
                 "line %llx is both resident and awaiting a fill",
                 static_cast<unsigned long long>(line));
    }
    for (std::size_t i = 1; i < completed_.size(); ++i) {
        LB_AUDIT(completed_[i - 1].first <= completed_[i].first,
                 "completion queue out of order at index %zu "
                 "(%llu > %llu)",
                 i,
                 static_cast<unsigned long long>(completed_[i - 1].first),
                 static_cast<unsigned long long>(completed_[i].first));
    }
}

std::string
L1Cache::debugString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "L1Cache sm=%u: %u/%u MSHRs, %zu pending fills, %zu "
                  "queued completions, %u valid lines\n",
                  smId_, mshrs_.inUse(), mshrs_.capacity(),
                  pendingFills_.size(), completed_.size(),
                  tags_.validLines());
    std::string out = buf;
    for (const Addr line : sortedKeys(pendingFills_)) {
        const PendingFill &fill = pendingFills_.at(line);
        std::snprintf(buf, sizeof(buf),
                      "fill line=%llx hpc=%u owner=%u cold=%d mshr=%d\n",
                      static_cast<unsigned long long>(line), fill.hpc,
                      fill.owner, fill.wasCold ? 1 : 0,
                      mshrs_.pending(line) ? 1 : 0);
        out += buf;
    }
    return out;
}

void
L1Cache::injectPendingFillForTest(Addr line_addr)
{
    pendingFills_[line_addr] = PendingFill{};
}

} // namespace lbsim
