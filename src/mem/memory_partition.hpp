/**
 * @file
 * One memory partition: an L2 slice plus its DRAM channel.
 *
 * Requests arrive from the interconnect; read hits answer after the L2
 * latency, misses go to DRAM and answer when the fill returns. Register
 * backup/restore traffic (Linebacker) bypasses the L2 slice and works
 * directly against the DRAM channel, consuming real bandwidth (Fig 17
 * overhead accounting).
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_safety.hpp"
#include "mem/dram.hpp"
#include "mem/l2_cache.hpp"
#include "mem/request.hpp"

namespace lbsim
{

class Interconnect;
class FaultInjector;

/** L2 slice + DRAM channel behind one interconnect port. */
class MemoryPartition
{
  public:
    /**
     * @param fi Optional fault injector; an active dram-storm window
     *     pushes each command's earliest service cycle out by the storm
     *     magnitude (modelling a refresh storm). Null disables.
     */
    MemoryPartition(const GpuConfig &cfg, std::uint32_t partition_id,
                    Interconnect *icnt, SimStats *stats,
                    FaultInjector *fi = nullptr);

    /**
     * Accept @p req from the interconnect.
     * @return false if the partition is full (request stays queued).
     */
    bool deliver(const MemRequest &req, Cycle now);

    /** Advance DRAM and emit finished responses. */
    void tick(Cycle now);

    /**
     * Consistency auditor: every pending read belongs to this partition,
     * is of a kind that produces a response, and is addressed to a real
     * line.
     */
    void audit(Cycle now) const;

    /** Pending-read summary for failure reports. */
    std::string debugString() const;

    const L2Slice &l2() const { return l2_; }
    L2Slice &l2() { return l2_; }
    const DramChannel &dram() const { return dram_; }

  private:
    /** A read waiting for data (either L2 latency or a DRAM fill). */
    struct PendingRead
    {
        Addr lineAddr;
        std::uint32_t smId;
        RequestKind kind;
    };

    void respond(const PendingRead &read, Cycle ready)
        LB_REQUIRES(domain_);

    const GpuConfig &cfg_;
    std::uint32_t id_;
    Interconnect *icnt_;
    SimStats *stats_;
    FaultInjector *fi_;
    L2Slice l2_;
    DramChannel dram_;
    /**
     * Tick domain of the partition's pending-read table. Partitions are
     * natural shards for the parallel tick engine (one per channel);
     * the capability marks the state each shard owns.
     */
    mutable SeqDomain domain_;
    std::uint64_t nextReadId_ LB_GUARDED_BY(domain_) = 1;
    std::unordered_map<std::uint64_t, PendingRead> pendingReads_
        LB_GUARDED_BY(domain_);
};

} // namespace lbsim
