/**
 * @file
 * One memory partition: an L2 slice plus its DRAM channel.
 *
 * Requests arrive from the interconnect; read hits answer after the L2
 * latency, misses go to DRAM and answer when the fill returns. Register
 * backup/restore traffic (Linebacker) bypasses the L2 slice and works
 * directly against the DRAM channel, consuming real bandwidth (Fig 17
 * overhead accounting).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "common/thread_safety.hpp"
#include "mem/dram.hpp"
#include "mem/l2_cache.hpp"
#include "mem/request.hpp"

namespace lbsim
{

class Interconnect;
class FaultInjector;

/**
 * Outcome of presenting one request to a partition. The two blocked
 * flavors matter to the interconnect's retry loop: a request bounced
 * off a full DRAM queue left no trace at all, while a read stalled on
 * the L2 MSHRs consumed an access (and a read id) before bouncing.
 * The retry-skip cache replays exactly those effects per skipped
 * attempt, so skipping is invisible in every counter.
 */
enum class DeliverResult : std::uint8_t
{
    Accepted,    ///< Request consumed; any response comes later.
    BlockedDram, ///< DRAM queue full; attempt had zero side effects.
    BlockedL2,   ///< Read stalled on L2 MSHRs after charging an access.
};

/** L2 slice + DRAM channel behind one interconnect port. */
class MemoryPartition
{
  public:
    /**
     * @param fi Optional fault injector; an active dram-storm window
     *     pushes each command's earliest service cycle out by the storm
     *     magnitude (modelling a refresh storm). Null disables.
     */
    MemoryPartition(const GpuConfig &cfg, std::uint32_t partition_id,
                    Interconnect *icnt, SimStats *stats,
                    FaultInjector *fi = nullptr);

    /**
     * Accept @p req from the interconnect.
     * @return the blocked flavor if the partition is full (the request
     *     stays queued at the interconnect and retries).
     */
    DeliverResult deliver(const MemRequest &req, Cycle now);

    /** Advance DRAM and emit finished responses. */
    void tick(Cycle now);

    /**
     * Epoch of the L2 slice's fill state. Bumped whenever a DRAM fill
     * completes into the slice (the only event that frees L2 MSHR
     * entries or inserts lines). While it is unchanged and the DRAM
     * queue still has room, a read that stalled on the L2 MSHRs would
     * stall again with identical effects.
     */
    std::uint64_t
    l2Epoch() const
    {
        SeqGuard guard(domain_);
        return l2Epoch_;
    }

    /** Forward of DramChannel::freeEpoch() for the retry-skip cache. */
    std::uint64_t dramFreeEpoch() const { return dram_.freeEpoch(); }

    /** Live DRAM backpressure (cheap; see Interconnect::tick). */
    bool dramCanAccept() const { return dram_.canAccept(); }

    /**
     * Replay the side effects of one skipped L2-stalled read retry.
     * A real retry runs deliver()'s DataRead path up to the MSHR stall:
     * it consumes a read id and charges one L2 access (the transient
     * pending-read entry is inserted and erased again, net zero). The
     * interconnect calls this instead of deliver() while l2Epoch() is
     * unchanged, keeping every counter and the id sequence bit-exact.
     */
    void chargeSkippedReadRetry();

    /** Bulk form of chargeSkippedReadRetry() for @p count retries. */
    void chargeSkippedReadRetries(std::uint64_t count);

    /**
     * Earliest future cycle at which ticking this partition could have
     * an effect, or kNoCycle when idle. The partition's tick is entirely
     * DRAM-driven (advance the channel, drain its completions), so the
     * bound is the channel's. Used by the tick-skip engine.
     */
    Cycle nextEventCycle(Cycle now) const
    {
        return dram_.nextEventCycle(now);
    }

    /**
     * Consistency auditor: every pending read belongs to this partition,
     * is of a kind that produces a response, and is addressed to a real
     * line.
     */
    void audit(Cycle now) const;

    /** Pending-read summary for failure reports. */
    std::string debugString() const;

    const L2Slice &l2() const { return l2_; }
    L2Slice &l2() { return l2_; }
    const DramChannel &dram() const { return dram_; }

  private:
    /** A read waiting for data (either L2 latency or a DRAM fill). */
    struct PendingRead
    {
        Addr lineAddr;
        std::uint32_t smId;
        RequestKind kind;
    };

    void respond(const PendingRead &read, Cycle ready)
        LB_REQUIRES(domain_);

    const GpuConfig &cfg_;
    std::uint32_t id_;
    Interconnect *icnt_;
    SimStats *stats_;
    FaultInjector *fi_;
    L2Slice l2_;
    DramChannel dram_;
    /**
     * Tick domain of the partition's pending-read table. Partitions are
     * natural shards for the parallel tick engine (one per channel);
     * the capability marks the state each shard owns.
     */
    mutable SeqDomain domain_;
    std::uint64_t nextReadId_ LB_GUARDED_BY(domain_) = 1;
    /** Bumped per tick that completed at least one L2 fill. */
    std::uint64_t l2Epoch_ LB_GUARDED_BY(domain_) = 0;
    FlatMap<std::uint64_t, PendingRead> pendingReads_
        LB_GUARDED_BY(domain_);
    /** Reused per-tick buffers; tick() is hot and must not allocate. */
    std::vector<DramCompletion> doneScratch_ LB_GUARDED_BY(domain_);
    std::vector<std::uint64_t> waiterScratch_ LB_GUARDED_BY(domain_);
};

} // namespace lbsim
