/**
 * @file
 * Miss Status Holding Registers.
 *
 * Tracks outstanding line fills and merges redundant misses to the same
 * line, as in GPGPU-Sim's L1 model (Table 1: 64 MSHRs per L1). Each entry
 * records the access ids (LDST-unit bookkeeping handles) waiting on the
 * fill so they can all complete when the line returns.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/thread_safety.hpp"
#include "common/types.hpp"

namespace lbsim
{

/** MSHR allocation outcome for a miss. */
enum class MshrOutcome
{
    Allocated,    ///< New entry allocated; send the fetch downstream.
    Merged,       ///< An in-flight fetch exists; no new downstream request.
    NoEntry,      ///< Structure full; the access must stall and retry.
    NoMergeSlot,  ///< Entry exists but its merge list is full; stall.
};

/** MSHR file keyed by line address. */
class MshrFile
{
  public:
    /**
     * @param entries Maximum outstanding distinct lines.
     * @param merges_per_entry Maximum accesses merged per line.
     */
    MshrFile(std::uint32_t entries, std::uint32_t merges_per_entry);

    /** Register a miss for @p line_addr from access @p access_id. */
    MshrOutcome registerMiss(Addr line_addr, std::uint64_t access_id,
                             bool allocate_on_fill, Cycle now = 0);

    /** True if @p line_addr already has an in-flight fill. */
    bool pending(Addr line_addr) const;

    /**
     * True if a miss on @p line_addr would merge into its in-flight
     * entry (the merge list has room). False when no entry exists or
     * the list is full — the exact condition registerMiss() uses, so
     * the tick-skip engine can predict a retry's outcome without
     * mutating anything.
     */
    bool canMerge(Addr line_addr) const;

    /**
     * Complete the fill for @p line_addr.
     * @param waiters_out Receives the merged access ids (appended).
     * @return true if any waiter had allocate-on-fill semantics (the line
     *         should be inserted into the cache).
     */
    bool completeFill(Addr line_addr,
                      std::vector<std::uint64_t> &waiters_out);

    std::uint32_t
    inUse() const
    {
        SeqGuard guard(domain_);
        return static_cast<std::uint32_t>(entries_.size());
    }
    std::uint32_t capacity() const { return maxEntries_; }

    /**
     * Leak/merge auditor. Verifies occupancy against capacity, that every
     * entry holds 1..maxMerges waiters, that no access id waits on two
     * lines, and that no entry has been outstanding longer than
     * @p leak_bound cycles (0 disables the age check) — a fill that never
     * arrives would otherwise park its waiters forever.
     */
    void audit(Cycle now, Cycle leak_bound = 0) const;

    /** One-line-per-entry state dump for failure reports. */
    std::string debugString() const;

  private:
    struct Entry
    {
        std::vector<std::uint64_t> waiters;
        bool allocateOnFill = false;
        Cycle allocatedAt = 0;   ///< Cycle the entry was created.
    };

    std::uint32_t maxEntries_;
    std::uint32_t maxMerges_;
    /**
     * Tick domain of the MSHR file. One MSHR file per SM: under the
     * parallel tick engine this state belongs to that SM's shard, and
     * the capability marks every access that the shard boundary covers.
     */
    mutable SeqDomain domain_;
    FlatMap<Addr, Entry> entries_ LB_GUARDED_BY(domain_);
};

} // namespace lbsim
