#include "mem/tag_array.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

TagArray::TagArray(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), lines_(sets * ways)
{
    if (sets == 0 || ways == 0)
        panic("TagArray requires nonzero geometry (%u sets, %u ways)",
              sets, ways);
}

TagLine *
TagArray::find(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    TagLine *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const TagLine *
TagArray::find(Addr line_addr) const
{
    return const_cast<TagArray *>(this)->find(line_addr);
}

bool
TagArray::access(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    if (TagLine *line = find(line_addr)) {
        line->lastUse = now;
        line->hpc = hpc;
        line->owner = owner;
        return true;
    }
    return false;
}

bool
TagArray::probe(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

std::optional<std::uint8_t>
TagArray::lineHpc(Addr line_addr) const
{
    if (const TagLine *line = find(line_addr))
        return line->hpc;
    return std::nullopt;
}

std::optional<Eviction>
TagArray::insert(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    const std::uint32_t set = setIndex(line_addr);
    TagLine *base = &lines_[static_cast<std::size_t>(set) * ways_];

    // Refill of a resident line just refreshes it.
    if (TagLine *line = find(line_addr)) {
        line->lastUse = now;
        line->fillTime = now;
        line->hpc = hpc;
        line->owner = owner;
        return std::nullopt;
    }

    TagLine *slot = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }

    std::optional<Eviction> evicted;
    if (!slot) {
        slot = base;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        evicted = Eviction{slot->lineAddr, slot->hpc, slot->owner};
    }

    slot->valid = true;
    slot->lineAddr = line_addr;
    slot->hpc = hpc;
    slot->owner = owner;
    slot->lastUse = now;
    slot->fillTime = now;
    return evicted;
}

bool
TagArray::invalidate(Addr line_addr)
{
    if (TagLine *line = find(line_addr)) {
        line->valid = false;
        line->lineAddr = kNoAddr;
        return true;
    }
    return false;
}

void
TagArray::invalidateAll()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.lineAddr = kNoAddr;
    }
}

std::uint32_t
TagArray::validLines() const
{
    std::uint32_t count = 0;
    for (const auto &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

void
TagArray::audit(Cycle now) const
{
    for (std::uint32_t set = 0; set < sets_; ++set) {
        StateDumpScope dump([this, set] { return debugSetString(set); });
        const TagLine *base =
            &lines_[static_cast<std::size_t>(set) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const TagLine &line = base[w];
            if (!line.valid)
                continue;
            LB_AUDIT(line.lineAddr != kNoAddr,
                     "valid line in set %u way %u has sentinel address",
                     set, w);
            LB_AUDIT(setIndex(line.lineAddr) == set,
                     "line %llx stored in set %u but maps to set %u",
                     static_cast<unsigned long long>(line.lineAddr), set,
                     setIndex(line.lineAddr));
            LB_AUDIT(line.lastUse <= now && line.fillTime <= now,
                     "line %llx in set %u has future timestamps "
                     "(lastUse=%llu fill=%llu now=%llu)",
                     static_cast<unsigned long long>(line.lineAddr), set,
                     static_cast<unsigned long long>(line.lastUse),
                     static_cast<unsigned long long>(line.fillTime),
                     static_cast<unsigned long long>(now));
            for (std::uint32_t w2 = w + 1; w2 < ways_; ++w2) {
                LB_AUDIT(!base[w2].valid ||
                             base[w2].lineAddr != line.lineAddr,
                         "duplicate tag %llx in set %u (ways %u and %u)",
                         static_cast<unsigned long long>(line.lineAddr),
                         set, w, w2);
            }
        }
    }
}

std::string
TagArray::debugSetString(std::uint32_t set) const
{
    std::string out = "TagArray set " + std::to_string(set) + " (" +
        std::to_string(ways_) + " ways)\n";
    const TagLine *base = &lines_[static_cast<std::size_t>(set) * ways_];
    char buf[160];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const TagLine &line = base[w];
        std::snprintf(buf, sizeof(buf),
                      "way=%u valid=%d addr=%llx hpc=%u owner=%u "
                      "lastUse=%llu fill=%llu\n",
                      w, line.valid ? 1 : 0,
                      static_cast<unsigned long long>(line.lineAddr),
                      line.hpc, line.owner,
                      static_cast<unsigned long long>(line.lastUse),
                      static_cast<unsigned long long>(line.fillTime));
        out += buf;
    }
    return out;
}

TagLine &
TagArray::lineForTest(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

} // namespace lbsim
