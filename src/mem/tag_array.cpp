#include "mem/tag_array.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

TagArray::TagArray(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways),
      tags_(static_cast<std::size_t>(sets) * ways, kNoAddr),
      meta_(static_cast<std::size_t>(sets) * ways)
{
    if (sets == 0 || ways == 0)
        panic("TagArray requires nonzero geometry (%u sets, %u ways)",
              sets, ways);
}

std::uint32_t
TagArray::findWay(std::uint32_t set, Addr line_addr) const
{
    // The hit path: one linear scan of the set's contiguous tag run.
    // Invalid ways hold kNoAddr and real line addresses never equal it,
    // so no validity test is needed per way.
    const Addr *base = &tags_[slot(set, 0)];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w] == line_addr)
            return w;
    }
    return ways_;
}

bool
TagArray::access(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    const std::uint32_t set = setIndex(line_addr);
    const std::uint32_t way = findWay(set, line_addr);
    if (way == ways_)
        return false;
    WayMeta &m = meta_[slot(set, way)];
    m.lastUse = now;
    m.hpc = hpc;
    m.owner = owner;
    return true;
}

bool
TagArray::probe(Addr line_addr) const
{
    return findWay(setIndex(line_addr), line_addr) != ways_;
}

std::optional<std::uint8_t>
TagArray::lineHpc(Addr line_addr) const
{
    const std::uint32_t set = setIndex(line_addr);
    const std::uint32_t way = findWay(set, line_addr);
    if (way == ways_)
        return std::nullopt;
    return meta_[slot(set, way)].hpc;
}

std::optional<Eviction>
TagArray::insert(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    LB_INVARIANT(line_addr != kNoAddr,
                 "inserting the sentinel address into a tag array");
    const std::uint32_t set = setIndex(line_addr);
    Addr *base = &tags_[slot(set, 0)];

    // Refill of a resident line just refreshes it; otherwise remember
    // the first invalid way from the same scan.
    std::uint32_t way = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w] == line_addr) {
            WayMeta &m = meta_[slot(set, w)];
            m.lastUse = now;
            m.fillTime = now;
            m.hpc = hpc;
            m.owner = owner;
            return std::nullopt;
        }
        if (way == ways_ && base[w] == kNoAddr)
            way = w;
    }

    std::optional<Eviction> evicted;
    if (way == ways_) {
        way = 0;
        const WayMeta *metaBase = &meta_[slot(set, 0)];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (metaBase[w].lastUse < metaBase[way].lastUse)
                way = w;
        }
        const WayMeta &victim = metaBase[way];
        evicted = Eviction{base[way], victim.hpc, victim.owner};
    }

    base[way] = line_addr;
    WayMeta &m = meta_[slot(set, way)];
    m.hpc = hpc;
    m.owner = owner;
    m.lastUse = now;
    m.fillTime = now;
    return evicted;
}

bool
TagArray::invalidate(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    const std::uint32_t way = findWay(set, line_addr);
    if (way == ways_)
        return false;
    tags_[slot(set, way)] = kNoAddr;
    return true;
}

void
TagArray::invalidateAll()
{
    tags_.assign(tags_.size(), kNoAddr);
}

std::uint32_t
TagArray::validLines() const
{
    std::uint32_t count = 0;
    for (const Addr tag : tags_)
        count += tag != kNoAddr ? 1 : 0;
    return count;
}

void
TagArray::audit(Cycle now) const
{
    for (std::uint32_t set = 0; set < sets_; ++set) {
        StateDumpScope dump([this, set] { return debugSetString(set); });
        const Addr *base = &tags_[slot(set, 0)];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w] == kNoAddr)
                continue;
            const WayMeta &m = meta_[slot(set, w)];
            LB_AUDIT(setIndex(base[w]) == set,
                     "line %llx stored in set %u but maps to set %u",
                     static_cast<unsigned long long>(base[w]), set,
                     setIndex(base[w]));
            LB_AUDIT(m.lastUse <= now && m.fillTime <= now,
                     "line %llx in set %u has future timestamps "
                     "(lastUse=%llu fill=%llu now=%llu)",
                     static_cast<unsigned long long>(base[w]), set,
                     static_cast<unsigned long long>(m.lastUse),
                     static_cast<unsigned long long>(m.fillTime),
                     static_cast<unsigned long long>(now));
            for (std::uint32_t w2 = w + 1; w2 < ways_; ++w2) {
                LB_AUDIT(base[w2] != base[w],
                         "duplicate tag %llx in set %u (ways %u and %u)",
                         static_cast<unsigned long long>(base[w]), set, w,
                         w2);
            }
        }
    }
}

std::string
TagArray::debugSetString(std::uint32_t set) const
{
    std::string out = "TagArray set " + std::to_string(set) + " (" +
        std::to_string(ways_) + " ways)\n";
    char buf[160];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Addr tag = tags_[slot(set, w)];
        const WayMeta &m = meta_[slot(set, w)];
        std::snprintf(buf, sizeof(buf),
                      "way=%u valid=%d addr=%llx hpc=%u owner=%u "
                      "lastUse=%llu fill=%llu\n",
                      w, tag != kNoAddr ? 1 : 0,
                      static_cast<unsigned long long>(tag), m.hpc, m.owner,
                      static_cast<unsigned long long>(m.lastUse),
                      static_cast<unsigned long long>(m.fillTime));
        out += buf;
    }
    return out;
}

TagLine
TagArray::lineForTest(std::uint32_t set, std::uint32_t way) const
{
    const std::size_t index = slot(set, way);
    TagLine line;
    line.valid = tags_[index] != kNoAddr;
    line.lineAddr = tags_[index];
    line.hpc = meta_[index].hpc;
    line.owner = meta_[index].owner;
    line.lastUse = meta_[index].lastUse;
    line.fillTime = meta_[index].fillTime;
    return line;
}

void
TagArray::setLineForTest(std::uint32_t set, std::uint32_t way,
                         const TagLine &line)
{
    const std::size_t index = slot(set, way);
    tags_[index] = line.valid ? line.lineAddr : kNoAddr;
    meta_[index].hpc = line.hpc;
    meta_[index].owner = line.owner;
    meta_[index].lastUse = line.lastUse;
    meta_[index].fillTime = line.fillTime;
}

} // namespace lbsim
