#include "mem/tag_array.hpp"

#include "common/log.hpp"

namespace lbsim
{

TagArray::TagArray(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), lines_(sets * ways)
{
    if (sets == 0 || ways == 0)
        panic("TagArray requires nonzero geometry (%u sets, %u ways)",
              sets, ways);
}

TagLine *
TagArray::find(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    TagLine *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const TagLine *
TagArray::find(Addr line_addr) const
{
    return const_cast<TagArray *>(this)->find(line_addr);
}

bool
TagArray::access(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    if (TagLine *line = find(line_addr)) {
        line->lastUse = now;
        line->hpc = hpc;
        line->owner = owner;
        return true;
    }
    return false;
}

bool
TagArray::probe(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

std::optional<std::uint8_t>
TagArray::lineHpc(Addr line_addr) const
{
    if (const TagLine *line = find(line_addr))
        return line->hpc;
    return std::nullopt;
}

std::optional<Eviction>
TagArray::insert(Addr line_addr, std::uint8_t hpc, Cycle now,
                 std::uint8_t owner)
{
    const std::uint32_t set = setIndex(line_addr);
    TagLine *base = &lines_[static_cast<std::size_t>(set) * ways_];

    // Refill of a resident line just refreshes it.
    if (TagLine *line = find(line_addr)) {
        line->lastUse = now;
        line->fillTime = now;
        line->hpc = hpc;
        line->owner = owner;
        return std::nullopt;
    }

    TagLine *slot = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }

    std::optional<Eviction> evicted;
    if (!slot) {
        slot = base;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        evicted = Eviction{slot->lineAddr, slot->hpc, slot->owner};
    }

    slot->valid = true;
    slot->lineAddr = line_addr;
    slot->hpc = hpc;
    slot->owner = owner;
    slot->lastUse = now;
    slot->fillTime = now;
    return evicted;
}

bool
TagArray::invalidate(Addr line_addr)
{
    if (TagLine *line = find(line_addr)) {
        line->valid = false;
        line->lineAddr = kNoAddr;
        return true;
    }
    return false;
}

void
TagArray::invalidateAll()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.lineAddr = kNoAddr;
    }
}

std::uint32_t
TagArray::validLines() const
{
    std::uint32_t count = 0;
    for (const auto &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace lbsim
