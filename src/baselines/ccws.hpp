/**
 * @file
 * CCWS-lite: Cache-Conscious Wavefront Scheduling (Rogers et al.,
 * MICRO 2012), the dynamic warp-throttling scheme the paper's Best-SWL
 * oracle idealizes.
 *
 * Mechanism (first-order): a per-warp victim tag array detects *lost
 * locality* — a warp missing on a line it itself recently lost from L1.
 * Each detection bumps the warp's locality score; scores decay over
 * time. When aggregate lost locality is high, the scheduler cuts the
 * number of issuable warps (prioritizing the high-score warps so they
 * can keep their working sets resident); as scores decay the warp count
 * recovers. Extension beyond the paper's evaluated baselines: provided
 * for comparison against Best-SWL and Linebacker.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "core/sm.hpp"
#include "mem/victim_if.hpp"

namespace lbsim
{

/** CCWS-lite controller for one SM. */
class Ccws : public SmControllerIf, public VictimCacheIf
{
  public:
    /**
     * @param cfg GPU configuration.
     * @param sm The SM to control (attaches itself to the L1 hooks).
     */
    Ccws(const GpuConfig &cfg, Sm *sm);

    // --- SmControllerIf ---------------------------------------------------
    void onCycle(Sm &sm, Cycle now) override;
    bool warpMayIssue(const Sm &sm, const Warp &warp) const override;

    /** onCycle() is a no-op until the next score-update boundary. */
    Cycle
    nextEventCycle(const Sm &sm, Cycle now) const override
    {
        (void)sm;
        (void)now;
        return nextUpdate_;
    }

    /** No CTA-slot hooks: the issue-rank cutoff ignores launches. */
    bool
    wantsSchedulingOpportunity(const Sm &sm) const override
    {
        (void)sm;
        return false;
    }

    // --- VictimCacheIf (used as an eviction/miss observation tap) ---------
    VictimProbeResult probeVictim(Addr line_addr, Cycle now) override;
    void notifyEviction(Addr line_addr, std::uint8_t hpc,
                        std::uint8_t owner_warp, Cycle now) override;
    void notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                      std::uint8_t warp_slot, bool hit,
                      Cycle now) override;
    void notifyStore(Addr line_addr, Cycle now) override;

    /** Current issuable-warp cap. */
    std::uint32_t activeLimit() const { return activeLimit_; }

    /** Locality score of warp slot @p slot. */
    double score(std::uint32_t slot) const { return scores_[slot]; }

  private:
    /** Per-warp victim tag array entries (CCWS uses a small VTA). */
    static constexpr std::uint32_t kVtaEntriesPerWarp = 16;
    /** Score added on a detected lost-locality event. */
    static constexpr double kScoreBump = 32.0;
    /** Multiplicative score decay applied every update period. */
    static constexpr double kDecay = 0.95;
    /** Scheduling-cutoff update period in cycles. */
    static constexpr Cycle kUpdatePeriod = 2000;
    /** Scale from aggregate score to warps removed from the pool. */
    static constexpr double kThrottleScale = 256.0;

    const GpuConfig &cfg_;
    Sm *sm_;
    /** Per-warp direct-mapped VTA: slot x entry -> line address. */
    std::vector<Addr> vta_;
    std::vector<double> scores_;
    /** Issue ranks: rank[slot] < activeLimit_ may issue. */
    std::vector<std::uint32_t> rank_;
    std::uint32_t activeLimit_;
    Cycle nextUpdate_ = kUpdatePeriod;
    /** Warp slot of the last observed L1 access (evictions follow). */
    std::uint32_t lastAccessSlot_ = 0;
};

} // namespace lbsim
