#include "baselines/static_warp_limiter.hpp"

// Header-only behaviour; this translation unit anchors the module.

namespace lbsim
{
} // namespace lbsim
