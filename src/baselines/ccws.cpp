#include "baselines/ccws.hpp"

#include <algorithm>
#include <numeric>

namespace lbsim
{

Ccws::Ccws(const GpuConfig &cfg, Sm *sm)
    : cfg_(cfg), sm_(sm),
      vta_(static_cast<std::size_t>(cfg.maxWarpsPerSm) *
               kVtaEntriesPerWarp,
           kNoAddr),
      scores_(cfg.maxWarpsPerSm, 0.0), rank_(cfg.maxWarpsPerSm, 0),
      activeLimit_(cfg.maxWarpsPerSm)
{
    std::iota(rank_.begin(), rank_.end(), 0u);
    sm->l1().setVictimCache(this);
}

VictimProbeResult
Ccws::probeVictim(Addr line_addr, Cycle now)
{
    (void)now;
    (void)line_addr;
    // CCWS stores no data; the VTA lookup happens in notifyAccess.
    return {};
}

void
Ccws::notifyEviction(Addr line_addr, std::uint8_t hpc,
                     std::uint8_t owner_warp, Cycle now)
{
    (void)hpc;
    (void)now;
    // Record the victim in the owning warp's (direct-mapped) VTA.
    if (owner_warp >= cfg_.maxWarpsPerSm)
        return;
    const std::size_t slot =
        static_cast<std::size_t>(owner_warp) * kVtaEntriesPerWarp +
        lineIndex(line_addr) % kVtaEntriesPerWarp;
    vta_[slot] = line_addr;
}

void
Ccws::notifyAccess(Addr line_addr, Pc pc, std::uint8_t hpc,
                   std::uint8_t warp_slot, bool hit, Cycle now)
{
    (void)pc;
    (void)hpc;
    (void)now;
    if (hit || warp_slot >= cfg_.maxWarpsPerSm)
        return;
    // Lost locality: the warp misses on a line it itself lost from L1.
    const std::size_t slot =
        static_cast<std::size_t>(warp_slot) * kVtaEntriesPerWarp +
        lineIndex(line_addr) % kVtaEntriesPerWarp;
    if (vta_[slot] == line_addr) {
        vta_[slot] = kNoAddr; // Consume the detection.
        scores_[warp_slot] += kScoreBump;
    }
}

void
Ccws::notifyStore(Addr line_addr, Cycle now)
{
    (void)line_addr;
    (void)now;
}

bool
Ccws::warpMayIssue(const Sm &sm, const Warp &warp) const
{
    (void)sm;
    return rank_[warp.smWarpId] < activeLimit_;
}

void
Ccws::onCycle(Sm &sm, Cycle now)
{
    (void)sm;
    if (now < nextUpdate_)
        return;
    nextUpdate_ = now + kUpdatePeriod;

    double total = 0.0;
    for (double &score : scores_) {
        score *= kDecay;
        total += score;
    }

    // More aggregate lost locality -> fewer concurrently issuing warps.
    const auto removed = static_cast<std::uint32_t>(
        std::min<double>(cfg_.maxWarpsPerSm - 6.0,
                         total / kThrottleScale));
    activeLimit_ = cfg_.maxWarpsPerSm - removed;

    // High-score warps rank first so they keep their working sets.
    std::vector<std::uint32_t> order(cfg_.maxWarpsPerSm);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return scores_[a] > scores_[b];
                     });
    for (std::uint32_t r = 0; r < order.size(); ++r)
        rank_[order[r]] = r;
}

} // namespace lbsim
