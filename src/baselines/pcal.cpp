#include "baselines/pcal.hpp"

#include <algorithm>

namespace lbsim
{

Pcal::Pcal(const GpuConfig &cfg, Cycle window)
    : cfg_(cfg), window_(window), nextWindowEnd_(window),
      activeLimit_(cfg.maxWarpsPerSm), bestLimit_(cfg.maxWarpsPerSm),
      tokens_(tokenShare(cfg.maxWarpsPerSm))
{
}

std::uint32_t
Pcal::tokenShare(std::uint32_t active_limit)
{
    // Most active warps hold allocation tokens; the trailing share runs
    // for parallelism but bypasses L1 on fills.
    return std::max<std::uint32_t>(2, (active_limit * 7) / 8);
}

void
Pcal::applyLimit(std::uint32_t limit)
{
    activeLimit_ = std::clamp<std::uint32_t>(limit, kMinWarps,
                                             cfg_.maxWarpsPerSm);
    tokens_ = tokenShare(activeLimit_);
}

void
Pcal::onCycle(Sm &sm, Cycle now)
{
    if (now < nextWindowEnd_)
        return;
    nextWindowEnd_ = now + window_;

    const std::uint64_t issued = sm.instructionsIssued();
    const double ipc = static_cast<double>(issued - lastIssued_) /
        window_;
    lastIssued_ = issued;

    if (settle_) {
        // Skip the transition window after a limit change.
        settle_ = false;
        return;
    }

    // Remember the best settled configuration seen so far.
    if (ipc > bestIpc_) {
        bestIpc_ = ipc;
        bestLimit_ = activeLimit_;
    }

    if (!primed_) {
        primed_ = true;
        lastIpc_ = ipc;
        // Start exploring downward: cache-sensitive kernels benefit
        // from fewer concurrently allocating warps.
        applyLimit(activeLimit_ - step_);
        settle_ = true;
        return;
    }

    if (frozen_) {
        // Converged: stop paying exploration overhead.
        lastIpc_ = ipc;
        return;
    }

    if (ipc < 0.97 * bestIpc_) {
        // Exploration made things worse; snap back to the best known
        // configuration. Repeated snap-backs to the same limit mean the
        // climber has converged — freeze there.
        if (activeLimit_ != bestLimit_) {
            applyLimit(bestLimit_);
            settle_ = true;
            if (++snapBacks_ >= 3)
                frozen_ = true;
        }
        lastIpc_ = ipc;
        return;
    }

    // Hill climbing: keep moving while IPC improves, reverse otherwise.
    if (ipc < lastIpc_ * 0.98)
        direction_ = -direction_;
    lastIpc_ = ipc;

    const std::int64_t proposed = static_cast<std::int64_t>(activeLimit_) +
        direction_ * static_cast<std::int64_t>(step_);
    const auto clamped = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(proposed, kMinWarps,
                                 cfg_.maxWarpsPerSm));
    if (clamped != activeLimit_) {
        applyLimit(clamped);
        settle_ = true;
    }
}

bool
Pcal::warpMayIssue(const Sm &sm, const Warp &warp) const
{
    (void)sm;
    return warp.smWarpId < activeLimit_;
}

bool
Pcal::warpBypassesL1(const Sm &sm, const Warp &warp) const
{
    (void)sm;
    // Token holders are the lowest warp slots (stable with bottom-up slot
    // assignment); the remaining active warps bypass L1 allocation.
    return warp.smWarpId >= tokens_;
}

} // namespace lbsim
