/**
 * @file
 * CERF: cache-emulated register file (MICRO '49 comparison point).
 *
 * CERF unifies the 256 KB register file and the 48 KB L1 into one 304 KB
 * on-chip structure and serves cache data out of the space that holds
 * rarely accessed register values. Two first-order effects are modelled:
 *
 *  1. L1 capacity extension: whole extra ways are carved out of the
 *     statically unused register space plus a fraction of the allocated
 *     registers that are rarely accessed;
 *  2. bank sharing: every cache data access arbitrates with operand
 *     accesses for the register-file banks (wired through the L1's
 *     BankArbiterIf), raising conflicts (Fig 16) and access latency.
 *
 * CERF has no per-load streaming filter, so streaming workloads still
 * thrash the enlarged structure — the weakness Linebacker exploits.
 */

#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "core/kernel.hpp"

namespace lbsim
{

/** Fraction of allocated registers CERF can repurpose (rarely live). */
inline constexpr double kCerfRareRegFraction = 0.30;

/**
 * Extra L1 ways CERF provisions for @p kernel on @p cfg.
 *
 * Computed from the kernel's occupancy: the statically unused register
 * space plus the rarely-accessed share of the allocated space, divided by
 * the bytes one L1 way covers.
 */
std::uint32_t cerfExtraWays(const GpuConfig &cfg, const KernelInfo &kernel);

/**
 * Resident CTAs per SM for @p kernel under @p cfg occupancy rules
 * (shared helper for CERF/CacheExt sizing and the oracle sweep).
 */
std::uint32_t maxResidentCtas(const GpuConfig &cfg,
                              const KernelInfo &kernel);

/** Statically unused register bytes per SM at full occupancy. */
std::uint32_t staticallyUnusedRegBytes(const GpuConfig &cfg,
                                       const KernelInfo &kernel);

/**
 * Extra L1 ways for the ideal CacheExt configuration (Fig 5): idle
 * register bytes translated into whole ways.
 *
 * @param idle_reg_bytes SUR (baseline) or SUR+DUR (Best-SWL+CacheExt).
 */
std::uint32_t cacheExtExtraWays(const GpuConfig &cfg,
                                std::uint32_t idle_reg_bytes);

} // namespace lbsim
