#include "baselines/cerf.hpp"

#include <algorithm>

namespace lbsim
{

std::uint32_t
maxResidentCtas(const GpuConfig &cfg, const KernelInfo &kernel)
{
    std::uint32_t by_slots = cfg.maxCtasPerSm;
    const std::uint32_t by_warps =
        cfg.maxWarpsPerSm / std::max(1u, kernel.warpsPerCta);
    const std::uint32_t by_regs =
        cfg.totalWarpRegisters() / std::max(1u, kernel.regsPerCta());
    std::uint32_t resident = std::min({by_slots, by_warps, by_regs});
    if (kernel.sharedMemPerCta > 0) {
        resident = std::min(resident, cfg.sharedMemBytesPerSm /
                                          kernel.sharedMemPerCta);
    }
    return std::min(resident, kernel.numCtas);
}

std::uint32_t
staticallyUnusedRegBytes(const GpuConfig &cfg, const KernelInfo &kernel)
{
    const std::uint32_t used =
        maxResidentCtas(cfg, kernel) * kernel.regsPerCta() * kLineBytes;
    return cfg.registerFileBytesPerSm > used
        ? cfg.registerFileBytesPerSm - used
        : 0;
}

std::uint32_t
cerfExtraWays(const GpuConfig &cfg, const KernelInfo &kernel)
{
    const std::uint32_t sur = staticallyUnusedRegBytes(cfg, kernel);
    const std::uint32_t used = cfg.registerFileBytesPerSm - sur;
    const double repurposable =
        sur + kCerfRareRegFraction * static_cast<double>(used);
    const std::uint32_t way_bytes = cfg.l1.sets() * cfg.l1.lineBytes;
    return static_cast<std::uint32_t>(repurposable) / way_bytes;
}

std::uint32_t
cacheExtExtraWays(const GpuConfig &cfg, std::uint32_t idle_reg_bytes)
{
    const std::uint32_t way_bytes = cfg.l1.sets() * cfg.l1.lineBytes;
    return idle_reg_bytes / way_bytes;
}

} // namespace lbsim
