/**
 * @file
 * PCAL: priority-based cache allocation (HPCA '15 comparison point).
 *
 * Re-implementation of the mechanism's first-order behaviour. PCAL
 * couples warp throttling with cache-allocation tokens: an IPC-driven
 * hill climber tunes the number of issuing warps (the throttling half),
 * and within the active set only the token-holding warps may allocate in
 * L1 — the remainder run for parallelism but bypass on fills, protecting
 * resident lines from thrashing (the bypassing half).
 */

#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "core/sm.hpp"

namespace lbsim
{

/** PCAL controller for one SM. */
class Pcal : public SmControllerIf
{
  public:
    /**
     * @param cfg GPU configuration.
     * @param window Tuning window in cycles.
     */
    explicit Pcal(const GpuConfig &cfg, Cycle window = 50000);

    void onCycle(Sm &sm, Cycle now) override;
    bool warpMayIssue(const Sm &sm, const Warp &warp) const override;
    bool warpBypassesL1(const Sm &sm, const Warp &warp) const override;

    /** onCycle() is a no-op until the hill-climb window closes. */
    Cycle
    nextEventCycle(const Sm &sm, Cycle now) const override
    {
        (void)sm;
        (void)now;
        return nextWindowEnd_;
    }

    /** No CTA-slot hooks: the token cutoff ignores launches. */
    bool
    wantsSchedulingOpportunity(const Sm &sm) const override
    {
        (void)sm;
        return false;
    }

    std::uint32_t activeLimit() const { return activeLimit_; }
    std::uint32_t tokenWarps() const { return tokens_; }

  private:
    static std::uint32_t tokenShare(std::uint32_t active_limit);
    void applyLimit(std::uint32_t limit);

    static constexpr std::uint32_t kMinWarps = 4;

    const GpuConfig &cfg_;
    Cycle window_;
    Cycle nextWindowEnd_;
    std::uint32_t activeLimit_;
    std::uint32_t bestLimit_;
    std::uint32_t tokens_;
    std::int32_t direction_ = -1;   ///< Hill-climb step sign.
    std::uint32_t step_ = 8;
    double lastIpc_ = 0.0;
    double bestIpc_ = 0.0;
    std::uint64_t lastIssued_ = 0;
    bool primed_ = false;
    bool settle_ = false;
    bool frozen_ = false;
    std::uint32_t snapBacks_ = 0;
};

} // namespace lbsim
