/**
 * @file
 * Best-SWL: static warp limiting.
 *
 * The paper's strongest prior-art baseline keeps every CTA resident but
 * only lets the first N warp slots issue, where N is chosen offline per
 * application by an oracle sweep (harness/oracle). With bottom-up warp
 * slot assignment the gated set is stable over the run.
 */

#pragma once

#include <cstdint>

#include "core/sm.hpp"

namespace lbsim
{

/** Static warp limiter (CCWS-style Best-SWL baseline). */
class StaticWarpLimiter : public SmControllerIf
{
  public:
    /** @param warp_limit Max issuable warp slots; 0 means unlimited. */
    explicit StaticWarpLimiter(std::uint32_t warp_limit)
        : limit_(warp_limit)
    {}

    bool
    warpMayIssue(const Sm &sm, const Warp &warp) const override
    {
        (void)sm;
        return limit_ == 0 || warp.smWarpId < limit_;
    }

    /** Stateless gate: never needs a cycle of its own. */
    Cycle
    nextEventCycle(const Sm &sm, Cycle now) const override
    {
        (void)sm;
        (void)now;
        return kNoCycle;
    }

    /** Stateless gate: launches need no controller involvement. */
    bool
    wantsSchedulingOpportunity(const Sm &sm) const override
    {
        (void)sm;
        return false;
    }

    std::uint32_t limit() const { return limit_; }

  private:
    std::uint32_t limit_;
};

} // namespace lbsim
