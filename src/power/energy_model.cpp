#include "power/energy_model.hpp"

namespace lbsim
{

namespace
{
constexpr double kPjToJ = 1.0e-12;
} // namespace

EnergyBreakdown
EnergyModel::compute(const SimStats &stats, const GpuConfig &cfg,
                     bool lb_active) const
{
    EnergyBreakdown e;

    e.core = stats.instructionsIssued * params_.instructionPj * kPjToJ;
    e.registerFile = stats.rfAccesses * params_.rfAccessPj * kPjToJ;

    const std::uint64_t l1_accesses =
        stats.l1.total() + stats.evictions + stats.writeEvicts +
        stats.writeNoAllocates;
    e.l1 = l1_accesses * params_.l1AccessPj * kPjToJ;
    e.l2 = stats.l2Accesses * params_.l2AccessPj * kPjToJ;
    e.dram = stats.dramLineTransfers() * params_.dramLinePj * kPjToJ;

    if (lb_active) {
        // Every load consults the LM and the HPC field; VTT probes are
        // counted directly.
        const std::uint64_t loads =
            stats.l1.l1Hits + stats.l1.regHits + stats.l1.misses;
        e.lbStructures =
            (loads * (params_.loadMonitorAccessPj + params_.hpcAccessPj) +
             stats.vttProbes * params_.vttAccessPj +
             (stats.ctaThrottleEvents + stats.ctaActivateEvents) *
                 params_.ctaManagerAccessPj) *
            kPjToJ;
    }

    const double seconds =
        static_cast<double>(stats.cycles) / (cfg.clockGhz * 1.0e9);
    e.staticEnergy =
        (params_.smStaticWatts * cfg.numSms + params_.uncoreStaticWatts) *
        seconds;
    return e;
}

} // namespace lbsim
