/**
 * @file
 * Event-based GPU energy model.
 *
 * Follows the methodology of the paper's evaluation: dynamic energy is
 * charged per microarchitectural event (instruction execution, register
 * file access, cache access, DRAM line transfer) and static energy per
 * cycle. Linebacker's added structures use the per-access energies the
 * paper reports from CACTI (Table 3): CTA manager 1.94 pJ, HPC field
 * 0.09 pJ, Load Monitor 0.32 pJ, VTT 2.05 pJ. The remaining constants
 * are GPUWattch-flavoured per-event figures; Figure 18's result is
 * dominated by execution-time (static energy) and DRAM-traffic
 * reductions, which the counters capture directly.
 */

#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace lbsim
{

/** Per-event and static energy constants (picojoules / watts). */
struct EnergyParams
{
    // Table 3 (CACTI) — Linebacker structures.
    double ctaManagerAccessPj = 1.94;
    double hpcAccessPj = 0.09;
    double loadMonitorAccessPj = 0.32;
    double vttAccessPj = 2.05;

    // GPUWattch-flavoured per-event dynamic energies.
    double instructionPj = 20.0;       ///< Execute one warp instruction.
    double rfAccessPj = 12.0;          ///< One 128 B register access.
    double l1AccessPj = 40.0;          ///< One L1 tag+data access.
    double l2AccessPj = 120.0;         ///< One L2 slice access.
    double dramLinePj = 2600.0;        ///< One 128 B off-chip transfer.

    // Static (leakage + constant) power per SM and for the rest of chip.
    double smStaticWatts = 1.8;
    double uncoreStaticWatts = 12.0;
};

/** Energy breakdown of one run, in joules. */
struct EnergyBreakdown
{
    double core = 0;        ///< Instruction execution.
    double registerFile = 0;
    double l1 = 0;
    double l2 = 0;
    double dram = 0;
    double lbStructures = 0; ///< LM + VTT + CTA manager + HPC fields.
    double staticEnergy = 0;

    double
    total() const
    {
        return core + registerFile + l1 + l2 + dram + lbStructures +
            staticEnergy;
    }
};

/** Computes run energy from counters. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

    /**
     * Energy for @p stats under @p cfg.
     * @param lb_active Charge Linebacker structure accesses.
     */
    EnergyBreakdown compute(const SimStats &stats, const GpuConfig &cfg,
                            bool lb_active) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace lbsim
