/**
 * @file
 * Address-pattern generators giving synthetic kernels their locality
 * signatures.
 *
 * Every pattern is a pure function of (seed, cta, warp, iteration), so
 * the generated address stream is identical across schemes regardless of
 * how warps interleave — a requirement for fair relative-IPC comparison
 * and for deterministic tests.
 *
 * Three families cover the behaviours the paper characterizes in
 * Section 2.3:
 *  - TiledReusePattern: a bounded working set swept cyclically, scoped
 *    per warp / per CTA / per SM / globally (high-locality loads);
 *  - StreamingPattern: monotonically advancing addresses, never reused
 *    (the pollution Linebacker filters out);
 *  - IrregularPattern: hashed accesses over a large footprint with an
 *    optional hot subset and divergent fan-out (graph workloads).
 */

#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/kernel.hpp"

namespace lbsim
{

/** Sharing scope of a reuse tile. */
enum class TileScope
{
    PerWarp,  ///< Each warp owns a private tile.
    PerCta,   ///< Warps of a CTA share one tile.
    PerSm,    ///< All CTAs on an SM share one tile.
    Global,   ///< One tile for the whole grid.
};

/** Cyclically swept bounded working set. */
class TiledReusePattern : public AddressPatternIf
{
  public:
    /**
     * @param base Region base address (disjoint per static load).
     * @param lines Tile size in 128 B lines.
     * @param scope Sharing scope.
     * @param warps_per_cta Needed to stagger warps inside shared tiles.
     */
    TiledReusePattern(Addr base, std::uint32_t lines, TileScope scope,
                      std::uint32_t warps_per_cta);

    void generate(const AccessContext &ctx,
                  std::vector<Addr> &lines_out) override;

    std::uint32_t tileLines() const { return lines_; }
    TileScope scope() const { return scope_; }

  private:
    Addr base_;
    std::uint32_t lines_;
    TileScope scope_;
    std::uint32_t warpsPerCta_;
};

/** Monotonically advancing, never-reused stream. */
class StreamingPattern : public AddressPatternIf
{
  public:
    /**
     * @param base Region base address.
     * @param warps_per_cta Stream interleaving factor.
     * @param lines_per_iteration Lines consumed per warp per active
     *        iteration.
     * @param every_n Touch the stream only every Nth iteration (real
     *        kernels consume streaming inputs less often than they
     *        revisit their reused tiles).
     */
    StreamingPattern(Addr base, std::uint32_t warps_per_cta,
                     std::uint32_t lines_per_iteration = 1,
                     std::uint32_t every_n = 1);

    void generate(const AccessContext &ctx,
                  std::vector<Addr> &lines_out) override;

    std::uint32_t linesPerIteration() const { return linesPerIter_; }
    std::uint32_t everyN() const { return everyN_; }

  private:
    Addr base_;
    std::uint32_t warpsPerCta_;
    std::uint32_t linesPerIter_;
    std::uint32_t everyN_;
};

/** Hashed accesses over a large footprint with optional hot subset. */
class IrregularPattern : public AddressPatternIf
{
  public:
    /**
     * @param base Region base address.
     * @param footprint_lines Total lines reachable.
     * @param fanout Divergent line accesses per warp instruction.
     * @param hot_lines Size of the frequently revisited subset (0 = none).
     * @param hot_probability Probability an access targets the hot set.
     * @param seed Hash seed.
     */
    IrregularPattern(Addr base, std::uint64_t footprint_lines,
                     std::uint32_t fanout, std::uint64_t hot_lines,
                     double hot_probability, std::uint64_t seed);

    void generate(const AccessContext &ctx,
                  std::vector<Addr> &lines_out) override;

    std::uint32_t fanout() const { return fanout_; }

  private:
    Addr base_;
    std::uint64_t footprintLines_;
    std::uint32_t fanout_;
    std::uint64_t hotLines_;
    double hotProbability_;
    std::uint64_t seed_;
};

} // namespace lbsim
