/**
 * @file
 * The benchmark suite of Table 2.
 *
 * Twenty behavioural profiles mirroring the paper's applications: ten
 * cache-sensitive (S2 GE BI KM AT BC S1 MV CF PF) and ten
 * cache-insensitive (BG LI SR2 SP BR FD GA SR1 2D HS). Parameters are
 * chosen so the per-SM characterization matches Figures 2-4 qualitatively:
 * reuse working sets of the top loads exceed the 48 KB L1 in most
 * sensitive apps, streaming footprints exceed 16 KB in about half the
 * suite, and register occupancy spans the paper's SUR/DUR range.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/app_profile.hpp"

namespace lbsim
{

/** All 20 profiles in Table 2 order (sensitive first). */
const std::vector<AppProfile> &benchmarkSuite();

/** The cache-sensitive subset. */
std::vector<AppProfile> cacheSensitiveApps();

/** The cache-insensitive subset. */
std::vector<AppProfile> cacheInsensitiveApps();

/** Look up a profile by its Table 2 abbreviation. */
const AppProfile &appById(const std::string &id);

} // namespace lbsim
