#include "workload/app_profile.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace lbsim
{

KernelInfo
AppProfile::buildKernel(const GpuConfig &cfg) const
{
    KernelInfo kernel;
    kernel.name = id;
    kernel.warpsPerCta = warpsPerCta;
    kernel.regsPerWarp = regsPerWarp;
    kernel.sharedMemPerCta = sharedMemPerCta;
    kernel.iterations = iterations;
    kernel.numCtas = ctasPerSmOfGrid * cfg.numSms;

    Pc pc = 0;
    auto add_inst = [&kernel, &pc](StaticInst inst) {
        inst.pc = pc;
        pc += 4;
        kernel.body.push_back(inst);
    };

    // Build one pattern per load; region bases stay disjoint.
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadSpec &spec = loads[i];
        const Addr base = static_cast<Addr>(i + 1) << 38;
        switch (spec.cls) {
          case LoadClass::Reuse:
            kernel.patterns.push_back(std::make_shared<TiledReusePattern>(
                base, static_cast<std::uint32_t>(spec.lines), spec.scope,
                warpsPerCta));
            break;
          case LoadClass::Streaming:
            kernel.patterns.push_back(std::make_shared<StreamingPattern>(
                base, warpsPerCta,
                static_cast<std::uint32_t>(spec.lines), spec.everyN));
            break;
          case LoadClass::Irregular:
            kernel.patterns.push_back(std::make_shared<IrregularPattern>(
                base, spec.lines, spec.fanout, spec.hotLines,
                spec.hotProbability, hashCombine(seed, i)));
            break;
        }
    }

    // Streaming store pattern (if any) goes last.
    std::uint32_t store_pattern = 0;
    if (hasStore) {
        store_pattern =
            static_cast<std::uint32_t>(kernel.patterns.size());
        kernel.patterns.push_back(std::make_shared<StreamingPattern>(
            static_cast<Addr>(loads.size() + 1) << 38, warpsPerCta, 1,
            storeEveryN));
    }

    // Emit the body. With loadsBackToBack all loads issue first (memory-
    // level parallelism), then a use consumes them; otherwise each load
    // is immediately consumed.
    auto emit_alu_burst = [&](std::uint32_t count, bool first_depends) {
        for (std::uint32_t a = 0; a < count; ++a) {
            StaticInst alu;
            alu.op = Opcode::Alu;
            alu.dependsOnLoads = first_depends && a == 0;
            alu.stallCycles = (a == 0) ? 4 : 1;
            add_inst(alu);
        }
    };

    if (loadsBackToBack) {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            StaticInst load;
            load.op = Opcode::Load;
            load.patternId = static_cast<std::uint32_t>(i);
            add_inst(load);
        }
        emit_alu_burst(aluPerLoad * std::max<std::size_t>(1,
                                                          loads.size()),
                       true);
    } else {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            StaticInst load;
            load.op = Opcode::Load;
            load.patternId = static_cast<std::uint32_t>(i);
            add_inst(load);
            emit_alu_burst(aluPerLoad, true);
        }
    }

    if (hasStore) {
        StaticInst store;
        store.op = Opcode::Store;
        store.patternId = store_pattern;
        add_inst(store);
    }

    kernel.validate();
    return kernel;
}

} // namespace lbsim
