/**
 * @file
 * Application profiles: per-benchmark behavioural descriptions.
 *
 * Each of the paper's 20 benchmarks (Table 2) is represented by a profile
 * that encodes the properties Linebacker's behaviour depends on — the
 * static loads with their locality class and working-set size, the
 * compute/memory ratio, the register footprint, and the grid shape. The
 * profile compiles into a KernelInfo the simulator executes.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/kernel.hpp"
#include "workload/pattern.hpp"

namespace lbsim
{

/** Locality class of one static load. */
enum class LoadClass
{
    Reuse,      ///< Bounded working set (TiledReusePattern).
    Streaming,  ///< Never-reused stream (StreamingPattern).
    Irregular,  ///< Hashed/divergent (IrregularPattern).
};

/** One static load of an application profile. */
struct LoadSpec
{
    LoadClass cls = LoadClass::Reuse;
    /** Reuse: tile lines; Streaming: lines per iteration;
     *  Irregular: footprint lines. */
    std::uint64_t lines = 64;
    TileScope scope = TileScope::PerCta;     ///< Reuse only.
    std::uint32_t fanout = 1;                ///< Irregular divergence.
    std::uint64_t hotLines = 0;              ///< Irregular hot subset.
    double hotProbability = 0.0;
    /** Streaming: touch the stream only every Nth iteration. */
    std::uint32_t everyN = 1;
};

/** Behavioural profile of one benchmark application. */
struct AppProfile
{
    std::string id;            ///< Paper abbreviation ("S2", "KM", ...).
    std::string description;   ///< Table 2 description.
    bool cacheSensitive = false;

    std::vector<LoadSpec> loads;
    /** ALU instructions after each load group. */
    std::uint32_t aluPerLoad = 4;
    /** Issue loads back-to-back before the dependent use (MLP). */
    bool loadsBackToBack = true;
    /** Emit a streaming store at the end of the body. */
    bool hasStore = false;
    /** Store stream period (see LoadSpec::everyN). */
    std::uint32_t storeEveryN = 2;

    std::uint32_t warpsPerCta = 8;
    std::uint32_t regsPerWarp = 16;
    std::uint32_t sharedMemPerCta = 0;
    std::uint32_t iterations = 4000;
    /** CTAs per SM of grid to generate (scaled by the SM count). */
    std::uint32_t ctasPerSmOfGrid = 48;
    std::uint64_t seed = 1;

    /**
     * Compile the profile into an executable kernel for @p cfg.
     * Pattern region bases are disjoint per static load.
     */
    KernelInfo buildKernel(const GpuConfig &cfg) const;
};

} // namespace lbsim
