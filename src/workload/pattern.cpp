#include "workload/pattern.hpp"

namespace lbsim
{

TiledReusePattern::TiledReusePattern(Addr base, std::uint32_t lines,
                                     TileScope scope,
                                     std::uint32_t warps_per_cta)
    : base_(base), lines_(lines == 0 ? 1 : lines), scope_(scope),
      warpsPerCta_(warps_per_cta == 0 ? 1 : warps_per_cta)
{
}

void
TiledReusePattern::generate(const AccessContext &ctx,
                            std::vector<Addr> &lines_out)
{
    // Tile instance selection: which copy of the tile this warp sweeps.
    std::uint64_t instance = 0;
    switch (scope_) {
      case TileScope::PerWarp:
        instance = static_cast<std::uint64_t>(ctx.globalCtaId) *
            warpsPerCta_ + ctx.warpInCta;
        break;
      case TileScope::PerCta:
        instance = ctx.globalCtaId;
        break;
      case TileScope::PerSm:
        instance = ctx.smId;
        break;
      case TileScope::Global:
        instance = 0;
        break;
    }

    // Warps sharing a tile start at hashed phases so they touch disjoint
    // parts of the set at any instant. Lockstep phases would collapse
    // cross-warp reuse into MSHR merges on the same in-flight line;
    // decorrelated phases produce the temporal reuse real kernels show.
    std::uint64_t stagger = 0;
    if (scope_ != TileScope::PerWarp) {
        const std::uint64_t sharer =
            static_cast<std::uint64_t>(ctx.globalCtaId) * warpsPerCta_ +
            ctx.warpInCta;
        stagger = hashCombine(sharer, base_) % lines_;
    }
    const std::uint64_t index = (ctx.iteration + stagger) % lines_;

    lines_out.push_back(base_ +
                        (instance * lines_ + index) * kLineBytes);
}

StreamingPattern::StreamingPattern(Addr base, std::uint32_t warps_per_cta,
                                   std::uint32_t lines_per_iteration,
                                   std::uint32_t every_n)
    : base_(base), warpsPerCta_(warps_per_cta == 0 ? 1 : warps_per_cta),
      linesPerIter_(lines_per_iteration == 0 ? 1 : lines_per_iteration),
      everyN_(every_n == 0 ? 1 : every_n)
{
}

void
StreamingPattern::generate(const AccessContext &ctx,
                           std::vector<Addr> &lines_out)
{
    // Each warp consumes a private monotonically advancing stream: every
    // active iteration touches fresh lines, never to be revisited.
    if (ctx.iteration % everyN_ != 0)
        return;
    const std::uint64_t stream =
        static_cast<std::uint64_t>(ctx.globalCtaId) * warpsPerCta_ +
        ctx.warpInCta;
    const std::uint64_t first =
        (stream << 24) +
        static_cast<std::uint64_t>(ctx.iteration / everyN_) *
            linesPerIter_;
    for (std::uint32_t i = 0; i < linesPerIter_; ++i)
        lines_out.push_back(base_ + (first + i) * kLineBytes);
}

IrregularPattern::IrregularPattern(Addr base,
                                   std::uint64_t footprint_lines,
                                   std::uint32_t fanout,
                                   std::uint64_t hot_lines,
                                   double hot_probability,
                                   std::uint64_t seed)
    : base_(base), footprintLines_(footprint_lines == 0 ? 1
                                                        : footprint_lines),
      fanout_(fanout == 0 ? 1 : fanout),
      hotLines_(hot_lines), hotProbability_(hot_probability), seed_(seed)
{
}

void
IrregularPattern::generate(const AccessContext &ctx,
                           std::vector<Addr> &lines_out)
{
    const std::uint64_t key = hashCombine(
        seed_, hashCombine(ctx.globalCtaId,
                           hashCombine(ctx.warpInCta, ctx.iteration)));
    for (std::uint32_t i = 0; i < fanout_; ++i) {
        const std::uint64_t draw = hashCombine(key, i);
        const double unit =
            static_cast<double>(draw >> 11) * 0x1.0p-53;
        std::uint64_t line;
        if (hotLines_ > 0 && unit < hotProbability_) {
            line = hashCombine(draw, 0x517cc1b7) % hotLines_;
        } else {
            line = hashCombine(draw, 0x2545f491) % footprintLines_;
        }
        lines_out.push_back(base_ + line * kLineBytes);
    }
}

} // namespace lbsim
