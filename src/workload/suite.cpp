#include "workload/suite.hpp"

#include "common/log.hpp"

namespace lbsim
{

namespace
{

/** Shorthand constructors for load specs. */
LoadSpec
reuse(std::uint64_t lines, TileScope scope)
{
    LoadSpec s;
    s.cls = LoadClass::Reuse;
    s.lines = lines;
    s.scope = scope;
    return s;
}

LoadSpec
stream(std::uint64_t lines_per_iter = 1, std::uint32_t every_n = 1)
{
    LoadSpec s;
    s.cls = LoadClass::Streaming;
    s.lines = lines_per_iter;
    s.everyN = every_n;
    return s;
}

LoadSpec
irregular(std::uint64_t footprint, std::uint32_t fanout,
          std::uint64_t hot_lines, double hot_probability)
{
    LoadSpec s;
    s.cls = LoadClass::Irregular;
    s.lines = footprint;
    s.fanout = fanout;
    s.hotLines = hot_lines;
    s.hotProbability = hot_probability;
    return s;
}

/*
 * Calibration notes (48 KB L1 = 384 lines; victim partitions of 192
 * lines carved from idle registers; 2048 warp registers per SM).
 *
 * The cache-sensitive profiles follow the paper's premise that capacity,
 * not scheduling, is the binding constraint: per-CTA working sets exceed
 * the L1 even at minimum occupancy, so warp throttling alone (Best-SWL)
 * can only trade parallelism for partial hit-rate gains, while
 * Linebacker's victim space (up to 1536 extra lines) actually fits the
 * working set. Cache-insensitive profiles either fit in L1 outright,
 * stream, or scatter over footprints no realistic cache holds.
 */
std::vector<AppProfile>
buildSuite()
{
    std::vector<AppProfile> suite;
    auto add = [&suite](AppProfile profile) {
        suite.push_back(std::move(profile));
    };

    // ----- Cache-sensitive applications (Table 2a) ----------------------

    {
        AppProfile p;
        p.id = "S2";
        p.description = "Symmetric rank-2k operations (Polybench)";
        p.cacheSensitive = true;
        // 520 reuse lines per CTA: above L1 capacity even for one CTA.
        p.loads = {reuse(320, TileScope::PerCta),
                   reuse(320, TileScope::PerCta), stream(1, 4)};
        p.aluPerLoad = 3;
        p.hasStore = true;
        p.warpsPerCta = 16;
        p.regsPerWarp = 32;   // Register file fully occupied: DUR matters.
        p.seed = 0x5201;
        add(p);
    }
    {
        AppProfile p;
        p.id = "GE";
        p.description = "Scalar, vector and matrix multiplication "
                        "(Polybench GEMM family)";
        p.cacheSensitive = true;
        p.loads = {reuse(192, TileScope::Global),
                   reuse(384, TileScope::PerCta), stream(1, 4)};
        p.aluPerLoad = 2;
        p.hasStore = true;
        p.warpsPerCta = 16;
        p.regsPerWarp = 32;
        p.seed = 0x4745;
        add(p);
    }
    {
        AppProfile p;
        p.id = "BI";
        p.description = "BiCGStab linear solver (Polybench)";
        p.cacheSensitive = true;
        // Heavy streaming plus a reused vector block: the selective
        // filter and the large static register space do the work.
        p.loads = {reuse(112, TileScope::PerCta), stream(2, 2),
                   stream(1, 3)};
        p.aluPerLoad = 3;
        p.warpsPerCta = 8;
        p.regsPerWarp = 16;   // Large SUR: SVC works without throttling.
        p.seed = 0x4249;
        add(p);
    }
    {
        AppProfile p;
        p.id = "KM";
        p.description = "KMeans clustering (Rodinia)";
        p.cacheSensitive = true;
        // Global centroid block + per-CTA membership tile.
        p.loads = {reuse(224, TileScope::Global),
                   reuse(352, TileScope::PerCta), stream(1, 4)};
        p.aluPerLoad = 2;
        p.hasStore = true;
        p.warpsPerCta = 16;
        p.regsPerWarp = 32;
        p.seed = 0x4b4d;
        add(p);
    }
    {
        AppProfile p;
        p.id = "AT";
        p.description = "Matrix transpose-vector multiplication "
                        "(Polybench ATAX)";
        p.cacheSensitive = true;
        p.loads = {reuse(8, TileScope::PerWarp),
                   reuse(128, TileScope::Global), stream(1, 4)};
        p.aluPerLoad = 3;
        p.warpsPerCta = 8;
        p.regsPerWarp = 12;   // Huge SUR: SVC app.
        p.seed = 0x4154;
        add(p);
    }
    {
        AppProfile p;
        p.id = "BC";
        p.description = "Breadth-first search (CUDA SDK)";
        p.cacheSensitive = true;
        // Hot frontier above L1 capacity; victim space absorbs it.
        p.loads = {irregular(std::uint64_t{1} << 18, 2, 1152, 0.80),
                   stream(1, 4)};
        p.aluPerLoad = 3;
        p.warpsPerCta = 16;
        p.regsPerWarp = 32;
        p.seed = 0x4243;
        add(p);
    }
    {
        AppProfile p;
        p.id = "S1";
        p.description = "Symmetric rank-1k operations (Polybench)";
        p.cacheSensitive = true;
        p.loads = {reuse(200, TileScope::PerCta),
                   reuse(200, TileScope::PerCta),
                   reuse(256, TileScope::Global)};
        p.aluPerLoad = 3;
        p.hasStore = true;
        p.warpsPerCta = 16;
        p.regsPerWarp = 24;
        p.seed = 0x5331;
        add(p);
    }
    {
        AppProfile p;
        p.id = "MV";
        p.description = "Matrix-vector product transpose (Polybench)";
        p.cacheSensitive = true;
        p.loads = {reuse(256, TileScope::Global),
                   reuse(224, TileScope::PerCta), stream(2, 3)};
        p.aluPerLoad = 3;
        p.hasStore = true;
        p.warpsPerCta = 8;
        p.regsPerWarp = 16;
        p.seed = 0x4d56;
        add(p);
    }
    {
        AppProfile p;
        p.id = "CF";
        p.description = "CFD Euler solver (Rodinia)";
        p.cacheSensitive = true;
        p.loads = {reuse(224, TileScope::PerCta),
                   reuse(224, TileScope::PerCta),
                   reuse(288, TileScope::Global), stream(1, 4)};
        p.aluPerLoad = 4;
        p.hasStore = true;
        p.warpsPerCta = 16;
        p.regsPerWarp = 30;
        p.seed = 0x4346;
        add(p);
    }
    {
        AppProfile p;
        p.id = "PF";
        p.description = "Particle filter, float (Rodinia)";
        p.cacheSensitive = true;
        p.loads = {reuse(384, TileScope::PerCta),
                   reuse(224, TileScope::Global),
                   irregular(std::uint64_t{1} << 16, 1, 256, 0.50)};
        p.aluPerLoad = 5;
        p.warpsPerCta = 16;
        p.regsPerWarp = 28;
        p.seed = 0x5046;
        add(p);
    }

    // ----- Cache-insensitive applications (Table 2b) --------------------

    {
        AppProfile p;
        p.id = "BG";
        p.description = "Breadth-first search (GPGPU-Sim suite)";
        p.cacheSensitive = false;
        // Scattered over a 128 MB graph with a weak hot set: no cache
        // of realistic size helps much.
        p.loads = {irregular(std::uint64_t{1} << 20, 3, 96, 0.15),
                   stream(1, 3)};
        p.aluPerLoad = 4;
        p.warpsPerCta = 8;
        p.regsPerWarp = 32;
        p.seed = 0x4247;
        add(p);
    }
    {
        AppProfile p;
        p.id = "LI";
        p.description = "LIBOR Monte Carlo (GPGPU-Sim suite)";
        p.cacheSensitive = false;
        p.loads = {stream(2), reuse(32, TileScope::Global)};
        p.aluPerLoad = 24;    // Compute bound.
        p.warpsPerCta = 8;
        p.regsPerWarp = 40;
        p.seed = 0x4c49;
        add(p);
    }
    {
        AppProfile p;
        p.id = "SR2";
        p.description = "SRAD v2 speckle-reducing diffusion (Rodinia)";
        p.cacheSensitive = false;
        p.loads = {stream(2), reuse(4, TileScope::PerWarp)};
        p.aluPerLoad = 8;
        p.hasStore = true;
        p.warpsPerCta = 8;
        p.regsPerWarp = 16;
        p.seed = 0x5332;
        add(p);
    }
    {
        AppProfile p;
        p.id = "SP";
        p.description = "Sparse matrix-vector multiply (Parboil)";
        p.cacheSensitive = false;
        p.loads = {irregular(std::uint64_t{1} << 19, 2, 64, 0.12),
                   stream(1, 3)};
        p.aluPerLoad = 3;
        p.warpsPerCta = 8;
        p.regsPerWarp = 24;
        p.seed = 0x5350;
        add(p);
    }
    {
        AppProfile p;
        p.id = "BR";
        p.description = "Breadth-first search (Rodinia)";
        p.cacheSensitive = false;
        // A modest hot frontier: mild gains for capacity approaches.
        p.loads = {irregular(std::uint64_t{1} << 17, 2, 512, 0.45),
                   stream(1, 4)};
        p.aluPerLoad = 4;
        p.warpsPerCta = 8;
        p.regsPerWarp = 32;
        p.seed = 0x4252;
        add(p);
    }
    {
        AppProfile p;
        p.id = "FD";
        p.description = "2-D finite-difference time domain (Polybench)";
        p.cacheSensitive = false;
        p.loads = {reuse(6, TileScope::PerWarp), stream(1, 2)};
        p.aluPerLoad = 6;
        p.hasStore = true;
        p.warpsPerCta = 8;
        p.regsPerWarp = 16;
        p.seed = 0x4644;
        add(p);
    }
    {
        AppProfile p;
        p.id = "GA";
        p.description = "Gaussian elimination (Rodinia)";
        p.cacheSensitive = false;
        p.loads = {reuse(96, TileScope::Global)};
        p.aluPerLoad = 16;
        p.hasStore = true;
        p.storeEveryN = 6;
        p.warpsPerCta = 8;
        p.regsPerWarp = 16;
        p.seed = 0x4741;
        add(p);
    }
    {
        AppProfile p;
        p.id = "SR1";
        p.description = "SRAD v1 speckle-reducing diffusion (Rodinia)";
        p.cacheSensitive = false;
        p.loads = {reuse(160, TileScope::Global), stream(1, 3)};
        p.aluPerLoad = 10;
        p.hasStore = true;
        p.warpsPerCta = 8;
        p.regsPerWarp = 16;
        p.seed = 0x5331aa;
        add(p);
    }
    {
        AppProfile p;
        p.id = "2D";
        p.description = "2-D convolution (Polybench)";
        p.cacheSensitive = false;
        p.loads = {reuse(4, TileScope::PerWarp), stream(2)};
        p.aluPerLoad = 5;
        p.hasStore = true;
        p.warpsPerCta = 8;
        p.regsPerWarp = 12;
        p.seed = 0x3244;
        add(p);
    }
    {
        AppProfile p;
        p.id = "HS";
        p.description = "HotSpot thermal simulation (Rodinia)";
        p.cacheSensitive = false;
        p.loads = {reuse(6, TileScope::PerWarp), stream(2, 2)};
        p.aluPerLoad = 12;
        p.hasStore = true;
        p.warpsPerCta = 8;
        p.regsPerWarp = 24;
        p.seed = 0x4853;
        add(p);
    }

    return suite;
}

} // namespace

const std::vector<AppProfile> &
benchmarkSuite()
{
    static const std::vector<AppProfile> suite = buildSuite();
    return suite;
}

std::vector<AppProfile>
cacheSensitiveApps()
{
    std::vector<AppProfile> apps;
    for (const AppProfile &app : benchmarkSuite()) {
        if (app.cacheSensitive)
            apps.push_back(app);
    }
    return apps;
}

std::vector<AppProfile>
cacheInsensitiveApps()
{
    std::vector<AppProfile> apps;
    for (const AppProfile &app : benchmarkSuite()) {
        if (!app.cacheSensitive)
            apps.push_back(app);
    }
    return apps;
}

const AppProfile &
appById(const std::string &id)
{
    for (const AppProfile &app : benchmarkSuite()) {
        if (app.id == id)
            return app;
    }
    fatal("unknown application id '%s'", id.c_str());
}

} // namespace lbsim
