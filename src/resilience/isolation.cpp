#include "resilience/isolation.hpp"

#include <cstdio>
#include <exception>

#if defined(__unix__) || defined(__APPLE__)
#define LBSIM_HAS_FORK 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define LBSIM_HAS_FORK 0
#endif

namespace lbsim
{

namespace
{

/** Child exit code distinguishing a reported failure from a crash. */
constexpr int kTaskFailedExit = 10;

} // namespace

bool
isolationSupported()
{
    return LBSIM_HAS_FORK != 0;
}

#if LBSIM_HAS_FORK

IsolationResult
runIsolatedTask(const std::function<std::pair<bool, std::string>()> &work,
                unsigned timeout_sec)
{
    IsolationResult result;

    int fds[2];
    if (pipe(fds) != 0) {
        result.status = IsolationStatus::TaskFailed;
        result.payload = "pipe() failed";
        return result;
    }
    const pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        result.status = IsolationStatus::TaskFailed;
        result.payload = "fork() failed";
        return result;
    }

    if (pid == 0) {
        close(fds[0]);
        if (timeout_sec > 0)
            alarm(timeout_sec);
        bool ok = false;
        std::string payload;
        try {
            auto [task_ok, task_payload] = work();
            ok = task_ok;
            payload = std::move(task_payload);
        } catch (const std::exception &e) {
            payload = std::string("exception: ") + e.what();
        } catch (...) {
            payload = "unknown exception";
        }
        const char *data = payload.c_str();
        std::size_t remaining = payload.size();
        while (remaining > 0) {
            const ssize_t written = write(fds[1], data, remaining);
            if (written <= 0)
                break;
            data += written;
            remaining -= static_cast<std::size_t>(written);
        }
        close(fds[1]);
        _exit(ok ? 0 : kTaskFailedExit);
    }

    close(fds[1]);
    std::string payload;
    char buf[4096];
    ssize_t got;
    while ((got = read(fds[0], buf, sizeof(buf))) > 0)
        payload.append(buf, static_cast<std::size_t>(got));
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);

    result.payload = std::move(payload);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        result.status = IsolationStatus::Ok;
    } else if (WIFEXITED(status) &&
               WEXITSTATUS(status) == kTaskFailedExit) {
        result.status = IsolationStatus::TaskFailed;
    } else if (WIFSIGNALED(status) && WTERMSIG(status) == SIGALRM) {
        result.status = IsolationStatus::Timeout;
        result.termSignal = SIGALRM;
    } else {
        result.status = IsolationStatus::Crashed;
        result.termSignal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        if (result.payload.empty()) {
            char detail[64];
            std::snprintf(detail, sizeof(detail),
                          WIFSIGNALED(status)
                              ? "child killed by signal %d"
                              : "child exited with status %d",
                          WIFSIGNALED(status)
                              ? WTERMSIG(status)
                              : (WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -1));
            result.payload = detail;
        }
    }
    return result;
}

#else

IsolationResult
runIsolatedTask(const std::function<std::pair<bool, std::string>()> &work,
                unsigned timeout_sec)
{
    (void)work;
    (void)timeout_sec;
    IsolationResult result;
    result.status = IsolationStatus::Unsupported;
    result.payload = "fork() unavailable on this platform";
    return result;
}

#endif

} // namespace lbsim
