#include "resilience/watchdog.hpp"

#include <cstdio>
#include <sstream>

#include "common/json.hpp"

namespace lbsim
{

Watchdog::Watchdog(Cycle threshold, std::uint32_t num_sms)
    : threshold_(threshold), lastPerSm_(num_sms, 0),
      lastPerSmCycle_(num_sms, 0)
{
}

void
Watchdog::observe(Cycle now, std::uint64_t global_progress,
                  const std::vector<std::uint64_t> &per_sm_progress)
{
    if (tripped_ || threshold_ == 0)
        return;

    if (!primed_) {
        // The first observation sets the baseline; a run that starts
        // mid-simulation (warm-up already elapsed) must not inherit a
        // stale cycle-0 reference.
        primed_ = true;
        lastGlobal_ = global_progress;
        lastGlobalCycle_ = now;
        for (std::size_t sm = 0;
             sm < lastPerSm_.size() && sm < per_sm_progress.size();
             ++sm) {
            lastPerSm_[sm] = per_sm_progress[sm];
            lastPerSmCycle_[sm] = now;
        }
        return;
    }

    for (std::size_t sm = 0;
         sm < lastPerSm_.size() && sm < per_sm_progress.size(); ++sm) {
        if (per_sm_progress[sm] != lastPerSm_[sm]) {
            lastPerSm_[sm] = per_sm_progress[sm];
            lastPerSmCycle_[sm] = now;
        }
    }

    if (global_progress != lastGlobal_) {
        lastGlobal_ = global_progress;
        lastGlobalCycle_ = now;
        return;
    }
    if (now - lastGlobalCycle_ >= threshold_)
        tripped_ = true;
}

std::string
HangReport::text() const
{
    std::ostringstream out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "WATCHDOG: no forward progress for %llu cycles "
                  "(tripped at cycle %llu, last progress at %llu)\n",
                  static_cast<unsigned long long>(threshold),
                  static_cast<unsigned long long>(cycle),
                  static_cast<unsigned long long>(lastProgress));
    out << buf;

    if (oldest.valid) {
        std::snprintf(buf, sizeof(buf),
                      "oldest in-flight request: %s line=0x%llx sm=%u "
                      "issued at cycle %llu (stuck for %llu cycles)\n",
                      oldest.kind.c_str(),
                      static_cast<unsigned long long>(oldest.lineAddr),
                      oldest.smId,
                      static_cast<unsigned long long>(oldest.issued),
                      static_cast<unsigned long long>(
                          cycle >= oldest.issued ? cycle - oldest.issued
                                                 : 0));
        out << buf;
    } else {
        out << "oldest in-flight request: none (no memory request "
               "outstanding)\n";
    }

    for (const HangReportSm &sm : sms) {
        std::snprintf(buf, sizeof(buf),
                      "sm %u: issued=%llu lastProgress=%llu %s "
                      "mshr=%u/%u\n",
                      sm.id,
                      static_cast<unsigned long long>(
                          sm.instructionsIssued),
                      static_cast<unsigned long long>(sm.lastProgress),
                      sm.idle ? "idle" : "busy", sm.mshrInUse,
                      sm.mshrCapacity);
        out << buf;
        if (!sm.detail.empty())
            out << sm.detail;
        if (!sm.controller.empty())
            out << sm.controller;
    }

    for (const auto &[name, dump] : subsystems) {
        out << "--- " << name << " ---\n";
        out << dump;
    }
    if (!faultSummary.empty()) {
        out << "--- fault injection ---\n";
        out << faultSummary;
    }
    return out.str();
}

std::string
HangReport::json() const
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("event", "watchdog-trip");
    json.field("cycle", static_cast<std::uint64_t>(cycle));
    json.field("thresholdCycles", static_cast<std::uint64_t>(threshold));
    json.field("lastProgressCycle",
               static_cast<std::uint64_t>(lastProgress));
    if (oldest.valid) {
        json.beginObjectField("oldestRequest");
        json.field("kind", oldest.kind);
        json.field("smId", oldest.smId);
        char addr[32];
        std::snprintf(addr, sizeof(addr), "0x%llx",
                      static_cast<unsigned long long>(oldest.lineAddr));
        json.field("lineAddr", addr);
        json.field("issuedCycle",
                   static_cast<std::uint64_t>(oldest.issued));
        json.field("stuckCycles",
                   static_cast<std::uint64_t>(
                       cycle >= oldest.issued ? cycle - oldest.issued
                                              : 0));
        json.endObject();
    }
    json.beginArrayField("sms");
    for (const HangReportSm &sm : sms) {
        json.beginObject();
        json.field("id", sm.id);
        json.field("instructionsIssued", sm.instructionsIssued);
        json.field("lastProgressCycle",
                   static_cast<std::uint64_t>(sm.lastProgress));
        json.field("idle", sm.idle);
        json.field("mshrInUse", sm.mshrInUse);
        json.field("mshrCapacity", sm.mshrCapacity);
        if (!sm.detail.empty())
            json.field("detail", sm.detail);
        if (!sm.controller.empty())
            json.field("controller", sm.controller);
        json.endObject();
    }
    json.endArray();
    json.beginArrayField("subsystems");
    for (const auto &[name, dump] : subsystems) {
        json.beginObject();
        json.field("name", name);
        json.field("state", dump);
        json.endObject();
    }
    json.endArray();
    if (!faultSummary.empty())
        json.field("faultSummary", faultSummary);
    json.endObject();
    return out.str();
}

} // namespace lbsim
