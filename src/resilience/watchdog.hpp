/**
 * @file
 * Forward-progress watchdog and structured hang reports.
 *
 * The watchdog observes two monotone progress signals each cycle — a
 * global counter (instructions issued plus memory requests retired) and
 * a per-SM instruction counter — and trips deterministically once the
 * global signal has been flat for a configured number of cycles
 * (GpuConfig::watchdogCycles). Tripping does not abort the process: the
 * Gpu run loop terminates the simulation cleanly and assembles a
 * HangReport naming the oldest in-flight request (from the
 * RequestLedger), per-SM issue/stall state, MSHR and staging-buffer
 * occupancy, controller state, and any fault-injection activity — as
 * both human-readable text and machine-readable JSON.
 *
 * The class itself is model-agnostic (it sees only counters), so unit
 * tests can drive it without a simulator.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace lbsim
{

/** The oldest request still in flight when the watchdog tripped. */
struct HangOldestRequest
{
    bool valid = false;
    std::uint32_t smId = 0;
    std::string kind;
    Addr lineAddr = 0;
    Cycle issued = 0;
};

/** Per-SM snapshot embedded in a hang report. */
struct HangReportSm
{
    std::uint32_t id = 0;
    std::uint64_t instructionsIssued = 0;
    Cycle lastProgress = 0;  ///< Last cycle this SM issued anything.
    bool idle = false;
    std::uint32_t mshrInUse = 0;
    std::uint32_t mshrCapacity = 0;
    /** Warp/CTA table summary (per-warp stall reasons). */
    std::string detail;
    /** Attached controller's state (throttle/backup/VTT), if any. */
    std::string controller;
};

/** Structured description of a watchdog-terminated run. */
struct HangReport
{
    Cycle cycle = 0;         ///< Cycle the watchdog tripped.
    Cycle threshold = 0;     ///< Configured no-progress bound.
    Cycle lastProgress = 0;  ///< Last cycle any progress was seen.
    HangOldestRequest oldest;
    std::vector<HangReportSm> sms;
    /** Named subsystem dumps (interconnect, partitions, ...). */
    std::vector<std::pair<std::string, std::string>> subsystems;
    /** Fault-injection activity summary; empty when no plan armed. */
    std::string faultSummary;

    bool empty() const { return threshold == 0; }

    /** Multi-line human-readable rendering. */
    std::string text() const;

    /** Single JSON object (no trailing newline). */
    std::string json() const;
};

/** Flat-progress detector fed once per cycle. */
class Watchdog
{
  public:
    /**
     * @param threshold Cycles of flat global progress before tripping.
     * @param num_sms Per-SM tracker count.
     */
    Watchdog(Cycle threshold, std::uint32_t num_sms);

    /**
     * Feed the progress counters for @p now. Counters need not be
     * monotone — any change counts as progress (a stats reset at the
     * warm-up boundary is progress, not a hang).
     */
    void observe(Cycle now, std::uint64_t global_progress,
                 const std::vector<std::uint64_t> &per_sm_progress);

    bool tripped() const { return tripped_; }
    Cycle threshold() const { return threshold_; }

    /**
     * True once the first observation set the progress baseline. The
     * tick-skip engine must not jump cycles before priming: the baseline
     * cycle would shift and with it the (deterministic) trip cycle.
     */
    bool primed() const { return primed_; }

    /** Last cycle the global signal moved. */
    Cycle lastProgressCycle() const { return lastGlobalCycle_; }

    /** Last cycle SM @p sm's signal moved. */
    Cycle
    lastSmProgressCycle(std::uint32_t sm) const
    {
        return lastPerSmCycle_[sm];
    }

  private:
    Cycle threshold_;
    bool primed_ = false;
    bool tripped_ = false;
    std::uint64_t lastGlobal_ = 0;
    Cycle lastGlobalCycle_ = 0;
    std::vector<std::uint64_t> lastPerSm_;
    std::vector<Cycle> lastPerSmCycle_;
};

} // namespace lbsim
