/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * A FaultPlan is a small list of timed fault events — windows (or, for
 * one-shot kinds, single occurrences) during which a named hook point in
 * the simulator misbehaves in a controlled way. The plan is part of a
 * run's configuration: the same plan against the same config and
 * workload perturbs exactly the same cycles, so faulted runs are as
 * replayable as clean ones and can be keyed into the memo cache.
 *
 * Hook points (one FaultKind each):
 *
 *  - IcntDelay: responses entering the interconnect are delayed by
 *    `magnitude` extra cycles. Because response delivery is in-order, a
 *    large magnitude also head-of-line-blocks everything behind the
 *    delayed response — the canonical way to wedge a run on purpose.
 *  - IcntReorder: responses are enqueued at the front of the response
 *    queue instead of the back, inverting delivery order within the
 *    window.
 *  - DramStorm: DRAM commands become available only after `magnitude`
 *    extra cycles, modelling a refresh storm / thermal throttle burst.
 *  - BackupStall: the BackupEngine's staging buffer freezes — no
 *    register lines move between the RF, the buffer and the
 *    interconnect for the duration of the window.
 *  - VttRevoke: one-shot per event. The Linebacker instance drops one
 *    active VTT partition mid-run, as if a CTA reactivation reclaimed
 *    the register space backing it; the mechanism must re-grow (or stay
 *    shrunk) without corrupting any counter.
 *  - LoadMonitorLie: the hit/miss bit fed to the Load Monitor during
 *    monitoring windows is inverted, forcing misclassification of load
 *    locality.
 *
 * The injected behaviours are all *legal* reorderings/delays of events
 * the simulator must already tolerate, so every existing auditor (and
 * the lockstep reference model) is expected to stay clean under fault —
 * that is the graceful-degradation property the fuzzer's fault mode
 * asserts.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lbsim
{

/** Hook points a FaultEvent can target. */
enum class FaultKind : std::uint8_t
{
    IcntDelay = 0,    ///< Extra latency on interconnect responses.
    IcntReorder,      ///< LIFO response enqueueing.
    DramStorm,        ///< Extra DRAM command latency.
    BackupStall,      ///< BackupEngine staging buffer frozen.
    VttRevoke,        ///< One-shot VTT partition revocation.
    LoadMonitorLie,   ///< Inverted hit bit into the Load Monitor.
};

constexpr std::uint32_t kFaultKindCount = 6;

/** Stable textual name ("icnt-delay", "dram-storm", ...). */
const char *faultKindName(FaultKind kind);

/** Inverse of faultKindName(). @return false on unknown name. */
bool parseFaultKind(const std::string &name, FaultKind &out);

/** One timed fault: active while start <= now < start + duration. */
struct FaultEvent
{
    FaultKind kind = FaultKind::IcntDelay;
    Cycle start = 0;
    Cycle duration = 0;
    /**
     * Kind-specific intensity (extra cycles). VttRevoke reads it as the
     * target SM id instead — binding each revocation to one SM keeps
     * consumption deterministic when SMs tick in parallel; other flag
     * kinds ignore it.
     */
    std::uint64_t magnitude = 0;
};

/** A deterministic, replayable set of fault events. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /**
     * Compact single-line form for memo-cache keys and log lines, e.g.
     * "icnt-delay@100+50x2000;dram-storm@500+100x40". Empty plan gives
     * an empty string.
     */
    std::string description() const;
};

/** Multi-line file form: header line + one "fault=..." line per event. */
std::string serializeFaultPlan(const FaultPlan &plan);

/**
 * Parse serializeFaultPlan() output (also accepts bare "fault=" lines
 * with no header, the form embedded in fuzz cases).
 * @param error_out Receives a description on failure.
 */
bool parseFaultPlan(const std::string &text, FaultPlan &out,
                    std::string &error_out);

/**
 * Parse one "kind,start,duration,magnitude" event value (the part after
 * "fault=" in plan files and fuzz cases).
 */
bool parseFaultEvent(const std::string &value, FaultEvent &out);

/** Textual "kind,start,duration,magnitude" form of one event. */
std::string serializeFaultEvent(const FaultEvent &event);

/** Magic first line of a standalone fault-plan file. */
extern const char *const kFaultPlanMagic;

/**
 * Per-run fault oracle the hook points query each cycle. All queries
 * are pure functions of (plan, now) except VttRevoke consumption, so a
 * re-run with the same plan fires identically. Fired counters record
 * how many times each hook actually observed an active fault — the
 * runner folds their sum into RunMetrics::faultsInjected and uses it to
 * mark runs fault-degraded.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /** Extra cycles to add to a response entering the crossbar now. */
    Cycle icntResponseDelay(Cycle now);

    /** True when responses should be enqueued LIFO this cycle. */
    bool icntReorderActive(Cycle now);

    /** Extra cycles before a DRAM command enqueued now becomes ready. */
    Cycle dramStormDelay(Cycle now);

    /** True while the backup staging buffer is frozen. */
    bool backupStallActive(Cycle now);

    /**
     * Consume one pending VttRevoke event whose window covers @p now
     * and whose magnitude names @p sm_id as the target SM. Call only
     * when revocation can actually be applied; an unconsumed event
     * stays pending for the rest of its window. Because each event is
     * bound to one SM, only that SM's tick shard ever touches the
     * event's consumed slot — safe under the parallel SM phase.
     */
    bool takeVttRevoke(Cycle now, std::uint32_t sm_id);

    /** True while Load-Monitor hit bits are inverted. */
    bool loadMonitorLieActive(Cycle now);

    const FaultPlan &plan() const { return plan_; }
    bool armed() const { return !plan_.events.empty(); }

    /** Hook observations of an active fault, per kind. */
    std::uint64_t firedCount(FaultKind kind) const
    {
        return fired_[static_cast<std::uint32_t>(kind)].load(
            std::memory_order_relaxed);
    }

    /** Total hook observations across all kinds. */
    std::uint64_t totalFired() const;

    /** One line per kind that fired, for hang reports and logs. */
    std::string summary() const;

  private:
    bool windowActive(FaultKind kind, Cycle now,
                      std::uint64_t *magnitude_sum);

    FaultPlan plan_;
    /**
     * Parallel to plan_.events; marks consumed one-shot events. One
     * byte per event (not vector<bool>: its bit-packing would let two
     * SM shards race on one word) and each slot is written only by the
     * event's target SM.
     */
    std::vector<std::uint8_t> consumed_;
    /**
     * Atomic because window queries run inside the parallel SM phase
     * (BackupStall, LoadMonitorLie, VttRevoke). Relaxed increments
     * suffice: per-SM query counts are themselves deterministic, so the
     * summed totals are too.
     */
    std::array<std::atomic<std::uint64_t>, kFaultKindCount> fired_{};
};

} // namespace lbsim
