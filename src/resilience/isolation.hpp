/**
 * @file
 * Crash-isolated task execution (fork + pipe + alarm).
 *
 * Generalizes the fork/hang-guard machinery the fuzzer grew for running
 * property checks so that any caller — the fuzz campaign, the
 * experiment engine's isolated sweeps — can run a task in a child
 * process that cannot take the parent down: a crash becomes a signal
 * verdict, a hang becomes a SIGALRM timeout, and a clean result travels
 * back over a pipe as an opaque payload string.
 *
 * On platforms without fork() the helper reports Unsupported and the
 * caller falls back to in-process execution.
 */

#pragma once

#include <functional>
#include <string>
#include <utility>

namespace lbsim
{

/** How an isolated task ended. */
enum class IsolationStatus
{
    Ok,           ///< Child exited cleanly; payload is the task's result.
    TaskFailed,   ///< Task reported failure; payload is its description.
    Crashed,      ///< Child died on a signal (see termSignal).
    Timeout,      ///< Child exceeded the wall-clock guard.
    Unsupported,  ///< No fork() on this platform; nothing ran.
};

/** Verdict + payload of one isolated execution. */
struct IsolationResult
{
    IsolationStatus status = IsolationStatus::Unsupported;
    /** Terminating signal when status == Crashed. */
    int termSignal = 0;
    /** Task result (Ok) or failure description (TaskFailed). */
    std::string payload;
};

/** True when runIsolatedTask() can actually fork. */
bool isolationSupported();

/**
 * Run @p work in a forked child with a @p timeout_sec wall-clock guard
 * (0 disables the guard). The task returns {ok, payload}; the payload
 * is piped back verbatim either way. Exceptions escaping the task are
 * reported as TaskFailed with the exception text as payload.
 *
 * The child runs the task and _exit()s without unwinding, so the
 * parent's state (including its threads — workers may call this) is
 * never touched by whatever the task does.
 */
IsolationResult
runIsolatedTask(const std::function<std::pair<bool, std::string>()> &work,
                unsigned timeout_sec);

} // namespace lbsim
