#include "resilience/faultinject.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace lbsim
{

const char *const kFaultPlanMagic = "lbsim-faultplan-v1";

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::IcntDelay:
        return "icnt-delay";
      case FaultKind::IcntReorder:
        return "icnt-reorder";
      case FaultKind::DramStorm:
        return "dram-storm";
      case FaultKind::BackupStall:
        return "backup-stall";
      case FaultKind::VttRevoke:
        return "vtt-revoke";
      case FaultKind::LoadMonitorLie:
        return "lm-lie";
    }
    return "?";
}

bool
parseFaultKind(const std::string &name, FaultKind &out)
{
    for (std::uint32_t k = 0; k < kFaultKindCount; ++k) {
        if (name == faultKindName(static_cast<FaultKind>(k))) {
            out = static_cast<FaultKind>(k);
            return true;
        }
    }
    return false;
}

std::string
FaultPlan::description() const
{
    std::ostringstream out;
    bool first = true;
    for (const FaultEvent &event : events) {
        if (!first)
            out << ';';
        first = false;
        out << faultKindName(event.kind) << '@' << event.start << '+'
            << event.duration << 'x' << event.magnitude;
    }
    return out.str();
}

std::string
serializeFaultEvent(const FaultEvent &event)
{
    std::ostringstream out;
    out << faultKindName(event.kind) << ',' << event.start << ','
        << event.duration << ',' << event.magnitude;
    return out.str();
}

bool
parseFaultEvent(const std::string &value, FaultEvent &out)
{
    std::istringstream fields(value);
    std::string field;
    std::vector<std::string> parts;
    while (std::getline(fields, field, ','))
        parts.push_back(field);
    if (parts.size() != 4)
        return false;

    FaultEvent parsed;
    if (!parseFaultKind(parts[0], parsed.kind))
        return false;
    const auto parseU64 = [](const std::string &text,
                             std::uint64_t &field_out) {
        char *end = nullptr;
        field_out = std::strtoull(text.c_str(), &end, 10);
        return end && *end == '\0' && !text.empty();
    };
    if (!parseU64(parts[1], parsed.start) ||
        !parseU64(parts[2], parsed.duration) ||
        !parseU64(parts[3], parsed.magnitude)) {
        return false;
    }
    out = parsed;
    return true;
}

std::string
serializeFaultPlan(const FaultPlan &plan)
{
    std::ostringstream out;
    out << kFaultPlanMagic << '\n';
    for (const FaultEvent &event : plan.events)
        out << "fault=" << serializeFaultEvent(event) << '\n';
    return out.str();
}

bool
parseFaultPlan(const std::string &text, FaultPlan &out,
               std::string &error_out)
{
    FaultPlan parsed;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        if (line == kFaultPlanMagic)
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || line.substr(0, eq) != "fault") {
            error_out = "line " + std::to_string(line_no) +
                        ": expected fault=kind,start,duration,magnitude";
            return false;
        }
        FaultEvent event;
        if (!parseFaultEvent(line.substr(eq + 1), event)) {
            error_out = "line " + std::to_string(line_no) +
                        ": bad fault event '" + line.substr(eq + 1) + "'";
            return false;
        }
        parsed.events.push_back(event);
    }
    out = std::move(parsed);
    return true;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), consumed_(plan_.events.size(), 0)
{
}

bool
FaultInjector::windowActive(FaultKind kind, Cycle now,
                            std::uint64_t *magnitude_sum)
{
    bool active = false;
    for (const FaultEvent &event : plan_.events) {
        if (event.kind != kind)
            continue;
        if (now < event.start || now >= event.start + event.duration)
            continue;
        active = true;
        if (magnitude_sum)
            *magnitude_sum += event.magnitude;
    }
    if (active) {
        fired_[static_cast<std::uint32_t>(kind)].fetch_add(
            1, std::memory_order_relaxed);
    }
    return active;
}

Cycle
FaultInjector::icntResponseDelay(Cycle now)
{
    if (plan_.events.empty())
        return 0;
    std::uint64_t extra = 0;
    windowActive(FaultKind::IcntDelay, now, &extra);
    return extra;
}

bool
FaultInjector::icntReorderActive(Cycle now)
{
    if (plan_.events.empty())
        return false;
    return windowActive(FaultKind::IcntReorder, now, nullptr);
}

Cycle
FaultInjector::dramStormDelay(Cycle now)
{
    if (plan_.events.empty())
        return 0;
    std::uint64_t extra = 0;
    windowActive(FaultKind::DramStorm, now, &extra);
    return extra;
}

bool
FaultInjector::backupStallActive(Cycle now)
{
    if (plan_.events.empty())
        return false;
    return windowActive(FaultKind::BackupStall, now, nullptr);
}

bool
FaultInjector::takeVttRevoke(Cycle now, std::uint32_t sm_id)
{
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent &event = plan_.events[i];
        // The target-SM filter comes before the consumed check so that
        // only sm_id's tick shard ever reads or writes consumed_[i] —
        // the single-owner rule the parallel SM phase relies on.
        if (event.kind != FaultKind::VttRevoke ||
            event.magnitude != sm_id) {
            continue;
        }
        if (consumed_[i])
            continue;
        if (now < event.start || now >= event.start + event.duration)
            continue;
        consumed_[i] = 1;
        fired_[static_cast<std::uint32_t>(FaultKind::VttRevoke)]
            .fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
FaultInjector::loadMonitorLieActive(Cycle now)
{
    if (plan_.events.empty())
        return false;
    return windowActive(FaultKind::LoadMonitorLie, now, nullptr);
}

std::uint64_t
FaultInjector::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &count : fired_)
        total += count.load(std::memory_order_relaxed);
    return total;
}

std::string
FaultInjector::summary() const
{
    std::string out;
    char buf[96];
    for (std::uint32_t k = 0; k < kFaultKindCount; ++k) {
        const std::uint64_t count =
            fired_[k].load(std::memory_order_relaxed);
        if (count == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%s fired %llu times\n",
                      faultKindName(static_cast<FaultKind>(k)),
                      static_cast<unsigned long long>(count));
        out += buf;
    }
    return out;
}

} // namespace lbsim
