/**
 * @file
 * lbsim-journal-v1: a crash-safe append-only record log.
 *
 * The durable store behind the sweep service and the memo cache. The
 * old memo format was a line-oriented CSV appended in place — a process
 * killed mid-append could leave a torn line that the next reader
 * silently misparsed, and a torn *middle* (two processes interleaving)
 * was undetectable. The journal makes every record self-verifying:
 *
 *   file   := magic-line record*
 *   magic  := "lbsim-journal-v1\n"
 *   record := length:u32le crc:u32le payload[length]
 *
 * where crc is CRC-32 (IEEE) of the payload bytes. Appends take an
 * exclusive flock and issue one write() of the whole frame (plus an
 * optional fsync), so concurrent writers — the daemon and its
 * crash-isolated children share one store — serialize cleanly and a
 * SIGKILL can tear at most the final frame.
 *
 * recover() is the startup path: it scans the file, loads every intact
 * payload, TRUNCATES a torn tail (the only damage a killed writer can
 * cause), QUARANTINES CRC-mismatched middle records into
 * "<path>.quarantine" and compacts them out of the live file, and
 * reports exactly what it dropped. A file with a foreign or missing
 * magic line is treated as not-a-journal: left untouched until the
 * first append rewrites it.
 *
 * checkpoint() compacts: it rewrites the journal with exactly the given
 * records via temp-file + fsync + rename, so a crash mid-compaction
 * leaves the previous journal intact.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lbsim
{

/** What Journal::recover() found and repaired. */
struct JournalRecovery
{
    /** Intact records loaded. */
    std::size_t recordsLoaded = 0;
    /** CRC-mismatched records moved to the quarantine file. */
    std::size_t quarantined = 0;
    /** Torn-tail bytes truncated off the end. */
    std::uint64_t truncatedBytes = 0;
    /** File was missing or carried a foreign magic line. */
    bool freshStart = false;
    /** One-line human-readable summary of the above. */
    std::string summary() const;
};

/** Append-only CRC-framed record log (format lbsim-journal-v1). */
class Journal
{
  public:
    /** @param path Journal location; created on the first append. */
    explicit Journal(std::string path);

    /**
     * Scan the journal, load every intact payload into @p records (in
     * append order), and repair the file: truncate a torn tail,
     * quarantine corrupt middle records into path()+".quarantine" and
     * compact them out. Safe to call on a missing file (fresh start).
     * Returns false — with a reason in @p error — only on I/O failure;
     * corruption is never an error, it is what recovery is for.
     */
    bool recover(std::vector<std::string> &records,
                 JournalRecovery &report, std::string *error = nullptr);

    /**
     * Append one record. Creates the file (with its magic line) when
     * absent; takes an exclusive flock so concurrent appenders — other
     * threads or other processes — cannot interleave frames.
     */
    bool append(const std::string &payload, std::string *error = nullptr);

    /**
     * Atomically rewrite the journal to contain exactly @p records
     * (temp file + fsync + rename). The compaction half of the
     * write-ahead scheme: callers fold superseded records first.
     */
    bool checkpoint(const std::vector<std::string> &records,
                    std::string *error = nullptr);

    const std::string &path() const { return path_; }

    /** Version line heading every journal file (no newline). */
    static const char *magicLine();

    /** Serialize one frame (length + crc + payload) — exposed for
     *  tests that hand-build corrupt journals. */
    static std::string frameRecord(const std::string &payload);

    /** Sanity bound on a single record; larger lengths mean a corrupt
     *  length field, from which framing cannot resync. */
    static constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

  private:
    std::string path_;
};

} // namespace lbsim
