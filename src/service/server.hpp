/**
 * @file
 * SweepServer: the engine room of the lbsimd daemon.
 *
 * Accepts ExperimentPlan submissions over a Unix domain socket (wire
 * protocol in service/wire.hpp), schedules their cells on a worker
 * pool, and streams per-cell results back as they complete. Three
 * properties the batch tools cannot provide individually:
 *
 *  - DURABILITY. Results persist through the journal-backed MemoCache
 *    (lbsim-journal-v1), so a SIGKILL loses at most the cells in
 *    flight. Queued plans are additionally persisted in a second
 *    journal of admit/done records; on restart, plans admitted but not
 *    finished are re-enqueued under a synthetic "(recovery)" client and
 *    their already-computed cells replay from the memo cache instead of
 *    re-simulating.
 *
 *  - ADMISSION CONTROL. The cell queue is bounded globally and
 *    per-client; a submission that would exceed either bound — or that
 *    fails validation — receives an explicit shed frame within the
 *    submit handler itself (no queueing, no waiting on workers) and the
 *    connection closes. A client can always distinguish "rejected" from
 *    "slow". Per-cell deadlines ride the fork-isolation watchdog, and
 *    crashed cells are retried with exponential backoff up to a
 *    per-plan cap.
 *
 *  - FAIR SCHEDULING. Cells are queued per client and dispatched by
 *    priority, ties rotated round-robin across clients, so one client's
 *    1000-cell sweep cannot starve another's smoke test.
 *
 * Lifecycle: start() binds and recovers, run() accepts until
 * requestStop() (the SIGTERM path — async-signal-safe) drains in-flight
 * cells, re-persists still-queued plans, and compacts both journals.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"
#include "service/journal.hpp"
#include "service/wire.hpp"

namespace lbsim
{

/** SweepServer tuning knobs. */
struct ServerOptions
{
    /** Unix-domain socket path; unlinked and re-bound on start. */
    std::string socketPath = "lbsimd.sock";
    /** Worker threads executing cells. */
    unsigned workers = 1;
    /** Global bound on queued (not yet running) cells. */
    std::size_t maxQueuedCells = 1024;
    /** Per-client bound on queued cells. */
    std::size_t perClientQueuedCells = 512;
    /** Path of the queued-plans journal; empty disables resume. */
    std::string plansJournalPath = "lbsimd_plans.journal";
    /** Fork-isolate every cell (deadline cells always isolate). */
    bool isolateCells = false;
    /** Base backoff before retrying a crashed cell; doubles per
     *  attempt of that cell. */
    unsigned retryBackoffMs = 50;
};

/** Monotonic counters exposed via the stats message. */
struct ServerStats
{
    std::uint64_t plansAccepted = 0;
    std::uint64_t plansShed = 0;
    std::uint64_t plansResumed = 0;
    std::uint64_t plansCompleted = 0;
    std::uint64_t cellsCompleted = 0;
    std::uint64_t cellsFailed = 0;
    std::uint64_t cellsRetried = 0;
};

/** Persistent sweep daemon core (socket + queue + worker pool). */
class SweepServer
{
  public:
    explicit SweepServer(ServerOptions options);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /**
     * Bind the socket, recover the plans journal (re-enqueueing
     * unfinished plans), and spawn the worker pool. @return false with
     * @p error on failure (socket in use, unreadable journal...).
     */
    bool start(std::string *error = nullptr);

    /**
     * Accept and serve connections until requestStop(). Returns 0 on a
     * graceful drain. Runs on the caller's thread.
     */
    int run();

    /**
     * Begin a graceful shutdown: stop accepting, let in-flight cells
     * finish, keep still-queued plans persisted for the next start.
     * Async-signal-safe (one write to a pipe), so it may be called
     * straight from a SIGTERM handler.
     */
    void requestStop();

    /** Counter snapshot (also served over the wire as "stats"). */
    ServerStats stats() const;

    /** Queued-but-not-running cell count (admission pressure). */
    std::size_t queuedCells() const;

    const ServerOptions &options() const { return options_; }

  private:
    struct ClientConn;
    struct PlanState;
    struct CellTask;

    void connectionLoop(std::shared_ptr<ClientConn> conn);
    void handleSubmit(const std::shared_ptr<ClientConn> &conn,
                      const JsonValue &message);
    void workerLoop();
    /** Pop the next task honoring priority + round-robin fairness.
     *  Blocks; returns false when draining and the queue is empty. */
    bool popTask(CellTask &task);
    void executeTask(const CellTask &task);
    void deliverResult(const CellTask &task, const CellResult &result);
    void enqueuePlan(const std::shared_ptr<PlanState> &plan)
        LB_REQUIRES(mutex_);
    bool recoverPlans(std::string *error);
    void persistQueuedPlans();
    std::string statsMessage() const;

    ServerOptions options_;
    Journal plansJournal_;
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    std::vector<std::thread> workers_;
    std::vector<std::thread> connections_;

    mutable Mutex mutex_;
    std::condition_variable queueCv_;
    /** Per-client FIFO queues; scheduling picks across them. */
    std::map<std::string, std::deque<CellTask>> queues_
        LB_GUARDED_BY(mutex_);
    /** Round-robin tie-break cursor over client names. */
    std::string rrCursor_ LB_GUARDED_BY(mutex_);
    std::size_t queuedCells_ LB_GUARDED_BY(mutex_) = 0;
    std::size_t runningCells_ LB_GUARDED_BY(mutex_) = 0;
    std::uint64_t nextPlanSeq_ LB_GUARDED_BY(mutex_) = 0;
    /** Plans not yet completed, by id (for persistence + done marks). */
    std::map<std::string, std::shared_ptr<PlanState>> livePlans_
        LB_GUARDED_BY(mutex_);
    /** Open connections; drained (shutdown) on stop so their reader
     *  threads unblock and join. */
    std::vector<std::weak_ptr<ClientConn>> liveConns_
        LB_GUARDED_BY(mutex_);
    ServerStats stats_ LB_GUARDED_BY(mutex_);
};

} // namespace lbsim
