#include "service/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/fs.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define LBSIM_HAVE_POSIX_JOURNAL 1
#endif

namespace lbsim
{
namespace
{

constexpr std::size_t kFrameHeaderBytes = 8;

void
putU32le(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xFF));
    out.push_back(static_cast<char>((value >> 8) & 0xFF));
    out.push_back(static_cast<char>((value >> 16) & 0xFF));
    out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t
getU32le(const std::string &data, std::size_t offset)
{
    return static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[offset])) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(data[offset + 1]))
            << 8) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(data[offset + 2]))
            << 16) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(data[offset + 3]))
            << 24);
}

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
}

/** Best-effort sidecar for records recovery had to drop. */
void
quarantineRecord(const std::string &path, const std::string &payload,
                 std::uint32_t stored_crc, std::uint32_t computed_crc)
{
    std::ofstream out(path, std::ios::app | std::ios::binary);
    if (!out)
        return;
    char head[96];
    std::snprintf(head, sizeof(head),
                  "### quarantined record: %zu bytes, crc stored=%08x "
                  "computed=%08x\n",
                  payload.size(), stored_crc, computed_crc);
    out << head;
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out << '\n';
}

} // namespace

std::string
JournalRecovery::summary() const
{
    std::ostringstream out;
    if (freshStart) {
        out << "fresh journal (no prior records)";
        return out.str();
    }
    out << recordsLoaded << " record(s) recovered";
    if (quarantined)
        out << ", " << quarantined << " corrupt record(s) quarantined";
    if (truncatedBytes)
        out << ", " << truncatedBytes << " torn tail byte(s) truncated";
    if (!quarantined && !truncatedBytes)
        out << ", clean";
    return out.str();
}

Journal::Journal(std::string path) : path_(std::move(path))
{
}

const char *
Journal::magicLine()
{
    return "lbsim-journal-v1";
}

std::string
Journal::frameRecord(const std::string &payload)
{
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    putU32le(frame, static_cast<std::uint32_t>(payload.size()));
    putU32le(frame, crc32(payload));
    frame += payload;
    return frame;
}

bool
Journal::recover(std::vector<std::string> &records,
                 JournalRecovery &report, std::string *error)
{
    records.clear();
    report = JournalRecovery{};

    std::string data;
    {
        std::ifstream probe(path_, std::ios::binary);
        if (!probe) {
            report.freshStart = true;
            return true;
        }
    }
    if (!readFileToString(path_, data, error))
        return false;

    const std::string magic = std::string(magicLine()) + "\n";
    if (data.size() < magic.size() ||
        data.compare(0, magic.size(), magic) != 0) {
        // Foreign or pre-journal file: nothing to load. The file is
        // left untouched; the first append (or checkpoint) resets it.
        report.freshStart = true;
        return true;
    }

    std::size_t pos = magic.size();
    std::size_t good_end = pos;  // End of the last intact frame.
    bool torn = false;
    while (pos < data.size()) {
        if (data.size() - pos < kFrameHeaderBytes) {
            torn = true;  // Header itself is torn.
            break;
        }
        const std::uint32_t length = getU32le(data, pos);
        const std::uint32_t stored_crc = getU32le(data, pos + 4);
        if (length > kMaxRecordBytes ||
            length > data.size() - pos - kFrameHeaderBytes) {
            // Either a torn tail or a corrupt length field; framing
            // cannot resync past it, so everything from here is tail.
            torn = true;
            break;
        }
        const std::string payload =
            data.substr(pos + kFrameHeaderBytes, length);
        const std::uint32_t computed_crc = crc32(payload);
        if (computed_crc == stored_crc) {
            records.push_back(payload);
        } else {
            ++report.quarantined;
            quarantineRecord(path_ + ".quarantine", payload, stored_crc,
                             computed_crc);
        }
        pos += kFrameHeaderBytes + length;
        good_end = pos;
    }
    report.recordsLoaded = records.size();
    if (torn)
        report.truncatedBytes =
            static_cast<std::uint64_t>(data.size() - good_end);

    // Repair: quarantined middles force a compaction (they cannot be
    // cut out in place); a torn tail alone only needs a truncate.
    if (report.quarantined > 0)
        return checkpoint(records, error);
    if (torn) {
#ifdef LBSIM_HAVE_POSIX_JOURNAL
        if (::truncate(path_.c_str(),
                       static_cast<off_t>(good_end)) != 0) {
            setError(error, "truncate " + path_ + ": " +
                                std::strerror(errno));
            return false;
        }
#else
        return checkpoint(records, error);
#endif
    }
    return true;
}

#ifdef LBSIM_HAVE_POSIX_JOURNAL

bool
Journal::append(const std::string &payload, std::string *error)
{
    if (payload.size() > kMaxRecordBytes) {
        setError(error, "record exceeds kMaxRecordBytes");
        return false;
    }
    const int fd =
        ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        setError(error,
                 "open " + path_ + ": " + std::strerror(errno));
        return false;
    }
    // Exclusive lock: frames from concurrent writers (daemon workers,
    // crash-isolated children) must never interleave mid-frame.
    if (::flock(fd, LOCK_EX) != 0) {
        setError(error,
                 "flock " + path_ + ": " + std::strerror(errno));
        ::close(fd);
        return false;
    }

    std::string out;
    struct stat st
    {};
    if (::fstat(fd, &st) == 0 && st.st_size == 0)
        out = std::string(magicLine()) + "\n";
    out += frameRecord(payload);

    bool ok = true;
    std::size_t written = 0;
    while (written < out.size()) {
        const ssize_t n =
            ::write(fd, out.data() + written, out.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error,
                     "write " + path_ + ": " + std::strerror(errno));
            ok = false;
            break;
        }
        written += static_cast<std::size_t>(n);
    }
    // Durability point: once fsync returns, the record survives a
    // SIGKILL or power cut; before it, recovery truncates the tail.
    if (ok && ::fsync(fd) != 0) {
        setError(error,
                 "fsync " + path_ + ": " + std::strerror(errno));
        ok = false;
    }
    ::flock(fd, LOCK_UN);
    ::close(fd);
    return ok;
}

#else // !LBSIM_HAVE_POSIX_JOURNAL

bool
Journal::append(const std::string &payload, std::string *error)
{
    if (payload.size() > kMaxRecordBytes) {
        setError(error, "record exceeds kMaxRecordBytes");
        return false;
    }
    std::string out;
    {
        std::ifstream probe(path_, std::ios::binary | std::ios::ate);
        if (!probe || probe.tellg() == std::streampos(0))
            out = std::string(magicLine()) + "\n";
    }
    out += frameRecord(payload);
    std::ofstream file(path_, std::ios::app | std::ios::binary);
    if (!file) {
        setError(error, "cannot open " + path_);
        return false;
    }
    file.write(out.data(), static_cast<std::streamsize>(out.size()));
    return static_cast<bool>(file);
}

#endif

bool
Journal::checkpoint(const std::vector<std::string> &records,
                    std::string *error)
{
    std::string content = std::string(magicLine()) + "\n";
    for (const std::string &record : records)
        content += frameRecord(record);
    return atomicWriteFile(path_, content, error);
}

} // namespace lbsim
