#include "service/wire.hpp"

#include <cerrno>
#include <cstring>

#include "workload/suite.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define LBSIM_HAVE_POSIX_WIRE 1
#endif

namespace lbsim
{
namespace
{

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
}

std::string
quoted(const std::string &text)
{
    return '"' + JsonWriter::escape(text) + '"';
}

/** Read @p key as a non-negative integer; absent keeps @p out. */
template <typename T>
bool
uintField(const JsonValue &obj, const char *key, T &out,
          std::string &error)
{
    const JsonValue *v = obj.member(key);
    if (!v)
        return true;
    if (!v->isNumber() || v->number < 0) {
        error = std::string("plan field \"") + key +
                "\" must be a non-negative number";
        return false;
    }
    out = static_cast<T>(v->number);
    return true;
}

} // namespace

std::string
serializePlanRequest(const PlanRequest &request)
{
    std::string out = "{";
    out += "\"name\":" + quoted(request.name);
    out += ",\"apps\":[";
    for (std::size_t i = 0; i < request.apps.size(); ++i) {
        if (i)
            out += ',';
        out += quoted(request.apps[i]);
    }
    out += "],\"schemes\":[";
    for (std::size_t i = 0; i < request.schemes.size(); ++i) {
        if (i)
            out += ',';
        out += quoted(request.schemes[i]);
    }
    out += "]";
    out += ",\"smoke\":" + std::string(request.smoke ? "true" : "false");
    out += ",\"sms\":" + std::to_string(request.sms);
    out += ",\"cycles\":" + std::to_string(request.cycles);
    out += ",\"warmup\":" + std::to_string(request.warmup);
    out += ",\"warpLimit\":" + std::to_string(request.warpLimit);
    out += ",\"timeoutCycles\":" + std::to_string(request.timeoutCycles);
    out += ",\"deadlineSec\":" + std::to_string(request.deadlineSec);
    out += ",\"retryCap\":" + std::to_string(request.retryCap);
    out += "}";
    return out;
}

bool
parsePlanRequest(const JsonValue &plan, PlanRequest &request,
                 std::string &error)
{
    request = PlanRequest{};
    if (!plan.isObject()) {
        error = "plan is not a JSON object";
        return false;
    }
    request.name = plan.stringOr("name", request.name);
    request.smoke = plan.boolOr("smoke", false);
    for (const char *listKey : {"apps", "schemes"}) {
        const JsonValue *list = plan.member(listKey);
        if (!list)
            continue;
        if (!list->isArray()) {
            error = std::string("plan field \"") + listKey +
                    "\" must be an array of strings";
            return false;
        }
        for (const JsonValue &entry : list->elements) {
            if (!entry.isString()) {
                error = std::string("plan field \"") + listKey +
                        "\" must be an array of strings";
                return false;
            }
            if (listKey[0] == 'a')
                request.apps.push_back(entry.text);
            else
                request.schemes.push_back(entry.text);
        }
    }
    if (!uintField(plan, "sms", request.sms, error) ||
        !uintField(plan, "cycles", request.cycles, error) ||
        !uintField(plan, "warmup", request.warmup, error) ||
        !uintField(plan, "warpLimit", request.warpLimit, error) ||
        !uintField(plan, "timeoutCycles", request.timeoutCycles, error) ||
        !uintField(plan, "deadlineSec", request.deadlineSec, error) ||
        !uintField(plan, "retryCap", request.retryCap, error)) {
        return false;
    }
    if (request.schemes.empty()) {
        error = "plan names no schemes";
        return false;
    }
    return true;
}

bool
buildExperimentPlan(const PlanRequest &request, ExperimentPlan &plan,
                    std::string &error)
{
    if (request.schemes.empty()) {
        error = "plan names no schemes";
        return false;
    }
    // Resolve apps against the Table-2 suite without appById(), which
    // treats an unknown id as fatal; a bad submission must shed, not
    // kill the daemon.
    std::vector<AppProfile> apps;
    if (request.apps.empty()) {
        apps = benchmarkSuite();
    } else {
        for (const std::string &id : request.apps) {
            const AppProfile *found = nullptr;
            for (const AppProfile &app : benchmarkSuite()) {
                if (app.id == id) {
                    found = &app;
                    break;
                }
            }
            if (!found) {
                error = "unknown application id '" + id + "'";
                return false;
            }
            apps.push_back(*found);
        }
    }

    // Same scaled-chip defaults as the figure benches (bench_common),
    // so service results share memo entries with bench runs.
    GpuConfig gpu;
    gpu.warmupCycles = request.warmup
        ? request.warmup
        : (request.smoke ? 50000 : 200000);
    if (request.timeoutCycles)
        gpu.watchdogCycles = request.timeoutCycles;
    RunnerOptions options;
    options.simSms = request.sms ? request.sms : 2;
    options.maxCycles = request.cycles
        ? request.cycles
        : (request.smoke ? 100000 : 400000);
    options.useMemoCache = true;

    plan = ExperimentPlan(gpu, LbConfig{}, options);
    // Scheme-major, matching crossApps(): deterministic cell order is
    // what makes daemon and --direct artifacts byte-comparable.
    for (const std::string &name : request.schemes) {
        SchemeConfig scheme;
        bool oracle_swl = false;
        if (!schemeByName(name, request.warpLimit, scheme, oracle_swl)) {
            error = "unknown scheme '" + name + "'";
            return false;
        }
        for (const AppProfile &app : apps) {
            if (oracle_swl)
                plan.addBestSwl(app, name);
            else
                plan.add(app, scheme, {}, name);
        }
    }
    return true;
}

// --- Framing ---------------------------------------------------------------

#ifdef LBSIM_HAVE_POSIX_WIRE

bool
writeFrame(int fd, const std::string &payload, std::string *error)
{
    if (payload.size() > kMaxFrameBytes) {
        setError(error, "frame exceeds kMaxFrameBytes");
        return false;
    }
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    frame.push_back(static_cast<char>(length & 0xFF));
    frame.push_back(static_cast<char>((length >> 8) & 0xFF));
    frame.push_back(static_cast<char>((length >> 16) & 0xFF));
    frame.push_back(static_cast<char>((length >> 24) & 0xFF));
    frame += payload;

    std::size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + written, frame.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error,
                     std::string("write: ") + std::strerror(errno));
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

namespace
{

/** Read exactly @p size bytes; false on EOF or error. */
bool
readExact(int fd, char *buffer, std::size_t size, bool &eof,
          std::string *error)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::read(fd, buffer + got, size - got);
        if (n == 0) {
            // EOF at a frame boundary is a clean close; mid-frame it is
            // a torn peer — either way the stream is over.
            eof = true;
            if (got != 0)
                setError(error, "EOF inside a frame");
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error,
                     std::string("read: ") + std::strerror(errno));
            return false;
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
readFrame(int fd, std::string &payload, bool &eof, std::string *error)
{
    payload.clear();
    eof = false;
    char head[4];
    if (!readExact(fd, head, sizeof(head), eof, error))
        return false;
    const std::uint32_t length =
        static_cast<std::uint32_t>(static_cast<unsigned char>(head[0])) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(head[1]))
         << 8) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(head[2]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(head[3]))
         << 24);
    if (length > kMaxFrameBytes) {
        setError(error, "frame length exceeds kMaxFrameBytes");
        return false;
    }
    payload.resize(length);
    return length == 0 ||
           readExact(fd, payload.data(), length, eof, error);
}

#else // !LBSIM_HAVE_POSIX_WIRE

bool
writeFrame(int, const std::string &, std::string *error)
{
    setError(error, "sockets unsupported on this platform");
    return false;
}

bool
readFrame(int, std::string &, bool &, std::string *error)
{
    setError(error, "sockets unsupported on this platform");
    return false;
}

#endif

// --- Message builders ------------------------------------------------------

std::string
submitMessage(const std::string &client, int priority,
              const PlanRequest &request)
{
    return "{\"type\":\"submit\",\"client\":" + quoted(client) +
           ",\"priority\":" + std::to_string(priority) +
           ",\"plan\":" + serializePlanRequest(request) + "}";
}

std::string
statsRequestMessage()
{
    return "{\"type\":\"stats\"}";
}

std::string
acceptedMessage(const std::string &plan_id, std::size_t cells)
{
    return "{\"type\":\"accepted\",\"planId\":" + quoted(plan_id) +
           ",\"cells\":" + std::to_string(cells) + "}";
}

std::string
shedMessage(const std::string &reason, const std::string &detail)
{
    return "{\"type\":\"shed\",\"reason\":" + quoted(reason) +
           ",\"detail\":" + quoted(detail) + "}";
}

std::string
cellMessage(const CellResult &result)
{
    std::string out = "{\"type\":\"cell\"";
    out += ",\"index\":" + std::to_string(result.index);
    out += ",\"app\":" + quoted(result.app);
    out += ",\"scheme\":" + quoted(result.scheme);
    out += ",\"variant\":" + quoted(result.variant);
    out += ",\"ok\":" + std::string(result.ok ? "true" : "false");
    out += ",\"outcome\":" + quoted(runOutcomeName(result.outcome));
    out += ",\"error\":" + quoted(result.error);
    out += ",\"metrics\":" + quoted(serializeRunMetrics(result.metrics));
    out += ",\"hangReport\":" + quoted(result.hangReport);
    out += "}";
    return out;
}

std::string
doneMessage(const std::string &plan_id, std::size_t completed,
            std::size_t failed)
{
    return "{\"type\":\"done\",\"planId\":" + quoted(plan_id) +
           ",\"completed\":" + std::to_string(completed) +
           ",\"failed\":" + std::to_string(failed) + "}";
}

bool
parseCellMessage(const JsonValue &message, CellResult &result,
                 std::string &error)
{
    result = CellResult{};
    if (!message.isObject()) {
        error = "cell message is not an object";
        return false;
    }
    const JsonValue *index = message.member("index");
    if (!index || !index->isNumber() || index->number < 0) {
        error = "cell message lacks a valid index";
        return false;
    }
    result.index = static_cast<std::size_t>(index->number);
    result.app = message.stringOr("app", "");
    result.scheme = message.stringOr("scheme", "");
    result.variant = message.stringOr("variant", "");
    result.ok = message.boolOr("ok", false);
    result.error = message.stringOr("error", "");
    result.hangReport = message.stringOr("hangReport", "");
    if (!parseRunOutcome(message.stringOr("outcome", ""),
                         result.outcome)) {
        error = "cell message carries an unknown outcome";
        return false;
    }
    const std::string metrics = message.stringOr("metrics", "");
    if (!metrics.empty() &&
        !deserializeRunMetrics(metrics, result.metrics)) {
        error = "cell message carries malformed metrics";
        return false;
    }
    result.metrics.appId = result.app;
    result.metrics.schemeName = result.scheme;
    result.metrics.outcome = result.outcome;
    result.metrics.hangReport = result.hangReport;
    return true;
}

} // namespace lbsim
