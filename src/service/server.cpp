#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "harness/memo_cache.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define LBSIM_HAVE_POSIX_SERVER 1
#endif

namespace lbsim
{

/** One accepted connection; shared with the plans it submitted. */
struct SweepServer::ClientConn
{
    int fd = -1;
    /** Serializes event frames from concurrent workers. */
    Mutex writeMutex;
    /** Cleared on the first failed write; later events are dropped. */
    std::atomic<bool> alive{true};

    /** Send one frame, demoting write failures to "client gone". */
    void
    send(const std::string &payload)
    {
        if (!alive.load(std::memory_order_acquire))
            return;
        MutexLock lock(writeMutex);
        if (!writeFrame(fd, payload))
            alive.store(false, std::memory_order_release);
    }
};

/** One admitted plan and its completion bookkeeping. */
struct SweepServer::PlanState
{
    std::string id;
    std::string client;
    int priority = 0;
    PlanRequest request;
    ExperimentPlan plan;
    /** Null for plans recovered from the journal (submitter is gone). */
    std::shared_ptr<ClientConn> conn;
    std::size_t remaining = 0;
    std::size_t failed = 0;
    /** Crashed-cell retries spent; capped by request.retryCap. */
    unsigned retriesUsed = 0;
};

/** One schedulable unit: a cell of an admitted plan. */
struct SweepServer::CellTask
{
    std::shared_ptr<PlanState> plan;
    std::size_t cellIndex = 0;
    /** Zero-based execution attempt (drives the backoff exponent). */
    unsigned attempt = 0;
};

namespace
{

std::string
admitRecord(const std::string &plan_id, const std::string &client,
            int priority, const PlanRequest &request)
{
    return "{\"op\":\"admit\",\"planId\":\"" +
           JsonWriter::escape(plan_id) + "\",\"client\":\"" +
           JsonWriter::escape(client) +
           "\",\"priority\":" + std::to_string(priority) +
           ",\"plan\":" + serializePlanRequest(request) + "}";
}

std::string
doneRecord(const std::string &plan_id)
{
    return "{\"op\":\"done\",\"planId\":\"" +
           JsonWriter::escape(plan_id) + "\"}";
}

} // namespace

SweepServer::SweepServer(ServerOptions options)
    : options_(std::move(options)), plansJournal_(options_.plansJournalPath)
{
    if (options_.workers == 0)
        options_.workers = 1;
}

SweepServer::~SweepServer()
{
    requestStop();
    queueCv_.notify_all();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    for (std::thread &conn : connections_) {
        if (conn.joinable())
            conn.join();
    }
#ifdef LBSIM_HAVE_POSIX_SERVER
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int fd : wakePipe_) {
        if (fd >= 0)
            ::close(fd);
    }
#endif
}

ServerStats
SweepServer::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

std::size_t
SweepServer::queuedCells() const
{
    MutexLock lock(mutex_);
    return queuedCells_;
}

std::string
SweepServer::statsMessage() const
{
    MutexLock lock(mutex_);
    std::string out = "{\"type\":\"stats\"";
    out += ",\"plansAccepted\":" + std::to_string(stats_.plansAccepted);
    out += ",\"plansShed\":" + std::to_string(stats_.plansShed);
    out += ",\"plansResumed\":" + std::to_string(stats_.plansResumed);
    out += ",\"plansCompleted\":" +
           std::to_string(stats_.plansCompleted);
    out += ",\"cellsCompleted\":" +
           std::to_string(stats_.cellsCompleted);
    out += ",\"cellsFailed\":" + std::to_string(stats_.cellsFailed);
    out += ",\"cellsRetried\":" + std::to_string(stats_.cellsRetried);
    out += ",\"queuedCells\":" + std::to_string(queuedCells_);
    out += ",\"runningCells\":" + std::to_string(runningCells_);
    out += "}";
    return out;
}

void
SweepServer::enqueuePlan(const std::shared_ptr<PlanState> &plan)
{
    std::deque<CellTask> &queue = queues_[plan->client];
    for (std::size_t i = 0; i < plan->plan.size(); ++i)
        queue.push_back(CellTask{plan, i, 0});
    queuedCells_ += plan->plan.size();
    livePlans_[plan->id] = plan;
}

bool
SweepServer::recoverPlans(std::string *error)
{
    if (options_.plansJournalPath.empty())
        return true;
    std::vector<std::string> records;
    JournalRecovery report;
    if (!plansJournal_.recover(records, report, error))
        return false;
    if (!report.freshStart)
        logMessage(LogLevel::Inform, "plans journal: %s",
                   report.summary().c_str());

    struct Admit
    {
        std::string client;
        int priority = 0;
        PlanRequest request;
    };
    // Replay in order: admit registers, done retires. Last state wins.
    std::vector<std::pair<std::string, Admit>> admitted;
    for (const std::string &record : records) {
        JsonValue value;
        if (!parseJson(record, value) || !value.isObject())
            continue; // Foreign record; recovery already CRC-checked.
        const std::string op = value.stringOr("op", "");
        const std::string id = value.stringOr("planId", "");
        if (op == "admit") {
            const JsonValue *planValue = value.member("plan");
            Admit admit;
            std::string why;
            if (!planValue ||
                !parsePlanRequest(*planValue, admit.request, why))
                continue;
            admit.client = value.stringOr("client", "(recovery)");
            admit.priority =
                static_cast<int>(value.numberOr("priority", 0));
            admitted.emplace_back(id, std::move(admit));
        } else if (op == "done") {
            admitted.erase(
                std::remove_if(admitted.begin(), admitted.end(),
                               [&id](const auto &entry) {
                                   return entry.first == id;
                               }),
                admitted.end());
        }
    }

    MutexLock lock(mutex_);
    for (auto &[id, admit] : admitted) {
        auto plan = std::make_shared<PlanState>();
        plan->id = id;
        plan->client = admit.client;
        plan->priority = admit.priority;
        plan->request = admit.request;
        std::string why;
        if (!buildExperimentPlan(admit.request, plan->plan, why)) {
            logMessage(LogLevel::Warn,
                       "dropping unresumable plan %s: %s", id.c_str(),
                       why.c_str());
            continue;
        }
        plan->remaining = plan->plan.size();
        enqueuePlan(plan);
        ++stats_.plansResumed;
        // Keep new ids clear of every recovered one.
        if (id.size() > 1 && id[0] == 'p') {
            const std::uint64_t seq =
                std::strtoull(id.c_str() + 1, nullptr, 10);
            nextPlanSeq_ = std::max(nextPlanSeq_, seq + 1);
        }
    }
    return true;
}

#ifdef LBSIM_HAVE_POSIX_SERVER

bool
SweepServer::start(std::string *error)
{
    // Workers write event frames into sockets whose peer may have been
    // killed; without this a dead client would SIGPIPE the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    if (!recoverPlans(error))
        return false;

    if (::pipe(wakePipe_) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + options_.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        if (error)
            *error = "bind/listen " + options_.socketPath + ": " +
                     std::strerror(errno);
        return false;
    }

    workers_.reserve(options_.workers);
    for (unsigned w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

int
SweepServer::run()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents & POLLIN)
            break; // requestStop() poked the pipe.
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<ClientConn>();
        conn->fd = fd;
        {
            MutexLock lock(mutex_);
            liveConns_.push_back(conn);
        }
        connections_.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }

    // Graceful drain: no new connections or tasks; in-flight cells
    // finish (their results are already durable via the memo journal).
    stopping_.store(true, std::memory_order_release);
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(options_.socketPath.c_str());
    queueCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    // Unblock connection readers parked in readFrame(); their clients
    // already received every event the drained workers produced.
    {
        MutexLock lock(mutex_);
        for (const std::weak_ptr<ClientConn> &weak : liveConns_) {
            if (const std::shared_ptr<ClientConn> conn = weak.lock())
                ::shutdown(conn->fd, SHUT_RDWR);
        }
        liveConns_.clear();
    }
    for (std::thread &conn : connections_)
        conn.join();
    connections_.clear();

    persistQueuedPlans();
    MemoCache::shared().compact();
    return 0;
}

void
SweepServer::requestStop()
{
    // Async-signal-safe: one atomic store and one pipe write. The CV
    // broadcast happens on the run() thread once poll() wakes.
    stopping_.store(true, std::memory_order_release);
    if (wakePipe_[1] >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n =
            ::write(wakePipe_[1], &byte, 1);
    }
}

void
SweepServer::connectionLoop(std::shared_ptr<ClientConn> conn)
{
    for (;;) {
        std::string payload;
        bool eof = false;
        if (!readFrame(conn->fd, payload, eof))
            break;
        JsonValue message;
        std::string why;
        if (!parseJson(payload, message, &why) || !message.isObject()) {
            conn->send(shedMessage("bad-request",
                                   "unparseable frame: " + why));
            break;
        }
        const std::string type = message.stringOr("type", "");
        if (type == "stats") {
            conn->send(statsMessage());
        } else if (type == "submit") {
            handleSubmit(conn, message);
        } else {
            conn->send(shedMessage("bad-request",
                                   "unknown message type '" + type +
                                       "'"));
            break;
        }
    }
    conn->alive.store(false, std::memory_order_release);
    ::close(conn->fd);
}

void
SweepServer::handleSubmit(const std::shared_ptr<ClientConn> &conn,
                          const JsonValue &message)
{
    const std::string client = message.stringOr("client", "anon");
    const int priority =
        static_cast<int>(message.numberOr("priority", 0));

    // Validation errors shed before touching the queue at all.
    PlanRequest request;
    ExperimentPlan built;
    std::string why;
    const JsonValue *planValue = message.member("plan");
    if (!planValue || !parsePlanRequest(*planValue, request, why) ||
        !buildExperimentPlan(request, built, why)) {
        MutexLock lock(mutex_);
        ++stats_.plansShed;
        conn->send(shedMessage("bad-plan", why));
        return;
    }

    std::string plan_id;
    {
        MutexLock lock(mutex_);
        // Admission control: every rejection is an explicit frame sent
        // from this handler — a client never hangs waiting on a full
        // queue, and the bound holds no matter how many clients pile
        // on.
        if (stopping_.load(std::memory_order_acquire)) {
            ++stats_.plansShed;
            conn->send(shedMessage("draining", "daemon is stopping"));
            return;
        }
        if (queuedCells_ + built.size() > options_.maxQueuedCells) {
            ++stats_.plansShed;
            conn->send(shedMessage(
                "queue-full",
                std::to_string(queuedCells_) + " cells queued, plan of " +
                    std::to_string(built.size()) + " would exceed " +
                    std::to_string(options_.maxQueuedCells)));
            return;
        }
        const auto it = queues_.find(client);
        const std::size_t client_queued =
            it == queues_.end() ? 0 : it->second.size();
        if (client_queued + built.size() >
            options_.perClientQueuedCells) {
            ++stats_.plansShed;
            conn->send(shedMessage(
                "quota", "client '" + client + "' has " +
                             std::to_string(client_queued) +
                             " cells queued; quota is " +
                             std::to_string(
                                 options_.perClientQueuedCells)));
            return;
        }

        plan_id = "p" + std::to_string(nextPlanSeq_++);
        auto plan = std::make_shared<PlanState>();
        plan->id = plan_id;
        plan->client = client;
        plan->priority = priority;
        plan->request = request;
        plan->plan = std::move(built);
        plan->conn = conn;
        plan->remaining = plan->plan.size();
        enqueuePlan(plan);
        ++stats_.plansAccepted;
        conn->send(acceptedMessage(plan_id, plan->plan.size()));
    }
    // Durability point for the admission: after this record is on disk,
    // a SIGKILL cannot lose the plan — restart re-enqueues it.
    if (!options_.plansJournalPath.empty())
        plansJournal_.append(
            admitRecord(plan_id, client, priority, request));
    queueCv_.notify_all();
}

// Condition-variable waits go through mutex_.native(), which the
// capability analysis cannot see; the lock discipline here is the
// std::unique_lock itself.
bool
SweepServer::popTask(CellTask &task) LB_NO_THREAD_SAFETY_ANALYSIS
{
    std::unique_lock<std::mutex> lock(mutex_.native());
    for (;;) {
        queueCv_.wait(lock, [this] {
            if (stopping_.load(std::memory_order_acquire))
                return true;
            for (const auto &[client, queue] : queues_) {
                if (!queue.empty())
                    return true;
            }
            return false;
        });
        if (stopping_.load(std::memory_order_acquire))
            return false; // Drain: queued work stays persisted.

        // Highest head priority wins; ties rotate round-robin across
        // clients so equal-priority submitters share the pool evenly.
        int best_priority = 0;
        bool found = false;
        for (const auto &[client, queue] : queues_) {
            if (queue.empty())
                continue;
            const int p = queue.front().plan->priority;
            if (!found || p > best_priority) {
                best_priority = p;
                found = true;
            }
        }
        if (!found)
            continue;
        // First candidate strictly after the cursor, wrapping.
        std::string chosen;
        for (int wrap = 0; wrap < 2 && chosen.empty(); ++wrap) {
            for (const auto &[client, queue] : queues_) {
                if (queue.empty() ||
                    queue.front().plan->priority != best_priority)
                    continue;
                if (wrap == 0 && client <= rrCursor_)
                    continue;
                chosen = client;
                break;
            }
        }
        if (chosen.empty())
            continue;
        rrCursor_ = chosen;
        std::deque<CellTask> &queue = queues_[chosen];
        task = queue.front();
        queue.pop_front();
        if (queue.empty())
            queues_.erase(chosen);
        --queuedCells_;
        ++runningCells_;
        return true;
    }
}

void
SweepServer::workerLoop()
{
    CellTask task;
    while (popTask(task)) {
        executeTask(task);
        task = CellTask{}; // Drop plan refs while blocked in popTask.
    }
}

void
SweepServer::executeTask(const CellTask &task)
{
    const PlanState &plan = *task.plan;
    EngineOptions engine;
    // A deadline needs a forked child so the alarm-based watchdog can
    // kill the cell without taking the worker down.
    engine.isolateCells =
        options_.isolateCells || plan.request.deadlineSec > 0;
    engine.cellTimeoutSec = plan.request.deadlineSec;
    engine.maxRetries = 0; // Retries are scheduled, not looped, here.
    const CellResult result = runExperimentCell(
        plan.plan.cells()[task.cellIndex], engine, task.cellIndex);

    if (result.outcome == RunOutcome::Crashed) {
        bool retry = false;
        {
            MutexLock lock(mutex_);
            if (task.plan->retriesUsed < plan.request.retryCap) {
                ++task.plan->retriesUsed;
                ++stats_.cellsRetried;
                retry = true;
            }
        }
        if (retry) {
            // Exponential backoff, then back of the client's queue.
            const unsigned shift = std::min(task.attempt, 10u);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::uint64_t>(options_.retryBackoffMs)
                << shift));
            {
                MutexLock lock(mutex_);
                queues_[task.plan->client].push_back(CellTask{
                    task.plan, task.cellIndex, task.attempt + 1});
                ++queuedCells_;
                --runningCells_;
            }
            queueCv_.notify_all();
            return;
        }
    }
    deliverResult(task, result);
}

void
SweepServer::deliverResult(const CellTask &task, const CellResult &result)
{
    if (task.plan->conn)
        task.plan->conn->send(cellMessage(result));

    bool plan_done = false;
    std::size_t failed = 0;
    {
        MutexLock lock(mutex_);
        --runningCells_;
        ++stats_.cellsCompleted;
        if (!result.ok) {
            ++stats_.cellsFailed;
            ++task.plan->failed;
        }
        if (--task.plan->remaining == 0) {
            plan_done = true;
            failed = task.plan->failed;
            ++stats_.plansCompleted;
            livePlans_.erase(task.plan->id);
        }
    }
    if (!plan_done)
        return;
    // Retire the plan durably before telling the client: a kill between
    // the two at worst repeats memo-cached lookups on resume, never
    // loses the completion.
    if (!options_.plansJournalPath.empty())
        plansJournal_.append(doneRecord(task.plan->id));
    if (task.plan->conn)
        task.plan->conn->send(doneMessage(
            task.plan->id, task.plan->plan.size(), failed));
}

void
SweepServer::persistQueuedPlans()
{
    if (options_.plansJournalPath.empty())
        return;
    std::vector<std::string> records;
    {
        MutexLock lock(mutex_);
        for (const auto &[id, plan] : livePlans_) {
            records.push_back(admitRecord(id, plan->client,
                                          plan->priority,
                                          plan->request));
        }
    }
    // Compaction doubles as the done-marker fold: completed plans
    // simply are not in livePlans_ anymore.
    plansJournal_.checkpoint(records);
}

#else // !LBSIM_HAVE_POSIX_SERVER

bool
SweepServer::start(std::string *error)
{
    if (error)
        *error = "lbsimd requires Unix domain sockets";
    return false;
}

int
SweepServer::run()
{
    return 1;
}

void
SweepServer::requestStop()
{
    stopping_.store(true, std::memory_order_release);
}

void
SweepServer::connectionLoop(std::shared_ptr<ClientConn>)
{
}

void
SweepServer::handleSubmit(const std::shared_ptr<ClientConn> &,
                          const JsonValue &)
{
}

bool
SweepServer::popTask(CellTask &)
{
    return false;
}

void
SweepServer::workerLoop()
{
}

void
SweepServer::executeTask(const CellTask &)
{
}

void
SweepServer::deliverResult(const CellTask &, const CellResult &)
{
}

void
SweepServer::persistQueuedPlans()
{
}

#endif

} // namespace lbsim
