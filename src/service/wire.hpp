/**
 * @file
 * Wire protocol of the lbsimd sweep service.
 *
 * Transport: a Unix domain stream socket carrying length-prefixed JSON
 * frames — u32le payload length, then exactly that many bytes of UTF-8
 * JSON. Length-prefixing (rather than newline-delimiting) keeps the
 * framing independent of payload content and lets either side reject
 * oversized frames before buffering them.
 *
 * Client -> server messages (the "type" member discriminates):
 *   submit  {"type":"submit","client":C,"priority":P,"plan":{...}}
 *   stats   {"type":"stats"}
 *
 * Server -> client messages:
 *   accepted {"type":"accepted","planId":ID,"cells":N}
 *   shed     {"type":"shed","reason":"queue-full"|"quota"|"bad-plan",
 *             "detail":...}   (connection closes after this frame)
 *   cell     {"type":"cell","index":I,"app":A,"scheme":S,"variant":V,
 *             "ok":B,"outcome":O,"error":E,"metrics":M,"hangReport":H}
 *            where M is the serializeRunMetrics() string, so the client
 *            reconstructs RunMetrics exactly (bit-for-bit doubles).
 *   done     {"type":"done","planId":ID,"completed":N,"failed":F}
 *   stats    {"type":"stats", ...counters...}
 *
 * The plan object is a declarative sweep request (PlanRequest below):
 * apps x schemes on the standard scaled-chip bench configuration, with
 * the same knobs the CLI exposes. buildExperimentPlan() turns it into
 * an ExperimentPlan; lbsim_submit --direct runs that same plan
 * in-process, which is what makes daemon-vs-direct runs comparable
 * byte-for-byte through writeExperimentJson().
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "harness/experiment.hpp"

namespace lbsim
{

/** Declarative sweep submission (the "plan" object of a submit). */
struct PlanRequest
{
    /** Label for artifacts and logs; defaults to "plan". */
    std::string name = "plan";
    /** Table-2 app ids; empty means the whole suite. */
    std::vector<std::string> apps;
    /** Scheme names in the schemeByName() vocabulary. */
    std::vector<std::string> schemes;
    bool smoke = false;
    /** SMs to simulate; 0 keeps the standard 2-SM scaled slice. */
    std::uint32_t sms = 0;
    /** Measured cycles; 0 picks the bench default. */
    std::uint64_t cycles = 0;
    /** Warm-up cycles; 0 picks the bench default. */
    std::uint64_t warmup = 0;
    /** Static warp limit for best-swl; 0 means the oracle sweep. */
    std::uint32_t warpLimit = 0;
    /** Forward-progress watchdog threshold; 0 keeps the default. */
    std::uint64_t timeoutCycles = 0;
    /** Per-cell wall-clock deadline in seconds; 0 = none. Implies
     *  fork isolation for the cell so the deadline can kill it. */
    unsigned deadlineSec = 0;
    /** Retry cap for crashed cells, counted across the whole plan. */
    unsigned retryCap = 2;
};

/** Serialize @p request as the submit "plan" JSON object. */
std::string serializePlanRequest(const PlanRequest &request);

/** Parse a "plan" object. @return false with @p error on bad input. */
bool parsePlanRequest(const JsonValue &plan, PlanRequest &request,
                      std::string &error);

/**
 * Validate @p request against the app suite / scheme registry and
 * expand it into an ExperimentPlan on the standard bench
 * configuration. Deterministic: the same request always yields the
 * same cells in the same order.
 */
bool buildExperimentPlan(const PlanRequest &request, ExperimentPlan &plan,
                         std::string &error);

// --- Framing ---------------------------------------------------------------

/** Largest frame either side accepts (defends both directions). */
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/**
 * Write one length-prefixed frame to @p fd. Returns false on any I/O
 * error (including EPIPE from a vanished peer — callers treat that as
 * "client gone", never as fatal).
 */
bool writeFrame(int fd, const std::string &payload,
                std::string *error = nullptr);

/**
 * Read one frame from @p fd into @p payload. Returns false on EOF,
 * oversized length, or I/O error; @p eof distinguishes a clean close
 * (peer finished) from a protocol failure.
 */
bool readFrame(int fd, std::string &payload, bool &eof,
               std::string *error = nullptr);

// --- Message builders ------------------------------------------------------

std::string submitMessage(const std::string &client, int priority,
                          const PlanRequest &request);
std::string statsRequestMessage();
std::string acceptedMessage(const std::string &plan_id, std::size_t cells);
std::string shedMessage(const std::string &reason,
                        const std::string &detail);
std::string cellMessage(const CellResult &result);
std::string doneMessage(const std::string &plan_id, std::size_t completed,
                        std::size_t failed);

/**
 * Parse a server "cell" frame back into a CellResult (the inverse of
 * cellMessage, metrics included). @return false on malformed input.
 */
bool parseCellMessage(const JsonValue &message, CellResult &result,
                      std::string &error);

} // namespace lbsim
