/**
 * @file
 * Greedy-Then-Oldest warp scheduler.
 *
 * Each SM has four schedulers (Table 1); warp slots are striped across
 * them (slot % 4). GTO keeps issuing from the last-issued warp while it
 * remains ready, otherwise falls back to the oldest (earliest-launched)
 * ready warp — the policy used by the paper's baseline.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/warp.hpp"

namespace lbsim
{

/** One GTO scheduler instance covering a stripe of warp slots. */
class GtoScheduler
{
  public:
    /**
     * @param scheduler_id Stripe index.
     * @param num_schedulers Stripe count (warps with slot % count == id).
     */
    GtoScheduler(std::uint32_t scheduler_id, std::uint32_t num_schedulers);

    /**
     * Pick the warp slot to issue this cycle.
     *
     * Templated over the predicate so the per-warp check inlines into
     * the scan — this runs for every scheduler every cycle over every
     * warp slot, and a type-erased std::function call per slot was one
     * of the largest line items in compute-bound profiles.
     *
     * @param warps All warp slots of the SM.
     * @param order This stripe's resident warp slots in ascending
     *        launch order (Sm::schedOrder_). Scanning it in sequence
     *        and stopping at the first ready warp selects exactly the
     *        min-launch-order ready warp — launch orders are unique —
     *        without evaluating the predicate on the rest of the
     *        stripe, which is the win: after a typical issue the warp
     *        stalls, the greedy probe misses, and the old full-stripe
     *        min-scan paid the predicate on every slot every cycle.
     * @param can_issue Predicate combining warp state, dependence and
     *        controller gating.
     * @return Selected slot or -1 if none is ready.
     */
    template <typename CanIssue>
    std::int32_t
    pick(const std::vector<Warp> &warps,
         const std::vector<std::uint32_t> &order,
         const CanIssue &can_issue)
    {
        // Greedy: stick with the last-issued warp while it stays ready.
        if (lastIssued_ >= 0 &&
            static_cast<std::size_t>(lastIssued_) < warps.size() &&
            can_issue(warps[static_cast<std::size_t>(lastIssued_)])) {
            return lastIssued_;
        }

        // Then-oldest: first ready warp in launch order.
        for (std::uint32_t slot : order) {
            if (can_issue(warps[slot]))
                return static_cast<std::int32_t>(slot);
        }
        return -1;
    }

    /** True if warp @p slot belongs to this scheduler's stripe. */
    bool
    covers(std::uint32_t slot) const
    {
        return slot % stride_ == id_;
    }

    /** Record that @p slot issued (greedy pointer update). */
    void issued(std::uint32_t slot) { lastIssued_ = static_cast<std::int32_t>(slot); }

    /** Forget the greedy pointer (e.g.\ warp finished or throttled). */
    void reset() { lastIssued_ = -1; }

  private:
    std::uint32_t id_;
    std::uint32_t stride_;
    std::int32_t lastIssued_ = -1;
};

} // namespace lbsim
