/**
 * @file
 * Greedy-Then-Oldest warp scheduler.
 *
 * Each SM has four schedulers (Table 1); warp slots are striped across
 * them (slot % 4). GTO keeps issuing from the last-issued warp while it
 * remains ready, otherwise falls back to the oldest (earliest-launched)
 * ready warp — the policy used by the paper's baseline.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "core/warp.hpp"

namespace lbsim
{

/** One GTO scheduler instance covering a stripe of warp slots. */
class GtoScheduler
{
  public:
    /**
     * @param scheduler_id Stripe index.
     * @param num_schedulers Stripe count (warps with slot % count == id).
     */
    GtoScheduler(std::uint32_t scheduler_id, std::uint32_t num_schedulers);

    /**
     * Pick the warp slot to issue this cycle.
     *
     * @param warps All warp slots of the SM.
     * @param can_issue Predicate combining warp state, dependence and
     *        controller gating.
     * @return Selected slot or -1 if none is ready.
     */
    std::int32_t pick(const std::vector<Warp> &warps,
                      const std::function<bool(const Warp &)> &can_issue);

    /** Record that @p slot issued (greedy pointer update). */
    void issued(std::uint32_t slot) { lastIssued_ = static_cast<std::int32_t>(slot); }

    /** Forget the greedy pointer (e.g.\ warp finished or throttled). */
    void reset() { lastIssued_ = -1; }

  private:
    std::uint32_t id_;
    std::uint32_t stride_;
    std::int32_t lastIssued_ = -1;
};

} // namespace lbsim
