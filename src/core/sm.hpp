/**
 * @file
 * Streaming Multiprocessor model.
 *
 * Owns the warp table, CTA table, register file, four GTO schedulers, the
 * LDST unit, and the private L1. Architectural mechanisms (Linebacker,
 * PCAL, static warp limiting) attach as an SmControllerIf that can gate
 * warp issue, request L1 bypass, and observe cycles/CTA events — keeping
 * the core model policy-free.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/kernel.hpp"
#include "core/ldst_unit.hpp"
#include "core/register_file.hpp"
#include "core/scheduler.hpp"
#include "core/warp.hpp"
#include "mem/interconnect.hpp"
#include "mem/l1_cache.hpp"

namespace lbsim
{

class Sm;
class FaultInjector;

/** Policy hook attached to an SM (Linebacker / PCAL / SWL / none). */
class SmControllerIf
{
  public:
    virtual ~SmControllerIf() = default;

    /** Called once per core cycle before issue. */
    virtual void onCycle(Sm &sm, Cycle now)
    {
        (void)sm;
        (void)now;
    }

    /** Extra issue gating (throttling). */
    virtual bool
    warpMayIssue(const Sm &sm, const Warp &warp) const
    {
        (void)sm;
        (void)warp;
        return true;
    }

    /** PCAL bypass attribute for this warp's memory accesses. */
    virtual bool
    warpBypassesL1(const Sm &sm, const Warp &warp) const
    {
        (void)sm;
        (void)warp;
        return false;
    }

    /** CTA lifecycle notifications. */
    virtual void onCtaLaunched(Sm &sm, Cta &cta, Cycle now)
    {
        (void)sm;
        (void)cta;
        (void)now;
    }
    virtual void onCtaCompleted(Sm &sm, Cta &cta, Cycle now)
    {
        (void)sm;
        (void)cta;
        (void)now;
    }

    /**
     * A CTA slot opened up. Return true to consume the opportunity
     * (e.g.\ Linebacker reactivates a throttled CTA before the
     * dispatcher launches a fresh one).
     */
    virtual bool onSchedulingOpportunity(Sm &sm, Cycle now)
    {
        (void)sm;
        (void)now;
        return false;
    }

    /** Statistics were reset at the warm-up boundary. */
    virtual void onMeasurementReset(Sm &sm, Cycle now)
    {
        (void)sm;
        (void)now;
    }

    // --- Tick-skip contract (see GpuConfig::tickSkip) -------------------

    /**
     * Earliest future cycle at which this controller's onCycle() could
     * do anything, or @p now if it must run every cycle. The default is
     * the conservative @p now — unknown controllers never allow a skip.
     * Implementations must return a bound that holds while the SM's
     * state is otherwise frozen (no issue, no memory event).
     */
    virtual Cycle
    nextEventCycle(const Sm &sm, Cycle now) const
    {
        (void)sm;
        return now;
    }

    /**
     * Replay the per-cycle accumulator effects of @p cycles skipped
     * onCycle() calls (called only for cycles nextEventCycle() proved
     * effect-free, so most controllers have nothing to do).
     */
    virtual void onCyclesSkipped(Sm &sm, Cycle cycles)
    {
        (void)sm;
        (void)cycles;
    }

    /**
     * True if the dispatcher calling onSchedulingOpportunity() for this
     * SM could have an effect right now. Gates tick-skip across cycles
     * where a CTA slot is open but the dispatcher is drained: the
     * opportunity callback may still act (e.g.\ Linebacker reactivating
     * a throttled CTA). Conservative default: assume it would.
     */
    virtual bool
    wantsSchedulingOpportunity(const Sm &sm) const
    {
        (void)sm;
        return true;
    }

    /** One-line state summary for hang reports (empty = nothing). */
    virtual std::string statusString() const { return {}; }
};

/** One streaming multiprocessor. */
class Sm : public ResponseSinkIf
{
  public:
    /**
     * @param cfg GPU configuration.
     * @param sm_id This SM's index.
     * @param icnt Interconnect (registers itself as response sink).
     * @param stats Run-wide counters.
     * @param l1_extra_ways CERF/CacheExt capacity extension.
     * @param cerf_unified Route cache data accesses through RF banks.
     * @param fi Optional fault injector exposed to attached mechanisms
     *     (backup-engine stalls, VTT revocation, load-monitor lies).
     */
    Sm(const GpuConfig &cfg, std::uint32_t sm_id, Interconnect *icnt,
       SimStats *stats, std::uint32_t l1_extra_ways = 0,
       bool cerf_unified = false, FaultInjector *fi = nullptr);

    /** Bind the kernel to execute. */
    void setKernel(const KernelInfo *kernel);

    /** Attach the policy controller (may be null). */
    void setController(SmControllerIf *controller)
    {
        controller_ = controller;
    }

    /** Sink for RegRestore responses (Linebacker's backup engine). */
    void setRestoreSink(ResponseSinkIf *sink) { restoreSink_ = sink; }

    /**
     * Try to launch global CTA @p global_cta_id.
     * @return true if resources allowed the launch.
     */
    bool launchCta(std::uint32_t global_cta_id, Cycle now);

    /** True if another CTA of the bound kernel would fit right now. */
    bool canLaunchCta() const;

    /** Advance one core cycle. */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which ticking this SM could have any
     * effect — an instruction issue, a memory event, a CTA retirement,
     * or a controller action — or kNoCycle when only an external event
     * (a response from the crossbar, a dispatcher launch) can wake it.
     * Returns @p now when the SM must be ticked for real. Used by the
     * tick-skip engine; must stay in lockstep with tick().
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Replay the per-cycle occupancy accounting for @p cycles skipped
     * ticks (the accumulators integrate over every cycle, effectful or
     * not) and forward to the controller's onCyclesSkipped(). All
     * accumulators hold integer-valued doubles far below 2^53, so the
     * multiply-add is bit-identical to @p cycles repeated additions.
     */
    void applySkippedCycles(Cycle cycles);

    /** ResponseSinkIf: route fills and restore data. */
    void onResponse(const MemResponse &response, Cycle now) override;

    // --- Throttling interface (used by controllers) ---------------------

    /** Deactivate/reactivate a resident CTA (warp gating only). */
    void setCtaActive(std::uint32_t cta_hw_id, bool active, Cycle now);

    /** Resident CTA hardware ids (valid slots). */
    std::vector<std::uint32_t> residentCtas() const;

    /** Count of resident CTAs currently active. */
    std::uint32_t activeCtaCount() const;

    /** Highest hardware id among active CTAs (throttle order). */
    std::int32_t highestActiveCta() const;

    /** Lowest hardware id among inactive CTAs (reactivation order). */
    std::int32_t lowestInactiveCta() const;

    // --- Accessors -------------------------------------------------------

    std::uint32_t id() const { return id_; }
    const KernelInfo *kernel() const { return kernel_; }
    L1Cache &l1() { return *l1_; }
    const L1Cache &l1() const { return *l1_; }
    RegisterFile &regFile() { return rf_; }
    const RegisterFile &regFile() const { return rf_; }
    Interconnect &interconnect() { return *icnt_; }
    const std::vector<Warp> &warps() const { return warps_; }
    const std::vector<Cta> &ctas() const { return ctas_; }
    Cta &cta(std::uint32_t hw_id) { return ctas_[hw_id]; }
    std::uint64_t instructionsIssued() const { return issued_; }
    SimStats &stats() { return *stats_; }
    FaultInjector *faultInjector() const { return fi_; }

    /** Time-averaged register occupancy (finalize at run end). */
    double avgActiveRegs(Cycle cycles) const;
    double avgDurRegs(Cycle cycles) const;
    double avgSurRegs(Cycle cycles) const;

    /** All resident warps finished and retired. */
    bool idle() const;

    /**
     * Per-SM auditor: register-file bitmap conservation, the warp/CTA
     * tables cross-referencing each other, the CTA register footprint
     * matching the register-file allocation exactly, and the L1
     * (tags + MSHRs + pending fills) being internally consistent.
     */
    void audit(Cycle now) const;

    /** Warp/CTA table summary for failure reports. */
    std::string debugString() const;

    /** Clear time-integrated occupancy accumulators (warm-up reset). */
    void resetOccupancyAccumulators();

  private:
    bool canIssue(const Warp &warp, Cycle now) const;
    void issueWarp(Warp &warp, Cycle now);
    void retireFinishedCtas(Cycle now);

    const GpuConfig &cfg_;
    std::uint32_t id_;
    Interconnect *icnt_;
    SimStats *stats_;
    RegisterFile rf_;
    std::unique_ptr<L1Cache> l1_;
    LdstUnit ldst_;
    std::vector<GtoScheduler> schedulers_;
    std::vector<Warp> warps_;
    std::vector<Cta> ctas_;
    const KernelInfo *kernel_ = nullptr;
    SmControllerIf *controller_ = nullptr;
    FaultInjector *fi_ = nullptr;
    ResponseSinkIf *restoreSink_ = nullptr;
    std::uint64_t issued_ = 0;
    std::uint64_t launchCounter_ = 0;
    std::vector<Addr> lineScratch_;

    /**
     * Per-scheduler resident warp slots in ascending launch order —
     * the stripe each GtoScheduler::pick() scans. Launch orders are
     * assigned from a monotonic counter, so appending at CTA launch
     * keeps each list sorted; retirement erases the CTA's slots. The
     * sorted order lets pick() stop at the first ready warp instead
     * of evaluating the whole stripe per cycle.
     */
    std::vector<std::vector<std::uint32_t>> schedOrder_;

    // Incrementally maintained mirrors of the CTA/warp tables, so the
    // per-cycle paths (canLaunchCta from the dispatcher and the skip
    // probe, occupancy accounting, retirement) are O(1) instead of
    // rescanning every slot. Updated only in launchCta /
    // retireFinishedCtas / setCtaActive / issueWarp — the only
    // mutation points of the mirrored state.
    std::uint32_t freeWarpSlots_ = 0;
    std::uint32_t residentCtas_ = 0;
    std::uint32_t finishedCtas_ = 0;
    std::uint32_t occActiveRegs_ = 0;
    std::uint32_t occDurRegs_ = 0;

    // Time-integrated register occupancy accumulators.
    double activeRegAccum_ = 0;
    double durRegAccum_ = 0;
    double surRegAccum_ = 0;
};

} // namespace lbsim
