#include "core/cta_dispatcher.hpp"

#include "core/sm.hpp"

namespace lbsim
{

CtaDispatcher::CtaDispatcher(const KernelInfo *kernel,
                             std::vector<Sm *> sms)
    : kernel_(kernel), sms_(std::move(sms)),
      controllers_(sms_.size(), nullptr), remaining_(kernel->numCtas)
{
}

void
CtaDispatcher::setControllers(std::vector<SmControllerIf *> controllers)
{
    controllers_ = std::move(controllers);
    controllers_.resize(sms_.size(), nullptr);
}

void
CtaDispatcher::tick(Cycle now)
{
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        Sm *sm = sms_[i];
        while (true) {
            // A scheduling opportunity exists only when the SM has spare
            // resources for another CTA (i.e.\ a resident CTA finished).
            if (!sm->canLaunchCta())
                break;
            // Give throttled CTAs priority over fresh launches.
            if (controllers_[i] &&
                controllers_[i]->onSchedulingOpportunity(*sm, now)) {
                continue;
            }
            if (remaining_ == 0 || !sm->launchCta(nextCta_, now))
                break;
            ++nextCta_;
            --remaining_;
        }
    }
}

} // namespace lbsim
