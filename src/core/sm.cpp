#include "core/sm.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

Sm::Sm(const GpuConfig &cfg, std::uint32_t sm_id, Interconnect *icnt,
       SimStats *stats, std::uint32_t l1_extra_ways, bool cerf_unified,
       FaultInjector *fi)
    : cfg_(cfg), id_(sm_id), icnt_(icnt), stats_(stats), rf_(cfg, stats),
      l1_(std::make_unique<L1Cache>(cfg, sm_id, icnt, stats,
                                    l1_extra_ways)),
      ldst_(cfg, l1_.get(), stats), warps_(cfg.maxWarpsPerSm),
      ctas_(cfg.maxCtasPerSm), fi_(fi)
{
    for (std::uint32_t s = 0; s < cfg.schedulersPerSm; ++s)
        schedulers_.emplace_back(s, cfg.schedulersPerSm);
    schedOrder_.resize(schedulers_.size());
    for (auto &order : schedOrder_)
        order.reserve(warps_.size() / schedulers_.size() + 1);
    for (std::uint32_t slot = 0; slot < warps_.size(); ++slot)
        warps_[slot].smWarpId = slot;
    freeWarpSlots_ = static_cast<std::uint32_t>(warps_.size());
    for (std::uint32_t slot = 0; slot < ctas_.size(); ++slot)
        ctas_[slot].hwId = slot;
    if (cerf_unified)
        l1_->setBankArbiter(&rf_);
    icnt->attachSm(sm_id, this);
}

void
Sm::setKernel(const KernelInfo *kernel)
{
    kernel_ = kernel;
}

bool
Sm::canLaunchCta() const
{
    // O(1) via the incrementally maintained mirrors: this runs every
    // cycle from the dispatcher and the tick-skip probe, and the slot
    // scans it replaced were one of the largest profile lines.
    if (!kernel_)
        return false;
    if (freeWarpSlots_ < kernel_->warpsPerCta)
        return false;
    if (residentCtas_ >= cfg_.maxCtasPerSm)
        return false;
    if ((residentCtas_ + 1) * kernel_->sharedMemPerCta >
        cfg_.sharedMemBytesPerSm) {
        return false;
    }
    return rf_.freeRegs() >= kernel_->regsPerCta();
}

bool
Sm::launchCta(std::uint32_t global_cta_id, Cycle now)
{
    if (!canLaunchCta())
        return false;

    Cta *slot = nullptr;
    for (Cta &cta : ctas_) {
        if (!cta.valid) {
            slot = &cta;
            break;
        }
    }
    if (!slot)
        return false;

    const auto first_reg = rf_.allocate(kernel_->regsPerCta());
    if (!first_reg)
        return false;

    slot->valid = true;
    slot->active = true;
    slot->globalId = global_cta_id;
    slot->warpsFinished = 0;
    slot->firstRegNum = *first_reg;
    slot->numRegs = kernel_->regsPerCta();
    slot->warpSlots.clear();

    std::uint32_t assigned = 0;
    for (Warp &warp : warps_) {
        if (warp.valid)
            continue;
        warp.valid = true;
        warp.active = true;
        warp.finished = false;
        warp.ctaHwId = slot->hwId;
        warp.warpInCta = assigned;
        warp.globalCtaId = global_cta_id;
        warp.launchOrder = launchCounter_++;
        schedOrder_[warp.smWarpId % schedulers_.size()].push_back(
            warp.smWarpId);
        warp.pcIndex = 0;
        warp.iteration = 0;
        warp.waitsOnLoads = kernel_->body[0].dependsOnLoads;
        warp.memNext = kernel_->body[0].op == Opcode::Load ||
                       kernel_->body[0].op == Opcode::Store;
        warp.outstandingLoads = 0;
        warp.readyAt = now;
        slot->warpSlots.push_back(warp.smWarpId);
        if (++assigned == kernel_->warpsPerCta)
            break;
    }
    if (assigned != kernel_->warpsPerCta)
        panic("CTA launch found fewer warp slots than canLaunchCta()");

    freeWarpSlots_ -= kernel_->warpsPerCta;
    ++residentCtas_;
    occActiveRegs_ += slot->numRegs;

    if (controller_)
        controller_->onCtaLaunched(*this, *slot, now);
    return true;
}

void
Sm::setCtaActive(std::uint32_t cta_hw_id, bool active, Cycle now)
{
    (void)now;
    Cta &cta = ctas_[cta_hw_id];
    if (!cta.valid)
        panic("setCtaActive on invalid CTA slot %u", cta_hw_id);
    if (cta.active != active) {
        if (active) {
            occActiveRegs_ += cta.numRegs;
            occDurRegs_ -= cta.numRegs;
        } else {
            occActiveRegs_ -= cta.numRegs;
            occDurRegs_ += cta.numRegs;
        }
    }
    cta.active = active;
    for (std::uint32_t warp_slot : cta.warpSlots)
        warps_[warp_slot].active = active;
    if (!active) {
        for (GtoScheduler &sched : schedulers_)
            sched.reset();
    }
}

std::vector<std::uint32_t>
Sm::residentCtas() const
{
    std::vector<std::uint32_t> ids;
    for (const Cta &cta : ctas_) {
        if (cta.valid)
            ids.push_back(cta.hwId);
    }
    return ids;
}

std::uint32_t
Sm::activeCtaCount() const
{
    std::uint32_t count = 0;
    for (const Cta &cta : ctas_)
        count += (cta.valid && cta.active) ? 1 : 0;
    return count;
}

std::int32_t
Sm::highestActiveCta() const
{
    std::int32_t best = -1;
    for (const Cta &cta : ctas_) {
        if (cta.valid && cta.active)
            best = static_cast<std::int32_t>(cta.hwId);
    }
    return best;
}

std::int32_t
Sm::lowestInactiveCta() const
{
    for (const Cta &cta : ctas_) {
        if (cta.valid && !cta.active)
            return static_cast<std::int32_t>(cta.hwId);
    }
    return -1;
}

bool
Sm::canIssue(const Warp &warp, Cycle now) const
{
    if (!warp.issuable(now))
        return false;
    if (warp.waitsOnLoads && warp.outstandingLoads > 0)
        return false;
    if (warp.memNext && !ldst_.canAccept())
        return false;
    if (controller_ && !controller_->warpMayIssue(*this, warp))
        return false;
    return true;
}

void
Sm::issueWarp(Warp &warp, Cycle now)
{
    const StaticInst &inst = kernel_->body[warp.pcIndex];
    ++issued_;
    ++stats_->instructionsIssued;

    std::uint32_t delay = 0;
    switch (inst.op) {
      case Opcode::Alu:
      case Opcode::Sfu: {
        // Two source operands and one destination cross the banks.
        const Cta &cta = ctas_[warp.ctaHwId];
        const RegNum base =
            cta.firstRegNum + warp.warpInCta * kernel_->regsPerWarp +
            (warp.pcIndex % std::max(1u, kernel_->regsPerWarp - 2));
        delay = rf_.accessOperands(base, 3, now);
        warp.readyAt = now + inst.stallCycles + delay;
        break;
      }
      case Opcode::Load:
      case Opcode::Store: {
        lineScratch_.clear();
        AccessContext ctx;
        ctx.smId = id_;
        ctx.globalCtaId = warp.globalCtaId;
        ctx.warpInCta = warp.warpInCta;
        ctx.iteration = warp.iteration;
        kernel_->patterns[inst.patternId]->generate(ctx, lineScratch_);
        const bool bypass = controller_ &&
            controller_->warpBypassesL1(*this, warp);
        ldst_.issue(warp, inst, lineScratch_, bypass, now);
        const Cta &cta = ctas_[warp.ctaHwId];
        const RegNum base =
            cta.firstRegNum + warp.warpInCta * kernel_->regsPerWarp;
        delay = rf_.accessOperands(base, 2, now);
        warp.readyAt = now + inst.stallCycles + delay;
        break;
      }
    }

    // Advance control flow: wrap the body, count iterations, retire.
    if (++warp.pcIndex == kernel_->body.size()) {
        warp.pcIndex = 0;
        if (++warp.iteration == kernel_->iterations) {
            warp.finished = true;
            Cta &cta = ctas_[warp.ctaHwId];
            if (++cta.warpsFinished == cta.warpSlots.size())
                ++finishedCtas_;
        }
    }
    const StaticInst &next = kernel_->body[warp.pcIndex];
    warp.waitsOnLoads = next.dependsOnLoads;
    warp.memNext =
        next.op == Opcode::Load || next.op == Opcode::Store;
}

void
Sm::retireFinishedCtas(Cycle now)
{
    if (finishedCtas_ == 0)
        return; // Nothing finished since the last retirement pass.
    for (Cta &cta : ctas_) {
        if (!cta.valid || !cta.finished())
            continue;
        // Wait for in-flight loads so register space release is safe.
        bool drained = true;
        for (std::uint32_t warp_slot : cta.warpSlots) {
            if (warps_[warp_slot].outstandingLoads != 0) {
                drained = false;
                break;
            }
        }
        if (!drained)
            continue;

        for (std::uint32_t warp_slot : cta.warpSlots) {
            warps_[warp_slot].valid = false;
            std::vector<std::uint32_t> &order =
                schedOrder_[warp_slot % schedulers_.size()];
            order.erase(std::find(order.begin(), order.end(), warp_slot));
        }
        rf_.release(cta.firstRegNum, cta.numRegs);
        cta.valid = false;
        freeWarpSlots_ += static_cast<std::uint32_t>(cta.warpSlots.size());
        --residentCtas_;
        --finishedCtas_;
        if (cta.active)
            occActiveRegs_ -= cta.numRegs;
        else
            occDurRegs_ -= cta.numRegs;
        ++stats_->ctasCompleted;
        if (controller_)
            controller_->onCtaCompleted(*this, cta, now);
        for (GtoScheduler &sched : schedulers_)
            sched.reset();
    }
}

void
Sm::tick(Cycle now)
{
    CheckScope scope(now, id_);
    rf_.beginCycle(now);
    if (controller_)
        controller_->onCycle(*this, now);

    ldst_.tick(warps_, now);

    const auto can_issue = [this, now](const Warp &warp) {
        return canIssue(warp, now);
    };
    for (std::size_t i = 0; i < schedulers_.size(); ++i) {
        GtoScheduler &sched = schedulers_[i];
        const std::int32_t slot = sched.pick(warps_, schedOrder_[i],
                                             can_issue);
        if (slot < 0)
            continue;
        issueWarp(warps_[static_cast<std::uint32_t>(slot)], now);
        sched.issued(static_cast<std::uint32_t>(slot));
    }

    retireFinishedCtas(now);

    // Register occupancy accounting (Figs 4 and 9), from the O(1)
    // mirrors instead of a per-cycle CTA-table scan.
    activeRegAccum_ += occActiveRegs_;
    durRegAccum_ += occDurRegs_;
    surRegAccum_ += rf_.totalRegs() - rf_.allocatedRegs();
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    // Mirrors tick() stage by stage: controller, LDST/L1, issue,
    // retirement. Any stage that could act this cycle returns now.
    Cycle bound = kNoCycle;

    if (controller_) {
        const Cycle at = controller_->nextEventCycle(*this, now);
        if (at <= now)
            return now;
        if (at < bound)
            bound = at;
    }

    // LDST completions drain from the L1's min-ordered queue.
    const Cycle completion = l1_->nextCompletionCycle();
    if (completion <= now)
        return now;
    if (completion < bound)
        bound = completion;

    // A queued head the L1 would accept makes the LDST tick effectful;
    // a stalled head is a pure retry (no side effects, inputs frozen
    // while the chip idles), so it imposes no bound of its own.
    if (ldst_.headWouldProgress())
        return now;

    // CTA retirement acts as soon as a finished CTA's loads drained.
    if (finishedCtas_ != 0) {
        for (const Cta &cta : ctas_) {
            if (!cta.valid || !cta.finished())
                continue;
            bool drained = true;
            for (std::uint32_t warp_slot : cta.warpSlots) {
                if (warps_[warp_slot].outstandingLoads != 0) {
                    drained = false;
                    break;
                }
            }
            if (drained)
                return now; // retireFinishedCtas() would fire.
            // Not drained: wakes via a load completion (bounded above).
        }
    }

    // Issue stage: replicate canIssue()'s checks per warp. Warps whose
    // block only lifts via a memory event (load completion, queue
    // drain) or a controller action need no bound of their own — those
    // events are bounded above or arrive from the crossbar.
    for (const Warp &warp : warps_) {
        if (!warp.valid || !warp.active || warp.finished)
            continue;
        if (warp.readyAt > now) {
            if (warp.readyAt < bound)
                bound = warp.readyAt;
            continue;
        }
        if (warp.waitsOnLoads && warp.outstandingLoads > 0)
            continue;
        if (warp.memNext && !ldst_.canAccept())
            continue;
        if (controller_ && !controller_->warpMayIssue(*this, warp))
            continue; // Gate state only moves at the controller bound.
        return now; // A scheduler would issue this warp.
    }

    return bound;
}

void
Sm::applySkippedCycles(Cycle cycles)
{
    // Every skipped tick would have reset the register-file bank-use
    // counters (rf_.beginCycle). The reset is visible across phases:
    // CERF's fill-path bank charges run in the interconnect phase and
    // read the residue of the previous cycle's operand accesses, so a
    // fill landing at the wake cycle must see the same clean state the
    // per-cycle resets would have left (one reset equals many).
    rf_.beginCycle(0);

    // Mirror of tick()'s occupancy accounting, multiplied out. Every
    // accumulator holds integer-valued doubles far below 2^53, so the
    // multiply-add is bit-identical to `cycles` repeated additions.
    activeRegAccum_ += static_cast<double>(occActiveRegs_) * cycles;
    durRegAccum_ += static_cast<double>(occDurRegs_) * cycles;
    surRegAccum_ +=
        static_cast<double>(rf_.totalRegs() - rf_.allocatedRegs()) *
        cycles;
    if (controller_)
        controller_->onCyclesSkipped(*this, cycles);
}

void
Sm::onResponse(const MemResponse &response, Cycle now)
{
    switch (response.kind) {
      case RequestKind::DataRead:
        l1_->fill(response.lineAddr, now);
        break;
      case RequestKind::RegRestore:
        if (restoreSink_)
            restoreSink_->onResponse(response, now);
        else
            panic("RegRestore response with no restore sink");
        break;
      case RequestKind::DataWrite:
      case RequestKind::RegBackup:
        panic("unexpected response kind");
    }
}

double
Sm::avgActiveRegs(Cycle cycles) const
{
    return cycles ? activeRegAccum_ / cycles : 0.0;
}

double
Sm::avgDurRegs(Cycle cycles) const
{
    return cycles ? durRegAccum_ / cycles : 0.0;
}

double
Sm::avgSurRegs(Cycle cycles) const
{
    return cycles ? surRegAccum_ / cycles : 0.0;
}

void
Sm::resetOccupancyAccumulators()
{
    activeRegAccum_ = 0;
    durRegAccum_ = 0;
    surRegAccum_ = 0;
}

bool
Sm::idle() const
{
    return residentCtas_ == 0;
}

void
Sm::audit(Cycle now) const
{
    CheckScope scope(now, id_);
    rf_.audit();
    // Generous fill-latency bound: two interconnect hops, the L2 lookup,
    // and heavily congested DRAM queues stay well inside it.
    l1_->audit(now, 4 * (2 * cfg_.icntLatency + cfg_.l2Latency + 25000));

    StateDumpScope dump([this] { return debugString(); });

    // CTA register footprints and the register file must agree exactly:
    // CTAs are the only allocator.
    std::uint32_t cta_regs = 0;
    std::uint32_t warps_expected = 0;
    for (const Cta &cta : ctas_) {
        if (!cta.valid)
            continue;
        cta_regs += cta.numRegs;
        warps_expected += static_cast<std::uint32_t>(cta.warpSlots.size());
        LB_AUDIT(rf_.isAllocated(cta.firstRegNum, cta.numRegs),
                 "CTA %u claims registers [%u, %u) but the register file "
                 "has them free",
                 cta.hwId, cta.firstRegNum, cta.firstRegNum + cta.numRegs);
        LB_AUDIT(cta.warpsFinished <= cta.warpSlots.size(),
                 "CTA %u finished %u of %zu warps", cta.hwId,
                 cta.warpsFinished, cta.warpSlots.size());
        for (std::uint32_t warp_slot : cta.warpSlots) {
            LB_AUDIT(warp_slot < warps_.size(),
                     "CTA %u references warp slot %u out of range",
                     cta.hwId, warp_slot);
            const Warp &warp = warps_[warp_slot];
            LB_AUDIT(warp.valid && warp.ctaHwId == cta.hwId,
                     "warp slot %u should belong to CTA %u but is "
                     "valid=%d cta=%u",
                     warp_slot, cta.hwId, warp.valid ? 1 : 0,
                     warp.ctaHwId);
            LB_AUDIT(warp.finished || warp.active == cta.active,
                     "warp slot %u active bit %d disagrees with CTA %u "
                     "active bit %d",
                     warp_slot, warp.active ? 1 : 0, cta.hwId,
                     cta.active ? 1 : 0);
        }
    }
    LB_AUDIT(cta_regs == rf_.allocatedRegs(),
             "resident CTAs own %u registers but the register file has "
             "%u allocated",
             cta_regs, rf_.allocatedRegs());

    std::uint32_t warps_valid = 0;
    for (const Warp &warp : warps_) {
        if (!warp.valid)
            continue;
        ++warps_valid;
        LB_AUDIT(warp.ctaHwId < ctas_.size() &&
                     ctas_[warp.ctaHwId].valid,
                 "valid warp slot %u belongs to invalid CTA %u",
                 warp.smWarpId, warp.ctaHwId);
        if (kernel_) {
            // The decode cache must mirror the body at pcIndex — the
            // issue scans trust it instead of re-reading the kernel.
            const StaticInst &inst = kernel_->body[warp.pcIndex];
            LB_AUDIT(warp.waitsOnLoads == inst.dependsOnLoads &&
                         warp.memNext == (inst.op == Opcode::Load ||
                                          inst.op == Opcode::Store),
                     "warp slot %u decode cache (loads=%d mem=%d) "
                     "disagrees with body[%u]",
                     warp.smWarpId, warp.waitsOnLoads ? 1 : 0,
                     warp.memNext ? 1 : 0, warp.pcIndex);
        }
    }
    LB_AUDIT(warps_valid == warps_expected,
             "%u valid warps but CTA tables reference %u", warps_valid,
             warps_expected);

    // The O(1) mirrors must track the tables they summarize.
    std::uint32_t resident = 0;
    std::uint32_t finished = 0;
    std::uint32_t active_regs = 0;
    std::uint32_t dur_regs = 0;
    for (const Cta &cta : ctas_) {
        if (!cta.valid)
            continue;
        ++resident;
        finished += cta.finished() ? 1 : 0;
        if (cta.active)
            active_regs += cta.numRegs;
        else
            dur_regs += cta.numRegs;
    }
    LB_AUDIT(residentCtas_ == resident && finishedCtas_ == finished,
             "CTA mirrors resident=%u finished=%u but tables say %u/%u",
             residentCtas_, finishedCtas_, resident, finished);
    LB_AUDIT(occActiveRegs_ == active_regs && occDurRegs_ == dur_regs,
             "occupancy mirrors %u/%u but CTA tables say %u/%u",
             occActiveRegs_, occDurRegs_, active_regs, dur_regs);
    LB_AUDIT(freeWarpSlots_ ==
                 static_cast<std::uint32_t>(warps_.size()) - warps_valid,
             "free-warp mirror %u but %zu slots hold %u valid warps",
             freeWarpSlots_, warps_.size(), warps_valid);

    // Scheduler stripe lists: exactly the valid warps of each stripe,
    // in strictly ascending launch order (pick() relies on the order
    // to early-exit at the oldest ready warp).
    std::uint32_t listed = 0;
    for (std::size_t s = 0; s < schedOrder_.size(); ++s) {
        std::uint64_t prev_order = 0;
        bool first = true;
        for (std::uint32_t slot : schedOrder_[s]) {
            ++listed;
            LB_AUDIT(slot < warps_.size() && warps_[slot].valid,
                     "scheduler %zu stripe lists invalid warp slot %u",
                     s, slot);
            LB_AUDIT(schedulers_[s].covers(slot),
                     "scheduler %zu stripe lists foreign warp slot %u",
                     s, slot);
            LB_AUDIT(first || warps_[slot].launchOrder > prev_order,
                     "scheduler %zu stripe out of launch order at slot "
                     "%u",
                     s, slot);
            prev_order = warps_[slot].launchOrder;
            first = false;
        }
    }
    LB_AUDIT(listed == warps_valid,
             "scheduler stripes list %u warps but %u are valid", listed,
             warps_valid);
}

std::string
Sm::debugString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "Sm %u: %zu CTA slots, %zu warp slots, rf %u/%u\n",
                  id_, ctas_.size(), warps_.size(), rf_.allocatedRegs(),
                  rf_.totalRegs());
    std::string out = buf;
    for (const Cta &cta : ctas_) {
        if (!cta.valid)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "cta=%u global=%u active=%d regs=[%u,%u) warps=%zu "
                      "finished=%u\n",
                      cta.hwId, cta.globalId, cta.active ? 1 : 0,
                      cta.firstRegNum, cta.firstRegNum + cta.numRegs,
                      cta.warpSlots.size(), cta.warpsFinished);
        out += buf;
    }
    return out;
}

} // namespace lbsim
