#include "core/sm.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

Sm::Sm(const GpuConfig &cfg, std::uint32_t sm_id, Interconnect *icnt,
       SimStats *stats, std::uint32_t l1_extra_ways, bool cerf_unified,
       FaultInjector *fi)
    : cfg_(cfg), id_(sm_id), icnt_(icnt), stats_(stats), rf_(cfg, stats),
      l1_(std::make_unique<L1Cache>(cfg, sm_id, icnt, stats,
                                    l1_extra_ways)),
      ldst_(cfg, l1_.get(), stats), warps_(cfg.maxWarpsPerSm),
      ctas_(cfg.maxCtasPerSm), fi_(fi)
{
    for (std::uint32_t s = 0; s < cfg.schedulersPerSm; ++s)
        schedulers_.emplace_back(s, cfg.schedulersPerSm);
    for (std::uint32_t slot = 0; slot < warps_.size(); ++slot)
        warps_[slot].smWarpId = slot;
    for (std::uint32_t slot = 0; slot < ctas_.size(); ++slot)
        ctas_[slot].hwId = slot;
    if (cerf_unified)
        l1_->setBankArbiter(&rf_);
    icnt->attachSm(sm_id, this);
}

void
Sm::setKernel(const KernelInfo *kernel)
{
    kernel_ = kernel;
}

bool
Sm::canLaunchCta() const
{
    if (!kernel_)
        return false;
    std::uint32_t free_warp_slots = 0;
    for (const Warp &warp : warps_)
        free_warp_slots += warp.valid ? 0 : 1;
    if (free_warp_slots < kernel_->warpsPerCta)
        return false;
    std::uint32_t resident = 0;
    std::uint32_t shared_used = 0;
    for (const Cta &cta : ctas_) {
        if (cta.valid) {
            ++resident;
            shared_used += kernel_->sharedMemPerCta;
        }
    }
    if (resident >= cfg_.maxCtasPerSm)
        return false;
    if (shared_used + kernel_->sharedMemPerCta >
        cfg_.sharedMemBytesPerSm) {
        return false;
    }
    return rf_.freeRegs() >= kernel_->regsPerCta();
}

bool
Sm::launchCta(std::uint32_t global_cta_id, Cycle now)
{
    if (!canLaunchCta())
        return false;

    Cta *slot = nullptr;
    for (Cta &cta : ctas_) {
        if (!cta.valid) {
            slot = &cta;
            break;
        }
    }
    if (!slot)
        return false;

    const auto first_reg = rf_.allocate(kernel_->regsPerCta());
    if (!first_reg)
        return false;

    slot->valid = true;
    slot->active = true;
    slot->globalId = global_cta_id;
    slot->warpsFinished = 0;
    slot->firstRegNum = *first_reg;
    slot->numRegs = kernel_->regsPerCta();
    slot->warpSlots.clear();

    std::uint32_t assigned = 0;
    for (Warp &warp : warps_) {
        if (warp.valid)
            continue;
        warp.valid = true;
        warp.active = true;
        warp.finished = false;
        warp.ctaHwId = slot->hwId;
        warp.warpInCta = assigned;
        warp.globalCtaId = global_cta_id;
        warp.launchOrder = launchCounter_++;
        warp.pcIndex = 0;
        warp.iteration = 0;
        warp.outstandingLoads = 0;
        warp.readyAt = now;
        slot->warpSlots.push_back(warp.smWarpId);
        if (++assigned == kernel_->warpsPerCta)
            break;
    }
    if (assigned != kernel_->warpsPerCta)
        panic("CTA launch found fewer warp slots than canLaunchCta()");

    if (controller_)
        controller_->onCtaLaunched(*this, *slot, now);
    return true;
}

void
Sm::setCtaActive(std::uint32_t cta_hw_id, bool active, Cycle now)
{
    (void)now;
    Cta &cta = ctas_[cta_hw_id];
    if (!cta.valid)
        panic("setCtaActive on invalid CTA slot %u", cta_hw_id);
    cta.active = active;
    for (std::uint32_t warp_slot : cta.warpSlots)
        warps_[warp_slot].active = active;
    if (!active) {
        for (GtoScheduler &sched : schedulers_)
            sched.reset();
    }
}

std::vector<std::uint32_t>
Sm::residentCtas() const
{
    std::vector<std::uint32_t> ids;
    for (const Cta &cta : ctas_) {
        if (cta.valid)
            ids.push_back(cta.hwId);
    }
    return ids;
}

std::uint32_t
Sm::activeCtaCount() const
{
    std::uint32_t count = 0;
    for (const Cta &cta : ctas_)
        count += (cta.valid && cta.active) ? 1 : 0;
    return count;
}

std::int32_t
Sm::highestActiveCta() const
{
    std::int32_t best = -1;
    for (const Cta &cta : ctas_) {
        if (cta.valid && cta.active)
            best = static_cast<std::int32_t>(cta.hwId);
    }
    return best;
}

std::int32_t
Sm::lowestInactiveCta() const
{
    for (const Cta &cta : ctas_) {
        if (cta.valid && !cta.active)
            return static_cast<std::int32_t>(cta.hwId);
    }
    return -1;
}

bool
Sm::canIssue(const Warp &warp, Cycle now) const
{
    if (!warp.issuable(now))
        return false;
    const StaticInst &inst = kernel_->body[warp.pcIndex];
    if (inst.dependsOnLoads && warp.outstandingLoads > 0)
        return false;
    if ((inst.op == Opcode::Load || inst.op == Opcode::Store) &&
        !ldst_.canAccept()) {
        return false;
    }
    if (controller_ && !controller_->warpMayIssue(*this, warp))
        return false;
    return true;
}

void
Sm::issueWarp(Warp &warp, Cycle now)
{
    const StaticInst &inst = kernel_->body[warp.pcIndex];
    ++issued_;
    ++stats_->instructionsIssued;

    std::uint32_t delay = 0;
    switch (inst.op) {
      case Opcode::Alu:
      case Opcode::Sfu: {
        // Two source operands and one destination cross the banks.
        const Cta &cta = ctas_[warp.ctaHwId];
        const RegNum base =
            cta.firstRegNum + warp.warpInCta * kernel_->regsPerWarp +
            (warp.pcIndex % std::max(1u, kernel_->regsPerWarp - 2));
        delay = rf_.accessOperands(base, 3, now);
        warp.readyAt = now + inst.stallCycles + delay;
        break;
      }
      case Opcode::Load:
      case Opcode::Store: {
        lineScratch_.clear();
        AccessContext ctx;
        ctx.smId = id_;
        ctx.globalCtaId = warp.globalCtaId;
        ctx.warpInCta = warp.warpInCta;
        ctx.iteration = warp.iteration;
        kernel_->patterns[inst.patternId]->generate(ctx, lineScratch_);
        const bool bypass = controller_ &&
            controller_->warpBypassesL1(*this, warp);
        ldst_.issue(warp, inst, lineScratch_, bypass, now);
        const Cta &cta = ctas_[warp.ctaHwId];
        const RegNum base =
            cta.firstRegNum + warp.warpInCta * kernel_->regsPerWarp;
        delay = rf_.accessOperands(base, 2, now);
        warp.readyAt = now + inst.stallCycles + delay;
        break;
      }
    }

    // Advance control flow: wrap the body, count iterations, retire.
    if (++warp.pcIndex == kernel_->body.size()) {
        warp.pcIndex = 0;
        if (++warp.iteration == kernel_->iterations) {
            warp.finished = true;
            ++ctas_[warp.ctaHwId].warpsFinished;
        }
    }
}

void
Sm::retireFinishedCtas(Cycle now)
{
    for (Cta &cta : ctas_) {
        if (!cta.valid || !cta.finished())
            continue;
        // Wait for in-flight loads so register space release is safe.
        bool drained = true;
        for (std::uint32_t warp_slot : cta.warpSlots) {
            if (warps_[warp_slot].outstandingLoads != 0) {
                drained = false;
                break;
            }
        }
        if (!drained)
            continue;

        for (std::uint32_t warp_slot : cta.warpSlots)
            warps_[warp_slot].valid = false;
        rf_.release(cta.firstRegNum, cta.numRegs);
        cta.valid = false;
        ++stats_->ctasCompleted;
        if (controller_)
            controller_->onCtaCompleted(*this, cta, now);
        for (GtoScheduler &sched : schedulers_)
            sched.reset();
    }
}

void
Sm::tick(Cycle now)
{
    CheckScope scope(now, id_);
    rf_.beginCycle(now);
    if (controller_)
        controller_->onCycle(*this, now);

    ldst_.tick(warps_, now);

    const auto can_issue = [this, now](const Warp &warp) {
        return canIssue(warp, now);
    };
    for (GtoScheduler &sched : schedulers_) {
        const std::int32_t slot = sched.pick(warps_, can_issue);
        if (slot < 0)
            continue;
        issueWarp(warps_[static_cast<std::uint32_t>(slot)], now);
        sched.issued(static_cast<std::uint32_t>(slot));
    }

    retireFinishedCtas(now);

    // Register occupancy accounting (Figs 4 and 9).
    std::uint32_t active_regs = 0;
    std::uint32_t dur_regs = 0;
    for (const Cta &cta : ctas_) {
        if (!cta.valid)
            continue;
        if (cta.active)
            active_regs += cta.numRegs;
        else
            dur_regs += cta.numRegs;
    }
    activeRegAccum_ += active_regs;
    durRegAccum_ += dur_regs;
    surRegAccum_ += rf_.totalRegs() - rf_.allocatedRegs();
}

void
Sm::onResponse(const MemResponse &response, Cycle now)
{
    switch (response.kind) {
      case RequestKind::DataRead:
        l1_->fill(response.lineAddr, now);
        break;
      case RequestKind::RegRestore:
        if (restoreSink_)
            restoreSink_->onResponse(response, now);
        else
            panic("RegRestore response with no restore sink");
        break;
      case RequestKind::DataWrite:
      case RequestKind::RegBackup:
        panic("unexpected response kind");
    }
}

double
Sm::avgActiveRegs(Cycle cycles) const
{
    return cycles ? activeRegAccum_ / cycles : 0.0;
}

double
Sm::avgDurRegs(Cycle cycles) const
{
    return cycles ? durRegAccum_ / cycles : 0.0;
}

double
Sm::avgSurRegs(Cycle cycles) const
{
    return cycles ? surRegAccum_ / cycles : 0.0;
}

void
Sm::resetOccupancyAccumulators()
{
    activeRegAccum_ = 0;
    durRegAccum_ = 0;
    surRegAccum_ = 0;
}

bool
Sm::idle() const
{
    for (const Cta &cta : ctas_) {
        if (cta.valid)
            return false;
    }
    return true;
}

void
Sm::audit(Cycle now) const
{
    CheckScope scope(now, id_);
    rf_.audit();
    // Generous fill-latency bound: two interconnect hops, the L2 lookup,
    // and heavily congested DRAM queues stay well inside it.
    l1_->audit(now, 4 * (2 * cfg_.icntLatency + cfg_.l2Latency + 25000));

    StateDumpScope dump([this] { return debugString(); });

    // CTA register footprints and the register file must agree exactly:
    // CTAs are the only allocator.
    std::uint32_t cta_regs = 0;
    std::uint32_t warps_expected = 0;
    for (const Cta &cta : ctas_) {
        if (!cta.valid)
            continue;
        cta_regs += cta.numRegs;
        warps_expected += static_cast<std::uint32_t>(cta.warpSlots.size());
        LB_AUDIT(rf_.isAllocated(cta.firstRegNum, cta.numRegs),
                 "CTA %u claims registers [%u, %u) but the register file "
                 "has them free",
                 cta.hwId, cta.firstRegNum, cta.firstRegNum + cta.numRegs);
        LB_AUDIT(cta.warpsFinished <= cta.warpSlots.size(),
                 "CTA %u finished %u of %zu warps", cta.hwId,
                 cta.warpsFinished, cta.warpSlots.size());
        for (std::uint32_t warp_slot : cta.warpSlots) {
            LB_AUDIT(warp_slot < warps_.size(),
                     "CTA %u references warp slot %u out of range",
                     cta.hwId, warp_slot);
            const Warp &warp = warps_[warp_slot];
            LB_AUDIT(warp.valid && warp.ctaHwId == cta.hwId,
                     "warp slot %u should belong to CTA %u but is "
                     "valid=%d cta=%u",
                     warp_slot, cta.hwId, warp.valid ? 1 : 0,
                     warp.ctaHwId);
            LB_AUDIT(warp.finished || warp.active == cta.active,
                     "warp slot %u active bit %d disagrees with CTA %u "
                     "active bit %d",
                     warp_slot, warp.active ? 1 : 0, cta.hwId,
                     cta.active ? 1 : 0);
        }
    }
    LB_AUDIT(cta_regs == rf_.allocatedRegs(),
             "resident CTAs own %u registers but the register file has "
             "%u allocated",
             cta_regs, rf_.allocatedRegs());

    std::uint32_t warps_valid = 0;
    for (const Warp &warp : warps_) {
        if (!warp.valid)
            continue;
        ++warps_valid;
        LB_AUDIT(warp.ctaHwId < ctas_.size() &&
                     ctas_[warp.ctaHwId].valid,
                 "valid warp slot %u belongs to invalid CTA %u",
                 warp.smWarpId, warp.ctaHwId);
    }
    LB_AUDIT(warps_valid == warps_expected,
             "%u valid warps but CTA tables reference %u", warps_valid,
             warps_expected);
}

std::string
Sm::debugString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "Sm %u: %zu CTA slots, %zu warp slots, rf %u/%u\n",
                  id_, ctas_.size(), warps_.size(), rf_.allocatedRegs(),
                  rf_.totalRegs());
    std::string out = buf;
    for (const Cta &cta : ctas_) {
        if (!cta.valid)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "cta=%u global=%u active=%d regs=[%u,%u) warps=%zu "
                      "finished=%u\n",
                      cta.hwId, cta.globalId, cta.active ? 1 : 0,
                      cta.firstRegNum, cta.firstRegNum + cta.numRegs,
                      cta.warpSlots.size(), cta.warpsFinished);
        out += buf;
    }
    return out;
}

} // namespace lbsim
