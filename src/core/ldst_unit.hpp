/**
 * @file
 * Load/store unit of one SM.
 *
 * Accepts memory instructions from the schedulers, expands them through
 * their address pattern into line-granular accesses (a divergent warp
 * access yields several lines), and presents them to the L1 at one access
 * per cycle. Completions decrement the issuing warp's outstanding-load
 * count so dependent instructions can issue.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "core/kernel.hpp"
#include "core/warp.hpp"
#include "mem/l1_cache.hpp"

namespace lbsim
{

/** Per-SM load/store unit. */
class LdstUnit
{
  public:
    /**
     * @param cfg GPU configuration.
     * @param l1 The SM's L1 data cache.
     * @param stats Run-wide counters.
     */
    LdstUnit(const GpuConfig &cfg, L1Cache *l1, SimStats *stats);

    /** True if a new memory instruction can be accepted this cycle. */
    bool canAccept() const { return queue_.size() < maxQueued_; }

    /**
     * Accept a memory instruction from warp @p warp.
     *
     * @param warp Issuing warp (outstandingLoads is bumped for loads).
     * @param inst The load/store static instruction.
     * @param lines Line addresses produced by the address pattern.
     * @param bypass_l1 PCAL bypass attribute for this warp.
     * @param now Current cycle.
     */
    void issue(Warp &warp, const StaticInst &inst,
               const std::vector<Addr> &lines, bool bypass_l1, Cycle now);

    /**
     * Advance one cycle: retry/present queued accesses to the L1 and
     * collect completions.
     *
     * @param warps Warp table used to credit completed loads.
     * @param now Current cycle.
     */
    void tick(std::vector<Warp> &warps, Cycle now);

    /** Outstanding queued accesses (structural-hazard visibility). */
    std::size_t queued() const { return queue_.size(); }

    /**
     * True if the queued head access would be accepted by the L1 this
     * cycle. While this is false the unit's tick is a pure retry with
     * no side effects, so the tick-skip engine may idle past it. The
     * stall decision is bypass-independent (bypassed misses follow the
     * same MSHR/credit path), so the head's bypass flag is irrelevant.
     */
    bool
    headWouldProgress() const
    {
        if (queue_.empty())
            return false;
        const QueuedAccess &head = queue_.front();
        return !l1_->wouldStall(head.lineAddr, head.isWrite);
    }

    /** In-flight load accesses awaiting data. */
    std::size_t inFlight() const { return pending_.size(); }

    /** Drop state at kernel boundaries. */
    void reset();

  private:
    struct QueuedAccess
    {
        std::uint64_t accessId;
        Addr lineAddr;
        bool isWrite;
        bool bypassL1;
        Pc pc;
        std::uint8_t hpc;
        std::uint32_t warpSlot;
    };

    const GpuConfig &cfg_;
    L1Cache *l1_;
    SimStats *stats_;
    std::size_t maxQueued_;
    std::uint32_t accessesPerCycle_;
    std::uint64_t nextAccessId_ = 1;
    std::deque<QueuedAccess> queue_;
    struct PendingLoad
    {
        std::uint32_t warpSlot;
        Cycle issued;
    };

    /** accessId -> issuing warp and timestamp, for load completions. */
    FlatMap<std::uint64_t, PendingLoad> pending_;
    std::vector<std::uint64_t> completedScratch_;
};

/** 5-bit hashed PC (XOR fold of the 32-bit PC), as in Fig 7. */
std::uint8_t hashedPc(Pc pc);

} // namespace lbsim
