/**
 * @file
 * Warp and CTA execution state.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lbsim
{

/** Hardware warp state within an SM. */
struct Warp
{
    /** Hardware warp slot within the SM. */
    std::uint32_t smWarpId = 0;
    /** Hardware CTA slot this warp belongs to. */
    std::uint32_t ctaHwId = 0;
    /** Warp index within its CTA. */
    std::uint32_t warpInCta = 0;
    /** Global CTA id in the grid. */
    std::uint32_t globalCtaId = 0;
    /** Monotonic launch order; GTO "oldest" tiebreak. */
    std::uint64_t launchOrder = 0;

    // --- Execution progress ---------------------------------------------
    std::uint32_t pcIndex = 0;
    std::uint32_t iteration = 0;
    std::uint32_t outstandingLoads = 0;
    Cycle readyAt = 0;
    bool valid = false;      ///< Slot occupied by a resident warp.
    bool active = true;      ///< False while the CTA is throttled.
    bool finished = false;
    /**
     * Decode cache for the instruction at pcIndex, refreshed at CTA
     * launch and at every pc advance: the per-cycle issue scans test
     * these warp-local bits instead of chasing the kernel body for
     * every candidate slot.
     */
    bool waitsOnLoads = false; ///< body[pcIndex].dependsOnLoads.
    bool memNext = false;      ///< body[pcIndex] is a Load or Store.

    /** True if the warp could issue at @p now given its own state. */
    bool
    issuable(Cycle now) const
    {
        return valid && active && !finished && readyAt <= now;
    }
};

/** Resident CTA state within an SM. */
struct Cta
{
    std::uint32_t hwId = 0;
    std::uint32_t globalId = 0;
    std::vector<std::uint32_t> warpSlots;
    std::uint32_t warpsFinished = 0;
    bool valid = false;
    bool active = true;          ///< False while throttled.
    /** First warp register allocated to this CTA (paper's FRN). */
    RegNum firstRegNum = 0;
    /** Warp registers allocated to this CTA. */
    std::uint32_t numRegs = 0;

    bool
    finished() const
    {
        return valid && warpsFinished == warpSlots.size();
    }
};

} // namespace lbsim
