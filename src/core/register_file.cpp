#include "core/register_file.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"

namespace lbsim
{

RegisterFile::RegisterFile(const GpuConfig &cfg, SimStats *stats)
    : stats_(stats), totalRegs_(cfg.totalWarpRegisters()),
      numBanks_(cfg.registerFileBanks), allocated_(totalRegs_, false),
      bankUse_(numBanks_, 0)
{
}

std::optional<RegNum>
RegisterFile::allocate(std::uint32_t num_regs)
{
    if (num_regs == 0 || num_regs > totalRegs_)
        return std::nullopt;
    std::uint32_t run = 0;
    for (std::uint32_t rn = 0; rn < totalRegs_; ++rn) {
        run = allocated_[rn] ? 0 : run + 1;
        if (run == num_regs) {
            const RegNum first = rn + 1 - num_regs;
            for (std::uint32_t i = first; i <= rn; ++i)
                allocated_[i] = true;
            allocatedRegs_ += num_regs;
            return first;
        }
    }
    return std::nullopt;
}

void
RegisterFile::release(RegNum first, std::uint32_t num_regs)
{
    if (first + num_regs > totalRegs_)
        panic("register release [%u, %u) out of range", first,
              first + num_regs);
    for (std::uint32_t rn = first; rn < first + num_regs; ++rn) {
        if (!allocated_[rn])
            panic("double release of register %u", rn);
        allocated_[rn] = false;
    }
    allocatedRegs_ -= num_regs;
}

std::uint32_t
RegisterFile::freeRegsAbove(RegNum first) const
{
    std::uint32_t count = 0;
    for (std::uint32_t rn = first; rn < totalRegs_; ++rn)
        count += allocated_[rn] ? 0 : 1;
    return count;
}

bool
RegisterFile::isAllocated(RegNum first, std::uint32_t num) const
{
    if (first + num > totalRegs_)
        return false;
    for (std::uint32_t rn = first; rn < first + num; ++rn) {
        if (!allocated_[rn])
            return false;
    }
    return num > 0;
}

void
RegisterFile::beginCycle(Cycle now)
{
    (void)now;
    std::fill(bankUse_.begin(), bankUse_.end(), 0);
}

std::uint32_t
RegisterFile::chargeBank(std::uint32_t bank)
{
    LB_ASSERT(bank < numBanks_, "bank %u out of %u", bank, numBanks_);
    ++stats_->rfAccesses;
    const std::uint8_t prior = bankUse_[bank];
    if (bankUse_[bank] < 255)
        ++bankUse_[bank];
    if (prior > 0) {
        ++stats_->rfBankConflicts;
        return prior;
    }
    return 0;
}

std::uint32_t
RegisterFile::accessOperands(RegNum base_reg, std::uint32_t count,
                             Cycle now)
{
    (void)now;
    std::uint32_t delay = 0;
    for (std::uint32_t i = 0; i < count; ++i)
        delay += chargeBank(bankOf(base_reg + i));
    return delay;
}

std::uint32_t
RegisterFile::accessRegister(RegNum reg, bool is_write, Cycle now)
{
    (void)is_write;
    (void)now;
    return chargeBank(bankOf(reg));
}

std::uint32_t
RegisterFile::arbitrateLine(Addr line_addr, bool is_write, Cycle now)
{
    (void)is_write;
    (void)now;
    return chargeBank(static_cast<std::uint32_t>(lineIndex(line_addr) %
                                                 numBanks_));
}

void
RegisterFile::audit() const
{
    StateDumpScope dump([this] { return debugString(); });
    std::uint32_t set_bits = 0;
    for (bool bit : allocated_)
        set_bits += bit ? 1 : 0;
    LB_AUDIT(set_bits == allocatedRegs_,
             "allocation counter %u disagrees with bitmap population %u",
             allocatedRegs_, set_bits);
    LB_AUDIT(allocatedRegs_ <= totalRegs_,
             "allocation counter %u exceeds register file size %u",
             allocatedRegs_, totalRegs_);
}

std::string
RegisterFile::debugString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "RegisterFile: %u/%u allocated, %u banks\n",
                  allocatedRegs_, totalRegs_, numBanks_);
    std::string out = buf;
    // Render the bitmap as allocated runs; full dumps are 2048 wide.
    std::uint32_t run_start = 0;
    bool in_run = false;
    for (std::uint32_t rn = 0; rn <= totalRegs_; ++rn) {
        const bool bit = rn < totalRegs_ && allocated_[rn];
        if (bit && !in_run) {
            run_start = rn;
            in_run = true;
        } else if (!bit && in_run) {
            std::snprintf(buf, sizeof(buf), "allocated [%u, %u)\n",
                          run_start, rn);
            out += buf;
            in_run = false;
        }
    }
    return out;
}

void
RegisterFile::corruptAllocCounterForTest(std::uint32_t delta)
{
    allocatedRegs_ += delta;
}

} // namespace lbsim
