/**
 * @file
 * SM register file with bank-conflict modelling and allocation tracking.
 *
 * The 256 KB register file (Table 1) holds 2048 warp registers of 128 B.
 * Registers are allocated to CTAs bottom-up first-fit; the space above
 * the allocation watermark is the Statically Unused Register file (SUR),
 * and the registers of throttled CTAs are the Dynamically Unused Register
 * file (DUR). Per-cycle bank arbitration counts conflicts between warp
 * operand accesses, victim-line accesses (Linebacker), and unified cache
 * accesses (CERF) — the data behind Fig 16.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/l1_cache.hpp"

namespace lbsim
{

/** Register file of one SM. */
class RegisterFile : public BankArbiterIf
{
  public:
    RegisterFile(const GpuConfig &cfg, SimStats *stats);

    // --- Allocation -------------------------------------------------------

    /**
     * Allocate @p num_regs contiguous warp registers (first fit).
     * @return First register number, or nullopt if no gap fits.
     */
    std::optional<RegNum> allocate(std::uint32_t num_regs);

    /** Release [first, first + num_regs). */
    void release(RegNum first, std::uint32_t num_regs);

    std::uint32_t totalRegs() const { return totalRegs_; }
    std::uint32_t allocatedRegs() const { return allocatedRegs_; }
    std::uint32_t freeRegs() const { return totalRegs_ - allocatedRegs_; }

    /** Free registers with RN >= @p first (victim-space sizing). */
    std::uint32_t freeRegsAbove(RegNum first) const;

    /** True if [first, first+num) is currently allocated. */
    bool isAllocated(RegNum first, std::uint32_t num) const;

    // --- Per-cycle bank arbitration ----------------------------------------

    /** Reset bank occupancy (call once per core cycle). */
    void beginCycle(Cycle now);

    /**
     * Account @p count operand accesses for a warp whose registers start
     * at @p base_reg.
     * @return Extra delay cycles from bank conflicts.
     */
    std::uint32_t accessOperands(RegNum base_reg, std::uint32_t count,
                                 Cycle now);

    /**
     * Account one full-line access to register @p reg (victim cache
     * read/write or Linebacker backup/restore staging).
     * @return Extra delay cycles from bank conflicts.
     */
    std::uint32_t accessRegister(RegNum reg, bool is_write, Cycle now);

    /** BankArbiterIf: CERF unified-structure cache access. */
    std::uint32_t arbitrateLine(Addr line_addr, bool is_write,
                                Cycle now) override;

    std::uint32_t
    bankOf(RegNum reg) const
    {
        return reg % numBanks_;
    }

    /**
     * Conservation auditor: the allocated-register counter must equal
     * the population count of the allocation bitmap.
     */
    void audit() const;

    /** Allocation summary for failure reports. */
    std::string debugString() const;

    /**
     * Force the allocation counter out of sync so tests can prove the
     * auditor trips. Never call from simulator code.
     */
    void corruptAllocCounterForTest(std::uint32_t delta);

  private:
    /** Charge one access to @p bank; returns conflict delay. */
    std::uint32_t chargeBank(std::uint32_t bank);

    SimStats *stats_;
    std::uint32_t totalRegs_;
    std::uint32_t numBanks_;
    std::uint32_t allocatedRegs_ = 0;
    std::vector<bool> allocated_;
    std::vector<std::uint8_t> bankUse_;   ///< Accesses this cycle per bank.
};

} // namespace lbsim
