/**
 * @file
 * Global CTA dispatcher.
 *
 * Hands grid CTAs to SMs as occupancy allows. Before launching a fresh
 * CTA onto an SM, the SM's controller gets the scheduling opportunity —
 * Linebacker uses it to reactivate a throttled CTA first (Section 3.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/kernel.hpp"

namespace lbsim
{

class Sm;
class SmControllerIf;

/** Dispatches grid CTAs across the SMs. */
class CtaDispatcher
{
  public:
    /**
     * @param kernel Kernel being launched.
     * @param sms The chip's SMs (not owned).
     */
    CtaDispatcher(const KernelInfo *kernel, std::vector<Sm *> sms);

    /** Attach per-SM controllers (parallel to the SM vector, may hold nulls). */
    void setControllers(std::vector<SmControllerIf *> controllers);

    /** Launch as many CTAs as resources allow at @p now. */
    void tick(Cycle now);

    /** CTAs not yet launched. */
    std::uint32_t remaining() const { return remaining_; }

    /** True once the whole grid has been handed out. */
    bool drained() const { return remaining_ == 0; }

  private:
    const KernelInfo *kernel_;
    std::vector<Sm *> sms_;
    std::vector<SmControllerIf *> controllers_;
    std::uint32_t nextCta_ = 0;
    std::uint32_t remaining_;
};

} // namespace lbsim
